//===- warp_worker.cpp - Function-master worker process -------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker half of the process engine: one real UNIX process per pool
/// seat, exec'd by parallel::ProcessPool with its socketpair on stdin.
/// Protocol (see parallel/WireProtocol.h):
///
///   master -> Init      (module source + fault plan)
///   worker -> Hello     (pid + function count: proof of an identical parse)
///   master -> Task ...  (compile one function; Result back per task)
///   master -> Shutdown  (exit 0; EOF means the same)
///
/// The worker runs phase 1 on the shipped source itself — the paper's
/// per-process startup cost — then serves Task frames until told to stop.
/// Fault injection is acted out for real: a Kill decision raises SIGKILL
/// in this process at a seeded phase boundary, a Stall sleeps past the
/// master's watchdog, a Corrupt decision sends a damaged result. Every
/// decision is a driver::seededFaultDraw, pure per (function, attempt),
/// so schedules replay identically at any worker count.
///
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"
#include "driver/Compiler.h"
#include "obs/TraceContext.h"
#include "parallel/WireProtocol.h"

#include <sys/prctl.h>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace warpc;
using namespace warpc::parallel;

namespace {

// Draw salts 3..7; the thread engine's makeSeededInjection owns 1 and 2.
constexpr uint64_t SaltKill = 3;
constexpr uint64_t SaltStall = 4;
constexpr uint64_t SaltCorrupt = 5;
constexpr uint64_t SaltKillBoundary = 6;
constexpr uint64_t SaltCorruptMode = 7;

bool writeAll(int Fd, const uint8_t *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::write(Fd, Data + Off, Size - Off);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

bool sendFrame(int Fd, wire::FrameType Type,
               const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Frame = wire::encodeFrame(Type, Payload);
  return writeAll(Fd, Frame.data(), Frame.size());
}

[[noreturn]] void dieNow() {
  ::raise(SIGKILL);
  _exit(137); // unreachable; SIGKILL cannot be handled
}

} // namespace

int main() {
  // Die with the master: an orphaned worker must never outlive the
  // compilation that spawned it.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);

  // The socketpair arrives as stdin and stdout. Keep a private copy of
  // the write end and point stdout at /dev/null so no library printf can
  // ever inject bytes into the frame stream.
  const int InFd = 0;
  const int ProtoFd = ::dup(1);
  if (ProtoFd < 0)
    return 1;
  int DevNull = ::open("/dev/null", O_WRONLY);
  if (DevNull >= 0) {
    ::dup2(DevNull, 1);
    if (DevNull != 1)
      ::close(DevNull);
  }

  // The worker's own steady clock, epoch = process start. Timestamps on
  // this clock ride the Hello frame (timestamp echo) and the per-task
  // span shards; the master converts them with the offset it estimates
  // from the Init→Hello exchange.
  using WClock = std::chrono::steady_clock;
  const WClock::time_point WStart = WClock::now();
  auto NowSec = [&] {
    return std::chrono::duration<double>(WClock::now() - WStart).count();
  };

  wire::FrameDecoder Decoder;
  wire::Frame Frame;
  auto ReadFrame = [&](wire::Frame &Out) -> bool {
    while (true) {
      wire::DecodeStatus St = Decoder.next(Out);
      if (St == wire::DecodeStatus::Ready)
        return true;
      if (St == wire::DecodeStatus::Corrupt)
        return false;
      uint8_t Buf[65536];
      ssize_t N = ::read(InFd, Buf, sizeof(Buf));
      if (N > 0) {
        Decoder.feed(Buf, static_cast<size_t>(N));
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      return false; // EOF: the master hung up
    }
  };

  // --- Handshake: Init in, Hello out.
  if (!ReadFrame(Frame) || Frame.Type != wire::FrameType::Init)
    return 1;
  const double InitRecvSec = NowSec();
  wire::InitMsg Init;
  if (!wire::decodeInit(Frame.Payload, Init))
    return 1;

  // Phase 1 on the shipped source: the per-process startup the paper
  // measures. The parse is identical to the master's because the bytes
  // are identical; task frames index into it.
  driver::ParseResult Parsed = driver::parseAndCheck(Init.ModuleSource);
  if (!Parsed.succeeded()) {
    wire::WorkerErrorMsg Err;
    Err.Message = "phase 1 failed in worker";
    sendFrame(ProtoFd, wire::FrameType::WorkerError,
              wire::encodeWorkerError(Err));
    return 1;
  }
  uint32_t NumFunctions = 0;
  for (size_t S = 0; S != Parsed.Module->numSections(); ++S)
    NumFunctions += static_cast<uint32_t>(
        Parsed.Module->getSection(S)->numFunctions());

  wire::HelloMsg Hello;
  Hello.Pid = static_cast<uint64_t>(::getpid());
  Hello.WorkerIndex = Init.WorkerIndex;
  Hello.NumFunctions = NumFunctions;
  Hello.InitRecvSec = InitRecvSec;
  Hello.HelloSendSec = NowSec();
  if (!sendFrame(ProtoFd, wire::FrameType::Hello, wire::encodeHello(Hello)))
    return 1;

  const codegen::MachineModel MM = codegen::MachineModel::warpCell();
  const driver::ProcessFaultPlan &Plan = Init.Faults;

  // --- Serve tasks until Shutdown or EOF.
  while (ReadFrame(Frame)) {
    if (Frame.Type == wire::FrameType::Shutdown)
      return 0;
    if (Frame.Type != wire::FrameType::Task)
      continue; // ignore anything unexpected rather than die confused
    wire::TaskMsg Task;
    if (!wire::decodeTask(Frame.Payload, Task))
      return 1;
    if (Task.Section >= Parsed.Module->numSections())
      return 1;
    const w2::SectionDecl *Section = Parsed.Module->getSection(Task.Section);
    if (Task.Function >= Section->numFunctions())
      return 1;
    const w2::FunctionDecl *Fn = Section->getFunction(Task.Function);

    // Fault decisions for this attempt. Speculative duplicates are
    // exempt: the (function, attempt) draw was consumed by the original,
    // and the duplicate models re-placement on a healthy host.
    const bool Injectable =
        Plan.enabled() && Plan.applies(Task.Attempt) && !Task.Speculative;
    const uint64_t FnKey = Task.TaskIndex;
    const bool Kill =
        Injectable && driver::seededFaultDraw(Plan.Seed, FnKey, Task.Attempt,
                                              SaltKill) < Plan.KillProb;
    const bool Stall =
        Injectable && driver::seededFaultDraw(Plan.Seed, FnKey, Task.Attempt,
                                              SaltStall) < Plan.StallProb;
    const bool Corrupt =
        Injectable && driver::seededFaultDraw(Plan.Seed, FnKey, Task.Attempt,
                                              SaltCorrupt) < Plan.CorruptProb;
    // 0 = on task receipt, 1 = after compiling, 2 = mid-result-write.
    const int KillBoundary =
        Kill ? static_cast<int>(driver::seededFaultDraw(
                                    Plan.Seed, FnKey, Task.Attempt,
                                    SaltKillBoundary) *
                                3.0)
             : -1;

    if (KillBoundary == 0)
      dieNow();
    if (Stall) {
      // A wedged worker: sleep past the master's watchdog. The master
      // SIGKILLs this process long before the sleep ends.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(Plan.StallSec));
    }

    // Phase split only when the master is tracing; timing is free but
    // the shard machinery should be provably absent otherwise.
    const bool Tracing = Init.TraceId != 0;
    const double TaskStartSec = NowSec();
    driver::FunctionPhaseTimes Times;
    driver::FunctionResult R = driver::compileFunction(
        *Section, *Fn, MM, nullptr, Tracing ? &Times : nullptr);
    if (KillBoundary == 1)
      dieNow();

    if (Corrupt &&
        driver::seededFaultDraw(Plan.Seed, FnKey, Task.Attempt,
                                SaltCorruptMode) < 0.5) {
      // Truncated result: decodes fine, fails validateFunctionResult.
      R.Program.Image.clear();
      R.Program.CodeWords = 0;
    }

    wire::ResultMsg Msg;
    Msg.TaskIndex = Task.TaskIndex;
    Msg.Attempt = Task.Attempt;
    Msg.Speculative = Task.Speculative;
    Msg.ResultBytes = cache::encodeFunctionResult(R);
    if (Tracing) {
      // The worker's own view of phases 2 and 3, on the worker's clock.
      // Both spans are shard roots: the master re-parents them under the
      // span it records when it accepts this result, so the shape of the
      // shard depends only on the task — never on the pool size.
      obs::SpanShard Shard;
      Shard.TraceId = Init.TraceId;
      Shard.Pid = static_cast<uint64_t>(::getpid());
      Shard.ProcessName = "warp-worker " + std::to_string(Init.WorkerIndex);
      Shard.FunctionNames.push_back(Fn->getName());
      obs::ShardSpan Opt;
      Opt.TSec = TaskStartSec;
      Opt.DurSec = Times.OptSec;
      Opt.LocalId = 1;
      Opt.Section = static_cast<int32_t>(Task.Section);
      Opt.Function = 0;
      Opt.Attempt = static_cast<int32_t>(Task.Attempt);
      Opt.Kind = obs::EventKind::SpanOptimize;
      Opt.Ph = obs::Phase::Compile;
      Opt.Speculative = Task.Speculative != 0;
      Shard.Spans.push_back(Opt);
      obs::ShardSpan Cg = Opt;
      Cg.TSec = TaskStartSec + Times.OptSec;
      Cg.DurSec = Times.CodegenSec;
      Cg.LocalId = 2;
      Cg.Kind = obs::EventKind::SpanCodegen;
      Cg.Bytes = Msg.ResultBytes.size();
      Shard.Spans.push_back(Cg);
      Msg.ShardBytes = obs::encodeSpanShard(Shard);
    }
    std::vector<uint8_t> Out =
        wire::encodeFrame(wire::FrameType::Result, wire::encodeResult(Msg));
    if (Corrupt &&
        driver::seededFaultDraw(Plan.Seed, FnKey, Task.Attempt,
                                SaltCorruptMode) >= 0.5) {
      // Damaged frame: flip a payload byte so the checksum fails and the
      // master's decoder reports Corrupt.
      if (Out.size() > wire::FrameHeaderSize)
        Out[wire::FrameHeaderSize] ^= 0xFF;
    }
    if (KillBoundary == 2) {
      // Die midway through the result write: the master sees a truncated
      // frame (NeedMore) resolved by this process's EOF.
      writeAll(ProtoFd, Out.data(), Out.size() / 2);
      dieNow();
    }
    if (!writeAll(ProtoFd, Out.data(), Out.size()))
      return 1;
  }
  return 0;
}
