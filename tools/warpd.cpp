//===- warpd.cpp - The warpc compile-service daemon -----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Long-lived front end for the compile service: binds the AF_UNIX
/// socket, serves warpc --server clients until SIGTERM/SIGINT, then
/// drains gracefully (in-flight and queued work completes and is
/// delivered; new work is refused) and exits 0. Optionally dumps the
/// service trace and stats on exit, labeled engine "daemon".
///
//===----------------------------------------------------------------------===//

#include "obs/ChromeTrace.h"
#include "obs/MetricsRegistry.h"
#include "obs/StatsReport.h"
#include "obs/TraceRecorder.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/Json.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace warpc;

namespace {

service::CompileService *ActiveService = nullptr;

void onTerminate(int) {
  if (ActiveService)
    ActiveService->requestDrain();
}

/// One-shot --status: connect to a running daemon as an ordinary client
/// and print its live counters and latency decomposition, then exit.
/// This is the scripting-friendly sibling of warp-top's refreshing view.
int runStatus(const std::string &SocketPath) {
  service::Client Client;
  std::string Error;
  if (!Client.connect(SocketPath, Error)) {
    std::fprintf(stderr, "warpd: %s\n", Error.c_str());
    return 1;
  }
  service::wire::ServerStatsMsg S;
  if (!Client.serverStats(S, Error)) {
    std::fprintf(stderr, "warpd: %s\n", Error.c_str());
    return 1;
  }
  std::printf("warpd at %s (protocol %u, pid %llu)\n", SocketPath.c_str(),
              Client.serverHello().Protocol,
              static_cast<unsigned long long>(Client.serverHello().Pid));
  std::printf("  requests   accepted %llu  completed %llu  rejected %llu  "
              "cancelled %llu  expired %llu\n",
              static_cast<unsigned long long>(S.Accepted),
              static_cast<unsigned long long>(S.Completed),
              static_cast<unsigned long long>(S.Rejected),
              static_cast<unsigned long long>(S.Cancelled),
              static_cast<unsigned long long>(S.Expired));
  std::printf("  live       queue %u  in-flight %u  connections %u\n",
              S.QueueDepth, S.InFlight, S.Connections);
  std::printf("  latency    p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n", S.P50Ms,
              S.P95Ms, S.P99Ms);
  auto PrintQ = [](const char *Label, const service::wire::QuantileSummary &Q) {
    if (Q.Count == 0)
      return;
    std::printf("  %-10s p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  (n=%llu)\n",
                Label, Q.P50 * 1e3, Q.P95 * 1e3, Q.P99 * 1e3,
                static_cast<unsigned long long>(Q.Count));
  };
  PrintQ("wait p0", S.QueueWaitNormal);
  PrintQ("wait p1", S.QueueWaitHigh);
  for (const service::wire::EngineLatency &E : S.EngineLatencies)
    PrintQ(("eng " + E.Engine).c_str(), E.Latency);
  return 0;
}

void printUsage() {
  std::fputs(
      "usage: warpd [options]\n"
      "  --status           print a running daemon's live stats and exit\n"
      "  --socket PATH      AF_UNIX socket to serve (default: per-uid "
      "/tmp/warpd-<uid>.sock)\n"
      "  --engine NAME      default engine for requests: sequential | "
      "thread | process\n"
      "  --workers N        default worker count per request (default 1)\n"
      "  --inflight N       concurrent compiles / executor threads "
      "(default 2)\n"
      "  --max-queue N      admission queue bound (default 64)\n"
      "  --cache MODE       off | memory | disk (default memory)\n"
      "  --cache-dir DIR    disk cache directory\n"
      "  --worker-bin PATH  warp-worker binary for process requests\n"
      "  --watchdog-sec S   process-engine watchdog (default 10)\n"
      "  --delay-ms N       test hook: sleep N ms before each compile\n"
      "  --stall-sec S      test hook: process workers stall S sec\n"
      "  --trace-json FILE  write the daemon trace on exit\n"
      "  --stats-json FILE  write service metrics on exit\n",
      stderr);
}

} // namespace

int main(int Argc, char **Argv) {
  service::ServiceConfig Config;
  Config.SocketPath = service::defaultSocketPath();
  std::string TraceFile;
  std::string StatsFile;
  bool StatusMode = false;

  auto needValue = [&](int &I) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "error: %s needs a value\n", Argv[I]);
      std::exit(2);
    }
    return Argv[++I];
  };

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--status") {
      StatusMode = true;
    } else if (Arg == "--socket") {
      Config.SocketPath = needValue(I);
    } else if (Arg == "--engine") {
      Config.Engine = needValue(I);
      if (Config.Engine != "sequential" && Config.Engine != "thread" &&
          Config.Engine != "process") {
        std::fprintf(stderr, "error: unknown engine '%s'\n",
                     Config.Engine.c_str());
        return 2;
      }
    } else if (Arg == "--workers") {
      Config.DefaultWorkers = static_cast<unsigned>(atoi(needValue(I)));
    } else if (Arg == "--inflight") {
      Config.MaxInFlight = static_cast<unsigned>(atoi(needValue(I)));
    } else if (Arg == "--max-queue") {
      Config.MaxQueue = static_cast<unsigned>(atoi(needValue(I)));
    } else if (Arg == "--cache") {
      const std::string Mode = needValue(I);
      if (Mode == "off")
        Config.CacheMode = cache::CacheMode::Off;
      else if (Mode == "memory")
        Config.CacheMode = cache::CacheMode::Memory;
      else if (Mode == "disk")
        Config.CacheMode = cache::CacheMode::Disk;
      else {
        std::fprintf(stderr, "error: unknown cache mode '%s'\n", Mode.c_str());
        return 2;
      }
    } else if (Arg == "--cache-dir") {
      Config.CacheDir = needValue(I);
    } else if (Arg == "--worker-bin") {
      Config.WorkerBinary = needValue(I);
    } else if (Arg == "--watchdog-sec") {
      Config.WatchdogSec = atof(needValue(I));
    } else if (Arg == "--delay-ms") {
      Config.DebugCompileDelaySec = atof(needValue(I)) / 1000.0;
    } else if (Arg == "--stall-sec") {
      // Deterministic stall plan for lifecycle tests: every process
      // worker sleeps before its first result, holding the request in
      // flight for as long as the test needs.
      Config.Faults.Seed = 1;
      Config.Faults.StallProb = 1.0;
      Config.Faults.StallSec = atof(needValue(I));
    } else if (Arg == "--trace-json") {
      TraceFile = needValue(I);
    } else if (Arg == "--stats-json") {
      StatsFile = needValue(I);
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    }
  }
  if (Config.CacheMode == cache::CacheMode::Disk && Config.CacheDir.empty()) {
    std::fprintf(stderr, "error: --cache disk needs --cache-dir\n");
    return 2;
  }
  if (StatusMode)
    return runStatus(Config.SocketPath);

  obs::MetricsRegistry Metrics;
  std::unique_ptr<obs::TraceRecorder> Rec;
  if (!TraceFile.empty()) {
    Rec = std::make_unique<obs::TraceRecorder>(obs::ClockDomain::Steady);
    Rec->setEngine("daemon");
  }

  service::CompileService Service(Config, &Metrics, Rec.get());
  std::string Error;
  if (!Service.start(Error)) {
    std::fprintf(stderr, "warpd: %s\n", Error.c_str());
    return 1;
  }
  ActiveService = &Service;
  std::signal(SIGTERM, onTerminate);
  std::signal(SIGINT, onTerminate);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("warpd: listening on %s (engine %s, %u in flight, queue %u)\n",
              Config.SocketPath.c_str(), Config.Engine.c_str(),
              Config.MaxInFlight, Config.MaxQueue);
  std::fflush(stdout);

  Service.wait();
  ActiveService = nullptr;

  const service::wire::ServerStatsMsg Stats = Service.statsSnapshot();
  std::printf("warpd: drained: %llu accepted, %llu completed, %llu rejected, "
              "%llu cancelled, %llu expired\n",
              static_cast<unsigned long long>(Stats.Accepted),
              static_cast<unsigned long long>(Stats.Completed),
              static_cast<unsigned long long>(Stats.Rejected),
              static_cast<unsigned long long>(Stats.Cancelled),
              static_cast<unsigned long long>(Stats.Expired));

  if (Rec) {
    obs::TraceSession Session = Rec->finish();
    std::string WriteError;
    if (!obs::writeChromeTraceFile(Session, TraceFile, WriteError)) {
      std::fprintf(stderr, "error: cannot write trace '%s': %s\n",
                   TraceFile.c_str(), WriteError.c_str());
      return 1;
    }
  }
  if (!StatsFile.empty()) {
    json::Value Root = json::Value::object();
    Root.set("schema", obs::StatsSchemaVersion);
    json::Value Run = json::Value::object();
    Run.set("engine", "daemon");
    Run.set("socket", Config.SocketPath);
    Run.set("accepted", static_cast<uint64_t>(Stats.Accepted));
    Run.set("completed", static_cast<uint64_t>(Stats.Completed));
    Run.set("rejected", static_cast<uint64_t>(Stats.Rejected));
    Root.set("run", std::move(Run));
    Root.set("metrics", Metrics.toJson());
    // The warp-perf-gateable quantile block: every histogram the service
    // recorded (service.queue_wait_sec.p0/.p1, service.engine_sec.*)
    // with its p50/p95/p99, under the same "stats" key warpc uses.
    obs::StatsReport Report;
    obs::appendHistogramQuantiles(Report, Metrics);
    if (!Report.empty())
      Root.set("stats", Report.toJson());
    std::ofstream Out(StatsFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", StatsFile.c_str());
      return 1;
    }
    Out << Root.dump(1) << "\n";
  }
  return 0;
}
