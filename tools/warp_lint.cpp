//===- warp_lint.cpp - Standalone W2 static-analysis driver ---------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Runs the analysis checks without compiling:
//
//   warp-lint [options] module.w2
//   warp-lint --demo fig1 --format json
//
// Options:
//   --format <text|json>  output format (default text)
//   --disable <ids>       comma-separated check ids to skip (repeatable)
//   --werror              treat warnings as errors
//   --no-suppressions     ignore "lint: allow(...)" comments
//   --jobs <N>            analyze N functions concurrently (default 1;
//                         0 = auto-detect hardware concurrency)
//   --summary-cache <d>   persist interprocedural summaries under <d> so
//                         warm runs re-analyze only edited SCC chains
//   --stats-json <f>      write the analysis metrics as JSON
//   --trace-json <f>      write a Chrome trace of the analysis wavefront
//                         (SpanAnalyze/SpanSummarize spans per worker lane)
//   --list-checks         print the check catalog and exit
//   --demo <which>        lint a built-in workload instead of a file
//
// Exit status: 0 clean (or warnings only), 1 any error-severity
// diagnostic or a front-end failure, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Checks.h"
#include "analysis/Diagnostic.h"
#include "cache/CompileCache.h"
#include "codegen/MachineModel.h"
#include "driver/Compiler.h"
#include "obs/ChromeTrace.h"
#include "obs/MetricsRegistry.h"
#include "parallel/AnalysisRunner.h"
#include "support/Json.h"
#include "workload/Generator.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

using namespace warpc;

namespace {

struct Options {
  std::string InputFile;
  std::string Demo;
  std::string SummaryCacheDir;
  std::string StatsJsonFile;
  std::string TraceJsonFile;
  analysis::AnalysisOptions Analysis;
  unsigned Jobs = 1;
  bool Json = false;
  bool ListChecks = false;
};

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [options] <module.w2>\n"
               "  --format <f>      text (default) or json\n"
               "  --disable <ids>   comma-separated check ids to skip\n"
               "  --werror          treat warnings as errors\n"
               "  --no-suppressions ignore 'lint: allow(...)' comments\n"
               "  --jobs <N>        analyze N functions concurrently\n"
               "                    (0 = auto-detect hardware concurrency)\n"
               "  --summary-cache <d>  persist interprocedural summaries\n"
               "                    under <d> for incremental re-analysis\n"
               "  --stats-json <f>  write the analysis metrics as JSON\n"
               "  --trace-json <f>  write a Chrome trace of the analysis\n"
               "                    wavefront (view with warp-traceview)\n"
               "  --list-checks     print the check catalog and exit\n"
               "  --demo <w>        tiny|small|medium|large|huge|user|fig1\n",
               Prog);
}

bool addDisabled(const std::string &List, Options &Opts) {
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = List.size();
    std::string Id = List.substr(Pos, Comma - Pos);
    if (!Id.empty()) {
      if (!analysis::findCheck(Id)) {
        std::fprintf(stderr, "error: unknown check '%s'\n", Id.c_str());
        return false;
      }
      Opts.Analysis.Disabled.insert(Id);
    }
    Pos = Comma + 1;
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", Arg.c_str());
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--format") {
      const char *V = Next();
      if (!V)
        return false;
      if (std::string(V) == "json")
        Opts.Json = true;
      else if (std::string(V) == "text")
        Opts.Json = false;
      else {
        std::fprintf(stderr, "error: unknown format '%s'\n", V);
        return false;
      }
    } else if (Arg == "--disable") {
      const char *V = Next();
      if (!V || !addDisabled(V, Opts))
        return false;
    } else if (Arg == "--werror") {
      Opts.Analysis.WarningsAsErrors = true;
    } else if (Arg == "--no-suppressions") {
      Opts.Analysis.HonorSuppressions = false;
    } else if (Arg == "--jobs") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
      if (Opts.Jobs == 0)
        Opts.Jobs = parallel::defaultAnalysisWorkers();
    } else if (Arg == "--summary-cache") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.SummaryCacheDir = V;
    } else if (Arg == "--stats-json") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.StatsJsonFile = V;
    } else if (Arg == "--trace-json") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.TraceJsonFile = V;
    } else if (Arg == "--list-checks") {
      Opts.ListChecks = true;
    } else if (Arg == "--demo") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Demo = V;
    } else if (Arg == "--help" || Arg == "-h") {
      return false;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      return false;
    } else {
      Opts.InputFile = Arg;
    }
  }
  return Opts.ListChecks || !Opts.InputFile.empty() || !Opts.Demo.empty();
}

bool loadSource(const Options &Opts, std::string &Source) {
  if (!Opts.Demo.empty()) {
    if (Opts.Demo == "user") {
      Source = workload::makeUserProgram();
      return true;
    }
    if (Opts.Demo == "fig1") {
      Source = workload::makeFigure1Program();
      return true;
    }
    for (auto Size : workload::AllSizes) {
      if (Opts.Demo == std::string(workload::sizeName(Size)).substr(2)) {
        Source = workload::makeTestModule(Size, 4);
        return true;
      }
    }
    std::fprintf(stderr, "error: unknown demo '%s'\n", Opts.Demo.c_str());
    return false;
  }
  std::ifstream In(Opts.InputFile);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Opts.InputFile.c_str());
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Source = Buffer.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(Argv[0]);
    return 2;
  }
  if (Opts.ListChecks) {
    for (const analysis::CheckInfo &C : analysis::allChecks())
      std::printf("%-18s %-7s %s\n", C.Id,
                  analysis::severityName(C.DefaultSev), C.Summary);
    return 0;
  }

  std::string Source;
  if (!loadSource(Opts, Source))
    return 1;

  // Phase 1 exactly as the compiler runs it: analysis needs a checked AST,
  // and front-end errors outrank anything the checks could say.
  driver::ParseResult Parsed = driver::parseAndCheck(Source);
  if (!Parsed.succeeded()) {
    std::fprintf(stderr, "%s", Parsed.Diags.str().c_str());
    return 1;
  }

  // The summary cache keys by the same post-sema fingerprints the compile
  // cache uses, under the standard cell model so a shared directory
  // interoperates with warpc --cache-dir.
  obs::MetricsRegistry Metrics;
  std::unique_ptr<cache::CompileCache> SummaryCache;
  if (!Opts.SummaryCacheDir.empty())
    SummaryCache = std::make_unique<cache::CompileCache>(
        cache::CacheMode::Disk,
        cache::CacheContext::forModel(codegen::MachineModel::warpCell()),
        Opts.SummaryCacheDir, &Metrics);

  std::unique_ptr<obs::TraceRecorder> Rec;
  if (!Opts.TraceJsonFile.empty()) {
    Rec = std::make_unique<obs::TraceRecorder>(obs::ClockDomain::Steady);
    Rec->setEngine("thread");
  }

  parallel::AnalysisRunResult Run = parallel::analyzeModuleParallel(
      *Parsed.Module, Source, Opts.Analysis, Opts.Jobs, Rec.get(), &Metrics,
      SummaryCache.get());
  const std::vector<analysis::Diag> &Diags = Run.Analysis.Diags;
  if (SummaryCache)
    SummaryCache->rememberModule(*Parsed.Module);

  if (Rec) {
    Rec->setTopology(Run.WorkersUsed + 1,
                     static_cast<uint32_t>(Parsed.Module->numSections()));
    Rec->setRunTotals(Run.ElapsedSec, 0.0,
                      static_cast<uint32_t>(Run.Analysis.FunctionsAnalyzed));
    obs::TraceSession Session = Rec->finish();
    std::string Error;
    if (!obs::writeChromeTraceFile(Session, Opts.TraceJsonFile, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  }

  if (!Opts.StatsJsonFile.empty()) {
    json::Value Root = json::Value::object();
    json::Value RunInfo = json::Value::object();
    RunInfo.set("jobs", static_cast<uint64_t>(Run.WorkersUsed));
    RunInfo.set("functions",
                static_cast<uint64_t>(Run.Analysis.FunctionsAnalyzed));
    Root.set("run", std::move(RunInfo));
    Root.set("metrics", Metrics.toJson());
    std::ofstream Out(Opts.StatsJsonFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.StatsJsonFile.c_str());
      return 1;
    }
    Out << Root.dump(1) << "\n";
  }

  if (Opts.Json) {
    std::printf("%s\n", analysis::renderJson(Diags).dump(1).c_str());
  } else {
    std::string Text = analysis::renderText(Diags);
    std::fputs(Text.c_str(), stdout);
  }
  return analysis::countDiags(Diags).Errors ? 1 : 0;
}
