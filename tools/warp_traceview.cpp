//===- warp_traceview.cpp - Critical-path trace analyzer ------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Reads a trace file written by `warpc --trace-json` (or any of the
// benchmark binaries) and reports what the timeline says about the run:
//
//   warp-traceview trace.json
//   warp-traceview --events trace.json      # also dump the raw timeline
//
// The report shows the critical path through the master -> section
// master -> function master chain (with the dead time before every hop),
// per-host busy/idle utilization, the paper's Section 4.2.3 overhead
// decomposition rebuilt from the spans' CPU attributions, and the
// fault-recovery decisions the master took.
//
// Traces recorded through the compile service carry request lifecycle
// tags (connection id in Section, request id in Attempt on admission /
// queue-wait / executor spans). For those, a per-request summary table
// is appended, and --request N / --conn N restrict the whole report to
// one request's (or one connection's) causal subtree.
//
//===----------------------------------------------------------------------===//

#include "obs/ChromeTrace.h"
#include "obs/Event.h"
#include "obs/TraceAnalysis.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

using namespace warpc;

namespace {

/// True when \p E carries a request lifecycle tag (Section = connection
/// id, Attempt = request id). The tag kinds are only ever emitted by the
/// compile service; the Function < 0 guard keeps per-function compile
/// spans (whose Attempt is a retry counter) out.
bool isRequestTag(const obs::SpanEvent &E) {
  switch (E.Kind) {
  case obs::EventKind::RequestAdmitted:
    return E.Attempt > 0;
  case obs::EventKind::SpanSchedule:
    return E.Attempt > 0 && E.Section >= 0;
  case obs::EventKind::SpanCompile:
    return E.Attempt > 0 && E.Function < 0;
  default:
    return false;
  }
}

/// Aggregates for one service request, keyed by its request id.
struct RequestRow {
  int32_t Conn = -1;
  double QueueWaitSec = 0;    ///< Queue residence (SpanSchedule tags).
  double EngineSec = 0;       ///< Executor compile span.
  double ClientSec = 0;       ///< Client-observed request span.
  double WorkerSec = 0;       ///< Worker-process optimize+codegen time.
  uint64_t Bytes = 0;         ///< Largest payload attributed (the image).
};

} // namespace

int main(int Argc, char **Argv) {
  std::string Path;
  bool DumpEvents = false;
  int64_t FilterRequest = -1;
  int64_t FilterConn = -1;
  auto needValue = [&](int &I) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "error: %s needs a value\n", Argv[I]);
      std::exit(2);
    }
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--events") == 0) {
      DumpEvents = true;
    } else if (std::strcmp(Argv[I], "--request") == 0) {
      FilterRequest = atoll(needValue(I));
    } else if (std::strcmp(Argv[I], "--conn") == 0) {
      FilterConn = atoll(needValue(I));
    } else if (std::strcmp(Argv[I], "--help") == 0 ||
               std::strcmp(Argv[I], "-h") == 0) {
      Path.clear();
      break;
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", Argv[I]);
      return 2;
    } else {
      Path = Argv[I];
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr,
                 "usage: warp-traceview [--events] [--request N] [--conn N] "
                 "<trace.json>\n"
                 "  analyzes a trace written by warpc --trace-json\n"
                 "  --request N  restrict to service request id N\n"
                 "  --conn N     restrict to service connection id N\n");
    return 2;
  }

  obs::TraceSession Session;
  std::string Error;
  if (!obs::readChromeTraceFile(Path, Session, Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return 1;
  }
  if (Session.Events.empty()) {
    std::fprintf(stderr,
                 "error: %s: trace contains no events (was the run "
                 "recorded with --trace-json?)\n",
                 Path.c_str());
    return 1;
  }

  // Resolve which service request (if any) owns each event: an event is
  // owned by the nearest request-tagged ancestor on its Parent chain.
  const size_t N = Session.Events.size();
  std::unordered_map<uint64_t, size_t> BySpanId;
  BySpanId.reserve(N);
  for (size_t I = 0; I < N; ++I)
    BySpanId[Session.Events[I].spanId()] = I;
  std::vector<int32_t> OwnerReq(N, 0);
  for (size_t I = 0; I < N; ++I) {
    size_t Cur = I;
    for (int Depth = 0; Depth < 64; ++Depth) {
      const obs::SpanEvent &E = Session.Events[Cur];
      if (isRequestTag(E)) {
        OwnerReq[I] = E.Attempt;
        break;
      }
      if (E.Parent == 0)
        break;
      auto It = BySpanId.find(E.Parent);
      if (It == BySpanId.end())
        break;
      Cur = It->second;
    }
  }

  // Per-request aggregation. The executor span carries the connection id
  // (client-side tags do not), so the conn column comes from whichever
  // tag knows it.
  std::map<int32_t, RequestRow> Rows;
  for (size_t I = 0; I < N; ++I) {
    if (OwnerReq[I] == 0)
      continue;
    const obs::SpanEvent &E = Session.Events[I];
    RequestRow &R = Rows[OwnerReq[I]];
    if (isRequestTag(E) && E.Section >= 0)
      R.Conn = E.Section;
    const double Dur = E.DurSec > 0 ? E.DurSec : 0;
    if (isRequestTag(E) && E.Kind == obs::EventKind::SpanSchedule)
      R.QueueWaitSec += Dur;
    else if (isRequestTag(E) && E.Kind == obs::EventKind::SpanCompile) {
      if (E.Section >= 0)
        R.EngineSec += Dur;
      else
        R.ClientSec += Dur;
    } else if (E.Kind == obs::EventKind::SpanOptimize ||
               E.Kind == obs::EventKind::SpanCodegen)
      R.WorkerSec += Dur;
    if (E.Bytes > R.Bytes)
      R.Bytes = E.Bytes;
  }

  if (FilterRequest >= 0 || FilterConn >= 0) {
    std::vector<obs::SpanEvent> Kept;
    for (size_t I = 0; I < N; ++I) {
      const int32_t Req = OwnerReq[I];
      if (Req == 0)
        continue;
      if (FilterRequest >= 0 && Req != FilterRequest)
        continue;
      if (FilterConn >= 0) {
        auto It = Rows.find(Req);
        if (It == Rows.end() || It->second.Conn != FilterConn)
          continue;
      }
      Kept.push_back(Session.Events[I]);
    }
    if (Kept.empty()) {
      std::fprintf(stderr,
                   "error: %s: no events match the requested filter (is "
                   "this a service trace?)\n",
                   Path.c_str());
      return 1;
    }
    Session.Events = std::move(Kept);
  }

  if (DumpEvents) {
    for (const obs::SpanEvent &E : Session.Events)
      std::printf("%s\n", obs::renderEvent(Session, E).c_str());
    std::printf("\n");
  }

  obs::TraceReport Report = obs::analyzeTrace(Session);
  std::fputs(obs::renderReport(Session, Report).c_str(), stdout);

  // Service lifecycle summary: one row per request that left tags in
  // this trace (silent for plain single-process traces).
  bool First = true;
  for (const auto &[Req, R] : Rows) {
    if (FilterRequest >= 0 && Req != FilterRequest)
      continue;
    if (FilterConn >= 0 && R.Conn != FilterConn)
      continue;
    if (First) {
      std::printf("\nservice requests:\n"
                  "  %8s %6s %12s %12s %12s %12s %10s\n",
                  "request", "conn", "queue-wait", "engine", "client",
                  "worker-cpu", "bytes");
      First = false;
    }
    auto Ms = [](double S) { return S * 1e3; };
    std::printf("  %8d %6d %9.2f ms %9.2f ms %9.2f ms %9.2f ms %10llu\n",
                Req, R.Conn, Ms(R.QueueWaitSec), Ms(R.EngineSec),
                Ms(R.ClientSec), Ms(R.WorkerSec),
                static_cast<unsigned long long>(R.Bytes));
  }
  return 0;
}
