//===- warp_traceview.cpp - Critical-path trace analyzer ------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Reads a trace file written by `warpc --trace-json` (or any of the
// benchmark binaries) and reports what the timeline says about the run:
//
//   warp-traceview trace.json
//   warp-traceview --events trace.json      # also dump the raw timeline
//
// The report shows the critical path through the master -> section
// master -> function master chain (with the dead time before every hop),
// per-host busy/idle utilization, the paper's Section 4.2.3 overhead
// decomposition rebuilt from the spans' CPU attributions, and the
// fault-recovery decisions the master took.
//
//===----------------------------------------------------------------------===//

#include "obs/ChromeTrace.h"
#include "obs/Event.h"
#include "obs/TraceAnalysis.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace warpc;

int main(int Argc, char **Argv) {
  std::string Path;
  bool DumpEvents = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--events") == 0) {
      DumpEvents = true;
    } else if (std::strcmp(Argv[I], "--help") == 0 ||
               std::strcmp(Argv[I], "-h") == 0) {
      Path.clear();
      break;
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", Argv[I]);
      return 2;
    } else {
      Path = Argv[I];
    }
  }
  if (Path.empty()) {
    std::fprintf(stderr,
                 "usage: warp-traceview [--events] <trace.json>\n"
                 "  analyzes a trace written by warpc --trace-json\n");
    return 2;
  }

  obs::TraceSession Session;
  std::string Error;
  if (!obs::readChromeTraceFile(Path, Session, Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return 1;
  }
  if (Session.Events.empty()) {
    std::fprintf(stderr,
                 "error: %s: trace contains no events (was the run "
                 "recorded with --trace-json?)\n",
                 Path.c_str());
    return 1;
  }

  if (DumpEvents) {
    for (const obs::SpanEvent &E : Session.Events)
      std::printf("%s\n", obs::renderEvent(Session, E).c_str());
    std::printf("\n");
  }

  obs::TraceReport Report = obs::analyzeTrace(Session);
  std::fputs(obs::renderReport(Session, Report).c_str(), stdout);
  return 0;
}
