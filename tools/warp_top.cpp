//===- warp_top.cpp - Live compile-service dashboard ----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// top(1) for warpd: connects to a running daemon and redraws its live
// counters, queue/in-flight gauges, per-priority queue-wait quantiles,
// and per-engine end-to-end latency quantiles every refresh interval.
//
//   warp-top                      # refresh the default socket every 2s
//   warp-top --interval 0.5
//   warp-top --once               # one snapshot, no screen control
//
// The stats frame is the same ServerStats message warpd --status prints;
// warp-top adds deltas between refreshes (requests/sec) so throughput is
// visible without a second terminal.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace warpc;

namespace {

void printUsage() {
  std::fputs("usage: warp-top [options]\n"
             "  --socket PATH    daemon socket (default: per-uid "
             "/tmp/warpd-<uid>.sock)\n"
             "  --interval SEC   refresh period (default 2)\n"
             "  --once           print one snapshot and exit\n"
             "  --count N        exit after N refreshes\n",
             stderr);
}

void printQuantiles(const char *Label,
                    const service::wire::QuantileSummary &Q) {
  if (Q.Count == 0) {
    std::printf("  %-16s (no samples)\n", Label);
    return;
  }
  std::printf("  %-16s p50 %8.2f ms   p95 %8.2f ms   p99 %8.2f ms   "
              "n=%llu\n",
              Label, Q.P50 * 1e3, Q.P95 * 1e3, Q.P99 * 1e3,
              static_cast<unsigned long long>(Q.Count));
}

void render(const std::string &Socket, const service::wire::ServerHelloMsg &H,
            const service::wire::ServerStatsMsg &S, double CompletedPerSec,
            bool Clear) {
  if (Clear)
    std::fputs("\x1b[H\x1b[2J", stdout);
  std::printf("warp-top — %s  (warpd pid %llu, protocol %u)\n\n",
              Socket.c_str(), static_cast<unsigned long long>(H.Pid),
              H.Protocol);
  std::printf("  queue %-6u in-flight %-6u connections %-6u", S.QueueDepth,
              S.InFlight, S.Connections);
  if (CompletedPerSec >= 0)
    std::printf(" throughput %.1f req/s", CompletedPerSec);
  std::printf("\n");
  std::printf("  accepted %llu   completed %llu   rejected %llu   "
              "cancelled %llu   expired %llu\n\n",
              static_cast<unsigned long long>(S.Accepted),
              static_cast<unsigned long long>(S.Completed),
              static_cast<unsigned long long>(S.Rejected),
              static_cast<unsigned long long>(S.Cancelled),
              static_cast<unsigned long long>(S.Expired));
  std::printf("  %-16s p50 %8.2f ms   p95 %8.2f ms   p99 %8.2f ms\n",
              "compile", S.P50Ms, S.P95Ms, S.P99Ms);
  printQuantiles("queue-wait p0", S.QueueWaitNormal);
  printQuantiles("queue-wait p1", S.QueueWaitHigh);
  for (const service::wire::EngineLatency &E : S.EngineLatencies)
    printQuantiles(("engine " + E.Engine).c_str(), E.Latency);
  std::fflush(stdout);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Socket = service::defaultSocketPath();
  double IntervalSec = 2.0;
  bool Once = false;
  long Count = -1;

  auto needValue = [&](int &I) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "error: %s needs a value\n", Argv[I]);
      std::exit(2);
    }
    return Argv[++I];
  };

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--socket") {
      Socket = needValue(I);
    } else if (Arg == "--interval") {
      IntervalSec = atof(needValue(I));
      if (IntervalSec <= 0)
        IntervalSec = 0.1;
    } else if (Arg == "--once") {
      Once = true;
    } else if (Arg == "--count") {
      Count = atol(needValue(I));
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      printUsage();
      return 2;
    }
  }
  if (Once)
    Count = 1;

  service::Client Client;
  std::string Error;
  if (!Client.connect(Socket, Error)) {
    std::fprintf(stderr, "warp-top: %s\n", Error.c_str());
    return 1;
  }

  uint64_t LastCompleted = 0;
  bool HaveLast = false;
  for (long Tick = 0; Count < 0 || Tick < Count; ++Tick) {
    service::wire::ServerStatsMsg S;
    if (!Client.serverStats(S, Error)) {
      std::fprintf(stderr, "warp-top: %s\n", Error.c_str());
      return 1;
    }
    const double Rate =
        HaveLast ? (S.Completed - LastCompleted) / IntervalSec : -1.0;
    LastCompleted = S.Completed;
    HaveLast = true;
    render(Socket, Client.serverHello(), S, Rate, /*Clear=*/!Once);
    if (Count >= 0 && Tick + 1 >= Count)
      break;
    std::this_thread::sleep_for(std::chrono::duration<double>(IntervalSec));
  }
  return 0;
}
