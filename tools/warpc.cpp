//===- warpc.cpp - The warpc command-line driver --------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// The command-line compiler:
//
//   warpc [options] module.w2
//   warpc --demo user --simulate --processors 5
//
// Options:
//   -o <file>          write the linked download module image
//   --emit-asm         print the Warp assembly listing of every function
//   --parallel <N>     compile with N function-master threads (default 1)
//   --inline           run procedure inlining before compilation
//   --simulate         replay the compilation on the simulated 1989 host
//   --processors <N>   processors for the simulated parallel run
//   --fault-plan <p>   inject failures into the simulated run, e.g.
//                      "crash=3@120+600,slow=5x4,loss=0.01,seed=7"
//   --timeout-factor <x>  watchdog timeout as a multiple of the master's
//                      cost estimate (default 3)
//   --demo <which>     compile a built-in workload instead of a file:
//                      tiny|small|medium|large|huge|user|fig1
//   --verbose          print per-function statistics
//
//===----------------------------------------------------------------------===//

#include "cluster/FaultPlan.h"
#include "driver/Compiler.h"
#include "driver/FaultPolicy.h"
#include "parallel/SimRunner.h"
#include "parallel/ThreadRunner.h"
#include "support/StringUtils.h"
#include "w2/ASTPrinter.h"
#include "w2/Inliner.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "w2/Sema.h"
#include "workload/Generator.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace warpc;

namespace {

struct Options {
  std::string InputFile;
  std::string OutputFile;
  std::string Demo;
  std::string FaultPlanSpec;
  unsigned Workers = 1;
  unsigned SimProcessors = 14;
  double TimeoutFactor = driver::FaultPolicy().TimeoutFactor;
  bool EmitAsm = false;
  bool Inline = false;
  bool Simulate = false;
  bool Verbose = false;
};

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [options] <module.w2>\n"
               "  -o <file>        write the download module image\n"
               "  --emit-asm       print Warp assembly listings\n"
               "  --parallel <N>   use N function-master threads\n"
               "  --inline         inline small functions first\n"
               "  --simulate       replay on the simulated 1989 host\n"
               "  --processors <N> processors for the simulated run\n"
               "  --fault-plan <p> inject failures into the simulation:\n"
               "                   crash=<ws>@<sec>[+<reboot sec>]\n"
               "                   slow=<ws>x<factor> loss=<prob> seed=<n>\n"
               "                   (comma separated; ws 0 is reliable)\n"
               "  --timeout-factor <x>  watchdog timeout as a multiple of\n"
               "                   the master's cost estimate (default 3)\n"
               "  --demo <w>       tiny|small|medium|large|huge|user|fig1\n"
               "  --verbose        per-function statistics\n",
               Prog);
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", Arg.c_str());
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "-o") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.OutputFile = V;
    } else if (Arg == "--emit-asm") {
      Opts.EmitAsm = true;
    } else if (Arg == "--parallel") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Workers = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
      if (Opts.Workers == 0)
        Opts.Workers = 1;
    } else if (Arg == "--processors") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.SimProcessors =
          static_cast<unsigned>(std::strtoul(V, nullptr, 10));
      if (Opts.SimProcessors == 0)
        Opts.SimProcessors = 1;
    } else if (Arg == "--fault-plan") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.FaultPlanSpec = V;
    } else if (Arg == "--timeout-factor") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.TimeoutFactor = std::strtod(V, nullptr);
      if (Opts.TimeoutFactor <= 1.0) {
        std::fprintf(stderr, "error: --timeout-factor must be > 1\n");
        return false;
      }
    } else if (Arg == "--inline") {
      Opts.Inline = true;
    } else if (Arg == "--simulate") {
      Opts.Simulate = true;
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else if (Arg == "--demo") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Demo = V;
    } else if (Arg == "--help" || Arg == "-h") {
      return false;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      return false;
    } else {
      Opts.InputFile = Arg;
    }
  }
  return !Opts.InputFile.empty() || !Opts.Demo.empty();
}

bool loadSource(const Options &Opts, std::string &Source) {
  if (!Opts.Demo.empty()) {
    if (Opts.Demo == "user")
      Source = workload::makeUserProgram();
    else if (Opts.Demo == "fig1")
      Source = workload::makeFigure1Program();
    else {
      for (auto Size : workload::AllSizes) {
        if (Opts.Demo == std::string(workload::sizeName(Size)).substr(2)) {
          Source = workload::makeTestModule(Size, 4);
          return true;
        }
      }
      if (Source.empty()) {
        std::fprintf(stderr, "error: unknown demo '%s'\n",
                     Opts.Demo.c_str());
        return false;
      }
    }
    return true;
  }
  std::ifstream In(Opts.InputFile);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n",
                 Opts.InputFile.c_str());
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Source = Buffer.str();
  return true;
}

/// Runs the full pipeline and prints every requested report.
int compileAndReport(const Options &Opts, const std::string &Source) {
  codegen::MachineModel MM = codegen::MachineModel::warpCell();

  // Parse (+ optional inlining) happens first so diagnostics surface
  // before any parallel work, exactly like the paper's master process.
  DiagnosticEngine Diags;
  w2::Lexer Lexer(Source, Diags);
  w2::Parser Parser(Lexer.lexAll(), Diags);
  auto Module = Parser.parseModule();
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (Opts.Inline) {
    w2::InlineStats Stats = w2::inlineSmallFunctions(*Module);
    std::printf("inliner: %u call(s) expanded, %u helper(s) removed\n",
                Stats.CallsInlined, Stats.HelpersRemoved);
  }
  w2::Sema Sema(Diags);
  if (!Sema.checkModule(*Module)) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // Phases 2-4 through the standard pipeline (threaded when requested).
  driver::ModuleResult Result;
  {
    std::vector<driver::FunctionResult> FnResults;
    if (Opts.Workers <= 1) {
      for (size_t S = 0; S != Module->numSections(); ++S) {
        const w2::SectionDecl *Section = Module->getSection(S);
        for (size_t F = 0; F != Section->numFunctions(); ++F)
          FnResults.push_back(driver::compileFunction(
              *Section, *Section->getFunction(F), MM));
      }
      driver::assembleAndLink(*Module, std::move(FnResults), Result);
      Result.Succeeded = !Result.Diags.hasErrors();
    } else {
      // The thread runner consumes source text; after inlining, the
      // transformed AST is pretty-printed back to W2 first.
      std::string ThreadSource =
          Opts.Inline ? w2::printModule(*Module) : Source;
      parallel::ThreadRunResult Par =
          parallel::compileModuleParallel(ThreadSource, MM, Opts.Workers);
      Result = std::move(Par.Module);
      std::printf("parallel compile with %u workers: %.1f ms\n",
                  Par.WorkersUsed, Par.ElapsedSec * 1e3);
    }
  }
  if (!Result.Succeeded) {
    std::fprintf(stderr, "%s", Result.Diags.str().c_str());
    return 1;
  }

  std::printf("compiled module '%s': %zu section(s), %zu function(s), "
              "image %llu bytes\n",
              Result.Image.ModuleName.c_str(), Result.Image.Sections.size(),
              Result.Functions.size(),
              static_cast<unsigned long long>(Result.Image.byteSize()));
  std::fputs(Result.Diags.str().c_str(), stdout);

  if (Opts.Verbose) {
    for (const driver::FunctionResult &F : Result.Functions)
      std::printf("  %-16s %5u lines  %6llu words  %u/%u regs  "
                  "%u spill(s)  %u loop(s) pipelined\n",
                  F.FunctionName.c_str(), F.Metrics.SourceLines,
                  static_cast<unsigned long long>(F.Program.CodeWords),
                  F.Program.IntRegsUsed, F.Program.FloatRegsUsed,
                  F.Program.Spills, F.LoopsPipelined);
  }

  if (Opts.EmitAsm)
    for (const driver::FunctionResult &F : Result.Functions)
      std::printf("\n%s", F.Program.Listing.c_str());

  if (!Opts.OutputFile.empty()) {
    std::ofstream Out(Opts.OutputFile, std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.OutputFile.c_str());
      return 1;
    }
    Out.write(reinterpret_cast<const char *>(Result.Image.Image.data()),
              static_cast<std::streamsize>(Result.Image.Image.size()));
    std::printf("wrote %s\n", Opts.OutputFile.c_str());
  }

  if (Opts.Simulate) {
    auto Host = cluster::HostConfig::sunNetwork1989();
    auto Model = parallel::CostModel::lisp1989();
    driver::FaultPolicy Policy;
    Policy.TimeoutFactor = Opts.TimeoutFactor;
    if (!Opts.FaultPlanSpec.empty()) {
      std::string Error;
      if (!cluster::parseFaultPlan(Opts.FaultPlanSpec, Host.Faults, Error)) {
        std::fprintf(stderr, "error: bad --fault-plan: %s\n", Error.c_str());
        return 1;
      }
    }
    auto Job = parallel::buildJob(Source, MM);
    if (!Job) {
      std::fprintf(stderr, "simulation skipped: %s\n",
                   Job.getError().message().c_str());
      return 0;
    }
    parallel::SeqStats Seq =
        parallel::simulateSequential(*Job, Host, Model);
    parallel::Assignment Assign =
        Opts.SimProcessors >= Job->numFunctions()
            ? parallel::scheduleFCFS(*Job, Opts.SimProcessors)
            : parallel::scheduleBalanced(*Job, Opts.SimProcessors);
    parallel::ParStats Par =
        parallel::simulateParallel(*Job, Assign, Host, Model, nullptr,
                                   Policy);
    std::printf("\nsimulated 1989 host (%u processors):\n",
                Opts.SimProcessors);
    std::printf("  sequential: %8.0f s (%.1f min)\n", Seq.ElapsedSec,
                Seq.ElapsedSec / 60);
    std::printf("  parallel:   %8.0f s (%.1f min)\n", Par.ElapsedSec,
                Par.ElapsedSec / 60);
    std::printf("  speedup:    %8.2f\n", Seq.ElapsedSec / Par.ElapsedSec);
    if (!Host.Faults.empty()) {
      // Fault-tolerance overhead: the same run on healthy hardware.
      cluster::HostConfig Clean = Host;
      Clean.Faults = cluster::FaultPlan();
      parallel::ParStats Base =
          parallel::simulateParallel(*Job, Assign, Clean, Model, nullptr,
                                     Policy);
      double OverheadSec = Par.ElapsedSec - Base.ElapsedSec;
      std::printf("  under faults:\n");
      std::printf("    timeouts fired:      %u\n", Par.TimeoutsFired);
      std::printf("    reassigned:          %u function(s)\n",
                  Par.FunctionsReassigned);
      std::printf("    speculative wins:    %u\n", Par.SpeculativeWins);
      std::printf("    master recompiles:   %u\n", Par.MasterRecompiles);
      std::printf("    retry time:          %.0f s\n", Par.RetriesSec);
      std::printf("    fault overhead:      %.0f s (%.1f%% of parallel "
                  "elapsed)\n",
                  OverheadSec,
                  Par.ElapsedSec > 0 ? 100.0 * OverheadSec / Par.ElapsedSec
                                     : 0.0);
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(Argv[0]);
    return 2;
  }
  std::string Source;
  if (!loadSource(Opts, Source))
    return 1;
  return compileAndReport(Opts, Source);
}
