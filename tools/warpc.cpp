//===- warpc.cpp - The warpc command-line driver --------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// The command-line compiler:
//
//   warpc [options] module.w2
//   warpc --demo user --simulate --processors 5
//
// Options:
//   -o <file>          write the linked download module image
//   --emit-asm         print the Warp assembly listing of every function
//   --parallel <N>     compile with N function-master threads (default 1)
//   --inline           run procedure inlining before compilation
//   --simulate         replay the compilation on the simulated 1989 host
//   --processors <N>   processors for the simulated parallel run
//   --fault-plan <p>   inject failures into the simulated run, e.g.
//                      "crash=3@120+600,slow=5x4,loss=0.01,seed=7"
//   --timeout-factor <x>  watchdog timeout as a multiple of the master's
//                      cost estimate (default 3)
//   --demo <which>     compile a built-in workload instead of a file:
//                      tiny|small|medium|large|huge|user|fig1
//   --trace-json <f>   write a Chrome trace-event JSON file (loadable in
//                      Perfetto) of the simulated run (with --simulate)
//                      or of the threaded compilation
//   --stats-json <f>   write run statistics + compiler metrics as JSON
//   --sample-period <s>  simulated seconds between telemetry samples
//   --cache <mode>     off|memory|disk: content-addressed function cache
//   --cache-dir <dir>  persistent cache directory (implies --cache disk)
//   --cache-stats      print cache hit/miss/store statistics
//   --explain-rebuild  print every function's cache fate and why
//   --verbose          print per-function statistics
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Checks.h"
#include "analysis/Diagnostic.h"
#include "cache/CompileCache.h"
#include "cluster/FaultPlan.h"
#include "driver/Compiler.h"
#include "parallel/AnalysisRunner.h"
#include "driver/FaultPolicy.h"
#include "obs/ChromeTrace.h"
#include "obs/MetricsRegistry.h"
#include "obs/StatsReport.h"
#include "obs/TimeSeries.h"
#include "obs/TraceContext.h"
#include "obs/TraceRecorder.h"
#include "parallel/ProcessRunner.h"
#include "parallel/SimRunner.h"
#include "parallel/ThreadRunner.h"
#include "service/Client.h"
#include "support/BinaryStream.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "w2/ASTPrinter.h"
#include "w2/Inliner.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "w2/Sema.h"
#include "workload/Generator.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace warpc;

namespace {

struct Options {
  std::string InputFile;
  std::string OutputFile;
  std::string Demo;
  std::string FaultPlanSpec;
  std::string TraceJsonFile;
  std::string StatsJsonFile;
  std::string AnalyzeJsonFile;
  std::string CacheDir;
  /// Which parallel backend compiles phases 2+3: "thread" (in-process
  /// function masters) or "process" (real fork/exec warp-worker pool).
  std::string Engine = "thread";
  bool EngineGiven = false;
  /// --server[=PATH]: forward the compile to a running warpd and render
  /// its result; fall back to a local compile when no daemon answers.
  bool UseServer = false;
  std::string ServerPath;
  analysis::AnalysisOptions Analysis;
  cache::CacheMode CacheMode = cache::CacheMode::Off;
  unsigned Workers = 1;
  bool WorkersGiven = false;
  unsigned SimProcessors = 14;
  double TimeoutFactor = driver::FaultPolicy().TimeoutFactor;
  /// 0 keeps the HostConfig default.
  double SamplePeriodSec = 0;
  bool EmitAsm = false;
  bool Inline = false;
  bool Simulate = false;
  bool Verbose = false;
  bool Analyze = false;
  bool CacheStats = false;
  bool ExplainRebuild = false;
};

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [options] <module.w2>\n"
               "  -o <file>        write the download module image\n"
               "  --emit-asm       print Warp assembly listings\n"
               "  --parallel <N>   use N function-master workers\n"
               "  --engine <e>     thread|process: run function masters as\n"
               "                   in-process threads or as real forked\n"
               "                   warp-worker processes (--processors sets\n"
               "                   the pool size when --parallel is absent)\n"
               "  --server[=PATH]  forward the compile to a running warpd\n"
               "                   daemon (default socket when PATH is\n"
               "                   omitted); falls back to a local compile\n"
               "                   when no daemon answers\n"
               "  --inline         inline small functions first\n"
               "  --simulate       replay on the simulated 1989 host\n"
               "  --processors <N> processors for the simulated run\n"
               "  --fault-plan <p> inject failures into the simulation:\n"
               "                   crash=<ws>@<sec>[+<reboot sec>]\n"
               "                   slow=<ws>x<factor> loss=<prob> seed=<n>\n"
               "                   (comma separated; ws 0 is reliable)\n"
               "  --timeout-factor <x>  watchdog timeout as a multiple of\n"
               "                   the master's cost estimate (default 3)\n"
               "  --demo <w>       tiny|small|medium|large|huge|user|fig1\n"
               "  --trace-json <f> write a Perfetto-loadable trace of the\n"
               "                   simulated (--simulate) or threaded run\n"
               "  --stats-json <f> write run statistics + metrics as JSON\n"
               "  --sample-period <s>  simulated seconds between telemetry\n"
               "                   samples (default 5)\n"
               "  --analyze        run the static-analysis checks first;\n"
               "                   error findings abort the compilation\n"
               "  --analyze-json <f>  write the findings as JSON (implies\n"
               "                   --analyze)\n"
               "  --werror         treat analysis warnings as errors\n"
               "  --disable-checks <ids>  comma-separated check ids to skip\n"
               "  --cache <m>      off|memory|disk: content-addressed cache\n"
               "                   of per-function phase-2/3 results\n"
               "  --cache-dir <d>  persistent cache directory (implies\n"
               "                   --cache disk)\n"
               "  --cache-stats    print cache hit/miss/store statistics\n"
               "  --explain-rebuild  print each function's cache fate and\n"
               "                   the invalidation reason\n"
               "  --verbose        per-function statistics\n",
               Prog);
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs an argument\n", Arg.c_str());
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "-o") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.OutputFile = V;
    } else if (Arg == "--emit-asm") {
      Opts.EmitAsm = true;
    } else if (Arg == "--parallel") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Workers = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
      if (Opts.Workers == 0)
        Opts.Workers = 1;
      Opts.WorkersGiven = true;
    } else if (Arg == "--engine") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Engine = V;
      if (Opts.Engine != "thread" && Opts.Engine != "process") {
        std::fprintf(stderr, "error: --engine must be thread or process\n");
        return false;
      }
      Opts.EngineGiven = true;
    } else if (Arg == "--server" ||
               Arg.rfind("--server=", 0) == 0) {
      Opts.UseServer = true;
      Opts.ServerPath = Arg == "--server"
                            ? service::defaultSocketPath()
                            : Arg.substr(std::strlen("--server="));
      if (Opts.ServerPath.empty()) {
        std::fprintf(stderr, "error: --server= needs a socket path\n");
        return false;
      }
    } else if (Arg == "--processors") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.SimProcessors =
          static_cast<unsigned>(std::strtoul(V, nullptr, 10));
      if (Opts.SimProcessors == 0)
        Opts.SimProcessors = 1;
    } else if (Arg == "--fault-plan") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.FaultPlanSpec = V;
    } else if (Arg == "--timeout-factor") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.TimeoutFactor = std::strtod(V, nullptr);
      if (Opts.TimeoutFactor <= 1.0) {
        std::fprintf(stderr, "error: --timeout-factor must be > 1\n");
        return false;
      }
    } else if (Arg == "--trace-json") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.TraceJsonFile = V;
    } else if (Arg == "--stats-json") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.StatsJsonFile = V;
    } else if (Arg == "--sample-period") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.SamplePeriodSec = std::strtod(V, nullptr);
      if (Opts.SamplePeriodSec <= 0) {
        std::fprintf(stderr, "error: --sample-period must be > 0\n");
        return false;
      }
    } else if (Arg == "--analyze") {
      Opts.Analyze = true;
    } else if (Arg == "--analyze-json") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.AnalyzeJsonFile = V;
      Opts.Analyze = true;
    } else if (Arg == "--werror") {
      Opts.Analysis.WarningsAsErrors = true;
    } else if (Arg == "--disable-checks") {
      const char *V = Next();
      if (!V)
        return false;
      std::string List = V;
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        std::string Id = List.substr(Pos, Comma - Pos);
        if (!Id.empty()) {
          if (!analysis::findCheck(Id)) {
            std::fprintf(stderr, "error: unknown check '%s'\n", Id.c_str());
            return false;
          }
          Opts.Analysis.Disabled.insert(Id);
        }
        Pos = Comma + 1;
      }
    } else if (Arg == "--cache") {
      const char *V = Next();
      if (!V)
        return false;
      std::string Mode = V;
      if (Mode == "off")
        Opts.CacheMode = cache::CacheMode::Off;
      else if (Mode == "memory")
        Opts.CacheMode = cache::CacheMode::Memory;
      else if (Mode == "disk")
        Opts.CacheMode = cache::CacheMode::Disk;
      else {
        std::fprintf(stderr,
                     "error: --cache must be off, memory, or disk\n");
        return false;
      }
    } else if (Arg == "--cache-dir") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.CacheDir = V;
      if (Opts.CacheMode == cache::CacheMode::Off)
        Opts.CacheMode = cache::CacheMode::Disk;
    } else if (Arg == "--cache-stats") {
      Opts.CacheStats = true;
    } else if (Arg == "--explain-rebuild") {
      Opts.ExplainRebuild = true;
    } else if (Arg == "--inline") {
      Opts.Inline = true;
    } else if (Arg == "--simulate") {
      Opts.Simulate = true;
    } else if (Arg == "--verbose") {
      Opts.Verbose = true;
    } else if (Arg == "--demo") {
      const char *V = Next();
      if (!V)
        return false;
      Opts.Demo = V;
    } else if (Arg == "--help" || Arg == "-h") {
      return false;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      return false;
    } else {
      Opts.InputFile = Arg;
    }
  }
  if (Opts.CacheMode == cache::CacheMode::Disk && Opts.CacheDir.empty()) {
    std::fprintf(stderr, "error: --cache disk needs --cache-dir\n");
    return false;
  }
  if (Opts.ExplainRebuild && Opts.CacheMode == cache::CacheMode::Off) {
    std::fprintf(stderr,
                 "error: --explain-rebuild needs --cache memory or disk\n");
    return false;
  }
  return !Opts.InputFile.empty() || !Opts.Demo.empty();
}

bool loadSource(const Options &Opts, std::string &Source) {
  if (!Opts.Demo.empty()) {
    if (Opts.Demo == "user")
      Source = workload::makeUserProgram();
    else if (Opts.Demo == "fig1")
      Source = workload::makeFigure1Program();
    else {
      for (auto Size : workload::AllSizes) {
        if (Opts.Demo == std::string(workload::sizeName(Size)).substr(2)) {
          Source = workload::makeTestModule(Size, 4);
          return true;
        }
      }
      if (Source.empty()) {
        std::fprintf(stderr, "error: unknown demo '%s'\n",
                     Opts.Demo.c_str());
        return false;
      }
    }
    return true;
  }
  std::ifstream In(Opts.InputFile);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n",
                 Opts.InputFile.c_str());
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Source = Buffer.str();
  return true;
}

// The statistics formatter lives in obs/StatsReport.h so tests (and other
// tools) can pin its text and JSON shape; every run statistic is recorded
// once and rendered twice, so the two outputs can never drift apart.
using obs::StatsReport;

std::string fmt(const char *Format, ...) {
  char Buf[160];
  va_list Args;
  va_start(Args, Format);
  std::vsnprintf(Buf, sizeof(Buf), Format, Args);
  va_end(Args);
  return Buf;
}

/// Runs the full pipeline and prints every requested report.
int compileAndReport(const Options &Opts, const std::string &Source) {
  codegen::MachineModel MM = codegen::MachineModel::warpCell();

  // Parse (+ optional inlining) happens first so diagnostics surface
  // before any parallel work, exactly like the paper's master process.
  DiagnosticEngine Diags;
  w2::Lexer Lexer(Source, Diags);
  w2::Parser Parser(Lexer.lexAll(), Diags);
  auto Module = Parser.parseModule();
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  if (Opts.Inline) {
    w2::InlineStats Stats = w2::inlineSmallFunctions(*Module);
    std::printf("inliner: %u call(s) expanded, %u helper(s) removed\n",
                Stats.CallsInlined, Stats.HelpersRemoved);
  }
  w2::Sema Sema(Diags);
  if (!Sema.checkModule(*Module)) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // Observability: every driver phase reports into one registry, and
  // --trace-json records either the simulated run (with --simulate) or
  // the threaded compilation below.
  obs::MetricsRegistry Metrics;
  obs::TraceSession Session;
  bool HaveSession = false;
  bool TraceThreads = !Opts.TraceJsonFile.empty() && !Opts.Simulate;

  // The compilation cache fronts phases 2+3: functions whose content
  // address matches a stored entry replay the stored result instead of
  // compiling. The rebuild plan is read before compiling, so it (and the
  // simulator's warm-task marking below) reflects what this run reuses
  // rather than what the run itself stored. The same cache carries the
  // interprocedural summary store --analyze reads and writes.
  std::unique_ptr<cache::CompileCache> Cache;
  std::vector<cache::ExplainEntry> Explain;
  if (Opts.CacheMode != cache::CacheMode::Off) {
    Cache = std::make_unique<cache::CompileCache>(
        Opts.CacheMode, cache::CacheContext::forModel(MM), Opts.CacheDir,
        &Metrics);
    Explain = Cache->explainModule(*Module);
    if (Opts.ExplainRebuild) {
      std::printf("rebuild plan (%zu function(s)):\n", Explain.size());
      for (const cache::ExplainEntry &E : Explain)
        std::printf("  %s.%s: %s\n", E.SectionName.c_str(),
                    E.FunctionName.c_str(),
                    cache::rebuildReasonName(E.Reason));
    }
  }

  // Static analysis as its own parallel phase: the checks fan out per
  // function like compilation phases 2+3, and error findings abort
  // before any code is generated. Without an explicit --parallel the
  // analysis uses every available core — it is pure and deterministic,
  // so there is no reason to leave cores idle.
  if (Opts.Analyze) {
    const unsigned AnalysisJobs =
        Opts.WorkersGiven ? Opts.Workers : parallel::defaultAnalysisWorkers();
    parallel::AnalysisRunResult Run = parallel::analyzeModuleParallel(
        *Module, Source, Opts.Analysis, AnalysisJobs, /*Rec=*/nullptr,
        &Metrics, Cache.get());
    if (!Run.Analysis.Diags.empty())
      std::fputs(analysis::renderText(Run.Analysis.Diags).c_str(), stderr);
    else
      std::printf("analysis: %u function(s) clean\n",
                  Run.Analysis.FunctionsAnalyzed);
    if (!Opts.AnalyzeJsonFile.empty()) {
      std::ofstream Out(Opts.AnalyzeJsonFile);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write '%s'\n",
                     Opts.AnalyzeJsonFile.c_str());
        return 1;
      }
      Out << analysis::renderJson(Run.Analysis.Diags).dump(1) << "\n";
      std::printf("wrote analysis %s\n", Opts.AnalyzeJsonFile.c_str());
    }
    if (analysis::countDiags(Run.Analysis.Diags).Errors) {
      // Remember the fingerprints even on an aborted build: the stored
      // summaries are valid and the next --analyze should warm-hit.
      if (Cache)
        Cache->rememberModule(*Module);
      return 1;
    }
  }

  // Phases 2-4 through the standard pipeline: the process engine forks a
  // real warp-worker pool, the thread engine runs in-process function
  // masters (also used whenever the real compilation itself is being
  // traced — the trace models the master/worker hierarchy).
  driver::ModuleResult Result;
  parallel::ProcessRunResult ProcStats;
  bool UsedProcess = false;
  {
    std::vector<driver::FunctionResult> FnResults;
    if (Opts.Engine == "process") {
      // Pool size defaults to --processors when --parallel is absent, so
      // `--engine process --processors 14` reads like the paper's runs.
      unsigned Pool = Opts.WorkersGiven ? Opts.Workers : Opts.SimProcessors;
      std::string ProcSource =
          Opts.Inline ? w2::printModule(*Module) : Source;
      std::unique_ptr<obs::TraceRecorder> Rec;
      if (TraceThreads)
        Rec = std::make_unique<obs::TraceRecorder>(obs::ClockDomain::Steady);
      driver::FaultPolicy Policy;
      Policy.TimeoutFactor = Opts.TimeoutFactor;
      parallel::ProcessRunnerConfig Config;
      Config.WorkerBinary = parallel::defaultWorkerBinary();
      ProcStats = parallel::compileModuleProcess(
          ProcSource, MM, Pool, Policy, Config, Rec.get(), &Metrics,
          Cache.get());
      UsedProcess = true;
      Result = std::move(ProcStats.Module);
      if (Rec) {
        Session = Rec->finish();
        HaveSession = true;
      }
      std::printf("process compile with %u worker process(es): %.1f ms\n",
                  ProcStats.WorkersUsed, ProcStats.ElapsedSec * 1e3);
    } else if (Opts.Workers <= 1 && !TraceThreads) {
      for (size_t S = 0; S != Module->numSections(); ++S) {
        const w2::SectionDecl *Section = Module->getSection(S);
        for (size_t F = 0; F != Section->numFunctions(); ++F)
          FnResults.push_back(driver::compileFunctionCached(
              *Section, *Section->getFunction(F), MM, Cache.get(),
              &Metrics));
      }
      driver::assembleAndLink(*Module, std::move(FnResults), Result,
                              &Metrics);
      Result.Succeeded = !Result.Diags.hasErrors();
    } else {
      // The thread runner consumes source text; after inlining, the
      // transformed AST is pretty-printed back to W2 first.
      std::string ThreadSource =
          Opts.Inline ? w2::printModule(*Module) : Source;
      std::unique_ptr<obs::TraceRecorder> Rec;
      if (TraceThreads) {
        Rec = std::make_unique<obs::TraceRecorder>(obs::ClockDomain::Steady);
        Rec->setEngine("thread");
      }
      parallel::ThreadRunResult Par = parallel::compileModuleParallel(
          ThreadSource, MM, Opts.Workers, driver::FaultPolicy(),
          /*Inject=*/nullptr, Rec.get(), &Metrics, Cache.get());
      Result = std::move(Par.Module);
      if (Rec) {
        Session = Rec->finish();
        HaveSession = true;
      }
      if (Opts.Workers > 1)
        std::printf("parallel compile with %u workers: %.1f ms\n",
                    Par.WorkersUsed, Par.ElapsedSec * 1e3);
    }
  }
  if (!Result.Succeeded) {
    std::fprintf(stderr, "%s", Result.Diags.str().c_str());
    return 1;
  }
  // Record the module's fingerprints so the next invocation can name why
  // each function rebuilds (the entries themselves were stored above).
  if (Cache)
    Cache->rememberModule(*Module);

  std::printf("compiled module '%s': %zu section(s), %zu function(s), "
              "image %llu bytes\n",
              Result.Image.ModuleName.c_str(), Result.Image.Sections.size(),
              Result.Functions.size(),
              static_cast<unsigned long long>(Result.Image.byteSize()));
  std::fputs(Result.Diags.str().c_str(), stdout);

  if (Opts.Verbose) {
    for (const driver::FunctionResult &F : Result.Functions)
      std::printf("  %-16s %5u lines  %6llu words  %u/%u regs  "
                  "%u spill(s)  %u loop(s) pipelined\n",
                  F.FunctionName.c_str(), F.Metrics.SourceLines,
                  static_cast<unsigned long long>(F.Program.CodeWords),
                  F.Program.IntRegsUsed, F.Program.FloatRegsUsed,
                  F.Program.Spills, F.LoopsPipelined);
  }

  if (Opts.EmitAsm)
    for (const driver::FunctionResult &F : Result.Functions)
      std::printf("\n%s", F.Program.Listing.c_str());

  if (!Opts.OutputFile.empty()) {
    std::ofstream Out(Opts.OutputFile, std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.OutputFile.c_str());
      return 1;
    }
    Out.write(reinterpret_cast<const char *>(Result.Image.Image.data()),
              static_cast<std::streamsize>(Result.Image.Image.size()));
    std::printf("wrote %s\n", Opts.OutputFile.c_str());
  }

  StatsReport Report;
  if (Opts.Simulate) {
    auto Host = cluster::HostConfig::sunNetwork1989();
    if (Opts.SamplePeriodSec > 0)
      Host.TelemetrySamplePeriodSec = Opts.SamplePeriodSec;
    auto Model = parallel::CostModel::lisp1989();
    driver::FaultPolicy Policy;
    Policy.TimeoutFactor = Opts.TimeoutFactor;
    if (!Opts.FaultPlanSpec.empty()) {
      std::string Error;
      if (!cluster::parseFaultPlan(Opts.FaultPlanSpec, Host.Faults, Error)) {
        std::fprintf(stderr, "error: bad --fault-plan: %s\n", Error.c_str());
        return 1;
      }
    }
    auto Job = parallel::buildJob(Source, MM);
    if (!Job) {
      std::fprintf(stderr, "simulation skipped: %s\n",
                   Job.getError().message().c_str());
      return 0;
    }
    if (Cache) {
      // Replay the pre-compile rebuild plan onto the job: every function
      // that was a cache hit in this process becomes a warm task, so the
      // simulated 1989 run models the same incremental recompile.
      std::set<std::string> Warm;
      for (const cache::ExplainEntry &E : Explain)
        if (E.Reason == cache::RebuildReason::Hit)
          Warm.insert(E.SectionName + "." + E.FunctionName);
      for (auto &Section : Job->Sections)
        for (parallel::FunctionTask &T : Section)
          T.Cached = Warm.count(T.SectionName + "." + T.FunctionName) != 0;
      Job->CacheEnabled = true;
    }
    parallel::SeqStats Seq =
        parallel::simulateSequential(*Job, Host, Model);
    parallel::Assignment Assign =
        Opts.SimProcessors >= Job->numFunctions()
            ? parallel::scheduleFCFS(*Job, Opts.SimProcessors)
            : parallel::scheduleBalanced(*Job, Opts.SimProcessors);
    // Recording also powers the --stats-json "series" block, so the
    // recorder runs whenever either artifact was requested.
    std::unique_ptr<obs::TraceRecorder> Rec;
    if (!Opts.TraceJsonFile.empty() || !Opts.StatsJsonFile.empty()) {
      Rec = std::make_unique<obs::TraceRecorder>(obs::ClockDomain::Simulated);
      Rec->setEngine("sim");
    }
    parallel::ParStats Par = parallel::simulateParallel(
        *Job, Assign, Host, Model, Rec.get(), Policy);
    if (Rec) {
      // The simulator fills the topology; the sequential baseline is the
      // caller's to attach — it is what makes the trace self-describing
      // enough for warp-traceview's overhead decomposition.
      Rec->setRunTotals(Par.ElapsedSec, Seq.ElapsedSec,
                        Job->numFunctions());
      Session = Rec->finish();
      HaveSession = true;
    }

    Report.beginGroup("simulation",
                      fmt("simulated 1989 host (%u processors)",
                          Opts.SimProcessors));
    Report.add("sequential_sec", "sequential",
               fmt("%8.0f s (%.1f min)", Seq.ElapsedSec, Seq.ElapsedSec / 60),
               Seq.ElapsedSec);
    Report.add("parallel_sec", "parallel",
               fmt("%8.0f s (%.1f min)", Par.ElapsedSec, Par.ElapsedSec / 60),
               Par.ElapsedSec);
    double Speedup = Par.ElapsedSec > 0 ? Seq.ElapsedSec / Par.ElapsedSec : 0;
    Report.add("speedup", "speedup", fmt("%8.2f", Speedup), Speedup);
    if (Job->CacheEnabled) {
      Report.add("cache_hits", "cache hits", fmt("%8u", Par.CacheHits),
                 Par.CacheHits);
      Report.add("cache_misses", "cache misses", fmt("%8u", Par.CacheMisses),
                 Par.CacheMisses);
    }

    parallel::OverheadBreakdown OB =
        parallel::computeOverheads(Seq, Par, Job->numFunctions());
    Report.beginGroup("overheads", "overhead decomposition (Section 4.2.3)",
                      2);
    Report.add("total_sec", "total",
               fmt("%8.0f s (%.1f%% of elapsed)", OB.TotalSec,
                   OB.relTotalPct()),
               OB.TotalSec);
    Report.add("impl_sec", "implementation", fmt("%8.0f s", OB.ImplSec),
               OB.ImplSec);
    Report.add("sys_sec", "system",
               fmt("%8.0f s (%.1f%% of elapsed)", OB.SysSec, OB.relSysPct()),
               OB.SysSec);

    if (!Host.Faults.empty()) {
      // Fault-tolerance overhead: the same run on healthy hardware.
      cluster::HostConfig Clean = Host;
      Clean.Faults = cluster::FaultPlan();
      parallel::ParStats Base = parallel::simulateParallel(
          *Job, Assign, Clean, Model, nullptr, Policy);
      double OverheadSec = Par.ElapsedSec - Base.ElapsedSec;
      Report.beginGroup("faults", "under faults", 2);
      Report.add("timeouts_fired", "timeouts fired",
                 fmt("%u", Par.TimeoutsFired), Par.TimeoutsFired);
      Report.add("functions_reassigned", "reassigned",
                 fmt("%u function(s)", Par.FunctionsReassigned),
                 Par.FunctionsReassigned);
      Report.add("speculative_wins", "speculative wins",
                 fmt("%u", Par.SpeculativeWins), Par.SpeculativeWins);
      Report.add("master_recompiles", "master recompiles",
                 fmt("%u", Par.MasterRecompiles), Par.MasterRecompiles);
      Report.add("retry_sec", "retry time", fmt("%.0f s", Par.RetriesSec),
                 Par.RetriesSec);
      Report.add("fault_overhead_sec", "fault overhead",
                 fmt("%.0f s (%.1f%% of parallel elapsed)", OverheadSec,
                     Par.ElapsedSec > 0
                         ? 100.0 * OverheadSec / Par.ElapsedSec
                         : 0.0),
                 OverheadSec);
    }
  }

  if (UsedProcess) {
    Report.beginGroup("process",
                      fmt("process engine (%u worker process(es))",
                          ProcStats.WorkersUsed));
    Report.add("elapsed_ms", "elapsed",
               fmt("%8.1f ms", ProcStats.ElapsedSec * 1e3),
               ProcStats.ElapsedSec * 1e3);
    Report.add("workers_spawned", "processes spawned",
               fmt("%8u", ProcStats.WorkersSpawned), ProcStats.WorkersSpawned);
    Report.add("worker_deaths", "worker deaths",
               fmt("%8u", ProcStats.WorkerDeaths), ProcStats.WorkerDeaths);
    Report.add("watchdog_fires", "watchdog fires",
               fmt("%8u", ProcStats.WatchdogFires), ProcStats.WatchdogFires);
    Report.add("frame_errors", "frame errors",
               fmt("%8u", ProcStats.FrameErrors), ProcStats.FrameErrors);
    Report.add("retries", "retries",
               fmt("%8u", ProcStats.RetriesAttempted),
               ProcStats.RetriesAttempted);
    Report.add("reassigned", "reassigned",
               fmt("%8u", ProcStats.FunctionsReassigned),
               ProcStats.FunctionsReassigned);
    Report.add("master_recovered", "master recovered",
               fmt("%8u", ProcStats.FunctionsRecovered),
               ProcStats.FunctionsRecovered);
    if (ProcStats.SpeculativeLaunches) {
      Report.add("speculative_launches", "speculative launches",
                 fmt("%8u", ProcStats.SpeculativeLaunches),
                 ProcStats.SpeculativeLaunches);
      Report.add("speculative_wins", "speculative wins",
                 fmt("%8u", ProcStats.SpeculativeWins),
                 ProcStats.SpeculativeWins);
    }
  }

  if (Cache && Opts.CacheStats) {
    cache::CacheStats CS = Cache->stats();
    Report.beginGroup("cache", "compilation cache");
    Report.add("hits", "hits", fmt("%8llu", (unsigned long long)CS.Hits),
               CS.Hits);
    Report.add("misses", "misses", fmt("%8llu", (unsigned long long)CS.Misses),
               CS.Misses);
    Report.add("stores", "stores", fmt("%8llu", (unsigned long long)CS.Stores),
               CS.Stores);
    Report.add("bytes_loaded", "bytes loaded",
               fmt("%8llu", (unsigned long long)CS.BytesLoaded),
               CS.BytesLoaded);
    Report.add("bytes_stored", "bytes stored",
               fmt("%8llu", (unsigned long long)CS.BytesStored),
               CS.BytesStored);
    Report.add("corrupt_entries", "corrupt entries",
               fmt("%8llu", (unsigned long long)CS.CorruptEntries),
               CS.CorruptEntries);
  }
  // Latency quantiles from the metrics histograms ride the same report;
  // they matter to the perf gate, so any --stats-json run carries them.
  if (Opts.Verbose || !Opts.StatsJsonFile.empty())
    obs::appendHistogramQuantiles(Report, Metrics);

  if (!Report.empty())
    std::printf("\n%s", Report.renderText().c_str());

  if (!Opts.TraceJsonFile.empty()) {
    std::string Error;
    if (!HaveSession ||
        !obs::writeChromeTraceFile(Session, Opts.TraceJsonFile, Error)) {
      std::fprintf(stderr, "error: cannot write trace '%s': %s\n",
                   Opts.TraceJsonFile.c_str(),
                   HaveSession ? Error.c_str() : "no trace was recorded");
      return 1;
    }
    std::printf("wrote trace %s (%zu events; open in Perfetto or "
                "chrome://tracing)\n",
                Opts.TraceJsonFile.c_str(), Session.Events.size());
  }

  if (!Opts.StatsJsonFile.empty()) {
    json::Value Root = json::Value::object();
    Root.set("schema", obs::StatsSchemaVersion);
    json::Value Run = json::Value::object();
    Run.set("module", Result.Image.ModuleName);
    Run.set("sections", static_cast<uint64_t>(Result.Image.Sections.size()));
    Run.set("functions", static_cast<uint64_t>(Result.Functions.size()));
    Run.set("image_bytes", static_cast<uint64_t>(Result.Image.byteSize()));
    Run.set("engine", Opts.Engine);
    Run.set("workers",
            UsedProcess ? ProcStats.WorkersUsed : Opts.Workers);
    Run.set("simulated", Opts.Simulate);
    Root.set("run", std::move(Run));
    if (!Report.empty())
      Root.set("stats", Report.toJson());
    Root.set("metrics", Metrics.toJson());
    Root.set("series", HaveSession
                           ? obs::seriesJson(obs::sessionSeries(Session))
                           : json::Value::object());
    std::ofstream Out(Opts.StatsJsonFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.StatsJsonFile.c_str());
      return 1;
    }
    Out << Root.dump(1) << "\n";
    std::printf("wrote stats %s\n", Opts.StatsJsonFile.c_str());
  }
  return 0;
}

} // namespace

/// Forwards the compile to a running warpd and renders the result with
/// the same output shape as a local run (same "compiled module" line,
/// diagnostics stream, -o image bytes, and stats-json schema — the
/// smoke test cmp's the two images byte for byte). Sets \p FellBack
/// instead of failing when no daemon answers the socket.
int compileViaServer(const Options &Opts, const std::string &Source,
                     bool &FellBack) {
  FellBack = false;
  // The client-side trace: connect + request spans recorded here, the
  // daemon's shard (with the worker spans it already spliced) merged in
  // after the result lands. The recorder exists before connect() so the
  // hello exchange is representable on its clock.
  const bool Tracing = !Opts.TraceJsonFile.empty();
  std::unique_ptr<obs::TraceRecorder> Rec;
  if (Tracing) {
    Rec = std::make_unique<obs::TraceRecorder>(obs::ClockDomain::Steady);
    uint64_t TraceId = fnv1a64(
        reinterpret_cast<const uint8_t *>(Source.data()), Source.size());
    Rec->setTraceId(TraceId ? TraceId : 1);
    Rec->setEngine("client");
    Rec->makeLanes(2); // lane 0: client lifecycle, lane 1: daemon shard.
  }

  service::Client Client;
  std::string Error;
  const double ConnT0 = Rec ? Rec->nowSec() : 0;
  if (!Client.connect(Opts.ServerPath, Error)) {
    std::fprintf(stderr, "warning: %s; compiling locally\n", Error.c_str());
    FellBack = true;
    return 0;
  }
  uint64_t ConnectSpanId = 0;
  if (Rec) {
    obs::SpanEvent &E =
        Rec->lane(0).span(ConnT0, Rec->nowSec() - ConnT0,
                          obs::EventKind::SpanStartup, obs::Phase::Setup);
    E.Host = 0;
    ConnectSpanId = E.spanId();
  }
  for (const auto &[Given, Flag] :
       {std::pair<bool, const char *>{Opts.Simulate, "--simulate"},
        {Opts.Analyze, "--analyze"},
        {Opts.EmitAsm, "--emit-asm"},
        {Opts.Verbose, "--verbose"},
        {Opts.Inline, "--inline"},
        {Opts.ExplainRebuild, "--explain-rebuild"}})
    if (Given)
      std::fprintf(stderr, "warning: %s is ignored under --server\n", Flag);

  service::wire::CompileRequestMsg Req;
  Req.RequestId = 1;
  Req.ModuleSource = Source;
  Req.Engine = !Opts.EngineGiven ? 0 : (Opts.Engine == "process" ? 2 : 1);
  Req.Workers = Opts.WorkersGiven ? Opts.Workers : 0;
  Req.UseCache = 1;

  // The request span brackets submit → result; its id rides the frame so
  // every daemon- and worker-side span hangs off it causally.
  const double ReqT0 = Rec ? Rec->nowSec() : 0;
  obs::SpanEvent *ReqSpan = nullptr;
  if (Rec) {
    ReqSpan = &Rec->lane(0).span(ReqT0, 0, obs::EventKind::SpanCompile,
                                 obs::Phase::Compile);
    ReqSpan->Host = 0;
    ReqSpan->Attempt = static_cast<int32_t>(Req.RequestId);
    ReqSpan->Parent = ConnectSpanId;
    Req.TraceId = Rec->traceId();
    Req.ParentSpanId = ReqSpan->spanId();
  }

  service::RequestOutcome Outcome;
  if (!Client.compile(Req, Outcome, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  const double ReqT1 = Rec ? Rec->nowSec() : 0;
  if (ReqSpan)
    ReqSpan->DurSec = ReqT1 - ReqT0;
  if (!Outcome.Accepted) {
    std::fprintf(stderr, "error: server rejected the request: %s\n",
                 Outcome.Reject.Detail.c_str());
    return 1;
  }
  const service::wire::CompileResultMsg &R = Outcome.Result;
  using service::wire::ResultStatus;
  if (R.Status == static_cast<uint8_t>(ResultStatus::CompileError)) {
    std::fprintf(stderr, "%s", R.DiagText.c_str());
    return 1;
  }
  if (R.Status != static_cast<uint8_t>(ResultStatus::Ok)) {
    std::fprintf(stderr, "error: server %s the request\n",
                 R.Status == static_cast<uint8_t>(ResultStatus::Cancelled)
                     ? "cancelled"
                     : "expired");
    return 1;
  }

  std::printf("daemon compile via %s: engine %s, %u worker(s), %.1f ms "
              "(%.1f ms queued)\n",
              Opts.ServerPath.c_str(), R.EngineUsed.c_str(), R.WorkersUsed,
              R.CompileSec * 1e3, R.QueueSec * 1e3);
  std::printf("compiled module '%s': %zu section(s), %zu function(s), "
              "image %llu bytes\n",
              R.ModuleName.c_str(), static_cast<size_t>(R.NumSections),
              static_cast<size_t>(R.NumFunctions),
              static_cast<unsigned long long>(R.Image.size()));
  std::fputs(R.DiagText.c_str(), stdout);

  if (Rec) {
    ReqSpan->Bytes = R.Image.size();
    // Merge the daemon's shard. The hello exchange gives the four NTP
    // stamps; the two client-side ones are converted from steady-clock
    // time points onto the recorder clock. An invalid sync (old daemon)
    // splices with offset 0 and lets the flight-window clamp keep the
    // merged trace monotonic.
    if (!R.ShardBytes.empty()) {
      obs::SpanShard Shard;
      if (obs::decodeSpanShard(R.ShardBytes, Shard) &&
          Shard.TraceId == Rec->traceId()) {
        auto ToRec = [&](std::chrono::steady_clock::time_point Tp) {
          return Rec->nowSec() -
                 std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Tp)
                     .count();
        };
        const obs::ClockSync Sync = obs::estimateClockOffset(
            ToRec(Client.helloSendTime()), Client.serverHello().HelloRecvSec,
            Client.serverHello().HelloSendSec, ToRec(Client.helloRecvTime()));
        obs::SpliceOptions SO;
        SO.ParentSpanId = ReqSpan->spanId();
        SO.OffsetSec = Sync.Valid ? Sync.OffsetSec : 0;
        SO.WindowStartSec = ReqT0;
        SO.WindowEndSec = ReqT1;
        SO.Host = 1;
        obs::spliceShard(Shard, *Rec, Rec->lane(1), SO);
      }
    }
    const double Now = Rec->nowSec();
    obs::SpanEvent &Done = Rec->lane(0).instant(
        Now, obs::EventKind::RunComplete, obs::Phase::Assembly);
    Done.Host = 0;
    Done.Parent = ReqSpan->spanId();
    Rec->setTopology(2, R.NumSections);
    Rec->setRunTotals(Now, 0.0, R.NumFunctions);
    obs::TraceSession Session = Rec->finish();
    std::string TraceError;
    if (!obs::writeChromeTraceFile(Session, Opts.TraceJsonFile,
                                   TraceError)) {
      std::fprintf(stderr, "error: cannot write trace '%s': %s\n",
                   Opts.TraceJsonFile.c_str(), TraceError.c_str());
      return 1;
    }
    std::printf("wrote trace %s (%zu events; open in Perfetto or "
                "chrome://tracing)\n",
                Opts.TraceJsonFile.c_str(), Session.Events.size());
  }

  if (!Opts.OutputFile.empty()) {
    std::ofstream Out(Opts.OutputFile, std::ios::binary);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.OutputFile.c_str());
      return 1;
    }
    Out.write(reinterpret_cast<const char *>(R.Image.data()),
              static_cast<std::streamsize>(R.Image.size()));
    std::printf("wrote %s\n", Opts.OutputFile.c_str());
  }

  if (!Opts.StatsJsonFile.empty()) {
    json::Value Root = json::Value::object();
    Root.set("schema", obs::StatsSchemaVersion);
    json::Value Run = json::Value::object();
    Run.set("module", R.ModuleName);
    Run.set("sections", static_cast<uint64_t>(R.NumSections));
    Run.set("functions", static_cast<uint64_t>(R.NumFunctions));
    Run.set("image_bytes", static_cast<uint64_t>(R.Image.size()));
    Run.set("engine", "daemon");
    Run.set("backend_engine", R.EngineUsed);
    Run.set("workers", static_cast<uint64_t>(R.WorkersUsed));
    Run.set("socket", Opts.ServerPath);
    Run.set("queue_ms", R.QueueSec * 1e3);
    Run.set("compile_ms", R.CompileSec * 1e3);
    Run.set("cache_hits", R.CacheHits);
    Run.set("cache_misses", R.CacheMisses);
    Root.set("run", std::move(Run));
    std::ofstream Out(Opts.StatsJsonFile);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   Opts.StatsJsonFile.c_str());
      return 1;
    }
    Out << Root.dump(1) << "\n";
    std::printf("wrote stats %s\n", Opts.StatsJsonFile.c_str());
  }
  return 0;
}

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts)) {
    usage(Argv[0]);
    return 2;
  }
  std::string Source;
  if (!loadSource(Opts, Source))
    return 1;
  if (Opts.UseServer) {
    bool FellBack = false;
    const int RC = compileViaServer(Opts, Source, FellBack);
    if (!FellBack)
      return RC;
    // No daemon on the socket: the compile still happens, locally.
  }
  return compileAndReport(Opts, Source);
}
