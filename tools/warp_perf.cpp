//===- warp_perf.cpp - Perf-regression gate CLI ---------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Compares a candidate performance document against one or more baseline
// documents and fails (exit 1) when a gated metric regressed beyond the
// noise threshold:
//
//   warp-perf baseline.json candidate.json
//   warp-perf run1.json run2.json run3.json candidate.json   # repeats
//   warp-perf --threshold 15 --all baseline.json candidate.json
//
// Inputs are the JSON files written by `warpc --stats-json` or by the
// benchmark binaries (BENCH_*.json). With several baselines the
// per-metric threshold widens to twice the repeats' max relative
// deviation, so naturally noisy metrics do not gate spuriously.
//
// Exit codes: 0 no regressions, 1 regressions found, 2 usage/IO error.
//
//===----------------------------------------------------------------------===//

#include "obs/PerfDiff.h"
#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace warpc;

static bool readJsonFile(const std::string &Path, json::Value &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: %s: cannot open file\n", Path.c_str());
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Error;
  Out = json::parse(Buf.str(), Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return false;
  }
  return true;
}

static void usage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: warp-perf [options] <baseline.json> [more-baselines...] "
      "<candidate.json>\n"
      "  compares the last file (candidate) against the preceding\n"
      "  baseline(s); several baselines act as methodology repeats and\n"
      "  widen each metric's noise threshold accordingly\n"
      "options:\n"
      "  --threshold <pct>   noise floor in percent (default 10)\n"
      "  --all               list unchanged metrics too\n"
      "exit: 0 no regressions, 1 regressions, 2 usage/IO error\n");
}

int main(int Argc, char **Argv) {
  obs::PerfDiffOptions Opts;
  bool ShowAll = false;
  std::vector<std::string> Paths;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--threshold") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --threshold needs a value\n");
        return 2;
      }
      Opts.DefaultThresholdPct = std::atof(Argv[++I]);
      if (Opts.DefaultThresholdPct < 0) {
        std::fprintf(stderr, "error: --threshold must be >= 0\n");
        return 2;
      }
    } else if (std::strcmp(Argv[I], "--all") == 0) {
      ShowAll = true;
    } else if (std::strcmp(Argv[I], "--help") == 0 ||
               std::strcmp(Argv[I], "-h") == 0) {
      usage(stdout);
      return 0;
    } else if (Argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", Argv[I]);
      return 2;
    } else {
      Paths.push_back(Argv[I]);
    }
  }
  if (Paths.size() < 2) {
    usage(stderr);
    return 2;
  }

  std::vector<json::Value> Baselines;
  for (size_t I = 0; I + 1 < Paths.size(); ++I) {
    json::Value Doc;
    if (!readJsonFile(Paths[I], Doc))
      return 2;
    Baselines.push_back(std::move(Doc));
  }
  json::Value Candidate;
  if (!readJsonFile(Paths.back(), Candidate))
    return 2;

  obs::PerfDiffResult R = obs::diffPerf(Baselines, Candidate, Opts);
  if (R.Deltas.empty()) {
    std::fprintf(stderr,
                 "error: no comparable numeric metrics between %s and %s\n",
                 Paths.front().c_str(), Paths.back().c_str());
    return 2;
  }
  std::fputs(obs::renderPerfDiff(R, ShowAll).c_str(), stdout);
  return R.Regressions ? 1 : 0;
}
