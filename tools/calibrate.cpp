//===- calibrate.cpp - Cost-model calibration sweep -----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Prints the full calibration sweep the cost model was fitted against:
// for every benchmark size and function count, the simulated sequential
// and parallel times, speedups, and the overhead decomposition, plus the
// user-program speedups. Re-run this after touching CostModel or
// HostConfig constants and compare against EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "codegen/MachineModel.h"
#include "parallel/Job.h"
#include "parallel/CostModel.h"
#include "parallel/SimRunner.h"
#include "parallel/Scheduler.h"
#include "workload/Generator.h"
#include <cstdio>
using namespace warpc;
using namespace warpc::parallel;
int main() {
  auto MM = codegen::MachineModel::warpCell();
  auto Model = CostModel::lisp1989();
  auto Host = cluster::HostConfig::sunNetwork1989();
  for (auto Size : workload::AllSizes) {
    std::printf("== %s ==\n", workload::sizeName(Size));
    for (unsigned n : {1u,2u,4u,8u}) {
      auto Job = buildJob(workload::makeTestModule(Size, n), MM);
      if (!Job) { std::printf("ERROR %s\n", Job.getError().message().c_str()); continue; }
      auto Seq = simulateSequential(*Job, Host, Model);
      auto Asg = scheduleFCFS(*Job, Host.NumWorkstations);
      auto Par = simulateParallel(*Job, Asg, Host, Model);
      auto Ov = computeOverheads(Seq, Par, n);
      std::printf("n=%u seqEl=%7.0f seqCpu=%7.0f parEl=%7.0f parCpu/p=%6.0f speedup=%5.2f totOv%%=%6.1f sysOv%%=%6.1f seqGC=%5.0f parGC=%5.0f seqPage=%5.0f parPage=%5.0f startup=%5.0f\n",
        n, Seq.ElapsedSec, Seq.CpuSec, Par.ElapsedSec, Par.perProcessorCpuSec(),
        Seq.ElapsedSec/Par.ElapsedSec, Ov.relTotalPct(), Ov.relSysPct(),
        Seq.GCSec, Par.FnGCSec, Seq.PageWaitSec, Par.PageWaitSec, Par.StartupSec);
    }
  }
  std::printf("== user program ==\n");
  auto UJob = buildJob(workload::makeUserProgram(), MM);
  if (UJob) {
    auto Seq = simulateSequential(*UJob, Host, Model);
    std::printf("seq elapsed=%.0f cpu=%.0f gc=%.0f page=%.0f\n", Seq.ElapsedSec, Seq.CpuSec, Seq.GCSec, Seq.PageWaitSec);
    for (unsigned p : {2u,3u,5u,9u}) {
      auto Asg = p >= 9 ? scheduleFCFS(*UJob, p) : scheduleBalanced(*UJob, p);
      auto Par = simulateParallel(*UJob, Asg, Host, Model);
      std::printf("p=%u parEl=%7.0f speedup=%5.2f procs=%u\n", p, Par.ElapsedSec, Seq.ElapsedSec/Par.ElapsedSec, Par.ProcessorsUsed);
    }
  }
  return 0;
}
