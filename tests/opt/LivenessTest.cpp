//===- LivenessTest.cpp ----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Liveness.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::ir;
using namespace warpc::opt;
using warpc::test::lowerFirstFunction;
using warpc::test::wrapFunction;

TEST(LivenessTest, StraightLineHasEmptyBoundarySets) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float { return x * 2.0; }
)"));
  ASSERT_TRUE(F);
  LivenessInfo Live = LivenessInfo::compute(*F);
  ASSERT_EQ(Live.LiveIn.size(), 1u);
  EXPECT_FALSE(Live.LiveIn[0].any());
  EXPECT_FALSE(Live.LiveOut[0].any());
  EXPECT_GE(Live.Iterations, 1u);
}

TEST(LivenessTest, LoopCarriedRegisterIsLiveAroundLoop) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  var acc: int = 0;
  for i = 0 to 9 {
    acc = acc + i;
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  LivenessInfo Live = LivenessInfo::compute(*F);

  // The induction register is updated in the body (block 2) and read in
  // the header (block 1): it must be live into the header and live out of
  // the body.
  const BasicBlock *Body = F->block(2);
  const Instr &Latch = Body->Instrs[Body->Instrs.size() - 2];
  ASSERT_EQ(Latch.Op, Opcode::Add);
  Reg Ind = Latch.Dst;
  EXPECT_TRUE(Live.LiveIn[1].test(Ind));
  EXPECT_TRUE(Live.LiveOut[2].test(Ind));
  EXPECT_TRUE(Live.LiveIn[2].test(Ind));
}

TEST(LivenessTest, ValueDeadAfterLastUse) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(n: int): int {
  var r: int = 0;
  if (n > 0) {
    r = 1;
  }
  return r;
}
)"));
  ASSERT_TRUE(F);
  LivenessInfo Live = LivenessInfo::compute(*F);
  // The condition register of the entry's CondBr is consumed by the
  // terminator and is dead everywhere else.
  const Instr *Term = F->block(0)->terminator();
  ASSERT_TRUE(Term && Term->Op == Opcode::CondBr);
  Reg Cond = Term->Operands[0];
  for (size_t B = 0; B != F->numBlocks(); ++B)
    EXPECT_FALSE(Live.LiveOut[B].test(Cond)) << "block " << B;
}

TEST(LivenessTest, CrossBlockValueLiveOnPath) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float, n: int): float {
  var y: float = x * 3.0;
  if (n > 0) {
    y = y + 1.0;
  }
  return y;
}
)"));
  ASSERT_TRUE(F);
  LivenessInfo Live = LivenessInfo::compute(*F);
  // Some register (the loaded x product chain feeds memory, but the
  // condition path keeps values alive) — generic invariant: LiveIn of
  // entry is empty.
  EXPECT_FALSE(Live.LiveIn[0].any());
}

TEST(LivenessTest, IterationsBoundedOnWorkloads) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: float[16]): float {
  var acc: float = 0.0;
  for i = 0 to 15 {
    for j = 0 to 15 {
      acc = acc + a[j];
    }
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  LivenessInfo Live = LivenessInfo::compute(*F);
  // Classic liveness converges in a handful of sweeps on reducible CFGs.
  EXPECT_LE(Live.Iterations, 10u);
}
