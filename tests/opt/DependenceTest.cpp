//===- DependenceTest.cpp --------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Dependence.h"

#include "../TestHelpers.h"
#include "opt/LoopInfo.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::ir;
using namespace warpc::opt;
using warpc::test::optimizeFirstFunction;
using warpc::test::wrapFunction;

namespace {

/// Lowers, optimizes, and analyzes the innermost loop of the first
/// function.
struct LoopAnalysis {
  std::unique_ptr<IRFunction> F;
  Loop TheLoop;
  LoopDeps Deps;
  bool Valid = false;
};

LoopAnalysis analyze(const std::string &Source) {
  LoopAnalysis Result;
  Result.F = optimizeFirstFunction(Source);
  if (!Result.F)
    return Result;
  LoopInfo LI = LoopInfo::compute(*Result.F);
  for (const Loop &L : LI.loops()) {
    if (L.isSimpleInnerLoop()) {
      Result.TheLoop = L;
      Result.Deps = analyzeLoopDependences(*Result.F, L);
      Result.Valid = true;
      return Result;
    }
  }
  return Result;
}

/// Finds a loop-carried edge between two opcodes; returns its distance or
/// -1 when absent.
int carriedDistance(const LoopAnalysis &A, Opcode FromOp, Opcode ToOp) {
  const BasicBlock *Body = A.F->block(A.TheLoop.bodyBlock());
  for (const DepEdge &E : A.Deps.Edges) {
    if (E.Distance == 0)
      continue;
    if (Body->Instrs[E.From].Op == FromOp && Body->Instrs[E.To].Op == ToOp)
      return static_cast<int>(E.Distance);
  }
  return -1;
}

} // namespace

TEST(DependenceTest, RecognizesInductionRegister) {
  auto A = analyze(wrapFunction(R"(
function f(a: float[32]): float {
  for i = 0 to 31 {
    a[i] = a[i] * 2.0;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(A.Valid);
  EXPECT_TRUE(A.Deps.PipelineSafe);
  EXPECT_NE(A.Deps.InductionReg, InvalidReg);
  EXPECT_EQ(A.Deps.Step, 1);
}

TEST(DependenceTest, NegativeStepRecognized) {
  auto A = analyze(wrapFunction(R"(
function f(a: float[32]): float {
  for i = 31 to 0 by -1 {
    a[i] = a[i] + 1.0;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(A.Valid);
  EXPECT_TRUE(A.Deps.PipelineSafe);
  EXPECT_EQ(A.Deps.Step, -1);
}

TEST(DependenceTest, ElementwiseLoopHasNoCarriedMemoryDependence) {
  auto A = analyze(wrapFunction(R"(
function f(a: float[32], x: float): float {
  for i = 0 to 31 {
    a[i] = a[i] * x;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(A.Valid);
  for (const DepEdge &E : A.Deps.Edges) {
    if (E.Kind == DepKind::Memory) {
      EXPECT_EQ(E.Distance, 0u) << "unexpected carried memory dependence";
    }
  }
}

TEST(DependenceTest, OffsetSubscriptGivesExactDistance) {
  // a[i+2] = f(a[i]): the value stored in iteration i is loaded two
  // iterations later.
  auto A = analyze(wrapFunction(R"(
function f(a: float[40]): float {
  for i = 0 to 30 {
    a[i + 2] = a[i] + 1.0;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(A.Valid);
  EXPECT_EQ(carriedDistance(A, Opcode::StoreElem, Opcode::LoadElem), 2);
}

TEST(DependenceTest, ReverseOffsetGivesAntiDependence) {
  // a[i] = f(a[i+1]): the load in iteration i reads the location stored
  // one iteration later -> anti dependence load -> store, distance 1.
  auto A = analyze(wrapFunction(R"(
function f(a: float[40]): float {
  for i = 0 to 30 {
    a[i] = a[i + 1] + 1.0;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(A.Valid);
  EXPECT_EQ(carriedDistance(A, Opcode::LoadElem, Opcode::StoreElem), 1);
}

TEST(DependenceTest, AccumulatorHasCarriedScalarDependence) {
  auto A = analyze(wrapFunction(R"(
function f(a: float[32]): float {
  var acc: float = 0.0;
  for i = 0 to 31 {
    acc = acc + a[i];
  }
  return acc;
}
)"));
  ASSERT_TRUE(A.Valid);
  // After store-to-load forwarding, the accumulator flows through memory
  // across iterations: the body's store feeds the next iteration's load.
  EXPECT_EQ(carriedDistance(A, Opcode::StoreVar, Opcode::LoadVar), 1);
}

TEST(DependenceTest, InductionRecurrencePresent) {
  auto A = analyze(wrapFunction(R"(
function f(a: float[32]): float {
  for i = 0 to 31 {
    a[i] = 1.0;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(A.Valid);
  // The induction add has a self-edge with distance 1.
  const BasicBlock *Body = A.F->block(A.TheLoop.bodyBlock());
  bool FoundSelf = false;
  for (const DepEdge &E : A.Deps.Edges)
    if (E.From == E.To && E.Distance == 1 &&
        Body->Instrs[E.From].Op == Opcode::Add)
      FoundSelf = true;
  EXPECT_TRUE(FoundSelf);
}

TEST(DependenceTest, ChannelOpsSerializedAcrossIterations) {
  auto A = analyze(wrapFunction(R"(
function f(a: float[32]) {
  for i = 0 to 31 {
    send(X, a[i]);
  }
}
)"));
  ASSERT_TRUE(A.Valid);
  bool FoundChanCarried = false;
  for (const DepEdge &E : A.Deps.Edges)
    FoundChanCarried |= E.Kind == DepKind::Channel && E.Distance == 1;
  EXPECT_TRUE(FoundChanCarried);
}

TEST(DependenceTest, CallsDisablePipelining) {
  auto M = test::checkModule(wrapFunction(R"(
function g(x: float): float { return x + 1.0; }
function f(a: float[32]): float {
  for i = 0 to 31 {
    a[i] = g(a[i]);
  }
  return a[0];
}
)"));
  ASSERT_TRUE(M);
  auto F = lowerFunction(*M->getSection(0)->getFunction(1));
  runLocalOpt(*F);
  LoopInfo LI = LoopInfo::compute(*F);
  bool FoundSimple = false;
  for (const Loop &L : LI.loops()) {
    if (!L.isSimpleInnerLoop())
      continue;
    FoundSimple = true;
    LoopDeps Deps = analyzeLoopDependences(*F, L);
    EXPECT_FALSE(Deps.PipelineSafe);
  }
  EXPECT_TRUE(FoundSimple);
}

TEST(DependenceTest, IntraIterationEdgesRespectProgramOrder) {
  auto A = analyze(wrapFunction(R"(
function f(a: float[32]): float {
  for i = 0 to 31 {
    a[i] = 1.0;
    a[i] = a[i] + 1.0;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(A.Valid);
  // All distance-0 edges point forward in program order.
  for (const DepEdge &E : A.Deps.Edges) {
    if (E.Distance == 0) {
      EXPECT_LT(E.From, E.To);
    }
  }
}

TEST(DependenceTest, UnknownSubscriptConservative) {
  // Index computed from a loaded value: not affine in the induction
  // register, so conservative distance-1 edges both ways appear.
  auto A = analyze(wrapFunction(R"(
function f(a: float[32], k: int): float {
  for i = 0 to 31 {
    a[k] = a[k] + 1.0;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(A.Valid);
  bool Forward = false, Backward = false;
  const BasicBlock *Body = A.F->block(A.TheLoop.bodyBlock());
  for (const DepEdge &E : A.Deps.Edges) {
    if (E.Kind != DepKind::Memory || E.Distance == 0)
      continue;
    if (Body->Instrs[E.From].Op == Opcode::StoreElem &&
        Body->Instrs[E.To].Op == Opcode::LoadElem)
      Forward = true;
    if (Body->Instrs[E.From].Op == Opcode::LoadElem &&
        Body->Instrs[E.To].Op == Opcode::StoreElem)
      Backward = true;
  }
  EXPECT_TRUE(Forward);
  EXPECT_TRUE(Backward);
}
