//===- ReachingDefsTest.cpp ------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/ReachingDefs.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::ir;
using namespace warpc::opt;
using warpc::test::lowerFirstFunction;
using warpc::test::wrapFunction;

TEST(ReachingDefsTest, EnumeratesStores) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: float[4]): float {
  var x: float = 1.0;
  a[0] = 2.0;
  x = 3.0;
  return x;
}
)"));
  ASSERT_TRUE(F);
  ReachingDefsInfo RD = ReachingDefsInfo::compute(*F);
  // var init, element store, scalar store.
  EXPECT_EQ(RD.Sites.size(), 3u);
  unsigned ElementStores = 0;
  for (const DefSite &S : RD.Sites)
    ElementStores += S.IsElement;
  EXPECT_EQ(ElementStores, 1u);
}

TEST(ReachingDefsTest, ScalarStoreKillsWithinBlock) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): float {
  var x: float = 1.0;
  x = 2.0;
  return x;
}
)"));
  ASSERT_TRUE(F);
  ReachingDefsInfo RD = ReachingDefsInfo::compute(*F);
  ASSERT_EQ(RD.Sites.size(), 2u);
  // Only the second store is downward exposed, so Out of the single block
  // contains exactly one definition.
  EXPECT_TRUE(RD.Out[0].test(1));
  EXPECT_FALSE(RD.Out[0].test(0));
}

TEST(ReachingDefsTest, BothBranchDefsReachMerge) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(n: int): int {
  var r: int = 0;
  if (n > 0) {
    r = 1;
  } else {
    r = 2;
  }
  return r;
}
)"));
  ASSERT_TRUE(F);
  ReachingDefsInfo RD = ReachingDefsInfo::compute(*F);
  // Find r's variable id.
  VarId RVar = 0;
  bool Found = false;
  for (size_t V = 0; V != F->numVariables(); ++V)
    if (F->variable(static_cast<VarId>(V)).Name == "r") {
      RVar = static_cast<VarId>(V);
      Found = true;
    }
  ASSERT_TRUE(Found);
  // At the merge block (3), both branch stores reach; the initial store
  // is killed on both paths.
  auto Reaching = RD.defsReaching(3, RVar);
  EXPECT_EQ(Reaching.size(), 2u);
}

TEST(ReachingDefsTest, LoopStoreReachesHeader) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  var acc: int = 0;
  for i = 0 to 9 {
    acc = acc + 1;
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  ReachingDefsInfo RD = ReachingDefsInfo::compute(*F);
  VarId AccVar = 0;
  for (size_t V = 0; V != F->numVariables(); ++V)
    if (F->variable(static_cast<VarId>(V)).Name == "acc")
      AccVar = static_cast<VarId>(V);
  // Both the init store (entry) and the loop store (body) reach the
  // header.
  auto Reaching = RD.defsReaching(1, AccVar);
  EXPECT_EQ(Reaching.size(), 2u);
}

TEST(ReachingDefsTest, ElementStoresAccumulate) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: float[4]): float {
  a[0] = 1.0;
  a[1] = 2.0;
  return a[0];
}
)"));
  ASSERT_TRUE(F);
  ReachingDefsInfo RD = ReachingDefsInfo::compute(*F);
  ASSERT_EQ(RD.Sites.size(), 2u);
  // Element stores do not kill each other: both are downward exposed.
  EXPECT_TRUE(RD.Out[0].test(0));
  EXPECT_TRUE(RD.Out[0].test(1));
}

TEST(ReachingDefsTest, NoStoresNoSites) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float { return x; }
)"));
  ASSERT_TRUE(F);
  ReachingDefsInfo RD = ReachingDefsInfo::compute(*F);
  EXPECT_TRUE(RD.Sites.empty());
}
