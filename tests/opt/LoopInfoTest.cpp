//===- LoopInfoTest.cpp ----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/LoopInfo.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::ir;
using namespace warpc::opt;
using warpc::test::lowerFirstFunction;
using warpc::test::wrapFunction;

TEST(LoopInfoTest, StraightLineHasNoLoops) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float { return x; }
)"));
  ASSERT_TRUE(F);
  LoopInfo LI = LoopInfo::compute(*F);
  EXPECT_TRUE(LI.loops().empty());
  EXPECT_EQ(LI.maxDepth(), 0u);
}

TEST(LoopInfoTest, SingleForLoop) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  var acc: int = 0;
  for i = 0 to 9 {
    acc = acc + i;
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  LoopInfo LI = LoopInfo::compute(*F);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(L.Header, 1u);
  EXPECT_EQ(L.Latch, 2u);
  EXPECT_EQ(L.Depth, 1u);
  EXPECT_TRUE(L.isSimpleInnerLoop());
  EXPECT_EQ(L.bodyBlock(), 2u);
  EXPECT_TRUE(L.contains(1));
  EXPECT_TRUE(L.contains(2));
  EXPECT_FALSE(L.contains(0));
  EXPECT_FALSE(L.contains(3));
}

TEST(LoopInfoTest, NestedLoopsDepths) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  var acc: int = 0;
  for i = 0 to 3 {
    for j = 0 to 3 {
      acc = acc + i * j;
    }
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  LoopInfo LI = LoopInfo::compute(*F);
  ASSERT_EQ(LI.loops().size(), 2u);
  // Innermost first.
  EXPECT_EQ(LI.loops()[0].Depth, 2u);
  EXPECT_EQ(LI.loops()[1].Depth, 1u);
  EXPECT_TRUE(LI.loops()[0].isSimpleInnerLoop());
  EXPECT_FALSE(LI.loops()[1].isSimpleInnerLoop());
  EXPECT_EQ(LI.maxDepth(), 2u);
}

TEST(LoopInfoTest, LoopWithIfIsNotSimple) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  var acc: int = 0;
  for i = 0 to 9 {
    if (i > 4) {
      acc = acc + 1;
    }
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  LoopInfo LI = LoopInfo::compute(*F);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_FALSE(LI.loops()[0].isSimpleInnerLoop());
  EXPECT_GT(LI.loops()[0].Blocks.size(), 2u);
}

TEST(LoopInfoTest, WhileLoopDetected) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float {
  var v: float = x;
  while (v > 1.0) {
    v = v / 2.0;
  }
  return v;
}
)"));
  ASSERT_TRUE(F);
  LoopInfo LI = LoopInfo::compute(*F);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_TRUE(LI.loops()[0].isSimpleInnerLoop());
}

TEST(LoopInfoTest, DominatorsBasic) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(n: int): int {
  var r: int = 0;
  if (n > 0) {
    r = 1;
  } else {
    r = 2;
  }
  return r;
}
)"));
  ASSERT_TRUE(F);
  LoopInfo LI = LoopInfo::compute(*F);
  // Entry dominates everything.
  for (BlockId B = 0; B != F->numBlocks(); ++B)
    EXPECT_TRUE(LI.dominates(0, B)) << B;
  // Neither arm dominates the merge block (id 3 by construction).
  EXPECT_FALSE(LI.dominates(1, 3));
  // A block dominates itself.
  EXPECT_TRUE(LI.dominates(2, 2));
}

TEST(LoopInfoTest, LoopBlocksDominatedByHeader) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  var acc: int = 0;
  for i = 0 to 5 {
    acc = acc + 1;
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  LoopInfo LI = LoopInfo::compute(*F);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  for (BlockId B : L.Blocks)
    EXPECT_TRUE(LI.dominates(L.Header, B));
}

TEST(LoopInfoTest, DepthOfBlocksOutsideLoopsIsZero) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  var acc: int = 0;
  for i = 0 to 5 {
    acc = acc + 1;
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  LoopInfo LI = LoopInfo::compute(*F);
  EXPECT_EQ(LI.loopDepth(0), 0u); // entry
  EXPECT_EQ(LI.loopDepth(1), 1u); // header
  EXPECT_EQ(LI.loopDepth(2), 1u); // body
  EXPECT_EQ(LI.loopDepth(3), 0u); // exit
}

TEST(LoopInfoTest, TripleNestInnermostFirst) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  var acc: int = 0;
  for i = 0 to 2 {
    for j = 0 to 2 {
      for k = 0 to 2 {
        acc = acc + 1;
      }
    }
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  LoopInfo LI = LoopInfo::compute(*F);
  ASSERT_EQ(LI.loops().size(), 3u);
  EXPECT_EQ(LI.loops()[0].Depth, 3u);
  EXPECT_EQ(LI.loops()[1].Depth, 2u);
  EXPECT_EQ(LI.loops()[2].Depth, 1u);
  EXPECT_EQ(LI.maxDepth(), 3u);
}
