//===- LICMTest.cpp --------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/LICM.h"

#include "../TestHelpers.h"
#include "ir/Interpreter.h"
#include "support/PRNG.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::ir;
using namespace warpc::opt;
using warpc::test::countOps;
using warpc::test::lowerFirstFunction;
using warpc::test::optimizeFirstFunction;
using warpc::test::wrapFunction;

TEST(LICMTest, HoistsInvariantArithmetic) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(a: float[16], x: float, y: float): float {
  for i = 0 to 15 {
    a[i] = a[i] + x * y;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(F);
  OptStats Stats;
  uint64_t Hoisted = hoistLoopInvariants(*F, Stats);
  EXPECT_GE(Hoisted, 1u);
  EXPECT_EQ(verifyFunction(*F), "");
  // The multiply now lives outside the loop body (block 2).
  bool MulInBody = false;
  for (const Instr &I : F->block(2)->Instrs)
    MulInBody |= I.Op == Opcode::Mul;
  EXPECT_FALSE(MulInBody);
}

TEST(LICMTest, HoistsUnstoredScalarLoad) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: float[16], g: float): float {
  for i = 0 to 15 {
    a[i] = a[i] * g;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(F);
  OptStats Stats;
  hoistLoopInvariants(*F, Stats);
  EXPECT_EQ(verifyFunction(*F), "");
  // g is never stored in the loop; its load moves to the preheader.
  unsigned LoadsOfGInBody = 0;
  for (const Instr &I : F->block(2)->Instrs)
    if (I.Op == Opcode::LoadVar && F->variable(I.Var).Name == "g")
      ++LoadsOfGInBody;
  EXPECT_EQ(LoadsOfGInBody, 0u);
}

TEST(LICMTest, DoesNotHoistStoredScalar) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: float[16]): float {
  var acc: float = 0.0;
  for i = 0 to 15 {
    acc = acc + a[i];
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  OptStats Stats;
  hoistLoopInvariants(*F, Stats);
  EXPECT_EQ(verifyFunction(*F), "");
  // acc is stored in the loop; its load must stay inside.
  bool LoadAccInBody = false;
  for (const Instr &I : F->block(2)->Instrs)
    if (I.Op == Opcode::LoadVar && F->variable(I.Var).Name == "acc")
      LoadAccInBody = true;
  EXPECT_TRUE(LoadAccInBody);
}

TEST(LICMTest, DoesNotHoistDivision) {
  // 10.0 / d could fault on d == 0; a zero-trip loop must not fault.
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: float[16], d: float, n: int): float {
  for i = 0 to n {
    a[i] = 10.0 / d;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(F);
  OptStats Stats;
  hoistLoopInvariants(*F, Stats);
  EXPECT_EQ(verifyFunction(*F), "");
  bool DivInBody = false;
  for (const Instr &I : F->block(2)->Instrs)
    DivInBody |= I.Op == Opcode::Div;
  EXPECT_TRUE(DivInBody);
}

TEST(LICMTest, PreservesBehaviorOnWorkloads) {
  for (uint64_t Seed : {1ull, 2ull, 9ull}) {
    std::string Source =
        workload::makeTestModule(workload::FunctionSize::Small, 1, Seed);
    auto M = test::checkModule(Source);
    ASSERT_TRUE(M);
    const w2::FunctionDecl *Fn = M->getSection(0)->getFunction(0);
    auto Plain = lowerFunction(*Fn);
    runLocalOpt(*Plain);
    auto Licm = lowerFunction(*Fn);
    runLocalOpt(*Licm);
    OptStats Stats;
    hoistLoopInvariants(*Licm, Stats);
    ASSERT_EQ(verifyFunction(*Licm), "");

    PRNG Rng(Seed * 31 + 5);
    ExecInput Input;
    Input.Args.push_back(ExecInput::Arg::ofFloat(Rng.uniform(0.5, 2.0)));
    Input.Args.push_back(ExecInput::Arg::ofFloat(Rng.uniform(0.5, 2.0)));
    for (int I = 0; I != 64; ++I)
      Input.XInput.push_back(Rng.uniform(-2.0, 2.0));

    ExecResult A = interpret(*Plain, Input);
    ExecResult B = interpret(*Licm, Input);
    ASSERT_TRUE(A.Completed) << A.Fault;
    ASSERT_TRUE(B.Completed) << B.Fault;
    EXPECT_TRUE(A.Return == B.Return) << "seed " << Seed;
    EXPECT_EQ(A.XOutput, B.XOutput);
    EXPECT_EQ(A.YOutput, B.YOutput);
    // LICM strictly reduces dynamic instruction count here.
    EXPECT_LE(B.StepsExecuted, A.StepsExecuted);
  }
}

TEST(LICMTest, ReducesDynamicWork) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(a: float[16], x: float, y: float): float {
  for i = 0 to 15 {
    a[i] = a[i] + sqrt(x * y + 1.0);
  }
  return a[0];
}
)"));
  ASSERT_TRUE(F);
  ExecInput Input;
  Input.Args.push_back(ExecInput::Arg::ofArray(std::vector<double>(16, 1.0)));
  Input.Args.push_back(ExecInput::Arg::ofFloat(2.0));
  Input.Args.push_back(ExecInput::Arg::ofFloat(3.0));
  ExecResult Before = interpret(*F, Input);
  ASSERT_TRUE(Before.Completed) << Before.Fault;

  OptStats Stats;
  uint64_t Hoisted = hoistLoopInvariants(*F, Stats);
  EXPECT_GE(Hoisted, 2u); // the multiply, the add, the sqrt chain
  ExecResult After = interpret(*F, Input);
  ASSERT_TRUE(After.Completed) << After.Fault;
  EXPECT_TRUE(Before.Return == After.Return);
  EXPECT_LT(After.StepsExecuted, Before.StepsExecuted);
}
