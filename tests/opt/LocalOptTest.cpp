//===- LocalOptTest.cpp ----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/LocalOpt.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::ir;
using namespace warpc::opt;
using warpc::test::countOps;
using warpc::test::lowerFirstFunction;
using warpc::test::optimizeFirstFunction;
using warpc::test::wrapFunction;

TEST(LocalOptTest, FoldsConstantArithmetic) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(): int {
  return 2 + 3 * 4;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::Add), 0u);
  EXPECT_EQ(countOps(*F, Opcode::Mul), 0u);
  // One constant feeding the return survives.
  bool Found14 = false;
  for (const Instr &I : F->block(0)->Instrs)
    if (I.Op == Opcode::ConstInt && I.IntImm == 14)
      Found14 = true;
  EXPECT_TRUE(Found14);
}

TEST(LocalOptTest, FoldsFloatArithmetic) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(): float {
  return 1.5 * 4.0 - 2.0;
}
)"));
  ASSERT_TRUE(F);
  bool Found4 = false;
  for (const Instr &I : F->block(0)->Instrs)
    if (I.Op == Opcode::ConstFloat && I.FloatImm == 4.0)
      Found4 = true;
  EXPECT_TRUE(Found4);
  EXPECT_EQ(countOps(*F, Opcode::Sub), 0u);
}

TEST(LocalOptTest, FoldsComparisonsAndLogic) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(): int {
  return 3 < 5 && 2 == 2;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::CmpLT), 0u);
  EXPECT_EQ(countOps(*F, Opcode::And), 0u);
}

TEST(LocalOptTest, FoldsIntToFloat) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(): float {
  return 1.0 + 3;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::IntToFloat), 0u);
  EXPECT_EQ(countOps(*F, Opcode::Add), 0u);
}

TEST(LocalOptTest, DoesNotFoldDivisionByZero) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(): int {
  var z: int = 0;
  return 5 / z;
}
)"));
  ASSERT_TRUE(F);
  // The division must survive (it traps at run time; folding would hide
  // the fault).
  EXPECT_EQ(countOps(*F, Opcode::Div), 1u);
}

TEST(LocalOptTest, AlgebraicIdentities) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(x: float): float {
  var a: float = x + 0.0;
  var b: float = a * 1.0;
  var c: float = b - 0.0;
  var d: float = c / 1.0;
  return d;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::Add), 0u);
  EXPECT_EQ(countOps(*F, Opcode::Mul), 0u);
  EXPECT_EQ(countOps(*F, Opcode::Sub), 0u);
  EXPECT_EQ(countOps(*F, Opcode::Div), 0u);
}

TEST(LocalOptTest, MultiplyByZero) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(x: int): int {
  return x * 0;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::Mul), 0u);
}

TEST(LocalOptTest, CSEEliminatesRepeatedExpression) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(x: float, y: float): float {
  var a: float = x * y + 1.0;
  var b: float = x * y + 2.0;
  return a + b;
}
)"));
  ASSERT_TRUE(F);
  // x*y computed once.
  EXPECT_EQ(countOps(*F, Opcode::Mul), 1u);
}

TEST(LocalOptTest, RedundantLoadEliminated) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(a: float[8], i: int): float {
  return a[i] + a[i];
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::LoadElem), 1u);
}

TEST(LocalOptTest, StoreInvalidatesLoads) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(a: float[8], i: int): float {
  var v: float = a[i];
  a[i] = v + 1.0;
  return a[i];
}
)"));
  ASSERT_TRUE(F);
  // The load after the store must not reuse the first load... but
  // store-to-load forwarding of elements is not implemented (indices may
  // differ), so two loads remain.
  EXPECT_EQ(countOps(*F, Opcode::LoadElem), 2u);
}

TEST(LocalOptTest, StoreToLoadForwardingOnScalars) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(x: float): float {
  var t: float = x * 2.0;
  return t + t;
}
)"));
  ASSERT_TRUE(F);
  // The loads of t forward from the stored register; no LoadVar remains
  // for t (the parameter load stays).
  unsigned LoadsOfT = 0;
  for (const Instr &I : F->block(0)->Instrs)
    if (I.Op == Opcode::LoadVar && F->variable(I.Var).Name == "t")
      ++LoadsOfT;
  EXPECT_EQ(LoadsOfT, 0u);
}

TEST(LocalOptTest, CallInvalidatesArrayLoads) {
  auto M = test::checkModule(wrapFunction(R"(
function g(a: float[8]): float { a[0] = 9.0; return a[0]; }
function f(a: float[8]): float {
  var x: float = a[0];
  g(a);
  return x + a[0];
}
)"));
  ASSERT_TRUE(M);
  auto F = lowerFunction(*M->getSection(0)->getFunction(1));
  runLocalOpt(*F);
  ASSERT_EQ(verifyFunction(*F), "");
  // a[0] must be reloaded after the call.
  EXPECT_EQ(test::countOps(*F, Opcode::LoadElem), 2u);
}

TEST(LocalOptTest, DeadCodeRemoved) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(x: float): float {
  var unused: float = x * 3.0 + 1.0;
  return x;
}
)"));
  ASSERT_TRUE(F);
  // The computation feeding only the dead store is gone; the store itself
  // remains (stores are conservatively kept).
  EXPECT_EQ(countOps(*F, Opcode::Mul), 0u);
}

TEST(LocalOptTest, SideEffectsSurviveDCE) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f() {
  var v: float = 0.0;
  receive(X, v);
  send(Y, 1.0);
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::Recv), 1u);
  EXPECT_EQ(countOps(*F, Opcode::Send), 1u);
}

TEST(LocalOptTest, ChannelOpCountInvariantUnderFullPipeline) {
  // Channel traffic is an observable effect of a cell program: however
  // dead the surrounding computation, every Send/Recv must survive the
  // whole optimization pipeline (the debug build asserts this after
  // every pass; this test pins it in all builds).
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(gain: float): float {
  var v: float = 0.0;
  var waste: float = 0.0;
  var acc: float = 0.0;
  for i = 0 to 7 {
    receive(X, v);
    waste = v * 2.0 + 3.0 * 4.0;
    send(Y, v * gain);
  }
  send(X, acc);
  return acc;
}
)"));
  ASSERT_TRUE(F);
  uint64_t Before = countChannelOps(*F);
  EXPECT_EQ(Before, 3u); // recv + send in the loop, send after
  opt::runLocalOpt(*F);
  EXPECT_EQ(countChannelOps(*F), Before);
  EXPECT_TRUE(verifyFunctionIssues(*F).empty());
}

TEST(LocalOptTest, UnreachableCodeNeutralized) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  return 1;
  return 2;
}
)"));
  ASSERT_TRUE(F);
  OptStats Stats = runLocalOpt(*F);
  EXPECT_EQ(verifyFunction(*F), "");
  EXPECT_GE(Stats.BlocksRemoved, 1u);
}

TEST(LocalOptTest, CopyPropagationThroughChain) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(x: float): float {
  var a: float = x;
  var b: float = a;
  var c: float = b;
  return c;
}
)"));
  ASSERT_TRUE(F);
  // After forwarding + copy propagation + DCE, the function body is close
  // to minimal: one load of x and a return.
  EXPECT_LE(F->block(0)->Instrs.size(), 6u);
}

TEST(LocalOptTest, ReachesFixpoint) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float {
  var a: float = (x + 0.0) * 1.0;
  var b: float = a + 2.0 * 0.0;
  return b;
}
)"));
  ASSERT_TRUE(F);
  OptStats First = runLocalOpt(*F);
  EXPECT_GT(First.totalTransforms(), 0u);
  OptStats Second = runLocalOpt(*F);
  // Unreachable-block neutralization already ran; a second pipeline run
  // applies nothing new.
  EXPECT_EQ(Second.totalTransforms(), 0u);
}

TEST(LocalOptTest, PreservesLoopStructure) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(a: float[16]): float {
  var acc: float = 0.0;
  for i = 0 to 15 {
    acc = acc + a[i] * 2.0;
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(F->numBlocks(), 4u);
  EXPECT_EQ(countOps(*F, Opcode::CondBr), 1u);
  // The loop multiply is not removable.
  EXPECT_EQ(countOps(*F, Opcode::Mul), 1u);
}

TEST(LocalOptTest, StatsAccumulate) {
  OptStats A, B;
  A.ConstFolded = 3;
  A.Iterations = 2;
  B.ConstFolded = 4;
  B.DeadRemoved = 1;
  A += B;
  EXPECT_EQ(A.ConstFolded, 7u);
  EXPECT_EQ(A.DeadRemoved, 1u);
  EXPECT_EQ(A.totalTransforms(), 8u);
}
