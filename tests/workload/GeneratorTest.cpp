//===- GeneratorTest.cpp ---------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::workload;

namespace {

unsigned countLines(const std::string &Text) {
  unsigned N = 0;
  for (char C : Text)
    N += C == '\n';
  return N;
}

} // namespace

TEST(GeneratorTest, SizeTable) {
  EXPECT_EQ(sizeLines(FunctionSize::Tiny), 4u);
  EXPECT_EQ(sizeLines(FunctionSize::Small), 35u);
  EXPECT_EQ(sizeLines(FunctionSize::Medium), 100u);
  EXPECT_EQ(sizeLines(FunctionSize::Large), 280u);
  EXPECT_EQ(sizeLines(FunctionSize::Huge), 360u);
  EXPECT_STREQ(sizeName(FunctionSize::Tiny), "f_tiny");
  EXPECT_STREQ(sizeName(FunctionSize::Huge), "f_huge");
}

TEST(GeneratorTest, FunctionHasExactLineCount) {
  for (auto Size : AllSizes) {
    std::string Text = generateFunction(Size, "f", 1);
    EXPECT_EQ(countLines(Text), sizeLines(Size)) << sizeName(Size);
  }
}

TEST(GeneratorTest, ExplicitLineTargets) {
  for (uint32_t Lines : {4u, 5u, 9u, 12u, 45u, 120u, 300u}) {
    std::string Text =
        generateFunctionWithLines(Lines, 2, "f", 7);
    EXPECT_EQ(countLines(Text), Lines) << "target " << Lines;
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  EXPECT_EQ(generateFunction(FunctionSize::Medium, "f", 5),
            generateFunction(FunctionSize::Medium, "f", 5));
  EXPECT_NE(generateFunction(FunctionSize::Medium, "f", 5),
            generateFunction(FunctionSize::Medium, "f", 6));
}

// Every generated workload must survive the full front end: this is the
// property that keeps the benchmark harness honest.
struct GenParam {
  FunctionSize Size;
  unsigned Count;
  uint64_t Seed;
};

class GeneratorSweep : public ::testing::TestWithParam<GenParam> {};

TEST_P(GeneratorSweep, ParsesAndChecksCleanly) {
  std::string Source = makeTestModule(GetParam().Size, GetParam().Count,
                                      GetParam().Seed);
  auto M = test::checkModule(Source);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->numFunctions(), GetParam().Count);
  // Functions carry the advertised line count.
  for (size_t F = 0; F != M->getSection(0)->numFunctions(); ++F)
    EXPECT_EQ(M->getSection(0)->getFunction(F)->lineCount(),
              sizeLines(GetParam().Size));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndCounts, GeneratorSweep,
    ::testing::Values(GenParam{FunctionSize::Tiny, 1, 1989},
                      GenParam{FunctionSize::Tiny, 8, 1989},
                      GenParam{FunctionSize::Small, 2, 1989},
                      GenParam{FunctionSize::Small, 8, 7},
                      GenParam{FunctionSize::Medium, 4, 1989},
                      GenParam{FunctionSize::Medium, 1, 3},
                      GenParam{FunctionSize::Large, 2, 1989},
                      GenParam{FunctionSize::Huge, 1, 1989},
                      GenParam{FunctionSize::Huge, 2, 11}),
    [](const ::testing::TestParamInfo<GenParam> &Info) {
      return std::string(sizeName(Info.param.Size)).substr(2) + "_n" +
             std::to_string(Info.param.Count) + "_s" +
             std::to_string(Info.param.Seed);
    });

TEST(GeneratorTest, LoopDepthsMatchSpec) {
  for (auto Size : AllSizes) {
    auto M = test::checkModule(makeTestModule(Size, 1));
    ASSERT_TRUE(M);
    const w2::FunctionDecl *F = M->getSection(0)->getFunction(0);
    EXPECT_EQ(w2::maxLoopDepth(*F), sizeLoopDepth(Size))
        << sizeName(Size);
  }
}

TEST(GeneratorTest, UserProgramShape) {
  auto M = test::checkModule(makeUserProgram());
  ASSERT_TRUE(M);
  // "three section programs with three functions each, i.e. a total of
  // nine functions".
  ASSERT_EQ(M->numSections(), 3u);
  for (size_t S = 0; S != 3; ++S)
    EXPECT_EQ(M->getSection(S)->numFunctions(), 3u);
  // Per section: one ~300-line function and two of 5-45 lines.
  for (size_t S = 0; S != 3; ++S) {
    unsigned Big = 0, Small = 0;
    for (size_t F = 0; F != 3; ++F) {
      uint32_t Lines = M->getSection(S)->getFunction(F)->lineCount();
      if (Lines >= 290 && Lines <= 315)
        ++Big;
      else if (Lines >= 5 && Lines <= 45)
        ++Small;
    }
    EXPECT_EQ(Big, 1u) << "section " << S;
    EXPECT_EQ(Small, 2u) << "section " << S;
  }
}

TEST(GeneratorTest, Figure1ProgramShape) {
  auto M = test::checkModule(makeFigure1Program());
  ASSERT_TRUE(M);
  ASSERT_EQ(M->numSections(), 2u);
  EXPECT_EQ(M->getSection(0)->numFunctions(), 1u);
  EXPECT_EQ(M->getSection(1)->numFunctions(), 3u);
}

TEST(GeneratorTest, ModulesHaveSystolicIO) {
  // The kernels exercise the cell's X/Y channels like real Warp programs.
  std::string Source = makeTestModule(FunctionSize::Medium, 1);
  EXPECT_NE(Source.find("receive(X"), std::string::npos);
  EXPECT_NE(Source.find("send("), std::string::npos);
}
