//===- ParserTest.cpp ------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/Parser.h"

#include "support/Casting.h"
#include "w2/Lexer.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::w2;

namespace {

std::unique_ptr<ModuleDecl> parse(const std::string &Source,
                                  DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  return P.parseModule();
}

std::unique_ptr<ModuleDecl> parseClean(const std::string &Source) {
  DiagnosticEngine Diags;
  auto M = parse(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return M;
}

const char *MinimalModule = R"(
module demo;
section pipe cells 4 {
  function f(x: float): float {
    return x;
  }
}
)";

} // namespace

TEST(ParserTest, MinimalModule) {
  auto M = parseClean(MinimalModule);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->getName(), "demo");
  ASSERT_EQ(M->numSections(), 1u);
  const SectionDecl *S = M->getSection(0);
  EXPECT_EQ(S->getName(), "pipe");
  EXPECT_EQ(S->getNumCells(), 4u);
  ASSERT_EQ(S->numFunctions(), 1u);
  EXPECT_EQ(S->getFunction(0)->getName(), "f");
}

TEST(ParserTest, MultipleSectionsAndFunctions) {
  // The shape of Figure 1: section 1 with one function, section 2 with
  // three.
  auto M = parseClean(R"(
module s;
section sec1 cells 2 {
  function f11(): int { return 1; }
}
section sec2 cells 8 {
  function f21(): int { return 1; }
  function f22(): int { return 2; }
  function f23(): int { return 3; }
}
)");
  ASSERT_TRUE(M);
  ASSERT_EQ(M->numSections(), 2u);
  EXPECT_EQ(M->getSection(0)->numFunctions(), 1u);
  EXPECT_EQ(M->getSection(1)->numFunctions(), 3u);
  EXPECT_EQ(M->numFunctions(), 4u);
}

TEST(ParserTest, DefaultCellCountIsOne) {
  auto M = parseClean(R"(
module m;
section s {
  function f(): int { return 0; }
}
)");
  ASSERT_TRUE(M);
  EXPECT_EQ(M->getSection(0)->getNumCells(), 1u);
}

TEST(ParserTest, FunctionParametersAndTypes) {
  auto M = parseClean(R"(
module m;
section s {
  function f(a: int, b: float, c: float[16]): float {
    return b;
  }
}
)");
  ASSERT_TRUE(M);
  const FunctionDecl *F = M->getSection(0)->getFunction(0);
  ASSERT_EQ(F->params().size(), 3u);
  EXPECT_TRUE(F->params()[0].Ty.isInt());
  EXPECT_TRUE(F->params()[1].Ty.isFloat());
  EXPECT_TRUE(F->params()[2].Ty.isArray());
  EXPECT_EQ(F->params()[2].Ty.arraySize(), 16u);
  EXPECT_TRUE(F->getReturnType().isFloat());
}

TEST(ParserTest, VoidFunctionHasNoReturnType) {
  auto M = parseClean(R"(
module m;
section s {
  function f(x: float) {
    send(X, x);
  }
}
)");
  ASSERT_TRUE(M);
  EXPECT_TRUE(M->getSection(0)->getFunction(0)->getReturnType().isVoid());
}

TEST(ParserTest, ForLoopWithStep) {
  auto M = parseClean(R"(
module m;
section s {
  function f(): int {
    var acc: int = 0;
    for i = 0 to 30 by 2 {
      acc = acc + i;
    }
    for j = 10 to 0 by -1 {
      acc = acc - j;
    }
    return acc;
  }
}
)");
  ASSERT_TRUE(M);
  const BlockStmt *Body = M->getSection(0)->getFunction(0)->getBody();
  const auto *Loop1 = dyn_cast<ForStmt>(Body->get(1));
  ASSERT_TRUE(Loop1);
  EXPECT_EQ(Loop1->getIndVar(), "i");
  EXPECT_EQ(Loop1->getStep(), 2);
  const auto *Loop2 = dyn_cast<ForStmt>(Body->get(2));
  ASSERT_TRUE(Loop2);
  EXPECT_EQ(Loop2->getStep(), -1);
}

TEST(ParserTest, IfElseChain) {
  auto M = parseClean(R"(
module m;
section s {
  function f(x: int): int {
    if (x > 0) {
      return 1;
    } else if (x < 0) {
      return 2;
    } else {
      return 3;
    }
  }
}
)");
  ASSERT_TRUE(M);
  const BlockStmt *Body = M->getSection(0)->getFunction(0)->getBody();
  const auto *If = dyn_cast<IfStmt>(Body->get(0));
  ASSERT_TRUE(If);
  ASSERT_TRUE(If->getElse());
  EXPECT_TRUE(isa<IfStmt>(If->getElse()));
}

TEST(ParserTest, SendReceiveChannels) {
  auto M = parseClean(R"(
module m;
section s {
  function f(buf: float[8]) {
    var v: float = 0.0;
    receive(X, v);
    receive(Y, buf[2]);
    send(Y, v * 2.0);
  }
}
)");
  ASSERT_TRUE(M);
  const BlockStmt *Body = M->getSection(0)->getFunction(0)->getBody();
  const auto *RecvX = dyn_cast<ReceiveStmt>(Body->get(1));
  ASSERT_TRUE(RecvX);
  EXPECT_EQ(RecvX->getChannel(), Channel::X);
  const auto *RecvY = dyn_cast<ReceiveStmt>(Body->get(2));
  ASSERT_TRUE(RecvY);
  EXPECT_EQ(RecvY->getChannel(), Channel::Y);
  EXPECT_TRUE(isa<IndexExpr>(RecvY->getTarget()));
  const auto *Send = dyn_cast<SendStmt>(Body->get(3));
  ASSERT_TRUE(Send);
  EXPECT_EQ(Send->getChannel(), Channel::Y);
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  auto M = parseClean(R"(
module m;
section s {
  function f(a: int, b: int, c: int): int {
    return a + b * c;
  }
}
)");
  ASSERT_TRUE(M);
  const BlockStmt *Body = M->getSection(0)->getFunction(0)->getBody();
  const auto *Ret = cast<ReturnStmt>(Body->get(0));
  const auto *Add = dyn_cast<BinaryExpr>(Ret->getValue());
  ASSERT_TRUE(Add);
  EXPECT_EQ(Add->getOp(), BinaryOp::Add);
  const auto *Mul = dyn_cast<BinaryExpr>(Add->getRHS());
  ASSERT_TRUE(Mul);
  EXPECT_EQ(Mul->getOp(), BinaryOp::Mul);
}

TEST(ParserTest, PrecedenceComparisonsBelowArithmetic) {
  auto M = parseClean(R"(
module m;
section s {
  function f(a: int, b: int): int {
    return a + 1 < b * 2 && b > 0;
  }
}
)");
  ASSERT_TRUE(M);
  const BlockStmt *Body = M->getSection(0)->getFunction(0)->getBody();
  const auto *Ret = cast<ReturnStmt>(Body->get(0));
  const auto *And = dyn_cast<BinaryExpr>(Ret->getValue());
  ASSERT_TRUE(And);
  EXPECT_EQ(And->getOp(), BinaryOp::LAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto M = parseClean(R"(
module m;
section s {
  function f(a: int, b: int, c: int): int {
    return (a + b) * c;
  }
}
)");
  ASSERT_TRUE(M);
  const BlockStmt *Body = M->getSection(0)->getFunction(0)->getBody();
  const auto *Ret = cast<ReturnStmt>(Body->get(0));
  const auto *Mul = dyn_cast<BinaryExpr>(Ret->getValue());
  ASSERT_TRUE(Mul);
  EXPECT_EQ(Mul->getOp(), BinaryOp::Mul);
  EXPECT_EQ(cast<BinaryExpr>(Mul->getLHS())->getOp(), BinaryOp::Add);
}

TEST(ParserTest, UnaryOperators) {
  auto M = parseClean(R"(
module m;
section s {
  function f(a: int): int {
    return -a + !a;
  }
}
)");
  ASSERT_TRUE(M);
}

TEST(ParserTest, CallStatementAndExpression) {
  auto M = parseClean(R"(
module m;
section s {
  function g(x: float): float { return x; }
  function f(x: float): float {
    g(x);
    return g(x + 1.0);
  }
}
)");
  ASSERT_TRUE(M);
  const FunctionDecl *F = M->getSection(0)->getFunction(1);
  EXPECT_TRUE(isa<ExprStmt>(F->getBody()->get(0)));
}

TEST(ParserTest, LineCountMatchesSpan) {
  auto M = parseClean(MinimalModule);
  ASSERT_TRUE(M);
  // "function f..." through the closing brace spans 3 lines.
  EXPECT_EQ(M->getSection(0)->getFunction(0)->lineCount(), 3u);
}

//===----------------------------------------------------------------------===//
// Error cases: the master aborts the compilation when the setup parse
// finds errors (Section 3.2), so these must all be diagnosed.
//===----------------------------------------------------------------------===//

struct ParserErrorCase {
  const char *Name;
  const char *Source;
};

class ParserErrorTest : public ::testing::TestWithParam<ParserErrorCase> {};

TEST_P(ParserErrorTest, Diagnosed) {
  DiagnosticEngine Diags;
  parse(GetParam().Source, Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, ParserErrorTest,
    ::testing::Values(
        ParserErrorCase{"MissingModule", "section s { }"},
        ParserErrorCase{"EmptyModule", "module m;"},
        ParserErrorCase{"EmptySection", "module m; section s { }"},
        ParserErrorCase{"MissingSemicolon",
                        "module m; section s { function f(): int { return 1 "
                        "} }"},
        ParserErrorCase{"BadType",
                        "module m; section s { function f(x: banana) { } }"},
        ParserErrorCase{"MissingBrace",
                        "module m; section s { function f() { "},
        ParserErrorCase{"BadChannel",
                        "module m; section s { function f() { send(Q, 1.0); "
                        "} }"},
        ParserErrorCase{"ZeroStep",
                        "module m; section s { function f() { for i = 0 to 3 "
                        "by 0 { } } }"},
        ParserErrorCase{"AssignToCall",
                        "module m; section s { function f() { f() = 3; } }"},
        ParserErrorCase{"ZeroArraySize",
                        "module m; section s { function f(a: float[0]) { } "
                        "}"}),
    [](const ::testing::TestParamInfo<ParserErrorCase> &Info) {
      return Info.param.Name;
    });

TEST(ParserTest, RecoversAndReportsMultipleErrors) {
  DiagnosticEngine Diags;
  parse(R"(
module m;
section s {
  function f(): int {
    var x: int = @;
    var y: int = #;
    return x;
  }
}
)",
        Diags);
  // Both bad statements produce diagnostics thanks to recovery.
  EXPECT_GE(Diags.errorCount(), 2u);
}
