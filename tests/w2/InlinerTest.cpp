//===- InlinerTest.cpp -----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/Inliner.h"

#include "driver/Compiler.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "w2/Sema.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::w2;

namespace {

std::unique_ptr<ModuleDecl> parseOnly(const std::string &Source,
                                      DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  auto M = P.parseModule();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return M;
}

/// Inlines, then runs Sema; the expanded tree must still check cleanly.
InlineStats inlineAndCheck(ModuleDecl &M, DiagnosticEngine &Diags,
                           InlineOptions Options = {}) {
  InlineStats Stats = inlineSmallFunctions(M, Options);
  Sema S(Diags);
  EXPECT_TRUE(S.checkModule(M)) << Diags.str();
  return Stats;
}

const char *HelperModule = R"(
module m;
section s cells 2 {
  function scale(x: float, k: float): float {
    var r: float = x * k;
    return r;
  }
  function main_fn(a: float[16], g: float): float {
    var acc: float = 0.0;
    for i = 0 to 15 {
      acc = acc + scale(a[i], g);
    }
    return acc;
  }
}
)";

} // namespace

TEST(InlinerTest, EligibilityRules) {
  DiagnosticEngine Diags;
  auto M = parseOnly(R"(
module m;
section s {
  function good(x: float): float { var r: float = x + 1.0; return r; }
  function too_big(x: float): float {
    var a: float = x;
    a = a + 1.0;
    a = a + 2.0;
    a = a + 3.0;
    a = a + 4.0;
    a = a + 5.0;
    a = a + 6.0;
    a = a + 7.0;
    a = a + 8.0;
    a = a + 9.0;
    a = a + 1.0;
    a = a + 2.0;
    a = a + 3.0;
    a = a + 4.0;
    a = a + 5.0;
    a = a + 6.0;
    a = a + 7.0;
    a = a + 8.0;
    a = a + 9.0;
    a = a + 1.0;
    a = a + 2.0;
    a = a + 3.0;
    a = a + 4.0;
    a = a + 5.0;
    a = a + 6.0;
    a = a + 7.0;
    a = a + 8.0;
    return a;
  }
  function arrays(a: float[4]): float { return a[0]; }
  function channels(x: float): float { send(X, x); return x; }
  function early(x: float): float {
    if (x > 0.0) { return x; }
    return 0.0 - x;
  }
  function whiles(x: float): float {
    var v: float = x;
    while (v > 1.0) { v = v / 2.0; }
    return v;
  }
  function voidfn(x: float) { var y: float = x; }
  function calls(x: float): float { return good(x); }
}
)",
                     Diags);
  ASSERT_TRUE(M);
  const SectionDecl *S = M->getSection(0);
  InlineOptions Options;
  EXPECT_TRUE(isInlinableCallee(*S->lookup("good"), Options));
  EXPECT_FALSE(isInlinableCallee(*S->lookup("too_big"), Options));
  EXPECT_FALSE(isInlinableCallee(*S->lookup("arrays"), Options));
  EXPECT_FALSE(isInlinableCallee(*S->lookup("channels"), Options));
  EXPECT_FALSE(isInlinableCallee(*S->lookup("early"), Options));
  EXPECT_FALSE(isInlinableCallee(*S->lookup("whiles"), Options));
  EXPECT_FALSE(isInlinableCallee(*S->lookup("voidfn"), Options));
  EXPECT_FALSE(isInlinableCallee(*S->lookup("calls"), Options));
}

TEST(InlinerTest, ExpandsCallInLoop) {
  DiagnosticEngine Diags;
  auto M = parseOnly(HelperModule, Diags);
  ASSERT_TRUE(M);
  InlineStats Stats = inlineAndCheck(*M, Diags);
  EXPECT_EQ(Stats.CallsInlined, 1u);
  EXPECT_EQ(Stats.HelpersRemoved, 1u);
  // Only the caller remains.
  ASSERT_EQ(M->getSection(0)->numFunctions(), 1u);
  EXPECT_EQ(M->getSection(0)->getFunction(0)->getName(), "main_fn");
}

TEST(InlinerTest, ExpandedModuleCompilesToSameWorkShape) {
  // After inlining, the module must still compile end to end; the call
  // disappears from the IR.
  DiagnosticEngine Diags;
  auto M = parseOnly(HelperModule, Diags);
  ASSERT_TRUE(M);
  inlineAndCheck(*M, Diags);

  // Re-render through the compiler via the section/function API.
  auto MM = codegen::MachineModel::warpCell();
  const SectionDecl *S = M->getSection(0);
  driver::FunctionResult R =
      driver::compileFunction(*S, *S->getFunction(0), MM);
  EXPECT_GT(R.Metrics.IRInstrs, 0u);
  EXPECT_GT(R.LoopsPipelined, 0u)
      << "inlining should make the loop pipelinable (no calls left)";
}

TEST(InlinerTest, KeepsHelperWithRemainingCalls) {
  DiagnosticEngine Diags;
  auto M = parseOnly(R"(
module m;
section s {
  function helper(x: float): float { var r: float = x + 1.0; return r; }
  function uses_in_while(x: float): float {
    var v: float = x;
    while (v > 1.0) {
      v = v / helper(v);
    }
    return v;
  }
}
)",
                     Diags);
  ASSERT_TRUE(M);
  InlineStats Stats = inlineAndCheck(*M, Diags);
  // The call sits in a while body statement — expanded there (statement
  // positions inside the body are fine; only the condition is off
  // limits)... the division's operand is in an assignment, so it inlines.
  EXPECT_EQ(Stats.CallsInlined, 1u);
}

TEST(InlinerTest, CallInWhileConditionNotExpanded) {
  DiagnosticEngine Diags;
  auto M = parseOnly(R"(
module m;
section s {
  function helper(x: float): float { var r: float = x / 2.0; return r; }
  function f(x: float): float {
    var v: float = x;
    while (helper(v) > 1.0) {
      v = v / 2.0;
    }
    return v;
  }
}
)",
                     Diags);
  ASSERT_TRUE(M);
  InlineStats Stats = inlineAndCheck(*M, Diags);
  EXPECT_EQ(Stats.CallsInlined, 0u);
  // The helper is still called, so it must not be removed.
  EXPECT_EQ(M->getSection(0)->numFunctions(), 2u);
}

TEST(InlinerTest, NestedCallsInlineInsideOut) {
  DiagnosticEngine Diags;
  auto M = parseOnly(R"(
module m;
section s {
  function inner(x: float): float { var r: float = x + 1.0; return r; }
  function f(x: float): float {
    return inner(inner(x));
  }
}
)",
                     Diags);
  ASSERT_TRUE(M);
  InlineStats Stats = inlineAndCheck(*M, Diags);
  EXPECT_EQ(Stats.CallsInlined, 2u);
  EXPECT_EQ(Stats.HelpersRemoved, 1u);
}

TEST(InlinerTest, TransitiveInliningAcrossPasses) {
  // g calls h; f calls g. After pass 1 expands h into g, g becomes
  // call-free and eligible, so pass 2 expands it into f.
  DiagnosticEngine Diags;
  auto M = parseOnly(R"(
module m;
section s {
  function h(x: float): float { var r: float = x * 2.0; return r; }
  function g(x: float): float { var r: float = h(x) + 1.0; return r; }
  function f(x: float): float { return g(x) * 3.0; }
}
)",
                     Diags);
  ASSERT_TRUE(M);
  InlineStats Stats = inlineAndCheck(*M, Diags);
  EXPECT_GE(Stats.Passes, 1u);
  EXPECT_GE(Stats.CallsInlined, 2u);
  EXPECT_EQ(Stats.HelpersRemoved, 2u);
  ASSERT_EQ(M->getSection(0)->numFunctions(), 1u);
  EXPECT_EQ(M->getSection(0)->getFunction(0)->getName(), "f");
}

TEST(InlinerTest, RenamingAvoidsCapture) {
  // The callee's local "r" must not collide with the caller's "r".
  DiagnosticEngine Diags;
  auto M = parseOnly(R"(
module m;
section s {
  function helper(x: float): float { var r: float = x + 1.0; return r; }
  function f(x: float): float {
    var r: float = 100.0;
    var y: float = helper(x);
    return r + y;
  }
}
)",
                     Diags);
  ASSERT_TRUE(M);
  InlineStats Stats = inlineAndCheck(*M, Diags);
  EXPECT_EQ(Stats.CallsInlined, 1u);
  // Sema passing (checked inside inlineAndCheck) proves no redeclaration.
}

TEST(InlinerTest, InductionVariableRenamed) {
  DiagnosticEngine Diags;
  auto M = parseOnly(R"(
module m;
section s {
  function sum4(a0: float): float {
    var acc: float = 0.0;
    for i = 0 to 3 {
      acc = acc + a0;
    }
    return acc;
  }
  function f(x: float): float {
    var total: float = 0.0;
    for i = 0 to 7 {
      total = total + sum4(x);
    }
    return total;
  }
}
)",
                     Diags);
  ASSERT_TRUE(M);
  InlineStats Stats = inlineAndCheck(*M, Diags);
  EXPECT_EQ(Stats.CallsInlined, 1u);
}

TEST(InlinerTest, GrowsCallerLineWeight) {
  // The paper's point: inlining increases the size of each function
  // operated upon. AST node count of the caller must grow.
  DiagnosticEngine Diags;
  auto M = parseOnly(HelperModule, Diags);
  ASSERT_TRUE(M);
  uint64_t Before = countAstNodes(*M->getSection(0)->lookup("main_fn"));
  inlineAndCheck(*M, Diags);
  uint64_t After = countAstNodes(*M->getSection(0)->lookup("main_fn"));
  EXPECT_GT(After, Before);
}

TEST(InlinerTest, HelperRemovalCanBeDisabled) {
  DiagnosticEngine Diags;
  auto M = parseOnly(HelperModule, Diags);
  ASSERT_TRUE(M);
  InlineOptions Options;
  Options.RemoveUncalledHelpers = false;
  InlineStats Stats = inlineAndCheck(*M, Diags, Options);
  EXPECT_EQ(Stats.CallsInlined, 1u);
  EXPECT_EQ(Stats.HelpersRemoved, 0u);
  EXPECT_EQ(M->getSection(0)->numFunctions(), 2u);
}
