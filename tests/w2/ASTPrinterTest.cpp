//===- ASTPrinterTest.cpp --------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/ASTPrinter.h"

#include "driver/Compiler.h"
#include "w2/Inliner.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::w2;

namespace {

std::unique_ptr<ModuleDecl> parse(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  auto M = P.parseModule();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Diags.hasErrors() ? nullptr : std::move(M);
}

/// print(parse(print(parse(Source)))) must equal print(parse(Source)).
void expectRoundTrip(const std::string &Source) {
  auto First = parse(Source);
  ASSERT_TRUE(First);
  std::string Printed = printModule(*First);
  auto Second = parse(Printed);
  ASSERT_TRUE(Second) << "printer emitted unparsable source:\n" << Printed;
  EXPECT_EQ(printModule(*Second), Printed);
}

} // namespace

TEST(ASTPrinterTest, RoundTripsBasicConstructs) {
  expectRoundTrip(R"(
module m;
section s cells 4 {
  function f(a: float[8], n: int): float {
    var acc: float = 0.0;
    var t: float = 1.5;
    receive(X, t);
    for i = 0 to 7 {
      a[i] = a[i] * t + 0.25;
      acc = acc + a[i];
    }
    for j = 7 to 0 by -1 {
      acc = acc - a[j] / 2.0;
    }
    while (acc > 100.0) {
      acc = acc / 2.0;
    }
    if (n > 0) {
      send(Y, acc);
    } else {
      send(X, 0.0 - acc);
    }
    return acc;
  }
}
)");
}

TEST(ASTPrinterTest, RoundTripsWorkloads) {
  for (auto Size : workload::AllSizes)
    expectRoundTrip(workload::makeTestModule(Size, 2));
  expectRoundTrip(workload::makeUserProgram());
  expectRoundTrip(workload::makeFigure1Program());
}

TEST(ASTPrinterTest, PreservesPrecedence) {
  auto M = parse(R"(
module m;
section s {
  function f(a: int, b: int, c: int): int {
    return (a + b) * c - a / (b - c) + -a % 2;
  }
}
)");
  ASSERT_TRUE(M);
  std::string Printed = printModule(*M);
  EXPECT_NE(Printed.find("(a + b) * c"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("a / (b - c)"), std::string::npos) << Printed;
  // Semantically identical after a reparse.
  auto M2 = parse(Printed);
  ASSERT_TRUE(M2);
  EXPECT_EQ(printModule(*M2), Printed);
}

TEST(ASTPrinterTest, FloatLiteralsStayFloats) {
  auto M = parse(R"(
module m;
section s {
  function f(): float { return 2.0 + 0.5; }
}
)");
  ASSERT_TRUE(M);
  std::string Printed = printModule(*M);
  EXPECT_NE(Printed.find("2.0"), std::string::npos);
  expectRoundTrip(Printed);
}

TEST(ASTPrinterTest, PrintedInlinedModuleCompilesIdentically) {
  // Inline on the AST, print, and compile the printed text: it must
  // produce a working module equivalent to compiling the AST directly.
  std::string Source = R"(
module m;
section s cells 2 {
  function boost(x: float): float {
    var r: float = x * 3.0 + 1.0;
    return r;
  }
  function f(a: float[8]): float {
    var acc: float = 0.0;
    for i = 0 to 7 {
      acc = acc + boost(a[i]);
    }
    return acc;
  }
}
)";
  auto M = parse(Source);
  ASSERT_TRUE(M);
  InlineStats Stats = inlineSmallFunctions(*M);
  EXPECT_EQ(Stats.CallsInlined, 1u);
  std::string Printed = printModule(*M);

  auto MM = codegen::MachineModel::warpCell();
  driver::ModuleResult R = driver::compileModuleSequential(Printed, MM);
  ASSERT_TRUE(R.Succeeded) << R.Diags.str() << "\nsource:\n" << Printed;
  EXPECT_EQ(R.Functions.size(), 1u); // helper was removed
}
