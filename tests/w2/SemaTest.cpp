//===- SemaTest.cpp --------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/Sema.h"

#include "support/Casting.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::w2;

namespace {

struct SemaRun {
  std::unique_ptr<ModuleDecl> Module;
  DiagnosticEngine Diags;
  bool Ok = false;
};

SemaRun check(const std::string &Source) {
  SemaRun Run;
  Lexer L(Source, Run.Diags);
  Parser P(L.lexAll(), Run.Diags);
  Run.Module = P.parseModule();
  EXPECT_FALSE(Run.Diags.hasErrors())
      << "parse should succeed first: " << Run.Diags.str();
  Sema S(Run.Diags);
  Run.Ok = S.checkModule(*Run.Module);
  return Run;
}

std::string wrap(const std::string &Body) {
  return "module m;\nsection s cells 2 {\n" + Body + "\n}\n";
}

} // namespace

TEST(SemaTest, CleanFunctionPasses) {
  auto Run = check(wrap(R"(
function f(x: float, n: int): float {
  var acc: float = 0.0;
  var buf: float[8];
  for i = 0 to 7 {
    buf[i] = x * 2.0;
    acc = acc + buf[i];
  }
  if (n > 0) {
    acc = acc / 2.0;
  }
  return acc;
}
)"));
  EXPECT_TRUE(Run.Ok) << Run.Diags.str();
}

TEST(SemaTest, AnnotatesExpressionTypes) {
  auto Run = check(wrap("function f(x: float): float { return x * 2.0; }"));
  ASSERT_TRUE(Run.Ok);
  const auto *Ret =
      cast<ReturnStmt>(Run.Module->getSection(0)->getFunction(0)
                           ->getBody()->get(0));
  EXPECT_TRUE(Ret->getValue()->getType().isFloat());
}

TEST(SemaTest, InsertsIntToFloatCastInMixedArithmetic) {
  auto Run = check(wrap(
      "function f(x: float, n: int): float { return x + n; }"));
  ASSERT_TRUE(Run.Ok);
  const auto *Ret =
      cast<ReturnStmt>(Run.Module->getSection(0)->getFunction(0)
                           ->getBody()->get(0));
  const auto *Add = cast<BinaryExpr>(Ret->getValue());
  EXPECT_TRUE(Add->getType().isFloat());
  EXPECT_TRUE(isa<CastExpr>(Add->getRHS()));
}

TEST(SemaTest, InsertsCastOnAssignment) {
  auto Run = check(wrap(R"(
function f(n: int): float {
  var x: float = 1.0;
  x = n;
  return x;
}
)"));
  ASSERT_TRUE(Run.Ok);
  const auto *Assign =
      cast<AssignStmt>(Run.Module->getSection(0)->getFunction(0)
                           ->getBody()->get(1));
  EXPECT_TRUE(isa<CastExpr>(Assign->getValue()));
}

TEST(SemaTest, PaperExampleReturnTypeMismatchAtCallSite) {
  // "To discover a type mismatch between a function return value and its
  // use at a call site, the semantic checker has to process the complete
  // section program" (Section 3.2). An int-returning function used where
  // an array index modulus requires int is fine; a float-returning
  // function used as a '%' operand is the mismatch.
  auto Run = check(wrap(R"(
function widthf(): float { return 2.0; }
function f(n: int): int {
  return n % widthf();
}
)"));
  EXPECT_FALSE(Run.Ok);
}

TEST(SemaTest, CallSiteReturnValueWidensCleanly) {
  auto Run = check(wrap(R"(
function one(): int { return 1; }
function f(x: float): float {
  return x + one();
}
)"));
  EXPECT_TRUE(Run.Ok) << Run.Diags.str();
}

TEST(SemaTest, CallArityChecked) {
  auto Run = check(wrap(R"(
function g(x: float): float { return x; }
function f(): float { return g(1.0, 2.0); }
)"));
  EXPECT_FALSE(Run.Ok);
}

TEST(SemaTest, CallArgumentTypeChecked) {
  auto Run = check(wrap(R"(
function g(a: float[4]): float { return a[0]; }
function f(x: float): float { return g(x); }
)"));
  EXPECT_FALSE(Run.Ok);
}

TEST(SemaTest, ArrayArgumentMatches) {
  auto Run = check(wrap(R"(
function g(a: float[4]): float { return a[0]; }
function f(): float {
  var buf: float[4];
  buf[0] = 1.0;
  return g(buf);
}
)"));
  EXPECT_TRUE(Run.Ok) << Run.Diags.str();
}

TEST(SemaTest, ArrayArgumentSizeMismatch) {
  auto Run = check(wrap(R"(
function g(a: float[4]): float { return a[0]; }
function f(): float {
  var buf: float[8];
  return g(buf);
}
)"));
  EXPECT_FALSE(Run.Ok);
}

TEST(SemaTest, CallAcrossSectionsRejected) {
  // Sections execute independently; calls resolve within the section only,
  // which is what makes section programs separately compilable.
  auto Run = check(R"(
module m;
section s1 {
  function g(): int { return 1; }
}
section s2 {
  function f(): int { return g(); }
}
)");
  EXPECT_FALSE(Run.Ok);
}

TEST(SemaTest, Intrinsics) {
  auto Run = check(wrap(R"(
function f(x: float, n: int): float {
  return sqrt(x) + abs(x) + sqrt(n);
}
)"));
  EXPECT_TRUE(Run.Ok) << Run.Diags.str();
}

TEST(SemaTest, ScopesAndShadowing) {
  auto Run = check(wrap(R"(
function f(): int {
  var x: int = 1;
  if (x > 0) {
    var y: int = 2;
    x = x + y;
  }
  for i = 0 to 3 {
    var y: int = i;
    x = x + y;
  }
  return x;
}
)"));
  EXPECT_TRUE(Run.Ok) << Run.Diags.str();
}

TEST(SemaTest, UseOutOfScopeRejected) {
  auto Run = check(wrap(R"(
function f(): int {
  if (1 > 0) {
    var y: int = 2;
  }
  return y;
}
)"));
  EXPECT_FALSE(Run.Ok);
}

struct SemaErrorCase {
  const char *Name;
  const char *Body;
};

class SemaErrorTest : public ::testing::TestWithParam<SemaErrorCase> {};

TEST_P(SemaErrorTest, Diagnosed) {
  auto Run = check(wrap(GetParam().Body));
  EXPECT_FALSE(Run.Ok);
  EXPECT_TRUE(Run.Diags.hasErrors());
}

INSTANTIATE_TEST_SUITE_P(
    Errors, SemaErrorTest,
    ::testing::Values(
        SemaErrorCase{"UndeclaredVariable",
                      "function f(): int { return missing; }"},
        SemaErrorCase{"Redeclaration",
                      "function f(): int { var x: int = 1; var x: int = 2; "
                      "return x; }"},
        SemaErrorCase{"DuplicateParameter",
                      "function f(a: int, a: int): int { return a; }"},
        SemaErrorCase{"FloatToIntAssignment",
                      "function f(): int { var n: int = 1.5; return n; }"},
        SemaErrorCase{"IndexNonArray",
                      "function f(x: float): float { return x[0]; }"},
        SemaErrorCase{"FloatArrayIndex",
                      "function f(a: float[4]): float { return a[1.5]; }"},
        SemaErrorCase{"AssignWholeArray",
                      "function f(a: float[4]) { a = 1.0; }"},
        SemaErrorCase{"BareArrayInExpression",
                      "function f(a: float[4]): float { return a + 1.0; }"},
        SemaErrorCase{"AssignInductionVar",
                      "function f() { for i = 0 to 3 { i = 5; } }"},
        SemaErrorCase{"FloatForBound",
                      "function f() { for i = 0 to 1.5 { } }"},
        SemaErrorCase{"FloatCondition",
                      "function f(x: float): int { if (x) { return 1; } "
                      "return 0; }"},
        SemaErrorCase{"RemOnFloats",
                      "function f(x: float): float { return x % 2.0; }"},
        SemaErrorCase{"LogicalOnFloats",
                      "function f(x: float): int { return x && 1; }"},
        SemaErrorCase{"MissingReturnValue",
                      "function f(): int { return; }"},
        SemaErrorCase{"VoidReturnsValue",
                      "function f() { return 3; }"},
        SemaErrorCase{"NoValueReturnInNonVoid",
                      "function f(): int { var x: int = 1; x = 2; }"},
        SemaErrorCase{"UnknownCallee",
                      "function f(): int { return missing(); }"},
        SemaErrorCase{"ReceiveIntoInt",
                      "function f() { var n: int = 0; receive(X, n); }"},
        SemaErrorCase{"SendArray",
                      "function f(a: float[4]) { send(X, a); }"},
        SemaErrorCase{"DuplicateFunction",
                      "function f(): int { return 1; }\n"
                      "function f(): int { return 2; }"},
        SemaErrorCase{"ArrayInitializer",
                      "function f() { var a: float[4] = 1.0; }"},
        SemaErrorCase{"IntrinsicArity",
                      "function f(x: float): float { return sqrt(x, x); }"}),
    [](const ::testing::TestParamInfo<SemaErrorCase> &Info) {
      return Info.param.Name;
    });

TEST(SemaTest, SendWidensIntValue) {
  auto Run = check(wrap("function f(n: int) { send(X, n); }"));
  ASSERT_TRUE(Run.Ok) << Run.Diags.str();
  const auto *Send =
      cast<SendStmt>(Run.Module->getSection(0)->getFunction(0)
                         ->getBody()->get(0));
  EXPECT_TRUE(isa<CastExpr>(Send->getValue()));
}

TEST(SemaTest, DuplicateSectionsRejected) {
  auto Run = check(R"(
module m;
section s { function f(): int { return 1; } }
section s { function g(): int { return 2; } }
)");
  EXPECT_FALSE(Run.Ok);
}

TEST(SemaTest, CheckedNodeCountGrowsWithProgramSize) {
  DiagnosticEngine D1, D2;
  std::string Small = wrap("function f(): int { return 1; }");
  std::string Large = wrap(R"(
function f(): float {
  var acc: float = 0.0;
  for i = 0 to 9 {
    acc = acc + 1.0;
    acc = acc * 2.0;
    acc = acc - 3.0;
  }
  return acc;
}
)");
  Lexer L1(Small, D1);
  Parser P1(L1.lexAll(), D1);
  auto M1 = P1.parseModule();
  Sema S1(D1);
  S1.checkModule(*M1);

  Lexer L2(Large, D2);
  Parser P2(L2.lexAll(), D2);
  auto M2 = P2.parseModule();
  Sema S2(D2);
  S2.checkModule(*M2);

  EXPECT_GT(S2.checkedNodeCount(), S1.checkedNodeCount());
}
