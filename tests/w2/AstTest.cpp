//===- AstTest.cpp ---------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/AST.h"

#include "w2/Lexer.h"
#include "w2/Parser.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::w2;

namespace {

std::unique_ptr<ModuleDecl> parseClean(const std::string &Source) {
  DiagnosticEngine Diags;
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  auto M = P.parseModule();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return M;
}

} // namespace

TEST(TypeTest, Scalars) {
  EXPECT_TRUE(Type::intTy().isInt());
  EXPECT_TRUE(Type::floatTy().isFloat());
  EXPECT_TRUE(Type::voidTy().isVoid());
  EXPECT_FALSE(Type::intTy().isArray());
  EXPECT_TRUE(Type::intTy().isScalarNumeric());
  EXPECT_FALSE(Type::voidTy().isScalarNumeric());
}

TEST(TypeTest, Arrays) {
  Type A = Type::arrayTy(ScalarKind::Float, 64);
  EXPECT_TRUE(A.isArray());
  EXPECT_FALSE(A.isFloat());
  EXPECT_EQ(A.arraySize(), 64u);
  EXPECT_TRUE(A.elementType().isFloat());
}

TEST(TypeTest, Printing) {
  EXPECT_EQ(Type::intTy().str(), "int");
  EXPECT_EQ(Type::floatTy().str(), "float");
  EXPECT_EQ(Type::voidTy().str(), "void");
  EXPECT_EQ(Type::arrayTy(ScalarKind::Int, 8).str(), "int[8]");
}

TEST(TypeTest, Equality) {
  EXPECT_EQ(Type::intTy(), Type::intTy());
  EXPECT_NE(Type::intTy(), Type::floatTy());
  EXPECT_NE(Type::arrayTy(ScalarKind::Float, 4),
            Type::arrayTy(ScalarKind::Float, 8));
  EXPECT_EQ(Type::arrayTy(ScalarKind::Float, 4),
            Type::arrayTy(ScalarKind::Float, 4));
}

TEST(AstWalkTest, CountsNodes) {
  auto M = parseClean(R"(
module m;
section s {
  function f(x: float): float {
    return x + 1.0;
  }
}
)");
  const FunctionDecl *F = M->getSection(0)->getFunction(0);
  // Block, Return, Binary, VarRef, FloatLit at minimum.
  EXPECT_GE(countAstNodes(*F), 5u);
}

TEST(AstWalkTest, LoopDepth) {
  auto M = parseClean(R"(
module m;
section s {
  function flat(x: float): float { return x; }
  function one(x: float): float {
    var a: float = 0.0;
    for i = 0 to 3 { a = a + x; }
    return a;
  }
  function three(x: float): float {
    var a: float = 0.0;
    for i = 0 to 3 {
      for j = 0 to 3 {
        for k = 0 to 3 { a = a + x; }
      }
      while (a > 100.0) { a = a / 2.0; }
    }
    return a;
  }
}
)");
  EXPECT_EQ(maxLoopDepth(*M->getSection(0)->getFunction(0)), 0u);
  EXPECT_EQ(maxLoopDepth(*M->getSection(0)->getFunction(1)), 1u);
  EXPECT_EQ(maxLoopDepth(*M->getSection(0)->getFunction(2)), 3u);
  EXPECT_EQ(countLoops(*M->getSection(0)->getFunction(2)), 4u);
}

TEST(AstWalkTest, SectionLookup) {
  auto M = parseClean(R"(
module m;
section s {
  function a(): int { return 1; }
  function b(): int { return 2; }
}
)");
  const SectionDecl *S = M->getSection(0);
  EXPECT_NE(S->lookup("a"), nullptr);
  EXPECT_NE(S->lookup("b"), nullptr);
  EXPECT_EQ(S->lookup("c"), nullptr);
}

TEST(AstTest, BinaryOpSpellings) {
  EXPECT_STREQ(binaryOpSpelling(BinaryOp::Add), "+");
  EXPECT_STREQ(binaryOpSpelling(BinaryOp::LAnd), "&&");
  EXPECT_STREQ(binaryOpSpelling(BinaryOp::LE), "<=");
  EXPECT_STREQ(binaryOpSpelling(BinaryOp::Rem), "%");
}

TEST(AstTest, ChannelNames) {
  EXPECT_STREQ(channelName(Channel::X), "X");
  EXPECT_STREQ(channelName(Channel::Y), "Y");
}
