//===- LexerTest.cpp -------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "w2/Lexer.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::w2;

namespace {

std::vector<Token> lex(const std::string &Source, DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  return L.lexAll();
}

std::vector<Token> lexClean(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Tokens = lex(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

} // namespace

TEST(LexerTest, EmptyInputYieldsEof) {
  auto Tokens = lexClean("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Eof));
}

TEST(LexerTest, Keywords) {
  auto Tokens = lexClean("module section cells function var if else for to "
                         "by while return send receive int float");
  ASSERT_EQ(Tokens.size(), 17u); // 16 keywords + Eof
  EXPECT_TRUE(Tokens[0].is(TokenKind::KwModule));
  EXPECT_TRUE(Tokens[1].is(TokenKind::KwSection));
  EXPECT_TRUE(Tokens[2].is(TokenKind::KwCells));
  EXPECT_TRUE(Tokens[3].is(TokenKind::KwFunction));
  EXPECT_TRUE(Tokens[4].is(TokenKind::KwVar));
  EXPECT_TRUE(Tokens[5].is(TokenKind::KwIf));
  EXPECT_TRUE(Tokens[6].is(TokenKind::KwElse));
  EXPECT_TRUE(Tokens[7].is(TokenKind::KwFor));
  EXPECT_TRUE(Tokens[8].is(TokenKind::KwTo));
  EXPECT_TRUE(Tokens[9].is(TokenKind::KwBy));
  EXPECT_TRUE(Tokens[10].is(TokenKind::KwWhile));
  EXPECT_TRUE(Tokens[11].is(TokenKind::KwReturn));
  EXPECT_TRUE(Tokens[12].is(TokenKind::KwSend));
  EXPECT_TRUE(Tokens[13].is(TokenKind::KwReceive));
  EXPECT_TRUE(Tokens[14].is(TokenKind::KwInt));
  EXPECT_TRUE(Tokens[15].is(TokenKind::KwFloat));
}

TEST(LexerTest, IdentifiersKeepText) {
  auto Tokens = lexClean("foo _bar x9");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::Identifier));
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "x9");
}

TEST(LexerTest, IntegerLiterals) {
  auto Tokens = lexClean("0 42 1989");
  EXPECT_TRUE(Tokens[0].is(TokenKind::IntLiteral));
  EXPECT_EQ(Tokens[1].Text, "42");
  EXPECT_EQ(Tokens[2].Text, "1989");
}

TEST(LexerTest, FloatLiterals) {
  auto Tokens = lexClean("3.5 0.25 1e6 2.5e-3");
  for (size_t I = 0; I != 4; ++I)
    EXPECT_TRUE(Tokens[I].is(TokenKind::FloatLiteral)) << I;
  EXPECT_EQ(Tokens[3].Text, "2.5e-3");
}

TEST(LexerTest, IntThenDotIsNotFloatWithoutDigit) {
  DiagnosticEngine Diags;
  auto Tokens = lex("5.", Diags);
  // "5" lexes as an int; the bare '.' is an error.
  EXPECT_TRUE(Tokens[0].is(TokenKind::IntLiteral));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, Operators) {
  auto Tokens = lexClean("+ - * / % == != < <= > >= && || ! =");
  TokenKind Expected[] = {
      TokenKind::Plus,        TokenKind::Minus,      TokenKind::Star,
      TokenKind::Slash,       TokenKind::Percent,    TokenKind::EqualEqual,
      TokenKind::BangEqual,   TokenKind::Less,       TokenKind::LessEqual,
      TokenKind::Greater,     TokenKind::GreaterEqual, TokenKind::AmpAmp,
      TokenKind::PipePipe,    TokenKind::Bang,       TokenKind::Assign,
  };
  for (size_t I = 0; I != std::size(Expected); ++I)
    EXPECT_TRUE(Tokens[I].is(Expected[I])) << I;
}

TEST(LexerTest, Punctuation) {
  auto Tokens = lexClean("( ) { } [ ] , : ;");
  TokenKind Expected[] = {
      TokenKind::LParen,   TokenKind::RParen, TokenKind::LBrace,
      TokenKind::RBrace,   TokenKind::LBracket, TokenKind::RBracket,
      TokenKind::Comma,    TokenKind::Colon,  TokenKind::Semicolon,
  };
  for (size_t I = 0; I != std::size(Expected); ++I)
    EXPECT_TRUE(Tokens[I].is(Expected[I])) << I;
}

TEST(LexerTest, LineComments) {
  auto Tokens = lexClean("x // a C++ style comment\ny -- a W2 comment\nz");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[0].Text, "x");
  EXPECT_EQ(Tokens[1].Text, "y");
  EXPECT_EQ(Tokens[2].Text, "z");
}

TEST(LexerTest, TracksLineAndColumn) {
  auto Tokens = lexClean("a\n  b");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[0].Loc.Column, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Column, 3u);
}

TEST(LexerTest, UnknownCharacterDiagnosed) {
  DiagnosticEngine Diags;
  auto Tokens = lex("a $ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing continues after the bad character.
  EXPECT_EQ(Tokens.back().Kind, TokenKind::Eof);
  bool SawB = false;
  for (const Token &T : Tokens)
    SawB |= T.Text == "b";
  EXPECT_TRUE(SawB);
}

TEST(LexerTest, TokenCountMetric) {
  DiagnosticEngine Diags;
  Lexer L("a + b;", Diags);
  L.lexAll();
  EXPECT_EQ(L.tokenCount(), 5u); // a, +, b, ;, eof
}

TEST(LexerTest, MinusBeforeNumberIsSeparateToken) {
  auto Tokens = lexClean("-5");
  EXPECT_TRUE(Tokens[0].is(TokenKind::Minus));
  EXPECT_TRUE(Tokens[1].is(TokenKind::IntLiteral));
}
