//===- TestHelpers.h - Shared test utilities --------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the test suite: parse/check/lower W2 snippets.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_TESTS_TESTHELPERS_H
#define WARPC_TESTS_TESTHELPERS_H

#include "ir/IR.h"
#include "ir/IRBuilder.h"
#include "opt/LocalOpt.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "w2/Sema.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace warpc {
namespace test {

/// Parses and semantically checks a whole module; fails the test on any
/// diagnostic error.
inline std::unique_ptr<w2::ModuleDecl> checkModule(const std::string &Source) {
  DiagnosticEngine Diags;
  w2::Lexer L(Source, Diags);
  w2::Parser P(L.lexAll(), Diags);
  auto M = P.parseModule();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  if (Diags.hasErrors())
    return nullptr;
  w2::Sema S(Diags);
  S.checkModule(*M);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  if (Diags.hasErrors())
    return nullptr;
  return M;
}

/// Wraps a function body in "module m; section s { ... }".
inline std::string wrapFunction(const std::string &FunctionText) {
  return "module m;\nsection s cells 2 {\n" + FunctionText + "\n}\n";
}

/// Lowers the first function of \p Source to IR and verifies it.
inline std::unique_ptr<ir::IRFunction>
lowerFirstFunction(const std::string &Source) {
  auto M = checkModule(Source);
  if (!M)
    return nullptr;
  auto F = ir::lowerFunction(*M->getSection(0)->getFunction(0));
  std::string Verdict = ir::verifyFunction(*F);
  EXPECT_EQ(Verdict, "") << printFunction(*F);
  return F;
}

/// Lowers and fully optimizes the first function of \p Source.
inline std::unique_ptr<ir::IRFunction>
optimizeFirstFunction(const std::string &Source) {
  auto F = lowerFirstFunction(Source);
  if (!F)
    return nullptr;
  opt::runLocalOpt(*F);
  std::string Verdict = ir::verifyFunction(*F);
  EXPECT_EQ(Verdict, "") << printFunction(*F);
  return F;
}

/// Counts instructions with a given opcode across the whole function.
inline unsigned countOps(const ir::IRFunction &F, ir::Opcode Op) {
  unsigned N = 0;
  for (size_t B = 0; B != F.numBlocks(); ++B)
    for (const ir::Instr &I : F.block(static_cast<ir::BlockId>(B))->Instrs)
      N += I.Op == Op;
  return N;
}

} // namespace test
} // namespace warpc

#endif // WARPC_TESTS_TESTHELPERS_H
