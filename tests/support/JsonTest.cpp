//===- JsonTest.cpp --------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// The JSON value model the observability sinks are built on. The key
// property under test: a double survives dump() -> parse() bit-exactly,
// which is what lets the trace analyzer cross-check aggregate stats
// against a trace file to 1e-9 and better.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <limits>

using namespace warpc;
using json::Value;

namespace {

bool bitIdentical(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

double reparse(double D) {
  std::string Error;
  Value V = json::parse(Value(D).dump(), Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_TRUE(V.isNumber());
  return V.number();
}

} // namespace

TEST(JsonTest, DoublesRoundTripBitExactly) {
  const double Cases[] = {0.0,
                          1.0,
                          0.1,
                          1.0 / 3.0,
                          6458.8374562199,
                          1e-9,
                          -3.25e17,
                          123456789.123456789,
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          -0.0};
  for (double D : Cases)
    EXPECT_TRUE(bitIdentical(D, reparse(D))) << D;
}

TEST(JsonTest, IntegersStayIntegers) {
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(static_cast<int64_t>(-7)).dump(), "-7");
  EXPECT_EQ(Value(static_cast<uint64_t>(1) << 40).dump(), "1099511627776");
  std::string Error;
  Value V = json::parse("1099511627776", Error);
  EXPECT_EQ(V.kind(), Value::Kind::Int);
  EXPECT_EQ(V.integer(), int64_t(1) << 40);
}

TEST(JsonTest, StringsEscapeAndUnescape) {
  const std::string Nasty = "a\"b\\c\n\t\r\x01 d/e";
  std::string Error;
  Value V = json::parse(Value(Nasty).dump(), Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(V.str(), Nasty);
}

TEST(JsonTest, ObjectsKeepInsertionOrder) {
  Value Obj = Value::object();
  Obj.set("zeta", 1);
  Obj.set("alpha", 2);
  Obj.set("mid", Value::array());
  EXPECT_EQ(Obj.dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":[]}");
  // set() on an existing key replaces in place, preserving position.
  Obj.set("zeta", 9);
  EXPECT_EQ(Obj.dump(), "{\"zeta\":9,\"alpha\":2,\"mid\":[]}");
}

TEST(JsonTest, NestedDocumentRoundTrips) {
  Value Root = Value::object();
  Root.set("name", "warpc");
  Root.set("ok", true);
  Root.set("none", nullptr);
  Value Arr = Value::array();
  Arr.push(1);
  Arr.push(2.5);
  Arr.push("three");
  Root.set("items", std::move(Arr));

  std::string Error;
  Value Back = json::parse(Root.dump(2), Error);
  ASSERT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Back.get("name").str(), "warpc");
  EXPECT_TRUE(Back.get("ok").boolean());
  EXPECT_TRUE(Back.get("none").isNull());
  ASSERT_EQ(Back.get("items").size(), 3u);
  EXPECT_EQ(Back.get("items")[0].integer(), 1);
  EXPECT_DOUBLE_EQ(Back.get("items")[1].number(), 2.5);
  EXPECT_EQ(Back.get("items")[2].str(), "three");
  // Missing keys read as null without inserting.
  EXPECT_TRUE(Back.get("absent").isNull());
  EXPECT_FALSE(Back.has("absent"));
}

TEST(JsonTest, MalformedInputReportsAnError) {
  for (const char *Bad : {"{", "[1,", "\"unterminated", "{\"a\" 1}", "tru",
                          ""}) {
    std::string Error;
    Value V = json::parse(Bad, Error);
    EXPECT_FALSE(Error.empty()) << "'" << Bad << "' parsed";
    EXPECT_TRUE(V.isNull());
  }
  // Trailing garbage after a valid document is an error too.
  std::string Error;
  json::parse("{} x", Error);
  EXPECT_FALSE(Error.empty());
}
