//===- ErrorOrTest.cpp -----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ErrorOr.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

using namespace warpc;

TEST(ErrorOrTest, SuccessValue) {
  ErrorOr<int> R(42);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(*R, 42);
}

TEST(ErrorOrTest, ErrorValue) {
  ErrorOr<int> R(makeError("could not open file"));
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.getError().message(), "could not open file");
}

TEST(ErrorOrTest, TakeValueMoves) {
  ErrorOr<std::unique_ptr<int>> R(std::make_unique<int>(7));
  ASSERT_TRUE(static_cast<bool>(R));
  std::unique_ptr<int> V = R.takeValue();
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 7);
}

TEST(ErrorOrTest, TakeErrorMoves) {
  ErrorOr<int> R(makeError("bad input"));
  Error E = R.takeError();
  EXPECT_EQ(E.message(), "bad input");
}

TEST(ErrorOrTest, ArrowOperator) {
  ErrorOr<std::string> R(std::string("warp"));
  EXPECT_EQ(R->size(), 4u);
}
