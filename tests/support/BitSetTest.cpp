//===- BitSetTest.cpp ------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitSet.h"

#include <gtest/gtest.h>

using namespace warpc;

TEST(BitSetTest, StartsEmpty) {
  BitSet S(100);
  EXPECT_EQ(S.universe(), 100u);
  EXPECT_EQ(S.count(), 0u);
  EXPECT_FALSE(S.any());
  for (size_t I = 0; I != 100; ++I)
    EXPECT_FALSE(S.test(I));
}

TEST(BitSetTest, SetAndTest) {
  BitSet S(130);
  S.set(0);
  S.set(63);
  S.set(64);
  S.set(129);
  EXPECT_TRUE(S.test(0));
  EXPECT_TRUE(S.test(63));
  EXPECT_TRUE(S.test(64));
  EXPECT_TRUE(S.test(129));
  EXPECT_FALSE(S.test(1));
  EXPECT_FALSE(S.test(65));
  EXPECT_EQ(S.count(), 4u);
  EXPECT_TRUE(S.any());
}

TEST(BitSetTest, Reset) {
  BitSet S(10);
  S.set(3);
  S.reset(3);
  EXPECT_FALSE(S.test(3));
  EXPECT_EQ(S.count(), 0u);
}

TEST(BitSetTest, Clear) {
  BitSet S(200);
  for (size_t I = 0; I < 200; I += 3)
    S.set(I);
  S.clear();
  EXPECT_EQ(S.count(), 0u);
}

TEST(BitSetTest, UnionReportsChange) {
  BitSet A(70), B(70);
  B.set(5);
  B.set(69);
  EXPECT_TRUE(A.unionWith(B));
  EXPECT_TRUE(A.test(5));
  EXPECT_TRUE(A.test(69));
  // A second union with the same set changes nothing.
  EXPECT_FALSE(A.unionWith(B));
}

TEST(BitSetTest, Intersect) {
  BitSet A(70), B(70);
  A.set(1);
  A.set(2);
  A.set(65);
  B.set(2);
  B.set(65);
  A.intersectWith(B);
  EXPECT_FALSE(A.test(1));
  EXPECT_TRUE(A.test(2));
  EXPECT_TRUE(A.test(65));
}

TEST(BitSetTest, Subtract) {
  BitSet A(70), B(70);
  A.set(1);
  A.set(2);
  B.set(2);
  A.subtract(B);
  EXPECT_TRUE(A.test(1));
  EXPECT_FALSE(A.test(2));
}

TEST(BitSetTest, Equality) {
  BitSet A(50), B(50);
  EXPECT_TRUE(A == B);
  A.set(17);
  EXPECT_FALSE(A == B);
  B.set(17);
  EXPECT_TRUE(A == B);
}

TEST(BitSetTest, WordBoundaryUniverse) {
  BitSet S(64);
  S.set(63);
  EXPECT_TRUE(S.test(63));
  EXPECT_EQ(S.count(), 1u);
}
