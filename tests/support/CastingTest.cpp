//===- CastingTest.cpp -----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace warpc;

namespace {

struct Base {
  enum class Kind { A, B };
  explicit Base(Kind K) : TheKind(K) {}
  Kind getKind() const { return TheKind; }

private:
  Kind TheKind;
};

struct DerivedA : Base {
  DerivedA() : Base(Kind::A) {}
  static bool classof(const Base *B) { return B->getKind() == Kind::A; }
};

struct DerivedB : Base {
  DerivedB() : Base(Kind::B) {}
  static bool classof(const Base *B) { return B->getKind() == Kind::B; }
};

} // namespace

TEST(CastingTest, Isa) {
  DerivedA A;
  Base *B = &A;
  EXPECT_TRUE(isa<DerivedA>(B));
  EXPECT_FALSE(isa<DerivedB>(B));
}

TEST(CastingTest, Cast) {
  DerivedB Obj;
  Base *B = &Obj;
  EXPECT_EQ(cast<DerivedB>(B), &Obj);
}

TEST(CastingTest, ConstCast) {
  DerivedA Obj;
  const Base *B = &Obj;
  EXPECT_EQ(cast<DerivedA>(B), &Obj);
}

TEST(CastingTest, DynCastSucceeds) {
  DerivedA Obj;
  Base *B = &Obj;
  EXPECT_EQ(dyn_cast<DerivedA>(B), &Obj);
}

TEST(CastingTest, DynCastFails) {
  DerivedA Obj;
  Base *B = &Obj;
  EXPECT_EQ(dyn_cast<DerivedB>(B), nullptr);
}
