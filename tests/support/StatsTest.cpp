//===- StatsTest.cpp -------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace warpc;

TEST(StatsTest, MeanMinMax) {
  Summary S;
  S.add(2.0);
  S.add(4.0);
  S.add(6.0);
  EXPECT_DOUBLE_EQ(S.mean(), 4.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 6.0);
  EXPECT_EQ(S.count(), 3u);
}

TEST(StatsTest, StddevOfConstantIsZero) {
  Summary S;
  for (int I = 0; I != 5; ++I)
    S.add(3.5);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
}

TEST(StatsTest, StddevSample) {
  Summary S;
  S.add(1.0);
  S.add(3.0);
  // Sample variance of {1,3} is 2.
  EXPECT_NEAR(S.stddev(), std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, SingleSampleStddevZero) {
  Summary S;
  S.add(9.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
}

TEST(StatsTest, MaxRelativeDeviation) {
  // The paper accepts measurements whose deviation is within 10% of the
  // average (Section 4.2); this is the check that enforces it.
  Summary S;
  S.add(95);
  S.add(100);
  S.add(105);
  EXPECT_NEAR(S.maxRelativeDeviation(), 0.05, 1e-9);
}

TEST(StatsTest, Speedup) {
  EXPECT_DOUBLE_EQ(speedup(100.0, 25.0), 4.0);
  EXPECT_DOUBLE_EQ(speedup(30.0, 60.0), 0.5);
}
