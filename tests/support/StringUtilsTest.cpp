//===- StringUtilsTest.cpp -------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace warpc;

TEST(StringUtilsTest, SplitBasic) {
  auto Parts = split("a,b,c", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "b");
  EXPECT_EQ(Parts[2], "c");
}

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  auto Parts = split(",x,", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "");
  EXPECT_EQ(Parts[1], "x");
  EXPECT_EQ(Parts[2], "");
}

TEST(StringUtilsTest, SplitNoSeparator) {
  auto Parts = split("whole", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "whole");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("none"), "none");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtilsTest, StartsEndsWith) {
  EXPECT_TRUE(startsWith("function foo", "function"));
  EXPECT_FALSE(startsWith("fun", "function"));
  EXPECT_TRUE(endsWith("module.w2", ".w2"));
  EXPECT_FALSE(endsWith("w2", ".w2"));
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
  EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(StringUtilsTest, Padding) {
  EXPECT_EQ(padLeft("7", 3), "  7");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("long", 2), "long");
}
