//===- TextTableTest.cpp ---------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"

#include <gtest/gtest.h>

using namespace warpc;

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable T({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22"});
  std::string Out = T.str();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("22"), std::string::npos);
  // Header, separator, two rows.
  size_t Lines = 0;
  for (char C : Out)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 4u);
}

TEST(TextTableTest, NumericRowFormatting) {
  TextTable T({"n", "speedup"});
  T.addRow("8", {5.564}, 2);
  EXPECT_NE(T.str().find("5.56"), std::string::npos);
}

TEST(TextTableTest, ColumnsAligned) {
  TextTable T({"x", "y"});
  T.addRow({"a", "1"});
  T.addRow({"bbbb", "22"});
  std::string Out = T.str();
  // Every line has the same length because columns are padded.
  size_t FirstLen = Out.find('\n');
  size_t Pos = 0;
  while (Pos < Out.size()) {
    size_t End = Out.find('\n', Pos);
    ASSERT_NE(End, std::string::npos);
    EXPECT_EQ(End - Pos, FirstLen);
    Pos = End + 1;
  }
}
