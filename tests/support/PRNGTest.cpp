//===- PRNGTest.cpp --------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/PRNG.h"

#include <gtest/gtest.h>

using namespace warpc;

TEST(PRNGTest, DeterministicForSameSeed) {
  PRNG A(12345), B(12345);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(PRNGTest, DifferentSeedsDiffer) {
  PRNG A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(PRNGTest, UniformInUnitInterval) {
  PRNG R(99);
  for (int I = 0; I != 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(PRNGTest, UniformRange) {
  PRNG R(7);
  for (int I = 0; I != 1000; ++I) {
    double U = R.uniform(5.0, 10.0);
    EXPECT_GE(U, 5.0);
    EXPECT_LT(U, 10.0);
  }
}

TEST(PRNGTest, BelowStaysBelow) {
  PRNG R(42);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(PRNGTest, BelowCoversAllResidues) {
  PRNG R(5);
  bool Seen[10] = {};
  for (int I = 0; I != 1000; ++I)
    Seen[R.below(10)] = true;
  for (bool S : Seen)
    EXPECT_TRUE(S);
}

TEST(PRNGTest, ExponentialIsPositiveWithPlausibleMean) {
  PRNG R(11);
  double Sum = 0;
  const int N = 20000;
  for (int I = 0; I != N; ++I) {
    double E = R.exponential(3.0);
    EXPECT_GE(E, 0.0);
    Sum += E;
  }
  double Mean = Sum / N;
  EXPECT_NEAR(Mean, 3.0, 0.15);
}

TEST(PRNGTest, ReseedRestoresSequence) {
  PRNG R(77);
  uint64_t First = R.next();
  R.next();
  R.reseed(77);
  EXPECT_EQ(R.next(), First);
}
