//===- DiagnosticsTest.cpp -------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace warpc;

TEST(DiagnosticsTest, StartsClean) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 0u);
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(DiagnosticsTest, ErrorsCount) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(1, 2), "first problem");
  Diags.warning(SourceLoc(3, 4), "a warning");
  Diags.error(SourceLoc(5, 6), "second problem");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 2u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(DiagnosticsTest, WarningsAreNotErrors) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLoc(1, 1), "only a warning");
  Diags.note(SourceLoc(1, 1), "a note");
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(DiagnosticsTest, Rendering) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(12, 7), "unexpected token");
  EXPECT_EQ(Diags.str(), "12:7: error: unexpected token\n");
}

TEST(DiagnosticsTest, InvalidLocation) {
  Diagnostic D{DiagKind::Note, SourceLoc(), "context"};
  EXPECT_EQ(D.str(), "<unknown>: note: context");
}

TEST(DiagnosticsTest, MergePreservesOrderAndCounts) {
  // The section master combines the diagnostic output of its function
  // masters (paper Section 3.2).
  DiagnosticEngine First, Second;
  First.warning(SourceLoc(1, 1), "from function master one");
  Second.error(SourceLoc(2, 2), "from function master two");

  DiagnosticEngine Combined;
  Combined.merge(First);
  Combined.merge(Second);
  ASSERT_EQ(Combined.diagnostics().size(), 2u);
  EXPECT_EQ(Combined.diagnostics()[0].Message, "from function master one");
  EXPECT_EQ(Combined.diagnostics()[1].Message, "from function master two");
  EXPECT_EQ(Combined.errorCount(), 1u);
}
