//===- TraceContextTest.cpp ------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Coverage for cross-process trace propagation: the span-shard codec
// (round trip, every-prefix truncation, flipped-byte fuzz, hostile
// bounds), the NTP-midpoint clock-offset estimator, and spliceShard's
// parent remapping / window clamping / pid forwarding.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceContext.h"

#include "obs/TraceRecorder.h"
#include "support/BinaryStream.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace warpc;
using namespace warpc::obs;

namespace {

SpanShard sampleShard() {
  SpanShard Shard;
  Shard.TraceId = 0xABCDEF0012345678ull;
  Shard.Pid = 31337;
  Shard.ProcessName = "warp-worker 2";
  Shard.ProcessNames = {{4000, "warp-worker 0"}, {4001, "warp-worker 1"}};
  Shard.FunctionNames = {"f0", "kernel_main"};

  ShardSpan Opt;
  Opt.TSec = 1.25;
  Opt.DurSec = 0.5;
  Opt.CpuSec = 0.4;
  Opt.LocalId = 1;
  Opt.LocalParent = 0;
  Opt.Section = 0;
  Opt.Function = 1;
  Opt.Attempt = 2;
  Opt.Kind = EventKind::SpanOptimize;
  Opt.Ph = Phase::Compile;
  Shard.Spans.push_back(Opt);

  ShardSpan Cg;
  Cg.TSec = 1.75;
  Cg.DurSec = 0.25;
  Cg.LocalId = 2;
  Cg.LocalParent = 1;
  Cg.Bytes = 4096;
  Cg.Pid = 4001; // Re-shipped from a third process.
  Cg.Function = 0;
  Cg.Kind = EventKind::SpanCodegen;
  Cg.Ph = Phase::Compile;
  Cg.Speculative = true;
  Shard.Spans.push_back(Cg);

  ShardSpan Done; // An instant: DurSec stays negative, LocalId may be 0.
  Done.TSec = 2.0;
  Done.Kind = EventKind::FunctionDone;
  Done.Ph = Phase::Compile;
  Done.LocalParent = 2;
  Shard.Spans.push_back(Done);
  return Shard;
}

} // namespace

TEST(TraceContextTest, ShardCodecRoundTrips) {
  const SpanShard In = sampleShard();
  SpanShard Out;
  ASSERT_TRUE(decodeSpanShard(encodeSpanShard(In), Out));
  EXPECT_EQ(Out.TraceId, In.TraceId);
  EXPECT_EQ(Out.Pid, In.Pid);
  EXPECT_EQ(Out.ProcessName, In.ProcessName);
  EXPECT_EQ(Out.ProcessNames, In.ProcessNames);
  EXPECT_EQ(Out.FunctionNames, In.FunctionNames);
  ASSERT_EQ(Out.Spans.size(), In.Spans.size());
  for (size_t I = 0; I != In.Spans.size(); ++I) {
    const ShardSpan &A = In.Spans[I];
    const ShardSpan &B = Out.Spans[I];
    EXPECT_EQ(B.TSec, A.TSec) << I;
    EXPECT_EQ(B.DurSec, A.DurSec) << I;
    EXPECT_EQ(B.CpuSec, A.CpuSec) << I;
    EXPECT_EQ(B.LocalId, A.LocalId) << I;
    EXPECT_EQ(B.LocalParent, A.LocalParent) << I;
    EXPECT_EQ(B.Bytes, A.Bytes) << I;
    EXPECT_EQ(B.Pid, A.Pid) << I;
    EXPECT_EQ(B.Section, A.Section) << I;
    EXPECT_EQ(B.Function, A.Function) << I;
    EXPECT_EQ(B.Attempt, A.Attempt) << I;
    EXPECT_EQ(B.Kind, A.Kind) << I;
    EXPECT_EQ(B.Ph, A.Ph) << I;
    EXPECT_EQ(B.Cause, A.Cause) << I;
    EXPECT_EQ(B.Speculative, A.Speculative) << I;
  }
}

TEST(TraceContextTest, ShardCodecEveryPrefixFails) {
  // Unlike the version-tolerant frame payloads, the shard format is new
  // in its entirety: no prefix is a valid older encoding, so every
  // truncation must fail outright. Trailing garbage too.
  const std::vector<uint8_t> Full = encodeSpanShard(sampleShard());
  for (size_t N = 0; N < Full.size(); ++N) {
    SpanShard Out;
    std::vector<uint8_t> Cut(Full.begin(), Full.begin() + N);
    EXPECT_FALSE(decodeSpanShard(Cut, Out)) << "prefix " << N;
  }
  std::vector<uint8_t> Extra = Full;
  Extra.push_back(0);
  SpanShard Out;
  EXPECT_FALSE(decodeSpanShard(Extra, Out));
}

TEST(TraceContextTest, ShardCodecFlippedByteFuzz) {
  // Flipping any single byte must never crash or produce an out-of-bounds
  // shard. (A flip inside a float payload can still decode successfully —
  // the frame checksum, not this codec, vouches integrity on the wire.)
  const std::vector<uint8_t> Full = encodeSpanShard(sampleShard());
  for (size_t I = 0; I < Full.size(); ++I) {
    for (uint8_t Bit : {uint8_t(0x01), uint8_t(0x80)}) {
      std::vector<uint8_t> Mut = Full;
      Mut[I] ^= Bit;
      SpanShard Out;
      if (decodeSpanShard(Mut, Out)) {
        EXPECT_LE(Out.Spans.size(), MaxShardSpans);
        EXPECT_LE(Out.FunctionNames.size(), MaxShardNames);
        EXPECT_LE(Out.ProcessNames.size(), MaxShardProcs);
        for (const ShardSpan &S : Out.Spans)
          if (S.Function >= 0)
            EXPECT_LT(static_cast<size_t>(S.Function),
                      Out.FunctionNames.size());
      }
    }
  }
}

TEST(TraceContextTest, ShardCodecRejectsHostileCounts) {
  // A hand-built payload claiming more records than the caps must be
  // rejected before any allocation is attempted.
  BinaryWriter W;
  W.u8(1); // ShardVersion
  W.u64(1);
  W.u64(1234);
  W.str("evil");
  W.u32(static_cast<uint32_t>(MaxShardProcs + 1));
  SpanShard Out;
  EXPECT_FALSE(decodeSpanShard(W.take(), Out));

  BinaryWriter W2;
  W2.u8(1);
  W2.u64(1);
  W2.u64(1234);
  W2.str("evil");
  W2.u32(0);
  W2.u32(static_cast<uint32_t>(MaxShardNames + 1));
  EXPECT_FALSE(decodeSpanShard(W2.take(), Out));

  BinaryWriter W3;
  W3.u8(1);
  W3.u64(1);
  W3.u64(1234);
  W3.str("evil");
  W3.u32(0);
  W3.u32(0);
  W3.u32(static_cast<uint32_t>(MaxShardSpans + 1));
  EXPECT_FALSE(decodeSpanShard(W3.take(), Out));
}

TEST(TraceContextTest, EncodeTruncatesOversizedShards) {
  SpanShard Big;
  Big.TraceId = 7;
  Big.Pid = 1;
  for (size_t I = 0; I != MaxShardSpans + 50; ++I) {
    ShardSpan S;
    S.TSec = static_cast<double>(I);
    S.DurSec = 0.001;
    S.LocalId = I + 1;
    S.Kind = EventKind::SpanCompile;
    S.Ph = Phase::Compile;
    Big.Spans.push_back(S);
  }
  SpanShard Out;
  ASSERT_TRUE(decodeSpanShard(encodeSpanShard(Big), Out));
  EXPECT_EQ(Out.Spans.size(), MaxShardSpans);
  // Deterministic truncation keeps the earliest records.
  EXPECT_EQ(Out.Spans.front().TSec, 0.0);
  EXPECT_EQ(Out.Spans.back().TSec, static_cast<double>(MaxShardSpans - 1));
}

TEST(TraceContextTest, ClockOffsetRecoversSkew) {
  // Remote clock runs 5s behind local; symmetric 100ms one-way delay,
  // 300ms remote processing. The midpoint recovers the offset exactly
  // and the RTT excludes the processing time.
  const double T1 = 10.0;
  const double W1 = 10.1 - 5.0;
  const double W2 = W1 + 0.3;
  const double T2 = 10.5;
  const ClockSync S = estimateClockOffset(T1, W1, W2, T2);
  ASSERT_TRUE(S.Valid);
  EXPECT_NEAR(S.OffsetSec, 5.0, 1e-12);
  EXPECT_NEAR(S.RttSec, 0.2, 1e-12);
  // Offset is what to ADD to remote time: the remote receive instant
  // lands at the local send + half the RTT.
  EXPECT_NEAR(W1 + S.OffsetSec, T1 + S.RttSec / 2, 1e-12);
}

TEST(TraceContextTest, ClockOffsetRejectsLegacyAndDisorder) {
  // A peer predating the echo sends zeros.
  EXPECT_FALSE(estimateClockOffset(10.0, 0.0, 0.0, 10.5).Valid);
  // Causally impossible stamps (receive before send on either side).
  EXPECT_FALSE(estimateClockOffset(10.0, 5.0, 4.0, 10.5).Valid);
  EXPECT_FALSE(estimateClockOffset(10.0, 5.0, 5.1, 9.0).Valid);
  const ClockSync S = estimateClockOffset(10.0, 0.0, 0.0, 10.5);
  EXPECT_EQ(S.OffsetSec, 0.0);
}

TEST(TraceContextTest, SpliceRemapsParentsAndStampsPids) {
  TraceRecorder R(ClockDomain::Steady);
  R.makeLanes(1);
  SpanEvent &Dispatch =
      R.lane(0).span(0.0, 3.0, EventKind::SpanCompile, Phase::Compile);

  SpliceOptions Opts;
  Opts.ParentSpanId = Dispatch.spanId();
  Opts.OffsetSec = 0;
  Opts.WindowStartSec = 0;
  Opts.WindowEndSec = -1; // No clamping.
  Opts.Host = 5;
  const SpanShard Shard = sampleShard();
  EXPECT_EQ(spliceShard(Shard, R, R.lane(0), Opts), Shard.Spans.size());

  TraceSession S = R.finish();
  ASSERT_EQ(S.Events.size(), 1 + Shard.Spans.size());

  const SpanEvent *Opt = nullptr, *Cg = nullptr, *Done = nullptr;
  for (const SpanEvent &E : S.Events) {
    if (E.Kind == EventKind::SpanOptimize)
      Opt = &E;
    else if (E.Kind == EventKind::SpanCodegen)
      Cg = &E;
    else if (E.Kind == EventKind::FunctionDone)
      Done = &E;
  }
  ASSERT_TRUE(Opt && Cg && Done);
  // Shard roots hang off the dispatch span; intra-shard links remap to
  // the freshly assigned local ids.
  EXPECT_EQ(Opt->Parent, Dispatch.spanId());
  EXPECT_EQ(Cg->Parent, Opt->spanId());
  EXPECT_EQ(Done->Parent, Cg->spanId());
  // The shard's own spans carry its pid; re-shipped third-process spans
  // keep theirs, and every foreign pid got a display name.
  EXPECT_EQ(Opt->Pid, Shard.Pid);
  EXPECT_EQ(Cg->Pid, 4001u);
  EXPECT_EQ(Opt->Host, 5);
  EXPECT_EQ(Cg->Bytes, 4096u);
  bool SawShardPid = false, SawThirdPid = false;
  for (const auto &[Pid, Name] : S.ProcessNames) {
    SawShardPid |= Pid == Shard.Pid && Name == Shard.ProcessName;
    SawThirdPid |= Pid == 4001 && Name == "warp-worker 1";
  }
  EXPECT_TRUE(SawShardPid);
  EXPECT_TRUE(SawThirdPid);
  // Function names re-interned through the splicing recorder.
  ASSERT_GE(Opt->Function, 0);
  EXPECT_EQ(S.FunctionNames[static_cast<size_t>(Opt->Function)],
            "kernel_main");
}

TEST(TraceContextTest, SpliceClampsIntoFlightWindow) {
  TraceRecorder R(ClockDomain::Steady);
  R.makeLanes(1);

  SpanShard Shard;
  Shard.TraceId = 9;
  Shard.Pid = 77;
  ShardSpan Early; // Before the window: clamps to its start.
  Early.TSec = -50.0;
  Early.DurSec = 0.5;
  Early.LocalId = 1;
  Early.Kind = EventKind::SpanOptimize;
  Early.Ph = Phase::Compile;
  ShardSpan Late; // Past the window: clamps to the end, duration 0.
  Late.TSec = 100.0;
  Late.DurSec = 2.0;
  Late.LocalId = 2;
  Late.Kind = EventKind::SpanCodegen;
  Late.Ph = Phase::Compile;
  Shard.Spans = {Early, Late};

  SpliceOptions Opts;
  Opts.WindowStartSec = 10.0;
  Opts.WindowEndSec = 11.0;
  spliceShard(Shard, R, R.lane(0), Opts);
  TraceSession S = R.finish();
  ASSERT_EQ(S.Events.size(), 2u);
  for (const SpanEvent &E : S.Events) {
    EXPECT_GE(E.TSec, 10.0);
    EXPECT_LE(E.TSec + std::max(E.DurSec, 0.0), 11.0);
  }
}
