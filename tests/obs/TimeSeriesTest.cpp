//===- TimeSeriesTest.cpp --------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// The telemetry ring buffers: bounded retention under decimation,
// deterministic sampling, JSON export, the counter-track round trip
// through a recorded session, and the spike/straggler anomaly detector.
//
//===----------------------------------------------------------------------===//

#include "obs/TimeSeries.h"
#include "obs/TraceRecorder.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

using namespace warpc;
using namespace warpc::obs;

//===----------------------------------------------------------------------===//
// Ring-buffer retention
//===----------------------------------------------------------------------===//

TEST(TimeSeriesTest, RetainsEverythingUnderCapacity) {
  TimeSeries S("gauge", 64);
  for (int I = 0; I != 50; ++I)
    S.sample(I, I * 2.0);
  ASSERT_EQ(S.samples().size(), 50u);
  EXPECT_DOUBLE_EQ(S.samples().front().TSec, 0.0);
  EXPECT_DOUBLE_EQ(S.samples().back().TSec, 49.0);
  EXPECT_DOUBLE_EQ(S.samples().back().Value, 98.0);
}

TEST(TimeSeriesTest, DecimationBoundsMemoryButCoversTheRun) {
  TimeSeries S("gauge", 32);
  const int N = 10000;
  for (int I = 0; I != N; ++I)
    S.sample(I, I);
  // Bounded: never exceeds capacity.
  EXPECT_LE(S.samples().size(), 32u);
  EXPECT_GE(S.samples().size(), 8u); // but not degenerate either
  // Covers the run: first retained sample is the very first one, the
  // last retained sample is near the end.
  EXPECT_DOUBLE_EQ(S.samples().front().TSec, 0.0);
  EXPECT_GT(S.samples().back().TSec, N - 2 * S.minKeepGapSec() - 1);
  // Still monotonically timestamped.
  for (size_t I = 1; I < S.samples().size(); ++I)
    EXPECT_GT(S.samples()[I].TSec, S.samples()[I - 1].TSec);
}

TEST(TimeSeriesTest, DropsOutOfOrderAndInGapSamples) {
  TimeSeries S("gauge", 8);
  S.sample(10, 1);
  S.sample(5, 2); // earlier than the last retained: dropped
  ASSERT_EQ(S.samples().size(), 1u);
  EXPECT_DOUBLE_EQ(S.samples()[0].Value, 1.0);
}

TEST(TimeSeriesTest, SamplingIsDeterministic) {
  auto Fill = [](TimeSeries &S) {
    for (int I = 0; I != 5000; ++I)
      S.sample(I * 0.25, std::sin(I * 0.01));
  };
  TimeSeries A("a", 64), B("a", 64);
  Fill(A);
  Fill(B);
  ASSERT_EQ(A.samples().size(), B.samples().size());
  for (size_t I = 0; I != A.samples().size(); ++I) {
    EXPECT_EQ(A.samples()[I].TSec, B.samples()[I].TSec) << I;
    EXPECT_EQ(A.samples()[I].Value, B.samples()[I].Value) << I;
  }
}

//===----------------------------------------------------------------------===//
// Gauge sets
//===----------------------------------------------------------------------===//

TEST(TimeSeriesTest, GaugeSetPollsEveryGaugeAtOneTimestamp) {
  TimeSeriesSet Set;
  double Pending = 10, Busy = 0.5;
  Set.registerGauge("sched.tasks_pending", [&] { return Pending; });
  Set.registerGauge("host.busy.ws1", [&] { return Busy; });
  Set.sampleAll(0);
  Pending = 7;
  Busy = 0.9;
  Set.sampleAll(5);
  std::vector<TimeSeries> Series = Set.snapshot();
  ASSERT_EQ(Series.size(), 2u);
  EXPECT_EQ(Series[0].name(), "sched.tasks_pending");
  ASSERT_EQ(Series[0].samples().size(), 2u);
  EXPECT_DOUBLE_EQ(Series[0].samples()[1].Value, 7.0);
  EXPECT_EQ(Series[1].name(), "host.busy.ws1");
  EXPECT_DOUBLE_EQ(Series[1].samples()[1].Value, 0.9);
}

//===----------------------------------------------------------------------===//
// JSON export and the counter-track round trip
//===----------------------------------------------------------------------===//

TEST(TimeSeriesTest, SeriesJsonShapeAndOrder) {
  TimeSeries A("alpha", 8), B("beta", 8);
  A.sample(0, 3);
  A.sample(10, 1);
  A.sample(20, 2);
  B.sample(0, -1);
  json::Value Doc = seriesJson({A, B});
  ASSERT_TRUE(Doc.isObject());
  ASSERT_EQ(Doc.members().size(), 2u);
  EXPECT_EQ(Doc.members()[0].first, "alpha"); // series order, not luck
  EXPECT_EQ(Doc.members()[1].first, "beta");
  const json::Value &Alpha = Doc.get("alpha");
  EXPECT_DOUBLE_EQ(Alpha.get("last").number(), 2.0);
  EXPECT_DOUBLE_EQ(Alpha.get("min").number(), 1.0);
  EXPECT_DOUBLE_EQ(Alpha.get("max").number(), 3.0);
  ASSERT_TRUE(Alpha.get("samples").isArray());
  ASSERT_EQ(Alpha.get("samples").elements().size(), 3u);
  const json::Value &First = Alpha.get("samples").elements()[0];
  EXPECT_DOUBLE_EQ(First.elements()[0].number(), 0.0);
  EXPECT_DOUBLE_EQ(First.elements()[1].number(), 3.0);
}

TEST(TimeSeriesTest, CounterTrackRoundTripThroughSession) {
  TimeSeries A("sched.tasks_pending", 16), B("cache.hit_rate", 16);
  for (int I = 0; I != 10; ++I) {
    A.sample(I, 10 - I);
    B.sample(I, I / 10.0);
  }
  TraceRecorder Rec(ClockDomain::Simulated);
  Rec.lane(0).instant(0.0, EventKind::RunComplete, Phase::Assembly);
  emitCounterTracks(Rec, 0, {A, B});
  TraceSession S = Rec.finish();

  std::vector<TimeSeries> Back = sessionSeries(S);
  ASSERT_EQ(Back.size(), 2u);
  EXPECT_EQ(Back[0].name(), "sched.tasks_pending");
  EXPECT_EQ(Back[1].name(), "cache.hit_rate");
  ASSERT_EQ(Back[0].samples().size(), A.samples().size());
  for (size_t I = 0; I != A.samples().size(); ++I) {
    EXPECT_EQ(Back[0].samples()[I].TSec, A.samples()[I].TSec) << I;
    EXPECT_EQ(Back[0].samples()[I].Value, A.samples()[I].Value) << I;
  }
}

//===----------------------------------------------------------------------===//
// Anomaly detection
//===----------------------------------------------------------------------===//

TEST(TimeSeriesTest, FlatSeriesRaisesNoAnomalies) {
  TimeSeries S("sched.tasks_pending", 64);
  for (int I = 0; I != 20; ++I)
    S.sample(I, 5.0);
  EXPECT_TRUE(detectAnomalies({S}).empty());
}

TEST(TimeSeriesTest, SpikeDetection) {
  TimeSeries S("queue.depth", 64);
  for (int I = 0; I != 30; ++I)
    S.sample(I, 10.0 + (I % 2)); // tight distribution around 10.5
  S.sample(30, 500.0);           // a wild spike
  std::vector<Anomaly> Found = detectAnomalies({S});
  ASSERT_EQ(Found.size(), 1u);
  EXPECT_EQ(Found[0].Series, "queue.depth");
  EXPECT_DOUBLE_EQ(Found[0].Value, 500.0);
  EXPECT_NE(Found[0].Reason.find("spike"), std::string::npos);
}

TEST(TimeSeriesTest, ShortSeriesNeverSpike) {
  TimeSeries S("queue.depth", 64);
  S.sample(0, 1);
  S.sample(1, 1000); // would be a spike with enough history
  EXPECT_TRUE(detectAnomalies({S}).empty());
}

TEST(TimeSeriesTest, StragglerDetectionAcrossHostSeries) {
  // Three workers: two healthy at ~0.9 busy, one limping at 0.2.
  std::vector<TimeSeries> Series;
  for (int W = 1; W <= 3; ++W) {
    TimeSeries S("host.busy.ws" + std::to_string(W), 64);
    double Final = W == 2 ? 0.2 : 0.9;
    for (int I = 0; I != 12; ++I)
      S.sample(I * 5.0, Final * (I + 1) / 12.0);
    Series.push_back(S);
  }
  std::vector<Anomaly> Found = detectAnomalies(Series);
  bool SawStraggler = false;
  for (const Anomaly &A : Found)
    if (A.Reason.find("straggler") != std::string::npos) {
      SawStraggler = true;
      EXPECT_EQ(A.Series, "host.busy.ws2");
      EXPECT_EQ(A.Host, 2);
    }
  EXPECT_TRUE(SawStraggler);

  // With every host equally busy nobody is a straggler.
  std::vector<TimeSeries> Even;
  for (int W = 1; W <= 3; ++W) {
    TimeSeries S("host.busy.ws" + std::to_string(W), 64);
    for (int I = 0; I != 12; ++I)
      S.sample(I * 5.0, 0.8);
    Even.push_back(S);
  }
  for (const Anomaly &A : detectAnomalies(Even))
    EXPECT_EQ(A.Reason.find("straggler"), std::string::npos);
}
