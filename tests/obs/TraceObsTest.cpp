//===- TraceObsTest.cpp ----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// The observability layer end to end: Chrome trace-event schema validity
// (what Perfetto requires to load the file), lossless trace-JSON round
// trips, the critical-path analyzer, and the cross-check that the
// Section 4.2.3 overhead decomposition rebuilt from a trace matches
// parallel::computeOverheads on the aggregate stats to 1e-9.
//
//===----------------------------------------------------------------------===//

#include "obs/ChromeTrace.h"
#include "obs/TraceAnalysis.h"
#include "obs/TraceRecorder.h"
#include "parallel/SimRunner.h"
#include "parallel/ThreadRunner.h"
#include "support/Json.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <set>

using namespace warpc;
using namespace warpc::parallel;
using namespace warpc::obs;
using workload::FunctionSize;

namespace {

const codegen::MachineModel MM = codegen::MachineModel::warpCell();
const cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
const CostModel Model = CostModel::lisp1989();

struct TracedRun {
  TraceSession Session;
  SeqStats Seq;
  ParStats Par;
  unsigned NumFunctions = 0;
};

/// Simulates \p Source with tracing on, attaching the sequential baseline
/// the way warpc --simulate does.
TracedRun tracedSimRun(const std::string &Source,
                       const cluster::FaultPlan *Plan = nullptr,
                       const driver::FaultPolicy &Policy =
                           driver::FaultPolicy()) {
  TracedRun Run;
  auto Job = buildJob(Source, MM);
  EXPECT_TRUE(static_cast<bool>(Job));
  cluster::HostConfig H = Host;
  if (Plan)
    H.Faults = *Plan;
  Run.NumFunctions = Job->numFunctions();
  Run.Seq = simulateSequential(*Job, Host, Model);
  Assignment Assign = scheduleFCFS(*Job, H.NumWorkstations);
  TraceRecorder Rec(ClockDomain::Simulated);
  Run.Par = simulateParallel(*Job, Assign, H, Model, &Rec, Policy);
  Rec.setRunTotals(Run.Par.ElapsedSec, Run.Seq.ElapsedSec,
                   Run.NumFunctions);
  Run.Session = Rec.finish();
  return Run;
}

unsigned countKind(const TraceSession &S, EventKind K) {
  unsigned N = 0;
  for (const SpanEvent &E : S.Events)
    N += E.Kind == K;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Chrome trace-event schema (what Perfetto needs to load the file)
//===----------------------------------------------------------------------===//

TEST(TraceObsTest, ChromeTraceSchemaIsPerfettoValid) {
  TracedRun Run = tracedSimRun(workload::makeTestModule(FunctionSize::Small, 4));
  std::string Text = writeChromeTrace(Run.Session);

  std::string Error;
  json::Value Root = json::parse(Text, Error);
  ASSERT_TRUE(Error.empty()) << Error;
  ASSERT_TRUE(Root.isObject());
  ASSERT_TRUE(Root.get("traceEvents").isArray());
  EXPECT_TRUE(Root.get("otherData").isObject());

  unsigned Spans = 0, Instants = 0, ThreadNames = 0, ProcessNames = 0;
  unsigned FlowStarts = 0, FlowFinishes = 0;
  std::set<std::string> CounterNames;
  for (const json::Value &Ev : Root.get("traceEvents").elements()) {
    ASSERT_TRUE(Ev.isObject());
    const std::string &Ph = Ev.get("ph").str();
    ASSERT_TRUE(Ph == "X" || Ph == "i" || Ph == "C" || Ph == "M" ||
                Ph == "s" || Ph == "f")
        << Ph;
    EXPECT_TRUE(Ev.get("pid").isNumber());
    if (Ph == "M") {
      // Metadata: names the process and one track per host.
      const std::string &Name = Ev.get("name").str();
      EXPECT_TRUE(Name == "process_name" || Name == "thread_name") << Name;
      EXPECT_TRUE(Ev.get("args").get("name").isString());
      ThreadNames += Name == "thread_name";
      ProcessNames += Name == "process_name";
      continue;
    }
    EXPECT_TRUE(Ev.get("ts").isNumber());
    EXPECT_GE(Ev.get("ts").number(), 0.0);
    if (Ph == "X") {
      // Complete events: a duration and a track.
      ASSERT_TRUE(Ev.get("dur").isNumber());
      EXPECT_GE(Ev.get("dur").number(), 0.0);
      EXPECT_TRUE(Ev.get("tid").isNumber());
      EXPECT_TRUE(Ev.get("name").isString());
      EXPECT_TRUE(Ev.get("cat").isString());
      ++Spans;
    } else if (Ph == "i") {
      EXPECT_EQ(Ev.get("s").str(), "t"); // thread-scoped instant
      ++Instants;
    } else if (Ph == "s" || Ph == "f") {
      // Flow events: a binding id and a track; the finish side binds to
      // the enclosing slice (bp:"e").
      EXPECT_TRUE(Ev.get("id").isString() || Ev.get("id").isNumber());
      EXPECT_TRUE(Ev.get("tid").isNumber());
      EXPECT_TRUE(Ev.get("name").isString());
      if (Ph == "s")
        ++FlowStarts;
      else {
        EXPECT_EQ(Ev.get("bp").str(), "e");
        ++FlowFinishes;
      }
    } else { // "C"
      EXPECT_TRUE(Ev.get("args").get("value").isNumber());
      CounterNames.insert(Ev.get("name").str());
    }
  }
  EXPECT_EQ(ProcessNames, 1u);
  EXPECT_EQ(ThreadNames, Run.Session.NumHosts); // one track per host
  EXPECT_GT(Spans, 0u);
  EXPECT_GT(Instants, 0u);
  // The causal edges materialize as paired flow arrows, and the
  // telemetry sampler populates at least the four standard gauge tracks.
  EXPECT_GT(FlowStarts, 0u);
  EXPECT_EQ(FlowFinishes, FlowStarts);
  EXPECT_GE(CounterNames.size(), 4u);
}

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(TraceObsTest, TraceJsonRoundTripIsLossless) {
  TracedRun Run = tracedSimRun(workload::makeTestModule(FunctionSize::Small, 5));
  const TraceSession &A = Run.Session;

  TraceSession B;
  std::string Error;
  ASSERT_TRUE(parseChromeTrace(writeChromeTrace(A), B, Error)) << Error;

  EXPECT_EQ(B.Domain, A.Domain);
  EXPECT_EQ(B.TraceId, A.TraceId);
  EXPECT_EQ(B.NumHosts, A.NumHosts);
  EXPECT_EQ(B.NumSections, A.NumSections);
  EXPECT_EQ(B.NumFunctions, A.NumFunctions);
  // Doubles ride in args at full precision: bit-exact equality.
  EXPECT_EQ(B.ParElapsedSec, A.ParElapsedSec);
  EXPECT_EQ(B.SeqElapsedSec, A.SeqElapsedSec);
  EXPECT_EQ(B.FunctionNames, A.FunctionNames);
  EXPECT_EQ(B.CounterNames, A.CounterNames);

  ASSERT_EQ(B.Events.size(), A.Events.size());
  for (size_t I = 0; I != A.Events.size(); ++I) {
    const SpanEvent &EA = A.Events[I], &EB = B.Events[I];
    EXPECT_EQ(EB.Kind, EA.Kind) << "event " << I;
    EXPECT_EQ(EB.TSec, EA.TSec) << "event " << I;
    EXPECT_EQ(EB.isSpan(), EA.isSpan()) << "event " << I;
    if (EA.isSpan())
      EXPECT_EQ(EB.DurSec, EA.DurSec) << "event " << I;
    EXPECT_EQ(EB.CpuSec, EA.CpuSec) << "event " << I;
    EXPECT_EQ(EB.Seq, EA.Seq) << "event " << I;
    EXPECT_EQ(EB.Host, EA.Host) << "event " << I;
    EXPECT_EQ(EB.Section, EA.Section) << "event " << I;
    EXPECT_EQ(EB.Function, EA.Function) << "event " << I;
    EXPECT_EQ(EB.Attempt, EA.Attempt) << "event " << I;
    EXPECT_EQ(EB.Cause, EA.Cause) << "event " << I;
    EXPECT_EQ(EB.Speculative, EA.Speculative) << "event " << I;
    EXPECT_EQ(EB.Ph, EA.Ph) << "event " << I;
    EXPECT_EQ(EB.Parent, EA.Parent) << "event " << I;
  }
  ASSERT_EQ(B.Counters.size(), A.Counters.size());
  for (size_t I = 0; I != A.Counters.size(); ++I) {
    EXPECT_EQ(B.Counters[I].TSec, A.Counters[I].TSec) << "counter " << I;
    EXPECT_EQ(B.Counters[I].Value, A.Counters[I].Value) << "counter " << I;
    EXPECT_EQ(B.Counters[I].Counter, A.Counters[I].Counter)
        << "counter " << I;
  }
}

TEST(TraceObsTest, EngineLabelRoundTripsAndStaysAbsentWhenUnset) {
  // Engine-labeled sessions (thread/process/sim) carry the label through
  // the Chrome JSON; unlabeled sessions write no "engine" key at all, so
  // pre-label trace documents keep their exact bytes.
  TracedRun Run = tracedSimRun(workload::makeTestModule(FunctionSize::Tiny, 2));
  TraceSession A = Run.Session;
  ASSERT_TRUE(A.Engine.empty());
  EXPECT_EQ(writeChromeTrace(A).find("\"engine\""), std::string::npos);

  A.Engine = "process";
  std::string Text = writeChromeTrace(A);
  EXPECT_NE(Text.find("warpc process engine"), std::string::npos);
  TraceSession B;
  std::string Error;
  ASSERT_TRUE(parseChromeTrace(Text, B, Error)) << Error;
  EXPECT_EQ(B.Engine, "process");
}

TEST(TraceObsTest, RoundTripPreservesCriticalPathAndOverheads) {
  cluster::FaultPlan Plan;
  Plan.hostMut(2).SlowdownFactor = 3.0;
  Plan.MessageLossProb = 0.1;
  Plan.Seed = 11;
  TracedRun Run =
      tracedSimRun(workload::makeTestModule(FunctionSize::Small, 6), &Plan);

  TraceSession Back;
  std::string Error;
  ASSERT_TRUE(parseChromeTrace(writeChromeTrace(Run.Session), Back, Error))
      << Error;

  TraceReport RA = analyzeTrace(Run.Session);
  TraceReport RB = analyzeTrace(Back);

  ASSERT_EQ(RB.CriticalPath.size(), RA.CriticalPath.size());
  for (size_t I = 0; I != RA.CriticalPath.size(); ++I) {
    EXPECT_EQ(RB.CriticalPath[I].E.Kind, RA.CriticalPath[I].E.Kind)
        << "step " << I;
    EXPECT_EQ(RB.CriticalPath[I].E.TSec, RA.CriticalPath[I].E.TSec)
        << "step " << I;
    EXPECT_EQ(RB.CriticalPath[I].E.Host, RA.CriticalPath[I].E.Host)
        << "step " << I;
    EXPECT_EQ(RB.CriticalPath[I].WaitBeforeSec,
              RA.CriticalPath[I].WaitBeforeSec)
        << "step " << I;
  }
  EXPECT_EQ(RB.TotalOverheadSec, RA.TotalOverheadSec);
  EXPECT_EQ(RB.ImplOverheadSec, RA.ImplOverheadSec);
  EXPECT_EQ(RB.SysOverheadSec, RA.SysOverheadSec);
  EXPECT_EQ(RB.MasterCpuSec, RA.MasterCpuSec);
  EXPECT_EQ(RB.SectionCpuSec, RA.SectionCpuSec);
  ASSERT_EQ(RB.Hosts.size(), RA.Hosts.size());
  for (size_t H = 0; H != RA.Hosts.size(); ++H)
    EXPECT_EQ(RB.Hosts[H].BusySec, RA.Hosts[H].BusySec) << "host " << H;
}

//===----------------------------------------------------------------------===//
// Analyzer vs the aggregate stats
//===----------------------------------------------------------------------===//

TEST(TraceObsTest, AnalyzerMatchesComputeOverheads) {
  TracedRun Run = tracedSimRun(workload::makeUserProgram());
  TraceReport R = analyzeTrace(Run.Session);

  // The spans' CPU attributions reproduce the stats ledgers exactly.
  EXPECT_NEAR(R.MasterCpuSec, Run.Par.MasterCpuSec, 1e-9);
  EXPECT_NEAR(R.SectionCpuSec, Run.Par.SectionCpuSec, 1e-9);

  OverheadBreakdown Ov =
      computeOverheads(Run.Seq, Run.Par, Run.NumFunctions);
  ASSERT_TRUE(R.HasOverheads);
  EXPECT_NEAR(R.TotalOverheadSec, Ov.TotalSec, 1e-9);
  EXPECT_NEAR(R.ImplOverheadSec, Ov.ImplSec, 1e-9);
  EXPECT_NEAR(R.SysOverheadSec, Ov.SysSec, 1e-9);
  EXPECT_DOUBLE_EQ(R.ParElapsedSec, Run.Par.ElapsedSec);

  EXPECT_EQ(R.FunctionsCompleted, Run.Par.FunctionsCompleted);
  EXPECT_EQ(R.NumFunctions, Run.NumFunctions);

  // Utilization stays physical: no host is busy longer than the run.
  for (const HostUtilization &H : R.Hosts) {
    EXPECT_LE(H.BusySec, R.ParElapsedSec + 1e-9) << "host " << H.Host;
    EXPECT_LE(H.utilizationPct(R.ParElapsedSec), 100.0 + 1e-9);
  }

  // The path is in time order, starts at the master's first fork, and
  // ends when the final image lands.
  ASSERT_GE(R.CriticalPath.size(), 5u);
  EXPECT_EQ(R.CriticalPath.front().E.Kind, EventKind::SpanMasterFork);
  EXPECT_EQ(R.CriticalPath.back().E.Kind, EventKind::RunComplete);
  for (size_t I = 1; I < R.CriticalPath.size(); ++I)
    EXPECT_GE(R.CriticalPath[I].E.TSec, R.CriticalPath[I - 1].E.TSec)
        << "step " << I;

  // The path is a genuine causal chain: every step's Parent is the
  // previous step's span id, so each hop is a recorded message edge.
  ASSERT_TRUE(R.CausalPath);
  for (size_t I = 1; I < R.CriticalPath.size(); ++I)
    EXPECT_EQ(R.CriticalPath[I].E.Parent, R.CriticalPath[I - 1].E.spanId())
        << "step " << I;

  // The message-level decomposition stays consistent with the 4.2.3
  // categories: coordination CPU on the path is a subset of the
  // implementation overhead, startup rides in the system bucket, and
  // real compute dominates a fault-free run.
  EXPECT_LE(R.PathCoordinationCpuSec, R.ImplOverheadSec + 1e-9);
  EXPECT_GE(R.PathStartupSec, 0.0);
  EXPECT_GT(R.PathComputeSec, 0.0);
  EXPECT_LE(R.PathStartupSec + R.PathComputeSec,
            R.ParElapsedSec + 1e-9);
}

TEST(TraceObsTest, AnalyzerMatchesStatsUnderFaults) {
  cluster::FaultPlan Plan;
  Plan.hostMut(1).CrashAtSec = 150;
  Plan.hostMut(1).RebootAfterSec = 400;
  Plan.hostMut(3).SlowdownFactor = 5.0;
  Plan.MessageLossProb = 0.15;
  Plan.Seed = 9;
  driver::FaultPolicy Policy;
  TracedRun Run = tracedSimRun(workload::makeTestModule(FunctionSize::Small, 6),
                               &Plan, Policy);
  TraceReport R = analyzeTrace(Run.Session);

  // Fault-recovery tallies in the trace match the aggregate counters.
  EXPECT_EQ(R.TimeoutsFired, Run.Par.TimeoutsFired);
  EXPECT_EQ(R.MasterRecompiles, Run.Par.MasterRecompiles);
  EXPECT_EQ(R.FunctionsCompleted, Run.Par.FunctionsCompleted);
  // Reassigned events fire per retry; the stat counts unique functions.
  EXPECT_GE(R.Reassignments, Run.Par.FunctionsReassigned);

  OverheadBreakdown Ov =
      computeOverheads(Run.Seq, Run.Par, Run.NumFunctions);
  EXPECT_NEAR(R.TotalOverheadSec, Ov.TotalSec, 1e-9);
  EXPECT_NEAR(R.ImplOverheadSec, Ov.ImplSec, 1e-9);
  EXPECT_NEAR(R.SysOverheadSec, Ov.SysSec, 1e-9);

  // The report renders without tripping any internal checks.
  std::string Text = renderReport(Run.Session, R);
  EXPECT_NE(Text.find("critical path"), std::string::npos);
  EXPECT_NE(Text.find("fault recovery"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Overhead-breakdown edge cases
//===----------------------------------------------------------------------===//

TEST(TraceObsTest, OverheadBreakdownEdgeCases) {
  // k == 0: no ideal speedup to compare against; everything reports zero.
  SeqStats Seq;
  Seq.ElapsedSec = 100;
  ParStats Par;
  Par.ElapsedSec = 40;
  OverheadBreakdown Zero = computeOverheads(Seq, Par, 0);
  EXPECT_DOUBLE_EQ(Zero.TotalSec, 0.0);
  EXPECT_DOUBLE_EQ(Zero.ImplSec, 0.0);
  EXPECT_DOUBLE_EQ(Zero.SysSec, 0.0);

  // Zero parallel elapsed: the relative percentages must not divide by
  // zero.
  OverheadBreakdown Degenerate;
  Degenerate.TotalSec = 5;
  Degenerate.SysSec = 3;
  Degenerate.ParElapsedSec = 0;
  EXPECT_DOUBLE_EQ(Degenerate.relTotalPct(), 0.0);
  EXPECT_DOUBLE_EQ(Degenerate.relSysPct(), 0.0);

  // Negative system overhead (super-linear corner: the parallel run beats
  // the ideal) flows through as a negative percentage, not a clamp.
  OverheadBreakdown Negative;
  Negative.TotalSec = -2;
  Negative.ImplSec = 1;
  Negative.SysSec = -3;
  Negative.ParElapsedSec = 50;
  EXPECT_DOUBLE_EQ(Negative.relTotalPct(), -4.0);
  EXPECT_DOUBLE_EQ(Negative.relSysPct(), -6.0);

  // The analyzer-side report mirrors the same conventions.
  TraceReport R;
  R.TotalOverheadSec = 5;
  R.SysOverheadSec = -1;
  R.ParElapsedSec = 0;
  EXPECT_DOUBLE_EQ(R.relTotalPct(), 0.0);
  EXPECT_DOUBLE_EQ(R.relSysPct(), 0.0);
  R.ParElapsedSec = 10;
  EXPECT_DOUBLE_EQ(R.relTotalPct(), 50.0);
  EXPECT_DOUBLE_EQ(R.relSysPct(), -10.0);

  // A session with no sequential baseline carries no decomposition.
  TraceRecorder Rec(ClockDomain::Simulated);
  Rec.lane(0).instant(0.0, EventKind::RunComplete, Phase::Assembly);
  Rec.setRunTotals(1.0, 0.0, 4);
  TraceReport NoBaseline = analyzeTrace(Rec.finish());
  EXPECT_FALSE(NoBaseline.HasOverheads);
  EXPECT_DOUBLE_EQ(NoBaseline.TotalOverheadSec, 0.0);
}

//===----------------------------------------------------------------------===//
// The thread engine's trace
//===----------------------------------------------------------------------===//

TEST(TraceObsTest, ThreadEngineTraceIsAnalyzable) {
  std::string Source = workload::makeTestModule(FunctionSize::Tiny, 6);
  TraceRecorder Rec(ClockDomain::Steady);
  MetricsRegistry Metrics;
  ThreadRunResult Run = compileModuleParallel(
      Source, MM, 3, driver::FaultPolicy(), nullptr, &Rec, &Metrics);
  ASSERT_TRUE(Run.Module.Succeeded);
  TraceSession S = Rec.finish();

  EXPECT_EQ(S.Domain, ClockDomain::Steady);
  EXPECT_EQ(S.NumHosts, 4u); // master + 3 workers
  EXPECT_EQ(S.NumFunctions, 6u);
  EXPECT_EQ(countKind(S, EventKind::SpanParse), 1u);
  EXPECT_EQ(countKind(S, EventKind::SpanCompile), 6u);
  EXPECT_EQ(countKind(S, EventKind::FunctionDone), 6u);
  EXPECT_EQ(countKind(S, EventKind::SpanAssembly), 1u);
  EXPECT_EQ(countKind(S, EventKind::RunComplete), 1u);

  // Merged lanes are in (TSec, Seq) order.
  for (size_t I = 1; I < S.Events.size(); ++I) {
    EXPECT_TRUE(S.Events[I - 1].TSec < S.Events[I].TSec ||
                (S.Events[I - 1].TSec == S.Events[I].TSec &&
                 S.Events[I - 1].Seq < S.Events[I].Seq))
        << "event " << I;
  }

  TraceReport R = analyzeTrace(S);
  EXPECT_EQ(R.FunctionsCompleted, 6u);
  ASSERT_FALSE(R.CriticalPath.empty());
  EXPECT_EQ(R.CriticalPath.back().E.Kind, EventKind::RunComplete);
  // Real-time traces carry no simulated baseline: no 4.2.3 decomposition.
  EXPECT_FALSE(R.HasOverheads);

  // The thread engine threads the same causal ids: the path is a
  // Parent-linked chain ending in a RunComplete that names its cause.
  EXPECT_TRUE(R.CausalPath);
  EXPECT_NE(R.CriticalPath.back().E.Parent, 0u);
  for (size_t I = 1; I < R.CriticalPath.size(); ++I)
    EXPECT_EQ(R.CriticalPath[I].E.Parent, R.CriticalPath[I - 1].E.spanId())
        << "step " << I;
  // The steady-clock sampler leaves counter tracks behind (each gauge is
  // flushed once more at finish even if the run outpaced the period).
  EXPECT_FALSE(S.CounterNames.empty());
  EXPECT_FALSE(S.Counters.empty());

  EXPECT_EQ(Metrics.counter("phase2.functions"), 6.0);
  EXPECT_EQ(Metrics.counter("phase1.runs"), 1.0);
  EXPECT_EQ(Metrics.histogram("thread.compile_sec").Count, 6u);

  // The trace serializes and parses like the simulator's.
  TraceSession Back;
  std::string Error;
  ASSERT_TRUE(parseChromeTrace(writeChromeTrace(S), Back, Error)) << Error;
  EXPECT_EQ(Back.Events.size(), S.Events.size());
  EXPECT_EQ(Back.Domain, ClockDomain::Steady);
}
