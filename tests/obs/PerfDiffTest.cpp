//===- PerfDiffTest.cpp ----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// The perf-regression gate behind tools/warp-perf: metric flattening of
// --stats-json and BENCH documents, direction classification, the noise
// threshold (including the repeat-widened form), and the gate verdicts
// on identical, regressed, and improved candidates.
//
//===----------------------------------------------------------------------===//

#include "obs/PerfDiff.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace warpc;
using namespace warpc::obs;

namespace {

json::Value parseOrDie(const std::string &Text) {
  std::string Error;
  json::Value V = json::parse(Text, Error);
  EXPECT_TRUE(Error.empty()) << Error;
  return V;
}

/// A miniature --stats-json document with the gateable headline numbers.
json::Value statsDoc(double ParSec, double Speedup, double OverheadSec) {
  json::Value Stats = json::Value::object();
  json::Value Simulation = json::Value::object();
  Simulation.set("parallel_sec", ParSec);
  Simulation.set("speedup", Speedup);
  Stats.set("simulation", Simulation);
  json::Value Overheads = json::Value::object();
  Overheads.set("total_sec", OverheadSec);
  Stats.set("overheads", Overheads);
  json::Value Root = json::Value::object();
  Root.set("schema", "warpc-stats-v2");
  Root.set("stats", Stats);
  return Root;
}

} // namespace

//===----------------------------------------------------------------------===//
// Flattening and direction
//===----------------------------------------------------------------------===//

TEST(PerfDiffTest, FlattenSkipsSchemaAndScalarArrays) {
  json::Value Doc = parseOrDie(R"({
    "schema": "warpc-stats-v2",
    "stats": {"simulation": {"parallel_sec": 4.5}},
    "metrics": {"histograms": {"h": {"buckets": [1, 2, 3]}}}
  })");
  std::vector<PerfMetric> Metrics = flattenMetrics(Doc);
  ASSERT_EQ(Metrics.size(), 1u);
  EXPECT_EQ(Metrics[0].Path, "stats.simulation.parallel_sec");
  EXPECT_DOUBLE_EQ(Metrics[0].Value, 4.5);
}

TEST(PerfDiffTest, BenchRowsAreLabeledByIdentity) {
  json::Value Doc = parseOrDie(R"({
    "schema": "warpc-bench-v1",
    "rows": [
      {"size": "s_small", "functions": 4, "par_elapsed_sec": 100.0},
      {"size": "s_small", "functions": 8, "par_elapsed_sec": 60.0}
    ]
  })");
  // Each row flattens its numeric members (the identity counter too)
  // under a label built from its identifying fields.
  std::vector<PerfMetric> Metrics = flattenMetrics(Doc);
  ASSERT_EQ(Metrics.size(), 4u);
  EXPECT_EQ(Metrics[1].Path,
            "rows[size=s_small,functions=4].par_elapsed_sec");
  EXPECT_DOUBLE_EQ(Metrics[1].Value, 100.0);
  EXPECT_EQ(Metrics[3].Path,
            "rows[size=s_small,functions=8].par_elapsed_sec");
  // The row label's "size=..." text must not sway the direction: the
  // leaf is an elapsed time, lower is better.
  EXPECT_EQ(metricDirection(Metrics[1].Path), PerfDirection::LowerIsBetter);
}

TEST(PerfDiffTest, EngineLabeledDocumentsNeverAliasAcrossEngines) {
  // Objects carrying an "engine" string (warpc's stats run block, the
  // process-ablation bench rows) label their subtree, so a thread run
  // and a process run of the same workload diff as distinct metrics.
  json::Value Thread = parseOrDie(R"({
    "run": {"engine": "thread", "workers": 4, "image_bytes": 512},
    "stats": {"simulation": {"parallel_sec": 4.0}}
  })");
  json::Value Process = parseOrDie(R"({
    "run": {"engine": "process", "workers": 4, "image_bytes": 512},
    "stats": {"simulation": {"parallel_sec": 5.0}}
  })");
  std::vector<PerfMetric> T = flattenMetrics(Thread);
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Path, "run[engine=thread].workers");
  EXPECT_EQ(T[1].Path, "run[engine=thread].image_bytes");
  std::vector<PerfMetric> P = flattenMetrics(Process);
  EXPECT_EQ(P[0].Path, "run[engine=process].workers");

  // Diffing a process candidate against a thread baseline compares only
  // the shared unlabeled paths; the engine-specific ones are reported as
  // missing/extra, never silently compared against the other engine.
  PerfDiffResult R = diffPerf({Thread}, Process);
  ASSERT_EQ(R.Deltas.size(), 1u);
  EXPECT_EQ(R.Deltas[0].Path, "stats.simulation.parallel_sec");
  EXPECT_EQ(R.MissingInCandidate.size(), 2u);
  EXPECT_EQ(R.OnlyInCandidate.size(), 2u);

  // Bench rows already carry the engine inside their row label (built
  // from every string member), so they do not get a second suffix.
  json::Value Bench = parseOrDie(R"({
    "rows": [{"engine": "process", "workers": 2, "elapsed_sec": 1.5}]
  })");
  std::vector<PerfMetric> B = flattenMetrics(Bench);
  ASSERT_EQ(B.size(), 2u);
  EXPECT_EQ(B[1].Path, "rows[engine=process,workers=2].elapsed_sec");
}

TEST(PerfDiffTest, DaemonDocumentsLabelEngineDaemon) {
  // warpd --stats-json and the daemon ablation bench both carry
  // engine "daemon"; their metrics must diff as their own family, never
  // against a local thread/process run of the same workload.
  json::Value Stats = parseOrDie(R"({
    "schema": "warpc-stats-v2",
    "run": {"engine": "daemon", "accepted": 40, "completed": 38},
    "metrics": {"counters": {"service.admission_rejects": 2}}
  })");
  std::vector<PerfMetric> S = flattenMetrics(Stats);
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0].Path, "run[engine=daemon].accepted");
  EXPECT_EQ(S[1].Path, "run[engine=daemon].completed");

  json::Value Bench = parseOrDie(R"({
    "schema": "warpc-bench-v1",
    "rows": [{"engine": "daemon", "offered_rps": 250.0, "sent": 40,
              "rejected": 3, "p95_sec": 0.08}]
  })");
  std::vector<PerfMetric> B = flattenMetrics(Bench);
  ASSERT_EQ(B.size(), 4u);
  EXPECT_EQ(B[3].Path, "rows[engine=daemon].p95_sec");
  EXPECT_EQ(metricDirection(B[3].Path), PerfDirection::LowerIsBetter);
}

TEST(PerfDiffTest, MetricDirectionByLeafName) {
  EXPECT_EQ(metricDirection("stats.simulation.speedup"),
            PerfDirection::HigherIsBetter);
  EXPECT_EQ(metricDirection("stats.cache.hit_rate"),
            PerfDirection::HigherIsBetter);
  EXPECT_EQ(metricDirection("stats.simulation.parallel_sec"),
            PerfDirection::LowerIsBetter);
  EXPECT_EQ(metricDirection("stats.overheads.total_sec"),
            PerfDirection::LowerIsBetter);
  EXPECT_EQ(metricDirection("metrics.histograms.compile.p95"),
            PerfDirection::LowerIsBetter);
  EXPECT_EQ(metricDirection("run.functions"), PerfDirection::Informational);
  EXPECT_EQ(metricDirection("stats.faults.timeouts_fired"),
            PerfDirection::Informational);
}

//===----------------------------------------------------------------------===//
// The gate
//===----------------------------------------------------------------------===//

TEST(PerfDiffTest, IdenticalRunsPassWithZeroRegressions) {
  json::Value Doc = statsDoc(256.7, 2.72, 82.2);
  PerfDiffResult R = diffPerf({Doc}, Doc);
  EXPECT_EQ(R.Regressions, 0u);
  EXPECT_EQ(R.Improvements, 0u);
  ASSERT_EQ(R.Deltas.size(), 3u);
  for (const PerfDelta &D : R.Deltas)
    EXPECT_DOUBLE_EQ(D.DeltaPct, 0.0);
  std::string Text = renderPerfDiff(R);
  EXPECT_NE(Text.find("warp-perf: 0 regression(s)"), std::string::npos);
}

TEST(PerfDiffTest, SlowedElapsedGates) {
  PerfDiffResult R =
      diffPerf({statsDoc(100, 3.0, 80)}, statsDoc(150, 3.0, 80));
  EXPECT_EQ(R.Regressions, 1u);
  ASSERT_FALSE(R.Deltas.empty());
  const PerfDelta &D = R.Deltas[0];
  EXPECT_EQ(D.Path, "stats.simulation.parallel_sec");
  EXPECT_TRUE(D.Regression);
  EXPECT_DOUBLE_EQ(D.DeltaPct, 50.0);
  std::string Text = renderPerfDiff(R);
  EXPECT_NE(Text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(Text.find("stats.simulation.parallel_sec"), std::string::npos);
}

TEST(PerfDiffTest, LoweredSpeedupGatesDespiteHigherIsBetter) {
  PerfDiffResult R =
      diffPerf({statsDoc(100, 3.0, 80)}, statsDoc(100, 1.5, 80));
  EXPECT_EQ(R.Regressions, 1u);
  EXPECT_TRUE(R.Deltas[1].Regression);
  EXPECT_EQ(R.Deltas[1].Path, "stats.simulation.speedup");
  // And a raised speedup is an improvement, not a regression.
  PerfDiffResult Up =
      diffPerf({statsDoc(100, 3.0, 80)}, statsDoc(100, 4.5, 80));
  EXPECT_EQ(Up.Regressions, 0u);
  EXPECT_EQ(Up.Improvements, 1u);
}

TEST(PerfDiffTest, MovesInsideNoiseFloorNeverGate) {
  // +9% elapsed sits inside the default 10% methodology bound.
  PerfDiffResult R =
      diffPerf({statsDoc(100, 3.0, 80)}, statsDoc(109, 3.0, 80));
  EXPECT_EQ(R.Regressions, 0u);
}

TEST(PerfDiffTest, RepeatsWidenTheThreshold) {
  // Three noisy baseline repeats: 100, 130, 70 — max relative deviation
  // 30%, so the threshold widens to 60% and a +50% candidate passes.
  std::vector<json::Value> Repeats = {statsDoc(100, 3.0, 80),
                                      statsDoc(130, 3.0, 80),
                                      statsDoc(70, 3.0, 80)};
  PerfDiffResult R = diffPerf(Repeats, statsDoc(150, 3.0, 80));
  ASSERT_FALSE(R.Deltas.empty());
  EXPECT_DOUBLE_EQ(R.Deltas[0].Baseline, 100.0); // mean of the repeats
  EXPECT_GT(R.Deltas[0].ThresholdPct, 10.0);
  EXPECT_FALSE(R.Deltas[0].Regression);
  // Against a single tight baseline the same candidate gates.
  EXPECT_EQ(diffPerf({statsDoc(100, 3.0, 80)}, statsDoc(150, 3.0, 80))
                .Regressions,
            1u);
}

TEST(PerfDiffTest, InformationalMetricsNeverGate) {
  json::Value A = json::Value::object();
  A.set("functions", 4.0);
  json::Value B = json::Value::object();
  B.set("functions", 400.0);
  PerfDiffResult R = diffPerf({A}, B);
  EXPECT_EQ(R.Regressions, 0u);
  ASSERT_EQ(R.Deltas.size(), 1u);
  EXPECT_FALSE(R.Deltas[0].Regression);
  EXPECT_EQ(R.Deltas[0].Direction, PerfDirection::Informational);
}

TEST(PerfDiffTest, MissingAndExtraMetricsAreReportedNotGated) {
  json::Value Base = parseOrDie(R"({"a_sec": 1.0, "b_sec": 2.0})");
  json::Value Cand = parseOrDie(R"({"a_sec": 1.0, "c_sec": 3.0})");
  PerfDiffResult R = diffPerf({Base}, Cand);
  EXPECT_EQ(R.Regressions, 0u);
  ASSERT_EQ(R.MissingInCandidate.size(), 1u);
  EXPECT_EQ(R.MissingInCandidate[0], "b_sec");
  ASSERT_EQ(R.OnlyInCandidate.size(), 1u);
  EXPECT_EQ(R.OnlyInCandidate[0], "c_sec");
  std::string Text = renderPerfDiff(R, /*ShowAll=*/true);
  EXPECT_NE(Text.find("missing in candidate: b_sec"), std::string::npos);
  EXPECT_NE(Text.find("only in candidate: c_sec"), std::string::npos);
}
