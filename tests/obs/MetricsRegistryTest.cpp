//===- MetricsRegistryTest.cpp ---------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// The metrics registry the driver phases and both parallel engines report
// into: counter/gauge semantics, the fixed log2 histogram's bucket edges,
// the JSON serialization, and concurrent recording from many threads.
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsRegistry.h"

#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace warpc;
using obs::Histogram;
using obs::MetricsRegistry;

TEST(MetricsRegistryTest, CountersAccumulateAndGaugesReplace) {
  MetricsRegistry M;
  EXPECT_EQ(M.counter("phase1.runs"), 0.0);
  M.add("phase1.runs");
  M.add("phase1.runs");
  M.add("phase1.tokens", 120);
  EXPECT_EQ(M.counter("phase1.runs"), 2.0);
  EXPECT_EQ(M.counter("phase1.tokens"), 120.0);

  M.setGauge("workers", 4);
  M.setGauge("workers", 9);
  EXPECT_EQ(M.gauge("workers"), 9.0);
  EXPECT_EQ(M.gauge("absent"), 0.0);
}

TEST(MetricsRegistryTest, HistogramBucketEdges) {
  // bucketFor is 32 + floor(log2(V)), clamped to [0, 63]; nonpositive
  // values land in bucket 0.
  EXPECT_EQ(Histogram::bucketFor(1.0), 32u);
  EXPECT_EQ(Histogram::bucketFor(1.5), 32u);
  EXPECT_EQ(Histogram::bucketFor(2.0), 33u);
  EXPECT_EQ(Histogram::bucketFor(3.0), 33u);
  EXPECT_EQ(Histogram::bucketFor(0.5), 31u);
  EXPECT_EQ(Histogram::bucketFor(0.0), 0u);
  EXPECT_EQ(Histogram::bucketFor(-7.0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1e300), 63u);

  EXPECT_EQ(Histogram::bucketLowerBound(0), 0.0);
  EXPECT_EQ(Histogram::bucketLowerBound(32), 1.0);
  EXPECT_EQ(Histogram::bucketLowerBound(33), 2.0);
  EXPECT_EQ(Histogram::bucketLowerBound(31), 0.5);
}

TEST(MetricsRegistryTest, HistogramSummaryStats) {
  MetricsRegistry M;
  for (double V : {4.0, 1.0, 9.0, 16.0})
    M.observe("phase2.ir_instrs", V);
  Histogram H = M.histogram("phase2.ir_instrs");
  EXPECT_EQ(H.Count, 4u);
  EXPECT_DOUBLE_EQ(H.Sum, 30.0);
  EXPECT_DOUBLE_EQ(H.Min, 1.0);
  EXPECT_DOUBLE_EQ(H.Max, 16.0);
  EXPECT_DOUBLE_EQ(H.mean(), 7.5);
  EXPECT_EQ(H.Buckets[32], 1u); // 1.0
  EXPECT_EQ(H.Buckets[34], 1u); // 4.0
  EXPECT_EQ(H.Buckets[35], 1u); // 9.0
  EXPECT_EQ(H.Buckets[36], 1u); // 16.0

  // Never-observed histograms read back zeroed.
  Histogram Empty = M.histogram("absent");
  EXPECT_EQ(Empty.Count, 0u);
  EXPECT_DOUBLE_EQ(Empty.mean(), 0.0);
}

TEST(MetricsRegistryTest, JsonSerialization) {
  MetricsRegistry M;
  M.add("phase1.runs");
  M.setGauge("workers", 3);
  M.observe("compile_sec", 2.0);
  M.observe("compile_sec", 5.0);

  json::Value J = M.toJson();
  EXPECT_EQ(J.get("counters").get("phase1.runs").number(), 1.0);
  EXPECT_EQ(J.get("gauges").get("workers").number(), 3.0);
  const json::Value &H = J.get("histograms").get("compile_sec");
  EXPECT_EQ(H.get("count").integer(), 2);
  EXPECT_DOUBLE_EQ(H.get("sum").number(), 7.0);
  EXPECT_DOUBLE_EQ(H.get("mean").number(), 3.5);
  // Only the two nonzero buckets serialize: [lowerBound, count] pairs.
  const json::Value &Buckets = H.get("buckets");
  ASSERT_EQ(Buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(Buckets[0][0].number(), 2.0);
  EXPECT_EQ(Buckets[0][1].integer(), 1);
  EXPECT_DOUBLE_EQ(Buckets[1][0].number(), 4.0);
  EXPECT_EQ(Buckets[1][1].integer(), 1);

  // The document survives a dump/parse round trip.
  std::string Error;
  json::Value Back = json::parse(J.dump(2), Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Back.get("counters").get("phase1.runs").number(), 1.0);
}

TEST(MetricsRegistryTest, ConcurrentRecordingIsLossless) {
  MetricsRegistry M;
  constexpr unsigned Threads = 8, PerThread = 1000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&M] {
      for (unsigned I = 0; I != PerThread; ++I) {
        M.add("hits");
        M.observe("values", 1.0);
      }
    });
  for (auto &Th : Pool)
    Th.join();
  EXPECT_EQ(M.counter("hits"), double(Threads * PerThread));
  EXPECT_EQ(M.histogram("values").Count, uint64_t(Threads) * PerThread);
}
