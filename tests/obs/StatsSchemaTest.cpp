//===- StatsSchemaTest.cpp -------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Pins the --stats-json contract: the versioned schema tag, the stable
// key order of the StatsReport formatter (text and JSON render from the
// same recording, so they can never drift), and the p50/p95/p99
// histogram quantile rows derived from MetricsRegistry.
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsRegistry.h"
#include "obs/StatsReport.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <string>

using namespace warpc;
using namespace warpc::obs;

TEST(StatsSchemaTest, SchemaVersionIsPinned) {
  // Bumping the version is an intentional, test-visible act: warp-perf
  // and any external consumer key on this tag.
  EXPECT_STREQ(StatsSchemaVersion, "warpc-stats-v2");
}

TEST(StatsSchemaTest, ReportKeysAreStableAndOrdered) {
  StatsReport Report;
  Report.beginGroup("run", "run");
  Report.add("engine", "engine", "simulate", "simulate");
  Report.add("functions", "functions", "8", static_cast<int64_t>(8));
  Report.beginGroup("simulation", "simulated cluster");
  Report.add("parallel_sec", "parallel elapsed", "256.74 s", 256.74);
  Report.add("speedup", "speedup", "2.72x", 2.72);

  json::Value Doc = Report.toJson();
  ASSERT_TRUE(Doc.isObject());
  // Golden key order: exactly the recording order, nothing sorted.
  ASSERT_EQ(Doc.members().size(), 2u);
  EXPECT_EQ(Doc.members()[0].first, "run");
  EXPECT_EQ(Doc.members()[1].first, "simulation");
  const json::Value &Run = Doc.get("run");
  ASSERT_EQ(Run.members().size(), 2u);
  EXPECT_EQ(Run.members()[0].first, "engine");
  EXPECT_EQ(Run.members()[1].first, "functions");
  EXPECT_EQ(Run.get("engine").str(), "simulate");
  const json::Value &Simulation = Doc.get("simulation");
  EXPECT_EQ(Simulation.members()[0].first, "parallel_sec");
  EXPECT_DOUBLE_EQ(Simulation.get("speedup").number(), 2.72);

  // The text render carries the same facts in the same order (golden).
  EXPECT_EQ(Report.renderText(),
            "run:\n"
            "  engine:    simulate\n"
            "  functions: 8\n"
            "simulated cluster:\n"
            "  parallel elapsed: 256.74 s\n"
            "  speedup:          2.72x\n");
}

TEST(StatsSchemaTest, SerializedReportSurvivesAParseRoundTrip) {
  StatsReport Report;
  Report.beginGroup("overheads", "overheads (Section 4.2.3)");
  Report.add("total_sec", "total", "82.26 s", 82.2553);
  Report.add("sys_sec", "system", "74.07 s", 74.0707);

  std::string Text = Report.toJson().dump(1);
  std::string Error;
  json::Value Back = json::parse(Text, Error);
  ASSERT_TRUE(Error.empty()) << Error;
  // Doubles survive bit-exactly (the writer round-trips doubles).
  EXPECT_EQ(Back.get("overheads").get("total_sec").number(), 82.2553);
  EXPECT_EQ(Back.get("overheads").get("sys_sec").number(), 74.0707);
}

TEST(StatsSchemaTest, HistogramQuantilesAppearInReportAndJson) {
  MetricsRegistry Metrics;
  for (int I = 1; I <= 100; ++I)
    Metrics.observe("thread.compile_sec", I * 0.01); // 0.01 .. 1.00
  StatsReport Report;
  appendHistogramQuantiles(Report, Metrics);
  ASSERT_FALSE(Report.empty());

  json::Value Doc = Report.toJson();
  ASSERT_TRUE(Doc.has("latency_quantiles"));
  const json::Value &Q =
      Doc.get("latency_quantiles").get("thread.compile_sec");
  ASSERT_TRUE(Q.isObject());
  double P50 = Q.get("p50").number();
  double P95 = Q.get("p95").number();
  double P99 = Q.get("p99").number();
  // Quantiles are ordered and clamped inside the observed range.
  EXPECT_GE(P50, 0.01);
  EXPECT_LE(P99, 1.0);
  EXPECT_LE(P50, P95);
  EXPECT_LE(P95, P99);

  std::string Text = Report.renderText();
  EXPECT_NE(Text.find("thread.compile_sec"), std::string::npos);
  EXPECT_NE(Text.find("p50"), std::string::npos);
  EXPECT_NE(Text.find("p99"), std::string::npos);
}

TEST(StatsSchemaTest, QuantilesAreNoOpWithoutHistograms) {
  MetricsRegistry Metrics;
  Metrics.add("phase1.runs"); // counters alone add no quantile group
  StatsReport Report;
  appendHistogramQuantiles(Report, Metrics);
  EXPECT_TRUE(Report.empty());
}

TEST(StatsSchemaTest, MetricsJsonCarriesQuantileKeys) {
  MetricsRegistry Metrics;
  for (int I = 0; I != 32; ++I)
    Metrics.observe("h", 1 << (I % 5));
  json::Value Doc = Metrics.toJson();
  const json::Value &H = Doc.get("histograms").get("h");
  ASSERT_TRUE(H.isObject());
  EXPECT_TRUE(H.has("p50"));
  EXPECT_TRUE(H.has("p95"));
  EXPECT_TRUE(H.has("p99"));
  EXPECT_EQ(H.get("count").number(), 32.0);
  EXPECT_LE(H.get("p50").number(), H.get("p99").number());
}
