//===- DiagnosticTest.cpp --------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Diagnostic.h"

#include "analysis/Checks.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::analysis;

namespace {

Diag makeDiag(uint32_t Ordinal, uint32_t Line, uint32_t Col,
              const char *Check, const char *Msg,
              Severity Sev = Severity::Warning) {
  Diag D;
  D.CheckId = Check;
  D.Sev = Sev;
  D.Section = "s";
  D.Function = "f";
  D.FunctionOrdinal = Ordinal;
  D.Loc = SourceLoc(Line, Col);
  D.Message = Msg;
  return D;
}

} // namespace

TEST(DiagnosticTest, OrderingIsTotalAndDeterministic) {
  std::vector<Diag> Diags = {
      makeDiag(1, 5, 1, "dead-store", "b"),
      makeDiag(0, 9, 1, "dead-store", "a"),
      makeDiag(0, 2, 7, "use-before-init", "c"),
      makeDiag(0, 2, 7, "array-bounds", "d"),
      makeDiag(0, 2, 3, "dead-store", "e"),
  };
  sortDiags(Diags);
  EXPECT_EQ(Diags[0].Message, "e"); // earliest column on line 2
  EXPECT_EQ(Diags[1].Message, "d"); // check id breaks the (2,7) tie
  EXPECT_EQ(Diags[2].Message, "c");
  EXPECT_EQ(Diags[3].Message, "a"); // still ordinal 0
  EXPECT_EQ(Diags[4].Message, "b"); // ordinal outranks location
}

TEST(DiagnosticTest, OrderingTieBreaksOnCheckIdThenMessage) {
  // Interprocedural checks can anchor several diagnostics at the same
  // call site (one ordinal, one location), so the CheckId and Message
  // legs of diagLess carry the determinism guarantee there.
  Diag ArrA = makeDiag(3, 4, 9, "interproc-array-bounds", "alpha");
  Diag DivA = makeDiag(3, 4, 9, "interproc-div-zero", "alpha");
  Diag DivB = makeDiag(3, 4, 9, "interproc-div-zero", "beta");

  EXPECT_TRUE(diagLess(ArrA, DivA));  // CheckId decides the (3, 4:9) tie
  EXPECT_FALSE(diagLess(DivA, ArrA));
  EXPECT_TRUE(diagLess(DivA, DivB));  // Message decides the final tie
  EXPECT_FALSE(diagLess(DivB, DivA));
  EXPECT_FALSE(diagLess(DivA, DivA)); // irreflexive: a total strict order

  std::vector<Diag> Diags = {DivB, DivA, ArrA};
  sortDiags(Diags);
  EXPECT_EQ(Diags[0].CheckId, "interproc-array-bounds");
  EXPECT_EQ(Diags[1].Message, "alpha");
  EXPECT_EQ(Diags[2].Message, "beta");
}

TEST(DiagnosticTest, JsonEscapesControlCharactersAndKeepsNonAscii) {
  // Messages quote user identifiers verbatim, so the JSON renderer must
  // survive quotes, backslashes, control bytes and multi-byte UTF-8.
  Diag D = makeDiag(0, 1, 1, "dead-store",
                    "tab\there \"quoted\" back\\slash\nbell\x01 \xCF\x80");
  std::string Dump = renderJson({D}).dump(1);
  EXPECT_NE(Dump.find("tab\\there"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("\\\"quoted\\\""), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("back\\\\slash"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("\\nbell"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("\\u0001"), std::string::npos) << Dump;
  // Non-ASCII is not escaped: the UTF-8 bytes of U+03C0 pass through.
  EXPECT_NE(Dump.find("\xCF\x80"), std::string::npos) << Dump;
  // No raw control byte may survive into the serialized form.
  for (char C : Dump)
    ASSERT_TRUE(static_cast<unsigned char>(C) >= 0x20 || C == '\n') << Dump;

  // The escaped form parses back to the original message.
  std::string Error;
  json::Value Root = json::parse(Dump, Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Root.get("diagnostics")[0].get("message").str(), D.Message);
}

TEST(DiagnosticTest, TextRendering) {
  Diag D = makeDiag(0, 12, 5, "dead-store", "value assigned to 'x' is "
                                            "never used");
  D.Notes.push_back({SourceLoc(3, 3), "'x' declared here"});
  std::string Text = renderText({D});
  EXPECT_NE(Text.find("12:5: warning: value assigned to 'x' is never used "
                      "(in 'f') [dead-store]"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("  3:3: note: 'x' declared here"), std::string::npos);
  EXPECT_NE(Text.find("0 error(s), 1 warning(s)"), std::string::npos);
}

TEST(DiagnosticTest, FixItRendering) {
  Diag D = makeDiag(0, 4, 1, "dead-store", "m");
  D.FixIts.push_back({{SourceLoc(4, 1), SourceLoc(5, 1)}, ""});
  std::string Text = renderText({D}, /*Summary=*/false);
  EXPECT_NE(Text.find("fix-it: remove 4:1..5:1"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("error(s)"), std::string::npos);
}

TEST(DiagnosticTest, JsonRendering) {
  Diag D = makeDiag(2, 7, 9, "array-bounds", "oob", Severity::Error);
  json::Value Root = renderJson({D});
  std::string Dump = Root.dump(1);
  EXPECT_NE(Dump.find("\"version\""), std::string::npos);
  EXPECT_NE(Dump.find("\"array-bounds\""), std::string::npos);
  EXPECT_NE(Dump.find("\"error\""), std::string::npos);
  EXPECT_NE(Dump.find("\"line\": 7"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("\"errors\": 1"), std::string::npos) << Dump;
}

TEST(DiagnosticTest, PromoteWarnings) {
  std::vector<Diag> Diags = {makeDiag(0, 1, 1, "dead-store", "m")};
  promoteWarnings(Diags);
  EXPECT_EQ(Diags[0].Sev, Severity::Error);
  DiagCounts Counts = countDiags(Diags);
  EXPECT_EQ(Counts.Errors, 1u);
  EXPECT_EQ(Counts.Warnings, 0u);
}

TEST(DiagnosticTest, SuppressionOnSameLine) {
  std::string Source = "line one\n"
                       "x = 1; // lint: allow(dead-store)\n"
                       "y = 2;\n";
  std::vector<Diag> Diags = {makeDiag(0, 2, 1, "dead-store", "a"),
                             makeDiag(0, 3, 1, "dead-store", "b")};
  std::vector<Diag> Kept = applySuppressions(std::move(Diags), Source);
  ASSERT_EQ(Kept.size(), 1u);
  EXPECT_EQ(Kept[0].Message, "b");
}

TEST(DiagnosticTest, SuppressionCommentAloneTargetsNextLine) {
  std::string Source = "  -- lint: allow(use-before-init, dead-store)\n"
                       "x = y;\n"
                       "z = w;\n";
  std::vector<Diag> Diags = {makeDiag(0, 2, 1, "use-before-init", "a"),
                             makeDiag(0, 2, 5, "dead-store", "b"),
                             makeDiag(0, 3, 1, "use-before-init", "c")};
  std::vector<Diag> Kept = applySuppressions(std::move(Diags), Source);
  ASSERT_EQ(Kept.size(), 1u);
  EXPECT_EQ(Kept[0].Message, "c");
}

TEST(DiagnosticTest, SuppressionAllowAll) {
  std::string Source = "x = 1; // lint: allow(all)\n";
  std::vector<Diag> Diags = {makeDiag(0, 1, 1, "array-bounds", "a"),
                             makeDiag(0, 1, 2, "channel-mismatch", "b")};
  EXPECT_TRUE(applySuppressions(std::move(Diags), Source).empty());
}

TEST(DiagnosticTest, UnrelatedCheckIdIsNotSuppressed) {
  std::string Source = "x = 1; // lint: allow(dead-store)\n";
  std::vector<Diag> Diags = {makeDiag(0, 1, 1, "array-bounds", "a")};
  EXPECT_EQ(applySuppressions(std::move(Diags), Source).size(), 1u);
}

TEST(DiagnosticTest, CheckRegistryIsConsistent) {
  EXPECT_GE(allChecks().size(), 6u);
  for (const CheckInfo &C : allChecks()) {
    const CheckInfo *Found = findCheck(C.Id);
    ASSERT_NE(Found, nullptr);
    EXPECT_STREQ(Found->Id, C.Id);
  }
  EXPECT_EQ(findCheck("no-such-check"), nullptr);
  EXPECT_EQ(findCheck(check::UseBeforeInit)->DefaultSev, Severity::Error);
  EXPECT_EQ(findCheck(check::DeadStore)->DefaultSev, Severity::Warning);
}

TEST(DiagnosticTest, OptionsDisableChecks) {
  AnalysisOptions Opts;
  EXPECT_TRUE(Opts.enabled(check::DeadStore));
  Opts.Disabled.insert(check::DeadStore);
  EXPECT_FALSE(Opts.enabled(check::DeadStore));
  EXPECT_TRUE(Opts.enabled(check::ArrayBounds));
}
