//===- InterprocDeterminismTest.cpp ----------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
//
// The interprocedural phase's determinism guarantee: the wavefront driver
// merges per-SCC results by SCC id, so the serialized diagnostic stream is
// byte-identical to the sequential analyzer's at any worker count — with or
// without a warm summary cache. Exercised over a corpus of seeded modules
// whose call chains, channel pipelines and planted defects vary with the
// seed, so the merge has real work to get wrong.
//
//===----------------------------------------------------------------------===//

#include "parallel/AnalysisRunner.h"

#include "../TestHelpers.h"
#include "cache/CompileCache.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace warpc;
using namespace warpc::analysis;
using warpc::test::checkModule;

namespace {

/// Deterministic per-seed module: a call chain over a divisor demand (bad
/// or safe argument), a two-stage channel pipeline behind a helper call
/// (starved, matched or overfed), and sometimes an intraprocedural dead
/// store — so diagnostics from every layer interleave in the merge.
std::string seededModule(uint64_t Seed) {
  auto Next = [&]() {
    Seed = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<unsigned>(Seed >> 33);
  };
  const unsigned Depth = 1 + Next() % 3;
  const bool BadDiv = Next() % 2;
  const unsigned Sent = 2 + Next() % 6;
  const unsigned Mode = Next() % 3; // 0 starved, 1 matched, 2 overfed
  const unsigned Recv = Mode == 0 ? Sent + 2 : Mode == 1 ? Sent : Sent - 1;
  const bool WithScratch = Next() % 2;

  std::string S = "module m;\nsection s cells 2 {\n";
  S += "function inv(d: int): int {\n  return 100 / d;\n}\n";
  std::string Prev = "inv";
  for (unsigned I = 0; I != Depth; ++I) {
    std::string Name = "hop" + std::to_string(I);
    S += "function " + Name + "(k: int): int {\n  return " + Prev +
         "(k - 1) + 1;\n}\n";
    Prev = Name;
  }
  // Each hop subtracts 1, so the divisor reaching inv is the argument
  // minus Depth: passing exactly Depth plants a division by zero.
  S += "function use(): int {\n  return " + Prev + "(" +
       std::to_string(BadDiv ? Depth : Depth + 5) + ");\n}\n";
  if (WithScratch)
    S += "function scratch(g: float): float {\n"
         "  var t: float = 0.0;\n"
         "  t = g;\n"
         "  t = g * 2.0;\n"
         "  return t;\n"
         "}\n";
  S += "function pump(n: int) {\n"
       "  var v: float = 1.0;\n"
       "  for i = 1 to n {\n"
       "    send(Y, v);\n"
       "  }\n"
       "}\n";
  S += "function stage_a() {\n  pump(" + std::to_string(Sent) + ");\n}\n";
  S += "function stage_b() {\n"
       "  var v: float = 0.0;\n"
       "  for i = 1 to " +
       std::to_string(Recv) +
       " {\n"
       "    receive(X, v);\n"
       "  }\n"
       "}\n";
  S += "}\n";
  return S;
}

} // namespace

TEST(InterprocDeterminismTest, FiftySeededModulesAcrossWorkerCounts) {
  unsigned WithDiags = 0;
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    std::string Source = seededModule(Seed);
    auto M = checkModule(Source);
    ASSERT_TRUE(M) << "seed " << Seed << "\n" << Source;

    ModuleAnalysis Seq = analyzeModule(*M, Source, {});
    WithDiags += !Seq.Diags.empty();
    std::string Golden = renderJson(Seq.Diags).dump(1);

    for (unsigned Workers : {1u, 4u, 16u}) {
      parallel::AnalysisRunResult Run =
          parallel::analyzeModuleParallel(*M, Source, {}, Workers);
      EXPECT_EQ(renderJson(Run.Analysis.Diags).dump(1), Golden)
          << "seed " << Seed << " workers " << Workers;
    }
  }
  // The corpus is only a determinism witness if the merge has real
  // diagnostics to order.
  EXPECT_GE(WithDiags, 20u);
}

TEST(InterprocDeterminismTest, WarmSummaryCacheKeepsOutputIdentical) {
  // Find a seeded module that actually diagnoses, then run it repeatedly
  // against one shared cache: the first round populates, later rounds
  // replay — every round, at every worker count, byte-identical.
  std::string Source;
  std::string Golden;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    std::string Candidate = seededModule(Seed);
    auto M = checkModule(Candidate);
    ASSERT_TRUE(M);
    ModuleAnalysis Seq = analyzeModule(*M, Candidate, {});
    if (!Seq.Diags.empty()) {
      Source = Candidate;
      Golden = renderJson(Seq.Diags).dump(1);
      break;
    }
  }
  ASSERT_FALSE(Source.empty());

  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  cache::CompileCache Cache(cache::CacheMode::Memory, cache::CacheContext{});
  double TotalHits = 0;
  for (unsigned Workers : {1u, 4u, 16u}) {
    obs::MetricsRegistry Metrics;
    parallel::AnalysisRunResult Run = parallel::analyzeModuleParallel(
        *M, Source, {}, Workers, nullptr, &Metrics, &Cache);
    EXPECT_EQ(renderJson(Run.Analysis.Diags).dump(1), Golden)
        << "workers " << Workers;
    TotalHits += Metrics.counter("analysis.summary.hits");
  }
  EXPECT_GT(TotalHits, 0.0) << "rounds after the first must replay";
}

TEST(InterprocDeterminismTest, GeneratedWorkloadsMatchSequential) {
  for (const std::string &Source :
       {workload::makeTestModule(workload::FunctionSize::Small, 8),
        workload::makeUserProgram()}) {
    auto M = checkModule(Source);
    ASSERT_TRUE(M);
    ModuleAnalysis Seq = analyzeModule(*M, Source, {});
    std::string Golden = renderJson(Seq.Diags).dump(1);
    for (unsigned Workers : {1u, 4u, 16u}) {
      parallel::AnalysisRunResult Run =
          parallel::analyzeModuleParallel(*M, Source, {}, Workers);
      EXPECT_EQ(renderJson(Run.Analysis.Diags).dump(1), Golden)
          << "workers " << Workers;
    }
  }
}

TEST(InterprocDeterminismTest, DefaultWorkersHonorsTestCap) {
  const char *Old = std::getenv("WARPC_TEST_MAX_WORKERS");
  std::string Saved = Old ? Old : "";

  ::setenv("WARPC_TEST_MAX_WORKERS", "3", 1);
  unsigned Capped = parallel::defaultAnalysisWorkers();
  EXPECT_GE(Capped, 1u);
  EXPECT_LE(Capped, 3u);

  ::setenv("WARPC_TEST_MAX_WORKERS", "1", 1);
  EXPECT_EQ(parallel::defaultAnalysisWorkers(), 1u);

  if (Old)
    ::setenv("WARPC_TEST_MAX_WORKERS", Saved.c_str(), 1);
  else
    ::unsetenv("WARPC_TEST_MAX_WORKERS");
  EXPECT_GE(parallel::defaultAnalysisWorkers(), 1u);
}
