//===- SeededDefectTest.cpp ------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
//
// The seeded-defect corpus: one module carrying every defect class the
// analyzer knows, each at a known location. analyzeModule must flag all
// of them — and nothing else — and the suppression syntax must silence
// exactly the marked one. The shipped workload generators must produce
// diagnostic-free programs (the zero-false-positive guarantee).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "../TestHelpers.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace warpc;
using namespace warpc::analysis;
using warpc::test::checkModule;

namespace {

// Line numbers below are load-bearing: "module" is line 1.
const char *CorpusSource = R"(module corpus;
section cells1 cells 2 {
function stage1(gain: float): float {
  var acc: float = 0.0;
  var uninit: float;
  var buf: float[16];
  acc = uninit * gain;
  acc = 0.5;
  buf[16] = acc;
  for i = 0 to 15 {
    send(Y, buf[i] * acc);
  }
  return acc;
}
}
section cells2 cells 2 {
function stage2(): float {
  var v: float = 0.0;
  var acc: float = 0.0;
  for i = 0 to 11 {
    receive(X, v);
    acc = acc + v;
  }
  return acc;
  acc = acc * 2.0;
  return acc;
}
}
)";
// Defects, by line:
//   7: use-before-init  (uninit read; declared line 5)
//   7: dead-store       (acc overwritten on line 8 before any read)
//   9: array-bounds     (buf[16], extent 16)
//  16 sends on Y vs 12 received on X -> channel-mismatch at stage2
//  25: unreachable-code (after the return on line 24)

// The interprocedural corpus: every defect needs whole-program reasoning
// — a zero divisor, an out-of-range index and an uninitialized array all
// flow through calls, and the starved channel link hides its send count
// behind a data-dependent helper loop. Line numbers are load-bearing:
// "module" is line 1.
const char *InterprocCorpusSource = R"(module ipcorpus;
section stages cells 2 {
function inv(d: int): int {
  return 100 / d;
}
function sum8(a: float[8]): float {
  var acc: float = 0.0;
  for i = 0 to 7 {
    acc = acc + a[i];
  }
  return acc;
}
function nth(k: int): int {
  var arr: int[4];
  for i = 0 to 3 {
    arr[i] = i;
  }
  return arr[k];
}
function pump(n: int) {
  var v: float = 1.0;
  for i = 1 to n {
    send(Y, v);
  }
}
function stage_a() {
  var z: int = inv(0);
  var buf: float[8];
  var s: float = sum8(buf);
  var w: int = nth(9);
  pump(4);
}
function stage_b() {
  var v: float = 0.0;
  for i = 1 to 8 {
    receive(X, v);
  }
}
}
)";
// Defects, by line:
//  27: interproc-div-zero     (inv(0) divides 100 by its argument)
//  29: interproc-uninit       (sum8 reads 'buf' before any write)
//  30: interproc-array-bounds (nth subscripts int[4] with 9)
//  33: channel-deadlock       (stage_b expects 8 values, pump(4) sends 4)

/// Everything the sequential analyzer knows minus the whole-program
/// passes — the baseline the interprocedural corpus must slip past.
AnalysisOptions intraproceduralOnly() {
  AnalysisOptions Opts;
  Opts.Disabled.insert(check::InterprocArrayBounds);
  Opts.Disabled.insert(check::InterprocDivZero);
  Opts.Disabled.insert(check::InterprocUninit);
  Opts.Disabled.insert(check::ChannelDeadlock);
  return Opts;
}

bool hasDiag(const std::vector<Diag> &Diags, const char *Check,
             uint32_t Line, const char *Function) {
  return std::any_of(Diags.begin(), Diags.end(), [&](const Diag &D) {
    return D.CheckId == Check && D.Loc.Line == Line &&
           D.Function == Function;
  });
}

} // namespace

TEST(SeededDefectTest, EveryDefectClassIsFlaggedAtItsLocation) {
  auto M = checkModule(CorpusSource);
  ASSERT_TRUE(M);
  ModuleAnalysis Result = analyzeModule(*M, CorpusSource, {});
  EXPECT_EQ(Result.FunctionsAnalyzed, 2u);

  EXPECT_TRUE(hasDiag(Result.Diags, "use-before-init", 7, "stage1"));
  EXPECT_TRUE(hasDiag(Result.Diags, "dead-store", 7, "stage1"));
  EXPECT_TRUE(hasDiag(Result.Diags, "array-bounds", 9, "stage1"));
  EXPECT_TRUE(hasDiag(Result.Diags, "channel-mismatch", 17, "stage2"));
  EXPECT_TRUE(hasDiag(Result.Diags, "unreachable-code", 25, "stage2"));
  EXPECT_EQ(Result.Diags.size(), 5u) << renderText(Result.Diags);

  // Severity mix: use-before-init and array-bounds are errors by default.
  DiagCounts Counts = countDiags(Result.Diags);
  EXPECT_EQ(Counts.Errors, 2u);
  EXPECT_EQ(Counts.Warnings, 3u);
}

TEST(SeededDefectTest, WerrorPromotesEverything) {
  auto M = checkModule(CorpusSource);
  ASSERT_TRUE(M);
  AnalysisOptions Opts;
  Opts.WarningsAsErrors = true;
  ModuleAnalysis Result = analyzeModule(*M, CorpusSource, Opts);
  EXPECT_EQ(countDiags(Result.Diags).Errors, 5u);
  EXPECT_EQ(countDiags(Result.Diags).Warnings, 0u);
}

TEST(SeededDefectTest, SuppressionCommentSilencesOneDefect) {
  std::string Suppressed = CorpusSource;
  size_t At = Suppressed.find("buf[16] = acc;");
  ASSERT_NE(At, std::string::npos);
  Suppressed.insert(At + std::string("buf[16] = acc;").size(),
                    " // lint: allow(array-bounds)");
  auto M = checkModule(Suppressed);
  ASSERT_TRUE(M);
  ModuleAnalysis Result = analyzeModule(*M, Suppressed, {});
  EXPECT_FALSE(hasDiag(Result.Diags, "array-bounds", 9, "stage1"));
  EXPECT_EQ(Result.Diags.size(), 4u) << renderText(Result.Diags);

  // ...and the suppression can be ignored.
  AnalysisOptions NoSupp;
  NoSupp.HonorSuppressions = false;
  EXPECT_EQ(analyzeModule(*M, Suppressed, NoSupp).Diags.size(), 5u);
}

TEST(SeededDefectTest, InterprocDefectsAreInvisibleIntraprocedurally) {
  auto M = checkModule(InterprocCorpusSource);
  ASSERT_TRUE(M);
  ModuleAnalysis Result =
      analyzeModule(*M, InterprocCorpusSource, intraproceduralOnly());
  EXPECT_TRUE(Result.Diags.empty())
      << "the whole-program corpus must slip past the per-function checks:\n"
      << renderText(Result.Diags);
}

TEST(SeededDefectTest, InterprocDefectClassesAreFlaggedAtTheirLocations) {
  auto M = checkModule(InterprocCorpusSource);
  ASSERT_TRUE(M);
  ModuleAnalysis Result = analyzeModule(*M, InterprocCorpusSource, {});

  EXPECT_TRUE(hasDiag(Result.Diags, "interproc-div-zero", 27, "stage_a"));
  EXPECT_TRUE(hasDiag(Result.Diags, "interproc-uninit", 29, "stage_a"));
  EXPECT_TRUE(hasDiag(Result.Diags, "interproc-array-bounds", 30, "stage_a"));
  EXPECT_TRUE(hasDiag(Result.Diags, "channel-deadlock", 33, "stage_b"));
  EXPECT_EQ(Result.Diags.size(), 4u) << renderText(Result.Diags);

  // All four are errors, and each carries its call-chain witness.
  EXPECT_EQ(countDiags(Result.Diags).Errors, 4u);
  for (const Diag &D : Result.Diags)
    EXPECT_FALSE(D.Notes.empty()) << D.CheckId;
}

TEST(SeededDefectTest, SuppressionSilencesOneInterprocDefect) {
  std::string Suppressed = InterprocCorpusSource;
  size_t At = Suppressed.find("var w: int = nth(9);");
  ASSERT_NE(At, std::string::npos);
  Suppressed.insert(At + std::string("var w: int = nth(9);").size(),
                    " // lint: allow(interproc-array-bounds)");
  auto M = checkModule(Suppressed);
  ASSERT_TRUE(M);
  ModuleAnalysis Result = analyzeModule(*M, Suppressed, {});
  EXPECT_FALSE(hasDiag(Result.Diags, "interproc-array-bounds", 30, "stage_a"));
  EXPECT_EQ(Result.Diags.size(), 3u) << renderText(Result.Diags);
}

TEST(SeededDefectTest, GeneratedWorkloadsAreDiagnosticFree) {
  for (auto Size : workload::AllSizes) {
    std::string Source = workload::makeTestModule(Size, 4);
    auto M = checkModule(Source);
    ASSERT_TRUE(M) << workload::sizeName(Size);
    ModuleAnalysis Result = analyzeModule(*M, Source, {});
    EXPECT_TRUE(Result.Diags.empty())
        << workload::sizeName(Size) << ":\n" << renderText(Result.Diags);
  }
}

TEST(SeededDefectTest, DemoProgramsAreDiagnosticFree) {
  for (const char *Name : {"user", "fig1"}) {
    std::string Source = std::string(Name) == "user"
                             ? workload::makeUserProgram()
                             : workload::makeFigure1Program();
    auto M = checkModule(Source);
    ASSERT_TRUE(M) << Name;
    ModuleAnalysis Result = analyzeModule(*M, Source, {});
    EXPECT_TRUE(Result.Diags.empty())
        << Name << ":\n" << renderText(Result.Diags);
  }
}
