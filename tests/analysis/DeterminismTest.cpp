//===- DeterminismTest.cpp -------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
//
// The parallel analysis runner's core guarantee: the serialized diagnostic
// stream is byte-identical to the sequential analyzer's for every worker
// count, because results merge by declaration ordinal and sort on a total
// key that never depends on completion order.
//
//===----------------------------------------------------------------------===//

#include "parallel/AnalysisRunner.h"

#include "../TestHelpers.h"
#include "obs/TraceRecorder.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::analysis;
using warpc::test::checkModule;

namespace {

/// A module with functions across three sections and a spread of
/// diagnostics, so the merge order actually matters.
std::string defectiveModule() {
  return R"(module dm;
section a cells 2 {
function f1(g: float): float {
  var t: float = 0.0;
  t = g;
  t = g * 2.0;
  return t;
}
function f2(): float {
  var x: float;
  return x;
}
}
section b cells 2 {
function f3(): float {
  var buf: float[4];
  return buf[9];
}
function f4(g: float): float {
  return g;
}
}
section c cells 2 {
function f5(g: float): float {
  var t: float = 0.0;
  t = g;
  t = g * 3.0;
  return t;
}
}
)";
}

} // namespace

TEST(DeterminismTest, JsonIsByteIdenticalAcrossWorkerCounts) {
  std::string Source = defectiveModule();
  auto M = checkModule(Source);
  ASSERT_TRUE(M);

  ModuleAnalysis Seq = analyzeModule(*M, Source, {});
  ASSERT_FALSE(Seq.Diags.empty());
  std::string Golden = renderJson(Seq.Diags).dump(1);

  for (unsigned Workers : {1u, 2u, 3u, 4u, 8u}) {
    parallel::AnalysisRunResult Run =
        parallel::analyzeModuleParallel(*M, Source, {}, Workers);
    EXPECT_EQ(Run.WorkersUsed, std::min<unsigned>(Workers, 5u));
    EXPECT_EQ(renderJson(Run.Analysis.Diags).dump(1), Golden)
        << "workers=" << Workers;
  }
}

TEST(DeterminismTest, RepeatedRunsAreStable) {
  std::string Source = workload::makeUserProgram();
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  parallel::AnalysisRunResult First =
      parallel::analyzeModuleParallel(*M, Source, {}, 4);
  for (int I = 0; I != 3; ++I) {
    parallel::AnalysisRunResult Again =
        parallel::analyzeModuleParallel(*M, Source, {}, 4);
    EXPECT_EQ(renderJson(Again.Analysis.Diags).dump(1),
              renderJson(First.Analysis.Diags).dump(1));
  }
}

TEST(DeterminismTest, TextRenderingMatchesSequentialToo) {
  std::string Source = defectiveModule();
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  ModuleAnalysis Seq = analyzeModule(*M, Source, {});
  parallel::AnalysisRunResult Par =
      parallel::analyzeModuleParallel(*M, Source, {}, 3);
  EXPECT_EQ(renderText(Par.Analysis.Diags), renderText(Seq.Diags));
  EXPECT_EQ(Par.Analysis.FunctionsAnalyzed, 5u);
}

TEST(DeterminismTest, RunRecordsAnalyzeSpansAndMetrics) {
  std::string Source = defectiveModule();
  auto M = checkModule(Source);
  ASSERT_TRUE(M);

  obs::TraceRecorder Rec(obs::ClockDomain::Steady);
  obs::MetricsRegistry Metrics;
  parallel::AnalysisRunResult Run =
      parallel::analyzeModuleParallel(*M, Source, {}, 2, &Rec, &Metrics);
  ASSERT_EQ(Run.Analysis.FunctionsAnalyzed, 5u);

  obs::TraceSession Session = Rec.finish();
  unsigned AnalyzeSpans = 0;
  for (const obs::SpanEvent &E : Session.Events) {
    if (E.Kind == obs::EventKind::SpanAnalyze) {
      ++AnalyzeSpans;
      EXPECT_TRUE(E.isSpan());
      EXPECT_EQ(E.Ph, obs::Phase::Analyze);
      EXPECT_GE(E.Function, 0);
    }
  }
  EXPECT_EQ(AnalyzeSpans, 5u); // one per function

  EXPECT_EQ(Metrics.counter("analysis.functions"), 5.0);
  EXPECT_EQ(Metrics.counter("analysis.diags.errors") +
                Metrics.counter("analysis.diags.warnings"),
            static_cast<double>(Run.Analysis.Diags.size()));
  EXPECT_EQ(Metrics.histogram("analysis.function_sec").Count, 5u);
}

TEST(DeterminismTest, SpanAnalyzeSerializesWithStableName) {
  EXPECT_STREQ(obs::kindName(obs::EventKind::SpanAnalyze), "span_analyze");
  obs::EventKind K;
  ASSERT_TRUE(obs::kindFromName("span_analyze", K));
  EXPECT_EQ(K, obs::EventKind::SpanAnalyze);
  EXPECT_TRUE(obs::isSpanKind(obs::EventKind::SpanAnalyze));
  EXPECT_STREQ(obs::phaseName(obs::Phase::Analyze), "analyze");
  obs::Phase P;
  ASSERT_TRUE(obs::phaseFromName("analyze", P));
  EXPECT_EQ(P, obs::Phase::Analyze);
}
