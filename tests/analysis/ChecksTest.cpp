//===- ChecksTest.cpp ------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
//
// Per-check golden tests: each check flags its seeded defect at the right
// location and stays silent on the equivalent correct code. Sources are
// written with "module" on line 1 so the expected line numbers can be read
// straight off the test.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::analysis;
using warpc::test::checkModule;

namespace {

/// Parses \p Source and runs the per-function checks on its first
/// function.
std::vector<Diag> analyzeFirst(const std::string &Source,
                               const AnalysisOptions &Opts = {}) {
  auto M = checkModule(Source);
  if (!M)
    return {};
  const w2::SectionDecl *S = M->getSection(0);
  return analyzeFunction(*S, *S->getFunction(0), 0, Opts);
}

} // namespace

TEST(ChecksTest, UseBeforeInitFlagged) {
  std::vector<Diag> Diags = analyzeFirst(
      R"(module m;
section s cells 2 {
function f(): float {
  var x: float;
  var y: float = 0.0;
  y = x * 2.0;
  return y;
}
}
)");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].CheckId, "use-before-init");
  EXPECT_EQ(Diags[0].Sev, Severity::Error);
  EXPECT_EQ(Diags[0].Loc.Line, 6u); // the read of x
  ASSERT_EQ(Diags[0].Notes.size(), 1u);
  EXPECT_EQ(Diags[0].Notes[0].Loc.Line, 4u); // the declaration
}

TEST(ChecksTest, InitializedOnAllPathsNotFlagged) {
  std::vector<Diag> Diags = analyzeFirst(
      R"(module m;
section s cells 2 {
function f(n: int): float {
  var x: float;
  if (n > 0) {
    x = 1.0;
  } else {
    x = 2.0;
  }
  return x;
}
}
)");
  EXPECT_TRUE(Diags.empty());
}

TEST(ChecksTest, DeadStoreFlaggedWithFixIt) {
  std::vector<Diag> Diags = analyzeFirst(
      R"(module m;
section s cells 2 {
function f(a: float): float {
  var t: float = 0.0;
  t = a * 2.0;
  t = a * 3.0;
  return t;
}
}
)");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].CheckId, "dead-store");
  EXPECT_EQ(Diags[0].Sev, Severity::Warning);
  EXPECT_EQ(Diags[0].Loc.Line, 5u); // the overwritten store
  ASSERT_EQ(Diags[0].FixIts.size(), 1u);
  EXPECT_TRUE(Diags[0].FixIts[0].Replacement.empty()); // a removal
}

TEST(ChecksTest, DeclInitAndRecvStoresAreExempt) {
  // The declaration initializer is overwritten and the received value is
  // never read — both are idiomatic W2 and must not be flagged.
  std::vector<Diag> Diags = analyzeFirst(
      R"(module m;
section s cells 2 {
function f(): float {
  var t: float = 1.0;
  receive(X, t);
  t = 2.0;
  return t;
}
}
)");
  EXPECT_TRUE(Diags.empty());
}

TEST(ChecksTest, LoopCarriedStoreIsLive) {
  std::vector<Diag> Diags = analyzeFirst(
      R"(module m;
section s cells 2 {
function f(): float {
  var t: float = 0.0;
  var acc: float = 0.0;
  for i = 0 to 9 {
    acc = acc + t;
    t = t + 1.0;
  }
  return acc;
}
}
)");
  EXPECT_TRUE(Diags.empty());
}

TEST(ChecksTest, UnreachableCodeFlagged) {
  std::vector<Diag> Diags = analyzeFirst(
      R"(module m;
section s cells 2 {
function f(a: float): float {
  return a;
  a = a + 1.0;
  return a;
}
}
)");
  ASSERT_GE(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].CheckId, "unreachable-code");
  EXPECT_EQ(Diags[0].Loc.Line, 5u);
}

TEST(ChecksTest, BothArmsReturnNotFlagged) {
  // The synthetic merge block the lowering emits after an if whose arms
  // both return must not be reported: it holds no user code.
  std::vector<Diag> Diags = analyzeFirst(
      R"(module m;
section s cells 2 {
function f(n: int): float {
  if (n > 0) {
    return 1.0;
  } else {
    return 2.0;
  }
}
}
)");
  EXPECT_TRUE(Diags.empty());
}

TEST(ChecksTest, ConstantIndexOutOfBoundsFlagged) {
  std::vector<Diag> Diags = analyzeFirst(
      R"(module m;
section s cells 2 {
function f(): float {
  var buf: float[8];
  buf[3] = 1.0;
  return buf[8];
}
}
)");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].CheckId, "array-bounds");
  EXPECT_EQ(Diags[0].Sev, Severity::Error);
  EXPECT_EQ(Diags[0].Loc.Line, 6u);
  EXPECT_NE(Diags[0].Message.find("'buf'"), std::string::npos);
}

TEST(ChecksTest, InductionRangeOverrunFlagged) {
  std::vector<Diag> Diags = analyzeFirst(
      R"(module m;
section s cells 2 {
function f(): float {
  var buf: float[8];
  var acc: float = 0.0;
  for i = 0 to 8 {
    acc = acc + buf[i];
  }
  return acc;
}
}
)");
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].CheckId, "array-bounds");
  EXPECT_NE(Diags[0].Message.find("reaches 8"), std::string::npos)
      << Diags[0].Message;
}

TEST(ChecksTest, InBoundsLoopAndOffsetNotFlagged) {
  std::vector<Diag> Diags = analyzeFirst(
      R"(module m;
section s cells 2 {
function f(): float {
  var buf: float[8];
  var acc: float = 0.0;
  for i = 0 to 6 {
    acc = acc + buf[i + 1];
  }
  return acc;
}
}
)");
  EXPECT_TRUE(Diags.empty());
}

TEST(ChecksTest, DisabledCheckEmitsNothing) {
  AnalysisOptions Opts;
  Opts.Disabled.insert("dead-store");
  std::vector<Diag> Diags = analyzeFirst(
      R"(module m;
section s cells 2 {
function f(a: float): float {
  var t: float = 0.0;
  t = a * 2.0;
  t = a * 3.0;
  return t;
}
}
)",
      Opts);
  EXPECT_TRUE(Diags.empty());
}
