//===- ChannelProtocolTest.cpp ---------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::analysis;
using warpc::test::checkModule;

namespace {

ChannelCounts countsOfFirst(const std::string &Source) {
  auto M = checkModule(Source);
  EXPECT_TRUE(M);
  if (!M)
    return {};
  const w2::SectionDecl *S = M->getSection(0);
  return channelCountsOf(*S, *S->getFunction(0));
}

} // namespace

TEST(ChannelProtocolTest, StraightLineCountsAreExact) {
  ChannelCounts C = countsOfFirst(R"(module m;
section s cells 2 {
function f() {
  var v: float = 0.0;
  receive(X, v);
  send(Y, v);
  send(Y, v * 2.0);
}
}
)");
  EXPECT_EQ(C.RecvX, SymCount::of(1));
  EXPECT_EQ(C.SendY, SymCount::of(2));
  EXPECT_EQ(C.SendX, SymCount::of(0));
  EXPECT_EQ(C.RecvY, SymCount::of(0));
}

TEST(ChannelProtocolTest, LiteralLoopMultipliesCounts) {
  ChannelCounts C = countsOfFirst(R"(module m;
section s cells 2 {
function f() {
  var v: float = 0.0;
  for i = 0 to 15 {
    receive(X, v);
    send(Y, v);
  }
}
}
)");
  EXPECT_EQ(C.RecvX, SymCount::of(16));
  EXPECT_EQ(C.SendY, SymCount::of(16));
}

TEST(ChannelProtocolTest, WhileLoopIsUnknown) {
  ChannelCounts C = countsOfFirst(R"(module m;
section s cells 2 {
function f(n: int) {
  var v: float = 0.0;
  var i: int = 0;
  while (i < n) {
    receive(X, v);
    send(Y, v);
    i = i + 1;
  }
}
}
)");
  EXPECT_FALSE(C.RecvX.Known);
  EXPECT_FALSE(C.SendY.Known);
}

TEST(ChannelProtocolTest, CalleeCountsExpand) {
  ChannelCounts C = countsOfFirst(R"(module m;
section s cells 2 {
function f() {
  var v: float = 0.0;
  for i = 0 to 3 {
    v = step(v);
  }
}
function step(x: float): float {
  var v: float = 0.0;
  receive(X, v);
  send(Y, v + x);
  return v;
}
}
)");
  EXPECT_EQ(C.RecvX, SymCount::of(4));
  EXPECT_EQ(C.SendY, SymCount::of(4));
}

TEST(ChannelProtocolTest, BalancedChainIsClean) {
  auto M = checkModule(R"(module m;
section a cells 2 {
function up() {
  var v: float = 0.0;
  for i = 0 to 15 {
    receive(X, v);
    send(Y, v);
  }
}
}
section b cells 2 {
function down() {
  var v: float = 0.0;
  for i = 0 to 15 {
    receive(X, v);
    send(Y, v * 2.0);
  }
}
}
)");
  ASSERT_TRUE(M);
  EXPECT_TRUE(checkChannelProtocol(*M, {}).empty());
}

TEST(ChannelProtocolTest, MismatchedLinkIsFlaggedWithDeadlockNote) {
  auto M = checkModule(R"(module m;
section a cells 2 {
function up() {
  var v: float = 0.0;
  for i = 0 to 14 {
    send(Y, v);
  }
}
function down() {
  var v: float = 0.0;
  for i = 0 to 15 {
    receive(X, v);
  }
}
}
)");
  ASSERT_TRUE(M);
  std::vector<Diag> Diags = checkChannelProtocol(*M, {});
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].CheckId, "channel-mismatch");
  EXPECT_EQ(Diags[0].Function, "down");
  EXPECT_NE(Diags[0].Message.find("receives 16"), std::string::npos)
      << Diags[0].Message;
  EXPECT_NE(Diags[0].Message.find("sends 15"), std::string::npos);
  ASSERT_EQ(Diags[0].Notes.size(), 2u);
  EXPECT_NE(Diags[0].Notes[1].Message.find("systolic deadlock"),
            std::string::npos);
}

TEST(ChannelProtocolTest, OverfedLinkNotesQueuedValues) {
  auto M = checkModule(R"(module m;
section a cells 2 {
function up() {
  var v: float = 0.0;
  for i = 0 to 15 {
    send(Y, v);
  }
}
function down() {
  var v: float = 0.0;
  for i = 0 to 11 {
    receive(X, v);
  }
}
}
)");
  ASSERT_TRUE(M);
  std::vector<Diag> Diags = checkChannelProtocol(*M, {});
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_NE(Diags[0].Notes[1].Message.find("never consumed"),
            std::string::npos)
      << Diags[0].Notes[1].Message;
}

TEST(ChannelProtocolTest, UnknownCountsAreNotFlagged) {
  // A data-dependent producer matches any consumer: the checker only
  // flags known-vs-known mismatches, which is what keeps it free of
  // false positives.
  auto M = checkModule(R"(module m;
section a cells 2 {
function up(n: int) {
  var v: float = 0.0;
  var i: int = 0;
  while (i < n) {
    send(Y, v);
    i = i + 1;
  }
}
function down() {
  var v: float = 0.0;
  for i = 0 to 15 {
    receive(X, v);
  }
}
}
)");
  ASSERT_TRUE(M);
  EXPECT_TRUE(checkChannelProtocol(*M, {}).empty());
}

TEST(ChannelProtocolTest, HelperFunctionsAreNotChainCells) {
  // 'step' is called by 'up', so it is part of up's cell program, not a
  // separate stage in the systolic chain.
  auto M = checkModule(R"(module m;
section a cells 2 {
function up() {
  var v: float = 0.0;
  for i = 0 to 15 {
    v = step(v);
  }
}
function step(x: float): float {
  send(Y, x);
  return x;
}
function down() {
  var v: float = 0.0;
  for i = 0 to 15 {
    receive(X, v);
  }
}
}
)");
  ASSERT_TRUE(M);
  EXPECT_TRUE(checkChannelProtocol(*M, {}).empty());
}

TEST(ChannelProtocolTest, DivergingIfArmsGetPathWarning) {
  auto M = checkModule(R"(module m;
section a cells 2 {
function f(n: int) {
  var v: float = 0.0;
  if (n > 0) {
    send(Y, v);
  } else {
    send(Y, v);
    send(Y, v);
  }
}
}
)");
  ASSERT_TRUE(M);
  std::vector<Diag> Diags = checkChannelProtocol(*M, {});
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].CheckId, "channel-path");
  EXPECT_NE(Diags[0].Message.find("1 vs 2"), std::string::npos)
      << Diags[0].Message;
}

TEST(ChannelProtocolTest, TailXSendsDrainToHost) {
  // The final cell's X output leaves the array toward the host
  // interface; with no downstream cell there is nothing to check.
  auto M = checkModule(R"(module m;
section a cells 2 {
function only() {
  var v: float = 0.0;
  receive(X, v);
  send(X, v);
  send(X, v);
}
}
)");
  ASSERT_TRUE(M);
  EXPECT_TRUE(checkChannelProtocol(*M, {}).empty());
}
