//===- InterprocTest.cpp --------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
//
// The interprocedural summary framework: call-graph/SCC structure, the
// SymPoly and Interval algebra, per-function summaries, the whole-program
// checks that catch defects the intraprocedural checks provably miss, the
// systolic deadlock detector, and the incremental summary cache.
//
//===----------------------------------------------------------------------===//

#include "analysis/interproc/InterprocAnalysis.h"

#include "../TestHelpers.h"
#include "analysis/Analyzer.h"
#include "cache/CompileCache.h"
#include "obs/TraceRecorder.h"
#include "parallel/AnalysisRunner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

using namespace warpc;
using namespace warpc::analysis;
using namespace warpc::analysis::interproc;
using warpc::test::checkModule;

namespace {

/// Runs the bottom-up fixpoint sequentially: waves in ascending level
/// order, member summaries filled into the flat ordinal-indexed vector.
std::vector<FunctionSummary> summarizeAll(const CallGraph &G,
                                          const SCCDecomposition &D,
                                          const AnalysisOptions &Opts,
                                          std::vector<Diag> *Diags = nullptr) {
  std::vector<FunctionSummary> All(G.Nodes.size());
  for (const std::vector<uint32_t> &Wave : D.Waves)
    for (uint32_t Id : Wave) {
      SCCOutput Out = summarizeSCC(G, D, Id, All, Opts);
      for (FunctionSummary &S : Out.Summaries)
        All[S.Ordinal] = std::move(S);
      if (Diags)
        Diags->insert(Diags->end(), Out.Diags.begin(), Out.Diags.end());
    }
  return All;
}

/// Options with only the intraprocedural checks active.
AnalysisOptions intraprocOnly() {
  AnalysisOptions Opts;
  Opts.Disabled = {check::InterprocArrayBounds, check::InterprocDivZero,
                   check::InterprocUninit, check::ChannelDeadlock};
  return Opts;
}

/// Ids of every diagnostic present in \p Diags.
std::set<std::string> checkIdsOf(const std::vector<Diag> &Diags) {
  std::set<std::string> Ids;
  for (const Diag &D : Diags)
    Ids.insert(D.CheckId);
  return Ids;
}

} // namespace

//===----------------------------------------------------------------------===//
// SymPoly algebra
//===----------------------------------------------------------------------===//

TEST(SymPolyTest, ConstantAndParamBasics) {
  SymPoly C = SymPoly::constant(7);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.constantValue(), 7);
  EXPECT_TRUE(SymPoly::constant(0).isZero());

  SymPoly P = SymPoly::param(2);
  EXPECT_FALSE(P.isConstant());
  EXPECT_EQ(P.degree(), 1u);
  EXPECT_TRUE(P.usesParam(2));
  EXPECT_FALSE(P.usesParam(1));
  EXPECT_FALSE(SymPoly::invalid().valid());
}

TEST(SymPolyTest, ArithmeticAndCancellation) {
  SymPoly N = SymPoly::param(0);
  SymPoly Expr = N * SymPoly::constant(3) + SymPoly::constant(2);
  EXPECT_EQ(Expr.degree(), 1u);

  // 3n + 2 - 3n == 2: subtraction cancels terms exactly.
  SymPoly Diff = Expr - N * SymPoly::constant(3);
  EXPECT_TRUE(Diff.isConstant());
  EXPECT_EQ(Diff.constantValue(), 2);

  // (n + 1)^2 = n^2 + 2n + 1, evaluated at n = 4.
  SymPoly Sq = (N + SymPoly::constant(1)) * (N + SymPoly::constant(1));
  EXPECT_EQ(Sq.degree(), 2u);
  std::vector<SymPoly> Four = {SymPoly::constant(4)};
  SymPoly V = Sq.substitute(Four);
  ASSERT_TRUE(V.isConstant());
  EXPECT_EQ(V.constantValue(), 25);
}

TEST(SymPolyTest, SubstituteComposesPolynomials) {
  // p0 * p1 with p0 := 2m, p1 := m + 1  ==>  2m^2 + 2m.
  SymPoly Prod = SymPoly::param(0) * SymPoly::param(1);
  SymPoly M = SymPoly::param(0);
  std::vector<SymPoly> Args = {M * SymPoly::constant(2),
                               M + SymPoly::constant(1)};
  SymPoly R = Prod.substitute(Args);
  ASSERT_TRUE(R.valid());
  std::vector<SymPoly> Five = {SymPoly::constant(5)};
  EXPECT_EQ(R.substitute(Five).constantValue(), 2 * 25 + 2 * 5);
}

TEST(SymPolyTest, SubstituteMissingArgFailsClosed) {
  SymPoly P = SymPoly::param(1);
  std::vector<SymPoly> OneArg = {SymPoly::constant(3)};
  EXPECT_FALSE(P.substitute(OneArg).valid());
  std::vector<SymPoly> Bad = {SymPoly::constant(3), SymPoly::invalid()};
  EXPECT_FALSE(P.substitute(Bad).valid());
  // An invalid argument in an UNUSED position is harmless.
  SymPoly Q = SymPoly::param(0);
  EXPECT_TRUE(Q.substitute(Bad).valid());
}

TEST(SymPolyTest, DegreeCapFailsClosed) {
  SymPoly N = SymPoly::param(0);
  SymPoly P = N;
  for (int I = 0; I != 4; ++I)
    P = P * N;
  EXPECT_FALSE(P.valid()) << "degree 5 must exceed the cap";
  // Invalid poisons downstream arithmetic.
  EXPECT_FALSE((P + SymPoly::constant(1)).valid());
}

TEST(SymPolyTest, AsAffineDecomposition) {
  SymPoly A = SymPoly::param(3) * SymPoly::constant(-2) + SymPoly::constant(7);
  uint32_t Param = 0;
  int64_t Scale = 0, Offset = 0;
  ASSERT_TRUE(A.asAffine(Param, Scale, Offset));
  EXPECT_EQ(Param, 3u);
  EXPECT_EQ(Scale, -2);
  EXPECT_EQ(Offset, 7);

  EXPECT_FALSE(SymPoly::constant(4).asAffine(Param, Scale, Offset));
  SymPoly Quad = SymPoly::param(0) * SymPoly::param(0);
  EXPECT_FALSE(Quad.asAffine(Param, Scale, Offset));
  SymPoly TwoVars = SymPoly::param(0) + SymPoly::param(1);
  EXPECT_FALSE(TwoVars.asAffine(Param, Scale, Offset));
}

TEST(SymPolyTest, CodecRoundTrip) {
  SymPoly P = SymPoly::param(0) * SymPoly::param(1) +
              SymPoly::param(2) * SymPoly::constant(-9) +
              SymPoly::constant(42);
  BinaryWriter W;
  P.encode(W);
  BinaryReader R(W.buffer());
  std::optional<SymPoly> Back = SymPoly::decode(R);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, P);

  BinaryWriter W2;
  SymPoly::invalid().encode(W2);
  BinaryReader R2(W2.buffer());
  std::optional<SymPoly> Inv = SymPoly::decode(R2);
  ASSERT_TRUE(Inv.has_value());
  EXPECT_FALSE(Inv->valid());
}

//===----------------------------------------------------------------------===//
// Interval lattice
//===----------------------------------------------------------------------===//

TEST(IntervalTest, JoinAndAttainment) {
  Interval A = Interval::of(1, 3, true);
  Interval B = Interval::of(5, 9, true);
  Interval J = Interval::join(A, B);
  EXPECT_TRUE(J.Known);
  EXPECT_EQ(J.Lo, 1);
  EXPECT_EQ(J.Hi, 9);
  EXPECT_TRUE(J.Attained);

  Interval NoAtt = Interval::join(A, Interval::of(5, 9, false));
  EXPECT_FALSE(NoAtt.Attained);
  EXPECT_FALSE(Interval::join(A, Interval::top()).Known);
}

TEST(IntervalTest, AffineImageSaturatesOnOverflow) {
  Interval I = Interval::of(-2, 3, true);
  Interval Img = affineImage(I, -4, 1);
  EXPECT_TRUE(Img.Known);
  EXPECT_EQ(Img.Lo, -11);
  EXPECT_EQ(Img.Hi, 9);
  EXPECT_TRUE(Img.Attained);

  Interval Huge = Interval::of(INT64_MAX / 2, INT64_MAX, true);
  EXPECT_FALSE(affineImage(Huge, 3, 0).Known) << "overflow must go to Top";
  EXPECT_FALSE(affineImage(Interval::top(), 1, 0).Known);
}

//===----------------------------------------------------------------------===//
// Call graph and SCC condensation
//===----------------------------------------------------------------------===//

TEST(CallGraphTest, DiamondEdgesAndWavefronts) {
  auto M = checkModule(R"(module cg;
section s cells 2 {
function leaf(x: int): int {
  return x + 1;
}
function left(x: int): int {
  return leaf(x);
}
function right(x: int): int {
  return leaf(leaf(x));
}
function top(x: int): int {
  return left(x) + right(x);
}
}
)");
  ASSERT_TRUE(M);
  CallGraph G = CallGraph::build(*M);
  ASSERT_EQ(G.Nodes.size(), 4u);
  EXPECT_EQ(G.Nodes[0].Function->getName(), "leaf");
  EXPECT_TRUE(G.Nodes[0].Callees.empty());
  EXPECT_EQ(G.Nodes[0].Callers, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(G.Nodes[1].Callees, (std::vector<uint32_t>{0}));
  EXPECT_EQ(G.Nodes[2].Callees, (std::vector<uint32_t>{0}))
      << "duplicate call sites collapse to one edge";
  EXPECT_EQ(G.Nodes[3].Callees, (std::vector<uint32_t>{1, 2}));

  SCCDecomposition D = SCCDecomposition::compute(G);
  ASSERT_EQ(D.SCCs.size(), 4u);
  for (const SCCDecomposition::SCC &C : D.SCCs)
    EXPECT_FALSE(C.Recursive);
  // leaf at level 0; left/right at 1; top at 2.
  EXPECT_EQ(D.SCCs[D.SCCOf[0]].Level, 0u);
  EXPECT_EQ(D.SCCs[D.SCCOf[1]].Level, 1u);
  EXPECT_EQ(D.SCCs[D.SCCOf[2]].Level, 1u);
  EXPECT_EQ(D.SCCs[D.SCCOf[3]].Level, 2u);
  ASSERT_EQ(D.Waves.size(), 3u);
  EXPECT_EQ(D.Waves[0].size(), 1u);
  EXPECT_EQ(D.Waves[1].size(), 2u);
  EXPECT_EQ(D.Waves[2].size(), 1u);
}

TEST(CallGraphTest, CallsNeverCrossSectionsAndIntrinsicsAreNotNodes) {
  auto M = checkModule(R"(module cg2;
section a cells 2 {
function f(x: float): float {
  return sqrt(x);
}
}
section b cells 2 {
function f(x: float): float {
  return abs(x);
}
function g(x: float): float {
  return f(x);
}
}
)");
  ASSERT_TRUE(M);
  CallGraph G = CallGraph::build(*M);
  ASSERT_EQ(G.Nodes.size(), 3u);
  EXPECT_TRUE(G.Nodes[0].Callees.empty()) << "sqrt is not a node";
  EXPECT_TRUE(G.Nodes[0].Callers.empty()) << "b.g must not call a.f";
  EXPECT_EQ(G.Nodes[2].Callees, (std::vector<uint32_t>{1}))
      << "b.g resolves f against its own section";
}

TEST(CallGraphTest, MutualRecursionFormsOneRecursiveSCC) {
  auto M = checkModule(R"(module rec;
section s cells 2 {
function odd(n: int): int {
  if (n > 0) {
    return even(n - 1);
  }
  return 0;
}
function even(n: int): int {
  if (n > 0) {
    return odd(n - 1);
  }
  return 1;
}
function driver(): int {
  return even(8);
}
}
)");
  ASSERT_TRUE(M);
  CallGraph G = CallGraph::build(*M);
  SCCDecomposition D = SCCDecomposition::compute(G);
  ASSERT_EQ(D.SCCs.size(), 2u);
  EXPECT_EQ(D.SCCOf[0], D.SCCOf[1]);
  const SCCDecomposition::SCC &Rec = D.SCCs[D.SCCOf[0]];
  EXPECT_TRUE(Rec.Recursive);
  EXPECT_EQ(Rec.Members, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(Rec.Level, 0u);
  EXPECT_EQ(D.SCCs[D.SCCOf[2]].Level, 1u);
}

//===----------------------------------------------------------------------===//
// Summaries
//===----------------------------------------------------------------------===//

TEST(SummaryTest, ReturnIntervalsPropagateThroughCalls) {
  auto M = checkModule(R"(module sums;
section s cells 2 {
function five(): int {
  return 5;
}
function six(): int {
  return five() + 1;
}
function pick(c: int): int {
  if (c > 0) {
    return 1;
  }
  return 3;
}
}
)");
  ASSERT_TRUE(M);
  CallGraph G = CallGraph::build(*M);
  SCCDecomposition D = SCCDecomposition::compute(G);
  std::vector<FunctionSummary> All = summarizeAll(G, D, {});
  EXPECT_EQ(All[0].Ret, Interval::single(5));
  EXPECT_EQ(All[1].Ret, Interval::single(6));
  EXPECT_TRUE(All[2].Ret.Known);
  EXPECT_EQ(All[2].Ret.Lo, 1);
  EXPECT_EQ(All[2].Ret.Hi, 3);
  EXPECT_TRUE(All[2].Ret.Attained);
  for (const FunctionSummary &S : All)
    EXPECT_TRUE(S.Pure) << S.FunctionName;
}

TEST(SummaryTest, DivisorDemandExportedAndReExported) {
  auto M = checkModule(R"(module dem;
section s cells 2 {
function inv(d: int): int {
  return 100 / d;
}
function shifted(k: int): int {
  return inv(k - 3);
}
}
)");
  ASSERT_TRUE(M);
  CallGraph G = CallGraph::build(*M);
  SCCDecomposition D = SCCDecomposition::compute(G);
  std::vector<FunctionSummary> All = summarizeAll(G, D, {});

  ASSERT_EQ(All[0].Demands.size(), 1u);
  EXPECT_EQ(All[0].Demands[0].K, ParamDemand::Divisor);
  EXPECT_EQ(All[0].Demands[0].ParamIndex, 0u);
  EXPECT_EQ(All[0].Demands[0].Scale, 1);
  EXPECT_EQ(All[0].Demands[0].Offset, 0);

  // shifted re-exports the demand composed through the argument k - 3.
  ASSERT_EQ(All[1].Demands.size(), 1u);
  EXPECT_EQ(All[1].Demands[0].K, ParamDemand::Divisor);
  EXPECT_EQ(All[1].Demands[0].ParamIndex, 0u);
  EXPECT_EQ(All[1].Demands[0].Scale, 1);
  EXPECT_EQ(All[1].Demands[0].Offset, -3);
  EXPECT_GE(All[1].Demands[0].Chain.size(), 2u)
      << "the witness chain crosses the call";
}

TEST(SummaryTest, ChannelCountsAreSymbolicInParams) {
  auto M = checkModule(R"(module chan;
section s cells 2 {
function pump(n: int) {
  var v: float = 1.0;
  for i = 1 to n {
    send(Y, v);
  }
}
function fixed() {
  var v: float = 0.0;
  for i = 0 to 9 {
    receive(X, v);
  }
}
function caller() {
  pump(6);
}
}
)");
  ASSERT_TRUE(M);
  CallGraph G = CallGraph::build(*M);
  SCCDecomposition D = SCCDecomposition::compute(G);
  std::vector<FunctionSummary> All = summarizeAll(G, D, {});

  // pump's SendY is the symbolic trip count of "for i = 1 to n": n.
  ASSERT_TRUE(All[0].Channels.SendY.Known);
  std::vector<SymPoly> Four = {SymPoly::constant(4)};
  EXPECT_EQ(All[0].Channels.SendY.P.substitute(Four).constantValue(), 4);
  EXPECT_TRUE(All[0].HasChannelTraffic);
  EXPECT_FALSE(All[0].Pure);

  EXPECT_EQ(All[1].Channels.RecvX.constantCount(),
            std::optional<uint64_t>(10));

  // The call site substitutes the literal argument into the callee poly.
  EXPECT_EQ(All[2].Channels.SendY.constantCount(),
            std::optional<uint64_t>(6));
  EXPECT_FALSE(All[2].Channels.SendY.P.usesParam(0));
}

TEST(SummaryTest, RecursiveSCCDegradesToConservative) {
  auto M = checkModule(R"(module rec2;
section s cells 2 {
function ping(n: int): int {
  if (n > 0) {
    return pong(n - 1);
  }
  return 0;
}
function pong(n: int): int {
  var v: float = 1.0;
  send(Y, v);
  return ping(n);
}
}
)");
  ASSERT_TRUE(M);
  CallGraph G = CallGraph::build(*M);
  SCCDecomposition D = SCCDecomposition::compute(G);
  ASSERT_TRUE(D.SCCs[D.SCCOf[0]].Recursive);
  std::vector<Diag> Diags;
  std::vector<FunctionSummary> All = summarizeAll(G, D, {}, &Diags);
  EXPECT_TRUE(Diags.empty()) << "recursive SCCs never diagnose";
  // Send traffic inside the cycle taints both members' SendY to unknown;
  // the untouched directions stay exactly zero.
  EXPECT_FALSE(All[0].Channels.SendY.Known);
  EXPECT_FALSE(All[1].Channels.SendY.Known);
  EXPECT_TRUE(All[0].Channels.RecvX.isZero());
  EXPECT_FALSE(All[0].Ret.Known);
  EXPECT_FALSE(All[0].Pure);
}

TEST(SummaryTest, SCCOutputCodecRoundTripsSummariesAndDiags) {
  auto M = checkModule(R"(module codec;
section s cells 2 {
function inv(d: int): int {
  return 7 / d;
}
function bad(): int {
  return inv(0);
}
}
)");
  ASSERT_TRUE(M);
  CallGraph G = CallGraph::build(*M);
  SCCDecomposition D = SCCDecomposition::compute(G);
  std::vector<FunctionSummary> All(G.Nodes.size());
  SCCOutput Leaf = summarizeSCC(G, D, D.SCCOf[0], All, {});
  ASSERT_EQ(Leaf.Summaries.size(), 1u);
  All[0] = Leaf.Summaries[0];
  SCCOutput Caller = summarizeSCC(G, D, D.SCCOf[1], All, {});
  ASSERT_EQ(Caller.Diags.size(), 1u);
  EXPECT_EQ(Caller.Diags[0].CheckId, check::InterprocDivZero);

  std::vector<uint8_t> Bytes = encodeSCCOutput(Caller);
  std::optional<SCCOutput> Back = decodeSCCOutput(Bytes);
  ASSERT_TRUE(Back.has_value());
  ASSERT_EQ(Back->Summaries.size(), Caller.Summaries.size());
  EXPECT_EQ(Back->Summaries[0].FunctionName, "bad");
  EXPECT_EQ(Back->Summaries[0].Ret, Caller.Summaries[0].Ret);
  ASSERT_EQ(Back->Diags.size(), 1u);
  EXPECT_EQ(Back->Diags[0].CheckId, Caller.Diags[0].CheckId);
  EXPECT_EQ(Back->Diags[0].Message, Caller.Diags[0].Message);
  EXPECT_EQ(Back->Diags[0].Loc.Line, Caller.Diags[0].Loc.Line);
  ASSERT_EQ(Back->Diags[0].Notes.size(), Caller.Diags[0].Notes.size());
  ASSERT_FALSE(Back->Diags[0].Notes.empty());
  EXPECT_EQ(Back->Diags[0].Notes.back().Message,
            Caller.Diags[0].Notes.back().Message);

  // Any truncation decodes to nullopt, never to garbage.
  for (size_t Cut : {size_t(0), Bytes.size() / 2, Bytes.size() - 1}) {
    std::vector<uint8_t> Trunc(Bytes.begin(),
                               Bytes.begin() + static_cast<long>(Cut));
    EXPECT_FALSE(decodeSCCOutput(Trunc).has_value()) << "cut=" << Cut;
  }
}

//===----------------------------------------------------------------------===//
// The whole-program checks catch what the intraprocedural ones miss
//===----------------------------------------------------------------------===//

namespace {

/// Each defect here crosses a call boundary, which is exactly what the
/// per-function checks cannot see: the bad divisor, the uninitialized
/// array, and the out-of-range subscript all live in the callee while the
/// offending value lives in the caller.
std::string interprocDefectModule() {
  return R"(module ipdef;
section s cells 2 {
function inv(d: int): int {
  return 100 / d;
}
function sum8(a: float[8]): float {
  var acc: float = 0.0;
  for i = 0 to 7 {
    acc = acc + a[i];
  }
  return acc;
}
function nth(k: int): int {
  var arr: int[4];
  for i = 0 to 3 {
    arr[i] = i;
  }
  return arr[k];
}
function main() {
  var z: int = inv(0);
  var buf: float[8];
  var s: float = sum8(buf);
  var w: int = nth(9);
}
}
)";
}

} // namespace

TEST(InterprocChecksTest, IntraproceduralChecksProvablyMissTheDefects) {
  std::string Source = interprocDefectModule();
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  ModuleAnalysis Intra = analyzeModule(*M, Source, intraprocOnly());
  EXPECT_TRUE(Intra.Diags.empty())
      << "the defects must be invisible intraprocedurally:\n"
      << renderText(Intra.Diags);
}

TEST(InterprocChecksTest, EachWholeProgramCheckCatchesItsDefect) {
  std::string Source = interprocDefectModule();
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  ModuleAnalysis Full = analyzeModule(*M, Source, {});
  std::set<std::string> Ids = checkIdsOf(Full.Diags);
  EXPECT_TRUE(Ids.count(check::InterprocDivZero)) << renderText(Full.Diags);
  EXPECT_TRUE(Ids.count(check::InterprocUninit)) << renderText(Full.Diags);
  EXPECT_TRUE(Ids.count(check::InterprocArrayBounds))
      << renderText(Full.Diags);
  EXPECT_EQ(countDiags(Full.Diags).Errors, 3u) << renderText(Full.Diags);
  for (const Diag &D : Full.Diags) {
    EXPECT_EQ(D.Function, "main") << "diags anchor at the caller";
    EXPECT_FALSE(D.Notes.empty()) << "every finding carries its witness";
  }
}

TEST(InterprocChecksTest, DisablingOneCheckLeavesTheOthers) {
  std::string Source = interprocDefectModule();
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  AnalysisOptions Opts;
  Opts.Disabled.insert(check::InterprocDivZero);
  ModuleAnalysis R = analyzeModule(*M, Source, Opts);
  std::set<std::string> Ids = checkIdsOf(R.Diags);
  EXPECT_FALSE(Ids.count(check::InterprocDivZero));
  EXPECT_TRUE(Ids.count(check::InterprocUninit));
  EXPECT_TRUE(Ids.count(check::InterprocArrayBounds));
}

TEST(InterprocChecksTest, RangeDivisorAttainingZeroIsFlagged) {
  std::string Source = R"(module rng;
section s cells 2 {
function inv(d: int): int {
  return 100 / d;
}
function main(): int {
  var acc: int = 0;
  for i = 0 to 3 {
    acc = acc + inv(i);
  }
  return acc;
}
}
)";
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  ModuleAnalysis R = analyzeModule(*M, Source, {});
  ASSERT_EQ(R.Diags.size(), 1u) << renderText(R.Diags);
  EXPECT_EQ(R.Diags[0].CheckId, check::InterprocDivZero);
  EXPECT_NE(R.Diags[0].Message.find("attains 0"), std::string::npos)
      << R.Diags[0].Message;
}

TEST(InterprocChecksTest, SafeArgumentsStayClean) {
  std::string Source = R"(module safe;
section s cells 2 {
function inv(d: int): int {
  return 100 / d;
}
function nth(k: int): int {
  var arr: int[4];
  for i = 0 to 3 {
    arr[i] = i;
  }
  return arr[k];
}
function fill(a: float[8]): float {
  for i = 0 to 7 {
    a[i] = 0.5;
  }
  return a[0];
}
function main(): float {
  var z: int = inv(5);
  var w: int = nth(3);
  var buf: float[8];
  return fill(buf);
}
}
)";
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  ModuleAnalysis R = analyzeModule(*M, Source, {});
  EXPECT_TRUE(R.Diags.empty()) << renderText(R.Diags);
}

//===----------------------------------------------------------------------===//
// Whole-program deadlock detection
//===----------------------------------------------------------------------===//

namespace {

/// A starved link hidden behind a helper call: pump's trip count is a
/// parameter, so the intraprocedural protocol check sees Unknown and stays
/// silent; the summary substitutes the literal argument and proves 4 < 8.
std::string deadlockModule() {
  return R"(module pipe;
section s cells 2 {
function pump(n: int) {
  var v: float = 1.0;
  for i = 1 to n {
    send(Y, v);
  }
}
function stage_a() {
  pump(4);
}
function stage_b() {
  var v: float = 0.0;
  for i = 1 to 8 {
    receive(X, v);
  }
  send(Y, v);
}
}
)";
}

} // namespace

TEST(DeadlockTest, StarvedLinkThroughHelperCallIsDetected) {
  std::string Source = deadlockModule();
  auto M = checkModule(Source);
  ASSERT_TRUE(M);

  ModuleAnalysis Intra = analyzeModule(*M, Source, intraprocOnly());
  EXPECT_FALSE(checkIdsOf(Intra.Diags).count(check::ChannelMismatch))
      << "unknown upstream count must keep the old warning silent:\n"
      << renderText(Intra.Diags);

  ModuleAnalysis Full = analyzeModule(*M, Source, {});
  ASSERT_EQ(countDiags(Full.Diags).Errors, 1u) << renderText(Full.Diags);
  const Diag *DL = nullptr;
  for (const Diag &D : Full.Diags)
    if (D.CheckId == check::ChannelDeadlock)
      DL = &D;
  ASSERT_NE(DL, nullptr) << renderText(Full.Diags);
  EXPECT_EQ(DL->Function, "stage_b") << "anchored at the starved consumer";
  EXPECT_NE(DL->Message.find("receives 8"), std::string::npos)
      << DL->Message;
  EXPECT_NE(DL->Message.find("sends only 4"), std::string::npos)
      << DL->Message;
  // The witness names both ends and walks the producing call chain.
  bool SawRecv = false, SawSend = false, SawChain = false;
  for (const DiagNote &N : DL->Notes) {
    SawRecv |= N.Message.find("starving receive") != std::string::npos;
    SawSend |= N.Message.find("last send") != std::string::npos;
    SawChain |= N.Message.find("'pump'") != std::string::npos;
  }
  EXPECT_TRUE(SawRecv && SawSend && SawChain) << renderText(Full.Diags);
}

TEST(DeadlockTest, DeadlockSupersedesChannelMismatchOnTheSameLink) {
  // Literal counts on both sides: the intraprocedural channel-mismatch
  // CAN see this link, but the deadlock verdict is strictly stronger and
  // replaces it.
  std::string Source = R"(module pipe2;
section s cells 2 {
function stage_a() {
  var v: float = 1.0;
  for i = 1 to 4 {
    send(Y, v);
  }
}
function stage_b() {
  var v: float = 0.0;
  for i = 1 to 8 {
    receive(X, v);
  }
  send(Y, v);
}
}
)";
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  ModuleAnalysis Intra = analyzeModule(*M, Source, intraprocOnly());
  EXPECT_TRUE(checkIdsOf(Intra.Diags).count(check::ChannelMismatch))
      << renderText(Intra.Diags);

  ModuleAnalysis Full = analyzeModule(*M, Source, {});
  std::set<std::string> Ids = checkIdsOf(Full.Diags);
  EXPECT_TRUE(Ids.count(check::ChannelDeadlock)) << renderText(Full.Diags);
  EXPECT_FALSE(Ids.count(check::ChannelMismatch))
      << "the mismatch warning must be superseded:\n"
      << renderText(Full.Diags);
}

TEST(DeadlockTest, OverfedLinkIsNotADeadlock) {
  // Upstream sends MORE than downstream consumes: backpressure, not
  // starvation. The mismatch warning stays; no deadlock error.
  std::string Source = R"(module pipe3;
section s cells 2 {
function stage_a() {
  var v: float = 1.0;
  for i = 1 to 9 {
    send(Y, v);
  }
}
function stage_b() {
  var v: float = 0.0;
  for i = 1 to 3 {
    receive(X, v);
  }
  send(Y, v);
}
}
)";
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  ModuleAnalysis Full = analyzeModule(*M, Source, {});
  std::set<std::string> Ids = checkIdsOf(Full.Diags);
  EXPECT_FALSE(Ids.count(check::ChannelDeadlock)) << renderText(Full.Diags);
  EXPECT_TRUE(Ids.count(check::ChannelMismatch)) << renderText(Full.Diags);
}

//===----------------------------------------------------------------------===//
// Incremental summary cache
//===----------------------------------------------------------------------===//

namespace {

/// A three-deep call chain plus an isolated function, with one replayable
/// diagnostic, so a leaf edit dirties exactly three SCCs and leaves one
/// warm.
std::string chainModule(const char *LeafBody) {
  std::string S = R"(module chain;
section s cells 2 {
function leaf(d: int): int {
)";
  S += LeafBody;
  S += R"(
}
function mid(k: int): int {
  return leaf(k) + 1;
}
function top(): int {
  return mid(0);
}
function iso(): int {
  return 7;
}
}
)";
  return S;
}

struct CachedRun {
  std::string Json;
  double Hits = 0, Misses = 0, Stores = 0, Invalidated = 0;
};

CachedRun runWithCache(const std::string &Source, cache::CompileCache &Cache,
                       unsigned Workers) {
  CachedRun R;
  auto M = checkModule(Source);
  EXPECT_TRUE(M);
  if (!M)
    return R;
  obs::MetricsRegistry Metrics;
  parallel::AnalysisRunResult Run = parallel::analyzeModuleParallel(
      *M, Source, {}, Workers, nullptr, &Metrics, &Cache);
  Cache.rememberModule(*M);
  R.Json = renderJson(Run.Analysis.Diags).dump(1);
  R.Hits = Metrics.counter("analysis.summary.hits");
  R.Misses = Metrics.counter("analysis.summary.misses");
  R.Stores = Metrics.counter("analysis.summary.stores");
  R.Invalidated = Metrics.counter("analysis.summary.invalidated");
  return R;
}

} // namespace

TEST(SummaryCacheTest, WarmRunReplaysWithoutReanalysis) {
  std::string Source = chainModule("  return 100 / d;");
  cache::CompileCache Cache(cache::CacheMode::Memory, cache::CacheContext{});

  CachedRun Cold = runWithCache(Source, Cache, 4);
  EXPECT_EQ(Cold.Hits, 0.0);
  EXPECT_EQ(Cold.Misses, 4.0);
  EXPECT_EQ(Cold.Stores, 4.0);
  EXPECT_EQ(Cold.Invalidated, 0.0) << "a cold cache is new, not invalidated";
  EXPECT_NE(Cold.Json.find("interproc-div-zero"), std::string::npos)
      << "top passes 0 down the chain: the diagnostic must exist\n"
      << Cold.Json;

  CachedRun Warm = runWithCache(Source, Cache, 4);
  EXPECT_EQ(Warm.Hits, 4.0);
  EXPECT_EQ(Warm.Misses, 0.0);
  EXPECT_EQ(Warm.Stores, 0.0);
  EXPECT_EQ(Warm.Json, Cold.Json)
      << "cache replay must be byte-identical to cold analysis";
}

TEST(SummaryCacheTest, LeafEditReanalyzesOnlyTheDirtySCCChain) {
  std::string Source = chainModule("  return 100 / d;");
  cache::CompileCache Cache(cache::CacheMode::Memory, cache::CacheContext{});
  runWithCache(Source, Cache, 4);

  // Edit only leaf's body: the keys of leaf, mid and top change
  // transitively; iso stays warm.
  std::string Edited = chainModule("  return 200 / d;");
  CachedRun After = runWithCache(Edited, Cache, 4);
  EXPECT_EQ(After.Hits, 1.0) << "iso must stay warm";
  EXPECT_EQ(After.Misses, 3.0) << "exactly the dirty SCC chain re-analyzes";
  EXPECT_GE(After.Invalidated, 1.0)
      << "the manifest must classify leaf's body edit";

  // The incremental output matches an uncached sequential run.
  auto M = checkModule(Edited);
  ASSERT_TRUE(M);
  ModuleAnalysis Fresh = analyzeModule(*M, Edited, {});
  EXPECT_EQ(After.Json, renderJson(Fresh.Diags).dump(1));
}

TEST(SummaryCacheTest, CheckConfigurationIsPartOfTheKey) {
  std::string Source = chainModule("  return 100 / d;");
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  cache::CompileCache Cache(cache::CacheMode::Memory, cache::CacheContext{});

  obs::MetricsRegistry M1;
  parallel::analyzeModuleParallel(*M, Source, {}, 2, nullptr, &M1, &Cache);
  EXPECT_EQ(M1.counter("analysis.summary.misses"), 4.0);

  // Disabling a check must not replay summaries keyed to the old
  // configuration — their payload carries that configuration's diags.
  AnalysisOptions NoDiv;
  NoDiv.Disabled.insert(check::InterprocDivZero);
  obs::MetricsRegistry M2;
  parallel::AnalysisRunResult R2 = parallel::analyzeModuleParallel(
      *M, Source, NoDiv, 2, nullptr, &M2, &Cache);
  EXPECT_EQ(M2.counter("analysis.summary.hits"), 0.0);
  EXPECT_EQ(M2.counter("analysis.summary.misses"), 4.0);
  EXPECT_FALSE(checkIdsOf(R2.Analysis.Diags).count(check::InterprocDivZero));

  // The original configuration still hits its own entries.
  obs::MetricsRegistry M3;
  parallel::analyzeModuleParallel(*M, Source, {}, 2, nullptr, &M3, &Cache);
  EXPECT_EQ(M3.counter("analysis.summary.hits"), 4.0);
}

TEST(SummaryCacheTest, DiskSummariesSurviveReopen) {
  std::string Source = chainModule("  return 100 / d;");
  std::string Dir = ::testing::TempDir() + "warpc_interproc_summary_cache";
  std::filesystem::remove_all(Dir);

  std::string ColdJson;
  {
    cache::CompileCache Cache(cache::CacheMode::Disk, cache::CacheContext{},
                              Dir);
    CachedRun Cold = runWithCache(Source, Cache, 2);
    EXPECT_EQ(Cold.Misses, 4.0);
    EXPECT_EQ(Cold.Stores, 4.0);
    ColdJson = Cold.Json;
  }
  {
    // A fresh cache object over the same directory models a new process:
    // summaries and manifest reload from disk and warm-hit.
    cache::CompileCache Cache(cache::CacheMode::Disk, cache::CacheContext{},
                              Dir);
    CachedRun Warm = runWithCache(Source, Cache, 2);
    EXPECT_EQ(Warm.Hits, 4.0);
    EXPECT_EQ(Warm.Misses, 0.0);
    EXPECT_EQ(Warm.Json, ColdJson);
  }
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Interprocedural phase observability
//===----------------------------------------------------------------------===//

TEST(InterprocObsTest, SummarizeSpansAndSccMetricsAreRecorded) {
  std::string Source = chainModule("  return d + 1;");
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  obs::TraceRecorder Rec(obs::ClockDomain::Steady);
  obs::MetricsRegistry Metrics;
  parallel::analyzeModuleParallel(*M, Source, {}, 2, &Rec, &Metrics);

  obs::TraceSession Session = Rec.finish();
  unsigned Summarize = 0, WithParent = 0;
  for (const obs::SpanEvent &E : Session.Events)
    if (E.Kind == obs::EventKind::SpanSummarize) {
      ++Summarize;
      EXPECT_TRUE(E.isSpan());
      EXPECT_EQ(E.Ph, obs::Phase::Analyze);
      WithParent += E.Parent != 0;
    }
  EXPECT_EQ(Summarize, 4u) << "one span per SCC";
  // mid waits on leaf, top waits on mid: exactly those two spans carry a
  // causal parent; leaf and iso are roots.
  EXPECT_EQ(WithParent, 2u);
  EXPECT_EQ(Metrics.histogram("analysis.scc_sec").Count, 4u);

  EXPECT_STREQ(obs::kindName(obs::EventKind::SpanSummarize),
               "span_summarize");
  obs::EventKind K;
  ASSERT_TRUE(obs::kindFromName("span_summarize", K));
  EXPECT_EQ(K, obs::EventKind::SpanSummarize);
  EXPECT_TRUE(obs::isSpanKind(obs::EventKind::SpanSummarize));
}

//===----------------------------------------------------------------------===//
// Function-scope suppressions
//===----------------------------------------------------------------------===//

TEST(AllowFnTest, FunctionScopeSuppressionCoversTheWholeBody) {
  std::string Source = R"(module sup;
section s cells 2 {
function inv(d: int): int {
  return 100 / d;
}
// lint: allow-fn(interproc-div-zero)
function main(): int {
  var a: int = inv(0);
  var b: int = inv(0);
  return a + b;
}
}
)";
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  ModuleAnalysis R = analyzeModule(*M, Source, {});
  EXPECT_TRUE(R.Diags.empty()) << renderText(R.Diags);

  AnalysisOptions NoSup;
  NoSup.HonorSuppressions = false;
  ModuleAnalysis Raw = analyzeModule(*M, Source, NoSup);
  EXPECT_EQ(countDiags(Raw.Diags).Errors, 2u) << renderText(Raw.Diags);
}

TEST(AllowFnTest, SuppressionIsScopedToItsFunction) {
  std::string Source = R"(module sup2;
section s cells 2 {
function inv(d: int): int {
  return 100 / d;
}
// lint: allow-fn(interproc-div-zero)
function forgiven(): int {
  return inv(0);
}
function guilty(): int {
  return inv(0);
}
}
)";
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  ModuleAnalysis R = analyzeModule(*M, Source, {});
  ASSERT_EQ(R.Diags.size(), 1u) << renderText(R.Diags);
  EXPECT_EQ(R.Diags[0].Function, "guilty");
}

TEST(AllowFnTest, LineLevelAllowStillWorksWithoutAllowFn) {
  // The line-level allow() composes with (and is consulted before) the
  // function-scope form; here only the first call site is forgiven.
  std::string Source = R"(module sup3;
section s cells 2 {
function inv(d: int): int {
  return 100 / d;
}
function main(): int {
  var a: int = inv(0); // lint: allow(interproc-div-zero)
  var b: int = inv(0);
  return a + b;
}
}
)";
  auto M = checkModule(Source);
  ASSERT_TRUE(M);
  ModuleAnalysis R = analyzeModule(*M, Source, {});
  ASSERT_EQ(R.Diags.size(), 1u) << renderText(R.Diags);
  EXPECT_EQ(R.Diags[0].Loc.Line, 8u);
}
