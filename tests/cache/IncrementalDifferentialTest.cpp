//===- IncrementalDifferentialTest.cpp -------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized differential harness for incremental recompilation: seeded
/// modules receive seeded single-function mutations, and after every edit
/// a warm-cache incremental build must be bit-identical to a cold rebuild
/// — at every worker count, and with fault injection active. The cache
/// may change how little work a build does, never what it produces.
///
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"

#include "cluster/FaultPlan.h"
#include "driver/Compiler.h"
#include "parallel/Job.h"
#include "parallel/Scheduler.h"
#include "parallel/SimRunner.h"
#include "parallel/ThreadRunner.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace warpc;

namespace {

/// Functions per module; small enough that 51 seeds stay fast, large
/// enough that a mutation leaves most of the module reusable.
constexpr unsigned NumFns = 6;

/// splitmix64: the per-test decision stream (which function to edit).
uint64_t nextRand(uint64_t &State) {
  uint64_t Z = (State += 0x9E3779B97F4A7C15ULL);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

/// One module variant: function i is generated from Seeds[i]. Same-size
/// regeneration keeps every function's line span fixed, so editing one
/// function cannot shift (and thereby invalidate) its siblings.
std::string buildModule(const std::vector<uint64_t> &Seeds) {
  std::string Out = "module inc;\nsection main cells 10 {\n";
  for (unsigned I = 0; I != Seeds.size(); ++I)
    Out += workload::generateFunction(workload::FunctionSize::Small,
                                      "f" + std::to_string(I + 1), Seeds[I]);
  Out += "}\n";
  return Out;
}

class IncrementalDifferentialTest : public testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(IncrementalDifferentialTest, WarmEqualsColdUnderMutation) {
  const uint64_t Seed = GetParam();
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  cache::CompileCache Cache(cache::CacheMode::Memory,
                            cache::CacheContext::forModel(MM));

  uint64_t Rng = Seed;
  std::vector<uint64_t> Seeds;
  for (unsigned I = 0; I != NumFns; ++I)
    Seeds.push_back(Seed * 977 + I);

  // Cold build fills the cache.
  {
    std::string Source = buildModule(Seeds);
    driver::ModuleResult Cold = driver::compileModuleSequential(Source, MM);
    ASSERT_TRUE(Cold.Succeeded);
    parallel::ThreadRunResult First = parallel::compileModuleParallel(
        Source, MM, 4, driver::FaultPolicy(), nullptr, nullptr, nullptr,
        &Cache);
    ASSERT_TRUE(First.Module.Succeeded);
    EXPECT_EQ(First.CacheMisses, NumFns);
    EXPECT_EQ(First.Module.Image.Image, Cold.Image.Image);
  }

  // Three single-function edits; after each, incremental == cold rebuild.
  for (unsigned Step = 0; Step != 3; ++Step) {
    unsigned Edited = static_cast<unsigned>(nextRand(Rng) % NumFns);
    Seeds[Edited] += 1 + (nextRand(Rng) % 1000) * NumFns; // always fresh
    std::string Source = buildModule(Seeds);

    driver::ModuleResult Cold = driver::compileModuleSequential(Source, MM);
    ASSERT_TRUE(Cold.Succeeded);

    bool FirstWarm = true;
    for (unsigned Workers : {1u, 4u, 16u}) {
      parallel::ThreadRunResult Warm = parallel::compileModuleParallel(
          Source, MM, Workers, driver::FaultPolicy(), nullptr, nullptr,
          nullptr, &Cache);
      ASSERT_TRUE(Warm.Module.Succeeded);
      EXPECT_EQ(Warm.Module.Image.Image, Cold.Image.Image)
          << "seed " << Seed << " step " << Step << " workers " << Workers;
      EXPECT_EQ(Warm.Module.Diags.str(), Cold.Diags.str())
          << "seed " << Seed << " step " << Step << " workers " << Workers;
      if (FirstWarm) {
        // Exactly the edited function rebuilt; its siblings replayed.
        EXPECT_EQ(Warm.CacheHits, NumFns - 1)
            << "seed " << Seed << " step " << Step;
        EXPECT_EQ(Warm.CacheMisses, 1u)
            << "seed " << Seed << " step " << Step;
        FirstWarm = false;
      } else {
        EXPECT_EQ(Warm.CacheHits, NumFns);
      }
    }
  }
}

TEST_P(IncrementalDifferentialTest, WarmEqualsColdUnderFaultInjection) {
  // The same property with function masters vanishing and poisoning
  // results: recovery may retry misses, but never corrupt the output —
  // and cached functions are exempt from injection entirely.
  const uint64_t Seed = GetParam();
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  cache::CompileCache Cache(cache::CacheMode::Memory,
                            cache::CacheContext::forModel(MM));

  std::vector<uint64_t> Seeds;
  for (unsigned I = 0; I != NumFns; ++I)
    Seeds.push_back(Seed * 977 + I);

  parallel::FaultInjection Inject =
      parallel::makeSeededInjection(Seed, 0.3, 0.2);
  std::string Source = buildModule(Seeds);
  driver::ModuleResult Cold = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Cold.Succeeded);

  parallel::ThreadRunResult First = parallel::compileModuleParallel(
      Source, MM, 4, driver::FaultPolicy(), &Inject, nullptr, nullptr,
      &Cache);
  ASSERT_TRUE(First.Module.Succeeded);
  EXPECT_EQ(First.Module.Image.Image, Cold.Image.Image);

  // Edit one function, then rebuild warm under the same injection.
  uint64_t Rng = Seed ^ 0xABCD;
  Seeds[nextRand(Rng) % NumFns] += NumFns;
  Source = buildModule(Seeds);
  Cold = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Cold.Succeeded);
  for (unsigned Workers : {1u, 4u, 16u}) {
    parallel::ThreadRunResult Warm = parallel::compileModuleParallel(
        Source, MM, Workers, driver::FaultPolicy(), &Inject, nullptr,
        nullptr, &Cache);
    ASSERT_TRUE(Warm.Module.Succeeded);
    EXPECT_EQ(Warm.Module.Image.Image, Cold.Image.Image)
        << "seed " << Seed << " workers " << Workers;
    EXPECT_EQ(Warm.Module.Diags.str(), Cold.Diags.str())
        << "seed " << Seed << " workers " << Workers;
  }
}

// The acceptance floor: at least 50 seeded mutation schedules.
INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDifferentialTest,
                         testing::Range<uint64_t>(300, 351));

//===----------------------------------------------------------------------===//
// Simulated 1989 host: warm tasks under an active fault plan
//===----------------------------------------------------------------------===//

TEST(IncrementalSimTest, CachedTasksSurviveFaultPlan) {
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  std::string Source =
      workload::makeTestModule(workload::FunctionSize::Small, 8);
  auto Job = parallel::buildJob(Source, MM);
  ASSERT_TRUE(static_cast<bool>(Job));

  // Warm half the module; host 3 crashes mid-run and messages drop.
  Job->CacheEnabled = true;
  unsigned Warm = 0;
  for (auto &Section : Job->Sections)
    for (parallel::FunctionTask &T : Section)
      if (Warm++ % 2 == 0)
        T.Cached = true;

  cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
  std::string Error;
  ASSERT_TRUE(cluster::parseFaultPlan("crash=3@100+400,loss=0.02,seed=5",
                                      Host.Faults, Error))
      << Error;

  parallel::Assignment Assign = parallel::scheduleBalanced(*Job, 6);
  parallel::ParStats Par =
      parallel::simulateParallel(*Job, Assign, Host, parallel::CostModel::lisp1989());

  // Every function completes despite the faults; the warm half replayed
  // at lookup cost, the cold half compiled (and possibly retried).
  EXPECT_EQ(Par.FunctionsCompleted, 8u);
  EXPECT_EQ(Par.CacheHits, 4u);
  EXPECT_EQ(Par.CacheMisses, 4u);
  EXPECT_GT(Par.CacheBytesKB, 0.0);
  EXPECT_GT(Par.ElapsedSec, 0.0);
}

TEST(IncrementalSimTest, FullyWarmRunBeatsColdRun) {
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  std::string Source =
      workload::makeTestModule(workload::FunctionSize::Medium, 8);
  auto Job = parallel::buildJob(Source, MM);
  ASSERT_TRUE(static_cast<bool>(Job));
  cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
  auto Model = parallel::CostModel::lisp1989();

  Job->CacheEnabled = true;
  parallel::Assignment Assign = parallel::scheduleBalanced(*Job, 8);
  parallel::ParStats ColdRun =
      parallel::simulateParallel(*Job, Assign, Host, Model);
  EXPECT_EQ(ColdRun.CacheMisses, 8u);

  for (auto &Section : Job->Sections)
    for (parallel::FunctionTask &T : Section)
      T.Cached = true;
  parallel::Assignment WarmAssign = parallel::scheduleBalanced(*Job, 8);
  parallel::ParStats WarmRun =
      parallel::simulateParallel(*Job, WarmAssign, Host, Model);

  EXPECT_EQ(WarmRun.CacheHits, 8u);
  EXPECT_EQ(WarmRun.CacheMisses, 0u);
  EXPECT_EQ(WarmRun.FunctionsCompleted, 8u);
  // Replay costs a lookup per function, far below any compile.
  EXPECT_LT(WarmRun.ElapsedSec, ColdRun.ElapsedSec / 2);
  // Warm tasks occupy no workstation beyond the master's.
  EXPECT_EQ(WarmRun.ProcessorsUsed, 0u);
}
