//===- CompileCacheTest.cpp ------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation cache: key derivation and invalidation reasons, the
/// serialized entry format, disk persistence and corruption tolerance,
/// and the acceptance property that a warm recompile of an unchanged
/// module performs zero phase-2/3 compilations.
///
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"

#include "driver/Compiler.h"
#include "obs/MetricsRegistry.h"
#include "parallel/ThreadRunner.h"
#include "w2/Lexer.h"
#include "w2/Parser.h"
#include "w2/Sema.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace warpc;
using namespace warpc::cache;

namespace {

std::unique_ptr<w2::ModuleDecl> check(const std::string &Source) {
  DiagnosticEngine Diags;
  w2::Lexer L(Source, Diags);
  w2::Parser P(L.lexAll(), Diags);
  auto M = P.parseModule();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  w2::Sema S(Diags);
  S.checkModule(*M);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return M;
}

/// A module with an inlinable helper called by its second function; the
/// trailing filler keeps f2's line numbers stable when the helper's body
/// is edited via \p HelperExpr.
std::string helperModule(const std::string &HelperExpr) {
  return "module m;\n"
         "section s cells 2 {\n"
         "  function helper(x: float): float {\n"
         "    return " +
         HelperExpr +
         ";\n"
         "  }\n"
         "  function f2(a: float[8]): float {\n"
         "    var acc: float = 0.0;\n"
         "    for i = 0 to 7 {\n"
         "      acc = acc + helper(a[i]);\n"
         "    }\n"
         "    return acc;\n"
         "  }\n"
         "}\n";
}

FunctionFingerprint fpOf(const w2::ModuleDecl &M, size_t Fn,
                         const CacheContext &Ctx) {
  const w2::SectionDecl *S = M.getSection(0);
  return fingerprintFunction(*S, *S->getFunction(Fn), Ctx);
}

/// A scratch directory unique to the running test.
class TempDir {
public:
  TempDir() {
    const testing::TestInfo *TI =
        testing::UnitTest::GetInstance()->current_test_info();
    Path = std::filesystem::temp_directory_path() /
           (std::string("warpc_cache_") + TI->test_suite_name() + "_" +
            TI->name());
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

driver::FunctionResult compileFirst(const w2::ModuleDecl &M) {
  const w2::SectionDecl *S = M.getSection(0);
  return driver::compileFunction(*S, *S->getFunction(0),
                                 codegen::MachineModel::warpCell());
}

} // namespace

//===----------------------------------------------------------------------===//
// Keys and invalidation reasons
//===----------------------------------------------------------------------===//

TEST(CacheKeyTest, StableAcrossIdenticalParses) {
  auto Ctx = CacheContext::forModel(codegen::MachineModel::warpCell());
  auto M1 = check(helperModule("x * 2.0"));
  auto M2 = check(helperModule("x * 2.0"));
  EXPECT_EQ(fpOf(*M1, 0, Ctx), fpOf(*M2, 0, Ctx));
  EXPECT_EQ(keyOf(fpOf(*M1, 1, Ctx)), keyOf(fpOf(*M2, 1, Ctx)));
}

TEST(CacheKeyTest, BodyEditInvalidates) {
  auto Ctx = CacheContext::forModel(codegen::MachineModel::warpCell());
  auto Old = check(helperModule("x * 2.0"));
  auto New = check(helperModule("x * 3.0"));
  FunctionFingerprint FOld = fpOf(*Old, 0, Ctx), FNew = fpOf(*New, 0, Ctx);
  EXPECT_NE(FOld.BodyHash, FNew.BodyHash);
  EXPECT_EQ(classifyRebuild(FOld, FNew), RebuildReason::BodyEdit);
}

TEST(CacheKeyTest, CalleeEditInvalidatesInliner) {
  // Editing the inlinable helper must invalidate f2 — whose own body is
  // untouched — through the callee component, and name it CalleeEdit.
  auto Ctx = CacheContext::forModel(codegen::MachineModel::warpCell());
  auto Old = check(helperModule("x * 2.0"));
  auto New = check(helperModule("x * 3.0"));
  FunctionFingerprint FOld = fpOf(*Old, 1, Ctx), FNew = fpOf(*New, 1, Ctx);
  EXPECT_EQ(FOld.BodyHash, FNew.BodyHash);
  EXPECT_NE(FOld.CalleeHash, FNew.CalleeHash);
  EXPECT_EQ(classifyRebuild(FOld, FNew), RebuildReason::CalleeEdit);
  EXPECT_NE(keyOf(FOld), keyOf(FNew));
}

TEST(CacheKeyTest, ContextChangesBlameInOrder) {
  auto Ctx = CacheContext::forModel(codegen::MachineModel::warpCell());
  auto M = check(helperModule("x * 2.0"));
  FunctionFingerprint Base = fpOf(*M, 0, Ctx);

  FunctionFingerprint F = Base;
  F.OptLevel = Base.OptLevel + 1;
  EXPECT_EQ(classifyRebuild(Base, F), RebuildReason::OptLevelChange);

  F = Base;
  F.MachineHash ^= 1;
  EXPECT_EQ(classifyRebuild(Base, F), RebuildReason::MachineModelChange);

  F = Base;
  F.BuildId ^= 1;
  EXPECT_EQ(classifyRebuild(Base, F), RebuildReason::BuildIdChange);

  // Blame order: the compiler's own identity outranks everything.
  F = Base;
  F.BuildId ^= 1;
  F.MachineHash ^= 1;
  F.BodyHash ^= 1;
  EXPECT_EQ(classifyRebuild(Base, F), RebuildReason::BuildIdChange);

  EXPECT_EQ(classifyRebuild(Base, Base), RebuildReason::Hit);
}

TEST(CacheKeyTest, MachineModelHashIsStable) {
  // The same configuration must hash identically run to run (disk caches
  // outlive the process), and the hash must be a nontrivial digest.
  uint64_t A = hashMachineModel(codegen::MachineModel::warpCell());
  uint64_t B = hashMachineModel(codegen::MachineModel::warpCell());
  EXPECT_EQ(A, B);
  EXPECT_NE(A, 0u);
}

TEST(CacheKeyTest, HexIs32LowercaseDigits) {
  CacheKey K{0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL};
  EXPECT_EQ(K.hex(), "0123456789abcdeffedcba9876543210");
}

//===----------------------------------------------------------------------===//
// Entry serialization
//===----------------------------------------------------------------------===//

TEST(CacheCodecTest, RoundTripsEverything) {
  auto M = check(helperModule("x * 2.0"));
  driver::FunctionResult R = compileFirst(*M);
  R.Diags.report(DiagKind::Note, SourceLoc(7, 3), "kept note");

  driver::FunctionResult Out;
  ASSERT_TRUE(decodeFunctionResult(encodeFunctionResult(R), Out));
  EXPECT_EQ(Out.SectionName, R.SectionName);
  EXPECT_EQ(Out.FunctionName, R.FunctionName);
  EXPECT_EQ(Out.Program.Image, R.Program.Image);
  EXPECT_EQ(Out.Program.Listing, R.Program.Listing);
  EXPECT_EQ(Out.Program.CodeWords, R.Program.CodeWords);
  EXPECT_EQ(Out.Metrics.IRInstrs, R.Metrics.IRInstrs);
  EXPECT_EQ(Out.Metrics.SourceLines, R.Metrics.SourceLines);
  EXPECT_EQ(Out.IRInstrsAfterOpt, R.IRInstrsAfterOpt);
  EXPECT_EQ(Out.LoopsPipelined, R.LoopsPipelined);
  EXPECT_EQ(Out.Diags.str(), R.Diags.str());
}

TEST(CacheCodecTest, RejectsTruncationAtEveryLength) {
  auto M = check(helperModule("x * 2.0"));
  std::vector<uint8_t> Bytes = encodeFunctionResult(compileFirst(*M));
  ASSERT_GT(Bytes.size(), 8u);
  // Every proper prefix must be rejected, never crash or half-decode.
  for (size_t Len = 0; Len < Bytes.size(); Len += 7) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    driver::FunctionResult Out;
    EXPECT_FALSE(decodeFunctionResult(Cut, Out)) << "prefix " << Len;
  }
  driver::FunctionResult Out;
  std::vector<uint8_t> Padded = Bytes;
  Padded.push_back(0); // trailing garbage is malformation too
  EXPECT_FALSE(decodeFunctionResult(Padded, Out));
}

//===----------------------------------------------------------------------===//
// Memory mode
//===----------------------------------------------------------------------===//

TEST(CompileCacheTest, MemoryHitAfterStore) {
  auto Ctx = CacheContext::forModel(codegen::MachineModel::warpCell());
  auto M = check(helperModule("x * 2.0"));
  const w2::SectionDecl *S = M->getSection(0);
  const w2::FunctionDecl *F = S->getFunction(0);

  CompileCache Cache(CacheMode::Memory, Ctx);
  EXPECT_FALSE(Cache.lookup(*S, *F).has_value());
  driver::FunctionResult R = compileFirst(*M);
  Cache.store(*S, *F, R);
  auto Hit = Cache.lookup(*S, *F);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Program.Image, R.Program.Image);

  CacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Hits, 1u);
  EXPECT_EQ(CS.Misses, 1u);
  EXPECT_EQ(CS.Stores, 1u);
  EXPECT_GT(CS.BytesStored, 0u);
}

TEST(CompileCacheTest, OffModeNeverHitsNorCounts) {
  auto Ctx = CacheContext::forModel(codegen::MachineModel::warpCell());
  auto M = check(helperModule("x * 2.0"));
  const w2::SectionDecl *S = M->getSection(0);
  const w2::FunctionDecl *F = S->getFunction(0);

  CompileCache Cache(CacheMode::Off, Ctx);
  Cache.store(*S, *F, compileFirst(*M));
  EXPECT_FALSE(Cache.lookup(*S, *F).has_value());
  EXPECT_EQ(Cache.stats().Hits, 0u);
  EXPECT_EQ(Cache.stats().Stores, 0u);
}

TEST(CompileCacheTest, MetricsRegistryReceivesCounters) {
  auto Ctx = CacheContext::forModel(codegen::MachineModel::warpCell());
  auto M = check(helperModule("x * 2.0"));
  const w2::SectionDecl *S = M->getSection(0);
  const w2::FunctionDecl *F = S->getFunction(0);

  obs::MetricsRegistry Metrics;
  CompileCache Cache(CacheMode::Memory, Ctx, "", &Metrics);
  Cache.lookup(*S, *F); // miss
  Cache.store(*S, *F, compileFirst(*M));
  Cache.lookup(*S, *F); // hit
  EXPECT_EQ(Metrics.counter("cache.misses"), 1.0);
  EXPECT_EQ(Metrics.counter("cache.hits"), 1.0);
  EXPECT_EQ(Metrics.counter("cache.stores"), 1.0);
}

//===----------------------------------------------------------------------===//
// Disk mode
//===----------------------------------------------------------------------===//

TEST(CompileCacheTest, DiskRoundTripAcrossInstances) {
  TempDir Dir;
  auto Ctx = CacheContext::forModel(codegen::MachineModel::warpCell());
  auto M = check(helperModule("x * 2.0"));
  const w2::SectionDecl *S = M->getSection(0);
  const w2::FunctionDecl *F = S->getFunction(0);
  driver::FunctionResult R = compileFirst(*M);

  {
    CompileCache Writer(CacheMode::Disk, Ctx, Dir.str());
    Writer.store(*S, *F, R);
    Writer.rememberModule(*M);
  }
  // A fresh process: only the directory survives.
  CompileCache Reader(CacheMode::Disk, Ctx, Dir.str());
  auto Hit = Reader.lookup(*S, *F);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Program.Image, R.Program.Image);
  EXPECT_EQ(Hit->Diags.str(), R.Diags.str());
  CacheStats CS = Reader.stats();
  EXPECT_EQ(CS.Hits, 1u);
  EXPECT_GT(CS.BytesLoaded, 0u);
  EXPECT_EQ(CS.CorruptEntries, 0u);
}

TEST(CompileCacheTest, TruncatedDiskEntryDegradesToMiss) {
  TempDir Dir;
  auto Ctx = CacheContext::forModel(codegen::MachineModel::warpCell());
  auto M = check(helperModule("x * 2.0"));
  const w2::SectionDecl *S = M->getSection(0);
  const w2::FunctionDecl *F = S->getFunction(0);

  std::string Path;
  {
    CompileCache Writer(CacheMode::Disk, Ctx, Dir.str());
    Writer.store(*S, *F, compileFirst(*M));
    Path = Writer.entryPath(keyOf(fingerprintFunction(*S, *F, Ctx)));
  }
  ASSERT_TRUE(std::filesystem::exists(Path));
  std::filesystem::resize_file(Path,
                               std::filesystem::file_size(Path) / 2);

  CompileCache Reader(CacheMode::Disk, Ctx, Dir.str());
  EXPECT_FALSE(Reader.lookup(*S, *F).has_value());
  CacheStats CS = Reader.stats();
  EXPECT_EQ(CS.Hits, 0u);
  EXPECT_EQ(CS.Misses, 1u);
  EXPECT_EQ(CS.CorruptEntries, 1u);
}

TEST(CompileCacheTest, BitFlippedDiskEntryDegradesToMiss) {
  TempDir Dir;
  auto Ctx = CacheContext::forModel(codegen::MachineModel::warpCell());
  auto M = check(helperModule("x * 2.0"));
  const w2::SectionDecl *S = M->getSection(0);
  const w2::FunctionDecl *F = S->getFunction(0);

  std::string Path;
  {
    CompileCache Writer(CacheMode::Disk, Ctx, Dir.str());
    Writer.store(*S, *F, compileFirst(*M));
    Path = Writer.entryPath(keyOf(fingerprintFunction(*S, *F, Ctx)));
  }
  // Flip one payload bit; the checksum must catch it.
  std::fstream File(Path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(File.good());
  File.seekg(0, std::ios::end);
  auto Size = File.tellg();
  File.seekp(static_cast<std::streamoff>(Size) - 3);
  char C;
  File.seekg(static_cast<std::streamoff>(Size) - 3);
  File.get(C);
  File.seekp(static_cast<std::streamoff>(Size) - 3);
  File.put(static_cast<char>(C ^ 0x40));
  File.close();

  CompileCache Reader(CacheMode::Disk, Ctx, Dir.str());
  EXPECT_FALSE(Reader.lookup(*S, *F).has_value());
  EXPECT_EQ(Reader.stats().CorruptEntries, 1u);
}

TEST(CompileCacheTest, ExplainNamesEveryReason) {
  TempDir Dir;
  auto Ctx = CacheContext::forModel(codegen::MachineModel::warpCell());
  auto Old = check(helperModule("x * 2.0"));

  {
    CompileCache Writer(CacheMode::Disk, Ctx, Dir.str());
    const w2::SectionDecl *S = Old->getSection(0);
    Writer.store(*S, *S->getFunction(0), compileFirst(*Old));
    Writer.rememberModule(*Old);
  }

  // Unchanged module: helper was stored (hit), f2 was never stored but
  // is in the manifest — an evicted entry reads as a rebuild.
  {
    CompileCache Reader(CacheMode::Disk, Ctx, Dir.str());
    auto Plan = Reader.explainModule(*Old);
    ASSERT_EQ(Plan.size(), 2u);
    EXPECT_EQ(Plan[0].FunctionName, "helper");
    EXPECT_EQ(Plan[0].Reason, RebuildReason::Hit);
    EXPECT_EQ(Plan[1].FunctionName, "f2");
    EXPECT_NE(Plan[1].Reason, RebuildReason::Hit);
  }

  // Edited helper: its own miss is a BodyEdit, f2's is a CalleeEdit.
  auto New = check(helperModule("x * 3.0"));
  {
    CompileCache Reader(CacheMode::Disk, Ctx, Dir.str());
    auto Plan = Reader.explainModule(*New);
    ASSERT_EQ(Plan.size(), 2u);
    EXPECT_EQ(Plan[0].Reason, RebuildReason::BodyEdit);
    EXPECT_EQ(Plan[1].Reason, RebuildReason::CalleeEdit);
  }

  // A module the manifest has never seen.
  {
    CompileCache Reader(CacheMode::Disk, Ctx, Dir.str());
    auto Fresh = check("module fresh;\nsection t cells 2 {\n"
                       "  function lone(x: int): int {\n"
                       "    return x + 1;\n  }\n}\n");
    auto Plan = Reader.explainModule(*Fresh);
    ASSERT_EQ(Plan.size(), 1u);
    EXPECT_EQ(Plan[0].Reason, RebuildReason::NewFunction);
  }
}

//===----------------------------------------------------------------------===//
// Acceptance: a warm recompile performs zero phase-2/3 compilations
//===----------------------------------------------------------------------===//

TEST(CompileCacheTest, WarmRecompileRunsZeroPhase23) {
  const unsigned N = 6;
  std::string Source =
      workload::makeTestModule(workload::FunctionSize::Large, N);
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  CompileCache Cache(CacheMode::Memory, CacheContext::forModel(MM));

  obs::MetricsRegistry Cold;
  driver::ModuleResult First =
      driver::compileModuleSequential(Source, MM, &Cold, &Cache);
  ASSERT_TRUE(First.Succeeded);
  EXPECT_EQ(Cold.counter("phase2.functions"), static_cast<double>(N));

  obs::MetricsRegistry Warm;
  driver::ModuleResult Second =
      driver::compileModuleSequential(Source, MM, &Warm, &Cache);
  ASSERT_TRUE(Second.Succeeded);
  // The acceptance property: every function replayed, none compiled.
  EXPECT_EQ(Warm.counter("phase2.functions"), 0.0);
  EXPECT_EQ(Cache.stats().Hits, static_cast<uint64_t>(N));
  EXPECT_EQ(Second.Image.Image, First.Image.Image);
  EXPECT_EQ(Second.Diags.str(), First.Diags.str());
}

TEST(CompileCacheTest, ThreadRunnerSkipsDispatchOnWarmCache) {
  const unsigned N = 8;
  std::string Source =
      workload::makeTestModule(workload::FunctionSize::Small, N);
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  CompileCache Cache(CacheMode::Memory, CacheContext::forModel(MM));

  parallel::ThreadRunResult Cold = parallel::compileModuleParallel(
      Source, MM, 4, driver::FaultPolicy(), nullptr, nullptr, nullptr,
      &Cache);
  ASSERT_TRUE(Cold.Module.Succeeded);
  EXPECT_EQ(Cold.CacheHits, 0u);
  EXPECT_EQ(Cold.CacheMisses, N);

  parallel::ThreadRunResult WarmRun = parallel::compileModuleParallel(
      Source, MM, 4, driver::FaultPolicy(), nullptr, nullptr, nullptr,
      &Cache);
  ASSERT_TRUE(WarmRun.Module.Succeeded);
  EXPECT_EQ(WarmRun.CacheHits, N);
  EXPECT_EQ(WarmRun.CacheMisses, 0u);
  EXPECT_EQ(WarmRun.Module.Image.Image, Cold.Module.Image.Image);
}

TEST(CompileCacheTest, WorkerCountCannotChangeWarmOrColdOutput) {
  std::string Source =
      workload::makeTestModule(workload::FunctionSize::Small, 6);
  codegen::MachineModel MM = codegen::MachineModel::warpCell();
  driver::ModuleResult Baseline = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Baseline.Succeeded);

  for (unsigned Workers : {1u, 4u, 16u}) {
    CompileCache Cache(CacheMode::Memory, CacheContext::forModel(MM));
    for (int Pass = 0; Pass != 2; ++Pass) { // cold, then warm
      parallel::ThreadRunResult Run = parallel::compileModuleParallel(
          Source, MM, Workers, driver::FaultPolicy(), nullptr, nullptr,
          nullptr, &Cache);
      ASSERT_TRUE(Run.Module.Succeeded);
      EXPECT_EQ(Run.Module.Image.Image, Baseline.Image.Image)
          << Workers << " workers, pass " << Pass;
      EXPECT_EQ(Run.Module.Diags.str(), Baseline.Diags.str())
          << Workers << " workers, pass " << Pass;
    }
  }
}
