//===- SimulationTest.cpp --------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "cluster/Simulation.h"

#include "cluster/HostSystem.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::cluster;

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation Sim;
  std::vector<int> Order;
  Sim.at(3.0, [&] { Order.push_back(3); });
  Sim.at(1.0, [&] { Order.push_back(1); });
  Sim.at(2.0, [&] { Order.push_back(2); });
  Sim.run();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], 1);
  EXPECT_EQ(Order[1], 2);
  EXPECT_EQ(Order[2], 3);
}

TEST(SimulationTest, TiesRunFIFO) {
  Simulation Sim;
  std::vector<int> Order;
  for (int I = 0; I != 5; ++I)
    Sim.at(1.0, [&Order, I] { Order.push_back(I); });
  Sim.run();
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(SimulationTest, InterleavedTiesStayFIFO) {
  // Same-instant events keep submission order even when interleaved with
  // other instants and scheduled from inside running events — the
  // property the fault engine's determinism rests on.
  Simulation Sim;
  std::vector<int> Order;
  Sim.at(2.0, [&] { Order.push_back(20); });
  Sim.at(1.0, [&] {
    Order.push_back(10);
    Sim.at(2.0, [&] { Order.push_back(22); }); // after the first t=2 event
  });
  Sim.at(2.0, [&] { Order.push_back(21); });
  Sim.at(1.0, [&] { Order.push_back(11); });
  Sim.run();
  ASSERT_EQ(Order.size(), 5u);
  EXPECT_EQ(Order, (std::vector<int>{10, 11, 20, 21, 22}));
}

TEST(SimulationTest, CancelledEventsDoNotRun) {
  Simulation Sim;
  bool Ran = false;
  Simulation::CancelToken Token =
      Sim.atCancellable(5.0, [&] { Ran = true; });
  Sim.at(1.0, [&] { *Token = true; });
  Sim.run();
  EXPECT_FALSE(Ran);
}

TEST(SimulationTest, CancelledEventsDoNotAdvanceTime) {
  // A canceled watchdog must not stretch the measured elapsed time: the
  // run ends at the last *executed* event.
  Simulation Sim;
  Simulation::CancelToken Token = Sim.atCancellable(100.0, [] {});
  Sim.at(2.0, [&] { *Token = true; });
  EXPECT_DOUBLE_EQ(Sim.run(), 2.0);
}

TEST(SimulationTest, UncancelledCancellableEventRuns) {
  Simulation Sim;
  double SawAt = -1;
  Simulation::CancelToken Token =
      Sim.atCancellable(4.0, [&] { SawAt = Sim.now(); });
  (void)Token;
  EXPECT_DOUBLE_EQ(Sim.run(), 4.0);
  EXPECT_DOUBLE_EQ(SawAt, 4.0);
}

TEST(SimulationTest, AfterSchedulesRelative) {
  Simulation Sim;
  double SawAt = -1;
  Sim.at(10.0, [&] { Sim.after(5.0, [&] { SawAt = Sim.now(); }); });
  EXPECT_DOUBLE_EQ(Sim.run(), 15.0);
  EXPECT_DOUBLE_EQ(SawAt, 15.0);
}

TEST(SimulationTest, RunReturnsFinalTime) {
  Simulation Sim;
  Sim.at(42.5, [] {});
  EXPECT_DOUBLE_EQ(Sim.run(), 42.5);
}

TEST(SerialResourceTest, BackToBackRequestsQueue) {
  Simulation Sim;
  SerialResource R(Sim, "disk");
  double End1 = -1, End2 = -1, Waited2 = -1;
  R.request(10.0, [&](double) { End1 = Sim.now(); });
  R.request(5.0, [&](double W) {
    End2 = Sim.now();
    Waited2 = W;
  });
  Sim.run();
  EXPECT_DOUBLE_EQ(End1, 10.0);
  EXPECT_DOUBLE_EQ(End2, 15.0);
  EXPECT_DOUBLE_EQ(Waited2, 10.0);
  EXPECT_DOUBLE_EQ(R.busySeconds(), 15.0);
  EXPECT_DOUBLE_EQ(R.waitSeconds(), 10.0);
  EXPECT_EQ(R.requestCount(), 2u);
}

TEST(SerialResourceTest, IdleResourceServesImmediately) {
  Simulation Sim;
  SerialResource R(Sim, "cpu");
  double Waited = -1;
  Sim.at(7.0, [&] { R.request(2.0, [&](double W) { Waited = W; }); });
  EXPECT_DOUBLE_EQ(Sim.run(), 9.0);
  EXPECT_DOUBLE_EQ(Waited, 0.0);
}

TEST(SerialResourceTest, ContentionStretchesService) {
  // With a contention factor (Ethernet collisions), a transfer issued
  // while another is in flight takes longer than its raw service time.
  Simulation NoContention;
  SerialResource Quiet(NoContention, "ether", 0.0);
  double QuietEnd = 0;
  Quiet.request(10.0, [&](double) {});
  Quiet.request(10.0, [&](double) { QuietEnd = NoContention.now(); });
  NoContention.run();

  Simulation Contended;
  SerialResource Busy(Contended, "ether", 0.5);
  double BusyEnd = 0;
  Busy.request(10.0, [&](double) {});
  Busy.request(10.0, [&](double) { BusyEnd = Contended.now(); });
  Contended.run();

  EXPECT_DOUBLE_EQ(QuietEnd, 20.0);
  EXPECT_GT(BusyEnd, QuietEnd);
}

TEST(JoinCounterTest, FiresAfterAllArrivals) {
  Simulation Sim;
  bool Fired = false;
  JoinCounter Join(3, [&] { Fired = true; });
  Join.arrive();
  Join.arrive();
  EXPECT_FALSE(Fired);
  Join.arrive();
  EXPECT_TRUE(Fired);
}

TEST(HostConfigTest, DefaultsAreSane) {
  HostConfig Host = HostConfig::sunNetwork1989();
  EXPECT_GE(Host.NumWorkstations, 10u);
  EXPECT_LE(Host.NumWorkstations, 15u);
  EXPECT_GT(Host.MemoryKB, Host.UsableMemoryKB);
  EXPECT_GT(Host.UsableMemoryKB, Host.LispCoreKB);
  EXPECT_GT(Host.EthernetKBps, 0.0);
  EXPECT_GT(Host.ServerKBps, 0.0);
}
