//===- WorkMetricsTest.cpp -------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/WorkMetrics.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::driver;

TEST(WorkMetricsTest, DefaultIsZero) {
  WorkMetrics M;
  EXPECT_EQ(M.phase1Work(), 0u);
  EXPECT_EQ(M.phase2Work(), 0u);
  EXPECT_EQ(M.phase3Work(), 0u);
  EXPECT_EQ(M.phase4Work(), 0u);
  EXPECT_EQ(M.allocationKB(), 0u);
  EXPECT_EQ(M.workingSetKB(), 0u);
}

TEST(WorkMetricsTest, AccumulationAddsCounters) {
  WorkMetrics A, B;
  A.Tokens = 10;
  A.IRInstrs = 5;
  A.LoopDepth = 2;
  B.Tokens = 20;
  B.IRInstrs = 7;
  B.LoopDepth = 4;
  A += B;
  EXPECT_EQ(A.Tokens, 30u);
  EXPECT_EQ(A.IRInstrs, 12u);
  // Depth takes the maximum, not the sum.
  EXPECT_EQ(A.LoopDepth, 4u);
}

TEST(WorkMetricsTest, PhaseWorkComposition) {
  WorkMetrics M;
  M.Tokens = 100;
  M.AstNodes = 50;
  M.SemaNodes = 25;
  EXPECT_EQ(M.phase1Work(), 175u);

  M.IRInstrs = 10;
  M.OptVisited = 20;
  M.OptTransforms = 5;
  M.DependenceWork = 3;
  EXPECT_EQ(M.phase2Work(), 10u + 20u + 20u + 3u);

  M.ListSchedAttempts = 7;
  M.ModuloSchedAttempts = 9;
  M.RecMIIWork = 128;
  M.RegAllocWork = 4;
  EXPECT_EQ(M.phase3Work(), 7u + 9u + 2u + 4u);
}

TEST(WorkMetricsTest, AllocationGrowsWithWork) {
  WorkMetrics Small, Large;
  Small.IRInstrs = 100;
  Large.IRInstrs = 10000;
  EXPECT_GT(Large.allocationKB(), Small.allocationKB());
  EXPECT_GT(Large.workingSetKB(), Small.workingSetKB());
}
