//===- RandomSweepTest.cpp -------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
// A broad randomized sweep: many generated modules must survive the whole
// pipeline with verifiable IR, valid schedules, and deterministic images.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::driver;

namespace {
const codegen::MachineModel MM = codegen::MachineModel::warpCell();
} // namespace

class RandomModuleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomModuleSweep, CompilesEndToEnd) {
  uint64_t Seed = GetParam();
  // Vary size class and function count by seed.
  workload::FunctionSize Size =
      workload::AllSizes[Seed % 3 + 1]; // small/medium/large
  unsigned Count = 1 + Seed % 3;
  std::string Source = workload::makeTestModule(Size, Count, Seed);

  ModuleResult First = compileModuleSequential(Source, MM);
  ASSERT_TRUE(First.Succeeded) << First.Diags.str();
  EXPECT_EQ(First.Functions.size(), Count);
  EXPECT_GT(First.Image.byteSize(), 0u);

  // Deterministic images.
  ModuleResult Second = compileModuleSequential(Source, MM);
  EXPECT_EQ(First.Image.Image, Second.Image.Image);

  // Every function produced code, registers fit the files, and the work
  // metrics are all populated.
  for (const FunctionResult &F : First.Functions) {
    EXPECT_GT(F.Program.CodeWords, 0u) << F.FunctionName;
    EXPECT_LE(F.Program.IntRegsUsed, MM.intRegs());
    EXPECT_LE(F.Program.FloatRegsUsed, MM.floatRegs());
    EXPECT_GT(F.Metrics.phase2Work(), 0u);
    EXPECT_GT(F.Metrics.phase3Work(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModuleSweep,
                         ::testing::Range<uint64_t>(100, 124));
