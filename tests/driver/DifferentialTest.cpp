//===- DifferentialTest.cpp ------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Differential testing of the parallel compiler against the sequential
// one: for a large population of generated modules, the parallel engine
// must hand the assembly phase the exact input the sequential compiler
// would — bit-identical download images — for every worker count and
// under every seeded failure schedule.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "parallel/ThreadRunner.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::driver;
using namespace warpc::parallel;

namespace {
const codegen::MachineModel MM = codegen::MachineModel::warpCell();
} // namespace

class DifferentialSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialSweep, ParallelMatchesSequentialEverywhere) {
  uint64_t Seed = GetParam();
  // Vary shape by seed: 1-8 functions of tiny or small size.
  workload::FunctionSize Size = Seed % 2 ? workload::FunctionSize::Small
                                         : workload::FunctionSize::Tiny;
  unsigned Count = 1 + Seed % 8;
  std::string Source = workload::makeTestModule(Size, Count, Seed);

  ModuleResult Seq = compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded) << Seq.Diags.str();

  // Clean runs across the worker grid.
  for (unsigned Workers : {1u, 2u, 4u, 8u}) {
    ThreadRunResult Par = compileModuleParallel(Source, MM, Workers);
    ASSERT_TRUE(Par.Module.Succeeded)
        << "seed=" << Seed << " workers=" << Workers;
    EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image)
        << "seed=" << Seed << " workers=" << Workers;
    EXPECT_EQ(Par.Module.Diags.str(), Seq.Diags.str())
        << "seed=" << Seed << " workers=" << Workers;
  }

  // Faulted runs: attempts vanish and results arrive corrupted under a
  // schedule derived from the module seed. Recovery must reproduce the
  // sequential image exactly.
  driver::FaultPolicy Policy;
  for (uint64_t FaultSeed : {Seed, Seed + 101}) {
    FaultInjection Inj = makeSeededInjection(FaultSeed, 0.35, 0.25);
    ThreadRunResult Par = compileModuleParallel(Source, MM, 4, Policy, &Inj);
    ASSERT_TRUE(Par.Module.Succeeded)
        << "seed=" << Seed << " fault-seed=" << FaultSeed;
    EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image)
        << "seed=" << Seed << " fault-seed=" << FaultSeed;
    EXPECT_EQ(Par.Module.Diags.str(), Seq.Diags.str())
        << "seed=" << Seed << " fault-seed=" << FaultSeed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep,
                         ::testing::Range<uint64_t>(200, 250));

TEST(DifferentialTest, UserProgramSurvivesHostileSchedules) {
  // One realistic module swept across many failure schedules, including
  // rates high enough that most functions need the master fallback.
  std::string Source = workload::makeUserProgram();
  ModuleResult Seq = compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  driver::FaultPolicy Policy;
  for (uint64_t FaultSeed = 1; FaultSeed <= 8; ++FaultSeed) {
    FaultInjection Inj =
        makeSeededInjection(FaultSeed, /*VanishProb=*/0.6, /*PoisonProb=*/0.3);
    ThreadRunResult Par = compileModuleParallel(Source, MM, 8, Policy, &Inj);
    ASSERT_TRUE(Par.Module.Succeeded) << "fault-seed=" << FaultSeed;
    EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image)
        << "fault-seed=" << FaultSeed;
  }
}

TEST(DifferentialTest, TightAttemptBudgetStillMatches) {
  // With a single distributed attempt allowed, any failure goes straight
  // to the master recompile path; the image must still match.
  std::string Source =
      workload::makeTestModule(workload::FunctionSize::Small, 6);
  ModuleResult Seq = compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  driver::FaultPolicy Policy;
  Policy.MaxAttempts = 1;
  FaultInjection Inj = makeSeededInjection(9, 0.5, 0.0);
  ThreadRunResult Par = compileModuleParallel(Source, MM, 4, Policy, &Inj);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.RetriesAttempted, 0u);
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
}
