//===- CompilerTest.cpp ----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::driver;

namespace {

const codegen::MachineModel MM = codegen::MachineModel::warpCell();

} // namespace

TEST(CompilerTest, ParsePhaseCollectsMetrics) {
  ParseResult R = parseAndCheck(workload::makeFigure1Program());
  ASSERT_TRUE(R.succeeded()) << R.Diags.str();
  EXPECT_GT(R.Metrics.Tokens, 0u);
  EXPECT_GT(R.Metrics.AstNodes, 0u);
  EXPECT_GT(R.Metrics.SemaNodes, 0u);
  EXPECT_GT(R.Metrics.SourceLines, 0u);
}

TEST(CompilerTest, ParseFailureAbortsEarly) {
  ParseResult R = parseAndCheck("module broken; section s { garbage }");
  EXPECT_FALSE(R.succeeded());
  EXPECT_FALSE(R.Module);
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(CompilerTest, SemanticFailureAbortsEarly) {
  ParseResult R = parseAndCheck(
      "module m; section s { function f(): int { return missing; } }");
  EXPECT_FALSE(R.succeeded());
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(CompilerTest, CompileFunctionProducesProgramAndMetrics) {
  ParseResult R = parseAndCheck(workload::makeFigure1Program());
  ASSERT_TRUE(R.succeeded());
  const w2::SectionDecl *S = R.Module->getSection(0);
  FunctionResult F = compileFunction(*S, *S->getFunction(0), MM);
  EXPECT_EQ(F.SectionName, S->getName());
  EXPECT_EQ(F.FunctionName, S->getFunction(0)->getName());
  EXPECT_GT(F.Metrics.IRInstrs, 0u);
  EXPECT_GT(F.Metrics.phase2Work(), 0u);
  EXPECT_GT(F.Metrics.phase3Work(), 0u);
  EXPECT_GT(F.Program.CodeWords, 0u);
  EXPECT_GT(F.IRInstrsAfterOpt, 0u);
}

TEST(CompilerTest, SequentialCompileEndToEnd) {
  ModuleResult R = compileModuleSequential(workload::makeFigure1Program(), MM);
  ASSERT_TRUE(R.Succeeded) << R.Diags.str();
  EXPECT_EQ(R.Functions.size(), 4u); // Figure 1: 1 + 3 functions
  EXPECT_EQ(R.Image.Sections.size(), 2u);
  EXPECT_GT(R.Image.byteSize(), 0u);
  EXPECT_GT(R.Phase4.CodeWords, 0u);
}

TEST(CompilerTest, SequentialCompileFailsOnBadModule) {
  ModuleResult R = compileModuleSequential(
      "module m; section s { function f(): float { return g(); } }", MM);
  EXPECT_FALSE(R.Succeeded);
  EXPECT_TRUE(R.Functions.empty());
}

TEST(CompilerTest, MetricsScaleWithFunctionSize) {
  ModuleResult Small = compileModuleSequential(
      workload::makeTestModule(workload::FunctionSize::Small, 1), MM);
  ModuleResult Large = compileModuleSequential(
      workload::makeTestModule(workload::FunctionSize::Large, 1), MM);
  ASSERT_TRUE(Small.Succeeded);
  ASSERT_TRUE(Large.Succeeded);
  const WorkMetrics &MS = Small.Functions[0].Metrics;
  const WorkMetrics &ML = Large.Functions[0].Metrics;
  EXPECT_GT(ML.IRInstrs, MS.IRInstrs);
  EXPECT_GT(ML.phase2Work(), MS.phase2Work());
  EXPECT_GT(ML.phase3Work(), MS.phase3Work());
  EXPECT_GT(ML.allocationKB(), MS.allocationKB());
  EXPECT_GT(ML.workingSetKB(), MS.workingSetKB());
}

TEST(CompilerTest, TotalMetricsSumPhases) {
  ModuleResult R = compileModuleSequential(
      workload::makeTestModule(workload::FunctionSize::Small, 2), MM);
  ASSERT_TRUE(R.Succeeded);
  WorkMetrics Total = R.totalMetrics();
  EXPECT_EQ(Total.Tokens, R.Phase1.Tokens);
  uint64_t FnInstrs = 0;
  for (const FunctionResult &F : R.Functions)
    FnInstrs += F.Metrics.IRInstrs;
  EXPECT_EQ(Total.IRInstrs, FnInstrs);
}

TEST(CompilerTest, DeterministicAcrossRuns) {
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Medium, 2, /*Seed=*/42);
  ModuleResult A = compileModuleSequential(Source, MM);
  ModuleResult B = compileModuleSequential(Source, MM);
  ASSERT_TRUE(A.Succeeded);
  ASSERT_TRUE(B.Succeeded);
  EXPECT_EQ(A.Image.Image, B.Image.Image);
  EXPECT_EQ(A.Functions[0].Metrics.phase3Work(),
            B.Functions[0].Metrics.phase3Work());
}

TEST(CompilerTest, PipelinesLoopsInWorkloads) {
  ModuleResult R = compileModuleSequential(
      workload::makeTestModule(workload::FunctionSize::Medium, 1), MM);
  ASSERT_TRUE(R.Succeeded);
  EXPECT_GT(R.Functions[0].LoopsConsidered, 0u);
  EXPECT_GT(R.Functions[0].LoopsPipelined, 0u);
}

TEST(CompilerTest, UserProgramCompiles) {
  ModuleResult R = compileModuleSequential(workload::makeUserProgram(), MM);
  ASSERT_TRUE(R.Succeeded) << R.Diags.str();
  EXPECT_EQ(R.Functions.size(), 9u);
  EXPECT_EQ(R.Image.Sections.size(), 3u);
}

TEST(CompilerTest, AllSizesAllCountsCompile) {
  for (auto Size : workload::AllSizes) {
    for (unsigned N : {1u, 2u}) {
      ModuleResult R =
          compileModuleSequential(workload::makeTestModule(Size, N), MM);
      EXPECT_TRUE(R.Succeeded)
          << workload::sizeName(Size) << " n=" << N << "\n" << R.Diags.str();
      EXPECT_EQ(R.Functions.size(), N);
    }
  }
}
