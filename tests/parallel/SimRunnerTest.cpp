//===- SimRunnerTest.cpp ---------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/SimRunner.h"

#include "support/Stats.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::parallel;
using workload::FunctionSize;

namespace {

const codegen::MachineModel MM = codegen::MachineModel::warpCell();
const cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
const CostModel Model = CostModel::lisp1989();

CompilationJob jobFor(FunctionSize Size, unsigned N) {
  auto Job = buildJob(workload::makeTestModule(Size, N), MM);
  EXPECT_TRUE(static_cast<bool>(Job));
  return Job.takeValue();
}

} // namespace

TEST(SimRunnerTest, SequentialElapsedCoversCpu) {
  CompilationJob Job = jobFor(FunctionSize::Small, 2);
  SeqStats Seq = simulateSequential(Job, Host, Model);
  EXPECT_GT(Seq.ElapsedSec, 0.0);
  EXPECT_GT(Seq.CpuSec, 0.0);
  EXPECT_GE(Seq.ElapsedSec, Seq.CpuSec);
  EXPECT_GT(Seq.StartupSec, 0.0);
}

TEST(SimRunnerTest, SequentialScalesWithFunctionCount) {
  SeqStats One = simulateSequential(jobFor(FunctionSize::Small, 1), Host,
                                    Model);
  SeqStats Four = simulateSequential(jobFor(FunctionSize::Small, 4), Host,
                                     Model);
  EXPECT_GT(Four.ElapsedSec, 2.5 * One.ElapsedSec);
}

TEST(SimRunnerTest, ParallelUsesAssignedProcessors) {
  CompilationJob Job = jobFor(FunctionSize::Medium, 4);
  Assignment A = scheduleFCFS(Job, Host.NumWorkstations);
  ParStats Par = simulateParallel(Job, A, Host, Model);
  EXPECT_EQ(Par.ProcessorsUsed, 4u);
  EXPECT_GT(Par.FnCpuSec, 0.0);
  EXPECT_GT(Par.perProcessorCpuSec(), 0.0);
  EXPECT_GT(Par.MasterCpuSec, 0.0);
  EXPECT_GT(Par.SectionCpuSec, 0.0);
  EXPECT_GT(Par.StartupSec, 0.0);
}

TEST(SimRunnerTest, DeterministicRuns) {
  CompilationJob Job = jobFor(FunctionSize::Medium, 2);
  Assignment A = scheduleFCFS(Job, Host.NumWorkstations);
  ParStats P1 = simulateParallel(Job, A, Host, Model);
  ParStats P2 = simulateParallel(Job, A, Host, Model);
  EXPECT_DOUBLE_EQ(P1.ElapsedSec, P2.ElapsedSec);
  SeqStats S1 = simulateSequential(Job, Host, Model);
  SeqStats S2 = simulateSequential(Job, Host, Model);
  EXPECT_DOUBLE_EQ(S1.ElapsedSec, S2.ElapsedSec);
}

TEST(SimRunnerTest, LargeFunctionsWinBigWithEightWorkers) {
  // The headline claim: "a speedup ranging from 3 to 6 using not more
  // than 9 processors" for typical (medium/large) programs.
  CompilationJob Job = jobFor(FunctionSize::Large, 8);
  SeqStats Seq = simulateSequential(Job, Host, Model);
  Assignment A = scheduleFCFS(Job, Host.NumWorkstations);
  ParStats Par = simulateParallel(Job, A, Host, Model);
  double Speedup = Seq.ElapsedSec / Par.ElapsedSec;
  EXPECT_GT(Speedup, 3.0);
  EXPECT_LT(Speedup, 8.0);
}

TEST(SimRunnerTest, TinyFunctionsDoNotWin) {
  // "for small functions, parallel compilation is of no use" (Fig. 3).
  CompilationJob Job = jobFor(FunctionSize::Tiny, 2);
  SeqStats Seq = simulateSequential(Job, Host, Model);
  Assignment A = scheduleFCFS(Job, Host.NumWorkstations);
  ParStats Par = simulateParallel(Job, A, Host, Model);
  EXPECT_LT(Seq.ElapsedSec / Par.ElapsedSec, 1.0);
}

TEST(SimRunnerTest, OverheadIdentityHolds) {
  CompilationJob Job = jobFor(FunctionSize::Medium, 4);
  SeqStats Seq = simulateSequential(Job, Host, Model);
  Assignment A = scheduleFCFS(Job, Host.NumWorkstations);
  ParStats Par = simulateParallel(Job, A, Host, Model);
  OverheadBreakdown Ov = computeOverheads(Seq, Par, 4);
  EXPECT_NEAR(Ov.TotalSec, Ov.ImplSec + Ov.SysSec, 1e-9);
  EXPECT_NEAR(Ov.TotalSec, Par.ElapsedSec - Seq.ElapsedSec / 4, 1e-9);
  EXPECT_DOUBLE_EQ(Ov.ParElapsedSec, Par.ElapsedSec);
}

TEST(SimRunnerTest, RelativeOverheadIncreasesWithFunctionCount) {
  // "in all tests the relative overhead increases with the number of
  // functions, regardless of their size" (Section 4.2.3).
  double Prev = -1e9;
  for (unsigned N : {1u, 2u, 4u, 8u}) {
    CompilationJob Job = jobFor(FunctionSize::Medium, N);
    SeqStats Seq = simulateSequential(Job, Host, Model);
    Assignment A = scheduleFCFS(Job, Host.NumWorkstations);
    ParStats Par = simulateParallel(Job, A, Host, Model);
    OverheadBreakdown Ov = computeOverheads(Seq, Par, N);
    EXPECT_GT(Ov.relTotalPct(), Prev) << "n=" << N;
    Prev = Ov.relTotalPct();
  }
}

TEST(SimRunnerTest, NegativeSystemOverheadForMediumAtOneFunction) {
  // Figure 9's surprise: the system overhead is negative when the number
  // of functions is small, because the sequential compiler GCs and swaps
  // over the whole module while each function master works on a small
  // subproblem.
  CompilationJob Job = jobFor(FunctionSize::Medium, 1);
  SeqStats Seq = simulateSequential(Job, Host, Model);
  Assignment A = scheduleFCFS(Job, Host.NumWorkstations);
  ParStats Par = simulateParallel(Job, A, Host, Model);
  OverheadBreakdown Ov = computeOverheads(Seq, Par, 1);
  EXPECT_LT(Ov.relSysPct(), 0.0);
}

TEST(SimRunnerTest, HugeSlowerThanLargeInSpeedup) {
  // Figure 6/7: speedup peaks at f_large and decreases for f_huge.
  auto SpeedupOf = [&](FunctionSize Size) {
    CompilationJob Job = jobFor(Size, 8);
    SeqStats Seq = simulateSequential(Job, Host, Model);
    Assignment A = scheduleFCFS(Job, Host.NumWorkstations);
    ParStats Par = simulateParallel(Job, A, Host, Model);
    return Seq.ElapsedSec / Par.ElapsedSec;
  };
  EXPECT_LT(SpeedupOf(FunctionSize::Huge), SpeedupOf(FunctionSize::Large));
}

TEST(SimRunnerTest, UserProgramMatchesPaperShape) {
  auto Job = buildJob(workload::makeUserProgram(), MM);
  ASSERT_TRUE(static_cast<bool>(Job));
  SeqStats Seq = simulateSequential(*Job, Host, Model);

  // Figure 11: ~2.16 at 2 processors (superlinear), ~4.5 at 9, and 5
  // processors nearly as good as 9.
  ParStats At2 = simulateParallel(*Job, scheduleBalanced(*Job, 2), Host,
                                  Model);
  double Speedup2 = Seq.ElapsedSec / At2.ElapsedSec;
  EXPECT_GT(Speedup2, 2.0);
  EXPECT_LT(Speedup2, 2.5);

  ParStats At5 = simulateParallel(*Job, scheduleBalanced(*Job, 5), Host,
                                  Model);
  ParStats At9 = simulateParallel(*Job, scheduleFCFS(*Job, 9), Host, Model);
  double Speedup5 = Seq.ElapsedSec / At5.ElapsedSec;
  double Speedup9 = Seq.ElapsedSec / At9.ElapsedSec;
  EXPECT_GT(Speedup9, 3.5);
  // "the speedup for 5 processors is almost as good as the speedup for 9".
  EXPECT_GT(Speedup5, Speedup9 * 0.9);
}

TEST(SimRunnerTest, MoreWorkersNeverHurtMuch) {
  CompilationJob Job = jobFor(FunctionSize::Large, 4);
  Assignment Few = scheduleFCFS(Job, 2);
  Assignment Many = scheduleFCFS(Job, Host.NumWorkstations);
  ParStats PFew = simulateParallel(Job, Few, Host, Model);
  ParStats PMany = simulateParallel(Job, Many, Host, Model);
  EXPECT_LE(PMany.ElapsedSec, PFew.ElapsedSec * 1.01);
}

//===----------------------------------------------------------------------===//
// Measurement jitter (the Section 4.2 methodology hooks)
//===----------------------------------------------------------------------===//

TEST(SimRunnerTest, JitterIsDeterministicPerSeed) {
  CompilationJob Job = jobFor(FunctionSize::Small, 2);
  cluster::HostConfig Jittery = Host;
  Jittery.JitterPct = 0.05;
  Jittery.JitterSeed = 7;
  SeqStats A = simulateSequential(Job, Jittery, Model);
  SeqStats B = simulateSequential(Job, Jittery, Model);
  EXPECT_DOUBLE_EQ(A.ElapsedSec, B.ElapsedSec);
}

TEST(SimRunnerTest, DifferentJitterSeedsDiffer) {
  CompilationJob Job = jobFor(FunctionSize::Small, 2);
  cluster::HostConfig J1 = Host, J2 = Host;
  J1.JitterPct = J2.JitterPct = 0.05;
  J1.JitterSeed = 1;
  J2.JitterSeed = 2;
  SeqStats A = simulateSequential(Job, J1, Model);
  SeqStats B = simulateSequential(Job, J2, Model);
  EXPECT_NE(A.ElapsedSec, B.ElapsedSec);
}

TEST(SimRunnerTest, JitterStaysWithinPaperTolerance) {
  // Five jittered runs of the same experiment deviate well under the
  // paper's 10% acceptance bound.
  CompilationJob Job = jobFor(FunctionSize::Medium, 4);
  Summary Runs;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    cluster::HostConfig Jittery = Host;
    Jittery.JitterPct = 0.04;
    Jittery.JitterSeed = Seed;
    Assignment A = scheduleFCFS(Job, Jittery.NumWorkstations);
    Runs.add(simulateParallel(Job, A, Jittery, Model).ElapsedSec);
  }
  EXPECT_LT(Runs.maxRelativeDeviation(), 0.10);
}

TEST(SimRunnerTest, ZeroJitterMatchesDeterministicRun) {
  CompilationJob Job = jobFor(FunctionSize::Small, 2);
  cluster::HostConfig NoJitter = Host;
  NoJitter.JitterPct = 0.0;
  NoJitter.JitterSeed = 12345; // must be inert
  SeqStats A = simulateSequential(Job, Host, Model);
  SeqStats B = simulateSequential(Job, NoJitter, Model);
  EXPECT_DOUBLE_EQ(A.ElapsedSec, B.ElapsedSec);
}

//===----------------------------------------------------------------------===//
// computeOverheads / ParStats edge cases
//===----------------------------------------------------------------------===//

TEST(SimRunnerTest, OverheadsWithZeroFunctionsAreAllZero) {
  // k == 0 has no ideal speedup to compare against; everything but the
  // recorded parallel elapsed must come back zero, not trap.
  SeqStats Seq;
  Seq.ElapsedSec = 100.0;
  ParStats Par;
  Par.ElapsedSec = 42.0;
  OverheadBreakdown Ov = computeOverheads(Seq, Par, 0);
  EXPECT_DOUBLE_EQ(Ov.ParElapsedSec, 42.0);
  EXPECT_DOUBLE_EQ(Ov.TotalSec, 0.0);
  EXPECT_DOUBLE_EQ(Ov.ImplSec, 0.0);
  EXPECT_DOUBLE_EQ(Ov.SysSec, 0.0);
  EXPECT_DOUBLE_EQ(Ov.relTotalPct(), 0.0);
  EXPECT_DOUBLE_EQ(Ov.relSysPct(), 0.0);
}

TEST(SimRunnerTest, OverheadsWithOneFunctionCompareWholeRuns) {
  // k == 1: the "ideal" parallel time is the sequential time itself, so
  // total overhead is simply the difference of the two elapsed times.
  SeqStats Seq;
  Seq.ElapsedSec = 100.0;
  ParStats Par;
  Par.ElapsedSec = 130.0;
  Par.MasterCpuSec = 12.0;
  Par.SectionCpuSec = 3.0;
  OverheadBreakdown Ov = computeOverheads(Seq, Par, 1);
  EXPECT_DOUBLE_EQ(Ov.TotalSec, 30.0);
  EXPECT_DOUBLE_EQ(Ov.ImplSec, 15.0);
  EXPECT_DOUBLE_EQ(Ov.SysSec, 15.0);
}

TEST(SimRunnerTest, NegativeSystemOverheadKeepsIdentity) {
  // SysSec is obtained by subtraction (Section 4.2.3) and the paper
  // reports it going negative for medium functions at small k; the
  // decomposition identity must survive that.
  SeqStats Seq;
  Seq.ElapsedSec = 400.0;
  ParStats Par;
  Par.ElapsedSec = 90.0; // better than the 4-fold ideal of 100s
  Par.MasterCpuSec = 8.0;
  OverheadBreakdown Ov = computeOverheads(Seq, Par, 4);
  EXPECT_LT(Ov.TotalSec, 0.0);
  EXPECT_LT(Ov.SysSec, 0.0);
  EXPECT_NEAR(Ov.TotalSec, Ov.ImplSec + Ov.SysSec, 1e-12);
}

TEST(SimRunnerTest, PerProcessorCpuWithZeroProcessorsIsZero) {
  ParStats Par;
  Par.FnCpuSec = 250.0;
  Par.ProcessorsUsed = 0; // e.g. an empty module
  EXPECT_DOUBLE_EQ(Par.perProcessorCpuSec(), 0.0);
}

//===----------------------------------------------------------------------===//
// Overhead identities across the whole experiment grid
//===----------------------------------------------------------------------===//

struct GridParam {
  FunctionSize Size;
  unsigned N;
};

class OverheadGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(OverheadGrid, DecompositionConsistent) {
  CompilationJob Job = jobFor(GetParam().Size, GetParam().N);
  SeqStats Seq = simulateSequential(Job, Host, Model);
  Assignment A = scheduleFCFS(Job, Host.NumWorkstations);
  ParStats Par = simulateParallel(Job, A, Host, Model);
  OverheadBreakdown Ov = computeOverheads(Seq, Par, GetParam().N);

  // total = impl + sys, and the relative forms agree.
  EXPECT_NEAR(Ov.TotalSec, Ov.ImplSec + Ov.SysSec, 1e-9);
  EXPECT_NEAR(Ov.relTotalPct(),
              100.0 * Ov.TotalSec / Par.ElapsedSec, 1e-9);
  // Implementation overhead is real nonnegative CPU time.
  EXPECT_GE(Ov.ImplSec, 0.0);
  // Elapsed covers the per-processor CPU time.
  EXPECT_GE(Par.ElapsedSec, Par.perProcessorCpuSec());
  // Resource usage is accounted.
  EXPECT_GT(Par.StartupSec, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OverheadGrid,
    ::testing::Values(GridParam{FunctionSize::Tiny, 1},
                      GridParam{FunctionSize::Tiny, 8},
                      GridParam{FunctionSize::Small, 2},
                      GridParam{FunctionSize::Small, 8},
                      GridParam{FunctionSize::Medium, 1},
                      GridParam{FunctionSize::Medium, 8},
                      GridParam{FunctionSize::Large, 4},
                      GridParam{FunctionSize::Large, 8},
                      GridParam{FunctionSize::Huge, 8}),
    [](const ::testing::TestParamInfo<GridParam> &Info) {
      return std::string(workload::sizeName(Info.param.Size)).substr(2) +
             "_n" + std::to_string(Info.param.N);
    });
