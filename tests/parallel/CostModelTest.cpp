//===- CostModelTest.cpp ---------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/CostModel.h"

#include "codegen/MachineModel.h"
#include "driver/Compiler.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::parallel;

namespace {

driver::WorkMetrics metricsFor(workload::FunctionSize Size) {
  auto MM = codegen::MachineModel::warpCell();
  auto R = driver::compileModuleSequential(
      workload::makeTestModule(Size, 1), MM);
  EXPECT_TRUE(R.Succeeded);
  return R.Functions[0].Metrics;
}

} // namespace

TEST(CostModelTest, CompileTimeOrderedBySize) {
  CostModel Model = CostModel::lisp1989();
  double Prev = 0;
  for (auto Size : workload::AllSizes) {
    double Sec = Model.compileSec(metricsFor(Size));
    EXPECT_GT(Sec, Prev) << workload::sizeName(Size);
    Prev = Sec;
  }
}

TEST(CostModelTest, PaperAnchorLargeFunctionAround20Minutes) {
  // Section 4.3: ~300-line functions compiled sequentially in 19-22
  // minutes. f_large (280 lines) should land in that neighborhood.
  CostModel Model = CostModel::lisp1989();
  double Sec = Model.compileSec(metricsFor(workload::FunctionSize::Large));
  EXPECT_GT(Sec, 15 * 60.0);
  EXPECT_LT(Sec, 26 * 60.0);
}

TEST(CostModelTest, ParseIsUnderFivePercent) {
  // Section 3.4: "a sequential compiler spends less than 5% of its time
  // on parsing".
  auto MM = codegen::MachineModel::warpCell();
  CostModel Model = CostModel::lisp1989();
  auto R = driver::compileModuleSequential(
      workload::makeTestModule(workload::FunctionSize::Large, 4), MM);
  ASSERT_TRUE(R.Succeeded);
  double Parse = Model.phase1Sec(R.Phase1);
  double Total = Parse;
  for (const auto &F : R.Functions)
    Total += Model.compileSec(F.Metrics);
  Total += Model.phase4Sec(R.Phase4);
  EXPECT_LT(Parse / Total, 0.05);
}

TEST(CostModelTest, TinyFunctionIsSeconds) {
  CostModel Model = CostModel::lisp1989();
  double Sec = Model.compileSec(metricsFor(workload::FunctionSize::Tiny));
  EXPECT_LT(Sec, 60.0);
  EXPECT_GT(Sec, 1.0);
}

TEST(CostModelTest, GCGrowsWithLiveData) {
  CostModel Model = CostModel::lisp1989();
  cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
  LispStep Lean{100.0, 5000.0, 100.0, 1.0};
  LispStep Fat{100.0, 5000.0, 8000.0, 1.0};
  StepCost LeanCost = Model.evaluate(Lean, Host);
  StepCost FatCost = Model.evaluate(Fat, Host);
  EXPECT_GT(FatCost.GCSec, LeanCost.GCSec);
  EXPECT_DOUBLE_EQ(FatCost.CpuSec, LeanCost.CpuSec);
}

TEST(CostModelTest, NoPagingWhenWorkingSetFits) {
  CostModel Model = CostModel::lisp1989();
  cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
  LispStep Small{10.0, 100.0, 100.0, 1.0};
  EXPECT_DOUBLE_EQ(Model.evaluate(Small, Host).PageTrafficKB, 0.0);
}

TEST(CostModelTest, PagingKicksInAboveMemory) {
  CostModel Model = CostModel::lisp1989();
  cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
  double HugeLive = Host.UsableMemoryKB; // core + this >> usable
  LispStep Thrashing{100.0, 1000.0, HugeLive, 1.0};
  EXPECT_GT(Model.evaluate(Thrashing, Host).PageTrafficKB, 0.0);
}

TEST(CostModelTest, SequentialLocalityReducesPaging) {
  CostModel Model = CostModel::lisp1989();
  cluster::HostConfig Host = cluster::HostConfig::sunNetwork1989();
  LispStep Par{100.0, 1000.0, Host.UsableMemoryKB, 1.0};
  LispStep Seq = Par;
  Seq.PageScale = Model.SeqPagingLocality;
  EXPECT_LT(Model.evaluate(Seq, Host).PageTrafficKB,
            Model.evaluate(Par, Host).PageTrafficKB);
}

TEST(CostModelTest, CMasterCodeIsFast) {
  CostModel Model = CostModel::lisp1989();
  // "these processes start up much faster and require fewer resources
  // than a Common Lisp process" — C master bookkeeping is sub-second.
  EXPECT_LT(Model.cMasterSec(10000.0), 1.0);
}
