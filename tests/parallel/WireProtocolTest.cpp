//===- WireProtocolTest.cpp ------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Robustness tests for the master/worker wire protocol. The contract
// under test: any malformed input — truncated frames, garbage headers,
// oversized payloads, flipped bytes — degrades to NeedMore or a sticky
// Corrupt verdict the master turns into a retriable worker loss. Nothing
// here may crash, hang, or yield a frame that was not sent.
//
//===----------------------------------------------------------------------===//

#include "parallel/WireProtocol.h"

#include "support/PRNG.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::parallel::wire;

namespace {

std::vector<uint8_t> helloFrame(uint32_t WorkerIndex = 3) {
  HelloMsg M;
  M.Pid = 4242;
  M.WorkerIndex = WorkerIndex;
  M.NumFunctions = 7;
  return encodeFrame(FrameType::Hello, encodeHello(M));
}

/// Feeds \p Bytes in chunks of \p Chunk and drains every decodable frame.
std::vector<Frame> drain(FrameDecoder &D, const std::vector<uint8_t> &Bytes,
                         size_t Chunk) {
  std::vector<Frame> Out;
  for (size_t I = 0; I < Bytes.size(); I += Chunk) {
    D.feed(Bytes.data() + I, std::min(Chunk, Bytes.size() - I));
    Frame F;
    while (D.next(F) == DecodeStatus::Ready)
      Out.push_back(F);
  }
  return Out;
}

} // namespace

TEST(WireProtocolTest, MessageCodecsRoundTrip) {
  HelloMsg H;
  H.Pid = 123456;
  H.WorkerIndex = 9;
  H.NumFunctions = 31;
  HelloMsg H2;
  ASSERT_TRUE(decodeHello(encodeHello(H), H2));
  EXPECT_EQ(H2.Pid, H.Pid);
  EXPECT_EQ(H2.Protocol, ProtocolVersion);
  EXPECT_EQ(H2.WorkerIndex, H.WorkerIndex);
  EXPECT_EQ(H2.NumFunctions, H.NumFunctions);

  InitMsg I;
  I.WorkerIndex = 2;
  I.ModuleSource = "module m;\nsection s cells 2 { }\n";
  I.Faults.Seed = 77;
  I.Faults.KillProb = 0.25;
  I.Faults.StallProb = 0.5;
  I.Faults.CorruptProb = 0.125;
  I.Faults.StallSec = 3.5;
  I.Faults.MaxFaultAttempt = 1;
  InitMsg I2;
  ASSERT_TRUE(decodeInit(encodeInit(I), I2));
  EXPECT_EQ(I2.WorkerIndex, I.WorkerIndex);
  EXPECT_EQ(I2.ModuleSource, I.ModuleSource);
  EXPECT_EQ(I2.Faults.Seed, I.Faults.Seed);
  EXPECT_EQ(I2.Faults.KillProb, I.Faults.KillProb);
  EXPECT_EQ(I2.Faults.StallProb, I.Faults.StallProb);
  EXPECT_EQ(I2.Faults.CorruptProb, I.Faults.CorruptProb);
  EXPECT_EQ(I2.Faults.StallSec, I.Faults.StallSec);
  EXPECT_EQ(I2.Faults.MaxFaultAttempt, I.Faults.MaxFaultAttempt);

  TaskMsg T;
  T.TaskIndex = 11;
  T.Section = 1;
  T.Function = 4;
  T.Attempt = 2;
  T.Speculative = 1;
  TaskMsg T2;
  ASSERT_TRUE(decodeTask(encodeTask(T), T2));
  EXPECT_EQ(T2.TaskIndex, T.TaskIndex);
  EXPECT_EQ(T2.Section, T.Section);
  EXPECT_EQ(T2.Function, T.Function);
  EXPECT_EQ(T2.Attempt, T.Attempt);
  EXPECT_EQ(T2.Speculative, T.Speculative);

  ResultMsg R;
  R.TaskIndex = 5;
  R.Attempt = 3;
  R.ResultBytes = {1, 2, 3, 0, 255, 7};
  ResultMsg R2;
  ASSERT_TRUE(decodeResult(encodeResult(R), R2));
  EXPECT_EQ(R2.TaskIndex, R.TaskIndex);
  EXPECT_EQ(R2.Attempt, R.Attempt);
  EXPECT_EQ(R2.ResultBytes, R.ResultBytes);

  WorkerErrorMsg W;
  W.Message = "phase 1 failed in worker";
  WorkerErrorMsg W2;
  ASSERT_TRUE(decodeWorkerError(encodeWorkerError(W), W2));
  EXPECT_EQ(W2.Message, W.Message);
}

TEST(WireProtocolTest, TruncatedPayloadsFailCleanly) {
  // Chopped message payloads must decode to false, not read out of
  // bounds — with one deliberate exception per codec: the prefix that is
  // exactly a pre-trace-context encoding decodes successfully (that is
  // the version-tolerance contract; see LegacyPayloadsStillDecode).
  // Hello's legacy boundary sits before the two f64 timestamp echoes.
  std::vector<uint8_t> Full = encodeHello(HelloMsg());
  const size_t LegacySize = Full.size() - 2 * sizeof(double);
  for (size_t N = 0; N < Full.size(); ++N) {
    HelloMsg M;
    std::vector<uint8_t> Cut(Full.begin(), Full.begin() + N);
    EXPECT_EQ(decodeHello(Cut, M), N == LegacySize) << "prefix " << N;
  }
  std::vector<uint8_t> Extra = Full;
  Extra.push_back(0);
  HelloMsg M;
  EXPECT_FALSE(decodeHello(Extra, M)) << "trailing garbage accepted";
}

TEST(WireProtocolTest, TraceContextFieldsRoundTrip) {
  HelloMsg H;
  H.InitRecvSec = 1.5;
  H.HelloSendSec = 1.75;
  HelloMsg H2;
  ASSERT_TRUE(decodeHello(encodeHello(H), H2));
  EXPECT_EQ(H2.InitRecvSec, H.InitRecvSec);
  EXPECT_EQ(H2.HelloSendSec, H.HelloSendSec);

  InitMsg I;
  I.ModuleSource = "module m;\n";
  I.TraceId = 0xFEEDFACEull;
  I.ParentSpanId = 42;
  InitMsg I2;
  ASSERT_TRUE(decodeInit(encodeInit(I), I2));
  EXPECT_EQ(I2.TraceId, I.TraceId);
  EXPECT_EQ(I2.ParentSpanId, I.ParentSpanId);

  TaskMsg T;
  T.TaskIndex = 3;
  T.ParentSpanId = 99;
  TaskMsg T2;
  ASSERT_TRUE(decodeTask(encodeTask(T), T2));
  EXPECT_EQ(T2.ParentSpanId, T.ParentSpanId);

  ResultMsg R;
  R.TaskIndex = 5;
  R.ResultBytes = {1, 2, 3};
  R.ShardBytes = {9, 8, 7, 6};
  ResultMsg R2;
  ASSERT_TRUE(decodeResult(encodeResult(R), R2));
  EXPECT_EQ(R2.ResultBytes, R.ResultBytes);
  EXPECT_EQ(R2.ShardBytes, R.ShardBytes);
}

TEST(WireProtocolTest, LegacyPayloadsStillDecode) {
  // A peer built before distributed tracing encodes the same leading
  // fields and simply stops early. Chopping the new trailing fields off
  // a current encoding reproduces that byte stream exactly; it must
  // decode with the trace fields left at their "not tracing" defaults.
  {
    HelloMsg M;
    M.Pid = 777;
    M.InitRecvSec = 5.0; // Must NOT survive the legacy chop.
    std::vector<uint8_t> Bytes = encodeHello(M);
    Bytes.resize(Bytes.size() - 2 * sizeof(double));
    HelloMsg Out;
    ASSERT_TRUE(decodeHello(Bytes, Out));
    EXPECT_EQ(Out.Pid, 777u);
    EXPECT_EQ(Out.InitRecvSec, 0.0);
    EXPECT_EQ(Out.HelloSendSec, 0.0);
  }
  {
    InitMsg M;
    M.ModuleSource = "module m;\n";
    M.TraceId = 1234;
    std::vector<uint8_t> Bytes = encodeInit(M);
    Bytes.resize(Bytes.size() - 2 * sizeof(uint64_t));
    InitMsg Out;
    ASSERT_TRUE(decodeInit(Bytes, Out));
    EXPECT_EQ(Out.ModuleSource, M.ModuleSource);
    EXPECT_EQ(Out.TraceId, 0u);
    EXPECT_EQ(Out.ParentSpanId, 0u);
  }
  {
    TaskMsg M;
    M.TaskIndex = 7;
    M.ParentSpanId = 55;
    std::vector<uint8_t> Bytes = encodeTask(M);
    Bytes.resize(Bytes.size() - sizeof(uint64_t));
    TaskMsg Out;
    ASSERT_TRUE(decodeTask(Bytes, Out));
    EXPECT_EQ(Out.TaskIndex, 7u);
    EXPECT_EQ(Out.ParentSpanId, 0u);
  }
  {
    ResultMsg M;
    M.TaskIndex = 2;
    M.ResultBytes = {1, 2, 3};
    std::vector<uint8_t> Bytes = encodeResult(M);
    Bytes.resize(Bytes.size() - sizeof(uint64_t)); // Empty trailing bytes().
    ResultMsg Out;
    ASSERT_TRUE(decodeResult(Bytes, Out));
    EXPECT_EQ(Out.ResultBytes, M.ResultBytes);
    EXPECT_TRUE(Out.ShardBytes.empty());
  }
}

TEST(WireProtocolTest, FramesSurviveArbitraryChunking) {
  std::vector<uint8_t> Stream;
  for (uint32_t W = 0; W != 5; ++W) {
    std::vector<uint8_t> F = helloFrame(W);
    Stream.insert(Stream.end(), F.begin(), F.end());
  }
  for (size_t Chunk : {size_t(1), size_t(2), size_t(3), size_t(7),
                       Stream.size()}) {
    FrameDecoder D;
    std::vector<Frame> Frames = drain(D, Stream, Chunk);
    ASSERT_EQ(Frames.size(), 5u) << "chunk=" << Chunk;
    for (uint32_t W = 0; W != 5; ++W) {
      HelloMsg M;
      ASSERT_TRUE(decodeHello(Frames[W].Payload, M));
      EXPECT_EQ(M.WorkerIndex, W);
    }
    EXPECT_FALSE(D.corrupt());
    EXPECT_EQ(D.bufferedBytes(), 0u);
  }
}

TEST(WireProtocolTest, TruncatedFrameIsNeedMoreForever) {
  // A frame cut mid-payload never completes and never corrupts: the
  // master resolves it through the worker's EOF or watchdog, neither of
  // which this decoder can (or should) observe.
  std::vector<uint8_t> Whole = helloFrame();
  for (size_t Cut = 1; Cut < Whole.size(); ++Cut) {
    FrameDecoder D;
    D.feed(Whole.data(), Cut);
    Frame F;
    EXPECT_EQ(D.next(F), DecodeStatus::NeedMore) << "cut=" << Cut;
    EXPECT_EQ(D.next(F), DecodeStatus::NeedMore) << "cut=" << Cut;
    EXPECT_FALSE(D.corrupt());
    EXPECT_EQ(D.bufferedBytes(), Cut);
  }
}

TEST(WireProtocolTest, GarbageHeaderIsStickyCorrupt) {
  FrameDecoder D;
  const uint8_t Junk[] = {'G', 'E', 'T', ' ', '/', ' ', 'H', 'T', 'T', 'P'};
  D.feed(Junk, sizeof(Junk));
  Frame F;
  EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
  EXPECT_TRUE(D.corrupt());
  EXPECT_NE(D.error(), "");

  // Feeding a perfectly valid frame afterwards cannot resurrect the
  // stream: there is no resync marker, so trust is gone for good.
  std::vector<uint8_t> Good = helloFrame();
  D.feed(Good.data(), Good.size());
  EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
}

TEST(WireProtocolTest, BadVersionTypeAndLengthAreCorrupt) {
  std::vector<uint8_t> Good = helloFrame();

  {
    std::vector<uint8_t> Bad = Good;
    Bad[4] = ProtocolVersion + 1; // version byte
    FrameDecoder D;
    D.feed(Bad.data(), Bad.size());
    Frame F;
    EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
  }
  {
    std::vector<uint8_t> Bad = Good;
    Bad[5] = MaxFrameType + 1; // type byte
    FrameDecoder D;
    D.feed(Bad.data(), Bad.size());
    Frame F;
    EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
  }
  {
    std::vector<uint8_t> Bad = Good;
    Bad[5] = 0; // type 0 is reserved-invalid
    FrameDecoder D;
    D.feed(Bad.data(), Bad.size());
    Frame F;
    EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
  }
}

TEST(WireProtocolTest, OversizedPayloadRejectedWithoutBuffering) {
  // A length field beyond MaxFramePayload must be rejected from the
  // header alone — the decoder must not wait for (or try to buffer) the
  // 4 GiB the header promises.
  BinaryWriter W;
  W.u32(FrameMagic);
  W.u8(ProtocolVersion);
  W.u8(static_cast<uint8_t>(FrameType::Result));
  W.u32(MaxFramePayload + 1);
  std::vector<uint8_t> Header = W.take();
  FrameDecoder D;
  D.feed(Header.data(), Header.size());
  Frame F;
  EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
  EXPECT_TRUE(D.corrupt());
}

TEST(WireProtocolTest, FlippedPayloadByteFailsChecksum) {
  std::vector<uint8_t> Bytes = helloFrame();
  for (size_t I = FrameHeaderSize; I < Bytes.size(); ++I) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[I] ^= 0x01;
    FrameDecoder D;
    D.feed(Bad.data(), Bad.size());
    Frame F;
    EXPECT_EQ(D.next(F), DecodeStatus::Corrupt) << "flip at " << I;
  }
}

TEST(WireProtocolTest, EmptyPayloadFrameRoundTrips) {
  std::vector<uint8_t> Bytes = encodeFrame(FrameType::Shutdown, {});
  EXPECT_EQ(Bytes.size(), FrameHeaderSize + FrameTrailerSize);
  FrameDecoder D;
  D.feed(Bytes.data(), Bytes.size());
  Frame F;
  ASSERT_EQ(D.next(F), DecodeStatus::Ready);
  EXPECT_EQ(F.Type, FrameType::Shutdown);
  EXPECT_TRUE(F.Payload.empty());
}

TEST(WireProtocolTest, LongStreamStaysBounded) {
  // The compaction path: after thousands of frames through one decoder,
  // nothing leaks and everything decodes (a resident pool's connection
  // lives for a whole compilation).
  FrameDecoder D;
  Frame F;
  std::vector<uint8_t> One = helloFrame();
  for (int I = 0; I != 5000; ++I) {
    D.feed(One.data(), One.size());
    ASSERT_EQ(D.next(F), DecodeStatus::Ready) << "frame " << I;
    ASSERT_EQ(D.next(F), DecodeStatus::NeedMore);
  }
  EXPECT_EQ(D.bufferedBytes(), 0u);
}

TEST(WireProtocolTest, FuzzedStreamsNeverYieldPhantomFrames) {
  // Pure-noise streams: the decoder must terminate on every feed (no
  // hang), and any frame it does yield must carry a verified checksum —
  // overwhelmingly unlikely from noise, so expect none.
  PRNG Rng(20260807);
  for (int Trial = 0; Trial != 200; ++Trial) {
    FrameDecoder D;
    size_t Len = 1 + Rng.below(512);
    std::vector<uint8_t> Noise(Len);
    for (uint8_t &B : Noise)
      B = static_cast<uint8_t>(Rng.below(256));
    Frame F;
    size_t Yielded = 0;
    for (size_t I = 0; I < Noise.size();) {
      size_t Chunk = 1 + Rng.below(63);
      Chunk = std::min(Chunk, Noise.size() - I);
      D.feed(Noise.data() + I, Chunk);
      I += Chunk;
      while (D.next(F) == DecodeStatus::Ready)
        ++Yielded;
      if (D.corrupt())
        break;
    }
    EXPECT_EQ(Yielded, 0u) << "trial " << Trial;
  }
}

TEST(WireProtocolTest, FuzzedMutationsOfValidStreamsDegradeToCorrupt) {
  // Random single-byte mutations of a valid multi-frame stream: every
  // outcome must be a subset of the original frames followed by NeedMore
  // or Corrupt — never a crash, never a frame with altered content.
  PRNG Rng(7191989);
  std::vector<uint8_t> Stream;
  for (uint32_t W = 0; W != 4; ++W) {
    std::vector<uint8_t> F = helloFrame(W);
    Stream.insert(Stream.end(), F.begin(), F.end());
  }
  for (int Trial = 0; Trial != 500; ++Trial) {
    std::vector<uint8_t> Bad = Stream;
    Bad[Rng.below(Bad.size())] ^= static_cast<uint8_t>(1 + Rng.below(255));
    FrameDecoder D;
    std::vector<Frame> Frames = drain(D, Bad, 1 + Rng.below(16));
    ASSERT_LE(Frames.size(), 4u);
    for (size_t I = 0; I != Frames.size(); ++I) {
      HelloMsg M;
      // Any frame that surfaced must be one of the originals, intact.
      ASSERT_TRUE(decodeHello(Frames[I].Payload, M)) << "trial " << Trial;
      EXPECT_EQ(M.Pid, 4242u);
      EXPECT_EQ(M.NumFunctions, 7u);
    }
  }
}
