//===- JobTest.cpp ---------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/Job.h"

#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::parallel;

namespace {
const codegen::MachineModel MM = codegen::MachineModel::warpCell();
} // namespace

TEST(JobTest, BuildsFromValidModule) {
  auto Job = buildJob(workload::makeFigure1Program(), MM);
  ASSERT_TRUE(static_cast<bool>(Job));
  EXPECT_EQ(Job->ModuleName, "s");
  ASSERT_EQ(Job->Sections.size(), 2u);
  EXPECT_EQ(Job->Sections[0].size(), 1u);
  EXPECT_EQ(Job->Sections[1].size(), 3u);
  EXPECT_EQ(Job->numFunctions(), 4u);
}

TEST(JobTest, FailsOnBadModule) {
  auto Job = buildJob("module m; section s { function f(): int { return x; "
                      "} }",
                      MM);
  EXPECT_FALSE(static_cast<bool>(Job));
  EXPECT_NE(Job.getError().message().find("failed to compile"),
            std::string::npos);
}

TEST(JobTest, TasksCarryMetricsAndOutputs) {
  auto Job = buildJob(workload::makeTestModule(
                          workload::FunctionSize::Small, 2),
                      MM);
  ASSERT_TRUE(static_cast<bool>(Job));
  for (const auto &Section : Job->Sections)
    for (const FunctionTask &T : Section) {
      EXPECT_GT(T.Metrics.phase2Work(), 0u);
      EXPECT_GT(T.Metrics.phase3Work(), 0u);
      EXPECT_GE(T.OutputKB, 1.0);
      EXPECT_FALSE(T.FunctionName.empty());
      EXPECT_EQ(T.SectionName, "main");
    }
  EXPECT_GT(Job->Phase1.phase1Work(), 0u);
  EXPECT_GT(Job->Phase4.phase4Work(), 0u);
  EXPECT_GT(Job->parseResidentKB(), 0.0);
}

TEST(JobTest, FunctionOrderMatchesDeclaration) {
  auto Job = buildJob(workload::makeUserProgram(), MM);
  ASSERT_TRUE(static_cast<bool>(Job));
  ASSERT_EQ(Job->Sections.size(), 3u);
  EXPECT_EQ(Job->Sections[0][0].FunctionName, "phase1_f1");
  EXPECT_EQ(Job->Sections[2][2].FunctionName, "phase3_f3");
}
