//===- ThreadRunnerTest.cpp ------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/ThreadRunner.h"

#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::parallel;

namespace {
const codegen::MachineModel MM = codegen::MachineModel::warpCell();
} // namespace

TEST(ThreadRunnerTest, ProducesSameImageAsSequential) {
  // The parallel compiler must produce "the same input for the assembly
  // phase as the sequential compiler" — and therefore the same download
  // module, bit for bit.
  std::string Source = workload::makeFigure1Program();
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);
  for (unsigned Workers : {1u, 2u, 4u}) {
    ThreadRunResult Par = compileModuleParallel(Source, MM, Workers);
    ASSERT_TRUE(Par.Module.Succeeded) << "workers=" << Workers;
    EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image)
        << "workers=" << Workers;
  }
}

TEST(ThreadRunnerTest, ErrorsAbortBeforeParallelPhase) {
  ThreadRunResult R = compileModuleParallel(
      "module m; section s { function f(): int { return y; } }", MM, 4);
  EXPECT_FALSE(R.Module.Succeeded);
  EXPECT_EQ(R.WorkersUsed, 0u);
  EXPECT_TRUE(R.Module.Diags.hasErrors());
}

TEST(ThreadRunnerTest, WorkerCountCappedByFunctions) {
  ThreadRunResult R = compileModuleParallel(
      workload::makeTestModule(workload::FunctionSize::Tiny, 2), MM, 16);
  ASSERT_TRUE(R.Module.Succeeded);
  EXPECT_EQ(R.WorkersUsed, 2u);
}

TEST(ThreadRunnerTest, PhaseTimesAccounted) {
  ThreadRunResult R = compileModuleParallel(
      workload::makeTestModule(workload::FunctionSize::Small, 4), MM, 4);
  ASSERT_TRUE(R.Module.Succeeded);
  EXPECT_GT(R.ElapsedSec, 0.0);
  EXPECT_GE(R.ElapsedSec,
            R.Phase1Sec + R.ParallelPhaseSec + R.Phase4Sec - 1e-6);
}

TEST(ThreadRunnerTest, DiagnosticsCombinedInDeclarationOrder) {
  // Function masters may produce warnings; the section masters combine
  // them in declaration order regardless of completion order.
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Medium, 4);
  ThreadRunResult A = compileModuleParallel(Source, MM, 4);
  ThreadRunResult B = compileModuleParallel(Source, MM, 1);
  ASSERT_TRUE(A.Module.Succeeded);
  ASSERT_TRUE(B.Module.Succeeded);
  EXPECT_EQ(A.Module.Diags.str(), B.Module.Diags.str());
}

TEST(ThreadRunnerTest, UserProgramParallelCompiles) {
  ThreadRunResult R =
      compileModuleParallel(workload::makeUserProgram(), MM, 9);
  ASSERT_TRUE(R.Module.Succeeded) << R.Module.Diags.str();
  EXPECT_EQ(R.Module.Functions.size(), 9u);
  EXPECT_EQ(R.WorkersUsed, 9u);
}

//===----------------------------------------------------------------------===//
// Failure injection: dying function masters (Section 5.2)
//===----------------------------------------------------------------------===//

TEST(ThreadRunnerTest, RecoversFromDyingFunctionMasters) {
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Small, 6);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  // Kill every other function master.
  FailureInjector Kill = [](size_t Index) { return Index % 2 == 0; };
  ThreadRunResult Par = compileModuleParallel(Source, MM, 4, &Kill);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.FunctionsRecovered, 3u);
  // Recovery reproduces the exact same module image.
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
}

TEST(ThreadRunnerTest, RecoversFromTotalWorkerLoss) {
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Tiny, 4);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  FailureInjector KillAll = [](size_t) { return true; };
  ThreadRunResult Par = compileModuleParallel(Source, MM, 4, &KillAll);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.FunctionsRecovered, 4u);
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
}

TEST(ThreadRunnerTest, NoSpuriousRecoveryWithoutFailures) {
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Tiny, 4);
  ThreadRunResult Par = compileModuleParallel(Source, MM, 4);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.FunctionsRecovered, 0u);
}
