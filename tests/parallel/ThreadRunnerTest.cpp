//===- ThreadRunnerTest.cpp ------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/ThreadRunner.h"

#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::parallel;

namespace {
const codegen::MachineModel MM = codegen::MachineModel::warpCell();
} // namespace

TEST(ThreadRunnerTest, ProducesSameImageAsSequential) {
  // The parallel compiler must produce "the same input for the assembly
  // phase as the sequential compiler" — and therefore the same download
  // module, bit for bit.
  std::string Source = workload::makeFigure1Program();
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);
  for (unsigned Workers : {1u, 2u, 4u}) {
    ThreadRunResult Par = compileModuleParallel(Source, MM, Workers);
    ASSERT_TRUE(Par.Module.Succeeded) << "workers=" << Workers;
    EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image)
        << "workers=" << Workers;
  }
}

TEST(ThreadRunnerTest, ErrorsAbortBeforeParallelPhase) {
  ThreadRunResult R = compileModuleParallel(
      "module m; section s { function f(): int { return y; } }", MM, 4);
  EXPECT_FALSE(R.Module.Succeeded);
  EXPECT_EQ(R.WorkersUsed, 0u);
  EXPECT_TRUE(R.Module.Diags.hasErrors());
}

TEST(ThreadRunnerTest, WorkerCountCappedByFunctions) {
  ThreadRunResult R = compileModuleParallel(
      workload::makeTestModule(workload::FunctionSize::Tiny, 2), MM, 16);
  ASSERT_TRUE(R.Module.Succeeded);
  EXPECT_EQ(R.WorkersUsed, 2u);
}

TEST(ThreadRunnerTest, PhaseTimesAccounted) {
  ThreadRunResult R = compileModuleParallel(
      workload::makeTestModule(workload::FunctionSize::Small, 4), MM, 4);
  ASSERT_TRUE(R.Module.Succeeded);
  EXPECT_GT(R.ElapsedSec, 0.0);
  EXPECT_GE(R.ElapsedSec,
            R.Phase1Sec + R.ParallelPhaseSec + R.Phase4Sec - 1e-6);
}

TEST(ThreadRunnerTest, DiagnosticsCombinedInDeclarationOrder) {
  // Function masters may produce warnings; the section masters combine
  // them in declaration order regardless of completion order.
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Medium, 4);
  ThreadRunResult A = compileModuleParallel(Source, MM, 4);
  ThreadRunResult B = compileModuleParallel(Source, MM, 1);
  ASSERT_TRUE(A.Module.Succeeded);
  ASSERT_TRUE(B.Module.Succeeded);
  EXPECT_EQ(A.Module.Diags.str(), B.Module.Diags.str());
}

TEST(ThreadRunnerTest, UserProgramParallelCompiles) {
  ThreadRunResult R =
      compileModuleParallel(workload::makeUserProgram(), MM, 9);
  ASSERT_TRUE(R.Module.Succeeded) << R.Module.Diags.str();
  EXPECT_EQ(R.Module.Functions.size(), 9u);
  EXPECT_EQ(R.WorkersUsed, 9u);
}

//===----------------------------------------------------------------------===//
// Failure injection: dying function masters (Section 5.2)
//===----------------------------------------------------------------------===//

TEST(ThreadRunnerTest, RecoversFromDyingFunctionMasters) {
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Small, 6);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  // Kill every other function master.
  FailureInjector Kill = [](size_t Index) { return Index % 2 == 0; };
  ThreadRunResult Par = compileModuleParallel(Source, MM, 4, &Kill);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.FunctionsRecovered, 3u);
  // Recovery reproduces the exact same module image.
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
}

TEST(ThreadRunnerTest, RecoversFromTotalWorkerLoss) {
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Tiny, 4);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  FailureInjector KillAll = [](size_t) { return true; };
  ThreadRunResult Par = compileModuleParallel(Source, MM, 4, &KillAll);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.FunctionsRecovered, 4u);
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
}

TEST(ThreadRunnerTest, NoSpuriousRecoveryWithoutFailures) {
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Tiny, 4);
  ThreadRunResult Par = compileModuleParallel(Source, MM, 4);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.FunctionsRecovered, 0u);
  EXPECT_EQ(Par.RetriesAttempted, 0u);
  EXPECT_EQ(Par.PoisonedResultsDetected, 0u);
}

//===----------------------------------------------------------------------===//
// Fault policy: retry rounds, poisoned results, determinism
//===----------------------------------------------------------------------===//

TEST(ThreadRunnerTest, RetryRoundRecoversVanishedAttempts) {
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Small, 6);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  // The first attempt of every even function vanishes; the retry round
  // succeeds, so the master never recompiles anything itself.
  FaultInjection Inj;
  Inj.Vanish = [](size_t Fn, unsigned Attempt) {
    return Attempt == 1 && Fn % 2 == 0;
  };
  driver::FaultPolicy Policy;
  ThreadRunResult Par = compileModuleParallel(Source, MM, 4, Policy, &Inj);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.RetriesAttempted, 3u);
  EXPECT_EQ(Par.FunctionsReassigned, 3u);
  EXPECT_EQ(Par.FunctionsRecovered, 0u);
  EXPECT_EQ(Par.PoisonedResultsDetected, 0u);
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
}

TEST(ThreadRunnerTest, PoisonedResultsDetectedAndRetried) {
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Tiny, 4);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  // Every first attempt writes a truncated result file; validation must
  // reject all four and the retry round must replace them.
  FaultInjection Inj;
  Inj.Poison = [](size_t, unsigned Attempt) { return Attempt == 1; };
  driver::FaultPolicy Policy;
  ThreadRunResult Par = compileModuleParallel(Source, MM, 4, Policy, &Inj);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.PoisonedResultsDetected, 4u);
  EXPECT_EQ(Par.RetriesAttempted, 4u);
  EXPECT_EQ(Par.FunctionsReassigned, 4u);
  EXPECT_EQ(Par.FunctionsRecovered, 0u);
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
}

TEST(ThreadRunnerTest, AttemptCapFallsBackToMasterRecompile) {
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Tiny, 4);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);

  // Every distributed attempt vanishes: after MaxAttempts rounds the
  // master recompiles all functions itself (injection never applies to
  // the master's own work).
  FaultInjection Inj;
  Inj.Vanish = [](size_t, unsigned) { return true; };
  driver::FaultPolicy Policy;
  Policy.MaxAttempts = 2;
  ThreadRunResult Par = compileModuleParallel(Source, MM, 4, Policy, &Inj);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.RetriesAttempted, 4u); // one retry round for 4 functions
  EXPECT_EQ(Par.FunctionsReassigned, 0u);
  EXPECT_EQ(Par.FunctionsRecovered, 4u);
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
}

TEST(ThreadRunnerTest, SeededInjectionIsDeterministic) {
  std::string Source = workload::makeTestModule(
      workload::FunctionSize::Small, 8);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  // Failure decisions are pure functions of (seed, function, attempt), so
  // two runs agree on every counter no matter how threads interleave.
  FaultInjection Inj = makeSeededInjection(7, 0.3, 0.2);
  driver::FaultPolicy Policy;
  ThreadRunResult A = compileModuleParallel(Source, MM, 4, Policy, &Inj);
  ThreadRunResult B = compileModuleParallel(Source, MM, 4, Policy, &Inj);
  ASSERT_TRUE(A.Module.Succeeded);
  ASSERT_TRUE(B.Module.Succeeded);
  EXPECT_EQ(A.RetriesAttempted, B.RetriesAttempted);
  EXPECT_EQ(A.PoisonedResultsDetected, B.PoisonedResultsDetected);
  EXPECT_EQ(A.FunctionsReassigned, B.FunctionsReassigned);
  EXPECT_EQ(A.FunctionsRecovered, B.FunctionsRecovered);
  EXPECT_EQ(A.Module.Image.Image, Seq.Image.Image);
  EXPECT_EQ(B.Module.Image.Image, Seq.Image.Image);
}

TEST(ThreadRunnerTest, SurvivesThirdOfFunctionMastersDying) {
  // The acceptance bar: with ceil(k/3) of the function masters dying on
  // their first attempt, the run completes bit-identical to sequential.
  std::string Source = workload::makeUserProgram();
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  FaultInjection Inj;
  Inj.Vanish = [](size_t Fn, unsigned Attempt) {
    return Attempt == 1 && Fn % 3 == 0; // 3 of the 9 user functions
  };
  driver::FaultPolicy Policy;
  ThreadRunResult Par = compileModuleParallel(Source, MM, 8, Policy, &Inj);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.FunctionsReassigned, 3u);
  EXPECT_EQ(Par.FunctionsRecovered, 0u);
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
}
