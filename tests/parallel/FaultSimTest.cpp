//===- FaultSimTest.cpp ----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Failure-matrix tests for the simulated fault-tolerant runner: hosts
// crashing at every phase boundary, permanent host loss, total message
// loss, slow hosts, and determinism of the whole event stream under a
// fixed seed and fault plan.
//
//===----------------------------------------------------------------------===//

#include "parallel/SimRunner.h"

#include "obs/ChromeTrace.h"
#include "obs/TraceRecorder.h"
#include "workload/Generator.h"

#include <functional>
#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::parallel;
using cluster::FaultPlan;
using obs::EventKind;
using obs::SpanEvent;
using obs::TraceSession;
using workload::FunctionSize;

namespace {

const codegen::MachineModel MM = codegen::MachineModel::warpCell();
const cluster::HostConfig CleanHost = cluster::HostConfig::sunNetwork1989();
const CostModel Model = CostModel::lisp1989();

CompilationJob jobFor(FunctionSize Size, unsigned N) {
  auto Job = buildJob(workload::makeTestModule(Size, N), MM);
  EXPECT_TRUE(static_cast<bool>(Job));
  return Job.takeValue();
}

/// First event of kind \p K satisfying \p Pred, or null.
const SpanEvent *
findEvent(const TraceSession &S, EventKind K,
          const std::function<bool(const SpanEvent &)> &Pred =
              [](const SpanEvent &) { return true; }) {
  for (const SpanEvent &E : S.Events)
    if (E.Kind == K && Pred(E))
      return &E;
  return nullptr;
}

/// Interned id of the function named \p Name (-1 if absent).
int32_t fnId(const TraceSession &S, const std::string &Name) {
  for (size_t I = 0; I != S.FunctionNames.size(); ++I)
    if (S.FunctionNames[I] == Name)
      return static_cast<int32_t>(I);
  ADD_FAILURE() << "no function named '" << Name << "' in the trace";
  return -1;
}

/// Runs the job under \p Plan; when \p Out is non-null the run is traced
/// and the finished session stored there.
ParStats runWithPlan(const CompilationJob &Job, const Assignment &Assign,
                     const FaultPlan &Plan, const driver::FaultPolicy &Policy,
                     TraceSession *Out = nullptr) {
  cluster::HostConfig Host = CleanHost;
  Host.Faults = Plan;
  if (!Out)
    return simulateParallel(Job, Assign, Host, Model, nullptr, Policy);
  obs::TraceRecorder Rec(obs::ClockDomain::Simulated);
  ParStats Stats = simulateParallel(Job, Assign, Host, Model, &Rec, Policy);
  *Out = Rec.finish();
  return Stats;
}

/// Traced clean run.
ParStats runClean(const CompilationJob &Job, const Assignment &Assign,
                  TraceSession &Out) {
  obs::TraceRecorder Rec(obs::ClockDomain::Simulated);
  ParStats Stats = simulateParallel(Job, Assign, CleanHost, Model, &Rec);
  Out = Rec.finish();
  return Stats;
}

} // namespace

//===----------------------------------------------------------------------===//
// Crash matrix: every host at every phase boundary
//===----------------------------------------------------------------------===//

TEST(FaultSimTest, CrashMatrixAlwaysCompletes) {
  CompilationJob Job = jobFor(FunctionSize::Medium, 4);
  Assignment Assign = scheduleFCFS(Job, CleanHost.NumWorkstations);
  SeqStats Seq = simulateSequential(Job, CleanHost, Model);

  // Phase boundaries from a clean traced run. FCFS puts function fN+1 on
  // workstation N, so each host's own mid-compile instant is the midpoint
  // of its compile span.
  TraceSession Clean;
  ParStats Base = runClean(Job, Assign, Clean);
  const SpanEvent *Parse = findEvent(Clean, EventKind::SpanParse);
  const SpanEvent *Combine = findEvent(Clean, EventKind::SpanCombine);
  ASSERT_NE(Parse, nullptr);
  ASSERT_NE(Combine, nullptr);
  double FanOutSec = Parse->endSec();
  double CombineSec = Combine->TSec;

  driver::FaultPolicy Policy;
  Policy.SpeculateStragglers = false; // recovery via the watchdog only

  for (unsigned W = 1; W <= 3; ++W) {
    int32_t Fn = fnId(Clean, "f" + std::to_string(W + 1));
    const SpanEvent *Compile =
        findEvent(Clean, EventKind::SpanCompile, [&](const SpanEvent &E) {
          return E.Host == static_cast<int32_t>(W) && E.Function == Fn;
        });
    ASSERT_NE(Compile, nullptr) << "ws" << W;
    double MidSec = (Compile->TSec + Compile->endSec()) / 2;
    enum ElapsedVs { Any, Slower, Same };
    struct Boundary {
      const char *Name;
      double AtSec;
      unsigned ExpectReassigned;
      ElapsedVs Elapsed;
    } Boundaries[] = {
        // Down at fork time: the master re-places the function instantly;
        // the replacement host sees different server contention, so the
        // run may finish on either side of the baseline.
        {"parse fan-out", FanOutSec, 1, Any},
        // Lost mid-compile: only the watchdog notices, much later.
        {"mid function master", MidSec, 1, Slower},
        // After the result is in: the crash costs nothing at all.
        {"section combine", CombineSec, 0, Same},
    };
    for (const Boundary &B : Boundaries) {
      FaultPlan Plan;
      Plan.hostMut(W).CrashAtSec = B.AtSec; // never reboots
      ParStats Par = runWithPlan(Job, Assign, Plan, Policy);
      SCOPED_TRACE(std::string("ws") + std::to_string(W) + " crash at " +
                   B.Name);
      EXPECT_EQ(Par.FunctionsCompleted, 4u);
      EXPECT_EQ(Par.FunctionsReassigned, B.ExpectReassigned);
      EXPECT_EQ(Par.MasterRecompiles, 0u);
      if (B.Elapsed == Slower) {
        EXPECT_GT(Par.ElapsedSec, Base.ElapsedSec);
      } else if (B.Elapsed == Same) {
        EXPECT_DOUBLE_EQ(Par.ElapsedSec, Base.ElapsedSec);
      }
      if (B.ExpectReassigned > 0) {
        EXPECT_GT(Par.RetriesSec, 0.0);
      }
      // The Section 4.2.3 decomposition stays internally consistent.
      OverheadBreakdown Ov = computeOverheads(Seq, Par, 4);
      EXPECT_NEAR(Ov.TotalSec, Ov.ImplSec + Ov.SysSec, 1e-9);
      EXPECT_DOUBLE_EQ(Ov.ParElapsedSec, Par.ElapsedSec);
    }
  }
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(FaultSimTest, SameSeedAndPlanGiveIdenticalTraces) {
  CompilationJob Job = jobFor(FunctionSize::Small, 6);
  Assignment Assign = scheduleFCFS(Job, CleanHost.NumWorkstations);

  FaultPlan Plan;
  Plan.hostMut(1).CrashAtSec = 200;
  Plan.hostMut(1).RebootAfterSec = 300;
  Plan.hostMut(2).SlowdownFactor = 4.0;
  Plan.MessageLossProb = 0.2;
  Plan.Seed = 42;
  driver::FaultPolicy Policy;

  TraceSession TraceA, TraceB;
  ParStats A = runWithPlan(Job, Assign, Plan, Policy, &TraceA);
  ParStats B = runWithPlan(Job, Assign, Plan, Policy, &TraceB);

  EXPECT_DOUBLE_EQ(A.ElapsedSec, B.ElapsedSec);
  EXPECT_DOUBLE_EQ(A.RetriesSec, B.RetriesSec);
  EXPECT_EQ(A.FunctionsReassigned, B.FunctionsReassigned);
  EXPECT_EQ(A.TimeoutsFired, B.TimeoutsFired);
  EXPECT_EQ(A.SpeculativeWins, B.SpeculativeWins);
  ASSERT_EQ(TraceA.Events.size(), TraceB.Events.size());
  for (size_t I = 0; I != TraceA.Events.size(); ++I) {
    const SpanEvent &EA = TraceA.Events[I];
    const SpanEvent &EB = TraceB.Events[I];
    EXPECT_DOUBLE_EQ(EA.TSec, EB.TSec) << "event " << I;
    EXPECT_EQ(EA.Kind, EB.Kind) << "event " << I;
    EXPECT_EQ(EA.Host, EB.Host) << "event " << I;
    EXPECT_EQ(EA.Function, EB.Function) << "event " << I;
    EXPECT_EQ(EA.Attempt, EB.Attempt) << "event " << I;
  }
  // The (TSec, Seq) tie-break makes the order a deterministic total
  // order, so two runs serialize to byte-identical trace files.
  EXPECT_EQ(obs::writeChromeTrace(TraceA), obs::writeChromeTrace(TraceB));
}

TEST(FaultSimTest, ArmedButInertPlanMatchesLegacySchedule) {
  // A plan whose only crash lies far beyond the end of the run arms all
  // the watchdog machinery but never trips it; the event schedule must be
  // bit-identical to a run with no fault plan at all.
  CompilationJob Job = jobFor(FunctionSize::Medium, 4);
  Assignment Assign = scheduleFCFS(Job, CleanHost.NumWorkstations);

  TraceSession Legacy;
  ParStats Base = runClean(Job, Assign, Legacy);

  FaultPlan Inert;
  Inert.hostMut(1).CrashAtSec = 1e9;
  driver::FaultPolicy Policy;
  Policy.SpeculateStragglers = false;
  TraceSession Armed;
  ParStats Par = runWithPlan(Job, Assign, Inert, Policy, &Armed);

  EXPECT_DOUBLE_EQ(Par.ElapsedSec, Base.ElapsedSec);
  EXPECT_EQ(Par.TimeoutsFired, 0u);
  EXPECT_EQ(Par.FunctionsReassigned, 0u);
  EXPECT_DOUBLE_EQ(Par.RetriesSec, 0.0);
  ASSERT_EQ(Armed.Events.size(), Legacy.Events.size());
  for (size_t I = 0; I != Legacy.Events.size(); ++I) {
    EXPECT_DOUBLE_EQ(Armed.Events[I].TSec, Legacy.Events[I].TSec)
        << "event " << I;
    EXPECT_EQ(Armed.Events[I].Kind, Legacy.Events[I].Kind) << "event " << I;
    EXPECT_EQ(Armed.Events[I].Host, Legacy.Events[I].Host) << "event " << I;
  }
}

//===----------------------------------------------------------------------===//
// Acceptance: a third of the masters die, one host never returns
//===----------------------------------------------------------------------===//

TEST(FaultSimTest, ThirdOfMastersDyingPlusPermanentHostLoss) {
  auto JobOr = buildJob(workload::makeUserProgram(), MM);
  ASSERT_TRUE(static_cast<bool>(JobOr));
  CompilationJob Job = JobOr.takeValue();
  const unsigned K = Job.numFunctions();
  ASSERT_EQ(K, 9u);
  Assignment Assign = scheduleFCFS(Job, CleanHost.NumWorkstations);

  TraceSession Clean;
  runClean(Job, Assign, Clean);

  // ceil(9/3) = 3 function masters die mid-compile; a fourth host is down
  // before the fan-out and never comes back.
  FaultPlan Plan;
  for (unsigned W = 1; W <= 3; ++W) {
    const SpanEvent *Compile =
        findEvent(Clean, EventKind::SpanCompile, [&](const SpanEvent &E) {
          return E.Host == static_cast<int32_t>(W);
        });
    ASSERT_NE(Compile, nullptr) << "ws" << W;
    ASSERT_GT(Compile->DurSec, 0.0) << "ws" << W;
    Plan.hostMut(W).CrashAtSec = Compile->TSec + Compile->DurSec / 2;
  }
  Plan.hostMut(4).CrashAtSec = 0.0;

  driver::FaultPolicy Policy;
  Policy.SpeculateStragglers = false;
  ParStats Par = runWithPlan(Job, Assign, Plan, Policy);

  EXPECT_EQ(Par.FunctionsCompleted, K);
  EXPECT_EQ(Par.FunctionsReassigned, 4u); // 3 lost mid-compile + 1 placement
  EXPECT_EQ(Par.MasterRecompiles, 0u);
  EXPECT_GE(Par.TimeoutsFired, 3u);
  EXPECT_GT(Par.RetriesSec, 0.0);

  SeqStats Seq = simulateSequential(Job, CleanHost, Model);
  OverheadBreakdown Ov = computeOverheads(Seq, Par, K);
  EXPECT_NEAR(Ov.TotalSec, Ov.ImplSec + Ov.SysSec, 1e-9);
}

//===----------------------------------------------------------------------===//
// Message loss and slow hosts
//===----------------------------------------------------------------------===//

TEST(FaultSimTest, TotalMessageLossFallsBackToMasterRecompiles) {
  // Every completion message from a remote host is dropped. With a single
  // distributed attempt allowed, each remote function times out once and
  // ends as a master-local recompile. (f1 runs on the master's own
  // workstation; its local hand-off cannot be lost. Retries can also be
  // re-placed there, which is why MaxAttempts is pinned to 1 here.)
  CompilationJob Job = jobFor(FunctionSize::Small, 4);
  Assignment Assign = scheduleFCFS(Job, CleanHost.NumWorkstations);

  FaultPlan Plan;
  Plan.MessageLossProb = 1.0;
  Plan.Seed = 3;
  driver::FaultPolicy Policy;
  Policy.SpeculateStragglers = false;
  Policy.MaxAttempts = 1;
  TraceSession Trace;
  ParStats Par = runWithPlan(Job, Assign, Plan, Policy, &Trace);

  EXPECT_EQ(Par.FunctionsCompleted, 4u);
  EXPECT_EQ(Par.MasterRecompiles, 3u);
  EXPECT_EQ(Par.TimeoutsFired, 3u);
  EXPECT_GT(Par.RetriesSec, 0.0);

  // The typed stream records the same story: three dropped completion
  // messages, three watchdog expirations, three master recompiles whose
  // accepted results carry the attempt-0 fallback marker.
  unsigned Lost = 0, Timeouts = 0, Recompiles = 0, FallbackWins = 0;
  for (const SpanEvent &E : Trace.Events) {
    Lost += E.Kind == EventKind::MessageLost;
    Timeouts += E.Kind == EventKind::TimeoutFired;
    Recompiles += E.Kind == EventKind::SpanMasterRecompile;
    FallbackWins += E.Kind == EventKind::FunctionDone && E.Attempt == 0;
  }
  EXPECT_EQ(Lost, 3u);
  EXPECT_EQ(Timeouts, 3u);
  EXPECT_EQ(Recompiles, 3u);
  EXPECT_EQ(FallbackWins, 3u);
}

TEST(FaultSimTest, SpeculationBeatsWatchdogOnSlowHost) {
  // A host degraded far beyond the timeout factor: with speculation the
  // duplicate is launched at the soft deadline (half the watchdog), so
  // the run finishes strictly earlier than with the watchdog alone.
  CompilationJob Job = jobFor(FunctionSize::Small, 4);
  Assignment Assign = scheduleFCFS(Job, CleanHost.NumWorkstations);

  FaultPlan Plan;
  Plan.hostMut(2).SlowdownFactor = 10.0;

  driver::FaultPolicy SpecOn;
  ParStats WithSpec = runWithPlan(Job, Assign, Plan, SpecOn);

  driver::FaultPolicy SpecOff;
  SpecOff.SpeculateStragglers = false;
  ParStats WithoutSpec = runWithPlan(Job, Assign, Plan, SpecOff);

  EXPECT_EQ(WithSpec.FunctionsCompleted, 4u);
  EXPECT_EQ(WithoutSpec.FunctionsCompleted, 4u);
  EXPECT_EQ(WithSpec.SpeculativeWins, 1u);
  EXPECT_LT(WithSpec.ElapsedSec, WithoutSpec.ElapsedSec);
}
