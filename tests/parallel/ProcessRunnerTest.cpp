//===- ProcessRunnerTest.cpp -----------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Unit coverage for the process engine: worker-pool lifecycle, real
// SIGKILL recovery, stalled workers under the watchdog, orphan reaping,
// straggler speculation, and the worker-count independence of the
// deterministic statistics.
//
// The warp-worker binary path comes from the WARPC_WORKER_BIN compile
// definition (set by tests/CMakeLists.txt to the built tool).
//
//===----------------------------------------------------------------------===//

#include "parallel/ProcessRunner.h"

#include "driver/Compiler.h"
#include "obs/TraceRecorder.h"
#include "support/Timer.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace warpc;
using namespace warpc::parallel;

namespace {

const codegen::MachineModel MM = codegen::MachineModel::warpCell();

std::string workerBin() {
#ifdef WARPC_WORKER_BIN
  return WARPC_WORKER_BIN;
#else
  return defaultWorkerBinary();
#endif
}

ProcessRunnerConfig baseConfig() {
  ProcessRunnerConfig C;
  C.WorkerBinary = workerBin();
  return C;
}

/// Pumps worker \p W until a frame of \p Want arrives or \p TimeoutSec
/// passes. Returns true and leaves the frame in \p Out on success.
bool waitFrame(ProcessPool &Pool, unsigned W, wire::FrameType Want,
               wire::Frame &Out, double TimeoutSec = 20.0) {
  Timer T;
  while (T.seconds() < TimeoutSec) {
    bool Live = Pool.pump(W);
    while (true) {
      wire::DecodeStatus St = Pool.decoder(W).next(Out);
      if (St == wire::DecodeStatus::Ready) {
        if (Out.Type == Want)
          return true;
        continue; // skip earlier frames (e.g. Hello before Result)
      }
      if (St == wire::DecodeStatus::Corrupt)
        return false;
      break;
    }
    if (!Live)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

unsigned countFunctions(const std::string &Source) {
  driver::ParseResult P = driver::parseAndCheck(Source);
  unsigned N = 0;
  for (size_t S = 0; S != P.Module->numSections(); ++S)
    N += static_cast<unsigned>(P.Module->getSection(S)->numFunctions());
  return N;
}

} // namespace

TEST(ProcessPoolTest, SpawnHandshakeAndGracefulShutdown) {
  std::string Source = workload::makeTestModule(workload::FunctionSize::Tiny,
                                                /*Count=*/2, /*Seed=*/1);
  ProcessPool Pool(workerBin());
  wire::InitMsg Init;
  Init.WorkerIndex = 0;
  Init.ModuleSource = Source;
  int W = Pool.spawn(Init);
  ASSERT_GE(W, 0) << "worker did not spawn; binary=" << workerBin();
  EXPECT_TRUE(Pool.alive(W));
  EXPECT_GT(Pool.pid(W), 0);
  EXPECT_EQ(Pool.spawned(), 1u);

  // The Hello proves the worker parsed the shipped source and sees the
  // same function count the master would.
  wire::Frame F;
  ASSERT_TRUE(waitFrame(Pool, W, wire::FrameType::Hello, F));
  wire::HelloMsg Hello;
  ASSERT_TRUE(wire::decodeHello(F.Payload, Hello));
  EXPECT_EQ(Hello.Pid, static_cast<uint64_t>(Pool.pid(W)));
  EXPECT_EQ(Hello.Protocol, wire::ProtocolVersion);
  EXPECT_EQ(Hello.NumFunctions, countFunctions(Source));

  // It compiles a task on request...
  wire::TaskMsg Task;
  Task.TaskIndex = 0;
  Task.Section = 0;
  Task.Function = 0;
  ASSERT_TRUE(Pool.send(W, wire::FrameType::Task, wire::encodeTask(Task)));
  ASSERT_TRUE(waitFrame(Pool, W, wire::FrameType::Result, F));
  wire::ResultMsg Res;
  ASSERT_TRUE(wire::decodeResult(F.Payload, Res));
  EXPECT_EQ(Res.TaskIndex, 0u);
  EXPECT_FALSE(Res.ResultBytes.empty());

  // ...and exits cleanly when told to.
  EXPECT_TRUE(Pool.shutdown(W, /*GraceSec=*/10.0));
  EXPECT_FALSE(Pool.alive(W));
  ASSERT_TRUE(WIFEXITED(Pool.exitStatus(W)));
  EXPECT_EQ(WEXITSTATUS(Pool.exitStatus(W)), 0);
}

TEST(ProcessPoolTest, DestructorReapsEveryWorker) {
  std::string Source = workload::makeTestModule(workload::FunctionSize::Tiny,
                                                /*Count=*/1, /*Seed=*/2);
  std::vector<pid_t> Pids;
  {
    ProcessPool Pool(workerBin());
    for (unsigned I = 0; I != 3; ++I) {
      wire::InitMsg Init;
      Init.WorkerIndex = I;
      Init.ModuleSource = Source;
      int W = Pool.spawn(Init);
      ASSERT_GE(W, 0);
      Pids.push_back(Pool.pid(W));
    }
    EXPECT_EQ(Pool.aliveCount(), 3u);
    // Pool goes out of scope mid-conversation: teardown must SIGKILL and
    // reap all three, leaving no zombies and no orphans.
  }
  for (pid_t P : Pids) {
    errno = 0;
    pid_t R = ::waitpid(P, nullptr, WNOHANG);
    EXPECT_EQ(R, -1) << "worker " << P << " left as zombie";
    EXPECT_EQ(errno, ECHILD) << "worker " << P << " still our child";
  }
}

TEST(ProcessRunnerTest, CleanRunMatchesSequential) {
  std::string Source = workload::makeTestModule(workload::FunctionSize::Small,
                                                /*Count=*/5, /*Seed=*/11);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  ProcessRunResult Par = compileModuleProcess(Source, MM, 4,
                                              driver::FaultPolicy(),
                                              baseConfig());
  ASSERT_TRUE(Par.Module.Succeeded) << Par.Module.Diags.str();
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
  EXPECT_EQ(Par.Module.Diags.str(), Seq.Diags.str());
  EXPECT_EQ(Par.WorkersUsed, 4u);
  EXPECT_EQ(Par.WorkerDeaths, 0u);
  EXPECT_EQ(Par.RetriesAttempted, 0u);
  EXPECT_EQ(Par.FunctionsRecovered, 0u);
  EXPECT_GE(Par.WorkersSpawned, 1u);
}

TEST(ProcessRunnerTest, SigkilledWorkersRetryAndReassign) {
  // Every first attempt dies of a real SIGKILL at a seeded phase
  // boundary; every second attempt (injection window passed) succeeds.
  std::string Source = workload::makeTestModule(workload::FunctionSize::Tiny,
                                                /*Count=*/6, /*Seed=*/21);
  const unsigned N = countFunctions(Source);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  ProcessRunnerConfig Config = baseConfig();
  Config.Faults.Seed = 9001;
  Config.Faults.KillProb = 1.0;
  Config.Faults.MaxFaultAttempt = 1;
  Config.SpeculateStragglers = false;

  ProcessRunResult Par =
      compileModuleProcess(Source, MM, 4, driver::FaultPolicy(), Config);
  ASSERT_TRUE(Par.Module.Succeeded) << Par.Module.Diags.str();
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
  EXPECT_EQ(Par.WorkerDeaths, N) << "one real process death per function";
  EXPECT_EQ(Par.RetriesAttempted, N);
  EXPECT_EQ(Par.FunctionsReassigned, N);
  EXPECT_EQ(Par.FunctionsRecovered, 0u) << "retries, not master fallback";
  EXPECT_GT(Par.WorkersSpawned, 4u) << "dead seats were respawned";
}

TEST(ProcessRunnerTest, StalledWorkerTripsWatchdog) {
  // The worker wedges (sleeps far past the deadline); the master's
  // watchdog must fire, kill it, and retry.
  std::string Source = workload::makeTestModule(workload::FunctionSize::Tiny,
                                                /*Count=*/1, /*Seed=*/31);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  ProcessRunnerConfig Config = baseConfig();
  Config.Faults.Seed = 7;
  Config.Faults.StallProb = 1.0;
  Config.Faults.StallSec = 60.0;
  Config.Faults.MaxFaultAttempt = 1;
  Config.WatchdogSec = 0.6;
  Config.SpeculateStragglers = false;

  Timer T;
  ProcessRunResult Par =
      compileModuleProcess(Source, MM, 1, driver::FaultPolicy(), Config);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
  EXPECT_EQ(Par.WatchdogFires, 1u);
  EXPECT_EQ(Par.RetriesAttempted, 1u);
  EXPECT_GE(T.seconds(), 0.6) << "completed before the watchdog could fire";
  EXPECT_LT(T.seconds(), 30.0) << "waited for the stall instead of killing";
}

TEST(ProcessRunnerTest, SpeculationBeatsStalledStraggler) {
  // Exactly one of four functions stalls; once the queue drains, the
  // idle seats must speculate a duplicate past the soft deadline and the
  // duplicate's result must win while the original sleeps.
  std::string Source = workload::makeTestModule(workload::FunctionSize::Tiny,
                                                /*Count=*/4, /*Seed=*/41);
  const unsigned N = countFunctions(Source);
  ASSERT_GE(N, 2u);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  // The draw is a pure shared function, so the test can search for a
  // seed whose schedule stalls exactly one first attempt.
  const double StallProb = 0.5;
  uint64_t Seed = 0;
  for (uint64_t S = 1; S != 20000 && !Seed; ++S) {
    unsigned Stalls = 0;
    for (unsigned Fn = 0; Fn != N; ++Fn)
      Stalls += driver::seededFaultDraw(S, Fn, 1, 4) < StallProb;
    if (Stalls == 1)
      Seed = S;
  }
  ASSERT_NE(Seed, 0u);

  ProcessRunnerConfig Config = baseConfig();
  Config.Faults.Seed = Seed;
  Config.Faults.StallProb = StallProb;
  Config.Faults.StallSec = 60.0;
  Config.Faults.MaxFaultAttempt = 1;
  Config.WatchdogSec = 1.6; // soft deadline at 0.8s
  Config.SpeculateStragglers = true;

  Timer T;
  ProcessRunResult Par = compileModuleProcess(
      Source, MM, N, driver::FaultPolicy(), Config);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
  EXPECT_GE(Par.SpeculativeLaunches, 1u);
  EXPECT_GE(Par.SpeculativeWins, 1u);
  EXPECT_EQ(Par.RetriesAttempted, 0u)
      << "speculation should settle the round without a retry";
  EXPECT_LT(T.seconds(), 30.0);
}

TEST(ProcessRunnerTest, DeterministicStatsAtAnyWorkerCount) {
  // Every recovery statistic that is a pure function of (source, fault
  // plan) must be identical at 1, 4, and 16 workers: the injection draws
  // are per (function, attempt), cache probing is master-side, and
  // retry accounting is round-based.
  std::string Source = workload::makeTestModule(workload::FunctionSize::Tiny,
                                                /*Count=*/8, /*Seed=*/51);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  ProcessRunnerConfig Config = baseConfig();
  Config.Faults.Seed = 99;
  Config.Faults.KillProb = 0.4;
  Config.Faults.CorruptProb = 0.35;
  Config.SpeculateStragglers = false;

  struct Stats {
    unsigned Retries, Reassigned, Deaths, FrameErrors, Poisoned, Recovered;
  };
  std::vector<Stats> All;
  for (unsigned Workers : {1u, 4u, 16u}) {
    ProcessRunResult Par =
        compileModuleProcess(Source, MM, Workers, driver::FaultPolicy(),
                             Config);
    ASSERT_TRUE(Par.Module.Succeeded) << "workers=" << Workers;
    EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image)
        << "workers=" << Workers;
    All.push_back({Par.RetriesAttempted, Par.FunctionsReassigned,
                   Par.WorkerDeaths, Par.FrameErrors,
                   Par.PoisonedResultsDetected, Par.FunctionsRecovered});
  }
  for (size_t I = 1; I != All.size(); ++I) {
    EXPECT_EQ(All[I].Retries, All[0].Retries);
    EXPECT_EQ(All[I].Reassigned, All[0].Reassigned);
    EXPECT_EQ(All[I].Deaths, All[0].Deaths);
    EXPECT_EQ(All[I].FrameErrors, All[0].FrameErrors);
    EXPECT_EQ(All[I].Poisoned, All[0].Poisoned);
    EXPECT_EQ(All[I].Recovered, All[0].Recovered);
  }
  // The schedule above was chosen to actually exercise the machinery.
  EXPECT_GT(All[0].Deaths, 0u);
  EXPECT_GT(All[0].FrameErrors + All[0].Poisoned, 0u);
}

TEST(ProcessRunnerTest, MissingWorkerBinaryDegradesToMasterFallback) {
  // With no spawnable worker at all, the engine must still produce the
  // right image: everything funnels into the master-recompile path.
  std::string Source = workload::makeTestModule(workload::FunctionSize::Tiny,
                                                /*Count=*/3, /*Seed=*/61);
  const unsigned N = countFunctions(Source);
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  ProcessRunnerConfig Config;
  Config.WorkerBinary = "/nonexistent/warp-worker";
  ProcessRunResult Par =
      compileModuleProcess(Source, MM, 4, driver::FaultPolicy(), Config);
  ASSERT_TRUE(Par.Module.Succeeded);
  EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image);
  EXPECT_EQ(Par.FunctionsRecovered, N);
  EXPECT_EQ(Par.WorkersSpawned, 0u);
}

TEST(ProcessRunnerTest, TraceCarriesEngineLabelAndCausalChain) {
  std::string Source = workload::makeTestModule(workload::FunctionSize::Tiny,
                                                /*Count=*/3, /*Seed=*/71);
  const unsigned N = countFunctions(Source);

  obs::TraceRecorder Rec(obs::ClockDomain::Steady);
  ProcessRunResult Par = compileModuleProcess(
      Source, MM, 2, driver::FaultPolicy(), baseConfig(), &Rec);
  ASSERT_TRUE(Par.Module.Succeeded);

  obs::TraceSession S = Rec.finish();
  EXPECT_EQ(S.Engine, "process");
  EXPECT_EQ(S.NumHosts, Par.WorkersUsed + 1);
  EXPECT_EQ(S.NumFunctions, N);

  unsigned Startups = 0, Compiles = 0, Dones = 0, Completes = 0;
  for (const obs::SpanEvent &E : S.Events) {
    Startups += E.Kind == obs::EventKind::SpanStartup;
    Compiles += E.Kind == obs::EventKind::SpanCompile;
    if (E.Kind == obs::EventKind::FunctionDone) {
      ++Dones;
      EXPECT_NE(E.Parent, 0u) << "result without a causal dispatch edge";
    }
    Completes += E.Kind == obs::EventKind::RunComplete;
  }
  EXPECT_GE(Startups, 1u) << "worker startup spans missing";
  EXPECT_EQ(Compiles, N);
  EXPECT_EQ(Dones, N);
  EXPECT_EQ(Completes, 1u);
}

TEST(ProcessRunnerTest, WorkerShardTopologyIsWorkerCountInvariant) {
  // Every accepted function result splices exactly one optimize and one
  // codegen span from the worker that produced it, parented under the
  // master's accepted compile span. That shape depends only on the
  // module, never on how many workers shared the tasks — the merged
  // trace at 1, 4, and 16 workers must have identical span topology.
  std::string Source = workload::makeTestModule(workload::FunctionSize::Tiny,
                                                3, 4242);
  std::vector<std::vector<std::string>> Shapes;
  for (unsigned Workers : {1u, 4u, 16u}) {
    obs::TraceRecorder Rec(obs::ClockDomain::Steady);
    ProcessRunResult Par = compileModuleProcess(
        Source, MM, Workers, driver::FaultPolicy(), baseConfig(), &Rec);
    ASSERT_TRUE(Par.Module.Succeeded) << "workers=" << Workers;
    obs::TraceSession S = Rec.finish();

    std::map<uint64_t, const obs::SpanEvent *> ById;
    for (const obs::SpanEvent &E : S.Events)
      ById[E.spanId()] = &E;
    std::vector<std::string> Shape;
    for (const obs::SpanEvent &E : S.Events) {
      if (E.Kind != obs::EventKind::SpanOptimize &&
          E.Kind != obs::EventKind::SpanCodegen)
        continue;
      // Worker-side spans carry the worker's real pid.
      EXPECT_NE(E.Pid, 0u) << "workers=" << Workers;
      const std::string Fn =
          E.Function >= 0 ? S.FunctionNames[static_cast<size_t>(E.Function)]
                          : "?";
      auto ParentIt = ById.find(E.Parent);
      ASSERT_NE(ParentIt, ById.end()) << "workers=" << Workers;
      const obs::SpanEvent &P = *ParentIt->second;
      EXPECT_EQ(P.Kind, obs::EventKind::SpanCompile) << "workers=" << Workers;
      const std::string ParentFn =
          P.Function >= 0 ? S.FunctionNames[static_cast<size_t>(P.Function)]
                          : "?";
      Shape.push_back(std::string(obs::kindName(E.Kind)) + " " + Fn +
                      " under " + ParentFn);
    }
    std::sort(Shape.begin(), Shape.end());
    EXPECT_FALSE(Shape.empty()) << "workers=" << Workers;
    Shapes.push_back(std::move(Shape));
  }
  EXPECT_EQ(Shapes[0], Shapes[1]);
  EXPECT_EQ(Shapes[0], Shapes[2]);
}
