//===- SchedulerTest.cpp ---------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "parallel/Scheduler.h"

#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <set>

using namespace warpc;
using namespace warpc::parallel;

namespace {

const codegen::MachineModel MM = codegen::MachineModel::warpCell();

CompilationJob userJob() {
  auto Job = buildJob(workload::makeUserProgram(), MM);
  EXPECT_TRUE(static_cast<bool>(Job));
  return Job.takeValue();
}

} // namespace

TEST(SchedulerTest, FCFSOneFunctionPerProcessorWhenEnough) {
  CompilationJob Job = userJob();
  Assignment A = scheduleFCFS(Job, 9);
  EXPECT_EQ(A.ProcessorsUsed, 9u);
  // Every function gets its own workstation.
  std::set<unsigned> Seen;
  for (const auto &Section : A.WsOf)
    for (unsigned W : Section)
      EXPECT_TRUE(Seen.insert(W).second) << "workstation reused";
}

TEST(SchedulerTest, FCFSRoundRobinWhenScarce) {
  CompilationJob Job = userJob();
  Assignment A = scheduleFCFS(Job, 4);
  EXPECT_EQ(A.ProcessorsUsed, 4u);
  for (const auto &Section : A.WsOf)
    for (unsigned W : Section)
      EXPECT_LT(W, 4u);
}

TEST(SchedulerTest, HeuristicGrowsWithLinesAndNesting) {
  driver::WorkMetrics Flat;
  Flat.SourceLines = 100;
  Flat.LoopDepth = 0;
  driver::WorkMetrics Nested = Flat;
  Nested.LoopDepth = 4;
  driver::WorkMetrics Longer = Flat;
  Longer.SourceLines = 300;
  EXPECT_GT(heuristicCostEstimate(Nested), heuristicCostEstimate(Flat));
  EXPECT_GT(heuristicCostEstimate(Longer), heuristicCostEstimate(Flat));
}

TEST(SchedulerTest, BalancedSeparatesTheBigFunctions) {
  // Section 4.3: "instead of scheduling one function per processor,
  // smaller functions can be grouped and compiled on the same processor".
  // With 3 processors and 3 big + 6 small functions, LPT must put each
  // big function on its own processor.
  CompilationJob Job = userJob();
  Assignment A = scheduleBalanced(Job, 3);
  EXPECT_EQ(A.ProcessorsUsed, 3u);
  std::set<unsigned> BigHomes;
  for (unsigned S = 0; S != 3; ++S)
    BigHomes.insert(A.WsOf[S][0]); // the first function is the big one
  EXPECT_EQ(BigHomes.size(), 3u);
}

TEST(SchedulerTest, BalancedLoadsRoughlyEven) {
  CompilationJob Job = userJob();
  Assignment A = scheduleBalanced(Job, 3);
  double Load[3] = {0, 0, 0};
  for (unsigned S = 0; S != Job.Sections.size(); ++S)
    for (unsigned F = 0; F != Job.Sections[S].size(); ++F)
      Load[A.WsOf[S][F]] +=
          heuristicCostEstimate(Job.Sections[S][F].Metrics);
  double Max = std::max({Load[0], Load[1], Load[2]});
  double Min = std::min({Load[0], Load[1], Load[2]});
  // LPT keeps the imbalance well under one big function.
  EXPECT_LT(Max - Min, Max * 0.5);
}

TEST(SchedulerTest, BalancedWithOneProcessorUsesOne) {
  CompilationJob Job = userJob();
  Assignment A = scheduleBalanced(Job, 1);
  EXPECT_EQ(A.ProcessorsUsed, 1u);
  for (const auto &Section : A.WsOf)
    for (unsigned W : Section)
      EXPECT_EQ(W, 0u);
}

TEST(SchedulerTest, AssignmentShapeMatchesJob) {
  CompilationJob Job = userJob();
  for (auto Mode : {0, 1}) {
    Assignment A =
        Mode == 0 ? scheduleFCFS(Job, 5) : scheduleBalanced(Job, 5);
    ASSERT_EQ(A.WsOf.size(), Job.Sections.size());
    for (unsigned S = 0; S != Job.Sections.size(); ++S)
      EXPECT_EQ(A.WsOf[S].size(), Job.Sections[S].size());
  }
}
