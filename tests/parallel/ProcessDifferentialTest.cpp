//===- ProcessDifferentialTest.cpp -----------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// The extended differential oracle for the process engine: across a
// population of seeded modules, real fork/exec worker pools of every
// size — healthy, SIGKILLed at phase boundaries, delivering corrupted
// frames, or replaying a warm cache — must hand phase 4 exactly the
// input the sequential compiler would, producing bit-identical download
// images and identical diagnostics.
//
// CI can cap the worker grid with WARPC_TEST_MAX_WORKERS (verify.sh sets
// it on constrained runners); the cap only drops grid points above it.
//
//===----------------------------------------------------------------------===//

#include "parallel/ProcessRunner.h"

#include "cache/CompileCache.h"
#include "driver/Compiler.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace warpc;
using namespace warpc::driver;
using namespace warpc::parallel;

namespace {

const codegen::MachineModel MM = codegen::MachineModel::warpCell();

std::string workerBin() {
#ifdef WARPC_WORKER_BIN
  return WARPC_WORKER_BIN;
#else
  return defaultWorkerBinary();
#endif
}

unsigned maxTestWorkers() {
  if (const char *E = std::getenv("WARPC_TEST_MAX_WORKERS"))
    if (int V = std::atoi(E); V > 0)
      return static_cast<unsigned>(V);
  return 16;
}

std::vector<unsigned> workerGrid() {
  std::vector<unsigned> Grid;
  for (unsigned W : {1u, 4u, 16u})
    if (W <= maxTestWorkers())
      Grid.push_back(W);
  if (Grid.empty())
    Grid.push_back(1);
  return Grid;
}

ProcessRunnerConfig cleanConfig() {
  ProcessRunnerConfig C;
  C.WorkerBinary = workerBin();
  return C;
}

} // namespace

class ProcessDifferentialSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProcessDifferentialSweep, ProcessMatchesSequentialEverywhere) {
  uint64_t Seed = GetParam();
  workload::FunctionSize Size = Seed % 2 ? workload::FunctionSize::Small
                                         : workload::FunctionSize::Tiny;
  unsigned Count = 1 + Seed % 8;
  std::string Source = workload::makeTestModule(Size, Count, Seed);

  ModuleResult Seq = compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded) << Seq.Diags.str();

  // Clean pools across the worker grid.
  for (unsigned Workers : workerGrid()) {
    ProcessRunResult Par = compileModuleProcess(Source, MM, Workers,
                                                driver::FaultPolicy(),
                                                cleanConfig());
    ASSERT_TRUE(Par.Module.Succeeded)
        << "seed=" << Seed << " workers=" << Workers;
    EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image)
        << "seed=" << Seed << " workers=" << Workers;
    EXPECT_EQ(Par.Module.Diags.str(), Seq.Diags.str())
        << "seed=" << Seed << " workers=" << Workers;
    EXPECT_EQ(Par.FunctionsRecovered, 0u)
        << "seed=" << Seed << " workers=" << Workers
        << ": clean run should not need the master fallback";
  }

  // Kill-based fault schedules: workers die of real SIGKILLs at seeded
  // phase boundaries and result frames arrive damaged; recovery must
  // still reproduce the sequential image bit for bit.
  for (uint64_t FaultSeed : {Seed, Seed + 101}) {
    ProcessRunnerConfig Config = cleanConfig();
    Config.Faults.Seed = FaultSeed;
    Config.Faults.KillProb = 0.35;
    Config.Faults.CorruptProb = 0.25;
    Config.SpeculateStragglers = false;
    ProcessRunResult Par = compileModuleProcess(
        Source, MM, std::min(4u, maxTestWorkers()), driver::FaultPolicy(),
        Config);
    ASSERT_TRUE(Par.Module.Succeeded)
        << "seed=" << Seed << " fault-seed=" << FaultSeed;
    EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image)
        << "seed=" << Seed << " fault-seed=" << FaultSeed;
    EXPECT_EQ(Par.Module.Diags.str(), Seq.Diags.str())
        << "seed=" << Seed << " fault-seed=" << FaultSeed;
  }
}

// >= 50 seeded modules, disjoint from the thread engine's sweep range so
// the two oracles cover different module populations.
INSTANTIATE_TEST_SUITE_P(Seeds, ProcessDifferentialSweep,
                         ::testing::Range<uint64_t>(300, 350));

TEST(ProcessDifferentialTest, WarmCacheEqualsColdAtEveryWorkerCount) {
  // Cold fills the cache through real worker processes; warm must
  // replay every function master-side — zero processes spawned — and
  // still match, at any worker count and even under a hostile fault
  // plan (a cache hit never reaches the faulty pool).
  std::string Source =
      workload::makeTestModule(workload::FunctionSize::Small, 6, 77);
  ModuleResult Seq = compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  cache::CompileCache Cache(cache::CacheMode::Memory,
                            cache::CacheContext::forModel(MM));
  ProcessRunResult Cold = compileModuleProcess(
      Source, MM, std::min(4u, maxTestWorkers()), driver::FaultPolicy(),
      cleanConfig(), nullptr, nullptr, &Cache);
  ASSERT_TRUE(Cold.Module.Succeeded);
  EXPECT_EQ(Cold.Module.Image.Image, Seq.Image.Image);
  EXPECT_EQ(Cold.CacheHits, 0u);
  EXPECT_GT(Cold.CacheMisses, 0u);

  for (unsigned Workers : workerGrid()) {
    ProcessRunnerConfig Config = cleanConfig();
    Config.Faults.Seed = 5;
    Config.Faults.KillProb = 1.0; // irrelevant: no task may reach the pool
    ProcessRunResult Warm =
        compileModuleProcess(Source, MM, Workers, driver::FaultPolicy(),
                             Config, nullptr, nullptr, &Cache);
    ASSERT_TRUE(Warm.Module.Succeeded) << "workers=" << Workers;
    EXPECT_EQ(Warm.Module.Image.Image, Seq.Image.Image)
        << "workers=" << Workers;
    EXPECT_EQ(Warm.CacheHits, Cold.CacheMisses) << "workers=" << Workers;
    EXPECT_EQ(Warm.CacheMisses, 0u) << "workers=" << Workers;
    EXPECT_EQ(Warm.WorkersSpawned, 0u)
        << "workers=" << Workers << ": warm run forked a process";
  }
}

TEST(ProcessDifferentialTest, HostileKillScheduleOnUserProgram) {
  // One realistic module under kill rates high enough that many
  // functions burn all distributed attempts and fall back to the master.
  std::string Source = workload::makeUserProgram();
  ModuleResult Seq = compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  for (uint64_t FaultSeed = 1; FaultSeed <= 4; ++FaultSeed) {
    ProcessRunnerConfig Config = cleanConfig();
    Config.Faults.Seed = FaultSeed;
    Config.Faults.KillProb = 0.6;
    Config.Faults.CorruptProb = 0.3;
    Config.SpeculateStragglers = false;
    ProcessRunResult Par = compileModuleProcess(
        Source, MM, std::min(8u, maxTestWorkers()), driver::FaultPolicy(),
        Config);
    ASSERT_TRUE(Par.Module.Succeeded) << "fault-seed=" << FaultSeed;
    EXPECT_EQ(Par.Module.Image.Image, Seq.Image.Image)
        << "fault-seed=" << FaultSeed;
  }
}
