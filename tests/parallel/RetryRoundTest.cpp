//===- RetryRoundTest.cpp --------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared retry-round helpers both engines now use: the attempt
/// milestone gate (crash vs supersession precedence and billing) and the
/// produced/pending round tracker.
///
//===----------------------------------------------------------------------===//

#include "parallel/RetryRound.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::parallel;

TEST(CheckAttemptTest, CleanAttemptProceeds) {
  AttemptGate G = checkAttempt(/*LostToCrash=*/false,
                               obs::FaultCause::CrashDuringCompile,
                               /*Superseded=*/false);
  EXPECT_TRUE(G.Proceed);
  EXPECT_EQ(G.Cause, obs::FaultCause::None);
  EXPECT_FALSE(G.ClipAtCrash);
}

TEST(CheckAttemptTest, CrashAbandonsWithClippedBilling) {
  AttemptGate G = checkAttempt(/*LostToCrash=*/true,
                               obs::FaultCause::CrashDuringStartup,
                               /*Superseded=*/false);
  EXPECT_FALSE(G.Proceed);
  EXPECT_EQ(G.Cause, obs::FaultCause::CrashDuringStartup);
  // A crash that goes unnoticed must not bill time past the crash.
  EXPECT_TRUE(G.ClipAtCrash);
}

TEST(CheckAttemptTest, SupersededAbandonsWithFullBilling) {
  AttemptGate G = checkAttempt(/*LostToCrash=*/false,
                               obs::FaultCause::CrashDuringResult,
                               /*Superseded=*/true);
  EXPECT_FALSE(G.Proceed);
  EXPECT_EQ(G.Cause, obs::FaultCause::Superseded);
  // The machine really was busy the whole time; bill all of it.
  EXPECT_FALSE(G.ClipAtCrash);
}

TEST(CheckAttemptTest, CrashOutranksSupersession) {
  // A dead host's work is lost whether or not a competitor finished
  // first — the cause and the billing must be the crash's.
  AttemptGate G = checkAttempt(/*LostToCrash=*/true,
                               obs::FaultCause::CrashDuringCompile,
                               /*Superseded=*/true);
  EXPECT_FALSE(G.Proceed);
  EXPECT_EQ(G.Cause, obs::FaultCause::CrashDuringCompile);
  EXPECT_TRUE(G.ClipAtCrash);
}

TEST(RetryRoundTrackerTest, FirstRoundIsNotARetry) {
  RetryRoundTracker T(3);
  EXPECT_EQ(T.pending().size(), 3u);
  EXPECT_FALSE(T.allProduced());

  T.beginRound(1);
  EXPECT_EQ(T.retriesAttempted(), 0u);
  T.produced(0);
  T.produced(1);
  T.produced(2);
  T.settleRound();

  EXPECT_TRUE(T.allProduced());
  EXPECT_EQ(T.retriesAttempted(), 0u);
  EXPECT_EQ(T.functionsReassigned(), 0u);
}

TEST(RetryRoundTrackerTest, LaterRoundsCountRetriesAndReassignments) {
  RetryRoundTracker T(4);
  T.beginRound(1);
  T.produced(0);
  T.produced(2);
  T.settleRound();
  ASSERT_EQ(T.pending().size(), 2u);
  EXPECT_EQ(T.pending()[0], 1u);
  EXPECT_EQ(T.pending()[1], 3u);

  // Round 2 re-attempts both; one succeeds.
  T.beginRound(2);
  EXPECT_EQ(T.retriesAttempted(), 2u);
  T.produced(1);
  T.settleRound();
  EXPECT_EQ(T.functionsReassigned(), 1u);
  EXPECT_FALSE(T.allProduced());

  // Round 3 re-attempts the last one.
  T.beginRound(3);
  EXPECT_EQ(T.retriesAttempted(), 3u);
  T.produced(3);
  T.settleRound();
  EXPECT_EQ(T.functionsReassigned(), 2u);
  EXPECT_TRUE(T.allProduced());
}

TEST(RetryRoundTrackerTest, ExhaustedRoundsLeaveMasterWorklist) {
  RetryRoundTracker T(2);
  T.beginRound(1);
  T.settleRound();
  T.beginRound(2);
  T.settleRound();
  // Nothing ever produced: the pending list is the master-fallback
  // worklist, and no reassignment was ever completed.
  EXPECT_EQ(T.pending().size(), 2u);
  EXPECT_EQ(T.retriesAttempted(), 2u);
  EXPECT_EQ(T.functionsReassigned(), 0u);
  EXPECT_FALSE(T.isProduced(0));

  // The master produces them outside any round.
  T.produced(0);
  T.produced(1);
  EXPECT_TRUE(T.isProduced(0));
  EXPECT_TRUE(T.isProduced(1));
}
