//===- DaemonLifecycleTest.cpp ---------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Lifecycle discipline of the compile service: graceful drain completes
// in-flight work and refuses new work with an explicit Rejected; a
// client disconnect mid-request cancels cleanly without poisoning the
// executor pool; cancels and queue-full admission are explicit terminal
// outcomes; stale sockets are taken over while a live daemon refuses a
// second bind; hello version negotiation rejects future clients; and the
// exec'd warpd binary drains on SIGTERM and — even SIGKILLed mid-stall —
// leaves no orphaned warp-worker behind.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Server.h"

#include "driver/Compiler.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <string>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace warpc;
using namespace warpc::service;

namespace {

const codegen::MachineModel MM = codegen::MachineModel::warpCell();

std::string freshSocketPath() {
  static int Counter = 0;
  return "/tmp/warpc-ltest-" + std::to_string(getpid()) + "-" +
         std::to_string(++Counter) + ".sock";
}

std::string testModule() {
  return workload::makeTestModule(workload::FunctionSize::Tiny, 2, 404);
}

wire::CompileRequestMsg request(uint64_t Id, const std::string &Source) {
  wire::CompileRequestMsg Req;
  Req.RequestId = Id;
  Req.ModuleSource = Source;
  return Req;
}

void sleepMs(int Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

#ifdef WARPC_WARPD_BIN
std::string warpdBin() { return WARPC_WARPD_BIN; }
#endif
#ifdef WARPC_WORKER_BIN
std::string workerBin() { return WARPC_WORKER_BIN; }
#endif

/// fork/execs \p Argv (NULL-terminated); returns the child pid.
pid_t spawn(std::vector<std::string> Argv) {
  std::vector<char *> CArgv;
  for (std::string &A : Argv)
    CArgv.push_back(A.data());
  CArgv.push_back(nullptr);
  pid_t Pid = fork();
  if (Pid == 0) {
    // Quiet child: the test output should not interleave with warpd's.
    if (FILE *Null = fopen("/dev/null", "w")) {
      dup2(fileno(Null), 1);
      dup2(fileno(Null), 2);
    }
    execv(CArgv[0], CArgv.data());
    _exit(127);
  }
  return Pid;
}

/// Polls until a client can connect to \p Path (daemon ready).
bool awaitDaemon(const std::string &Path, Client &C, std::string &Error,
                 int MaxMs = 10000) {
  for (int Waited = 0; Waited < MaxMs; Waited += 50) {
    if (C.connect(Path, Error))
      return true;
    sleepMs(50);
  }
  return false;
}

/// True while any /proc process's cmdline mentions \p Needle (scans
/// other processes' command lines to catch orphans we cannot waitpid).
bool anyProcessMentions(const std::string &Needle) {
  DIR *Proc = opendir("/proc");
  if (!Proc)
    return false;
  bool Found = false;
  while (dirent *E = readdir(Proc)) {
    if (E->d_name[0] < '0' || E->d_name[0] > '9')
      continue;
    std::ifstream In(std::string("/proc/") + E->d_name + "/cmdline");
    std::string Cmd((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
    if (Cmd.find(Needle) != std::string::npos) {
      Found = true;
      break;
    }
  }
  closedir(Proc);
  return Found;
}

} // namespace

TEST(DaemonLifecycleTest, DrainCompletesInFlightThenRefusesNew) {
  // One slow executor: r1 compiles, r2 queues, drain begins, r3 must be
  // refused with Rejected{draining} while r1 and r2 still complete and
  // are delivered before the loop exits.
  ServiceConfig Config;
  Config.SocketPath = freshSocketPath();
  Config.MaxInFlight = 1;
  Config.DebugCompileDelaySec = 0.3;
  CompileService Service(Config);
  std::string Error;
  ASSERT_TRUE(Service.start(Error)) << Error;

  const std::string Source = testModule();
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  Client C;
  ASSERT_TRUE(C.connect(Config.SocketPath, Error)) << Error;
  ASSERT_TRUE(C.submit(request(1, Source), Error)) << Error;
  ASSERT_TRUE(C.submit(request(2, Source), Error)) << Error;
  sleepMs(100); // let r1 reach the executor
  Service.requestDrain();
  sleepMs(50); // let the drain flag land before r3 arrives
  ASSERT_TRUE(C.submit(request(3, Source), Error)) << Error;

  RequestOutcome O3;
  ASSERT_TRUE(C.await(3, O3, Error)) << Error;
  EXPECT_FALSE(O3.Accepted);
  EXPECT_EQ(O3.Reject.Reason,
            static_cast<uint8_t>(wire::RejectReason::Draining));

  for (uint64_t Id : {uint64_t(1), uint64_t(2)}) {
    RequestOutcome Out;
    ASSERT_TRUE(C.await(Id, Out, Error)) << "r" << Id << ": " << Error;
    ASSERT_TRUE(Out.Accepted);
    EXPECT_EQ(Out.Result.Status,
              static_cast<uint8_t>(wire::ResultStatus::Ok));
    EXPECT_EQ(Out.Result.Image, Seq.Image.Image) << "r" << Id;
  }
  Service.wait();
  EXPECT_FALSE(Service.running());

  wire::ServerStatsMsg Stats = Service.statsSnapshot();
  EXPECT_EQ(Stats.Accepted, 2u);
  EXPECT_EQ(Stats.Completed, 2u);
  EXPECT_EQ(Stats.Rejected, 1u);
  // Drain unlinks the rendezvous: nothing can half-connect afterwards.
  EXPECT_NE(access(Config.SocketPath.c_str(), F_OK), 0);
}

TEST(DaemonLifecycleTest, DisconnectMidRequestDoesNotPoisonPool) {
  // Client A vanishes while its request is in flight and another is
  // queued; the service drops both silently and the next client gets a
  // correct compile from a healthy pool.
  ServiceConfig Config;
  Config.SocketPath = freshSocketPath();
  Config.MaxInFlight = 1;
  Config.DebugCompileDelaySec = 0.2;
  CompileService Service(Config);
  std::string Error;
  ASSERT_TRUE(Service.start(Error)) << Error;

  const std::string Source = testModule();
  driver::ModuleResult Seq = driver::compileModuleSequential(Source, MM);
  ASSERT_TRUE(Seq.Succeeded);

  {
    Client A;
    ASSERT_TRUE(A.connect(Config.SocketPath, Error)) << Error;
    ASSERT_TRUE(A.submit(request(1, Source), Error)) << Error;
    ASSERT_TRUE(A.submit(request(2, Source), Error)) << Error;
    sleepMs(100); // r1 in flight, r2 queued
    A.close();    // abrupt disconnect
  }

  Client B;
  ASSERT_TRUE(B.connect(Config.SocketPath, Error)) << Error;
  RequestOutcome Out;
  ASSERT_TRUE(B.compile(request(1, Source), Out, Error)) << Error;
  ASSERT_TRUE(Out.Accepted);
  EXPECT_EQ(Out.Result.Status, static_cast<uint8_t>(wire::ResultStatus::Ok));
  EXPECT_EQ(Out.Result.Image, Seq.Image.Image);
  EXPECT_TRUE(Service.running());

  Service.requestDrain();
  Service.wait();
}

TEST(DaemonLifecycleTest, CancelQueuedRequestIsCancelledNotCompiled) {
  ServiceConfig Config;
  Config.SocketPath = freshSocketPath();
  Config.MaxInFlight = 1;
  Config.DebugCompileDelaySec = 0.3;
  CompileService Service(Config);
  std::string Error;
  ASSERT_TRUE(Service.start(Error)) << Error;

  const std::string Source = testModule();
  Client C;
  ASSERT_TRUE(C.connect(Config.SocketPath, Error)) << Error;
  ASSERT_TRUE(C.submit(request(1, Source), Error)) << Error;
  ASSERT_TRUE(C.submit(request(2, Source), Error)) << Error;
  sleepMs(100); // r1 in flight, r2 still queued
  ASSERT_TRUE(C.cancel(2, Error)) << Error;

  RequestOutcome O2;
  ASSERT_TRUE(C.await(2, O2, Error)) << Error;
  ASSERT_TRUE(O2.Accepted);
  EXPECT_EQ(O2.Result.Status,
            static_cast<uint8_t>(wire::ResultStatus::Cancelled));

  RequestOutcome O1;
  ASSERT_TRUE(C.await(1, O1, Error)) << Error;
  ASSERT_TRUE(O1.Accepted);
  EXPECT_EQ(O1.Result.Status, static_cast<uint8_t>(wire::ResultStatus::Ok));

  Service.requestDrain();
  Service.wait();
  EXPECT_EQ(Service.statsSnapshot().Cancelled, 1u);
}

TEST(DaemonLifecycleTest, QueueFullIsExplicitReject) {
  ServiceConfig Config;
  Config.SocketPath = freshSocketPath();
  Config.MaxInFlight = 1;
  Config.MaxQueue = 1;
  Config.DebugCompileDelaySec = 0.4;
  CompileService Service(Config);
  std::string Error;
  ASSERT_TRUE(Service.start(Error)) << Error;

  const std::string Source = testModule();
  Client C;
  ASSERT_TRUE(C.connect(Config.SocketPath, Error)) << Error;
  ASSERT_TRUE(C.submit(request(1, Source), Error)) << Error;
  sleepMs(100); // r1 dispatched out of the queue
  ASSERT_TRUE(C.submit(request(2, Source), Error)) << Error;
  sleepMs(100); // r2 occupies the single queue slot
  ASSERT_TRUE(C.submit(request(3, Source), Error)) << Error;

  RequestOutcome O3;
  ASSERT_TRUE(C.await(3, O3, Error)) << Error;
  EXPECT_FALSE(O3.Accepted);
  EXPECT_EQ(O3.Reject.Reason,
            static_cast<uint8_t>(wire::RejectReason::QueueFull));

  for (uint64_t Id : {uint64_t(1), uint64_t(2)}) {
    RequestOutcome Out;
    ASSERT_TRUE(C.await(Id, Out, Error)) << Error;
    ASSERT_TRUE(Out.Accepted);
    EXPECT_EQ(Out.Result.Status, static_cast<uint8_t>(wire::ResultStatus::Ok));
  }

  Service.requestDrain();
  Service.wait();
}

TEST(DaemonLifecycleTest, DeadlineExpiredWhileQueued) {
  // A request with a 50 ms budget behind a 300 ms compile must come back
  // DeadlineExpired without ever occupying the executor.
  ServiceConfig Config;
  Config.SocketPath = freshSocketPath();
  Config.MaxInFlight = 1;
  Config.DebugCompileDelaySec = 0.3;
  CompileService Service(Config);
  std::string Error;
  ASSERT_TRUE(Service.start(Error)) << Error;

  const std::string Source = testModule();
  Client C;
  ASSERT_TRUE(C.connect(Config.SocketPath, Error)) << Error;
  ASSERT_TRUE(C.submit(request(1, Source), Error)) << Error;
  sleepMs(100);
  wire::CompileRequestMsg Doomed = request(2, Source);
  Doomed.DeadlineMs = 50;
  ASSERT_TRUE(C.submit(Doomed, Error)) << Error;

  RequestOutcome O2;
  ASSERT_TRUE(C.await(2, O2, Error)) << Error;
  ASSERT_TRUE(O2.Accepted);
  EXPECT_EQ(O2.Result.Status,
            static_cast<uint8_t>(wire::ResultStatus::DeadlineExpired));

  RequestOutcome O1;
  ASSERT_TRUE(C.await(1, O1, Error)) << Error;
  EXPECT_EQ(O1.Result.Status, static_cast<uint8_t>(wire::ResultStatus::Ok));

  Service.requestDrain();
  Service.wait();
  EXPECT_EQ(Service.statsSnapshot().Expired, 1u);
}

TEST(DaemonLifecycleTest, LiveDaemonRefusesSecondBindStaleSocketTakenOver) {
  ServiceConfig Config;
  Config.SocketPath = freshSocketPath();
  CompileService First(Config);
  std::string Error;
  ASSERT_TRUE(First.start(Error)) << Error;

  // Second daemon on the same path: the connect probe finds a live
  // server and refuses to steal the socket.
  {
    CompileService Second(Config);
    std::string E2;
    EXPECT_FALSE(Second.start(E2));
    EXPECT_NE(E2.find("already"), std::string::npos) << E2;
  }
  First.requestDrain();
  First.wait();

  // Stale socket: a bound-then-abandoned file with no listener behind
  // it must be unlinked and taken over.
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  strncpy(Addr.sun_path, Config.SocketPath.c_str(),
          sizeof(Addr.sun_path) - 1);
  ASSERT_EQ(bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0)
      << strerror(errno);
  ::close(Fd); // socket file remains, nothing accepts
  ASSERT_EQ(access(Config.SocketPath.c_str(), F_OK), 0);

  CompileService Third(Config);
  ASSERT_TRUE(Third.start(Error)) << Error;
  Client C;
  ASSERT_TRUE(C.connect(Config.SocketPath, Error)) << Error;
  Third.requestDrain();
  Third.wait();
}

TEST(DaemonLifecycleTest, VersionMismatchHelloIsRejectedAndClosed) {
  ServiceConfig Config;
  Config.SocketPath = freshSocketPath();
  CompileService Service(Config);
  std::string Error;
  ASSERT_TRUE(Service.start(Error)) << Error;

  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  strncpy(Addr.sun_path, Config.SocketPath.c_str(),
          sizeof(Addr.sun_path) - 1);
  ASSERT_EQ(
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0)
      << strerror(errno);

  wire::ClientHelloMsg Hello;
  Hello.Protocol = 99; // from the future
  Hello.Pid = static_cast<uint64_t>(getpid());
  std::vector<uint8_t> F =
      wire::encodeFrame(wire::MsgType::ClientHello,
                        wire::encodeClientHello(Hello));
  ASSERT_EQ(write(Fd, F.data(), F.size()), static_cast<ssize_t>(F.size()));

  // Expect exactly one Rejected{version} frame, then EOF.
  wire::FrameDecoder D;
  wire::Frame In;
  bool GotReject = false;
  bool GotEof = false;
  for (int Spin = 0; Spin != 200 && !GotEof; ++Spin) {
    uint8_t Buf[512];
    ssize_t N = read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      D.feed(Buf, static_cast<size_t>(N));
      while (D.next(In) == wire::DecodeStatus::Ready) {
        ASSERT_EQ(In.Type, wire::MsgType::Rejected);
        wire::RejectedMsg R;
        ASSERT_TRUE(wire::decodeRejected(In.Payload, R));
        EXPECT_EQ(R.Reason,
                  static_cast<uint8_t>(wire::RejectReason::VersionMismatch));
        GotReject = true;
      }
    } else if (N == 0) {
      GotEof = true;
    } else {
      sleepMs(10);
    }
  }
  EXPECT_TRUE(GotReject);
  EXPECT_TRUE(GotEof) << "server must close a mismatched session";
  ::close(Fd);

  Service.requestDrain();
  Service.wait();
}

#if defined(WARPC_WARPD_BIN) && defined(WARPC_WORKER_BIN)

TEST(DaemonLifecycleTest, ExecdWarpdDrainsOnSigterm) {
  const std::string Path = freshSocketPath();
  pid_t Pid = spawn({warpdBin(), "--socket", Path, "--delay-ms", "200"});
  ASSERT_GT(Pid, 0);

  Client C;
  std::string Error;
  ASSERT_TRUE(awaitDaemon(Path, C, Error)) << Error;
  ASSERT_TRUE(C.submit(request(1, testModule()), Error)) << Error;
  sleepMs(50); // request admitted and compiling
  ASSERT_EQ(kill(Pid, SIGTERM), 0);

  // Drain semantics: the in-flight result is still delivered.
  RequestOutcome Out;
  ASSERT_TRUE(C.await(1, Out, Error)) << Error;
  ASSERT_TRUE(Out.Accepted);
  EXPECT_EQ(Out.Result.Status, static_cast<uint8_t>(wire::ResultStatus::Ok));

  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  EXPECT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  EXPECT_NE(access(Path.c_str(), F_OK), 0) << "socket must be unlinked";
}

TEST(DaemonLifecycleTest, SigkilledWarpdLeavesNoOrphanWorkers) {
  // A uniquely named copy of warp-worker makes orphans attributable to
  // this test alone; --stall-sec holds the worker mid-request so the
  // SIGKILL lands while the process pool is live.
  const std::string Marker = "warp-worker-orphan-" +
                             std::to_string(getpid());
  const std::string WorkerCopy = "/tmp/" + Marker;
  {
    std::ifstream Src(workerBin(), std::ios::binary);
    ASSERT_TRUE(Src.good());
    std::ofstream Dst(WorkerCopy, std::ios::binary);
    Dst << Src.rdbuf();
  }
  ASSERT_EQ(chmod(WorkerCopy.c_str(), 0755), 0);

  const std::string Path = freshSocketPath();
  pid_t Pid = spawn({warpdBin(), "--socket", Path, "--engine", "process",
                     "--worker-bin", WorkerCopy, "--stall-sec", "2",
                     "--watchdog-sec", "30"});
  ASSERT_GT(Pid, 0);

  Client C;
  std::string Error;
  ASSERT_TRUE(awaitDaemon(Path, C, Error)) << Error;
  wire::CompileRequestMsg Req = request(1, testModule());
  Req.Workers = 1;
  ASSERT_TRUE(C.submit(Req, Error)) << Error;

  // Wait for the stalled worker to appear, then kill the daemon cold.
  bool WorkerSeen = false;
  for (int Spin = 0; Spin != 100 && !WorkerSeen; ++Spin) {
    WorkerSeen = anyProcessMentions(Marker);
    if (!WorkerSeen)
      sleepMs(50);
  }
  ASSERT_TRUE(WorkerSeen) << "worker process never spawned";
  ASSERT_EQ(kill(Pid, SIGKILL), 0);
  int Status = 0;
  ASSERT_EQ(waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFSIGNALED(Status));

  // No reparented warp-worker may survive: the stalled worker notices
  // the dead pipe as soon as it wakes and exits on its own.
  bool Gone = false;
  for (int Spin = 0; Spin != 200 && !Gone; ++Spin) {
    Gone = !anyProcessMentions(Marker);
    if (!Gone)
      sleepMs(50);
  }
  EXPECT_TRUE(Gone) << "orphaned worker still alive after daemon SIGKILL";
  unlink(WorkerCopy.c_str());
  unlink(Path.c_str());
}

#endif // WARPC_WARPD_BIN && WARPC_WORKER_BIN
