//===- RequestQueueTest.cpp ------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Unit tests for the daemon's admission queue scheduling policy: bounded
// admission, round-robin fairness across connections within a priority
// tier (FIFO per connection), the high tier draining first, cancel and
// disconnect unlinking, and deadline expiry. The queue is a plain
// single-threaded structure, so the policy is pinned here without
// sockets or clocks.
//
//===----------------------------------------------------------------------===//

#include "service/RequestQueue.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::service;

namespace {

QueuedRequest req(uint64_t ConnId, uint64_t RequestId, uint8_t Priority = 0,
                  uint32_t DeadlineMs = 0, double EnqueuedSec = 0.0) {
  QueuedRequest R;
  R.ConnId = ConnId;
  R.Msg.RequestId = RequestId;
  R.Msg.Priority = Priority;
  R.Msg.DeadlineMs = DeadlineMs;
  R.EnqueuedSec = EnqueuedSec;
  return R;
}

/// Drains the queue and returns (ConnId, RequestId) in pop order.
std::vector<std::pair<uint64_t, uint64_t>> drainAll(RequestQueue &Q) {
  std::vector<std::pair<uint64_t, uint64_t>> Out;
  QueuedRequest R;
  while (Q.pop(R))
    Out.push_back({R.ConnId, R.Msg.RequestId});
  return Out;
}

} // namespace

TEST(RequestQueueTest, RoundRobinAcrossConnectionsFifoWithin) {
  // Conn 1 floods three requests before conns 2 and 3 get one each in:
  // the rotation must interleave 1,2,3 while each connection's own
  // requests stay in submission order.
  RequestQueue Q(16);
  ASSERT_TRUE(Q.push(req(1, 10)));
  ASSERT_TRUE(Q.push(req(1, 11)));
  ASSERT_TRUE(Q.push(req(1, 12)));
  ASSERT_TRUE(Q.push(req(2, 20)));
  ASSERT_TRUE(Q.push(req(3, 30)));
  ASSERT_TRUE(Q.push(req(3, 31)));
  EXPECT_EQ(Q.size(), 6u);

  std::vector<std::pair<uint64_t, uint64_t>> Order = drainAll(Q);
  std::vector<std::pair<uint64_t, uint64_t>> Want = {
      {1, 10}, {2, 20}, {3, 30}, {1, 11}, {3, 31}, {1, 12}};
  EXPECT_EQ(Order, Want);
  EXPECT_TRUE(Q.empty());
}

TEST(RequestQueueTest, LateJoinerEntersRotation) {
  RequestQueue Q(16);
  ASSERT_TRUE(Q.push(req(1, 10)));
  ASSERT_TRUE(Q.push(req(1, 11)));
  QueuedRequest R;
  ASSERT_TRUE(Q.pop(R));
  EXPECT_EQ(R.Msg.RequestId, 10u);
  // Conn 2 shows up mid-rotation; it must be served before conn 1's
  // backlog drains completely.
  ASSERT_TRUE(Q.push(req(2, 20)));
  ASSERT_TRUE(Q.push(req(1, 12)));
  std::vector<std::pair<uint64_t, uint64_t>> Order = drainAll(Q);
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_TRUE(Order[0] == std::make_pair(uint64_t(2), uint64_t(20)) ||
              Order[1] == std::make_pair(uint64_t(2), uint64_t(20)))
      << "late joiner was starved to the end";
}

TEST(RequestQueueTest, HighTierDrainsBeforeNormal) {
  RequestQueue Q(16);
  ASSERT_TRUE(Q.push(req(1, 10, /*Priority=*/0)));
  ASSERT_TRUE(Q.push(req(2, 20, /*Priority=*/1)));
  ASSERT_TRUE(Q.push(req(1, 11, /*Priority=*/1)));
  ASSERT_TRUE(Q.push(req(2, 21, /*Priority=*/0)));

  std::vector<std::pair<uint64_t, uint64_t>> Order = drainAll(Q);
  // Both high-priority requests come out before any normal one, round
  // robin across conns within the tier (conn 2 was seen first in high).
  std::vector<std::pair<uint64_t, uint64_t>> Want = {
      {2, 20}, {1, 11}, {1, 10}, {2, 21}};
  EXPECT_EQ(Order, Want);
}

TEST(RequestQueueTest, BoundRejectsWithoutMutation) {
  RequestQueue Q(2);
  EXPECT_EQ(Q.capacity(), 2u);
  ASSERT_TRUE(Q.push(req(1, 10)));
  ASSERT_TRUE(Q.push(req(1, 11)));
  EXPECT_FALSE(Q.push(req(2, 20))) << "push past the bound must fail";
  EXPECT_FALSE(Q.push(req(1, 12, /*Priority=*/1)))
      << "the bound covers both tiers";
  EXPECT_EQ(Q.size(), 2u);

  // Popping frees a slot; admission resumes.
  QueuedRequest R;
  ASSERT_TRUE(Q.pop(R));
  EXPECT_TRUE(Q.push(req(2, 20)));
  EXPECT_EQ(Q.size(), 2u);
}

TEST(RequestQueueTest, CancelRemovesExactlyOne) {
  RequestQueue Q(16);
  ASSERT_TRUE(Q.push(req(1, 10)));
  ASSERT_TRUE(Q.push(req(1, 11)));
  ASSERT_TRUE(Q.push(req(2, 10))); // same RequestId, different conn

  QueuedRequest Out;
  ASSERT_TRUE(Q.cancel(1, 10, Out));
  EXPECT_EQ(Out.ConnId, 1u);
  EXPECT_EQ(Out.Msg.RequestId, 10u);
  EXPECT_EQ(Q.size(), 2u);

  // Already gone; and the wrong connection must not match.
  EXPECT_FALSE(Q.cancel(1, 10, Out));
  EXPECT_FALSE(Q.cancel(3, 11, Out));

  std::vector<std::pair<uint64_t, uint64_t>> Order = drainAll(Q);
  std::vector<std::pair<uint64_t, uint64_t>> Want = {{1, 11}, {2, 10}};
  EXPECT_EQ(Order, Want);
}

TEST(RequestQueueTest, DropConnectionUnlinksItsRequests) {
  RequestQueue Q(16);
  ASSERT_TRUE(Q.push(req(1, 10)));
  ASSERT_TRUE(Q.push(req(2, 20)));
  ASSERT_TRUE(Q.push(req(1, 11, /*Priority=*/1)));
  ASSERT_TRUE(Q.push(req(1, 12)));

  EXPECT_EQ(Q.dropConnection(1), 3u);
  EXPECT_EQ(Q.size(), 1u);
  EXPECT_EQ(Q.dropConnection(1), 0u);

  std::vector<std::pair<uint64_t, uint64_t>> Order = drainAll(Q);
  std::vector<std::pair<uint64_t, uint64_t>> Want = {{2, 20}};
  EXPECT_EQ(Order, Want);
}

TEST(RequestQueueTest, DeadlineExpirySweepsBothTiers) {
  RequestQueue Q(16);
  // 100 ms deadlines enqueued at t=0; no deadline on 11/21.
  ASSERT_TRUE(Q.push(req(1, 10, 0, /*DeadlineMs=*/100, /*EnqueuedSec=*/0.0)));
  ASSERT_TRUE(Q.push(req(1, 11, 0, 0, 0.0)));
  ASSERT_TRUE(Q.push(req(2, 20, 1, /*DeadlineMs=*/100, /*EnqueuedSec=*/0.0)));
  ASSERT_TRUE(Q.push(req(2, 21, 1, 0, 0.0)));

  std::vector<QueuedRequest> Expired;
  Q.expireDeadlines(/*NowSec=*/0.05, Expired);
  EXPECT_TRUE(Expired.empty()) << "nothing has lapsed at 50 ms";

  Q.expireDeadlines(/*NowSec=*/0.2, Expired);
  ASSERT_EQ(Expired.size(), 2u);
  EXPECT_EQ(Q.size(), 2u);
  std::vector<std::pair<uint64_t, uint64_t>> Order = drainAll(Q);
  std::vector<std::pair<uint64_t, uint64_t>> Want = {{2, 21}, {1, 11}};
  EXPECT_EQ(Order, Want);
}

TEST(RequestQueueTest, PopOnEmptyIsFalse) {
  RequestQueue Q(4);
  QueuedRequest R;
  EXPECT_FALSE(Q.pop(R));
  ASSERT_TRUE(Q.push(req(1, 10)));
  ASSERT_TRUE(Q.pop(R));
  EXPECT_FALSE(Q.pop(R));
  EXPECT_TRUE(Q.empty());
}
