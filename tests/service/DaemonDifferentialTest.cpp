//===- DaemonDifferentialTest.cpp ------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// The differential oracle for the compile service: concurrent clients
// pushing shuffled populations of seeded modules through a live warpd
// event loop — at every engine and worker count, with a warm shared
// cache, and under a seeded process fault plan — must receive download
// images byte-identical to driver::compileModuleSequential and the same
// diagnostics. The daemon is a router; it must never change the answer.
//
// CI can cap the worker grid with WARPC_TEST_MAX_WORKERS (verify.sh sets
// it on constrained runners); the cap only drops grid points above it.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Server.h"

#include "driver/Compiler.h"
#include "support/PRNG.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace warpc;
using namespace warpc::service;

namespace {

const codegen::MachineModel MM = codegen::MachineModel::warpCell();

std::string workerBin() {
#ifdef WARPC_WORKER_BIN
  return WARPC_WORKER_BIN;
#else
  return parallel::defaultWorkerBinary();
#endif
}

unsigned maxTestWorkers() {
  if (const char *E = std::getenv("WARPC_TEST_MAX_WORKERS"))
    if (int V = std::atoi(E); V > 0)
      return static_cast<unsigned>(V);
  return 16;
}

std::vector<unsigned> workerGrid() {
  std::vector<unsigned> Grid;
  for (unsigned W : {1u, 4u, 16u})
    if (W <= maxTestWorkers())
      Grid.push_back(W);
  if (Grid.empty())
    Grid.push_back(1);
  return Grid;
}

/// Unique AF_UNIX rendezvous per service instance (short: sun_path is
/// ~108 bytes).
std::string freshSocketPath() {
  static int Counter = 0;
  return "/tmp/warpc-dtest-" + std::to_string(getpid()) + "-" +
         std::to_string(++Counter) + ".sock";
}

struct Oracle {
  std::string Source;
  std::vector<uint8_t> Image;
  std::string Diags;
};

/// The seeded module population with its sequential ground truth.
std::vector<Oracle> makeOracles(size_t Count, uint64_t SeedBase) {
  std::vector<Oracle> Out;
  for (size_t I = 0; I != Count; ++I) {
    uint64_t Seed = SeedBase + I;
    Oracle O;
    O.Source = workload::makeTestModule(workload::FunctionSize::Tiny,
                                        1 + Seed % 4, Seed);
    driver::ModuleResult Seq = driver::compileModuleSequential(O.Source, MM);
    EXPECT_TRUE(Seq.Succeeded) << Seq.Diags.str();
    O.Image = Seq.Image.Image;
    O.Diags = Seq.Diags.str();
    Out.push_back(std::move(O));
  }
  return Out;
}

/// One client connection compiling \p Indices (in that order) against
/// \p Oracles through the daemon at \p Path; every mismatch is recorded
/// into \p Failures (gtest assertions are not thread-safe enough to
/// fail from raw threads, so the main thread re-asserts).
void clientWorker(const std::string &Path, const std::vector<Oracle> &Oracles,
                  const std::vector<size_t> &Indices, uint8_t Engine,
                  uint32_t Workers, std::vector<std::string> &Failures) {
  Client C;
  std::string Error;
  if (!C.connect(Path, Error)) {
    Failures.push_back("connect: " + Error);
    return;
  }
  uint64_t NextId = 1;
  for (size_t Idx : Indices) {
    wire::CompileRequestMsg Req;
    Req.RequestId = NextId++;
    Req.ModuleSource = Oracles[Idx].Source;
    Req.Engine = Engine;
    Req.Workers = Workers;
    RequestOutcome Out;
    if (!C.compile(Req, Out, Error)) {
      Failures.push_back("module " + std::to_string(Idx) +
                         ": transport: " + Error);
      return;
    }
    if (!Out.Accepted) {
      Failures.push_back("module " + std::to_string(Idx) + ": rejected: " +
                         Out.Reject.Detail);
      continue;
    }
    if (Out.Result.Status != static_cast<uint8_t>(wire::ResultStatus::Ok)) {
      Failures.push_back("module " + std::to_string(Idx) + ": status " +
                         std::to_string(Out.Result.Status) + ": " +
                         Out.Result.DiagText);
      continue;
    }
    if (Out.Result.Image != Oracles[Idx].Image)
      Failures.push_back("module " + std::to_string(Idx) +
                         ": image differs from sequential");
    if (Out.Result.DiagText != Oracles[Idx].Diags)
      Failures.push_back("module " + std::to_string(Idx) +
                         ": diagnostics differ from sequential");
  }
}

/// Runs \p NumClients concurrent connections, each compiling its own
/// shuffle of the full population.
std::vector<std::string> runClients(const std::string &Path,
                                    const std::vector<Oracle> &Oracles,
                                    unsigned NumClients, uint8_t Engine,
                                    uint32_t Workers, uint64_t ShuffleSeed) {
  std::vector<std::vector<size_t>> Shares(NumClients);
  PRNG Rng(ShuffleSeed);
  std::vector<size_t> Order(Oracles.size());
  std::iota(Order.begin(), Order.end(), 0);
  for (size_t I = Order.size(); I > 1; --I)
    std::swap(Order[I - 1], Order[Rng.below(I)]);
  // Deal the one shuffle round-robin: disjoint shares, every module
  // covered exactly once per round, submission order still randomized.
  for (size_t I = 0; I != Order.size(); ++I)
    Shares[I % NumClients].push_back(Order[I]);
  std::vector<std::vector<std::string>> Failures(NumClients);
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != NumClients; ++C)
    Threads.emplace_back(clientWorker, Path, std::cref(Oracles),
                         std::cref(Shares[C]), Engine, Workers,
                         std::ref(Failures[C]));
  for (std::thread &T : Threads)
    T.join();
  std::vector<std::string> All;
  for (std::vector<std::string> &F : Failures)
    All.insert(All.end(), F.begin(), F.end());
  return All;
}

} // namespace

TEST(DaemonDifferentialTest, ConcurrentClientsMatchSequentialAcrossGrid) {
  // 50 seeded modules, four concurrent clients each compiling a shuffled
  // disjoint share, at every worker count: the daemon's thread engine
  // must reproduce the sequential image and diagnostics bit for bit.
  std::vector<Oracle> Oracles = makeOracles(50, 9000);

  for (unsigned Workers : workerGrid()) {
    ServiceConfig Config;
    Config.SocketPath = freshSocketPath();
    Config.Engine = "thread";
    Config.DefaultWorkers = Workers;
    Config.MaxInFlight = 2;
    Config.CacheMode = cache::CacheMode::Off;
    CompileService Service(Config);
    std::string Error;
    ASSERT_TRUE(Service.start(Error)) << Error;

    std::vector<std::string> Failures =
        runClients(Config.SocketPath, Oracles, 4,
                   static_cast<uint8_t>(wire::RequestEngine::Default),
                   /*Workers=*/0, /*ShuffleSeed=*/Workers * 131 + 1);
    for (const std::string &F : Failures)
      ADD_FAILURE() << "workers=" << Workers << ": " << F;

    wire::ServerStatsMsg Stats = Service.statsSnapshot();
    EXPECT_EQ(Stats.Accepted, Oracles.size()) << "workers=" << Workers;
    EXPECT_EQ(Stats.Completed, Oracles.size()) << "workers=" << Workers;
    EXPECT_EQ(Stats.Rejected, 0u) << "workers=" << Workers;

    Service.requestDrain();
    Service.wait();
  }
}

TEST(DaemonDifferentialTest, PerRequestEngineSelectionMatchesSequential) {
  // One daemon, heterogeneous clients: requests choosing the default
  // (sequential) engine and the thread engine in the same session all
  // match the oracle.
  std::vector<Oracle> Oracles = makeOracles(8, 9100);

  ServiceConfig Config;
  Config.SocketPath = freshSocketPath();
  Config.Engine = "sequential";
  Config.MaxInFlight = 2;
  Config.CacheMode = cache::CacheMode::Off;
  CompileService Service(Config);
  std::string Error;
  ASSERT_TRUE(Service.start(Error)) << Error;

  for (uint8_t Engine : {static_cast<uint8_t>(wire::RequestEngine::Default),
                         static_cast<uint8_t>(wire::RequestEngine::Thread)}) {
    std::vector<std::string> Failures =
        runClients(Config.SocketPath, Oracles, 2, Engine,
                   /*Workers=*/Engine ? 4u : 0u, /*ShuffleSeed=*/Engine + 7);
    for (const std::string &F : Failures)
      ADD_FAILURE() << "engine=" << unsigned(Engine) << ": " << F;
  }

  Service.requestDrain();
  Service.wait();
}

TEST(DaemonDifferentialTest, WarmSharedCacheMatchesColdAcrossClients) {
  // Round 1 (one client) fills the shared cache; round 2 (four
  // concurrent clients, shuffled) must replay every function from it —
  // all hits, zero misses — and still match the sequential oracle.
  std::vector<Oracle> Oracles = makeOracles(10, 9200);

  ServiceConfig Config;
  Config.SocketPath = freshSocketPath();
  Config.Engine = "thread";
  Config.DefaultWorkers = 2;
  Config.MaxInFlight = 2;
  Config.CacheMode = cache::CacheMode::Memory;
  CompileService Service(Config);
  std::string Error;
  ASSERT_TRUE(Service.start(Error)) << Error;

  std::vector<std::string> Cold = runClients(
      Config.SocketPath, Oracles, 1,
      static_cast<uint8_t>(wire::RequestEngine::Default), 0, 11);
  for (const std::string &F : Cold)
    ADD_FAILURE() << "cold: " << F;

  // Warm round: every module already cached, any client, any order.
  Client C;
  ASSERT_TRUE(C.connect(Config.SocketPath, Error)) << Error;
  for (size_t Idx = 0; Idx != Oracles.size(); ++Idx) {
    wire::CompileRequestMsg Req;
    Req.RequestId = 100 + Idx;
    Req.ModuleSource = Oracles[Idx].Source;
    RequestOutcome Out;
    ASSERT_TRUE(C.compile(Req, Out, Error)) << Error;
    ASSERT_TRUE(Out.Accepted);
    ASSERT_EQ(Out.Result.Status,
              static_cast<uint8_t>(wire::ResultStatus::Ok));
    EXPECT_EQ(Out.Result.Image, Oracles[Idx].Image) << "module " << Idx;
    EXPECT_GT(Out.Result.CacheHits, 0u) << "module " << Idx;
    EXPECT_EQ(Out.Result.CacheMisses, 0u) << "module " << Idx;
  }
  C.close();

  std::vector<std::string> Warm = runClients(
      Config.SocketPath, Oracles, 4,
      static_cast<uint8_t>(wire::RequestEngine::Default), 0, 13);
  for (const std::string &F : Warm)
    ADD_FAILURE() << "warm: " << F;

  Service.requestDrain();
  Service.wait();
}

TEST(DaemonDifferentialTest, ProcessEngineUnderFaultPlanMatchesSequential) {
  // Real fork/exec pools behind the daemon, first clean and then with a
  // seeded kill/corrupt schedule: recovery happens inside the engine and
  // the client still sees the sequential bytes.
  std::vector<Oracle> Oracles = makeOracles(6, 9300);
  const unsigned Workers = std::min(2u, maxTestWorkers());

  for (bool Faulty : {false, true}) {
    ServiceConfig Config;
    Config.SocketPath = freshSocketPath();
    Config.Engine = "process";
    Config.DefaultWorkers = Workers;
    Config.MaxInFlight = 1;
    Config.CacheMode = cache::CacheMode::Off;
    Config.WorkerBinary = workerBin();
    if (Faulty) {
      Config.Faults.Seed = 23;
      Config.Faults.KillProb = 0.35;
      Config.Faults.CorruptProb = 0.25;
    }
    CompileService Service(Config);
    std::string Error;
    ASSERT_TRUE(Service.start(Error)) << Error;

    std::vector<std::string> Failures = runClients(
        Config.SocketPath, Oracles, 2,
        static_cast<uint8_t>(wire::RequestEngine::Default), 0,
        /*ShuffleSeed=*/Faulty ? 29 : 31);
    for (const std::string &F : Failures)
      ADD_FAILURE() << (Faulty ? "faulty: " : "clean: ") << F;

    Service.requestDrain();
    Service.wait();
  }
}
