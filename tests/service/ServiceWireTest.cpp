//===- ServiceWireTest.cpp -------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
// Robustness tests for the client/daemon service protocol, mirroring the
// master/worker WireProtocolTest contract: any malformed input —
// truncated frames, garbage headers, oversized payloads, flipped bytes,
// the wrong protocol's magic — degrades to NeedMore or a sticky Corrupt
// verdict. Nothing here may crash, hang, or yield a frame that was not
// sent. The version-mismatch hello must survive the codec so the server
// can answer Rejected{version} instead of dropping the connection.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "parallel/WireProtocol.h"
#include "support/PRNG.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::service::wire;

namespace {

std::vector<uint8_t> requestFrame(uint64_t RequestId = 7) {
  CompileRequestMsg M;
  M.RequestId = RequestId;
  M.ModuleSource = "module m;\nsection s cells 2 { }\n";
  M.Engine = 1;
  M.Workers = 4;
  M.Priority = 1;
  M.DeadlineMs = 250;
  return encodeFrame(MsgType::CompileRequest, encodeCompileRequest(M));
}

/// Feeds \p Bytes in chunks of \p Chunk and drains every decodable frame.
std::vector<Frame> drain(FrameDecoder &D, const std::vector<uint8_t> &Bytes,
                         size_t Chunk) {
  std::vector<Frame> Out;
  for (size_t I = 0; I < Bytes.size(); I += Chunk) {
    D.feed(Bytes.data() + I, std::min(Chunk, Bytes.size() - I));
    Frame F;
    while (D.next(F) == DecodeStatus::Ready)
      Out.push_back(F);
  }
  return Out;
}

} // namespace

TEST(ServiceWireTest, MessageCodecsRoundTrip) {
  ClientHelloMsg CH;
  CH.Pid = 123456;
  ClientHelloMsg CH2;
  ASSERT_TRUE(decodeClientHello(encodeClientHello(CH), CH2));
  EXPECT_EQ(CH2.Protocol, ProtocolVersion);
  EXPECT_EQ(CH2.Pid, CH.Pid);

  ServerHelloMsg SH;
  SH.Pid = 999;
  SH.MaxQueue = 64;
  SH.MaxInFlight = 8;
  ServerHelloMsg SH2;
  ASSERT_TRUE(decodeServerHello(encodeServerHello(SH), SH2));
  EXPECT_EQ(SH2.Protocol, ProtocolVersion);
  EXPECT_EQ(SH2.Pid, SH.Pid);
  EXPECT_EQ(SH2.MaxQueue, SH.MaxQueue);
  EXPECT_EQ(SH2.MaxInFlight, SH.MaxInFlight);

  CompileRequestMsg Q;
  Q.RequestId = 42;
  Q.ModuleSource = "module m;\nsection s cells 4 { }\n";
  Q.Engine = 2;
  Q.Workers = 16;
  Q.UseCache = 0;
  Q.Priority = 1;
  Q.DeadlineMs = 1500;
  CompileRequestMsg Q2;
  ASSERT_TRUE(decodeCompileRequest(encodeCompileRequest(Q), Q2));
  EXPECT_EQ(Q2.RequestId, Q.RequestId);
  EXPECT_EQ(Q2.ModuleSource, Q.ModuleSource);
  EXPECT_EQ(Q2.Engine, Q.Engine);
  EXPECT_EQ(Q2.Workers, Q.Workers);
  EXPECT_EQ(Q2.UseCache, Q.UseCache);
  EXPECT_EQ(Q2.Priority, Q.Priority);
  EXPECT_EQ(Q2.DeadlineMs, Q.DeadlineMs);

  CompileResultMsg R;
  R.RequestId = 42;
  R.Status = static_cast<uint8_t>(ResultStatus::Ok);
  R.ModuleName = "m";
  R.NumSections = 3;
  R.NumFunctions = 9;
  R.DiagText = "note: pipelined loop at depth 2\n";
  R.Image = {1, 2, 3, 0, 255, 7};
  R.EngineUsed = "process";
  R.WorkersUsed = 4;
  R.QueueSec = 0.25;
  R.CompileSec = 1.5;
  R.CacheHits = 5;
  R.CacheMisses = 4;
  CompileResultMsg R2;
  ASSERT_TRUE(decodeCompileResult(encodeCompileResult(R), R2));
  EXPECT_EQ(R2.RequestId, R.RequestId);
  EXPECT_EQ(R2.Status, R.Status);
  EXPECT_EQ(R2.ModuleName, R.ModuleName);
  EXPECT_EQ(R2.NumSections, R.NumSections);
  EXPECT_EQ(R2.NumFunctions, R.NumFunctions);
  EXPECT_EQ(R2.DiagText, R.DiagText);
  EXPECT_EQ(R2.Image, R.Image);
  EXPECT_EQ(R2.EngineUsed, R.EngineUsed);
  EXPECT_EQ(R2.WorkersUsed, R.WorkersUsed);
  EXPECT_EQ(R2.QueueSec, R.QueueSec);
  EXPECT_EQ(R2.CompileSec, R.CompileSec);
  EXPECT_EQ(R2.CacheHits, R.CacheHits);
  EXPECT_EQ(R2.CacheMisses, R.CacheMisses);

  RejectedMsg J;
  J.RequestId = 42;
  J.Reason = static_cast<uint8_t>(RejectReason::QueueFull);
  J.Detail = "queue full (64 queued)";
  RejectedMsg J2;
  ASSERT_TRUE(decodeRejected(encodeRejected(J), J2));
  EXPECT_EQ(J2.RequestId, J.RequestId);
  EXPECT_EQ(J2.Reason, J.Reason);
  EXPECT_EQ(J2.Detail, J.Detail);

  CancelMsg C;
  C.RequestId = 42;
  CancelMsg C2;
  ASSERT_TRUE(decodeCancel(encodeCancel(C), C2));
  EXPECT_EQ(C2.RequestId, C.RequestId);

  ServerStatsMsg S;
  S.Accepted = 100;
  S.Rejected = 3;
  S.Completed = 90;
  S.Cancelled = 4;
  S.Expired = 2;
  S.QueueDepth = 5;
  S.InFlight = 2;
  S.Connections = 7;
  S.P50Ms = 1.5;
  S.P95Ms = 9.0;
  S.P99Ms = 22.5;
  ServerStatsMsg S2;
  ASSERT_TRUE(decodeServerStats(encodeServerStats(S), S2));
  EXPECT_EQ(S2.Accepted, S.Accepted);
  EXPECT_EQ(S2.Rejected, S.Rejected);
  EXPECT_EQ(S2.Completed, S.Completed);
  EXPECT_EQ(S2.Cancelled, S.Cancelled);
  EXPECT_EQ(S2.Expired, S.Expired);
  EXPECT_EQ(S2.QueueDepth, S.QueueDepth);
  EXPECT_EQ(S2.InFlight, S.InFlight);
  EXPECT_EQ(S2.Connections, S.Connections);
  EXPECT_EQ(S2.P50Ms, S.P50Ms);
  EXPECT_EQ(S2.P95Ms, S.P95Ms);
  EXPECT_EQ(S2.P99Ms, S.P99Ms);
}

TEST(ServiceWireTest, VersionMismatchHelloIsDecodable) {
  // Version negotiation happens on the decoded payload, not the frame
  // header — a future-version hello must survive the codec so the
  // server can answer Rejected{version} instead of a silent close.
  ClientHelloMsg M;
  M.Protocol = 99;
  M.Pid = 1;
  ClientHelloMsg Out;
  ASSERT_TRUE(decodeClientHello(encodeClientHello(M), Out));
  EXPECT_EQ(Out.Protocol, 99u);
}

TEST(ServiceWireTest, TruncatedPayloadsFailCleanly) {
  // Chopped message payloads must decode to false, not read out of
  // bounds; extra trailing bytes must fail the atEnd discipline.
  const std::vector<std::vector<uint8_t>> Payloads = {
      encodeClientHello(ClientHelloMsg()),
      encodeServerHello(ServerHelloMsg()),
      encodeCompileRequest([] {
        CompileRequestMsg M;
        M.RequestId = 1;
        M.ModuleSource = "module m;\n";
        return M;
      }()),
      encodeCompileResult([] {
        CompileResultMsg M;
        M.RequestId = 1;
        M.ModuleName = "m";
        M.DiagText = "d";
        M.Image = {1, 2, 3};
        M.EngineUsed = "thread";
        return M;
      }()),
      encodeRejected([] {
        RejectedMsg M;
        M.Detail = "full";
        return M;
      }()),
      encodeCancel(CancelMsg()),
      encodeServerStats(ServerStatsMsg()),
  };
  auto decodeAny = [](size_t Which, const std::vector<uint8_t> &Bytes) {
    switch (Which) {
    case 0: { ClientHelloMsg M; return decodeClientHello(Bytes, M); }
    case 1: { ServerHelloMsg M; return decodeServerHello(Bytes, M); }
    case 2: { CompileRequestMsg M; return decodeCompileRequest(Bytes, M); }
    case 3: { CompileResultMsg M; return decodeCompileResult(Bytes, M); }
    case 4: { RejectedMsg M; return decodeRejected(Bytes, M); }
    case 5: { CancelMsg M; return decodeCancel(Bytes, M); }
    default: { ServerStatsMsg M; return decodeServerStats(Bytes, M); }
    }
  };
  // Per-codec size of the optional trace/stats extension appended this
  // protocol revision: the prefix that chops exactly those bytes is a
  // valid pre-extension encoding and must still decode (version
  // tolerance); every other prefix must fail. ServerHello and
  // CompileRequest grew 16 bytes (two u64/f64 trailers), CompileResult a
  // length-prefixed empty shard (u64 length), ServerStats two 32-byte
  // quantile blocks plus a u32 engine-row count.
  const size_t LegacyTail[] = {0, 16, 16, 8, 0, 0, 68};
  static_assert(sizeof(LegacyTail) / sizeof(LegacyTail[0]) == 7, "");
  for (size_t Which = 0; Which != Payloads.size(); ++Which) {
    const std::vector<uint8_t> &Full = Payloads[Which];
    ASSERT_TRUE(decodeAny(Which, Full)) << "codec " << Which;
    const size_t LegacySize = Full.size() - LegacyTail[Which];
    for (size_t N = 0; N < Full.size(); ++N) {
      std::vector<uint8_t> Cut(Full.begin(), Full.begin() + N);
      EXPECT_EQ(decodeAny(Which, Cut), N == LegacySize)
          << "codec " << Which << " prefix " << N;
    }
    std::vector<uint8_t> Extra = Full;
    Extra.push_back(0);
    EXPECT_FALSE(decodeAny(Which, Extra)) << "codec " << Which;
  }
}

TEST(ServiceWireTest, FramesSurviveArbitraryChunking) {
  std::vector<uint8_t> Stream;
  for (uint64_t Id = 1; Id <= 5; ++Id) {
    std::vector<uint8_t> F = requestFrame(Id);
    Stream.insert(Stream.end(), F.begin(), F.end());
  }
  for (size_t Chunk : {size_t(1), size_t(2), size_t(3), size_t(7),
                       Stream.size()}) {
    FrameDecoder D;
    std::vector<Frame> Frames = drain(D, Stream, Chunk);
    ASSERT_EQ(Frames.size(), 5u) << "chunk " << Chunk;
    for (uint64_t Id = 1; Id <= 5; ++Id) {
      EXPECT_EQ(Frames[Id - 1].Type, MsgType::CompileRequest);
      CompileRequestMsg M;
      ASSERT_TRUE(decodeCompileRequest(Frames[Id - 1].Payload, M));
      EXPECT_EQ(M.RequestId, Id);
    }
    EXPECT_FALSE(D.corrupt());
    EXPECT_EQ(D.bufferedBytes(), 0u);
  }
}

TEST(ServiceWireTest, TruncatedFrameIsNeedMoreForever) {
  std::vector<uint8_t> Full = requestFrame();
  std::vector<uint8_t> Cut(Full.begin(), Full.end() - 1);
  FrameDecoder D;
  D.feed(Cut.data(), Cut.size());
  Frame F;
  EXPECT_EQ(D.next(F), DecodeStatus::NeedMore);
  EXPECT_EQ(D.next(F), DecodeStatus::NeedMore);
  EXPECT_FALSE(D.corrupt());
  // The missing byte completes the frame.
  D.feed(&Full.back(), 1);
  EXPECT_EQ(D.next(F), DecodeStatus::Ready);
  EXPECT_EQ(F.Type, MsgType::CompileRequest);
}

TEST(ServiceWireTest, GarbageHeaderIsStickyCorrupt) {
  const char *Junk = "GET / HTTP/1.1\r\n";
  FrameDecoder D;
  D.feed(reinterpret_cast<const uint8_t *>(Junk), strlen(Junk));
  Frame F;
  EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
  EXPECT_TRUE(D.corrupt());
  EXPECT_FALSE(D.error().empty());
  // A valid frame cannot resurrect a corrupt connection.
  std::vector<uint8_t> Good = requestFrame();
  D.feed(Good.data(), Good.size());
  EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
}

TEST(ServiceWireTest, WorkerProtocolFramesAreForeign) {
  // The master/worker stream ('WRP1') must never parse as a service
  // stream: the magics are distinct by construction.
  parallel::wire::HelloMsg H;
  H.Pid = 1;
  std::vector<uint8_t> Foreign = parallel::wire::encodeFrame(
      parallel::wire::FrameType::Hello, parallel::wire::encodeHello(H));
  FrameDecoder D;
  D.feed(Foreign.data(), Foreign.size());
  Frame F;
  EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
  EXPECT_TRUE(D.corrupt());
}

TEST(ServiceWireTest, BadVersionTypeAndLengthAreCorrupt) {
  std::vector<uint8_t> Good = requestFrame();
  {
    std::vector<uint8_t> Bad = Good;
    Bad[4] = ProtocolVersion + 1; // version byte
    FrameDecoder D;
    D.feed(Bad.data(), Bad.size());
    Frame F;
    EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
  }
  {
    std::vector<uint8_t> Bad = Good;
    Bad[5] = MaxMsgType + 1; // type byte above the last message
    FrameDecoder D;
    D.feed(Bad.data(), Bad.size());
    Frame F;
    EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
  }
  {
    std::vector<uint8_t> Bad = Good;
    Bad[5] = 0; // type 0 is reserved-invalid
    FrameDecoder D;
    D.feed(Bad.data(), Bad.size());
    Frame F;
    EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
  }
}

TEST(ServiceWireTest, OversizedPayloadRejectedWithoutBuffering) {
  // A header declaring a payload over the cap must corrupt immediately,
  // from the header alone — no attempt to buffer 64 MiB of nothing.
  std::vector<uint8_t> Header = requestFrame();
  Header.resize(10); // header only
  uint32_t Huge = MaxFramePayload + 1;
  memcpy(Header.data() + 6, &Huge, 4);
  FrameDecoder D;
  D.feed(Header.data(), Header.size());
  Frame F;
  EXPECT_EQ(D.next(F), DecodeStatus::Corrupt);
  EXPECT_TRUE(D.corrupt());
}

TEST(ServiceWireTest, FlippedPayloadByteFailsChecksum) {
  std::vector<uint8_t> Good = requestFrame();
  const size_t PayloadBegin = 10;
  const size_t PayloadEnd = Good.size() - 8;
  for (size_t I = PayloadBegin; I != PayloadEnd; ++I) {
    std::vector<uint8_t> Bad = Good;
    Bad[I] ^= 0x40;
    FrameDecoder D;
    D.feed(Bad.data(), Bad.size());
    Frame F;
    EXPECT_EQ(D.next(F), DecodeStatus::Corrupt) << "byte " << I;
  }
}

TEST(ServiceWireTest, EmptyPayloadFrameRoundTrips) {
  // StatsRequest carries no payload at all.
  std::vector<uint8_t> F = encodeFrame(MsgType::StatsRequest, {});
  EXPECT_EQ(F.size(), 10u + 8u);
  FrameDecoder D;
  D.feed(F.data(), F.size());
  Frame Out;
  ASSERT_EQ(D.next(Out), DecodeStatus::Ready);
  EXPECT_EQ(Out.Type, MsgType::StatsRequest);
  EXPECT_TRUE(Out.Payload.empty());
}

TEST(ServiceWireTest, LongStreamStaysBounded) {
  // A long-lived client session: the decoder must recycle its buffer
  // rather than growing without bound.
  FrameDecoder D;
  std::vector<uint8_t> F = requestFrame();
  for (int I = 0; I != 5000; ++I) {
    D.feed(F.data(), F.size());
    Frame Out;
    ASSERT_EQ(D.next(Out), DecodeStatus::Ready);
  }
  EXPECT_FALSE(D.corrupt());
  EXPECT_EQ(D.bufferedBytes(), 0u);
}

TEST(ServiceWireTest, FuzzedStreamsNeverYieldPhantomFrames) {
  // Pure-noise streams: the decoder must terminate on every feed (no
  // hang), and any frame it does yield must carry a verified checksum —
  // overwhelmingly unlikely from noise, so expect none.
  PRNG Rng(20260808);
  for (int Trial = 0; Trial != 200; ++Trial) {
    FrameDecoder D;
    size_t Len = 1 + Rng.below(512);
    std::vector<uint8_t> Noise(Len);
    for (uint8_t &B : Noise)
      B = static_cast<uint8_t>(Rng.below(256));
    Frame F;
    size_t Yielded = 0;
    for (size_t I = 0; I < Noise.size();) {
      size_t Chunk = 1 + Rng.below(63);
      Chunk = std::min(Chunk, Noise.size() - I);
      D.feed(Noise.data() + I, Chunk);
      I += Chunk;
      while (D.next(F) == DecodeStatus::Ready)
        ++Yielded;
      if (D.corrupt())
        break;
    }
    EXPECT_EQ(Yielded, 0u) << "trial " << Trial;
  }
}

TEST(ServiceWireTest, FuzzedMutationsOfValidStreamsDegradeToCorrupt) {
  // Random single-byte mutations of a valid multi-frame stream: every
  // outcome must be a subset of the original frames followed by NeedMore
  // or Corrupt — never a crash, never a frame with altered content.
  PRNG Rng(8081989);
  std::vector<uint8_t> Stream;
  for (uint64_t Id = 1; Id <= 4; ++Id) {
    std::vector<uint8_t> F = requestFrame(Id);
    Stream.insert(Stream.end(), F.begin(), F.end());
  }
  for (int Trial = 0; Trial != 500; ++Trial) {
    std::vector<uint8_t> Bad = Stream;
    Bad[Rng.below(Bad.size())] ^= static_cast<uint8_t>(1 + Rng.below(255));
    FrameDecoder D;
    std::vector<Frame> Frames = drain(D, Bad, 1 + Rng.below(16));
    ASSERT_LE(Frames.size(), 4u);
    for (size_t I = 0; I != Frames.size(); ++I) {
      CompileRequestMsg M;
      // Any frame that surfaced must be one of the originals, intact.
      ASSERT_TRUE(decodeCompileRequest(Frames[I].Payload, M))
          << "trial " << Trial;
      EXPECT_GE(M.RequestId, 1u);
      EXPECT_LE(M.RequestId, 4u);
      EXPECT_EQ(M.Workers, 4u);
      EXPECT_EQ(M.DeadlineMs, 250u);
    }
  }
}

TEST(ServiceWireTest, TraceAndStatsExtensionsRoundTrip) {
  ServerHelloMsg SH;
  SH.HelloRecvSec = 3.25;
  SH.HelloSendSec = 3.5;
  ServerHelloMsg SH2;
  ASSERT_TRUE(decodeServerHello(encodeServerHello(SH), SH2));
  EXPECT_EQ(SH2.HelloRecvSec, SH.HelloRecvSec);
  EXPECT_EQ(SH2.HelloSendSec, SH.HelloSendSec);

  CompileRequestMsg Req;
  Req.RequestId = 9;
  Req.ModuleSource = "module m;\n";
  Req.TraceId = 0xC0FFEEull;
  Req.ParentSpanId = 12;
  CompileRequestMsg Req2;
  ASSERT_TRUE(decodeCompileRequest(encodeCompileRequest(Req), Req2));
  EXPECT_EQ(Req2.TraceId, Req.TraceId);
  EXPECT_EQ(Req2.ParentSpanId, Req.ParentSpanId);

  CompileResultMsg Res;
  Res.RequestId = 9;
  Res.ShardBytes = {5, 4, 3, 2, 1};
  CompileResultMsg Res2;
  ASSERT_TRUE(decodeCompileResult(encodeCompileResult(Res), Res2));
  EXPECT_EQ(Res2.ShardBytes, Res.ShardBytes);

  ServerStatsMsg St;
  St.Accepted = 100;
  St.QueueWaitNormal.Count = 80;
  St.QueueWaitNormal.P50 = 0.001;
  St.QueueWaitNormal.P95 = 0.010;
  St.QueueWaitNormal.P99 = 0.050;
  St.QueueWaitHigh.Count = 20;
  St.QueueWaitHigh.P50 = 0.0005;
  EngineLatency EL;
  EL.Engine = "process";
  EL.Latency.Count = 60;
  EL.Latency.P50 = 0.02;
  EL.Latency.P95 = 0.09;
  EL.Latency.P99 = 0.2;
  St.EngineLatencies = {EL};
  ServerStatsMsg St2;
  ASSERT_TRUE(decodeServerStats(encodeServerStats(St), St2));
  EXPECT_EQ(St2.QueueWaitNormal.Count, 80u);
  EXPECT_EQ(St2.QueueWaitNormal.P95, 0.010);
  EXPECT_EQ(St2.QueueWaitHigh.Count, 20u);
  ASSERT_EQ(St2.EngineLatencies.size(), 1u);
  EXPECT_EQ(St2.EngineLatencies[0].Engine, "process");
  EXPECT_EQ(St2.EngineLatencies[0].Latency.P99, 0.2);
}

TEST(ServiceWireTest, LegacyPayloadsWithoutExtensionsDecode) {
  // A pre-tracing peer's encodings are exactly today's bytes minus the
  // trailing extension; chopping reproduces them. The extension fields
  // must come back at their defaults, not leftovers.
  {
    ServerHelloMsg M;
    M.Pid = 4242;
    M.HelloRecvSec = 9.0;
    std::vector<uint8_t> Bytes = encodeServerHello(M);
    Bytes.resize(Bytes.size() - 2 * sizeof(double));
    ServerHelloMsg Out;
    ASSERT_TRUE(decodeServerHello(Bytes, Out));
    EXPECT_EQ(Out.Pid, 4242u);
    EXPECT_EQ(Out.HelloRecvSec, 0.0);
  }
  {
    CompileRequestMsg M;
    M.RequestId = 3;
    M.ModuleSource = "module m;\n";
    M.TraceId = 777;
    std::vector<uint8_t> Bytes = encodeCompileRequest(M);
    Bytes.resize(Bytes.size() - 2 * sizeof(uint64_t));
    CompileRequestMsg Out;
    ASSERT_TRUE(decodeCompileRequest(Bytes, Out));
    EXPECT_EQ(Out.RequestId, 3u);
    EXPECT_EQ(Out.ModuleSource, M.ModuleSource);
    EXPECT_EQ(Out.TraceId, 0u);
    EXPECT_EQ(Out.ParentSpanId, 0u);
  }
  {
    CompileResultMsg M;
    M.RequestId = 3;
    M.Image = {9, 9, 9};
    std::vector<uint8_t> Bytes = encodeCompileResult(M);
    Bytes.resize(Bytes.size() - sizeof(uint64_t)); // Empty bytes() trailer.
    CompileResultMsg Out;
    ASSERT_TRUE(decodeCompileResult(Bytes, Out));
    EXPECT_EQ(Out.Image, M.Image);
    EXPECT_TRUE(Out.ShardBytes.empty());
  }
  {
    ServerStatsMsg M;
    M.Accepted = 11;
    M.P95Ms = 2.5;
    std::vector<uint8_t> Bytes = encodeServerStats(M);
    Bytes.resize(Bytes.size() - 68); // Two quantile blocks + row count.
    ServerStatsMsg Out;
    ASSERT_TRUE(decodeServerStats(Bytes, Out));
    EXPECT_EQ(Out.Accepted, 11u);
    EXPECT_EQ(Out.P95Ms, 2.5);
    EXPECT_EQ(Out.QueueWaitNormal.Count, 0u);
    EXPECT_TRUE(Out.EngineLatencies.empty());
  }
}

TEST(ServiceWireTest, ServerStatsRejectsOversizedEngineTable) {
  // The encoder clamps to MaxEngineLatencyRows, so a row count past the
  // cap can only come from a hostile peer; it must be rejected before
  // the decoder allocates.
  ServerStatsMsg M;
  for (uint32_t I = 0; I != MaxEngineLatencyRows + 4; ++I) {
    EngineLatency E;
    E.Engine = "e" + std::to_string(I);
    M.EngineLatencies.push_back(E);
  }
  std::vector<uint8_t> Bytes = encodeServerStats(M);
  ServerStatsMsg Out;
  ASSERT_TRUE(decodeServerStats(Bytes, Out));
  EXPECT_EQ(Out.EngineLatencies.size(), size_t(MaxEngineLatencyRows));
}

TEST(ServiceWireTest, ServerStatsFlippedByteFuzz) {
  // Single-byte flips across the full extended encoding must never
  // crash; a successful decode must still respect the engine-table cap.
  ServerStatsMsg M;
  M.Accepted = 5;
  M.QueueWaitNormal.Count = 3;
  M.QueueWaitNormal.P50 = 0.5;
  EngineLatency E;
  E.Engine = "thread";
  E.Latency.Count = 2;
  M.EngineLatencies = {E};
  const std::vector<uint8_t> Full = encodeServerStats(M);
  for (size_t I = 0; I < Full.size(); ++I) {
    for (uint8_t Bit : {uint8_t(0x01), uint8_t(0x80)}) {
      std::vector<uint8_t> Mut = Full;
      Mut[I] ^= Bit;
      ServerStatsMsg Out;
      if (decodeServerStats(Mut, Out))
        EXPECT_LE(Out.EngineLatencies.size(), size_t(MaxEngineLatencyRows));
    }
  }
}
