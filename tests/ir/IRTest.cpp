//===- IRTest.cpp ----------------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::ir;

namespace {

/// Builds a two-block function: entry computes a constant and branches to
/// an exit block that returns it.
std::unique_ptr<IRFunction> makeTwoBlockFunction() {
  auto F = std::make_unique<IRFunction>("f", w2::Type::intTy());
  BasicBlock *Entry = F->createBlock();
  BasicBlock *Exit = F->createBlock();

  Instr C;
  C.Op = Opcode::ConstInt;
  C.Ty = ValueType::Int;
  C.Dst = F->newReg();
  C.IntImm = 7;
  Entry->Instrs.push_back(C);

  Instr Br;
  Br.Op = Opcode::Br;
  Br.Target0 = Exit->id();
  Entry->Instrs.push_back(Br);

  Instr Ret;
  Ret.Op = Opcode::Ret;
  Ret.Ty = ValueType::Int;
  Ret.Operands = {C.Dst};
  Exit->Instrs.push_back(Ret);
  return F;
}

} // namespace

TEST(IRTest, BlockIdsAreDense) {
  IRFunction F("f", w2::Type::voidTy());
  EXPECT_EQ(F.createBlock()->id(), 0u);
  EXPECT_EQ(F.createBlock()->id(), 1u);
  EXPECT_EQ(F.createBlock()->id(), 2u);
  EXPECT_EQ(F.numBlocks(), 3u);
  EXPECT_EQ(F.entry()->id(), 0u);
}

TEST(IRTest, RegistersAllocateSequentially) {
  IRFunction F("f", w2::Type::voidTy());
  EXPECT_EQ(F.newReg(), 0u);
  EXPECT_EQ(F.newReg(), 1u);
  EXPECT_EQ(F.numRegs(), 2u);
}

TEST(IRTest, VariablesRoundTrip) {
  IRFunction F("f", w2::Type::voidTy());
  VarId V = F.addVariable(Variable{"acc", w2::Type::floatTy(), false});
  EXPECT_EQ(F.variable(V).Name, "acc");
  EXPECT_TRUE(F.variable(V).Ty.isFloat());
}

TEST(IRTest, SuccessorsOfBranches) {
  auto F = makeTwoBlockFunction();
  auto Succs = F->block(0)->successors();
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0], 1u);
  EXPECT_TRUE(F->block(1)->successors().empty());
}

TEST(IRTest, PredecessorsComputed) {
  auto F = makeTwoBlockFunction();
  auto Preds = F->computePredecessors();
  ASSERT_EQ(Preds.size(), 2u);
  EXPECT_TRUE(Preds[0].empty());
  ASSERT_EQ(Preds[1].size(), 1u);
  EXPECT_EQ(Preds[1][0], 0u);
}

TEST(IRTest, VerifyAcceptsWellFormed) {
  auto F = makeTwoBlockFunction();
  EXPECT_EQ(verifyFunction(*F), "");
}

TEST(IRTest, VerifyRejectsMissingTerminator) {
  IRFunction F("f", w2::Type::voidTy());
  BasicBlock *B = F.createBlock();
  Instr C;
  C.Op = Opcode::ConstInt;
  C.Dst = F.newReg();
  B->Instrs.push_back(C);
  EXPECT_NE(verifyFunction(F), "");
}

TEST(IRTest, VerifyRejectsEmptyBlock) {
  IRFunction F("f", w2::Type::voidTy());
  F.createBlock();
  EXPECT_NE(verifyFunction(F), "");
}

TEST(IRTest, VerifyRejectsBadBranchTarget) {
  IRFunction F("f", w2::Type::voidTy());
  BasicBlock *B = F.createBlock();
  Instr Br;
  Br.Op = Opcode::Br;
  Br.Target0 = 99;
  B->Instrs.push_back(Br);
  EXPECT_NE(verifyFunction(F), "");
}

TEST(IRTest, VerifyRejectsUnallocatedRegister) {
  IRFunction F("f", w2::Type::intTy());
  BasicBlock *B = F.createBlock();
  Instr Ret;
  Ret.Op = Opcode::Ret;
  Ret.Operands = {42}; // never allocated
  B->Instrs.push_back(Ret);
  EXPECT_NE(verifyFunction(F), "");
}

TEST(IRTest, VerifyRejectsMidBlockTerminator) {
  auto F = makeTwoBlockFunction();
  // Append an extra instruction after the entry's branch.
  Instr C;
  C.Op = Opcode::ConstInt;
  C.Dst = F->newReg();
  F->block(0)->Instrs.push_back(C);
  EXPECT_NE(verifyFunction(*F), "");
}

TEST(IRTest, VerifierCollectsEveryIssue) {
  IRFunction F("f", w2::Type::voidTy());
  BasicBlock *B = F.createBlock();
  Instr C;
  C.Op = Opcode::ConstInt;
  C.Dst = F.newReg();
  B->Instrs.push_back(C); // no terminator -> issue 1
  F.createBlock();        // empty block -> issue 2
  std::vector<VerifierIssue> Issues = verifyFunctionIssues(F);
  EXPECT_GE(Issues.size(), 2u);
  // The compatibility wrapper reports the first issue as text.
  EXPECT_NE(verifyFunction(F), "");
}

TEST(IRTest, VerifierIssueRendersItsAnchor) {
  IRFunction F("f", w2::Type::voidTy());
  F.createBlock();
  std::vector<VerifierIssue> Issues = verifyFunctionIssues(F);
  ASSERT_EQ(Issues.size(), 1u);
  std::string Text = Issues[0].str(F);
  EXPECT_NE(Text.find("function 'f'"), std::string::npos) << Text;
  EXPECT_NE(Text.find("bb0"), std::string::npos) << Text;
}

TEST(IRTest, VerifierRejectsWrongArity) {
  auto F = makeTwoBlockFunction();
  // Add takes exactly two operands; give it one.
  Instr Bad;
  Bad.Op = Opcode::Add;
  Bad.Dst = F->newReg();
  Bad.Operands = {0};
  F->block(0)->Instrs.insert(F->block(0)->Instrs.begin(), Bad);
  EXPECT_NE(verifyFunction(*F), "");
}

TEST(IRTest, VerifierRejectsMissingResultRegister) {
  auto F = makeTwoBlockFunction();
  Instr Bad;
  Bad.Op = Opcode::ConstInt; // must define a result
  Bad.Dst = InvalidReg;
  F->block(0)->Instrs.insert(F->block(0)->Instrs.begin(), Bad);
  EXPECT_NE(verifyFunction(*F), "");
}

TEST(IRTest, VerifierCatchesUseWithoutAnyDef) {
  // The overzealous-DCE scenario: an operand register that was allocated
  // but whose defining instruction has been deleted.
  auto F = makeTwoBlockFunction();
  Reg Orphan = F->newReg(); // allocated, never defined
  Instr Use;
  Use.Op = Opcode::Neg;
  Use.Dst = F->newReg();
  Use.Operands = {Orphan};
  F->block(0)->Instrs.insert(F->block(0)->Instrs.begin() + 1, Use);
  std::string Verdict = verifyFunction(*F);
  EXPECT_NE(Verdict.find("no instruction defines"), std::string::npos)
      << Verdict;
}

TEST(IRTest, VerifierChecksVariableClass) {
  IRFunction F("f", w2::Type::voidTy());
  VarId Arr = F.addVariable(Variable{
      "buf", w2::Type::arrayTy(w2::ScalarKind::Float, 8), false});
  BasicBlock *B = F.createBlock();
  Instr Load;
  Load.Op = Opcode::LoadVar; // scalar access to an array variable
  Load.Ty = ValueType::Float;
  Load.Dst = F.newReg();
  Load.Var = Arr;
  B->Instrs.push_back(Load);
  Instr Ret;
  Ret.Op = Opcode::Ret;
  B->Instrs.push_back(Ret);
  std::string Verdict = verifyFunction(F);
  EXPECT_NE(Verdict.find("as a scalar"), std::string::npos) << Verdict;
}

TEST(IRTest, CountChannelOps) {
  IRFunction F("f", w2::Type::voidTy());
  VarId V = F.addVariable(Variable{"v", w2::Type::floatTy(), false});
  (void)V;
  BasicBlock *B = F.createBlock();
  Instr R1;
  R1.Op = Opcode::Recv;
  R1.Ty = ValueType::Float;
  R1.Dst = F.newReg();
  B->Instrs.push_back(R1);
  Instr S1;
  S1.Op = Opcode::Send;
  S1.Ty = ValueType::Float;
  S1.Operands = {R1.Dst};
  B->Instrs.push_back(S1);
  Instr Ret;
  Ret.Op = Opcode::Ret;
  B->Instrs.push_back(Ret);
  EXPECT_EQ(countChannelOps(F), 2u);
  EXPECT_EQ(verifyFunction(F), "");
}

TEST(IRTest, PrintContainsStructure) {
  auto F = makeTwoBlockFunction();
  std::string Text = printFunction(*F);
  EXPECT_NE(Text.find("function f"), std::string::npos);
  EXPECT_NE(Text.find("bb0:"), std::string::npos);
  EXPECT_NE(Text.find("bb1:"), std::string::npos);
  EXPECT_NE(Text.find("iconst"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

TEST(IRTest, OpcodePredicates) {
  EXPECT_TRUE(isTerminator(Opcode::Br));
  EXPECT_TRUE(isTerminator(Opcode::CondBr));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_FALSE(isTerminator(Opcode::Add));

  Instr Load;
  Load.Op = Opcode::LoadElem;
  EXPECT_TRUE(Load.readsMemory());
  EXPECT_FALSE(Load.writesMemory());

  Instr Store;
  Store.Op = Opcode::StoreVar;
  EXPECT_TRUE(Store.writesMemory());

  Instr Call;
  Call.Op = Opcode::Call;
  EXPECT_TRUE(Call.hasSideEffects());

  Instr Send;
  Send.Op = Opcode::Send;
  EXPECT_TRUE(Send.hasSideEffects());
}

TEST(IRTest, InstructionCount) {
  auto F = makeTwoBlockFunction();
  EXPECT_EQ(F->instructionCount(), 3u);
}
