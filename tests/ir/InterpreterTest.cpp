//===- InterpreterTest.cpp -------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include "../TestHelpers.h"
#include "opt/LocalOpt.h"
#include "support/PRNG.h"
#include "w2/Inliner.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::ir;
using warpc::test::lowerFirstFunction;
using warpc::test::wrapFunction;

namespace {

ExecInput makeInput(std::vector<ExecInput::Arg> Args,
                    std::vector<double> XIn = {},
                    std::vector<double> YIn = {}) {
  ExecInput Input;
  Input.Args = std::move(Args);
  Input.XInput = std::move(XIn);
  Input.YInput = std::move(YIn);
  return Input;
}

} // namespace

TEST(InterpreterTest, ArithmeticAndReturn) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float, n: int): float {
  return x * 2.0 + n;
}
)"));
  ASSERT_TRUE(F);
  ExecResult R = interpret(
      *F, makeInput({ExecInput::Arg::ofFloat(3.5), ExecInput::Arg::ofInt(4)}));
  ASSERT_TRUE(R.Completed) << R.Fault;
  ASSERT_TRUE(R.HasReturn);
  EXPECT_DOUBLE_EQ(R.Return.asFloat(), 11.0);
}

TEST(InterpreterTest, LoopAccumulation) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(n: int): int {
  var acc: int = 0;
  for i = 1 to 10 {
    acc = acc + i;
  }
  return acc + n;
}
)"));
  ASSERT_TRUE(F);
  ExecResult R = interpret(*F, makeInput({ExecInput::Arg::ofInt(100)}));
  ASSERT_TRUE(R.Completed) << R.Fault;
  EXPECT_EQ(R.Return.asInt(), 155);
}

TEST(InterpreterTest, BranchesAndWhile) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): int {
  var count: int = 0;
  var v: float = x;
  while (v > 1.0) {
    v = v / 2.0;
    count = count + 1;
  }
  if (count > 3) {
    return count;
  }
  return 0 - count;
}
)"));
  ASSERT_TRUE(F);
  ExecResult R = interpret(*F, makeInput({ExecInput::Arg::ofFloat(32.0)}));
  ASSERT_TRUE(R.Completed) << R.Fault;
  EXPECT_EQ(R.Return.asInt(), 5);
  ExecResult R2 = interpret(*F, makeInput({ExecInput::Arg::ofFloat(4.0)}));
  ASSERT_TRUE(R2.Completed);
  EXPECT_EQ(R2.Return.asInt(), -2);
}

TEST(InterpreterTest, ArraysMutateInPlace) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: float[4]): float {
  for i = 0 to 3 {
    a[i] = a[i] * 2.0;
  }
  return a[3];
}
)"));
  ASSERT_TRUE(F);
  ExecResult R = interpret(
      *F, makeInput({ExecInput::Arg::ofArray({1, 2, 3, 4})}));
  ASSERT_TRUE(R.Completed) << R.Fault;
  EXPECT_DOUBLE_EQ(R.Return.asFloat(), 8.0);
  ASSERT_EQ(R.FinalArrays.size(), 1u);
  EXPECT_EQ(R.FinalArrays[0], (std::vector<double>{2, 4, 6, 8}));
}

TEST(InterpreterTest, ChannelsFIFO) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f() {
  var a: float = 0.0;
  var b: float = 0.0;
  receive(X, a);
  receive(X, b);
  send(Y, a + b);
  send(Y, a - b);
}
)"));
  ASSERT_TRUE(F);
  ExecResult R = interpret(*F, makeInput({}, {10.0, 4.0}));
  ASSERT_TRUE(R.Completed) << R.Fault;
  ASSERT_EQ(R.YOutput.size(), 2u);
  EXPECT_DOUBLE_EQ(R.YOutput[0], 14.0);
  EXPECT_DOUBLE_EQ(R.YOutput[1], 6.0);
}

TEST(InterpreterTest, EmptyChannelFaults) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f() {
  var a: float = 0.0;
  receive(X, a);
}
)"));
  ASSERT_TRUE(F);
  ExecResult R = interpret(*F, makeInput({}));
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Fault.find("empty channel"), std::string::npos);
}

TEST(InterpreterTest, DivisionByZeroFaults) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(n: int): int {
  return 10 / n;
}
)"));
  ASSERT_TRUE(F);
  ExecResult R = interpret(*F, makeInput({ExecInput::Arg::ofInt(0)}));
  EXPECT_FALSE(R.Completed);
  ExecResult R2 = interpret(*F, makeInput({ExecInput::Arg::ofInt(5)}));
  ASSERT_TRUE(R2.Completed);
  EXPECT_EQ(R2.Return.asInt(), 2);
}

TEST(InterpreterTest, StepBudgetStopsRunaway) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  var v: float = 1.0;
  while (v > 0.0) {
    v = v + 1.0;
  }
  return 0;
}
)"));
  ASSERT_TRUE(F);
  ExecInput Input = makeInput({});
  Input.StepBudget = 10000;
  ExecResult R = interpret(*F, Input);
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Fault.find("budget"), std::string::npos);
}

TEST(InterpreterTest, Intrinsics) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float {
  return sqrt(x) + abs(0.0 - x);
}
)"));
  ASSERT_TRUE(F);
  ExecResult R = interpret(*F, makeInput({ExecInput::Arg::ofFloat(9.0)}));
  ASSERT_TRUE(R.Completed) << R.Fault;
  EXPECT_DOUBLE_EQ(R.Return.asFloat(), 12.0);
}

//===----------------------------------------------------------------------===//
// Differential testing: the optimizer must preserve observable behavior.
//===----------------------------------------------------------------------===//

namespace {

/// Compares two results field by field.
void expectSameBehavior(const ExecResult &A, const ExecResult &B,
                        const std::string &Context) {
  ASSERT_TRUE(A.Completed) << Context << ": baseline faulted: " << A.Fault;
  ASSERT_TRUE(B.Completed) << Context << ": transformed faulted: " << B.Fault;
  EXPECT_EQ(A.HasReturn, B.HasReturn) << Context;
  if (A.HasReturn && B.HasReturn) {
    EXPECT_TRUE(A.Return == B.Return)
        << Context << ": return " << A.Return.asFloat() << " vs "
        << B.Return.asFloat();
  }
  EXPECT_EQ(A.XOutput, B.XOutput) << Context;
  EXPECT_EQ(A.YOutput, B.YOutput) << Context;
  EXPECT_EQ(A.FinalArrays, B.FinalArrays) << Context;
}

/// Workload functions take (xin, gain) and read at most a few X values.
ExecInput workloadInput(PRNG &Rng) {
  ExecInput Input;
  Input.Args.push_back(
      ExecInput::Arg::ofFloat(Rng.uniform(0.25, 3.0)));
  Input.Args.push_back(
      ExecInput::Arg::ofFloat(Rng.uniform(0.25, 2.0)));
  for (int I = 0; I != 64; ++I)
    Input.XInput.push_back(Rng.uniform(-2.0, 2.0));
  return Input;
}

} // namespace

struct DiffParam {
  workload::FunctionSize Size;
  uint64_t Seed;
};

class OptimizerDifferential : public ::testing::TestWithParam<DiffParam> {};

TEST_P(OptimizerDifferential, OptimizationPreservesBehavior) {
  std::string Source = workload::makeTestModule(GetParam().Size, 1,
                                                GetParam().Seed);
  auto M = test::checkModule(Source);
  ASSERT_TRUE(M);
  const w2::FunctionDecl *F = M->getSection(0)->getFunction(0);

  auto Raw = lowerFunction(*F);
  auto Optimized = lowerFunction(*F);
  opt::runLocalOpt(*Optimized);

  PRNG Rng(GetParam().Seed * 7919 + 13);
  for (int Trial = 0; Trial != 3; ++Trial) {
    ExecInput Input = workloadInput(Rng);
    ExecResult A = interpret(*Raw, Input);
    ExecResult B = interpret(*Optimized, Input);
    expectSameBehavior(A, B,
                       std::string(workload::sizeName(GetParam().Size)) +
                           " trial " + std::to_string(Trial));
  }
}

// Only the shallow workloads run to completion in reasonable step
// budgets (the deeper nests execute millions of iterations); a
// handwritten deep-nest case below covers nesting with small extents.
INSTANTIATE_TEST_SUITE_P(
    Workloads, OptimizerDifferential,
    ::testing::Values(DiffParam{workload::FunctionSize::Tiny, 1},
                      DiffParam{workload::FunctionSize::Tiny, 3},
                      DiffParam{workload::FunctionSize::Small, 1},
                      DiffParam{workload::FunctionSize::Small, 2},
                      DiffParam{workload::FunctionSize::Small, 5},
                      DiffParam{workload::FunctionSize::Small, 9}),
    [](const ::testing::TestParamInfo<DiffParam> &Info) {
      return std::string(workload::sizeName(Info.param.Size)).substr(2) +
             "_seed" + std::to_string(Info.param.Seed);
    });

TEST(OptimizerDifferentialTest, DeepNestWithSmallExtents) {
  // A depth-4 nest like f_huge's, but with tiny trip counts so the
  // interpreter finishes quickly.
  auto Source = wrapFunction(R"(
function f(xin: float, gain: float): float {
  var acc: float = 0.0;
  var tmp: float = 1.0;
  var buf: float[16];
  var aux: float[16];
  receive(X, tmp);
  for i1 = 0 to 3 {
    buf[i1] = xin * gain + tmp;
    for i2 = 0 to 3 {
      aux[i2] = aux[i2] + buf[i1] * 0.5;
      for i3 = 0 to 3 {
        buf[i3 + 1] = buf[i3] * gain + aux[i2];
        for i4 = 0 to 3 {
          acc = acc + buf[i4] * aux[i4 + 2] - sqrt(buf[i4 + 2] * aux[i4]
                + 0.25);
          tmp = abs(tmp - acc) * 0.125 + xin;
        }
      }
      send(X, acc * 0.5);
    }
    send(Y, tmp);
  }
  return acc;
}
)");
  auto M = test::checkModule(Source);
  ASSERT_TRUE(M);
  const w2::FunctionDecl *F = M->getSection(0)->getFunction(0);
  auto Raw = lowerFunction(*F);
  auto Optimized = lowerFunction(*F);
  opt::runLocalOpt(*Optimized);
  PRNG Rng(99);
  for (int Trial = 0; Trial != 4; ++Trial) {
    ExecInput Input = workloadInput(Rng);
    ExecResult A = interpret(*Raw, Input);
    ExecResult B = interpret(*Optimized, Input);
    expectSameBehavior(A, B, "deep nest trial " + std::to_string(Trial));
    // The optimizer must not change the instruction count upward.
    EXPECT_LE(B.StepsExecuted, A.StepsExecuted);
  }
}

//===----------------------------------------------------------------------===//
// Differential testing: the inliner must preserve observable behavior.
//===----------------------------------------------------------------------===//

TEST(InlinerDifferential, InliningPreservesBehavior) {
  const std::string Source = R"(
module m;
section s {
  function weight(x: float, k: float): float {
    var r: float = x * k + 0.5;
    return r;
  }
  function f(a: float[8], g: float): float {
    var acc: float = 0.0;
    for i = 0 to 7 {
      a[i] = weight(a[i], g);
      acc = acc + a[i];
    }
    return acc;
  }
}
)";
  // Baseline: compile with the call resolved by interpreting the callee.
  auto Original = test::checkModule(Source);
  ASSERT_TRUE(Original);
  auto CalleeIR = lowerFunction(*Original->getSection(0)->getFunction(0));
  auto CallerIR = lowerFunction(*Original->getSection(0)->getFunction(1));

  CallHandler Handler = [&](const std::string &Callee,
                            const std::vector<RuntimeValue> &ScalarArgs,
                            std::vector<std::vector<double> *> &ArrayArgs,
                            bool &Ok) -> RuntimeValue {
    EXPECT_EQ(Callee, "weight");
    EXPECT_TRUE(ArrayArgs.empty());
    ExecInput Input;
    for (const RuntimeValue &V : ScalarArgs) {
      ExecInput::Arg Arg;
      Arg.Scalar = V;
      Input.Args.push_back(Arg);
    }
    ExecResult R = interpret(*CalleeIR, Input);
    Ok = R.Completed && R.HasReturn;
    return R.Return;
  };

  // Transformed: inline, re-check, lower.
  DiagnosticEngine Diags;
  w2::Lexer L(Source, Diags);
  w2::Parser P(L.lexAll(), Diags);
  auto Inlined = P.parseModule();
  w2::inlineSmallFunctions(*Inlined);
  w2::Sema S(Diags);
  ASSERT_TRUE(S.checkModule(*Inlined)) << Diags.str();
  ASSERT_EQ(Inlined->getSection(0)->numFunctions(), 1u);
  auto InlinedIR = lowerFunction(*Inlined->getSection(0)->getFunction(0));
  opt::runLocalOpt(*InlinedIR);

  PRNG Rng(4242);
  for (int Trial = 0; Trial != 5; ++Trial) {
    std::vector<double> Data;
    for (int I = 0; I != 8; ++I)
      Data.push_back(Rng.uniform(-4.0, 4.0));
    ExecInput Input;
    Input.Args.push_back(ExecInput::Arg::ofArray(Data));
    Input.Args.push_back(ExecInput::Arg::ofFloat(Rng.uniform(0.5, 2.0)));

    ExecResult A = interpret(*CallerIR, Input, &Handler);
    ExecResult B = interpret(*InlinedIR, Input);
    expectSameBehavior(A, B, "trial " + std::to_string(Trial));
  }
}
