//===- IRBuilderTest.cpp ---------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::ir;
using warpc::test::countOps;
using warpc::test::lowerFirstFunction;
using warpc::test::wrapFunction;

TEST(IRBuilderTest, StraightLineFunction) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float {
  var acc: float = x * 2.0;
  return acc;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(F->numBlocks(), 1u);
  EXPECT_EQ(countOps(*F, Opcode::Mul), 1u);
  EXPECT_EQ(countOps(*F, Opcode::StoreVar), 1u);
  EXPECT_EQ(countOps(*F, Opcode::Ret), 1u);
}

TEST(IRBuilderTest, ParamsBecomeVariables) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: int, b: float, c: float[4]): float {
  return b;
}
)"));
  ASSERT_TRUE(F);
  ASSERT_EQ(F->numVariables(), 3u);
  EXPECT_EQ(F->variable(0).Name, "a");
  EXPECT_TRUE(F->variable(0).IsParam);
  EXPECT_TRUE(F->variable(2).Ty.isArray());
}

TEST(IRBuilderTest, IfProducesDiamond) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(n: int): int {
  var r: int = 0;
  if (n > 0) {
    r = 1;
  } else {
    r = 2;
  }
  return r;
}
)"));
  ASSERT_TRUE(F);
  // entry + then + else + merge.
  EXPECT_EQ(F->numBlocks(), 4u);
  EXPECT_EQ(countOps(*F, Opcode::CondBr), 1u);
  auto Preds = F->computePredecessors();
  // The merge block has two predecessors.
  bool FoundMerge = false;
  for (const auto &P : Preds)
    FoundMerge |= P.size() == 2;
  EXPECT_TRUE(FoundMerge);
}

TEST(IRBuilderTest, IfWithoutElse) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(n: int): int {
  var r: int = 0;
  if (n > 0) {
    r = 1;
  }
  return r;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(F->numBlocks(), 3u); // entry, then, merge
}

TEST(IRBuilderTest, ForLoopShape) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  var acc: int = 0;
  for i = 0 to 9 {
    acc = acc + i;
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  // entry, header, body, exit.
  EXPECT_EQ(F->numBlocks(), 4u);
  EXPECT_EQ(countOps(*F, Opcode::CmpLE), 1u);

  // The loop body ends with the induction update "ind = add ind, step"
  // followed by the back branch.
  const BasicBlock *Body = F->block(2);
  ASSERT_GE(Body->Instrs.size(), 2u);
  const Instr &Latch = Body->Instrs[Body->Instrs.size() - 2];
  EXPECT_EQ(Latch.Op, Opcode::Add);
  ASSERT_EQ(Latch.Operands.size(), 2u);
  EXPECT_EQ(Latch.Operands[0], Latch.Dst);
  EXPECT_EQ(Body->Instrs.back().Op, Opcode::Br);
  EXPECT_EQ(Body->Instrs.back().Target0, 1u);
}

TEST(IRBuilderTest, NegativeStepComparesWithGE) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(): int {
  var acc: int = 0;
  for i = 9 to 0 by -1 {
    acc = acc + i;
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::CmpGE), 1u);
  EXPECT_EQ(countOps(*F, Opcode::CmpLE), 0u);
}

TEST(IRBuilderTest, WhileLoopReevaluatesCondition) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float {
  var v: float = x;
  while (v > 1.0) {
    v = v / 2.0;
  }
  return v;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(F->numBlocks(), 4u);
  // The comparison lives in the header block (id 1), evaluated per trip.
  bool CmpInHeader = false;
  for (const Instr &I : F->block(1)->Instrs)
    CmpInHeader |= I.Op == Opcode::CmpGT;
  EXPECT_TRUE(CmpInHeader);
}

TEST(IRBuilderTest, ArrayLoadAndStore) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: float[8], n: int): float {
  a[n] = a[n + 1] * 2.0;
  return a[0];
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::LoadElem), 2u);
  EXPECT_EQ(countOps(*F, Opcode::StoreElem), 1u);
}

TEST(IRBuilderTest, SendRecvChannels) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f() {
  var v: float = 0.0;
  receive(X, v);
  send(Y, v + 1.0);
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::Recv), 1u);
  EXPECT_EQ(countOps(*F, Opcode::Send), 1u);
}

TEST(IRBuilderTest, CastLowersToIntToFloat) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float, n: int): float {
  return x + n;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::IntToFloat), 1u);
}

TEST(IRBuilderTest, CallWithScalarAndArrayArgs) {
  auto M = test::checkModule(wrapFunction(R"(
function g(a: float[4], s: float): float { return a[0] + s; }
function f(): float {
  var buf: float[4];
  buf[0] = 1.0;
  return g(buf, 2.0);
}
)"));
  ASSERT_TRUE(M);
  auto F = lowerFunction(*M->getSection(0)->getFunction(1));
  ASSERT_EQ(verifyFunction(*F), "");
  unsigned Calls = 0;
  for (size_t B = 0; B != F->numBlocks(); ++B)
    for (const Instr &I : F->block(static_cast<BlockId>(B))->Instrs)
      if (I.Op == Opcode::Call) {
        ++Calls;
        EXPECT_EQ(I.Callee, "g");
        EXPECT_EQ(I.ArrayArgs.size(), 1u);
        EXPECT_EQ(I.Operands.size(), 1u);
        EXPECT_TRUE(I.definesReg());
      }
  EXPECT_EQ(Calls, 1u);
}

TEST(IRBuilderTest, IntrinsicsLowerToDedicatedOpcodes) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float {
  return sqrt(x) + abs(x);
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::Sqrt), 1u);
  EXPECT_EQ(countOps(*F, Opcode::Abs), 1u);
  EXPECT_EQ(countOps(*F, Opcode::Call), 0u);
}

TEST(IRBuilderTest, EarlyReturnKeepsBlocksTerminated) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(n: int): int {
  if (n > 0) {
    return 1;
  }
  return 2;
}
)"));
  ASSERT_TRUE(F);
  // All blocks verified terminated by the helper; additionally there are
  // two returns.
  EXPECT_EQ(countOps(*F, Opcode::Ret), 2u);
}

TEST(IRBuilderTest, FallOffEndOfNonVoidReturnsZero) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(n: int): int {
  if (n > 0) {
    return 1;
  }
}
)"));
  // Sema warns... actually Sema accepts since one value return exists;
  // lowering appends a default return on the fall-through path.
  ASSERT_TRUE(F);
  EXPECT_EQ(countOps(*F, Opcode::Ret), 2u);
}

TEST(IRBuilderTest, ComparisonCarriesOperandType) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): int {
  return x > 2.0;
}
)"));
  ASSERT_TRUE(F);
  bool Found = false;
  for (const Instr &I : F->block(0)->Instrs)
    if (I.Op == Opcode::CmpGT) {
      Found = true;
      EXPECT_EQ(I.Ty, ValueType::Float);
    }
  EXPECT_TRUE(Found);
}

TEST(IRBuilderTest, LogicalOpsAreStrict) {
  // W2's && and || evaluate both sides (no short-circuit control flow),
  // so no extra blocks appear.
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: int, b: int): int {
  return a > 0 && b > 0;
}
)"));
  ASSERT_TRUE(F);
  EXPECT_EQ(F->numBlocks(), 1u);
  EXPECT_EQ(countOps(*F, Opcode::And), 1u);
}
