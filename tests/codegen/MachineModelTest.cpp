//===- MachineModelTest.cpp ------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/MachineModel.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::codegen;
using namespace warpc::ir;

namespace {

Instr make(Opcode Op, ValueType Ty) {
  Instr I;
  I.Op = Op;
  I.Ty = Ty;
  return I;
}

} // namespace

TEST(MachineModelTest, FloatAddUsesAdderPipelined) {
  MachineModel MM = MachineModel::warpCell();
  OpInfo Info = MM.opInfo(make(Opcode::Add, ValueType::Float));
  EXPECT_EQ(Info.Unit, FUKind::FAdd);
  EXPECT_EQ(Info.Latency, 5u);
  EXPECT_EQ(Info.Reserve, 1u); // fully pipelined
}

TEST(MachineModelTest, IntAddUsesALU) {
  MachineModel MM = MachineModel::warpCell();
  OpInfo Info = MM.opInfo(make(Opcode::Add, ValueType::Int));
  EXPECT_EQ(Info.Unit, FUKind::IAlu);
  EXPECT_EQ(Info.Latency, 1u);
}

TEST(MachineModelTest, MultiplierOps) {
  MachineModel MM = MachineModel::warpCell();
  EXPECT_EQ(MM.opInfo(make(Opcode::Mul, ValueType::Float)).Unit,
            FUKind::FMul);
  OpInfo Div = MM.opInfo(make(Opcode::Div, ValueType::Float));
  EXPECT_EQ(Div.Unit, FUKind::FMul);
  EXPECT_GT(Div.Latency, 5u);
  EXPECT_GT(Div.Reserve, 1u); // partially pipelined
  EXPECT_EQ(MM.opInfo(make(Opcode::Sqrt, ValueType::Float)).Unit,
            FUKind::FMul);
}

TEST(MachineModelTest, MemoryOps) {
  MachineModel MM = MachineModel::warpCell();
  OpInfo Load = MM.opInfo(make(Opcode::LoadElem, ValueType::Float));
  EXPECT_EQ(Load.Unit, FUKind::Mem);
  EXPECT_EQ(Load.Latency, 2u);
  OpInfo Store = MM.opInfo(make(Opcode::StoreVar, ValueType::Float));
  EXPECT_EQ(Store.Unit, FUKind::Mem);
  EXPECT_EQ(Store.Latency, 1u);
}

TEST(MachineModelTest, ChannelOps) {
  MachineModel MM = MachineModel::warpCell();
  EXPECT_EQ(MM.opInfo(make(Opcode::Send, ValueType::Float)).Unit,
            FUKind::Chan);
  EXPECT_EQ(MM.opInfo(make(Opcode::Recv, ValueType::Float)).Unit,
            FUKind::Chan);
}

TEST(MachineModelTest, ControlFlowOnSequencer) {
  MachineModel MM = MachineModel::warpCell();
  EXPECT_EQ(MM.opInfo(make(Opcode::Br, ValueType::Int)).Unit,
            FUKind::Branch);
  EXPECT_EQ(MM.opInfo(make(Opcode::CondBr, ValueType::Int)).Unit,
            FUKind::Branch);
  OpInfo Call = MM.opInfo(make(Opcode::Call, ValueType::Float));
  EXPECT_EQ(Call.Unit, FUKind::Branch);
  EXPECT_GT(Call.Latency, 5u);
}

TEST(MachineModelTest, FloatCompareOnAdder) {
  MachineModel MM = MachineModel::warpCell();
  EXPECT_EQ(MM.opInfo(make(Opcode::CmpLT, ValueType::Float)).Unit,
            FUKind::FAdd);
  EXPECT_EQ(MM.opInfo(make(Opcode::CmpLT, ValueType::Int)).Unit,
            FUKind::IAlu);
}

TEST(MachineModelTest, OneSlotPerUnit) {
  MachineModel MM = MachineModel::warpCell();
  for (unsigned U = 0; U != NumFUKinds; ++U)
    EXPECT_EQ(MM.slots(static_cast<FUKind>(U)), 1u);
}

TEST(MachineModelTest, RegisterFiles) {
  MachineModel MM = MachineModel::warpCell();
  EXPECT_GT(MM.intRegs(), 0u);
  EXPECT_GT(MM.floatRegs(), 0u);
}

TEST(MachineModelTest, UnitNames) {
  EXPECT_STREQ(fuKindName(FUKind::FAdd), "fadd");
  EXPECT_STREQ(fuKindName(FUKind::FMul), "fmul");
  EXPECT_STREQ(fuKindName(FUKind::IAlu), "ialu");
  EXPECT_STREQ(fuKindName(FUKind::Mem), "mem");
  EXPECT_STREQ(fuKindName(FUKind::Chan), "chan");
  EXPECT_STREQ(fuKindName(FUKind::Branch), "br");
}
