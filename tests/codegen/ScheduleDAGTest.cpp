//===- ScheduleDAGTest.cpp -------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/ScheduleDAG.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::codegen;
using namespace warpc::ir;
using warpc::test::lowerFirstFunction;
using warpc::test::wrapFunction;

namespace {

bool hasEdge(const ScheduleDAG &DAG, uint32_t From, uint32_t To) {
  for (const DAGEdge &E : DAG.Edges)
    if (E.From == From && E.To == To)
      return true;
  return false;
}

} // namespace

TEST(ScheduleDAGTest, ExcludesTerminator) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float { return x + 1.0; }
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  ScheduleDAG DAG = ScheduleDAG::build(*F->block(0), MM);
  EXPECT_EQ(DAG.NumNodes, F->block(0)->Instrs.size() - 1);
}

TEST(ScheduleDAGTest, DefUseEdgeCarriesLatency) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float { return x * 2.0 + 1.0; }
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  const BasicBlock *BB = F->block(0);
  ScheduleDAG DAG = ScheduleDAG::build(*BB, MM);

  // Find the mul and the add; the edge between them carries the mul's
  // 5-cycle latency.
  uint32_t MulIdx = UINT32_MAX, AddIdx = UINT32_MAX;
  for (uint32_t I = 0; I != DAG.NumNodes; ++I) {
    if (BB->Instrs[I].Op == Opcode::Mul)
      MulIdx = I;
    if (BB->Instrs[I].Op == Opcode::Add)
      AddIdx = I;
  }
  ASSERT_NE(MulIdx, UINT32_MAX);
  ASSERT_NE(AddIdx, UINT32_MAX);
  bool Found = false;
  for (const DAGEdge &E : DAG.Edges)
    if (E.From == MulIdx && E.To == AddIdx) {
      Found = true;
      EXPECT_EQ(E.Latency, 5u);
    }
  EXPECT_TRUE(Found);
}

TEST(ScheduleDAGTest, AllEdgesPointForward) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: float[8], x: float): float {
  a[0] = x * 2.0;
  a[1] = a[0] + 1.0;
  var v: float = 0.0;
  receive(X, v);
  send(Y, v + a[1]);
  return v;
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  ScheduleDAG DAG = ScheduleDAG::build(*F->block(0), MM);
  for (const DAGEdge &E : DAG.Edges)
    EXPECT_LT(E.From, E.To);
}

TEST(ScheduleDAGTest, MemoryOrderingSameVariable) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: float[8]): float {
  a[0] = 1.0;
  return a[1];
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  const BasicBlock *BB = F->block(0);
  ScheduleDAG DAG = ScheduleDAG::build(*BB, MM);
  uint32_t StoreIdx = UINT32_MAX, LoadIdx = UINT32_MAX;
  for (uint32_t I = 0; I != DAG.NumNodes; ++I) {
    if (BB->Instrs[I].Op == Opcode::StoreElem)
      StoreIdx = I;
    if (BB->Instrs[I].Op == Opcode::LoadElem)
      LoadIdx = I;
  }
  ASSERT_NE(StoreIdx, UINT32_MAX);
  ASSERT_NE(LoadIdx, UINT32_MAX);
  // Conservative same-array ordering.
  EXPECT_TRUE(hasEdge(DAG, StoreIdx, LoadIdx));
}

TEST(ScheduleDAGTest, IndependentVariablesUnordered) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(a: float[8], b: float[8]) {
  a[0] = 1.0;
  b[0] = 2.0;
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  const BasicBlock *BB = F->block(0);
  ScheduleDAG DAG = ScheduleDAG::build(*BB, MM);
  uint32_t StoreA = UINT32_MAX, StoreB = UINT32_MAX;
  for (uint32_t I = 0; I != DAG.NumNodes; ++I)
    if (BB->Instrs[I].Op == Opcode::StoreElem) {
      if (StoreA == UINT32_MAX)
        StoreA = I;
      else
        StoreB = I;
    }
  ASSERT_NE(StoreB, UINT32_MAX);
  EXPECT_FALSE(hasEdge(DAG, StoreA, StoreB));
  EXPECT_FALSE(hasEdge(DAG, StoreB, StoreA));
}

TEST(ScheduleDAGTest, ChannelFIFOOrdering) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float) {
  send(X, x);
  send(X, x + 1.0);
  send(Y, x);
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  const BasicBlock *BB = F->block(0);
  ScheduleDAG DAG = ScheduleDAG::build(*BB, MM);
  std::vector<uint32_t> XSends, YSends;
  for (uint32_t I = 0; I != DAG.NumNodes; ++I)
    if (BB->Instrs[I].Op == Opcode::Send) {
      if (BB->Instrs[I].Chan == w2::Channel::X)
        XSends.push_back(I);
      else
        YSends.push_back(I);
    }
  ASSERT_EQ(XSends.size(), 2u);
  ASSERT_EQ(YSends.size(), 1u);
  EXPECT_TRUE(hasEdge(DAG, XSends[0], XSends[1]));
  // Different channels are independent.
  EXPECT_FALSE(hasEdge(DAG, XSends[1], YSends[0]));
}

TEST(ScheduleDAGTest, HeightsDecreaseAlongEdges) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float {
  return (x * 2.0 + 1.0) * (x - 3.0);
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  ScheduleDAG DAG = ScheduleDAG::build(*F->block(0), MM);
  for (const DAGEdge &E : DAG.Edges)
    EXPECT_GE(DAG.Height[E.From], E.Latency + DAG.Height[E.To]);
}
