//===- RegAllocTest.cpp ----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/RegAlloc.h"

#include "../TestHelpers.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::codegen;
using namespace warpc::ir;
using warpc::test::lowerFirstFunction;
using warpc::test::optimizeFirstFunction;
using warpc::test::wrapFunction;

TEST(RegAllocTest, SmallFunctionFitsWithoutSpills) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float {
  return x * 2.0 + 1.0;
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  RegAllocResult RA = allocateRegisters(*F, MM);
  EXPECT_EQ(RA.Spills, 0u);
  EXPECT_GT(RA.FloatRegsUsed, 0u);
  EXPECT_LE(RA.FloatRegsUsed, MM.floatRegs());
}

TEST(RegAllocTest, IntAndFloatFilesIndependent) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float, n: int): float {
  var a: int = n + 1;
  var b: float = x * 2.0;
  if (a > 0) {
    return b;
  }
  return 0.0;
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  RegAllocResult RA = allocateRegisters(*F, MM);
  EXPECT_GT(RA.IntRegsUsed, 0u);
  EXPECT_GT(RA.FloatRegsUsed, 0u);
  EXPECT_EQ(RA.Spills, 0u);
}

TEST(RegAllocTest, ComparisonsConsumeIntRegisters) {
  Instr Cmp;
  Cmp.Op = Opcode::CmpLT;
  Cmp.Ty = ValueType::Float; // float operands...
  EXPECT_EQ(resultType(Cmp), ValueType::Int); // ...but an int result.

  Instr Itof;
  Itof.Op = Opcode::IntToFloat;
  Itof.Ty = ValueType::Float;
  EXPECT_EQ(resultType(Itof), ValueType::Float);

  Instr Recv;
  Recv.Op = Opcode::Recv;
  EXPECT_EQ(resultType(Recv), ValueType::Float);
}

TEST(RegAllocTest, AssignmentsWithinFileOrSpill) {
  auto F = optimizeFirstFunction(
      workload::makeTestModule(workload::FunctionSize::Medium, 1));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  RegAllocResult RA = allocateRegisters(*F, MM);
  EXPECT_EQ(RA.Assignment.size(), F->numRegs());
  EXPECT_LE(RA.IntRegsUsed, MM.intRegs());
  EXPECT_LE(RA.FloatRegsUsed, MM.floatRegs());
}

TEST(RegAllocTest, DisjointLiveRangesShareRegisters) {
  // Many short-lived values in sequence reuse a small set of registers.
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float {
  var a: float = x + 1.0;
  var b: float = a + 1.0;
  var c: float = b + 1.0;
  var d: float = c + 1.0;
  var e: float = d + 1.0;
  return e;
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  RegAllocResult RA = allocateRegisters(*F, MM);
  EXPECT_EQ(RA.Spills, 0u);
  // Chained single-use values need only a few physical registers even
  // though the function uses many virtual ones.
  EXPECT_LT(RA.FloatRegsUsed, F->numRegs());
}

TEST(RegAllocTest, PressureTracked) {
  auto F = optimizeFirstFunction(
      workload::makeTestModule(workload::FunctionSize::Small, 1));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  RegAllocResult RA = allocateRegisters(*F, MM);
  EXPECT_GT(RA.PeakPressure, 0u);
  EXPECT_GT(RA.Work, 0u);
}

TEST(RegAllocTest, WorkloadsStayAllocatable) {
  for (auto Size : {workload::FunctionSize::Small,
                    workload::FunctionSize::Medium,
                    workload::FunctionSize::Large}) {
    auto F = optimizeFirstFunction(workload::makeTestModule(Size, 1));
    ASSERT_TRUE(F);
    MachineModel MM = MachineModel::warpCell();
    RegAllocResult RA = allocateRegisters(*F, MM);
    EXPECT_LE(RA.IntRegsUsed, MM.intRegs()) << workload::sizeName(Size);
    EXPECT_LE(RA.FloatRegsUsed, MM.floatRegs()) << workload::sizeName(Size);
  }
}
