//===- ModuloSchedulerTest.cpp ---------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/ModuloScheduler.h"

#include "../TestHelpers.h"
#include "opt/Dependence.h"
#include "opt/LoopInfo.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::codegen;
using namespace warpc::ir;
using namespace warpc::opt;
using warpc::test::optimizeFirstFunction;
using warpc::test::wrapFunction;

namespace {

struct Pipelined {
  std::unique_ptr<IRFunction> F;
  Loop TheLoop;
  LoopDeps Deps;
  LoopSchedule Sched;
  bool FoundLoop = false;
};

Pipelined pipelineFirstLoop(const std::string &Source) {
  Pipelined Result;
  Result.F = optimizeFirstFunction(Source);
  if (!Result.F)
    return Result;
  MachineModel MM = MachineModel::warpCell();
  LoopInfo LI = LoopInfo::compute(*Result.F);
  for (const Loop &L : LI.loops()) {
    if (!L.isSimpleInnerLoop())
      continue;
    Result.TheLoop = L;
    Result.Deps = analyzeLoopDependences(*Result.F, L);
    Result.Sched = moduloSchedule(*Result.F, L, Result.Deps, MM);
    Result.FoundLoop = true;
    return Result;
  }
  return Result;
}

} // namespace

TEST(ModuloSchedulerTest, PipelinesElementwiseLoop) {
  auto P = pipelineFirstLoop(wrapFunction(R"(
function f(a: float[32], x: float): float {
  for i = 0 to 31 {
    a[i] = a[i] * x + 1.0;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(P.FoundLoop);
  ASSERT_TRUE(P.Sched.Pipelined);
  MachineModel MM = MachineModel::warpCell();
  EXPECT_EQ(validateLoopSchedule(*P.F, P.TheLoop, P.Deps, MM, P.Sched), "");
  EXPECT_GE(P.Sched.II, P.Sched.MII);
  EXPECT_GE(P.Sched.Stages, 2u) << "no overlap achieved";
}

TEST(ModuloSchedulerTest, IIAtLeastResMII) {
  auto P = pipelineFirstLoop(wrapFunction(R"(
function f(a: float[32], b: float[32]): float {
  for i = 0 to 31 {
    a[i] = a[i] + b[i];
  }
  return a[0];
}
)"));
  ASSERT_TRUE(P.FoundLoop);
  ASSERT_TRUE(P.Sched.Pipelined);
  // 2 loads + 1 store on one memory port: ResMII >= 3.
  EXPECT_GE(P.Sched.ResMII, 3u);
  EXPECT_GE(P.Sched.II, P.Sched.ResMII);
}

TEST(ModuloSchedulerTest, AccumulatorBoundsRecMII) {
  auto P = pipelineFirstLoop(wrapFunction(R"(
function f(a: float[32]): float {
  var acc: float = 0.0;
  for i = 0 to 31 {
    acc = acc + a[i];
  }
  return acc;
}
)"));
  ASSERT_TRUE(P.FoundLoop);
  // The memory-carried accumulator chain (load, fadd, store) bounds the
  // initiation interval: load(2) + add(5) + store(1) = 8.
  EXPECT_GE(P.Sched.RecMII, 8u);
  if (P.Sched.Pipelined) {
    MachineModel MM = MachineModel::warpCell();
    EXPECT_EQ(validateLoopSchedule(*P.F, P.TheLoop, P.Deps, MM, P.Sched),
              "");
  }
}

TEST(ModuloSchedulerTest, KernelCyclesWithinII) {
  auto P = pipelineFirstLoop(wrapFunction(R"(
function f(a: float[32], x: float): float {
  for i = 0 to 31 {
    a[i] = a[i] * x;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(P.FoundLoop);
  ASSERT_TRUE(P.Sched.Pipelined);
  for (const KernelOp &K : P.Sched.Kernel) {
    EXPECT_LT(K.Cycle, P.Sched.II);
    EXPECT_LT(K.Stage, P.Sched.Stages);
  }
}

TEST(ModuloSchedulerTest, UnsafeLoopNotPipelined) {
  LoopDeps Deps;
  Deps.PipelineSafe = false;
  IRFunction F("f", w2::Type::voidTy());
  F.createBlock();
  Loop L;
  L.Header = 0;
  L.Latch = 0;
  L.Blocks = {0, 0};
  MachineModel MM = MachineModel::warpCell();
  LoopSchedule S = moduloSchedule(F, L, Deps, MM);
  EXPECT_FALSE(S.Pipelined);
}

TEST(ModuloSchedulerTest, AttemptsAreCounted) {
  auto P = pipelineFirstLoop(wrapFunction(R"(
function f(a: float[32], x: float): float {
  for i = 0 to 31 {
    a[i] = a[i] * x + 1.0;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(P.FoundLoop);
  EXPECT_GT(P.Sched.Attempts, 0u);
  EXPECT_GT(P.Sched.RecMIIWork, 0u);
}

TEST(ModuloSchedulerTest, PipeliningBeatsSequentialIssue) {
  // The whole point: II is much smaller than the loop body's sequential
  // length.
  auto P = pipelineFirstLoop(wrapFunction(R"(
function f(a: float[32], b: float[32], x: float): float {
  for i = 0 to 31 {
    a[i] = b[i] * x + 1.0;
    b[i] = b[i] + 0.5;
  }
  return a[0];
}
)"));
  ASSERT_TRUE(P.FoundLoop);
  ASSERT_TRUE(P.Sched.Pipelined);
  // Sequential issue of the body costs at least the critical path; the
  // kernel initiates a new iteration every II cycles.
  uint32_t BodyOps = 0;
  const BasicBlock *Body = P.F->block(P.TheLoop.bodyBlock());
  BodyOps = static_cast<uint32_t>(Body->Instrs.size()) - 1;
  EXPECT_LT(P.Sched.II, BodyOps * 2);
  EXPECT_GT(P.Sched.Stages, 1u);
}

//===----------------------------------------------------------------------===//
// Property sweep: every pipelined loop in the benchmark workloads
// validates against its dependences and the modulo reservation table.
//===----------------------------------------------------------------------===//

struct ModuloSweepParam {
  workload::FunctionSize Size;
  uint64_t Seed;
};

class ModuloSweep : public ::testing::TestWithParam<ModuloSweepParam> {};

TEST_P(ModuloSweep, PipelinedLoopsValidate) {
  std::string Source = workload::makeTestModule(GetParam().Size, 1,
                                                GetParam().Seed);
  auto F = optimizeFirstFunction(Source);
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  LoopInfo LI = LoopInfo::compute(*F);
  unsigned Checked = 0;
  for (const Loop &L : LI.loops()) {
    if (!L.isSimpleInnerLoop())
      continue;
    LoopDeps Deps = analyzeLoopDependences(*F, L);
    LoopSchedule S = moduloSchedule(*F, L, Deps, MM);
    if (!S.Pipelined)
      continue;
    ++Checked;
    EXPECT_EQ(validateLoopSchedule(*F, L, Deps, MM, S), "");
    EXPECT_GE(S.II, S.MII);
  }
  if (GetParam().Size != workload::FunctionSize::Tiny) {
    EXPECT_GT(Checked, 0u) << "no loop was pipelined";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ModuloSweep,
    ::testing::Values(ModuloSweepParam{workload::FunctionSize::Small, 1},
                      ModuloSweepParam{workload::FunctionSize::Small, 7},
                      ModuloSweepParam{workload::FunctionSize::Medium, 1},
                      ModuloSweepParam{workload::FunctionSize::Medium, 5},
                      ModuloSweepParam{workload::FunctionSize::Large, 1},
                      ModuloSweepParam{workload::FunctionSize::Large, 3},
                      ModuloSweepParam{workload::FunctionSize::Huge, 1},
                      ModuloSweepParam{workload::FunctionSize::Huge, 2}),
    [](const ::testing::TestParamInfo<ModuloSweepParam> &Info) {
      return std::string(workload::sizeName(Info.param.Size)).substr(2) +
             "_seed" + std::to_string(Info.param.Seed);
    });
