//===- ListSchedulerTest.cpp -----------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "codegen/ListScheduler.h"

#include "../TestHelpers.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::codegen;
using namespace warpc::ir;
using warpc::test::lowerFirstFunction;
using warpc::test::optimizeFirstFunction;
using warpc::test::wrapFunction;

TEST(ListSchedulerTest, SchedulesEveryInstructionOnce) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float {
  return (x * 2.0 + 1.0) / (x + 3.0);
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  BlockSchedule S = listSchedule(*F->block(0), MM);
  EXPECT_EQ(S.Ops.size(), F->block(0)->Instrs.size());
  EXPECT_EQ(validateBlockSchedule(*F->block(0), MM, S), "");
}

TEST(ListSchedulerTest, RespectsLatency) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float {
  return x * 2.0 + 1.0;
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  const BasicBlock *BB = F->block(0);
  BlockSchedule S = listSchedule(*BB, MM);
  uint32_t MulCycle = 0, AddCycle = 0;
  for (const ScheduledOp &Op : S.Ops) {
    if (BB->Instrs[Op.InstrIdx].Op == Opcode::Mul)
      MulCycle = Op.Cycle;
    if (BB->Instrs[Op.InstrIdx].Op == Opcode::Add)
      AddCycle = Op.Cycle;
  }
  EXPECT_GE(AddCycle, MulCycle + 5);
}

TEST(ListSchedulerTest, IndependentOpsOverlapAcrossUnits) {
  // An int op and a float op with no dependence can share a cycle.
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float, n: int): float {
  var a: float = x * 2.0;
  var b: int = n + 1;
  if (b > 0) {
    return a;
  }
  return 0.0;
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  BlockSchedule S = listSchedule(*F->block(0), MM);
  EXPECT_EQ(validateBlockSchedule(*F->block(0), MM, S), "");
  // The schedule is shorter than fully sequential issue.
  EXPECT_LT(S.Length, F->block(0)->Instrs.size() * 3);
}

TEST(ListSchedulerTest, SerializesSameUnit) {
  // Two independent float multiplies still issue in different cycles (one
  // multiplier).
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float, y: float): float {
  return x * 2.0 + y * 3.0;
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  const BasicBlock *BB = F->block(0);
  BlockSchedule S = listSchedule(*BB, MM);
  std::vector<uint32_t> MulCycles;
  for (const ScheduledOp &Op : S.Ops)
    if (BB->Instrs[Op.InstrIdx].Op == Opcode::Mul)
      MulCycles.push_back(Op.Cycle);
  ASSERT_EQ(MulCycles.size(), 2u);
  EXPECT_NE(MulCycles[0], MulCycles[1]);
}

TEST(ListSchedulerTest, TerminatorIssuesLast) {
  auto F = lowerFirstFunction(wrapFunction(R"(
function f(x: float): float { return x * 2.0; }
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  const BasicBlock *BB = F->block(0);
  BlockSchedule S = listSchedule(*BB, MM);
  uint32_t TermIdx = static_cast<uint32_t>(BB->Instrs.size() - 1);
  uint32_t TermCycle = 0;
  for (const ScheduledOp &Op : S.Ops)
    if (Op.InstrIdx == TermIdx)
      TermCycle = Op.Cycle;
  for (const ScheduledOp &Op : S.Ops)
    EXPECT_LE(Op.Cycle, TermCycle);
}

TEST(ListSchedulerTest, EmptyBlockZeroLength) {
  IRFunction F("f", w2::Type::voidTy());
  BasicBlock *BB = F.createBlock();
  Instr Ret;
  Ret.Op = Opcode::Ret;
  BB->Instrs.push_back(Ret);
  MachineModel MM = MachineModel::warpCell();
  BlockSchedule S = listSchedule(*BB, MM);
  EXPECT_EQ(S.Ops.size(), 1u); // just the terminator
}

//===----------------------------------------------------------------------===//
// Property sweep: every block of every optimized workload function has a
// valid schedule.
//===----------------------------------------------------------------------===//

struct SweepParam {
  workload::FunctionSize Size;
  uint64_t Seed;
};

class ListSchedulerSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ListSchedulerSweep, AllBlocksValid) {
  std::string Source = workload::makeTestModule(GetParam().Size, 1,
                                                GetParam().Seed);
  auto F = optimizeFirstFunction(Source);
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  for (size_t B = 0; B != F->numBlocks(); ++B) {
    BlockSchedule S = listSchedule(*F->block(static_cast<BlockId>(B)), MM);
    EXPECT_EQ(validateBlockSchedule(*F->block(static_cast<BlockId>(B)), MM,
                                    S),
              "")
        << "block " << B;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ListSchedulerSweep,
    ::testing::Values(SweepParam{workload::FunctionSize::Tiny, 1},
                      SweepParam{workload::FunctionSize::Small, 1},
                      SweepParam{workload::FunctionSize::Small, 2},
                      SweepParam{workload::FunctionSize::Small, 3},
                      SweepParam{workload::FunctionSize::Medium, 1},
                      SweepParam{workload::FunctionSize::Medium, 2},
                      SweepParam{workload::FunctionSize::Large, 1},
                      SweepParam{workload::FunctionSize::Huge, 1}),
    [](const ::testing::TestParamInfo<SweepParam> &Info) {
      return std::string(workload::sizeName(Info.param.Size)).substr(2) +
             "_seed" + std::to_string(Info.param.Seed);
    });
