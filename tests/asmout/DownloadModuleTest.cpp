//===- DownloadModuleTest.cpp ----------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "asmout/DownloadModule.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::asmout;

namespace {

CellProgram makeProgram(const std::string &Name, size_t Words) {
  CellProgram P;
  P.FunctionName = Name;
  P.CodeWords = Words;
  for (size_t B = 0; B != Words * 8; ++B)
    P.Image.push_back(static_cast<uint8_t>(B * 31 + Name.size()));
  return P;
}

} // namespace

TEST(DownloadModuleTest, IODriverScalesWithCells) {
  std::vector<CellProgram> Programs;
  Programs.push_back(makeProgram("f", 4));
  auto Small = generateIODriver("s", 2, Programs);
  auto Large = generateIODriver("s", 10, Programs);
  EXPECT_GT(Large.size(), Small.size());
}

TEST(DownloadModuleTest, IODriverScalesWithFunctions) {
  std::vector<CellProgram> One, Three;
  One.push_back(makeProgram("a", 2));
  Three.push_back(makeProgram("a", 2));
  Three.push_back(makeProgram("b", 2));
  Three.push_back(makeProgram("c", 2));
  EXPECT_GT(generateIODriver("s", 4, Three).size(),
            generateIODriver("s", 4, One).size());
}

TEST(DownloadModuleTest, CombineKeepsDeclarationOrder) {
  std::vector<CellProgram> Programs;
  Programs.push_back(makeProgram("first", 1));
  Programs.push_back(makeProgram("second", 2));
  SectionImage S = combineSection("sec", 4, std::move(Programs));
  ASSERT_EQ(S.Programs.size(), 2u);
  EXPECT_EQ(S.Programs[0].FunctionName, "first");
  EXPECT_EQ(S.Programs[1].FunctionName, "second");
  EXPECT_EQ(S.SectionName, "sec");
  EXPECT_EQ(S.NumCells, 4u);
  EXPECT_FALSE(S.IODriver.empty());
}

TEST(DownloadModuleTest, TotalWordsIncludeDriverAndPrograms) {
  std::vector<CellProgram> Programs;
  Programs.push_back(makeProgram("f", 10));
  SectionImage S = combineSection("sec", 2, std::move(Programs));
  EXPECT_GE(S.totalWords(), 10u);
}

TEST(DownloadModuleTest, LinkedModuleHasMagicAndName) {
  std::vector<SectionImage> Sections;
  {
    std::vector<CellProgram> Programs;
    Programs.push_back(makeProgram("f", 3));
    Sections.push_back(combineSection("sec1", 2, std::move(Programs)));
  }
  DownloadModule M = linkModule("prog", std::move(Sections));
  EXPECT_EQ(M.ModuleName, "prog");
  ASSERT_GE(M.Image.size(), 4u);
  uint32_t Magic = M.Image[0] | (M.Image[1] << 8) | (M.Image[2] << 16) |
                   (static_cast<uint32_t>(M.Image[3]) << 24);
  EXPECT_EQ(Magic, 0x5750444du); // "WPDM"
  // The module name appears in the image.
  std::string Blob(M.Image.begin(), M.Image.end());
  EXPECT_NE(Blob.find("prog"), std::string::npos);
}

TEST(DownloadModuleTest, SymbolsForEveryFunction) {
  std::vector<SectionImage> Sections;
  {
    std::vector<CellProgram> Programs;
    Programs.push_back(makeProgram("alpha", 1));
    Programs.push_back(makeProgram("beta", 1));
    Sections.push_back(combineSection("sec1", 2, std::move(Programs)));
  }
  {
    std::vector<CellProgram> Programs;
    Programs.push_back(makeProgram("gamma", 1));
    Sections.push_back(combineSection("sec2", 3, std::move(Programs)));
  }
  DownloadModule M = linkModule("prog", std::move(Sections));
  std::string Blob(M.Image.begin(), M.Image.end());
  EXPECT_NE(Blob.find("alpha"), std::string::npos);
  EXPECT_NE(Blob.find("beta"), std::string::npos);
  EXPECT_NE(Blob.find("gamma"), std::string::npos);
  EXPECT_NE(Blob.find("sec1"), std::string::npos);
  EXPECT_NE(Blob.find("sec2"), std::string::npos);
}

TEST(DownloadModuleTest, ImageIsDeterministic) {
  auto Build = [] {
    std::vector<SectionImage> Sections;
    std::vector<CellProgram> Programs;
    Programs.push_back(makeProgram("f", 5));
    Sections.push_back(combineSection("s", 2, std::move(Programs)));
    return linkModule("m", std::move(Sections));
  };
  EXPECT_EQ(Build().Image, Build().Image);
}

TEST(DownloadModuleTest, ChangedCodeChangesChecksum) {
  auto Build = [](uint8_t Tweak) {
    std::vector<SectionImage> Sections;
    std::vector<CellProgram> Programs;
    CellProgram P = makeProgram("f", 5);
    P.Image[20] ^= Tweak;
    Programs.push_back(std::move(P));
    Sections.push_back(combineSection("s", 2, std::move(Programs)));
    return linkModule("m", std::move(Sections));
  };
  DownloadModule A = Build(0), B = Build(0xff);
  EXPECT_NE(A.Image, B.Image);
  // The trailing four bytes are the checksum; they must differ too.
  std::vector<uint8_t> TailA(A.Image.end() - 4, A.Image.end());
  std::vector<uint8_t> TailB(B.Image.end() - 4, B.Image.end());
  EXPECT_NE(TailA, TailB);
}
