//===- AssemblyTest.cpp ----------------------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "asmout/Assembly.h"

#include "../TestHelpers.h"
#include "codegen/CodeGen.h"

#include <gtest/gtest.h>

using namespace warpc;
using namespace warpc::asmout;
using namespace warpc::codegen;
using warpc::test::optimizeFirstFunction;
using warpc::test::wrapFunction;

namespace {

CellProgram assemble(const std::string &Source) {
  auto F = optimizeFirstFunction(Source);
  EXPECT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  MachineFunction MF = generateCode(*F, MM);
  return assembleFunction(*F, MF);
}

} // namespace

TEST(AssemblyTest, ProducesListingAndImage) {
  CellProgram P = assemble(wrapFunction(R"(
function f(x: float): float {
  return x * 2.0 + 1.0;
}
)"));
  EXPECT_EQ(P.FunctionName, "f");
  EXPECT_GT(P.CodeWords, 0u);
  EXPECT_FALSE(P.Listing.empty());
  EXPECT_GT(P.Image.size(), 12u); // more than the header
}

TEST(AssemblyTest, ImageStartsWithMagic) {
  CellProgram P = assemble(wrapFunction(R"(
function f(x: float): float { return x; }
)"));
  ASSERT_GE(P.Image.size(), 4u);
  uint32_t Magic = P.Image[0] | (P.Image[1] << 8) | (P.Image[2] << 16) |
                   (static_cast<uint32_t>(P.Image[3]) << 24);
  EXPECT_EQ(Magic, 0x57415250u); // "WARP"
}

TEST(AssemblyTest, ListingMentionsFunctionAndRegs) {
  CellProgram P = assemble(wrapFunction(R"(
function kernel(x: float): float { return x + 1.0; }
)"));
  EXPECT_NE(P.Listing.find(".function kernel"), std::string::npos);
  EXPECT_NE(P.Listing.find(".regs"), std::string::npos);
}

TEST(AssemblyTest, PipelinedLoopAnnotated) {
  CellProgram P = assemble(wrapFunction(R"(
function f(a: float[32], x: float): float {
  for i = 0 to 31 {
    a[i] = a[i] * x + 0.5;
  }
  return a[0];
}
)"));
  EXPECT_NE(P.Listing.find(".pipelined ii="), std::string::npos);
  EXPECT_NE(P.Listing.find("stages="), std::string::npos);
}

TEST(AssemblyTest, CodeWordsMatchMachineFunction) {
  auto F = optimizeFirstFunction(wrapFunction(R"(
function f(a: float[16]): float {
  var acc: float = 0.0;
  for i = 0 to 15 {
    acc = acc + a[i];
  }
  return acc;
}
)"));
  ASSERT_TRUE(F);
  MachineModel MM = MachineModel::warpCell();
  MachineFunction MF = generateCode(*F, MM);
  CellProgram P = assembleFunction(*F, MF);
  EXPECT_EQ(P.CodeWords, MF.codeWords());
  EXPECT_EQ(P.IntRegsUsed, MF.RA.IntRegsUsed);
  EXPECT_EQ(P.FloatRegsUsed, MF.RA.FloatRegsUsed);
}

TEST(AssemblyTest, DeterministicOutput) {
  std::string Source = wrapFunction(R"(
function f(a: float[8], x: float): float {
  for i = 0 to 7 {
    a[i] = a[i] + x;
  }
  return a[0];
}
)");
  CellProgram P1 = assemble(Source);
  CellProgram P2 = assemble(Source);
  EXPECT_EQ(P1.Listing, P2.Listing);
  EXPECT_EQ(P1.Image, P2.Image);
}
