#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then
# smoke-test the observability pipeline end to end (warpc --trace-json
# -> warp-traceview on an example module).
set -euo pipefail

REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_DIR/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$REPO_DIR"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== trace smoke test =="
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

"$BUILD_DIR/tools/warpc" --demo user --simulate \
    --trace-json "$TMP_DIR/user.trace.json" \
    --stats-json "$TMP_DIR/user.stats.json"
test -s "$TMP_DIR/user.trace.json"
test -s "$TMP_DIR/user.stats.json"

"$BUILD_DIR/tools/warp-traceview" "$TMP_DIR/user.trace.json" \
    | tee "$TMP_DIR/traceview.out"
grep -q "critical path" "$TMP_DIR/traceview.out"

echo "== OK =="
