#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then
# smoke-test the observability pipeline end to end (warpc --trace-json
# -> warp-traceview on an example module) and the static analyzer
# (warp-lint over the built-in demos). Set WARPC_VERIFY_SANITIZE=1 to
# also build and run the analysis tests under ASan+UBSan.
set -euo pipefail

REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_DIR/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S "$REPO_DIR"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== process engine tests =="
# The process suite forks real warp-worker pools; cap the worker grid to
# the runner's core count so constrained CI machines never oversubscribe
# (the cap only drops grid points above it, never the suite).
WARPC_TEST_MAX_WORKERS="${WARPC_TEST_MAX_WORKERS:-$JOBS}" \
    ctest --test-dir "$BUILD_DIR" -L process --output-on-failure -j "$JOBS"

echo "== trace smoke test =="
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

"$BUILD_DIR/tools/warpc" --demo user --simulate \
    --trace-json "$TMP_DIR/user.trace.json" \
    --stats-json "$TMP_DIR/user.stats.json"
test -s "$TMP_DIR/user.trace.json"
test -s "$TMP_DIR/user.stats.json"

"$BUILD_DIR/tools/warp-traceview" "$TMP_DIR/user.trace.json" \
    | tee "$TMP_DIR/traceview.out"
grep -q "critical path" "$TMP_DIR/traceview.out"

echo "== lint smoke test =="
# Every shipped workload must lint clean, and the diagnostic stream must
# be byte-identical no matter how many analysis workers run.
for demo in fig1 user; do
  "$BUILD_DIR/tools/warp-lint" --demo "$demo" | tee "$TMP_DIR/lint.out"
  grep -q "0 error(s), 0 warning(s)" "$TMP_DIR/lint.out"
done
"$BUILD_DIR/tools/warp-lint" --demo user --format json --jobs 1 \
    > "$TMP_DIR/lint.j1.json"
"$BUILD_DIR/tools/warp-lint" --demo user --format json --jobs 8 \
    > "$TMP_DIR/lint.j8.json"
cmp "$TMP_DIR/lint.j1.json" "$TMP_DIR/lint.j8.json"
# The analysis wavefront trace must load in warp-traceview and carry the
# per-SCC summarize spans.
"$BUILD_DIR/tools/warp-lint" --demo user --jobs 4 \
    --trace-json "$TMP_DIR/lint.trace.json" > /dev/null
grep -q "span_summarize" "$TMP_DIR/lint.trace.json"
"$BUILD_DIR/tools/warp-traceview" "$TMP_DIR/lint.trace.json" \
    | grep -q "thread engine"

echo "== warm summary smoke test =="
# A second lint over an unchanged module must replay every SCC summary
# from the cache (nonzero hits) without changing a byte of output.
"$BUILD_DIR/tools/warp-lint" --demo user --format json \
    --summary-cache "$TMP_DIR/summaries" \
    --stats-json "$TMP_DIR/lint.cold.stats.json" \
    > "$TMP_DIR/lint.cold.json"
"$BUILD_DIR/tools/warp-lint" --demo user --format json \
    --summary-cache "$TMP_DIR/summaries" \
    --stats-json "$TMP_DIR/lint.warm.stats.json" \
    > "$TMP_DIR/lint.warm.json"
cmp "$TMP_DIR/lint.cold.json" "$TMP_DIR/lint.warm.json"
SUMMARY_HITS="$(sed -n 's/.*"analysis.summary.hits": \([0-9.]*\).*/\1/p' \
    "$TMP_DIR/lint.warm.stats.json" | head -1)"
test -n "$SUMMARY_HITS"
test "${SUMMARY_HITS%.*}" -gt 0

echo "== cache smoke test =="
# A cold disk-cache build followed by a warm rebuild: the images must be
# byte-identical and the warm run must report a nonzero hit count.
"$BUILD_DIR/tools/warpc" --demo small --cache disk \
    --cache-dir "$TMP_DIR/cache" -o "$TMP_DIR/cold.img" \
    --stats-json "$TMP_DIR/cold.stats.json"
"$BUILD_DIR/tools/warpc" --demo small --cache disk \
    --cache-dir "$TMP_DIR/cache" -o "$TMP_DIR/warm.img" \
    --stats-json "$TMP_DIR/warm.stats.json"
cmp "$TMP_DIR/cold.img" "$TMP_DIR/warm.img"
HITS="$(sed -n 's/.*"cache.hits": \([0-9.]*\).*/\1/p' \
    "$TMP_DIR/warm.stats.json" | head -1)"
test -n "$HITS"
test "${HITS%.*}" -gt 0

echo "== process engine smoke test =="
# The real fork/exec backend must produce the same image as the
# sequential compiler, label its documents, and survive the retry paths
# through the installed CLI, not just the tests.
"$BUILD_DIR/tools/warpc" --demo small -o "$TMP_DIR/seq.img" > /dev/null
"$BUILD_DIR/tools/warpc" --demo small --engine process --processors 4 \
    -o "$TMP_DIR/proc.img" \
    --trace-json "$TMP_DIR/proc.trace.json" \
    --stats-json "$TMP_DIR/proc.stats.json" | tee "$TMP_DIR/proc.out"
cmp "$TMP_DIR/seq.img" "$TMP_DIR/proc.img"
grep -q "process compile with" "$TMP_DIR/proc.out"
grep -q '"engine": "process"' "$TMP_DIR/proc.stats.json"
"$BUILD_DIR/tools/warp-traceview" "$TMP_DIR/proc.trace.json" \
    | grep -q "process engine"

echo "== daemon smoke test =="
# The resident compile service end to end through the installed CLI: a
# warpd on a private socket must serve warpc --server the same bytes the
# local compiler produces, label its documents engine "daemon", and
# drain cleanly (exit 0) on SIGTERM.
"$BUILD_DIR/tools/warpd" --socket "$TMP_DIR/warpd.sock" \
    --stats-json "$TMP_DIR/daemon.stats.json" \
    > "$TMP_DIR/daemon.out" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -S "$TMP_DIR/warpd.sock" ] && break
  sleep 0.1
done
"$BUILD_DIR/tools/warpc" --demo small --server="$TMP_DIR/warpd.sock" \
    -o "$TMP_DIR/daemon.img" \
    --stats-json "$TMP_DIR/client.stats.json" | tee "$TMP_DIR/client.out"
grep -q "daemon compile via" "$TMP_DIR/client.out"
grep -q '"engine": "daemon"' "$TMP_DIR/client.stats.json"
cmp "$TMP_DIR/seq.img" "$TMP_DIR/daemon.img"
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
grep -q "drained" "$TMP_DIR/daemon.out"
grep -q '"engine": "daemon"' "$TMP_DIR/daemon.stats.json"
# With no daemon on the socket the client must fall back to a local
# compile (with a diagnostic) and still produce the same image.
"$BUILD_DIR/tools/warpc" --demo small --server="$TMP_DIR/warpd.sock" \
    -o "$TMP_DIR/fallback.img" 2> "$TMP_DIR/fallback.err"
grep -q "compiling locally" "$TMP_DIR/fallback.err"
cmp "$TMP_DIR/seq.img" "$TMP_DIR/fallback.img"

echo "== daemon trace smoke test =="
# Distributed tracing end to end: one warpc --server compile against a
# process-engine warpd must yield a single merged trace whose spans come
# from at least three distinct processes (client, daemon, workers),
# linked by flow events, and warp-traceview must attribute the request.
"$BUILD_DIR/tools/warpd" --socket "$TMP_DIR/warpd-trace.sock" \
    --engine process --workers 2 \
    --worker-bin "$BUILD_DIR/tools/warp-worker" \
    > "$TMP_DIR/daemon-trace.out" 2>&1 &
TRACE_DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -S "$TMP_DIR/warpd-trace.sock" ] && break
  sleep 0.1
done
"$BUILD_DIR/tools/warpc" --demo tiny --server="$TMP_DIR/warpd-trace.sock" \
    --engine process --trace-json "$TMP_DIR/daemon.trace.json" > /dev/null
kill -TERM "$TRACE_DAEMON_PID"
wait "$TRACE_DAEMON_PID"
TRACE_PIDS="$(grep -o '"pid": *[0-9]*' "$TMP_DIR/daemon.trace.json" \
    | sort -u | wc -l)"
test "$TRACE_PIDS" -ge 3
FLOW_EVENTS="$(grep -c '"ph": *"s"' "$TMP_DIR/daemon.trace.json")"
test "$FLOW_EVENTS" -ge 1
"$BUILD_DIR/tools/warp-traceview" "$TMP_DIR/daemon.trace.json" \
    | tee "$TMP_DIR/daemon-traceview.out"
grep -q "service requests" "$TMP_DIR/daemon-traceview.out"

echo "== perf gate smoke test =="
# Two identical simulated runs must clear the regression gate; halving
# the machine to two processors must trip it (exit 1).
"$BUILD_DIR/tools/warpc" --demo small --simulate \
    --stats-json "$TMP_DIR/perf.base.json" > /dev/null
"$BUILD_DIR/tools/warpc" --demo small --simulate \
    --stats-json "$TMP_DIR/perf.same.json" > /dev/null
"$BUILD_DIR/tools/warp-perf" "$TMP_DIR/perf.base.json" \
    "$TMP_DIR/perf.same.json" | tee "$TMP_DIR/perf.out"
grep -q "0 regression(s)" "$TMP_DIR/perf.out"
"$BUILD_DIR/tools/warpc" --demo small --simulate --processors 2 \
    --stats-json "$TMP_DIR/perf.slow.json" > /dev/null
if "$BUILD_DIR/tools/warp-perf" "$TMP_DIR/perf.base.json" \
    "$TMP_DIR/perf.slow.json" > "$TMP_DIR/perf.slow.out"; then
  echo "error: warp-perf failed to flag the slowed run" >&2
  exit 1
fi
grep -q "REGRESSION" "$TMP_DIR/perf.slow.out"

if [ "${WARPC_VERIFY_SANITIZE:-0}" = "1" ]; then
  echo "== asan+ubsan =="
  SAN_DIR="${SAN_BUILD_DIR:-$REPO_DIR/build-asan}"
  cmake -B "$SAN_DIR" -S "$REPO_DIR" -DWARPC_SANITIZE="address;undefined"
  cmake --build "$SAN_DIR" -j "$JOBS"
  ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS"
  # The cache suite exercises concurrent lookup/store from worker
  # threads; run it explicitly under the sanitizers.
  ctest --test-dir "$SAN_DIR" -L cache --output-on-failure -j "$JOBS"
  # The analysis suite drives the interprocedural wavefront (shared
  # summary maps, per-SCC diag slots) across worker counts; the
  # sanitizers are the only witness for its data-race freedom.
  ctest --test-dir "$SAN_DIR" -L analysis --output-on-failure -j "$JOBS"
  # The service suite runs the daemon's event loop, executor pool, and
  # live socket clients; the sanitizers watch the loop/executor handoff.
  WARPC_TEST_MAX_WORKERS="${WARPC_TEST_MAX_WORKERS:-$JOBS}" \
      ctest --test-dir "$SAN_DIR" -L service --output-on-failure -j "$JOBS"
  # The obs suite covers the span-shard codec (bounds checks, fuzzed
  # payloads) and the clock-aligned splice; run it explicitly so memory
  # errors in the decoder surface under the sanitizers.
  ctest --test-dir "$SAN_DIR" -L obs --output-on-failure -j "$JOBS"
  # The process suite ships worker span shards over the wire; the
  # sanitizers watch the shard encode/decode on both ends of the pipe.
  WARPC_TEST_MAX_WORKERS="${WARPC_TEST_MAX_WORKERS:-$JOBS}" \
      ctest --test-dir "$SAN_DIR" -L process --output-on-failure -j "$JOBS"
  "$SAN_DIR/tools/warp-lint" --demo user --jobs 4 > /dev/null
fi

echo "== OK =="
