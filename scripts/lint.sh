#!/usr/bin/env bash
# Runs clang-tidy (checks and warnings-as-errors policy in .clang-tidy)
# over every first-party translation unit, using the compile database the
# CMake configure step exports.
#
# clang-tidy is optional tooling: when it is not installed (the default
# CI image ships only gcc) the script reports and exits 0 so pipelines
# that chain it with verify.sh keep working.
set -euo pipefail

REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_DIR/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "lint: $TIDY not found; skipping (install clang-tidy to enable)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "== configure (for compile_commands.json) =="
  cmake -B "$BUILD_DIR" -S "$REPO_DIR"
fi

mapfile -t SOURCES < <(find "$REPO_DIR/src" "$REPO_DIR/tools" -name '*.cpp' | sort)
echo "== clang-tidy (${#SOURCES[@]} files) =="
printf '%s\n' "${SOURCES[@]}" \
  | xargs -P "$JOBS" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet

echo "== lint OK =="
