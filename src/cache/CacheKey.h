//===- CacheKey.h - Content-addressed function cache keys -------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Key derivation for the function-level compilation cache. The unit of
/// caching is the unit of parallelism: one checked function, compiled
/// through phases 2+3 by a function master. A function's key is a stable
/// 128-bit hash over
///
///   - its post-semantic AST fingerprint (structure, operators, literal
///     values, Sema-assigned types, and the declaration's source lines —
///     the lines matter because cached diagnostics replay the original
///     locations),
///   - a callee fingerprint: the signatures of every same-section callee
///     plus the full body hash of callees simple enough for the inliner
///     to expand, so editing a small helper invalidates its inliners,
///   - the compilation context: machine-model parameters, optimization
///     level, and the compiler's own build id.
///
/// Two functions with equal keys produce byte-identical phase-2/3 results;
/// everything downstream (the runners' dispatch-skipping, the incremental
/// differential tests) rests on that property.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_CACHE_CACHEKEY_H
#define WARPC_CACHE_CACHEKEY_H

#include "codegen/MachineModel.h"
#include "w2/AST.h"

#include <cstdint>
#include <string>

namespace warpc {
namespace cache {

/// A 128-bit content address. Two independently-seeded 64-bit mixers run
/// over the same byte stream; a collision must defeat both.
struct CacheKey {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool valid() const { return Hi != 0 || Lo != 0; }
  /// 32 lowercase hex digits; the on-disk entry file name.
  std::string hex() const;

  friend bool operator==(const CacheKey &A, const CacheKey &B) {
    return A.Hi == B.Hi && A.Lo == B.Lo;
  }
  friend bool operator!=(const CacheKey &A, const CacheKey &B) {
    return !(A == B);
  }
  friend bool operator<(const CacheKey &A, const CacheKey &B) {
    return A.Hi != B.Hi ? A.Hi < B.Hi : A.Lo < B.Lo;
  }
};

/// The separable components of a function's key. Keeping them apart is
/// what lets --explain-rebuild name the invalidation reason instead of
/// just reporting "hash changed".
struct FunctionFingerprint {
  uint64_t BodyHash = 0;    ///< Post-sema AST of the function itself.
  uint64_t CalleeHash = 0;  ///< Same-section callee signatures/bodies.
  uint64_t MachineHash = 0; ///< Machine-model parameters.
  uint32_t OptLevel = 0;
  uint64_t BuildId = 0; ///< Compiler build identity.

  friend bool operator==(const FunctionFingerprint &A,
                         const FunctionFingerprint &B) {
    return A.BodyHash == B.BodyHash && A.CalleeHash == B.CalleeHash &&
           A.MachineHash == B.MachineHash && A.OptLevel == B.OptLevel &&
           A.BuildId == B.BuildId;
  }
  friend bool operator!=(const FunctionFingerprint &A,
                         const FunctionFingerprint &B) {
    return !(A == B);
  }
};

/// Everything about the compilation environment that flows into keys.
struct CacheContext {
  uint64_t MachineHash = 0;
  /// The pipeline has exactly one optimization level today; the level is
  /// part of every key so adding -O levels later invalidates correctly.
  uint32_t OptLevel = 1;
  uint64_t BuildId = 0;

  static CacheContext forModel(const codegen::MachineModel &MM);
};

/// Identity of this compiler build. Any change to the pipeline must move
/// this value, or stale caches would replay old codegen; deriving it from
/// the version tag keeps that a one-line bump.
uint64_t compilerBuildId();

/// Hashes the machine-model parameters that influence generated code
/// (functional-unit slots, register file sizes).
uint64_t hashMachineModel(const codegen::MachineModel &MM);

/// Fingerprints one checked function of \p Section under \p Ctx. Must run
/// after Sema: expression types are part of the hash.
FunctionFingerprint fingerprintFunction(const w2::SectionDecl &Section,
                                        const w2::FunctionDecl &F,
                                        const CacheContext &Ctx);

/// Folds a fingerprint into its content address.
CacheKey keyOf(const FunctionFingerprint &FP);

/// Why a function does or does not hit the cache, for --explain-rebuild.
enum class RebuildReason : uint8_t {
  Hit,                ///< Cached result reused.
  NewFunction,        ///< Never seen by this cache before.
  BuildIdChange,      ///< The compiler itself changed.
  MachineModelChange, ///< Target parameters changed.
  OptLevelChange,     ///< Optimization level changed.
  BodyEdit,           ///< The function's own source changed.
  CalleeEdit,         ///< A callee it could inline changed.
};

/// Stable lowercase identifier ("hit", "body-edit", ...).
const char *rebuildReasonName(RebuildReason R);

/// Compares a function's previous fingerprint with its current one and
/// names the first difference, in blame order: build id, machine model,
/// opt level, own body, callees. Equal fingerprints are a Hit.
RebuildReason classifyRebuild(const FunctionFingerprint &Old,
                              const FunctionFingerprint &New);

} // namespace cache
} // namespace warpc

#endif // WARPC_CACHE_CACHEKEY_H
