//===- CacheKey.cpp - Content-addressed function cache keys -------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "cache/CacheKey.h"

#include "w2/Inliner.h"

#include <cassert>
#include <set>

using namespace warpc;
using namespace warpc::cache;
using namespace warpc::w2;

namespace {

/// Streaming structural hasher: two splitmix64-style accumulators with
/// different seeds fed the same word stream. The mixing is order
/// sensitive, so "a+(b*c)" and "(a+b)*c" hash apart even though they
/// feed the same multiset of tags.
class StructHasher {
public:
  StructHasher() : A(0x243F6A8885A308D3ULL), B(0x13198A2E03707344ULL) {}

  void word(uint64_t W) {
    A = mix(A ^ (W + 0x9E3779B97F4A7C15ULL));
    B = mix(B + (W ^ 0xBF58476D1CE4E5B9ULL));
  }
  void tag(uint32_t T) { word(0xA000000000000000ULL | T); }
  void str(const std::string &S) {
    word(S.size());
    uint64_t Acc = 0;
    unsigned N = 0;
    for (unsigned char C : S) {
      Acc = (Acc << 8) | C;
      if (++N == 8) {
        word(Acc);
        Acc = 0;
        N = 0;
      }
    }
    if (N)
      word(Acc | (static_cast<uint64_t>(N) << 56));
  }

  uint64_t lo() const { return mix(A); }
  uint64_t hi() const { return mix(B); }
  /// A single 64-bit digest (for component hashes like BodyHash).
  uint64_t digest() const { return mix(A * 0x2545F4914F6CDD1DULL + B); }

private:
  static uint64_t mix(uint64_t X) {
    X ^= X >> 30;
    X *= 0xBF58476D1CE4E5B9ULL;
    X ^= X >> 27;
    X *= 0x94D049BB133111EBULL;
    X ^= X >> 31;
    return X;
  }
  uint64_t A, B;
};

// Tag spaces keep node kinds, operators and field markers from aliasing.
enum : uint32_t {
  TagType = 0x100,
  TagExpr = 0x200,
  TagStmt = 0x300,
  TagField = 0x400,
  TagDecl = 0x500,
};

void hashType(StructHasher &H, const Type &T) {
  H.tag(TagType + static_cast<uint32_t>(T.scalar()));
  H.word(T.arraySize());
}

void hashExpr(StructHasher &H, const Expr *E) {
  if (!E) {
    H.tag(TagExpr + 0xFF); // explicit null marker: absence is structure too
    return;
  }
  H.tag(TagExpr + static_cast<uint32_t>(E->getKind()));
  hashType(H, E->getType()); // Sema's verdict is part of the content
  switch (E->getKind()) {
  case Expr::Kind::IntLit:
    H.word(static_cast<uint64_t>(cast<IntLitExpr>(E)->getValue()));
    break;
  case Expr::Kind::FloatLit: {
    // Hash the bit pattern: -0.0 and 0.0 generate different constants.
    double V = cast<FloatLitExpr>(E)->getValue();
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V));
    __builtin_memcpy(&Bits, &V, sizeof(Bits));
    H.word(Bits);
    break;
  }
  case Expr::Kind::VarRef:
    H.str(cast<VarRefExpr>(E)->getName());
    break;
  case Expr::Kind::Index: {
    const auto *IE = cast<IndexExpr>(E);
    H.str(IE->getBaseName());
    hashExpr(H, IE->getIndex());
    break;
  }
  case Expr::Kind::Unary: {
    const auto *UE = cast<UnaryExpr>(E);
    H.tag(TagField + static_cast<uint32_t>(UE->getOp()));
    hashExpr(H, UE->getOperand());
    break;
  }
  case Expr::Kind::Binary: {
    const auto *BE = cast<BinaryExpr>(E);
    H.tag(TagField + 0x10 + static_cast<uint32_t>(BE->getOp()));
    hashExpr(H, BE->getLHS());
    hashExpr(H, BE->getRHS());
    break;
  }
  case Expr::Kind::Call: {
    const auto *CE = cast<CallExpr>(E);
    H.str(CE->getCallee());
    H.word(CE->getNumArgs());
    for (size_t I = 0; I != CE->getNumArgs(); ++I)
      hashExpr(H, CE->getArg(I));
    break;
  }
  case Expr::Kind::Cast:
    hashExpr(H, cast<CastExpr>(E)->getOperand());
    break;
  }
}

void hashStmt(StructHasher &H, const Stmt *S) {
  if (!S) {
    H.tag(TagStmt + 0xFF);
    return;
  }
  H.tag(TagStmt + static_cast<uint32_t>(S->getKind()));
  switch (S->getKind()) {
  case Stmt::Kind::Block: {
    const auto *BS = cast<BlockStmt>(S);
    H.word(BS->size());
    for (const StmtPtr &Child : BS->stmts())
      hashStmt(H, Child.get());
    break;
  }
  case Stmt::Kind::Decl: {
    const VarDecl *D = cast<DeclStmt>(S)->getDecl();
    H.str(D->getName());
    hashType(H, D->getType());
    hashExpr(H, D->getInit());
    break;
  }
  case Stmt::Kind::Assign: {
    const auto *AS = cast<AssignStmt>(S);
    hashExpr(H, AS->getTarget());
    hashExpr(H, AS->getValue());
    break;
  }
  case Stmt::Kind::If: {
    const auto *IS = cast<IfStmt>(S);
    hashExpr(H, IS->getCond());
    hashStmt(H, IS->getThen());
    hashStmt(H, IS->getElse());
    break;
  }
  case Stmt::Kind::For: {
    const auto *FS = cast<ForStmt>(S);
    H.str(FS->getIndVar());
    hashExpr(H, FS->getLo());
    hashExpr(H, FS->getHi());
    H.word(static_cast<uint64_t>(FS->getStep()));
    hashStmt(H, FS->getBody());
    break;
  }
  case Stmt::Kind::While: {
    const auto *WS = cast<WhileStmt>(S);
    hashExpr(H, WS->getCond());
    hashStmt(H, WS->getBody());
    break;
  }
  case Stmt::Kind::Return:
    hashExpr(H, cast<ReturnStmt>(S)->getValue());
    break;
  case Stmt::Kind::Send: {
    const auto *SS = cast<SendStmt>(S);
    H.tag(TagField + 0x40 + static_cast<uint32_t>(SS->getChannel()));
    hashExpr(H, SS->getValue());
    break;
  }
  case Stmt::Kind::Receive: {
    const auto *RS = cast<ReceiveStmt>(S);
    H.tag(TagField + 0x40 + static_cast<uint32_t>(RS->getChannel()));
    hashExpr(H, RS->getTarget());
    break;
  }
  case Stmt::Kind::ExprStmt:
    hashExpr(H, cast<ExprStmt>(S)->getExpr());
    break;
  }
}

/// Signature + body of one function. The declaration's line numbers are
/// hashed deliberately: phase-2/3 diagnostics carry F.getLoc(), so a
/// function that moved in the file must miss rather than replay stale
/// locations.
void hashFunction(StructHasher &H, const FunctionDecl &F) {
  H.tag(TagDecl);
  H.str(F.getName());
  H.word(F.getLoc().Line);
  H.word(F.getEndLoc().Line);
  hashType(H, F.getReturnType());
  H.word(F.params().size());
  for (const ParamDecl &P : F.params()) {
    H.str(P.Name);
    hashType(H, P.Ty);
  }
  hashStmt(H, F.getBody());
}

void hashSignature(StructHasher &H, const FunctionDecl &F) {
  H.str(F.getName());
  hashType(H, F.getReturnType());
  H.word(F.params().size());
  for (const ParamDecl &P : F.params())
    hashType(H, P.Ty);
}

/// Collects the distinct callee names of \p F's body (section-local calls
/// and intrinsics alike; intrinsics simply never resolve in the section).
void collectCallees(const Expr *E, std::set<std::string> &Out);

void collectCallees(const Stmt *S, std::set<std::string> &Out) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
      collectCallees(Child.get(), Out);
    break;
  case Stmt::Kind::Decl:
    collectCallees(cast<DeclStmt>(S)->getDecl()->getInit(), Out);
    break;
  case Stmt::Kind::Assign:
    collectCallees(cast<AssignStmt>(S)->getTarget(), Out);
    collectCallees(cast<AssignStmt>(S)->getValue(), Out);
    break;
  case Stmt::Kind::If:
    collectCallees(cast<IfStmt>(S)->getCond(), Out);
    collectCallees(cast<IfStmt>(S)->getThen(), Out);
    collectCallees(cast<IfStmt>(S)->getElse(), Out);
    break;
  case Stmt::Kind::For:
    collectCallees(cast<ForStmt>(S)->getLo(), Out);
    collectCallees(cast<ForStmt>(S)->getHi(), Out);
    collectCallees(cast<ForStmt>(S)->getBody(), Out);
    break;
  case Stmt::Kind::While:
    collectCallees(cast<WhileStmt>(S)->getCond(), Out);
    collectCallees(cast<WhileStmt>(S)->getBody(), Out);
    break;
  case Stmt::Kind::Return:
    collectCallees(cast<ReturnStmt>(S)->getValue(), Out);
    break;
  case Stmt::Kind::Send:
    collectCallees(cast<SendStmt>(S)->getValue(), Out);
    break;
  case Stmt::Kind::Receive:
    collectCallees(cast<ReceiveStmt>(S)->getTarget(), Out);
    break;
  case Stmt::Kind::ExprStmt:
    collectCallees(cast<ExprStmt>(S)->getExpr(), Out);
    break;
  }
}

void collectCallees(const Expr *E, std::set<std::string> &Out) {
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::Call: {
    const auto *CE = cast<CallExpr>(E);
    Out.insert(CE->getCallee());
    for (size_t I = 0; I != CE->getNumArgs(); ++I)
      collectCallees(CE->getArg(I), Out);
    break;
  }
  case Expr::Kind::Index:
    collectCallees(cast<IndexExpr>(E)->getIndex(), Out);
    break;
  case Expr::Kind::Unary:
    collectCallees(cast<UnaryExpr>(E)->getOperand(), Out);
    break;
  case Expr::Kind::Binary:
    collectCallees(cast<BinaryExpr>(E)->getLHS(), Out);
    collectCallees(cast<BinaryExpr>(E)->getRHS(), Out);
    break;
  case Expr::Kind::Cast:
    collectCallees(cast<CastExpr>(E)->getOperand(), Out);
    break;
  case Expr::Kind::IntLit:
  case Expr::Kind::FloatLit:
  case Expr::Kind::VarRef:
    break;
  }
}

} // namespace

std::string CacheKey::hex() const {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(32, '0');
  for (unsigned I = 0; I != 16; ++I)
    Out[15 - I] = Digits[(Hi >> (4 * I)) & 0xF];
  for (unsigned I = 0; I != 16; ++I)
    Out[31 - I] = Digits[(Lo >> (4 * I)) & 0xF];
  return Out;
}

uint64_t cache::compilerBuildId() {
  // The pipeline's identity. Bump the tag whenever phase 2/3 output can
  // change for an unchanged input (new passes, scheduler fixes, ...).
  StructHasher H;
  H.str("warpc-pipeline-1");
  return H.digest();
}

uint64_t cache::hashMachineModel(const codegen::MachineModel &MM) {
  StructHasher H;
  for (unsigned K = 0; K != codegen::NumFUKinds; ++K)
    H.word(MM.slots(static_cast<codegen::FUKind>(K)));
  H.word(MM.intRegs());
  H.word(MM.floatRegs());
  return H.digest();
}

CacheContext CacheContext::forModel(const codegen::MachineModel &MM) {
  CacheContext Ctx;
  Ctx.MachineHash = hashMachineModel(MM);
  Ctx.BuildId = compilerBuildId();
  return Ctx;
}

FunctionFingerprint cache::fingerprintFunction(const SectionDecl &Section,
                                               const FunctionDecl &F,
                                               const CacheContext &Ctx) {
  FunctionFingerprint FP;
  FP.MachineHash = Ctx.MachineHash;
  FP.OptLevel = Ctx.OptLevel;
  FP.BuildId = Ctx.BuildId;

  {
    StructHasher H;
    H.str(Section.getName());
    H.word(Section.getNumCells());
    hashFunction(H, F);
    FP.BodyHash = H.digest();
  }

  // Callee component: signatures of every resolvable callee, plus the
  // full body of callees the inliner would accept — those bodies can be
  // spliced into this function, so their edits are this function's edits.
  std::set<std::string> Callees;
  collectCallees(F.getBody(), Callees);
  StructHasher H;
  H.word(Callees.size());
  for (const std::string &Name : Callees) {
    const FunctionDecl *Callee = Section.lookup(Name);
    if (!Callee) {
      H.str(Name); // intrinsic or unresolved: name-only
      continue;
    }
    hashSignature(H, *Callee);
    if (w2::isInlinableCallee(*Callee, w2::InlineOptions()))
      hashFunction(H, *Callee);
  }
  FP.CalleeHash = H.digest();
  return FP;
}

CacheKey cache::keyOf(const FunctionFingerprint &FP) {
  StructHasher H;
  H.word(FP.BodyHash);
  H.word(FP.CalleeHash);
  H.word(FP.MachineHash);
  H.word(FP.OptLevel);
  H.word(FP.BuildId);
  CacheKey K;
  K.Hi = H.hi();
  K.Lo = H.lo();
  // Zero is the "invalid" sentinel; nudge the astronomically unlikely
  // collision off it.
  if (!K.valid())
    K.Lo = 1;
  return K;
}

const char *cache::rebuildReasonName(RebuildReason R) {
  switch (R) {
  case RebuildReason::Hit:
    return "hit";
  case RebuildReason::NewFunction:
    return "new-function";
  case RebuildReason::BuildIdChange:
    return "build-id-change";
  case RebuildReason::MachineModelChange:
    return "machine-model-change";
  case RebuildReason::OptLevelChange:
    return "opt-level-change";
  case RebuildReason::BodyEdit:
    return "body-edit";
  case RebuildReason::CalleeEdit:
    return "callee-edit";
  }
  return "unknown";
}

RebuildReason cache::classifyRebuild(const FunctionFingerprint &Old,
                                     const FunctionFingerprint &New) {
  if (Old.BuildId != New.BuildId)
    return RebuildReason::BuildIdChange;
  if (Old.MachineHash != New.MachineHash)
    return RebuildReason::MachineModelChange;
  if (Old.OptLevel != New.OptLevel)
    return RebuildReason::OptLevelChange;
  if (Old.BodyHash != New.BodyHash)
    return RebuildReason::BodyEdit;
  if (Old.CalleeHash != New.CalleeHash)
    return RebuildReason::CalleeEdit;
  return RebuildReason::Hit;
}
