//===- CompileCache.cpp - Function-level compilation cache ------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"

#include "support/BinaryStream.h"
#include "support/Json.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace warpc;
using namespace warpc::cache;

namespace {

/// On-disk entry header: magic, format version, payload size, payload
/// checksum. Any mismatch (wrong version, torn write, bit rot) makes the
/// entry a miss.
constexpr char EntryMagic[4] = {'W', 'C', 'C', '1'};
constexpr uint32_t FormatVersion = 1;

/// Interprocedural summary entries use their own magic so a summary file
/// can never be confused with a compile entry, but share the header
/// layout and integrity discipline.
constexpr char SummaryMagic[4] = {'W', 'C', 'S', '1'};

std::string hex64(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

bool parseHex64(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.size() > 16)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    V <<= 4;
    if (C >= '0' && C <= '9')
      V |= static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      V |= static_cast<uint64_t>(C - 'a' + 10);
    else
      return false;
  }
  Out = V;
  return true;
}

void encodeMetrics(BinaryWriter &W, const driver::WorkMetrics &M) {
  W.u64(M.Tokens);
  W.u64(M.AstNodes);
  W.u64(M.SemaNodes);
  W.u64(M.IRInstrs);
  W.u64(M.OptVisited);
  W.u64(M.OptTransforms);
  W.u64(M.DataflowIterations);
  W.u64(M.DependenceWork);
  W.u64(M.ListSchedAttempts);
  W.u64(M.ModuloSchedAttempts);
  W.u64(M.RecMIIWork);
  W.u64(M.RegAllocWork);
  W.u64(M.CodeWords);
  W.u64(M.ImageBytes);
  W.u32(M.SourceLines);
  W.u32(M.LoopDepth);
  W.u32(M.LoopCount);
}

void decodeMetrics(BinaryReader &R, driver::WorkMetrics &M) {
  M.Tokens = R.u64();
  M.AstNodes = R.u64();
  M.SemaNodes = R.u64();
  M.IRInstrs = R.u64();
  M.OptVisited = R.u64();
  M.OptTransforms = R.u64();
  M.DataflowIterations = R.u64();
  M.DependenceWork = R.u64();
  M.ListSchedAttempts = R.u64();
  M.ModuloSchedAttempts = R.u64();
  M.RecMIIWork = R.u64();
  M.RegAllocWork = R.u64();
  M.CodeWords = R.u64();
  M.ImageBytes = R.u64();
  M.SourceLines = R.u32();
  M.LoopDepth = R.u32();
  M.LoopCount = R.u32();
}

std::string manifestKey(const std::string &Section, const std::string &Fn) {
  return Section + "." + Fn;
}

} // namespace

std::vector<uint8_t> cache::encodeFunctionResult(
    const driver::FunctionResult &R) {
  BinaryWriter W;
  W.str(R.SectionName);
  W.str(R.FunctionName);

  W.str(R.Program.FunctionName);
  W.u64(R.Program.CodeWords);
  W.u32(R.Program.IntRegsUsed);
  W.u32(R.Program.FloatRegsUsed);
  W.u32(R.Program.Spills);
  W.str(R.Program.Listing);
  W.bytes(R.Program.Image);

  encodeMetrics(W, R.Metrics);

  const std::vector<Diagnostic> &Diags = R.Diags.diagnostics();
  W.u64(Diags.size());
  for (const Diagnostic &D : Diags) {
    W.u8(static_cast<uint8_t>(D.Kind));
    W.u32(D.Loc.Line);
    W.u32(D.Loc.Column);
    W.str(D.Message);
  }

  W.u64(R.IRInstrsAfterOpt);
  W.u32(R.LoopsPipelined);
  W.u32(R.LoopsConsidered);
  return W.take();
}

bool cache::decodeFunctionResult(const std::vector<uint8_t> &Bytes,
                                 driver::FunctionResult &Out) {
  BinaryReader R(Bytes);
  Out = driver::FunctionResult();
  Out.SectionName = R.str();
  Out.FunctionName = R.str();

  Out.Program.FunctionName = R.str();
  Out.Program.CodeWords = R.u64();
  Out.Program.IntRegsUsed = R.u32();
  Out.Program.FloatRegsUsed = R.u32();
  Out.Program.Spills = R.u32();
  Out.Program.Listing = R.str();
  Out.Program.Image = R.bytes();

  decodeMetrics(R, Out.Metrics);

  uint64_t NumDiags = R.u64();
  // A length prefix larger than the stream can hold is corruption; the
  // reader would also catch it, but failing early avoids a huge loop.
  if (!R.ok() || NumDiags > Bytes.size())
    return false;
  for (uint64_t I = 0; I != NumDiags; ++I) {
    uint8_t Kind = R.u8();
    uint32_t Line = R.u32();
    uint32_t Col = R.u32();
    std::string Message = R.str();
    if (!R.ok() || Kind > static_cast<uint8_t>(DiagKind::Error))
      return false;
    Out.Diags.report(static_cast<DiagKind>(Kind), SourceLoc(Line, Col),
                     std::move(Message));
  }

  Out.IRInstrsAfterOpt = R.u64();
  Out.LoopsPipelined = R.u32();
  Out.LoopsConsidered = R.u32();
  return R.atEnd();
}

CompileCache::CompileCache(CacheMode Mode, const CacheContext &Ctx,
                           std::string Dir, obs::MetricsRegistry *Metrics)
    : Mode(Mode), Ctx(Ctx), Dir(std::move(Dir)), Metrics(Metrics) {
  if (this->Mode != CacheMode::Disk)
    return;
  std::error_code EC;
  std::filesystem::create_directories(this->Dir, EC);
  loadManifest();
}

void CompileCache::note(const char *Counter, double Delta) {
  if (Metrics)
    Metrics->add(Counter, Delta);
}

std::string CompileCache::entryPath(const CacheKey &Key) const {
  if (Mode != CacheMode::Disk)
    return "";
  return Dir + "/" + Key.hex() + ".wcf";
}

std::optional<driver::FunctionResult>
CompileCache::lookup(const w2::SectionDecl &Section, const w2::FunctionDecl &F) {
  if (Mode == CacheMode::Off)
    return std::nullopt;
  CacheKey Key = keyOf(fingerprintFunction(Section, F, Ctx));

  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    driver::FunctionResult R;
    if (decodeFunctionResult(It->second, R)) {
      ++Stats.Hits;
      note("cache.hits");
      return R;
    }
    // An undecodable in-memory entry can only come from a disk load that
    // slipped past the checksum; drop it and recompile.
    Entries.erase(It);
    ++Stats.CorruptEntries;
    note("cache.corrupt_entries");
  } else if (Mode == CacheMode::Disk) {
    std::optional<driver::FunctionResult> R = loadDiskEntry(Key);
    if (R) {
      ++Stats.Hits;
      note("cache.hits");
      return R;
    }
  }
  ++Stats.Misses;
  note("cache.misses");
  return std::nullopt;
}

std::optional<driver::FunctionResult>
CompileCache::loadDiskEntry(const CacheKey &Key) {
  std::ifstream In(entryPath(Key), std::ios::binary);
  if (!In)
    return std::nullopt; // Clean miss: never stored.
  std::vector<uint8_t> File((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
  In.close();

  BinaryReader R(File);
  bool MagicOk = true;
  for (char C : EntryMagic)
    MagicOk &= R.u8() == static_cast<uint8_t>(C);
  uint32_t Version = R.u32();
  uint64_t PayloadSize = R.u64();
  uint64_t Checksum = R.u64();
  constexpr size_t HeaderSize = 4 + 4 + 8 + 8;
  driver::FunctionResult Result;
  if (!R.ok() || !MagicOk || Version != FormatVersion ||
      PayloadSize != File.size() - HeaderSize ||
      Checksum != fnv1a64(File.data() + HeaderSize, File.size() - HeaderSize) ||
      !decodeFunctionResult(
          std::vector<uint8_t>(File.begin() + HeaderSize, File.end()),
          Result)) {
    ++Stats.CorruptEntries;
    note("cache.corrupt_entries");
    return std::nullopt;
  }
  Stats.BytesLoaded += File.size();
  note("cache.bytes_loaded", static_cast<double>(File.size()));
  Entries.emplace(Key,
                  std::vector<uint8_t>(File.begin() + HeaderSize, File.end()));
  return Result;
}

void CompileCache::store(const w2::SectionDecl &Section,
                         const w2::FunctionDecl &F,
                         const driver::FunctionResult &R) {
  if (Mode == CacheMode::Off)
    return;
  CacheKey Key = keyOf(fingerprintFunction(Section, F, Ctx));
  std::vector<uint8_t> Bytes = encodeFunctionResult(R);

  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.Stores;
  Stats.BytesStored += Bytes.size();
  note("cache.stores");
  note("cache.bytes_stored", static_cast<double>(Bytes.size()));
  if (Mode == CacheMode::Disk)
    storeDiskEntry(Key, Bytes);
  Entries[Key] = std::move(Bytes);
}

void CompileCache::storeDiskEntry(const CacheKey &Key,
                                  const std::vector<uint8_t> &Bytes) {
  BinaryWriter W;
  for (char C : EntryMagic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(FormatVersion);
  W.u64(Bytes.size());
  W.u64(fnv1a64(Bytes));
  std::string Path = entryPath(Key);
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return; // A cache that cannot write is slow, not broken.
    Out.write(reinterpret_cast<const char *>(W.buffer().data()),
              static_cast<std::streamsize>(W.buffer().size()));
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out)
      return;
  }
  // Rename is atomic on POSIX: readers see the old file or the complete
  // new one, never a torn write.
  std::error_code EC;
  std::filesystem::rename(Tmp, Path, EC);
  if (EC)
    std::filesystem::remove(Tmp, EC);
}

std::string CompileCache::summaryPath(const CacheKey &Key) const {
  if (Mode != CacheMode::Disk)
    return "";
  return Dir + "/" + Key.hex() + ".wsm";
}

std::optional<std::vector<uint8_t>>
CompileCache::lookupSummary(const CacheKey &Key) {
  if (Mode == CacheMode::Off)
    return std::nullopt;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = SummaryEntries.find(Key);
  if (It != SummaryEntries.end())
    return It->second;
  if (Mode == CacheMode::Disk)
    return loadDiskSummary(Key);
  return std::nullopt;
}

std::optional<std::vector<uint8_t>>
CompileCache::loadDiskSummary(const CacheKey &Key) {
  std::ifstream In(summaryPath(Key), std::ios::binary);
  if (!In)
    return std::nullopt;
  std::vector<uint8_t> File((std::istreambuf_iterator<char>(In)),
                            std::istreambuf_iterator<char>());
  In.close();

  BinaryReader R(File);
  bool MagicOk = true;
  for (char C : SummaryMagic)
    MagicOk &= R.u8() == static_cast<uint8_t>(C);
  uint32_t Version = R.u32();
  uint64_t PayloadSize = R.u64();
  uint64_t Checksum = R.u64();
  constexpr size_t HeaderSize = 4 + 4 + 8 + 8;
  if (!R.ok() || !MagicOk || Version != FormatVersion ||
      File.size() < HeaderSize ||
      PayloadSize != File.size() - HeaderSize ||
      Checksum !=
          fnv1a64(File.data() + HeaderSize, File.size() - HeaderSize)) {
    ++Stats.CorruptEntries;
    note("cache.corrupt_entries");
    return std::nullopt;
  }
  std::vector<uint8_t> Payload(File.begin() + HeaderSize, File.end());
  SummaryEntries.emplace(Key, Payload);
  return Payload;
}

void CompileCache::storeSummary(const CacheKey &Key,
                                const std::vector<uint8_t> &Bytes) {
  if (Mode == CacheMode::Off)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Mode == CacheMode::Disk)
    storeDiskSummary(Key, Bytes);
  SummaryEntries[Key] = Bytes;
}

void CompileCache::storeDiskSummary(const CacheKey &Key,
                                    const std::vector<uint8_t> &Bytes) {
  BinaryWriter W;
  for (char C : SummaryMagic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(FormatVersion);
  W.u64(Bytes.size());
  W.u64(fnv1a64(Bytes));
  std::string Path = summaryPath(Key);
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out.write(reinterpret_cast<const char *>(W.buffer().data()),
              static_cast<std::streamsize>(W.buffer().size()));
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out)
      return;
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Path, EC);
  if (EC)
    std::filesystem::remove(Tmp, EC);
}

RebuildReason CompileCache::classifySummaryMiss(const std::string &Section,
                                                const std::string &Fn,
                                                const FunctionFingerprint &FP) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Manifest.find(manifestKey(Section, Fn));
  if (It == Manifest.end())
    return RebuildReason::NewFunction;
  return classifyRebuild(It->second, FP);
}

bool CompileCache::contains(const CacheKey &Key) {
  if (Mode == CacheMode::Off)
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Entries.count(Key))
    return true;
  if (Mode != CacheMode::Disk)
    return false;
  std::error_code EC;
  return std::filesystem::exists(entryPath(Key), EC);
}

CacheStats CompileCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}

std::vector<ExplainEntry>
CompileCache::explainModule(const w2::ModuleDecl &Module) {
  std::vector<ExplainEntry> Out;
  for (size_t S = 0; S != Module.numSections(); ++S) {
    const w2::SectionDecl *Section = Module.getSection(S);
    for (size_t FI = 0; FI != Section->numFunctions(); ++FI) {
      const w2::FunctionDecl *F = Section->getFunction(FI);
      ExplainEntry E;
      E.SectionName = Section->getName();
      E.FunctionName = F->getName();
      FunctionFingerprint FP = fingerprintFunction(*Section, *F, Ctx);
      E.Key = keyOf(FP);
      if (contains(E.Key)) {
        E.Reason = RebuildReason::Hit;
      } else {
        std::lock_guard<std::mutex> Lock(Mu);
        auto It = Manifest.find(manifestKey(E.SectionName, E.FunctionName));
        if (It == Manifest.end())
          E.Reason = RebuildReason::NewFunction;
        else {
          E.Reason = classifyRebuild(It->second, FP);
          // Equal fingerprints without a stored entry means the entry was
          // evicted or deleted; "hit" would be a lie.
          if (E.Reason == RebuildReason::Hit)
            E.Reason = RebuildReason::NewFunction;
        }
      }
      Out.push_back(std::move(E));
    }
  }
  return Out;
}

void CompileCache::rememberModule(const w2::ModuleDecl &Module) {
  if (Mode == CacheMode::Off)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  for (size_t S = 0; S != Module.numSections(); ++S) {
    const w2::SectionDecl *Section = Module.getSection(S);
    for (size_t FI = 0; FI != Section->numFunctions(); ++FI) {
      const w2::FunctionDecl *F = Section->getFunction(FI);
      Manifest[manifestKey(Section->getName(), F->getName())] =
          fingerprintFunction(*Section, *F, Ctx);
    }
  }
  if (Mode == CacheMode::Disk)
    saveManifest();
}

void CompileCache::loadManifest() {
  std::ifstream In(Dir + "/manifest.json");
  if (!In)
    return;
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  std::string Error;
  json::Value Root = json::parse(Text, Error);
  if (!Root.isObject() || Root.get("version").integer() != FormatVersion)
    return; // Unreadable manifest: every function is simply "new".
  const json::Value &Fns = Root.get("functions");
  if (!Fns.isObject())
    return;
  for (const auto &[Name, V] : Fns.members()) {
    if (!V.isObject())
      continue;
    FunctionFingerprint FP;
    uint32_t Opt = static_cast<uint32_t>(V.get("opt").integer());
    if (!parseHex64(V.get("body").str(), FP.BodyHash) ||
        !parseHex64(V.get("callee").str(), FP.CalleeHash) ||
        !parseHex64(V.get("machine").str(), FP.MachineHash) ||
        !parseHex64(V.get("build").str(), FP.BuildId))
      continue;
    FP.OptLevel = Opt;
    Manifest[Name] = FP;
  }
}

void CompileCache::saveManifest() {
  json::Value Fns = json::Value::object();
  for (const auto &[Name, FP] : Manifest) {
    json::Value V = json::Value::object();
    V.set("body", hex64(FP.BodyHash));
    V.set("callee", hex64(FP.CalleeHash));
    V.set("machine", hex64(FP.MachineHash));
    V.set("opt", static_cast<uint64_t>(FP.OptLevel));
    V.set("build", hex64(FP.BuildId));
    Fns.set(Name, std::move(V));
  }
  json::Value Root = json::Value::object();
  Root.set("version", static_cast<uint64_t>(FormatVersion));
  Root.set("functions", std::move(Fns));

  std::string Path = Dir + "/manifest.json";
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return;
    Out << Root.dump(2) << "\n";
    if (!Out)
      return;
  }
  std::error_code EC;
  std::filesystem::rename(Tmp, Path, EC);
  if (EC)
    std::filesystem::remove(Tmp, EC);
}
