//===- CompileCache.h - Function-level compilation cache --------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production driver::FunctionResultCache: a content-addressed store
/// of serialized phase-2/3 results (generated code, work metrics,
/// diagnostics). Entries live in memory; in Disk mode they are also
/// persisted one file per key under a cache directory, written atomically
/// (temp file + rename) with a versioned header and checksum so a
/// torn or corrupted file degrades into a miss, never into wrong code.
///
/// The paper's 1989 cluster could not afford this — diskless
/// workstations, no persistent store — but the function-level granularity
/// it pioneered is exactly the right cache granularity: a hit makes a
/// function master's entire job unnecessary, the cheapest speedup there
/// is. Alongside the store the cache keeps a manifest of every function's
/// last-seen fingerprint, which is what lets --explain-rebuild name *why*
/// a function missed (body edit, callee edit, opt level, machine model,
/// compiler build) instead of just that it missed.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_CACHE_COMPILECACHE_H
#define WARPC_CACHE_COMPILECACHE_H

#include "cache/CacheKey.h"
#include "driver/Compiler.h"
#include "obs/MetricsRegistry.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace warpc {
namespace cache {

/// Where entries live.
enum class CacheMode : uint8_t {
  Off,    ///< Every lookup misses; stores are dropped.
  Memory, ///< In-process store only.
  Disk,   ///< In-process store backed by a persistent directory.
};

/// Whole-run cache accounting (mirrored into cache.* metrics).
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Stores = 0;
  uint64_t BytesLoaded = 0; ///< Serialized bytes of disk hits.
  uint64_t BytesStored = 0; ///< Serialized bytes written (memory + disk).
  uint64_t CorruptEntries = 0; ///< Disk entries rejected by integrity checks.
};

/// One --explain-rebuild line: a function's fate in the coming build.
struct ExplainEntry {
  std::string SectionName;
  std::string FunctionName;
  RebuildReason Reason = RebuildReason::NewFunction;
  CacheKey Key;
};

/// Serializes a FunctionResult (used by the disk backend; exposed for the
/// round-trip and corruption tests).
std::vector<uint8_t> encodeFunctionResult(const driver::FunctionResult &R);
/// Decodes; returns false on any malformation, leaving \p Out unspecified.
bool decodeFunctionResult(const std::vector<uint8_t> &Bytes,
                          driver::FunctionResult &Out);

class CompileCache : public driver::FunctionResultCache {
public:
  /// \p Dir is required in Disk mode (created if absent); ignored
  /// otherwise. A non-null \p Metrics receives cache.* counters as the
  /// run progresses. In Disk mode construction loads the manifest.
  CompileCache(CacheMode Mode, const CacheContext &Ctx, std::string Dir = "",
               obs::MetricsRegistry *Metrics = nullptr);

  CacheMode mode() const { return Mode; }
  const CacheContext &context() const { return Ctx; }

  // driver::FunctionResultCache — thread-safe.
  std::optional<driver::FunctionResult>
  lookup(const w2::SectionDecl &Section, const w2::FunctionDecl &F) override;
  void store(const w2::SectionDecl &Section, const w2::FunctionDecl &F,
             const driver::FunctionResult &R) override;

  /// Whether \p Key has an entry, without accounting a hit or a miss
  /// (the simulator's pre-pass uses this to mark warm tasks).
  bool contains(const CacheKey &Key);

  CacheStats stats() const;

  /// Classifies every function of \p Module against the manifest: Hit if
  /// its key has an entry, otherwise the first fingerprint difference
  /// since the function was last seen (NewFunction when never seen).
  /// Pure — neither stats nor manifest change.
  std::vector<ExplainEntry> explainModule(const w2::ModuleDecl &Module);

  /// Records every function's current fingerprint in the manifest (the
  /// "last build" --explain-rebuild compares against). In Disk mode the
  /// manifest is persisted immediately.
  void rememberModule(const w2::ModuleDecl &Module);

  /// The entry file for \p Key (Disk mode; empty otherwise). Exposed so
  /// tests can corrupt entries where the implementation expects them.
  std::string entryPath(const CacheKey &Key) const;

  /// Byte-level store for interprocedural SCC summaries. Keys are
  /// computed by the analysis driver (post-sema body hashes of the SCC
  /// members composed with the callee SCC keys); payloads are opaque here
  /// — encode/decode live with the analysis so the cache library needs no
  /// dependency on it. Disk mode persists one "<hex>.wsm" file per key
  /// with the same versioned-header + checksum + atomic-rename discipline
  /// as compile entries. No cache.* metrics are accounted; the analysis
  /// runner owns the analysis.summary.* counters.
  std::optional<std::vector<uint8_t>> lookupSummary(const CacheKey &Key);
  void storeSummary(const CacheKey &Key, const std::vector<uint8_t> &Bytes);

  /// Classifies why one SCC member's summary missed: NewFunction when the
  /// manifest has never seen the function, otherwise the first
  /// fingerprint difference since the last rememberModule. Unlike
  /// explainModule this can legitimately return Hit — the summary key
  /// also covers the enabled-check set and the callee SCC keys, either of
  /// which can change while the function fingerprint stays equal.
  RebuildReason classifySummaryMiss(const std::string &Section,
                                    const std::string &Fn,
                                    const FunctionFingerprint &FP);

  /// The summary file for \p Key (Disk mode; empty otherwise).
  std::string summaryPath(const CacheKey &Key) const;

private:
  std::optional<driver::FunctionResult> loadDiskEntry(const CacheKey &Key);
  void storeDiskEntry(const CacheKey &Key, const std::vector<uint8_t> &Bytes);
  std::optional<std::vector<uint8_t>> loadDiskSummary(const CacheKey &Key);
  void storeDiskSummary(const CacheKey &Key,
                        const std::vector<uint8_t> &Bytes);
  void loadManifest();
  void saveManifest();
  void note(const char *Counter, double Delta = 1);

  CacheMode Mode;
  CacheContext Ctx;
  std::string Dir;
  obs::MetricsRegistry *Metrics;

  mutable std::mutex Mu;
  std::map<CacheKey, std::vector<uint8_t>> Entries; ///< Serialized results.
  /// Serialized interprocedural SCC summaries (opaque payloads).
  std::map<CacheKey, std::vector<uint8_t>> SummaryEntries;
  /// Last-seen fingerprint per "section.function" name.
  std::map<std::string, FunctionFingerprint> Manifest;
  CacheStats Stats;
};

} // namespace cache
} // namespace warpc

#endif // WARPC_CACHE_COMPILECACHE_H
