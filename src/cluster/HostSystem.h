//===- HostSystem.h - 1989 host-system configuration ------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the paper's host system (Section 3.3): "an
/// Ethernet-based network of about 40 diskless SUN workstations that share
/// the same file system", of which 10-15 are free in practice. Constants
/// are calibrated 1989-era values: a ~10 Mbit shared Ethernet, an NFS
/// file server, heavy-weight UNIX processes, and a multi-megabyte Common
/// Lisp core image that must be downloaded at every process start.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_CLUSTER_HOSTSYSTEM_H
#define WARPC_CLUSTER_HOSTSYSTEM_H

#include "cluster/FaultPlan.h"

#include <cstdint>

namespace warpc {
namespace cluster {

/// Static description of the workstation network.
struct HostConfig {
  /// Workstations free to run compilations ("the number of processors
  /// that can be used in parallel is limited to 10-15").
  unsigned NumWorkstations = 14;

  /// Physical memory per workstation in KB (a SUN-3 class machine).
  double MemoryKB = 16 * 1024;

  /// Memory available to a compile process after the OS and window system
  /// take their share.
  double UsableMemoryKB = 9400;

  /// Resident size of the Common Lisp system (core image) in KB.
  double LispCoreKB = 6500;

  /// Portion of the core image downloaded from the file server when a
  /// Lisp process starts on a diskless node.
  double CoreDownloadKB = 5000;

  /// Effective shared-Ethernet bandwidth in KB/s (10 Mbit/s nominal).
  double EthernetKBps = 1000;

  /// Collision-backoff stretch per concurrent transfer on the segment.
  double EthernetContention = 0.12;

  /// File-server service bandwidth in KB/s (disk + NFS protocol).
  double ServerKBps = 850;

  /// Fixed per-request server overhead in seconds.
  double ServerRequestSec = 0.04;

  /// Cost of forking a heavy-weight UNIX process.
  double ForkSec = 0.25;

  /// Lisp process initialization after the image is resident ("each lisp
  /// process has to interpret initializing information").
  double LispInitSec = 8.0;

  /// One parent-child synchronization message.
  double MessageSec = 0.05;

  /// Time for the section master to probe the compilation cache and
  /// accept a stored result for one cached function (key hash plus a
  /// manifest read on the master's workstation; the result file itself
  /// already sits on the file server).
  double CacheLookupSec = 0.5;

  /// Telemetry sampling period in (simulated) seconds: how often the
  /// parallel runners poll their gauges (queue depth, in-flight compiles,
  /// per-host busy fraction, cache hit rate) into bounded time series.
  double TelemetrySamplePeriodSec = 5.0;

  /// Measurement jitter: every service time is stretched by a uniform
  /// factor in [1-Jitter, 1+Jitter]. Zero keeps the simulation exactly
  /// deterministic; the methodology bench uses a few percent to mirror
  /// the paper's repeated measurements ("the deviation of the individual
  /// measurements are within 10% of the average", Section 4.2).
  double JitterPct = 0.0;
  uint64_t JitterSeed = 1;

  /// Failure schedule for the run (empty = no faults injected). The
  /// paper's master runs on the user's own workstation, which we assume
  /// reliable: the runners ignore crash/slowdown entries for host 0.
  FaultPlan Faults;

  /// The standard configuration used by all benches.
  static HostConfig sunNetwork1989() { return HostConfig(); }
};

} // namespace cluster
} // namespace warpc

#endif // WARPC_CLUSTER_HOSTSYSTEM_H
