//===- FaultPlan.h - Deterministic failure schedules ------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic failure schedule for a simulated run of the 1989 host
/// system. Section 5.2 of the paper singles out fault handling as the
/// hard part of the distributed compiler: "the application code becomes
/// unwieldy as it tries to account for all possible failures in the child
/// processes and their host processors." The plan models exactly those
/// failures: a workstation that crashes at a given instant (and possibly
/// reboots later), a degraded "slow host", and lost synchronization
/// messages drawn from a seeded support::PRNG so that every run is
/// reproducible. An empty plan leaves the simulation bit-identical to a
/// run without fault injection.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_CLUSTER_FAULTPLAN_H
#define WARPC_CLUSTER_FAULTPLAN_H

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace warpc {
namespace cluster {

/// Failure schedule of one workstation.
struct HostFault {
  /// Simulated time at which the host crashes; negative = never crashes.
  double CrashAtSec = -1;
  /// Downtime after the crash before the host accepts work again;
  /// negative = the host stays down for the rest of the run.
  double RebootAfterSec = -1;
  /// Service-time stretch for all CPU work on this host (a degraded
  /// "slow host"); 1.0 = nominal speed.
  double SlowdownFactor = 1.0;

  bool crashes() const { return CrashAtSec >= 0; }
};

/// Per-run failure schedule: per-host crash/reboot/degradation plus a
/// message-loss probability. Indexing past the configured hosts yields a
/// healthy host, so a plan only needs entries for the hosts it breaks.
struct FaultPlan {
  std::vector<HostFault> Hosts; ///< Indexed by workstation id.
  double MessageLossProb = 0;   ///< Per-message loss probability.
  uint64_t Seed = 1;            ///< Seed for the message-loss draws.

  /// True when the plan injects nothing at all.
  bool empty() const {
    if (MessageLossProb > 0)
      return false;
    for (const HostFault &H : Hosts)
      if (H.crashes() || H.SlowdownFactor != 1.0)
        return false;
    return true;
  }

  const HostFault &host(unsigned W) const {
    static const HostFault Healthy;
    return W < Hosts.size() ? Hosts[W] : Healthy;
  }

  /// Entry for host \p W, growing the table as needed.
  HostFault &hostMut(unsigned W) {
    if (W >= Hosts.size())
      Hosts.resize(W + 1);
    return Hosts[W];
  }

  /// Is host \p W accepting new work at time \p At?
  bool isUp(unsigned W, double At) const {
    const HostFault &H = host(W);
    if (!H.crashes() || At < H.CrashAtSec)
      return true;
    return H.RebootAfterSec >= 0 && At >= H.CrashAtSec + H.RebootAfterSec;
  }

  /// Does work on host \p W spanning (\p From, \p To] lose its state to a
  /// crash? True when the crash instant falls inside the span, or when
  /// the span starts while the host is still down.
  bool losesWork(unsigned W, double From, double To) const {
    const HostFault &H = host(W);
    if (!H.crashes())
      return false;
    if (From < H.CrashAtSec)
      return To >= H.CrashAtSec;
    return !isUp(W, From);
  }

  double slowdown(unsigned W) const { return host(W).SlowdownFactor; }
};

/// Parses a command-line fault-plan spec into \p Plan. The spec is a
/// comma-separated list of items:
///
///   crash=<ws>@<sec>         host <ws> crashes at <sec> and stays down
///   crash=<ws>@<sec>+<sec>   ... and reboots after the given delay
///   slow=<ws>x<factor>       host <ws> runs <factor> times slower
///   loss=<prob>              per-message loss probability in [0, 1]
///   seed=<n>                 PRNG seed for the loss draws
///
/// Example: "crash=3@120+60,crash=5@200,slow=2x3.0,loss=0.01,seed=7".
/// Returns false and fills \p Error on a malformed spec.
inline bool parseFaultPlan(const std::string &Spec, FaultPlan &Plan,
                           std::string &Error) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Item = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Item.empty())
      continue;

    size_t Eq = Item.find('=');
    if (Eq == std::string::npos) {
      Error = "fault-plan item '" + Item + "' has no '='";
      return false;
    }
    std::string Key = Item.substr(0, Eq);
    std::string Val = Item.substr(Eq + 1);
    char *Rest = nullptr;
    if (Key == "crash") {
      unsigned W = static_cast<unsigned>(std::strtoul(Val.c_str(), &Rest, 10));
      if (!Rest || *Rest != '@') {
        Error = "crash item '" + Item + "' needs <ws>@<sec>";
        return false;
      }
      double At = std::strtod(Rest + 1, &Rest);
      HostFault &H = Plan.hostMut(W);
      H.CrashAtSec = At;
      if (Rest && *Rest == '+')
        H.RebootAfterSec = std::strtod(Rest + 1, &Rest);
      if (Rest && *Rest != '\0') {
        Error = "trailing characters in crash item '" + Item + "'";
        return false;
      }
    } else if (Key == "slow") {
      unsigned W = static_cast<unsigned>(std::strtoul(Val.c_str(), &Rest, 10));
      if (!Rest || *Rest != 'x') {
        Error = "slow item '" + Item + "' needs <ws>x<factor>";
        return false;
      }
      double Factor = std::strtod(Rest + 1, &Rest);
      if (Factor < 1.0) {
        Error = "slowdown factor must be >= 1.0 in '" + Item + "'";
        return false;
      }
      Plan.hostMut(W).SlowdownFactor = Factor;
    } else if (Key == "loss") {
      Plan.MessageLossProb = std::strtod(Val.c_str(), &Rest);
      if (Plan.MessageLossProb < 0 || Plan.MessageLossProb > 1) {
        Error = "loss probability must be in [0, 1] in '" + Item + "'";
        return false;
      }
    } else if (Key == "seed") {
      Plan.Seed = std::strtoull(Val.c_str(), nullptr, 10);
    } else {
      Error = "unknown fault-plan key '" + Key + "'";
      return false;
    }
  }
  return true;
}

} // namespace cluster
} // namespace warpc

#endif // WARPC_CLUSTER_FAULTPLAN_H
