//===- Simulation.h - Discrete-event simulation engine ----------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small discrete-event simulation engine with continuation-style
/// processes, used to model the paper's host system: an Ethernet-based
/// network of diskless SUN workstations sharing one file server. Events
/// carry absolute simulated times in seconds; processes are chains of
/// callbacks; serial resources provide FIFO queueing with optional
/// contention penalties (Ethernet collision backoff).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_CLUSTER_SIMULATION_H
#define WARPC_CLUSTER_SIMULATION_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

namespace warpc {
namespace cluster {

/// Simulated time in seconds.
using SimTime = double;

/// The event queue. Events scheduled for the same instant run in FIFO
/// order, keeping the simulation deterministic.
class Simulation {
public:
  using Callback = std::function<void()>;

  /// Handle for an event scheduled with atCancellable(): setting the
  /// pointee to true before the event fires drops it without running it
  /// and, crucially, without advancing the clock — a cancelled watchdog
  /// timeout must not stretch the measured run.
  using CancelToken = std::shared_ptr<bool>;

  SimTime now() const { return Now; }

  /// Schedules \p Fn at absolute time \p At (>= now).
  void at(SimTime At, Callback Fn) {
    assert(At >= Now - 1e-9 && "scheduling into the past");
    Queue.push(Event{At, NextSeq++, std::move(Fn), nullptr});
  }

  /// Schedules \p Fn \p Delay seconds from now.
  void after(double Delay, Callback Fn) {
    assert(Delay >= 0 && "negative delay");
    at(Now + Delay, std::move(Fn));
  }

  /// Schedules \p Fn at \p At like at(), returning a cancellation token.
  CancelToken atCancellable(SimTime At, Callback Fn) {
    assert(At >= Now - 1e-9 && "scheduling into the past");
    auto Token = std::make_shared<bool>(false);
    Queue.push(Event{At, NextSeq++, std::move(Fn), Token});
    return Token;
  }

  /// Runs events until the queue drains; returns the final time.
  /// Cancelled events are discarded without running and without moving
  /// the clock, so the final time is the time of the last live event.
  SimTime run() {
    while (!Queue.empty()) {
      Event E = Queue.top();
      Queue.pop();
      if (E.Cancelled && *E.Cancelled)
        continue;
      Now = E.At;
      E.Fn();
    }
    return Now;
  }

private:
  struct Event {
    SimTime At;
    uint64_t Seq;
    Callback Fn;
    CancelToken Cancelled;
    bool operator>(const Event &O) const {
      if (At != O.At)
        return At > O.At;
      return Seq > O.Seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> Queue;
  SimTime Now = 0;
  uint64_t NextSeq = 0;
};

/// A FIFO-served serial resource (a CPU, the Ethernet segment, the file
/// server's disk). Requests are granted in arrival order; the resource
/// tracks utilization and total queueing delay for overhead accounting.
class SerialResource {
public:
  SerialResource(Simulation &Sim, std::string Name,
                 double ContentionFactor = 0.0)
      : Sim(Sim), Name(std::move(Name)), ContentionFactor(ContentionFactor) {}

  /// Requests \p ServiceSeconds of exclusive service. \p Done runs at
  /// completion and receives the queueing delay experienced. When a
  /// contention factor is set (Ethernet), service stretches by
  /// factor * (number of requests already in the system), modeling
  /// collision backoff under load.
  void request(double ServiceSeconds, std::function<void(double)> Done) {
    assert(ServiceSeconds >= 0 && "negative service time");
    double Stretch = 1.0 + ContentionFactor * static_cast<double>(InSystem);
    double Service = ServiceSeconds * Stretch;
    SimTime Start = std::max(Sim.now(), NextFree);
    double Waited = Start - Sim.now();
    NextFree = Start + Service;
    BusySeconds += Service;
    WaitSeconds += Waited;
    ++InSystem;
    ++Requests;
    Sim.at(NextFree, [this, Done = std::move(Done), Waited] {
      --InSystem;
      Done(Waited);
    });
  }

  double busySeconds() const { return BusySeconds; }
  double waitSeconds() const { return WaitSeconds; }
  uint64_t requestCount() const { return Requests; }
  const std::string &name() const { return Name; }

private:
  Simulation &Sim;
  std::string Name;
  double ContentionFactor;
  SimTime NextFree = 0;
  double BusySeconds = 0;
  double WaitSeconds = 0;
  uint64_t InSystem = 0;
  uint64_t Requests = 0;
};

/// Fork-join helper: runs a continuation once N arrivals occur.
class JoinCounter {
public:
  JoinCounter(unsigned Count, Simulation::Callback Done)
      : Remaining(Count), Done(std::move(Done)) {
    assert(Count > 0 && "joining on zero events");
  }

  void arrive() {
    assert(Remaining > 0 && "too many arrivals");
    if (--Remaining == 0)
      Done();
  }

private:
  unsigned Remaining;
  Simulation::Callback Done;
};

} // namespace cluster
} // namespace warpc

#endif // WARPC_CLUSTER_SIMULATION_H
