//===- Assembly.h - Warp assembly and binary encoding -----------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiler phase 4, part 1: assembling one function's scheduled code into
/// a textual listing plus a binary cell-program image. The parallel
/// compiler is careful to make function masters produce "the same input
/// for the assembly phase as the sequential compiler" (Section 3.2), so
/// this representation is the interchange format between function masters
/// and their section master.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_ASMOUT_ASSEMBLY_H
#define WARPC_ASMOUT_ASSEMBLY_H

#include "codegen/CodeGen.h"
#include "ir/IR.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warpc {
namespace asmout {

/// Assembled code for one function, ready for section combination.
struct CellProgram {
  std::string FunctionName;
  /// Wide instruction words emitted.
  uint64_t CodeWords = 0;
  uint32_t IntRegsUsed = 0;
  uint32_t FloatRegsUsed = 0;
  uint32_t Spills = 0;
  /// Human-readable Warp assembly listing.
  std::string Listing;
  /// Binary encoding (8 bytes per instruction word plus a header).
  std::vector<uint8_t> Image;
};

/// Assembles \p MF (the phase-3 output for \p F).
CellProgram assembleFunction(const ir::IRFunction &F,
                             const codegen::MachineFunction &MF);

} // namespace asmout
} // namespace warpc

#endif // WARPC_ASMOUT_ASSEMBLY_H
