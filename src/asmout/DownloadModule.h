//===- DownloadModule.h - Section combination and linking -------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiler phase 4, parts 2-4: I/O driver generation, per-section
/// combination of function images (the section master's job), and final
/// linking into a download module for the Warp array ("generation of I/O
/// driver code, assembly and post-processing (linking, format conversion
/// for download modules, etc.)", Section 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_ASMOUT_DOWNLOADMODULE_H
#define WARPC_ASMOUT_DOWNLOADMODULE_H

#include "asmout/Assembly.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warpc {
namespace asmout {

/// The combined image of one section program.
struct SectionImage {
  std::string SectionName;
  uint32_t NumCells = 1;
  std::vector<CellProgram> Programs;
  /// Generated host-interface glue that feeds the section's cells.
  std::vector<uint8_t> IODriver;

  /// Total instruction words across programs and driver.
  uint64_t totalWords() const;
};

/// A fully linked Warp download module.
struct DownloadModule {
  std::string ModuleName;
  std::vector<SectionImage> Sections;
  /// The flat byte image written to the download file.
  std::vector<uint8_t> Image;

  uint64_t byteSize() const { return Image.size(); }
};

/// Generates the I/O driver for a section: per-cell channel glue sized by
/// the number of cells and the channel traffic of the member functions.
std::vector<uint8_t> generateIODriver(const std::string &SectionName,
                                      uint32_t NumCells,
                                      const std::vector<CellProgram> &Programs);

/// The section master's combination step: collects the function programs
/// (in declaration order) and the generated I/O driver into one image.
SectionImage combineSection(std::string SectionName, uint32_t NumCells,
                            std::vector<CellProgram> Programs);

/// Links all section images into the final download module; computes the
/// flat image with a module header, a symbol table of function offsets,
/// and a trailing checksum.
DownloadModule linkModule(std::string ModuleName,
                          std::vector<SectionImage> Sections);

} // namespace asmout
} // namespace warpc

#endif // WARPC_ASMOUT_DOWNLOADMODULE_H
