//===- DownloadModule.cpp - Section combination and linking ----------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "asmout/DownloadModule.h"

using namespace warpc;
using namespace warpc::asmout;

namespace {

void put32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

void putString(std::vector<uint8_t> &Out, const std::string &S) {
  put32(Out, static_cast<uint32_t>(S.size()));
  Out.insert(Out.end(), S.begin(), S.end());
}

uint32_t checksum(const std::vector<uint8_t> &Bytes) {
  // Fletcher-style rolling checksum; cheap and order sensitive.
  uint32_t A = 1, B = 0;
  for (uint8_t Byte : Bytes) {
    A = (A + Byte) % 65521;
    B = (B + A) % 65521;
  }
  return (B << 16) | A;
}

} // namespace

uint64_t SectionImage::totalWords() const {
  uint64_t Words = IODriver.size() / 8;
  for (const CellProgram &P : Programs)
    Words += P.CodeWords;
  return Words;
}

std::vector<uint8_t>
asmout::generateIODriver(const std::string &SectionName, uint32_t NumCells,
                         const std::vector<CellProgram> &Programs) {
  std::vector<uint8_t> Driver;
  // The driver header names the section and its cell group.
  put32(Driver, 0x494f4452); // "IODR"
  putString(Driver, SectionName);
  put32(Driver, NumCells);
  // One queue-setup word per cell per channel direction, plus a transfer
  // loop per function (the host must start/stop each function's streams).
  uint32_t Words = NumCells * 4 + static_cast<uint32_t>(Programs.size()) * 6;
  for (uint32_t W = 0; W != Words; ++W)
    put32(Driver, 0x10000000u | W);
  return Driver;
}

SectionImage asmout::combineSection(std::string SectionName,
                                    uint32_t NumCells,
                                    std::vector<CellProgram> Programs) {
  SectionImage Image;
  Image.SectionName = std::move(SectionName);
  Image.NumCells = NumCells;
  Image.IODriver = generateIODriver(Image.SectionName, NumCells, Programs);
  Image.Programs = std::move(Programs);
  return Image;
}

DownloadModule asmout::linkModule(std::string ModuleName,
                                  std::vector<SectionImage> Sections) {
  DownloadModule Module;
  Module.ModuleName = std::move(ModuleName);
  Module.Sections = std::move(Sections);

  std::vector<uint8_t> &Out = Module.Image;
  put32(Out, 0x5750444dU); // "WPDM" download module magic
  put32(Out, 1);           // format version
  putString(Out, Module.ModuleName);
  put32(Out, static_cast<uint32_t>(Module.Sections.size()));

  // Symbol table: (section, function) -> offset of the code that follows.
  // Two passes: measure, then emit; offsets are relative to the code area.
  std::vector<uint8_t> Code;
  std::vector<uint8_t> Symtab;
  for (const SectionImage &S : Module.Sections) {
    putString(Symtab, S.SectionName);
    put32(Symtab, S.NumCells);
    put32(Symtab, static_cast<uint32_t>(S.Programs.size()));
    put32(Symtab, static_cast<uint32_t>(Code.size()));
    Code.insert(Code.end(), S.IODriver.begin(), S.IODriver.end());
    for (const CellProgram &P : S.Programs) {
      putString(Symtab, P.FunctionName);
      put32(Symtab, static_cast<uint32_t>(Code.size()));
      put32(Symtab, static_cast<uint32_t>(P.CodeWords));
      Code.insert(Code.end(), P.Image.begin(), P.Image.end());
    }
  }
  put32(Out, static_cast<uint32_t>(Symtab.size()));
  Out.insert(Out.end(), Symtab.begin(), Symtab.end());
  put32(Out, static_cast<uint32_t>(Code.size()));
  Out.insert(Out.end(), Code.begin(), Code.end());
  put32(Out, checksum(Code));
  return Module;
}
