//===- Assembly.cpp - Warp assembly and binary encoding --------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "asmout/Assembly.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <map>

using namespace warpc;
using namespace warpc::asmout;
using namespace warpc::codegen;
using namespace warpc::ir;

namespace {

/// Appends a little-endian 32-bit value.
void put32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

/// Encodes one operation into an 8-byte micro-word.
void encodeOp(std::vector<uint8_t> &Out, const Instr &I, FUKind Unit) {
  Out.push_back(static_cast<uint8_t>(I.Op));
  Out.push_back(static_cast<uint8_t>(Unit));
  Out.push_back(static_cast<uint8_t>(I.Ty));
  Out.push_back(static_cast<uint8_t>(I.Operands.size()));
  uint32_t Packed = 0;
  for (size_t K = 0; K != I.Operands.size() && K != 3; ++K)
    Packed |= (I.Operands[K] & 0x3ff) << (10 * K);
  put32(Out, Packed);
}

/// Renders one operation as assembly text.
std::string renderOp(const IRFunction &F, const Instr &I, FUKind Unit) {
  std::string Text = fuKindName(Unit);
  Text += '.';
  Text += opcodeName(I.Op);
  if (I.definesReg())
    Text += " r" + std::to_string(I.Dst);
  for (Reg R : I.Operands)
    Text += " r" + std::to_string(R);
  switch (I.Op) {
  case Opcode::ConstInt:
    Text += " #" + std::to_string(I.IntImm);
    break;
  case Opcode::ConstFloat:
    Text += " #" + formatDouble(I.FloatImm, 4);
    break;
  case Opcode::LoadVar:
  case Opcode::StoreVar:
  case Opcode::LoadElem:
  case Opcode::StoreElem:
    Text += " [" + F.variable(I.Var).Name + "]";
    break;
  case Opcode::Send:
  case Opcode::Recv:
    Text += std::string(" ") + w2::channelName(I.Chan);
    break;
  case Opcode::Call:
    Text += " " + I.Callee;
    break;
  case Opcode::Br:
    Text += " L" + std::to_string(I.Target0);
    break;
  case Opcode::CondBr:
    Text += " L" + std::to_string(I.Target0) + " L" +
            std::to_string(I.Target1);
    break;
  default:
    break;
  }
  return Text;
}

} // namespace

CellProgram asmout::assembleFunction(const IRFunction &F,
                                     const MachineFunction &MF) {
  CellProgram Program;
  Program.FunctionName = F.name();
  Program.CodeWords = MF.codeWords();
  Program.IntRegsUsed = MF.RA.IntRegsUsed;
  Program.FloatRegsUsed = MF.RA.FloatRegsUsed;
  Program.Spills = MF.RA.Spills;

  std::string &Text = Program.Listing;
  Text += ".function " + F.name() + "\n";
  Text += ".regs int=" + std::to_string(MF.RA.IntRegsUsed) +
          " float=" + std::to_string(MF.RA.FloatRegsUsed) +
          " spills=" + std::to_string(MF.RA.Spills) + "\n";

  std::vector<uint8_t> &Image = Program.Image;
  // Header: magic, code word count, register usage.
  put32(Image, 0x57415250); // "WARP"
  put32(Image, static_cast<uint32_t>(Program.CodeWords));
  put32(Image, MF.RA.IntRegsUsed << 16 | MF.RA.FloatRegsUsed);

  for (size_t B = 0; B != MF.Blocks.size(); ++B) {
    BlockId Id = static_cast<BlockId>(B);
    const BasicBlock *BB = F.block(Id);

    auto Pipelined = MF.PipelinedLoops.find(Id);
    if (Pipelined != MF.PipelinedLoops.end()) {
      const LoopSchedule &LS = Pipelined->second;
      Text += "L" + std::to_string(B) +
              ": .pipelined ii=" + std::to_string(LS.II) +
              " stages=" + std::to_string(LS.Stages) +
              " (mii=" + std::to_string(LS.MII) + ")\n";
      // Emit the kernel cycle by cycle; prologue/epilogue are abbreviated
      // in the listing but counted in the image.
      std::vector<const KernelOp *> ByCycle[64];
      for (const KernelOp &K : LS.Kernel)
        if (K.Cycle < 64)
          ByCycle[K.Cycle].push_back(&K);
      for (uint32_t Cycle = 0; Cycle != LS.II && Cycle != 64; ++Cycle) {
        Text += "    [" + std::to_string(Cycle) + "]";
        for (const KernelOp *K : ByCycle[Cycle]) {
          Text += "  (s" + std::to_string(K->Stage) + ") " +
                  renderOp(F, BB->Instrs[K->InstrIdx], K->Unit);
          encodeOp(Image, BB->Instrs[K->InstrIdx], K->Unit);
        }
        Text += "\n";
      }
      // Prologue/epilogue words (encoded as replicated kernel stages).
      uint32_t Ramp = LS.Stages > 0 ? LS.Stages - 1 : 0;
      for (uint32_t R = 0; R != 2 * Ramp; ++R)
        put32(Image, 0x50524f4c); // "PROL"
      continue;
    }

    const BlockSchedule &BS = MF.Blocks[B];
    Text += "L" + std::to_string(B) + ":\n";
    std::vector<ScheduledOp> Ordered = BS.Ops;
    std::sort(Ordered.begin(), Ordered.end(),
              [](const ScheduledOp &X, const ScheduledOp &Y) {
                if (X.Cycle != Y.Cycle)
                  return X.Cycle < Y.Cycle;
                return X.InstrIdx < Y.InstrIdx;
              });
    for (const ScheduledOp &Op : Ordered) {
      Text += "    [" + std::to_string(Op.Cycle) + "]  " +
              renderOp(F, BB->Instrs[Op.InstrIdx], Op.Unit) + "\n";
      encodeOp(Image, BB->Instrs[Op.InstrIdx], Op.Unit);
    }
  }
  return Program;
}
