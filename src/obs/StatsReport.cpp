//===- StatsReport.cpp - Shared run-statistics formatter -----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/StatsReport.h"

#include "obs/MetricsRegistry.h"

#include <algorithm>
#include <cstdio>

using namespace warpc;
using namespace warpc::obs;

void StatsReport::beginGroup(std::string Key, std::string Title, int Indent) {
  Groups.push_back({std::move(Key), std::move(Title), Indent, {}});
}

void StatsReport::add(std::string Key, std::string Label, std::string Text,
                      json::Value V) {
  Groups.back().Rows.push_back(
      {std::move(Key), std::move(Label), std::move(Text), std::move(V)});
}

std::string StatsReport::renderText() const {
  std::string Out;
  for (const Group &G : Groups) {
    Out.append(static_cast<size_t>(G.Indent), ' ');
    Out += G.Title;
    Out += ":\n";
    size_t Width = 0;
    for (const Row &R : G.Rows)
      Width = std::max(Width, R.Label.size());
    for (const Row &R : G.Rows) {
      Out.append(static_cast<size_t>(G.Indent) + 2, ' ');
      Out += R.Label;
      Out += ':';
      Out.append(Width - R.Label.size() + 1, ' ');
      Out += R.Text;
      Out += '\n';
    }
  }
  return Out;
}

json::Value StatsReport::toJson() const {
  json::Value Root = json::Value::object();
  for (const Group &G : Groups) {
    json::Value Obj = json::Value::object();
    for (const Row &R : G.Rows)
      Obj.set(R.Key, R.Json);
    Root.set(G.Key, std::move(Obj));
  }
  return Root;
}

void obs::appendHistogramQuantiles(StatsReport &Report,
                                   const MetricsRegistry &M) {
  std::vector<std::string> Names = M.histogramNames();
  if (Names.empty())
    return;
  Report.beginGroup("latency_quantiles", "latency quantiles");
  for (const std::string &Name : Names) {
    Histogram H = M.histogram(Name);
    char Text[96];
    std::snprintf(Text, sizeof(Text), "p50 %.4g  p95 %.4g  p99 %.4g  (n=%llu)",
                  H.quantile(0.50), H.quantile(0.95), H.quantile(0.99),
                  static_cast<unsigned long long>(H.Count));
    json::Value Obj = json::Value::object();
    Obj.set("p50", json::Value(H.quantile(0.50)));
    Obj.set("p95", json::Value(H.quantile(0.95)));
    Obj.set("p99", json::Value(H.quantile(0.99)));
    Obj.set("count", json::Value(H.Count));
    Report.add(Name, Name, Text, std::move(Obj));
  }
}
