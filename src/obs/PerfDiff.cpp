//===- PerfDiff.cpp - Perf-regression gate over stats/bench JSON ---------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/PerfDiff.h"

#include "support/Stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

using namespace warpc;
using namespace warpc::obs;

namespace {

bool contains(std::string_view Haystack, std::string_view Needle) {
  return Haystack.find(Needle) != std::string_view::npos;
}

bool endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

/// Identifying label for one element of an array of objects: its string
/// members plus the well-known shape counters, e.g.
/// "[size=s_small,functions=16]".
std::string rowLabel(const json::Value &Row, size_t Index) {
  std::string Label;
  for (const auto &[Key, V] : Row.members()) {
    bool Identifying =
        V.isString() || ((Key == "functions" || Key == "workers" ||
                          Key == "processors" || Key == "hosts") &&
                         V.isNumber());
    if (!Identifying)
      continue;
    if (!Label.empty())
      Label += ',';
    Label += Key + "=" + (V.isString() ? V.str() : V.dump());
  }
  if (Label.empty())
    Label = std::to_string(Index);
  return "[" + Label + "]";
}

void flattenInto(const json::Value &V, const std::string &Path,
                 std::vector<PerfMetric> &Out) {
  if (V.isNumber()) {
    if (!Path.empty())
      Out.push_back({Path, V.number()});
    return;
  }
  if (V.isObject()) {
    // An object carrying an "engine" string labels its whole subtree, so
    // thread- and process-engine runs of the same workload never alias
    // the same metric path. Array rows already fold the engine into
    // their rowLabel (the path then ends in ']'), so only bare object
    // paths get the suffix.
    std::string Here = Path;
    const json::Value &Engine = V.get("engine");
    if (Engine.isString() && !endsWith(Here, "]"))
      Here += "[engine=" + Engine.str() + "]";
    for (const auto &[Key, Member] : V.members()) {
      if (Key == "schema")
        continue; // version tag, not a metric
      flattenInto(Member, Here.empty() ? Key : Here + "." + Key, Out);
    }
    return;
  }
  if (V.isArray()) {
    // Only arrays of objects (BENCH rows) are walked; scalar arrays are
    // raw data (histogram buckets, series samples), not metrics.
    for (size_t I = 0; I != V.size(); ++I)
      if (V[I].isObject())
        flattenInto(V[I], Path + rowLabel(V[I], I), Out);
  }
}

} // namespace

PerfDirection obs::metricDirection(std::string_view Path) {
  // Only the leaf name decides: row labels and group names carry
  // identifying text ("size=...") that must not sway the direction.
  size_t Dot = Path.rfind('.');
  std::string_view Leaf =
      Dot == std::string_view::npos ? Path : Path.substr(Dot + 1);
  if (contains(Leaf, "speedup") || contains(Leaf, "hit_rate") ||
      contains(Leaf, "hits"))
    return PerfDirection::HigherIsBetter;
  if (endsWith(Leaf, "_sec") || endsWith(Leaf, "sec") ||
      endsWith(Leaf, "_ms") || contains(Leaf, "elapsed") ||
      contains(Leaf, "overhead") || contains(Leaf, "wait") ||
      contains(Leaf, "p50") || contains(Leaf, "p95") || contains(Leaf, "p99"))
    return PerfDirection::LowerIsBetter;
  return PerfDirection::Informational;
}

std::vector<PerfMetric> obs::flattenMetrics(const json::Value &Doc) {
  std::vector<PerfMetric> Out;
  flattenInto(Doc, "", Out);
  return Out;
}

PerfDiffResult obs::diffPerf(const std::vector<json::Value> &Baselines,
                             const json::Value &Candidate,
                             const PerfDiffOptions &Opts) {
  PerfDiffResult R;

  // Pool the baseline repeats per path; insertion order of the first
  // appearance keeps the report deterministic.
  std::vector<std::string> Order;
  std::map<std::string, Summary> Pool;
  for (const json::Value &B : Baselines) {
    for (const PerfMetric &M : flattenMetrics(B)) {
      auto [It, Fresh] = Pool.try_emplace(M.Path);
      if (Fresh)
        Order.push_back(M.Path);
      It->second.add(M.Value);
    }
  }

  std::map<std::string, double> Cand;
  std::vector<std::string> CandOrder;
  for (const PerfMetric &M : flattenMetrics(Candidate)) {
    if (Cand.emplace(M.Path, M.Value).second)
      CandOrder.push_back(M.Path);
  }

  for (const std::string &Path : Order) {
    const Summary &Base = Pool.at(Path);
    auto It = Cand.find(Path);
    if (It == Cand.end()) {
      R.MissingInCandidate.push_back(Path);
      continue;
    }
    PerfDelta D;
    D.Path = Path;
    D.Baseline = Base.mean();
    D.Candidate = It->second;
    D.Direction = metricDirection(Path);
    D.ThresholdPct = Opts.DefaultThresholdPct;
    if (Base.count() > 1)
      D.ThresholdPct = std::max(D.ThresholdPct,
                                200.0 * Base.maxRelativeDeviation());
    double Delta = D.Candidate - D.Baseline;
    if (std::abs(D.Baseline) > Opts.MinAbsDelta)
      D.DeltaPct = 100.0 * Delta / std::abs(D.Baseline);
    bool Gateable = D.Direction != PerfDirection::Informational &&
                    std::abs(Delta) > Opts.MinAbsDelta &&
                    std::abs(D.Baseline) > Opts.MinAbsDelta;
    if (Gateable) {
      double Worse = D.DeltaPct * -static_cast<int>(D.Direction);
      D.Regression = Worse > D.ThresholdPct;
      D.Improvement = -Worse > D.ThresholdPct;
    }
    R.Regressions += D.Regression;
    R.Improvements += D.Improvement;
    R.Deltas.push_back(std::move(D));
  }

  for (const std::string &Path : CandOrder)
    if (!Pool.count(Path))
      R.OnlyInCandidate.push_back(Path);
  return R;
}

std::string obs::renderPerfDiff(const PerfDiffResult &R, bool ShowAll) {
  std::string Out;
  char Line[256];
  for (const PerfDelta &D : R.Deltas) {
    if (!ShowAll && !D.Regression && !D.Improvement)
      continue;
    const char *Tag = D.Regression      ? "REGRESSION "
                      : D.Improvement   ? "improvement"
                                        : "unchanged  ";
    std::snprintf(Line, sizeof(Line),
                  "%s  %-48s %12.6g -> %12.6g  (%+.2f%%, threshold %.1f%%)\n",
                  Tag, D.Path.c_str(), D.Baseline, D.Candidate, D.DeltaPct,
                  D.ThresholdPct);
    Out += Line;
  }
  for (const std::string &Path : R.MissingInCandidate)
    Out += "missing in candidate: " + Path + "\n";
  if (ShowAll)
    for (const std::string &Path : R.OnlyInCandidate)
      Out += "only in candidate: " + Path + "\n";
  std::snprintf(Line, sizeof(Line),
                "warp-perf: %u regression(s), %u improvement(s), "
                "%zu metric(s) compared\n",
                R.Regressions, R.Improvements, R.Deltas.size());
  Out += Line;
  return Out;
}
