//===- Event.h - Typed trace events -----------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typed, allocation-light event model for both execution engines.
/// A SpanEvent is one fixed-size record: enum kind, host id, section and
/// function ids (interned — names live in the TraceSession string table),
/// phase, attempt number, and fault cause. It replaces the old free-text
/// TraceEvent{AtSec, What}, which nothing downstream could aggregate
/// without regex-scraping. Events from the cluster simulator carry
/// simulated seconds; events from the thread engine carry steady-clock
/// seconds since the run started — the ClockDomain on the session says
/// which.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OBS_EVENT_H
#define WARPC_OBS_EVENT_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace warpc {
namespace obs {

/// What one event records. Span* kinds carry a duration; the rest are
/// instants (DurSec < 0).
enum class EventKind : uint8_t {
  // Spans (work with extent in time).
  SpanMasterFork,      ///< Master forks the Lisp parse process.
  SpanStartup,         ///< Lisp process startup (download + init).
  SpanParse,           ///< Phase 1 in the master's Lisp process.
  SpanSchedule,        ///< Master's scheduling decision.
  SpanSectionFork,     ///< Master forks one section master.
  SpanDirectives,      ///< Section master interprets directives.
  SpanFunctionFork,    ///< Section master forks one function master.
  SpanCompile,         ///< Phases 2+3 of one function on one host.
  SpanCombine,         ///< Section master combines results.
  SpanAssembly,        ///< Phase 4 in the master's Lisp process.
  SpanMasterRecompile, ///< Attempt-cap fallback in the master.
  SpanAnalyze,         ///< Static analysis of one function on one worker.
  SpanCacheHit,        ///< Cached result replayed instead of compiling.
  SpanSummarize,       ///< Interprocedural summarization of one SCC.
  SpanOptimize,        ///< Phase 2 alone, recorded inside a worker process.
  SpanCodegen,         ///< Phase 3 alone, recorded inside a worker process.

  // Instants (milestones and fault-handling decisions).
  PlacementFailed,  ///< Target host down at fork time.
  AttemptLost,      ///< Work lost to a crash (see Cause).
  MessageLost,      ///< Completion message dropped.
  TimeoutFired,     ///< Master-side watchdog expired.
  Reassigned,       ///< Function re-placed on another host.
  SpeculationLaunched, ///< Straggler duplicate started.
  ResultRejected,   ///< Poisoned result failed validation.
  FunctionDone,     ///< A function's result was accepted.
  SectionDone,      ///< A section reported to the master.
  AllSectionsDone,  ///< Assembly can begin.
  ModuleLinked,     ///< Download module linked.
  RunComplete,      ///< Final image transfer landed.
  AnomalyDetected,  ///< Telemetry flagged a spike or straggler.
  RequestAdmitted,  ///< Service request passed admission control.
};

/// Returns a stable lowercase identifier ("span_compile", "timeout_fired")
/// used in serialized traces; kindFromName inverts it.
const char *kindName(EventKind K);
bool kindFromName(const std::string &Name, EventKind &K);

/// Returns true for Span* kinds.
bool isSpanKind(EventKind K);

/// The paper's phase taxonomy, used as the Chrome trace category so
/// Perfetto can filter tracks by phase.
enum class Phase : uint8_t {
  Setup,    ///< Forks and process startup.
  Parse,    ///< Phase 1.
  Schedule, ///< Partitioning decision.
  Compile,  ///< Phases 2+3 on the function masters.
  Combine,  ///< Section-master result combination.
  Assembly, ///< Phase 4.
  Recovery, ///< Fault handling: timeouts, retries, fallbacks.
  Analyze,  ///< Static-analysis checks (warp-lint / --analyze).
};

const char *phaseName(Phase P);
bool phaseFromName(const std::string &Name, Phase &P);

/// Why a fault-handling event happened.
enum class FaultCause : uint8_t {
  None,
  HostDown,           ///< Host unreachable at placement time.
  CrashDuringStartup, ///< Host crashed while the Lisp image loaded.
  CrashDuringCompile, ///< Host crashed mid-compile.
  CrashDuringResult,  ///< Host crashed writing the result file.
  MessageLoss,        ///< Completion message dropped by the network.
  TimeoutExpired,     ///< Watchdog declared the attempt lost.
  AttemptCapReached,  ///< Retries exhausted; master takes over.
  PoisonedResult,     ///< Result file failed validation.
  Superseded,         ///< A competing attempt delivered first.
};

const char *causeName(FaultCause C);
bool causeFromName(const std::string &Name, FaultCause &C);

/// One trace record, no owned strings: names are interned in the
/// TraceSession the event belongs to.
struct SpanEvent {
  double TSec = 0;    ///< Start time (or instant time) in seconds.
  double DurSec = -1; ///< Extent; negative for instants.
  /// CPU seconds attributed to the implementation-overhead ledger
  /// (master/section-master coordination work). Zero for events that do
  /// not contribute; lets the analyzer rebuild the Section 4.2.3
  /// decomposition from the trace alone.
  double CpuSec = 0;
  uint64_t Seq = 0;   ///< Emission order: the deterministic tie-break.
  /// Span id of the event that causally produced this one (the dispatch
  /// or result message edge), or 0 for a root. Span ids are Seq + 1 so
  /// that 0 never names a real event; see spanId().
  uint64_t Parent = 0;
  /// OS process the event was recorded in, or 0 for the trace-owning
  /// process. Nonzero only in multi-process traces (spliced worker or
  /// daemon shards); ChromeTrace maps it to the Chrome pid so Perfetto
  /// draws one process group per real process.
  uint64_t Pid = 0;
  /// Payload bytes the event accounts for (result frames, shipped
  /// images); 0 when not applicable. Feeds the per-request summary.
  uint64_t Bytes = 0;
  int32_t Host = -1;  ///< Simulated workstation or thread lane; -1 n/a.
  int32_t Section = -1;
  int32_t Function = -1; ///< Flat function id into the name table.
  int32_t Attempt = 0;   ///< 1-based attempt number; 0 when n/a.
  EventKind Kind = EventKind::RunComplete;
  Phase Ph = Phase::Setup;
  FaultCause Cause = FaultCause::None;
  bool Speculative = false;

  bool isSpan() const { return DurSec >= 0; }
  double endSec() const { return isSpan() ? TSec + DurSec : TSec; }
  /// The id other events use as their Parent link (nonzero).
  uint64_t spanId() const { return Seq + 1; }
};

/// The W3C-style propagation triple for one event: which run it belongs
/// to, its own id, and the id of the event that caused it. This is what
/// the engines conceptually pass along every dispatch/result message;
/// the flat SpanEvent fields are its storage.
struct SpanContext {
  uint64_t TraceId = 0;
  uint64_t SpanId = 0;
  uint64_t ParentSpanId = 0;
};

/// One sample of a named time series (queue depths, load estimates).
struct CounterEvent {
  double TSec = 0;
  double Value = 0;
  uint64_t Seq = 0;
  int32_t Counter = -1; ///< Id into the session's counter-name table.
};

/// Which clock the timestamps come from.
enum class ClockDomain : uint8_t {
  Simulated, ///< Discrete-event simulation seconds.
  Steady,    ///< std::chrono::steady_clock seconds since run start.
};

/// A complete recorded run: events in deterministic (TSec, Seq) order
/// plus the tables that give ids their names and the run-level aggregates
/// the analyzer needs to reproduce computeOverheads.
struct TraceSession {
  ClockDomain Domain = ClockDomain::Simulated;
  std::vector<SpanEvent> Events;
  std::vector<CounterEvent> Counters;
  std::vector<std::string> FunctionNames; ///< Indexed by SpanEvent::Function.
  std::vector<std::string> CounterNames;  ///< Indexed by CounterEvent::Counter.
  /// Labels for the foreign processes whose spans were spliced into this
  /// session (SpanEvent::Pid → display name). Empty for single-process
  /// traces; pid 0 (the trace-owning process) is never listed here.
  std::vector<std::pair<uint64_t, std::string>> ProcessNames;
  /// Which execution engine produced the run ("sim", "thread",
  /// "process"), or empty for traces recorded before engines were
  /// labeled. Lets warp-traceview and warp-perf tell a thread run from a
  /// process run of the same module.
  std::string Engine;
  /// Identifies the run all spans belong to. Derived from the run's
  /// content (not wall clock) so identical runs serialize identically;
  /// kept in [0, 2^63) so it survives a JSON integer round trip.
  uint64_t TraceId = 0;
  uint32_t NumHosts = 0;
  uint32_t NumSections = 0;

  // Run-level aggregates (carried in the trace file's otherData block).
  double ParElapsedSec = 0;
  double SeqElapsedSec = 0; ///< Zero when no sequential baseline was run.
  uint32_t NumFunctions = 0;

  const std::string &functionName(int32_t Id) const {
    static const std::string Unknown = "?";
    return Id >= 0 && static_cast<size_t>(Id) < FunctionNames.size()
               ? FunctionNames[static_cast<size_t>(Id)]
               : Unknown;
  }

  /// The propagation triple for one recorded event.
  SpanContext contextOf(const SpanEvent &E) const {
    return {TraceId, E.spanId(), E.Parent};
  }
};

/// Renders one event as a human-readable line (the successor of the old
/// free-text TraceEvent strings), e.g.
/// "ws3: compile 'f4' (attempt 1) 612.0s..1843.2s".
std::string renderEvent(const TraceSession &S, const SpanEvent &E);

} // namespace obs
} // namespace warpc

#endif // WARPC_OBS_EVENT_H
