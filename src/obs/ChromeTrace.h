//===- ChromeTrace.h - Chrome trace-event JSON sink -------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a TraceSession to the Chrome trace-event JSON format (the
/// "JSON Array Format" with an object wrapper), loadable in Perfetto or
/// chrome://tracing: one track (tid) per simulated workstation or real
/// worker thread, complete ("X") events for spans, instant ("i") events
/// for milestones and fault decisions, and counter ("C") events for time
/// series. Timestamps are microseconds as the format requires; every
/// event additionally carries the exact double-precision seconds (and all
/// typed fields) under "args", and the run-level aggregates ride in the
/// top-level "otherData" object, so parseChromeTrace() reconstructs the
/// session losslessly — the trace file carries the same information as
/// the aggregate stats.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OBS_CHROMETRACE_H
#define WARPC_OBS_CHROMETRACE_H

#include "obs/Event.h"

#include <string>

namespace warpc {
namespace obs {

/// Serializes \p S as a Chrome trace-event JSON document.
std::string writeChromeTrace(const TraceSession &S);

/// Writes writeChromeTrace(S) to \p Path; false + \p Error on I/O failure.
bool writeChromeTraceFile(const TraceSession &S, const std::string &Path,
                          std::string &Error);

/// Parses a document produced by writeChromeTrace back into a session.
/// Unknown events are skipped; malformed JSON or a missing traceEvents
/// array fails with \p Error set.
bool parseChromeTrace(const std::string &Text, TraceSession &Out,
                      std::string &Error);

/// Reads \p Path and parses it; false + \p Error on failure.
bool readChromeTraceFile(const std::string &Path, TraceSession &Out,
                         std::string &Error);

} // namespace obs
} // namespace warpc

#endif // WARPC_OBS_CHROMETRACE_H
