//===- ChromeTrace.cpp - Chrome trace-event JSON sink --------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/ChromeTrace.h"

#include "support/Json.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

using namespace warpc;
using namespace warpc::obs;

namespace {

/// Human-readable event label shown on the Perfetto track.
std::string eventLabel(const TraceSession &S, const SpanEvent &E) {
  std::string Name = kindName(E.Kind);
  // Strip the "span_" prefix for display; the exact kind is in args.
  if (Name.rfind("span_", 0) == 0)
    Name = Name.substr(5);
  if (E.Function >= 0)
    Name += " '" + S.functionName(E.Function) + "'";
  else if (E.Section >= 0)
    Name += " s" + std::to_string(E.Section);
  return Name;
}

json::Value eventArgs(const SpanEvent &E) {
  json::Value Args = json::Value::object();
  Args.set("kind", json::Value(kindName(E.Kind)));
  Args.set("t", json::Value(E.TSec));
  if (E.isSpan())
    Args.set("dur", json::Value(E.DurSec));
  if (E.CpuSec != 0)
    Args.set("cpu", json::Value(E.CpuSec));
  Args.set("seq", json::Value(E.Seq));
  if (E.Parent != 0)
    Args.set("parent", json::Value(E.Parent));
  if (E.Host >= 0)
    Args.set("host", json::Value(E.Host));
  if (E.Section >= 0)
    Args.set("section", json::Value(E.Section));
  if (E.Function >= 0)
    Args.set("fn", json::Value(E.Function));
  if (E.Attempt > 0)
    Args.set("attempt", json::Value(E.Attempt));
  if (E.Cause != FaultCause::None)
    Args.set("cause", json::Value(causeName(E.Cause)));
  if (E.Speculative)
    Args.set("speculative", json::Value(true));
  if (E.Pid != 0)
    Args.set("pid", json::Value(E.Pid));
  if (E.Bytes != 0)
    Args.set("bytes", json::Value(E.Bytes));
  return Args;
}

} // namespace

std::string obs::writeChromeTrace(const TraceSession &S) {
  json::Value Root = json::Value::object();
  json::Value Events = json::Value::array();

  const int64_t Pid = 0;
  auto TidOf = [](const SpanEvent &E) {
    return static_cast<int64_t>(E.Host >= 0 ? E.Host : 0);
  };
  // Spliced foreign spans keep their recording process's pid so Perfetto
  // draws one process group per real OS process; pid 0 is the
  // trace-owning process (and the only pid in single-process traces).
  auto PidOf = [](const SpanEvent &E) { return static_cast<int64_t>(E.Pid); };

  // Track-naming metadata. Perfetto shows these as process/thread names.
  {
    json::Value M = json::Value::object();
    M.set("name", json::Value("process_name"));
    M.set("ph", json::Value("M"));
    M.set("pid", json::Value(Pid));
    json::Value Args = json::Value::object();
    Args.set("name",
             json::Value(S.Engine == "process"
                             ? "warpc process engine"
                             : S.Domain == ClockDomain::Simulated
                                   ? "warpc simulated 1989 cluster"
                                   : "warpc thread engine"));
    M.set("args", std::move(Args));
    Events.push(std::move(M));
  }
  for (uint32_t H = 0; H != S.NumHosts; ++H) {
    json::Value M = json::Value::object();
    M.set("name", json::Value("thread_name"));
    M.set("ph", json::Value("M"));
    M.set("pid", json::Value(Pid));
    M.set("tid", json::Value(static_cast<int64_t>(H)));
    json::Value Args = json::Value::object();
    std::string TrackName =
        S.Domain == ClockDomain::Simulated
            ? (H == 0 ? "ws0 (master)" : "ws" + std::to_string(H))
            : (H == 0 ? "master" : "worker " + std::to_string(H));
    Args.set("name", json::Value(TrackName));
    M.set("args", std::move(Args));
    Events.push(std::move(M));
  }
  for (const auto &[FPid, FName] : S.ProcessNames) {
    if (FPid == 0)
      continue;
    json::Value M = json::Value::object();
    M.set("name", json::Value("process_name"));
    M.set("ph", json::Value("M"));
    M.set("pid", json::Value(static_cast<int64_t>(FPid)));
    json::Value Args = json::Value::object();
    Args.set("name", json::Value(FName));
    M.set("args", std::move(Args));
    Events.push(std::move(M));
  }

  for (const SpanEvent &E : S.Events) {
    json::Value Ev = json::Value::object();
    Ev.set("name", json::Value(eventLabel(S, E)));
    Ev.set("cat", json::Value(phaseName(E.Ph)));
    Ev.set("ph", json::Value(E.isSpan() ? "X" : "i"));
    Ev.set("ts", json::Value(E.TSec * 1e6));
    if (E.isSpan())
      Ev.set("dur", json::Value(E.DurSec * 1e6));
    else
      Ev.set("s", json::Value("t")); // thread-scoped instant
    Ev.set("pid", json::Value(PidOf(E)));
    Ev.set("tid", json::Value(TidOf(E)));
    Ev.set("args", eventArgs(E));
    Events.push(std::move(Ev));
  }

  // Causal flow arrows. Perfetto only anchors flows on slices, so each
  // span with a Parent link draws an arrow from its nearest *span*
  // ancestor (walking through instant milestones like FunctionDone); the
  // instants themselves draw nothing — their children bridge past them.
  {
    std::unordered_map<uint64_t, const SpanEvent *> ById;
    ById.reserve(S.Events.size());
    for (const SpanEvent &E : S.Events)
      ById.emplace(E.spanId(), &E);
    for (const SpanEvent &E : S.Events) {
      if (!E.isSpan() || E.Parent == 0)
        continue;
      const SpanEvent *Anchor = nullptr;
      uint64_t Walk = E.Parent;
      for (unsigned Guard = 0; Walk != 0 && Guard != 64; ++Guard) {
        auto It = ById.find(Walk);
        if (It == ById.end())
          break;
        if (It->second->isSpan()) {
          Anchor = It->second;
          break;
        }
        Walk = It->second->Parent;
      }
      if (!Anchor)
        continue;
      json::Value Start = json::Value::object();
      Start.set("name", json::Value("causal"));
      Start.set("cat", json::Value("flow"));
      Start.set("ph", json::Value("s"));
      Start.set("id", json::Value(E.spanId()));
      // Anchor at the producing span's end, nudged inside the slice so
      // Perfetto binds it to that slice rather than a later one.
      double AnchorSec =
          std::min(Anchor->endSec(), std::max(Anchor->TSec, E.TSec));
      Start.set("ts", json::Value(AnchorSec * 1e6));
      Start.set("pid", json::Value(PidOf(*Anchor)));
      Start.set("tid", json::Value(TidOf(*Anchor)));
      Events.push(std::move(Start));
      json::Value Finish = json::Value::object();
      Finish.set("name", json::Value("causal"));
      Finish.set("cat", json::Value("flow"));
      Finish.set("ph", json::Value("f"));
      Finish.set("bp", json::Value("e")); // bind to enclosing slice
      Finish.set("id", json::Value(E.spanId()));
      Finish.set("ts", json::Value(E.TSec * 1e6));
      Finish.set("pid", json::Value(PidOf(E)));
      Finish.set("tid", json::Value(TidOf(E)));
      Events.push(std::move(Finish));
    }
  }

  for (const CounterEvent &C : S.Counters) {
    if (C.Counter < 0 ||
        static_cast<size_t>(C.Counter) >= S.CounterNames.size())
      continue;
    json::Value Ev = json::Value::object();
    Ev.set("name", json::Value(S.CounterNames[static_cast<size_t>(C.Counter)]));
    Ev.set("ph", json::Value("C"));
    Ev.set("ts", json::Value(C.TSec * 1e6));
    Ev.set("pid", json::Value(Pid));
    json::Value Args = json::Value::object();
    Args.set("value", json::Value(C.Value));
    Args.set("t", json::Value(C.TSec));
    Args.set("seq", json::Value(C.Seq));
    Args.set("id", json::Value(C.Counter));
    Ev.set("args", std::move(Args));
    Events.push(std::move(Ev));
  }

  Root.set("traceEvents", std::move(Events));
  Root.set("displayTimeUnit", json::Value("ms"));

  json::Value Other = json::Value::object();
  Other.set("tool", json::Value("warpc"));
  // Only engine-labeled sessions write the key, so traces from before the
  // label existed (and their goldens) stay byte-identical.
  if (!S.Engine.empty())
    Other.set("engine", json::Value(S.Engine));
  Other.set("traceId", json::Value(S.TraceId));
  Other.set("clockDomain",
            json::Value(S.Domain == ClockDomain::Simulated ? "simulated"
                                                           : "steady"));
  Other.set("numHosts", json::Value(static_cast<int64_t>(S.NumHosts)));
  Other.set("numSections", json::Value(static_cast<int64_t>(S.NumSections)));
  Other.set("numFunctions",
            json::Value(static_cast<int64_t>(S.NumFunctions)));
  Other.set("parElapsedSec", json::Value(S.ParElapsedSec));
  Other.set("seqElapsedSec", json::Value(S.SeqElapsedSec));
  json::Value FnNames = json::Value::array();
  for (const std::string &N : S.FunctionNames)
    FnNames.push(json::Value(N));
  Other.set("functionNames", std::move(FnNames));
  json::Value CtrNames = json::Value::array();
  for (const std::string &N : S.CounterNames)
    CtrNames.push(json::Value(N));
  Other.set("counterNames", std::move(CtrNames));
  // Only multi-process sessions write the key, so single-process traces
  // (and their goldens) stay byte-identical.
  if (!S.ProcessNames.empty()) {
    json::Value Procs = json::Value::array();
    for (const auto &[FPid, FName] : S.ProcessNames) {
      json::Value P = json::Value::object();
      P.set("pid", json::Value(FPid));
      P.set("name", json::Value(FName));
      Procs.push(std::move(P));
    }
    Other.set("processNames", std::move(Procs));
  }
  Root.set("otherData", std::move(Other));

  return Root.dump(1);
}

bool obs::writeChromeTraceFile(const TraceSession &S, const std::string &Path,
                               std::string &Error) {
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << writeChromeTrace(S) << "\n";
  if (!Out) {
    Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

bool obs::parseChromeTrace(const std::string &Text, TraceSession &Out,
                           std::string &Error) {
  Out = TraceSession();
  if (Text.find_first_not_of(" \t\r\n") == std::string::npos) {
    Error = "empty trace file (no JSON content)";
    return false;
  }
  json::Value Root = json::parse(Text, Error);
  if (!Error.empty()) {
    Error = "truncated or malformed trace JSON: " + Error;
    return false;
  }
  if (!Root.isObject() || !Root.get("traceEvents").isArray()) {
    Error = "not a Chrome trace: missing traceEvents array";
    return false;
  }

  const json::Value &Other = Root.get("otherData");
  if (Other.isObject()) {
    Out.Domain = Other.get("clockDomain").str() == "steady"
                     ? ClockDomain::Steady
                     : ClockDomain::Simulated;
    if (Other.has("engine"))
      Out.Engine = Other.get("engine").str();
    if (Other.has("traceId"))
      Out.TraceId = static_cast<uint64_t>(Other.get("traceId").integer());
    Out.NumHosts = static_cast<uint32_t>(Other.get("numHosts").integer());
    Out.NumSections =
        static_cast<uint32_t>(Other.get("numSections").integer());
    Out.NumFunctions =
        static_cast<uint32_t>(Other.get("numFunctions").integer());
    Out.ParElapsedSec = Other.get("parElapsedSec").number();
    Out.SeqElapsedSec = Other.get("seqElapsedSec").number();
    for (const json::Value &N : Other.get("functionNames").elements())
      Out.FunctionNames.push_back(N.str());
    for (const json::Value &N : Other.get("counterNames").elements())
      Out.CounterNames.push_back(N.str());
    if (Other.has("processNames"))
      for (const json::Value &P : Other.get("processNames").elements())
        if (P.isObject())
          Out.ProcessNames.emplace_back(
              static_cast<uint64_t>(P.get("pid").integer()),
              P.get("name").str());
  }

  for (const json::Value &Ev : Root.get("traceEvents").elements()) {
    if (!Ev.isObject())
      continue;
    const std::string &Ph = Ev.get("ph").str();
    const json::Value &Args = Ev.get("args");
    if (Ph == "C") {
      if (!Args.isObject() || !Args.has("id"))
        continue;
      CounterEvent C;
      C.Counter = static_cast<int32_t>(Args.get("id").integer());
      C.TSec = Args.get("t").number();
      C.Value = Args.get("value").number();
      C.Seq = static_cast<uint64_t>(Args.get("seq").integer());
      Out.Counters.push_back(C);
      continue;
    }
    if (Ph != "X" && Ph != "i")
      continue; // metadata and anything exotic
    if (!Args.isObject())
      continue;
    SpanEvent E;
    if (!kindFromName(Args.get("kind").str(), E.Kind))
      continue;
    E.TSec = Args.get("t").number();
    E.DurSec = Args.has("dur") ? Args.get("dur").number() : -1.0;
    E.CpuSec = Args.has("cpu") ? Args.get("cpu").number() : 0.0;
    E.Seq = static_cast<uint64_t>(Args.get("seq").integer());
    E.Parent = Args.has("parent")
                   ? static_cast<uint64_t>(Args.get("parent").integer())
                   : 0;
    E.Host = Args.has("host")
                 ? static_cast<int32_t>(Args.get("host").integer())
                 : -1;
    E.Section = Args.has("section")
                    ? static_cast<int32_t>(Args.get("section").integer())
                    : -1;
    E.Function = Args.has("fn")
                     ? static_cast<int32_t>(Args.get("fn").integer())
                     : -1;
    E.Attempt = Args.has("attempt")
                    ? static_cast<int32_t>(Args.get("attempt").integer())
                    : 0;
    if (Args.has("cause"))
      causeFromName(Args.get("cause").str(), E.Cause);
    E.Pid = Args.has("pid")
                ? static_cast<uint64_t>(Args.get("pid").integer())
                : 0;
    E.Bytes = Args.has("bytes")
                  ? static_cast<uint64_t>(Args.get("bytes").integer())
                  : 0;
    E.Speculative = Args.get("speculative").kind() == json::Value::Kind::Bool
                        ? Args.get("speculative").boolean()
                        : false;
    phaseFromName(Ev.get("cat").str(), E.Ph);
    Out.Events.push_back(E);
  }
  return true;
}

bool obs::readChromeTraceFile(const std::string &Path, TraceSession &Out,
                              std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return parseChromeTrace(Buf.str(), Out, Error);
}
