//===- TimeSeries.cpp - Sampled telemetry ring buffers -------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/TimeSeries.h"

#include "obs/TraceRecorder.h"

#include <algorithm>
#include <cctype>
#include <cmath>

using namespace warpc;
using namespace warpc::obs;

TimeSeries::TimeSeries(std::string Name, size_t Capacity)
    : Name(std::move(Name)), Capacity(std::max<size_t>(Capacity, 4)) {
  Samples.reserve(this->Capacity);
}

void TimeSeries::sample(double TSec, double Value) {
  if (!Samples.empty()) {
    if (TSec < Samples.back().TSec)
      return; // out of order
    if (TSec - Samples.back().TSec < MinGapSec)
      return; // inside the decimation gap
  }
  if (Samples.size() == Capacity) {
    // Keep every other sample; future samples must then arrive at least
    // twice the average retained spacing apart. Deterministic: depends
    // only on the samples seen so far.
    size_t Out = 0;
    for (size_t I = 0; I < Samples.size(); I += 2)
      Samples[Out++] = Samples[I];
    Samples.resize(Out);
    double SpanSec = Samples.back().TSec - Samples.front().TSec;
    MinGapSec = std::max(MinGapSec * 2,
                         2.0 * SpanSec / static_cast<double>(Capacity));
    if (TSec - Samples.back().TSec < MinGapSec)
      return;
  }
  Samples.push_back({TSec, Value});
}

TimeSeriesSet::TimeSeriesSet(size_t CapacityPerSeries)
    : Capacity(CapacityPerSeries) {}

void TimeSeriesSet::registerGauge(std::string Name,
                                  std::function<double()> Read) {
  Entries.push_back({TimeSeries(std::move(Name), Capacity), std::move(Read)});
}

void TimeSeriesSet::sampleAll(double TSec) {
  for (Entry &E : Entries)
    E.Series.sample(TSec, E.Read ? E.Read() : 0.0);
}

std::vector<TimeSeries> TimeSeriesSet::snapshot() const {
  std::vector<TimeSeries> Out;
  Out.reserve(Entries.size());
  for (const Entry &E : Entries)
    Out.push_back(E.Series);
  return Out;
}

namespace {

/// Trailing-digit host index of a per-host series name, or -1.
int32_t hostIndexOf(const std::string &Name, const std::string &Prefix) {
  if (Name.rfind(Prefix, 0) != 0)
    return -1;
  size_t End = Name.size();
  size_t Begin = End;
  while (Begin > Prefix.size() && std::isdigit(Name[Begin - 1]) != 0)
    --Begin;
  if (Begin == End)
    return -1;
  return static_cast<int32_t>(std::stol(Name.substr(Begin)));
}

} // namespace

std::vector<Anomaly> obs::detectAnomalies(const std::vector<TimeSeries> &Series,
                                          const AnomalyPolicy &Policy) {
  std::vector<Anomaly> Out;

  // Per-series spikes: the most extreme sample, if it sits far outside
  // the series' own distribution.
  for (const TimeSeries &TS : Series) {
    const std::vector<TimeSample> &S = TS.samples();
    if (S.size() < Policy.MinSamples)
      continue;
    double Sum = 0;
    for (const TimeSample &P : S)
      Sum += P.Value;
    double Mean = Sum / static_cast<double>(S.size());
    double Var = 0;
    for (const TimeSample &P : S)
      Var += (P.Value - Mean) * (P.Value - Mean);
    double Stddev = std::sqrt(Var / static_cast<double>(S.size()));
    if (Stddev <= 1e-12)
      continue;
    const TimeSample *Worst = &S.front();
    for (const TimeSample &P : S)
      if (std::abs(P.Value - Mean) > std::abs(Worst->Value - Mean))
        Worst = &P;
    if (std::abs(Worst->Value - Mean) <= Policy.SigmaThreshold * Stddev)
      continue;
    Anomaly A;
    A.Series = TS.name();
    A.TSec = Worst->TSec;
    A.Value = Worst->Value;
    A.Mean = Mean;
    A.Stddev = Stddev;
    A.Host = hostIndexOf(TS.name(), Policy.HostSeriesPrefix);
    A.Reason = "spike";
    Out.push_back(std::move(A));
  }

  // Cross-host stragglers: compare each non-master host's final busy
  // fraction against the mean of its peers.
  struct HostFinal {
    const TimeSeries *TS;
    int32_t Host;
    double Final;
  };
  std::vector<HostFinal> Hosts;
  for (const TimeSeries &TS : Series) {
    int32_t H = hostIndexOf(TS.name(), Policy.HostSeriesPrefix);
    if (H < 1 || TS.samples().size() < Policy.MinSamples)
      continue; // host 0 is the master: always busy, never a straggler
    Hosts.push_back({&TS, H, TS.samples().back().Value});
  }
  if (Hosts.size() >= 3) {
    for (const HostFinal &HF : Hosts) {
      double PeerSum = 0;
      for (const HostFinal &Other : Hosts)
        if (&Other != &HF)
          PeerSum += Other.Final;
      double PeerMean = PeerSum / static_cast<double>(Hosts.size() - 1);
      if (PeerMean <= 0.05 || HF.Final >= Policy.StragglerRatio * PeerMean)
        continue;
      Anomaly A;
      A.Series = HF.TS->name();
      A.TSec = HF.TS->samples().back().TSec;
      A.Value = HF.Final;
      A.Mean = PeerMean;
      A.Stddev = 0;
      A.Host = HF.Host;
      A.Reason = "straggler";
      Out.push_back(std::move(A));
    }
  }
  return Out;
}

std::vector<TimeSeries> obs::sessionSeries(const TraceSession &S,
                                           size_t Capacity) {
  std::vector<TimeSeries> Out;
  Out.reserve(S.CounterNames.size());
  for (const std::string &Name : S.CounterNames)
    Out.emplace_back(Name, Capacity);
  for (const CounterEvent &C : S.Counters)
    if (C.Counter >= 0 && static_cast<size_t>(C.Counter) < Out.size())
      Out[static_cast<size_t>(C.Counter)].sample(C.TSec, C.Value);
  return Out;
}

void obs::emitCounterTracks(TraceRecorder &Rec, unsigned LaneIndex,
                            const std::vector<TimeSeries> &Series) {
  for (const TimeSeries &TS : Series) {
    if (TS.empty())
      continue;
    int32_t Id = Rec.internCounter(TS.name());
    for (const TimeSample &P : TS.samples())
      Rec.lane(LaneIndex).counter(P.TSec, Id, P.Value);
  }
}

json::Value obs::seriesJson(const std::vector<TimeSeries> &Series) {
  json::Value Out = json::Value::object();
  for (const TimeSeries &TS : Series) {
    if (TS.empty())
      continue;
    json::Value S = json::Value::object();
    double Min = TS.samples().front().Value;
    double Max = Min;
    for (const TimeSample &P : TS.samples()) {
      Min = std::min(Min, P.Value);
      Max = std::max(Max, P.Value);
    }
    S.set("last", json::Value(TS.samples().back().Value));
    S.set("min", json::Value(Min));
    S.set("max", json::Value(Max));
    json::Value Points = json::Value::array();
    for (const TimeSample &P : TS.samples()) {
      json::Value Pt = json::Value::array();
      Pt.push(json::Value(P.TSec));
      Pt.push(json::Value(P.Value));
      Points.push(std::move(Pt));
    }
    S.set("samples", std::move(Points));
    Out.set(TS.name(), std::move(S));
  }
  return Out;
}
