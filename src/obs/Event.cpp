//===- Event.cpp - Typed trace events -----------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Event.h"

#include "support/StringUtils.h"

#include <utility>

using namespace warpc;
using namespace warpc::obs;

namespace {

constexpr std::pair<EventKind, const char *> KindNames[] = {
    {EventKind::SpanMasterFork, "span_master_fork"},
    {EventKind::SpanStartup, "span_startup"},
    {EventKind::SpanParse, "span_parse"},
    {EventKind::SpanSchedule, "span_schedule"},
    {EventKind::SpanSectionFork, "span_section_fork"},
    {EventKind::SpanDirectives, "span_directives"},
    {EventKind::SpanFunctionFork, "span_function_fork"},
    {EventKind::SpanCompile, "span_compile"},
    {EventKind::SpanCombine, "span_combine"},
    {EventKind::SpanAssembly, "span_assembly"},
    {EventKind::SpanMasterRecompile, "span_master_recompile"},
    {EventKind::SpanAnalyze, "span_analyze"},
    {EventKind::SpanCacheHit, "span_cache_hit"},
    {EventKind::SpanSummarize, "span_summarize"},
    {EventKind::SpanOptimize, "span_optimize"},
    {EventKind::SpanCodegen, "span_codegen"},
    {EventKind::PlacementFailed, "placement_failed"},
    {EventKind::AttemptLost, "attempt_lost"},
    {EventKind::MessageLost, "message_lost"},
    {EventKind::TimeoutFired, "timeout_fired"},
    {EventKind::Reassigned, "reassigned"},
    {EventKind::SpeculationLaunched, "speculation_launched"},
    {EventKind::ResultRejected, "result_rejected"},
    {EventKind::FunctionDone, "function_done"},
    {EventKind::SectionDone, "section_done"},
    {EventKind::AllSectionsDone, "all_sections_done"},
    {EventKind::ModuleLinked, "module_linked"},
    {EventKind::RunComplete, "run_complete"},
    {EventKind::AnomalyDetected, "anomaly_detected"},
    {EventKind::RequestAdmitted, "request_admitted"},
};

constexpr std::pair<Phase, const char *> PhaseNames[] = {
    {Phase::Setup, "setup"},       {Phase::Parse, "parse"},
    {Phase::Schedule, "schedule"}, {Phase::Compile, "compile"},
    {Phase::Combine, "combine"},   {Phase::Assembly, "assembly"},
    {Phase::Recovery, "recovery"}, {Phase::Analyze, "analyze"},
};

constexpr std::pair<FaultCause, const char *> CauseNames[] = {
    {FaultCause::None, "none"},
    {FaultCause::HostDown, "host_down"},
    {FaultCause::CrashDuringStartup, "crash_during_startup"},
    {FaultCause::CrashDuringCompile, "crash_during_compile"},
    {FaultCause::CrashDuringResult, "crash_during_result"},
    {FaultCause::MessageLoss, "message_loss"},
    {FaultCause::TimeoutExpired, "timeout_expired"},
    {FaultCause::AttemptCapReached, "attempt_cap_reached"},
    {FaultCause::PoisonedResult, "poisoned_result"},
    {FaultCause::Superseded, "superseded"},
};

} // namespace

const char *obs::kindName(EventKind K) {
  for (const auto &[Kind, Name] : KindNames)
    if (Kind == K)
      return Name;
  return "unknown";
}

bool obs::kindFromName(const std::string &Name, EventKind &K) {
  for (const auto &[Kind, KName] : KindNames) {
    if (Name == KName) {
      K = Kind;
      return true;
    }
  }
  return false;
}

bool obs::isSpanKind(EventKind K) {
  switch (K) {
  case EventKind::SpanMasterFork:
  case EventKind::SpanStartup:
  case EventKind::SpanParse:
  case EventKind::SpanSchedule:
  case EventKind::SpanSectionFork:
  case EventKind::SpanDirectives:
  case EventKind::SpanFunctionFork:
  case EventKind::SpanCompile:
  case EventKind::SpanCombine:
  case EventKind::SpanAssembly:
  case EventKind::SpanMasterRecompile:
  case EventKind::SpanAnalyze:
  case EventKind::SpanCacheHit:
  case EventKind::SpanSummarize:
  case EventKind::SpanOptimize:
  case EventKind::SpanCodegen:
    return true;
  default:
    return false;
  }
}

const char *obs::phaseName(Phase P) {
  for (const auto &[Ph, Name] : PhaseNames)
    if (Ph == P)
      return Name;
  return "unknown";
}

bool obs::phaseFromName(const std::string &Name, Phase &P) {
  for (const auto &[Ph, PName] : PhaseNames) {
    if (Name == PName) {
      P = Ph;
      return true;
    }
  }
  return false;
}

const char *obs::causeName(FaultCause C) {
  for (const auto &[Cause, Name] : CauseNames)
    if (Cause == C)
      return Name;
  return "unknown";
}

bool obs::causeFromName(const std::string &Name, FaultCause &C) {
  for (const auto &[Cause, CName] : CauseNames) {
    if (Name == CName) {
      C = Cause;
      return true;
    }
  }
  return false;
}

std::string obs::renderEvent(const TraceSession &S, const SpanEvent &E) {
  std::string Who = E.Host >= 0 ? "ws" + std::to_string(E.Host) : "run";
  std::string Out = "[" + padLeft(formatDouble(E.TSec, 1), 9) + "s] " + Who +
                    ": " + kindName(E.Kind);
  if (E.Function >= 0)
    Out += " '" + S.functionName(E.Function) + "'";
  else if (E.Section >= 0)
    Out += " section " + std::to_string(E.Section);
  if (E.Attempt > 1)
    Out += " (attempt " + std::to_string(E.Attempt) + ")";
  if (E.Speculative)
    Out += " (speculative)";
  if (E.Cause != FaultCause::None)
    Out += " cause=" + std::string(causeName(E.Cause));
  if (E.isSpan())
    Out += " dur=" + formatDouble(E.DurSec, 1) + "s";
  return Out;
}
