//===- PerfDiff.h - Perf-regression gate over stats/bench JSON --*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diff engine behind tools/warp-perf: flattens two (or more)
/// --stats-json / BENCH_*.json documents into dotted numeric metric
/// paths, classifies each metric's improvement direction by name, and
/// compares a candidate run against the baseline(s) under a noise
/// threshold. With several baseline documents (methodology-style
/// repeats) the per-metric threshold widens to twice the repeats' max
/// relative deviation — the paper's own "<10% deviation" bound is the
/// floor. Pure data-in/data-out so tests can drive it without files.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OBS_PERFDIFF_H
#define WARPC_OBS_PERFDIFF_H

#include "support/Json.h"

#include <string>
#include <string_view>
#include <vector>

namespace warpc {
namespace obs {

/// One numeric metric extracted from a JSON document.
struct PerfMetric {
  std::string Path;
  double Value = 0;
};

/// Which way "better" points for a metric.
enum class PerfDirection : int {
  HigherIsBetter = 1,
  Informational = 0,
  LowerIsBetter = -1,
};

/// Direction by metric name: time/overhead/wait metrics are
/// lower-is-better, speedup/hit-rate metrics are higher-is-better,
/// everything else (counts, sizes, ids) is informational — compared and
/// reported but never gated.
PerfDirection metricDirection(std::string_view Path);

/// Flattens a document into dotted numeric paths. Objects nest with '.';
/// arrays of objects (BENCH rows) label each element by its identifying
/// members (string values plus "functions"/"workers"/"processors");
/// arrays of scalars (histogram buckets, series samples) are skipped.
std::vector<PerfMetric> flattenMetrics(const json::Value &Doc);

/// How one metric moved between baseline and candidate.
struct PerfDelta {
  std::string Path;
  double Baseline = 0;
  double Candidate = 0;
  double DeltaPct = 0; ///< 100 * (candidate - baseline) / |baseline|.
  double ThresholdPct = 0;
  PerfDirection Direction = PerfDirection::Informational;
  bool Regression = false;
  bool Improvement = false;
};

struct PerfDiffOptions {
  /// Noise floor: moves within this percentage never gate. The default
  /// mirrors the paper's "<10% deviation across repeats" methodology.
  double DefaultThresholdPct = 10.0;
  /// Absolute moves smaller than this are float dust, never gated.
  double MinAbsDelta = 1e-9;
};

struct PerfDiffResult {
  std::vector<PerfDelta> Deltas; ///< Every metric present on both sides.
  unsigned Regressions = 0;
  unsigned Improvements = 0;
  std::vector<std::string> MissingInCandidate;
  std::vector<std::string> OnlyInCandidate;
};

/// Diffs \p Candidate against the mean of \p Baselines. With two or more
/// baselines, each metric's threshold widens to
/// max(DefaultThresholdPct, 200 * maxRelativeDeviation) of the repeats.
PerfDiffResult diffPerf(const std::vector<json::Value> &Baselines,
                        const json::Value &Candidate,
                        const PerfDiffOptions &Opts = {});

/// Human-readable report; final line is always
/// "warp-perf: N regression(s), M improvement(s), K metric(s) compared".
/// \p ShowAll lists unchanged metrics too.
std::string renderPerfDiff(const PerfDiffResult &R, bool ShowAll = false);

} // namespace obs
} // namespace warpc

#endif // WARPC_OBS_PERFDIFF_H
