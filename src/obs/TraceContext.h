//===- TraceContext.h - Cross-process trace propagation ---------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Distributed tracing across the client → daemon → worker process chain.
///
/// Three pieces:
///
///  - TraceContext: the (TraceId, ParentSpanId) pair a dispatching process
///    attaches to WSV1 CompileRequest and WRP1 Init/Task frames so the
///    receiving process can record spans that belong to the caller's trace.
///
///  - SpanShard: a bounded, self-contained batch of spans recorded in a
///    remote process (its own pid, process label and function-name table,
///    shard-local parent links). Workers ship one shard per Result frame;
///    the daemon ships one per CompileResult. decodeSpanShard is fully
///    bounds-checked — a corrupt shard decodes to failure, never UB, and
///    the splicing side simply loses the remote detail.
///
///  - Clock alignment: the two processes run independent steady clocks
///    with different epochs. estimateClockOffset implements the NTP
///    symmetric-delay midpoint over a request/response pair (master sends
///    Init at T1, worker stamps receipt W1 and its Hello send W2, master
///    stamps Hello receipt T2): offset = ((T1 - W1) + (T2 - W2)) / 2,
///    which cancels the remote processing time between W1 and W2.
///    spliceShard applies the offset and clamps into the dispatch→result
///    flight window so the merged trace stays monotonic even when the
///    estimate is off by part of the RTT.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OBS_TRACECONTEXT_H
#define WARPC_OBS_TRACECONTEXT_H

#include "obs/Event.h"
#include "obs/TraceRecorder.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warpc {
namespace obs {

/// The propagation pair a parent process sends with a dispatch: which
/// trace the remote spans belong to and which local span caused them.
/// TraceId == 0 means "caller is not tracing" — the remote side records
/// nothing and ships no shard.
struct TraceContext {
  uint64_t TraceId = 0;
  uint64_t ParentSpanId = 0;

  bool tracing() const { return TraceId != 0; }
};

/// One span or instant inside a shard. Ids are shard-local: LocalParent
/// names another record's LocalId, or 0 for a shard root (spliceShard
/// re-parents roots under the master-side dispatch span).
struct ShardSpan {
  double TSec = 0;    ///< In the recording process's clock.
  double DurSec = -1; ///< Negative for instants.
  double CpuSec = 0;
  uint64_t LocalId = 0;
  uint64_t LocalParent = 0;
  uint64_t Bytes = 0;
  /// OS process the span was originally recorded in; 0 means the shard's
  /// own process. Nonzero when a shard re-ships spans it itself spliced
  /// from a third process (daemon forwarding worker spans to the client).
  uint64_t Pid = 0;
  int32_t Section = -1;
  int32_t Function = -1; ///< Into the shard's own name table.
  int32_t Attempt = 0;
  EventKind Kind = EventKind::RunComplete;
  Phase Ph = Phase::Setup;
  FaultCause Cause = FaultCause::None;
  bool Speculative = false;
};

/// A batch of remote spans plus everything needed to splice them into
/// another process's trace: the trace they belong to, the pid and label
/// of the recording process, and a private function-name table.
struct SpanShard {
  uint64_t TraceId = 0;
  uint64_t Pid = 0;
  std::string ProcessName;
  /// Labels for third processes whose spans ride inside this shard (the
  /// per-span Pid field above names them); the shard's own pid is never
  /// listed here.
  std::vector<std::pair<uint64_t, std::string>> ProcessNames;
  std::vector<std::string> FunctionNames;
  std::vector<ShardSpan> Spans;
};

/// Hard bounds on what encodeSpanShard will emit and decodeSpanShard will
/// accept. A worker compiling one function records a handful of spans;
/// the caps exist so a buggy or hostile peer cannot balloon the master's
/// trace or allocate unbounded memory during decode.
constexpr size_t MaxShardSpans = 1024;
constexpr size_t MaxShardNames = 1024;
constexpr size_t MaxShardProcs = 64;

/// Serializes \p Shard (truncating to the bounds above, deterministically
/// keeping the earliest records) and returns the bytes.
std::vector<uint8_t> encodeSpanShard(const SpanShard &Shard);

/// Decodes bytes produced by encodeSpanShard. Returns false on any
/// truncation, trailing garbage, out-of-range enum or id — the shard is
/// then untouched garbage and must be dropped, not spliced.
bool decodeSpanShard(const std::vector<uint8_t> &Bytes, SpanShard &Out);

/// The result of one timestamp-echo exchange. OffsetSec is what to ADD to
/// a remote timestamp to express it on the local clock; RttSec is the
/// network round trip excluding remote processing.
struct ClockSync {
  double OffsetSec = 0;
  double RttSec = 0;
  bool Valid = false;
};

/// NTP symmetric-delay midpoint over one request/response pair. All four
/// stamps are seconds on their own process's steady clock:
/// \p LocalSendSec / \p LocalRecvSec on the local clock, \p RemoteRecvSec
/// / \p RemoteSendSec on the remote clock. Returns Valid=false when the
/// stamps are not causally ordered (a worker predating the protocol sends
/// zeros — the caller then splices with offset 0 and relies on clamping).
ClockSync estimateClockOffset(double LocalSendSec, double RemoteRecvSec,
                              double RemoteSendSec, double LocalRecvSec);

/// How spliceShard maps remote spans into the local trace.
struct SpliceOptions {
  /// Local span id the shard's roots are parented under (the dispatch
  /// span that caused the remote work). 0 leaves roots unparented.
  uint64_t ParentSpanId = 0;
  /// Remote→local clock offset (ClockSync::OffsetSec), added to every
  /// remote timestamp.
  double OffsetSec = 0;
  /// Flight window on the local clock: dispatch send time → result
  /// receive time. Spliced events are clamped inside it so the merged
  /// trace is monotonic regardless of offset error. Leave WindowEndSec
  /// below WindowStartSec to disable clamping.
  double WindowStartSec = 0;
  double WindowEndSec = -1;
  /// Host lane id stamped on the spliced events (-1 keeps the shard's
  /// events unattributed).
  int32_t Host = -1;
};

/// Replays \p Shard into \p L, re-interning function names through \p R,
/// remapping shard-local parent links onto the freshly assigned local
/// span ids and stamping every event with the shard's Pid. Returns the
/// number of events spliced. Must be called from a thread that may use
/// R.internFunction (single-threaded splice point).
size_t spliceShard(const SpanShard &Shard, TraceRecorder &R,
                   TraceRecorder::Lane &L, const SpliceOptions &Opts);

/// Builds a shard from a finished per-request TraceSession, shifting
/// every timestamp by \p ShiftSec (used to move a request-scoped
/// recorder's epoch onto the process-wide one before shipping).
SpanShard shardFromSession(const TraceSession &S, uint64_t Pid,
                           const std::string &ProcessName,
                           double ShiftSec = 0);

} // namespace obs
} // namespace warpc

#endif // WARPC_OBS_TRACECONTEXT_H
