//===- TraceRecorder.h - Trace event recording ------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records typed SpanEvents/CounterEvents from either execution engine.
///
/// The cluster simulator is single-threaded and passes simulated
/// timestamps; it writes through lane 0. The thread engine creates one
/// lane per worker thread up front (lanes are append-only and never
/// reallocate while workers run), stamps events with steady-clock seconds
/// since the run started, and the lanes are merged at finish().
///
/// Every event gets a process-wide monotonically increasing sequence
/// number at emission. finish() sorts the merged stream by
/// (TSec, Seq) — a *stable* total order, so two runs of the deterministic
/// simulator serialize byte-identically even when many events share a
/// timestamp.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OBS_TRACERECORDER_H
#define WARPC_OBS_TRACERECORDER_H

#include "obs/Event.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <string_view>
#include <vector>

namespace warpc {
namespace obs {

class TraceRecorder {
public:
  /// One append-only event buffer. The simulator uses lane 0; the thread
  /// engine gives each worker its own lane so recording never contends.
  /// Events live in a deque so the references instant()/span() hand out
  /// stay valid across later appends (callers routinely hold the parent
  /// span while emitting its child instant).
  class Lane {
  public:
    /// Appends an instant event and returns it for field assignment.
    SpanEvent &instant(double TSec, EventKind K, Phase Ph);

    /// Appends a completed span [TSec, TSec + DurSec].
    SpanEvent &span(double TSec, double DurSec, EventKind K, Phase Ph);

    /// Appends a counter sample.
    void counter(double TSec, int32_t CounterId, double Value);

  private:
    friend class TraceRecorder;
    explicit Lane(TraceRecorder &Parent) : Parent(Parent) {}
    TraceRecorder &Parent;
    std::deque<SpanEvent> Events;
    std::vector<CounterEvent> Counters;
  };

  explicit TraceRecorder(ClockDomain Domain);

  ClockDomain domain() const { return Domain; }

  /// Steady-clock seconds since the recorder was constructed. Only
  /// meaningful in the Steady domain.
  double nowSec() const;

  /// Interns \p Name, returning a stable id. Not thread-safe: intern all
  /// functions before workers start (both engines know the full task list
  /// up front).
  int32_t internFunction(std::string_view Name);
  int32_t internCounter(std::string_view Name);

  /// Declares the host/section topology recorded in the session.
  void setTopology(uint32_t NumHosts, uint32_t NumSections) {
    Session.NumHosts = NumHosts;
    Session.NumSections = NumSections;
  }

  /// Run-level aggregates carried into the serialized trace.
  void setRunTotals(double ParElapsedSec, double SeqElapsedSec,
                    uint32_t NumFunctions) {
    Session.ParElapsedSec = ParElapsedSec;
    Session.SeqElapsedSec = SeqElapsedSec;
    Session.NumFunctions = NumFunctions;
  }

  /// Overrides the session trace id. When unset, finish() derives one
  /// from the run's content so identical runs keep byte-identical traces.
  void setTraceId(uint64_t Id) { Session.TraceId = Id; }

  /// The session trace id as currently set (0 until setTraceId or
  /// finish()). A master propagating trace context to other processes
  /// must set a nonzero id up front so shards can name their trace.
  uint64_t traceId() const { return Session.TraceId; }

  /// Labels the session with the engine that recorded it ("sim",
  /// "thread", "process").
  void setEngine(std::string_view Engine) {
    Session.Engine = std::string(Engine);
  }

  /// Registers a display name for a foreign process whose spans are being
  /// spliced into this trace. Idempotent per pid; not thread-safe (same
  /// constraint as internFunction — call from the splice point only).
  void noteProcess(uint64_t Pid, std::string_view Name) {
    if (Pid == 0)
      return;
    for (const auto &[P, N] : Session.ProcessNames)
      if (P == Pid)
        return;
    Session.ProcessNames.emplace_back(Pid, std::string(Name));
  }

  /// Creates \p Count lanes (discarding none already made). Call before
  /// any worker thread runs; lane(i) is then safe to use concurrently
  /// with lane(j) for i != j.
  void makeLanes(unsigned Count);
  Lane &lane(unsigned Index) { return *Lanes[Index]; }
  unsigned numLanes() const { return static_cast<unsigned>(Lanes.size()); }

  /// Merges all lanes into the session, sorted by (TSec, Seq), and
  /// returns it. The recorder is empty afterwards. Must be called after
  /// all workers have joined.
  TraceSession finish();

private:
  ClockDomain Domain;
  std::chrono::steady_clock::time_point Start;
  std::atomic<uint64_t> NextSeq{0};
  std::vector<std::unique_ptr<Lane>> Lanes;
  TraceSession Session;
};

} // namespace obs
} // namespace warpc

#endif // WARPC_OBS_TRACERECORDER_H
