//===- StatsReport.h - Shared run-statistics formatter ----------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every run statistic is recorded once and rendered twice — as an
/// aligned text line on stdout and as a key in the --stats-json document
/// — so the two outputs can never drift apart. Moved out of the warpc
/// tool so tests can pin the schema (see StatsSchemaVersion) and other
/// tools can reuse the table.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OBS_STATSREPORT_H
#define WARPC_OBS_STATSREPORT_H

#include "support/Json.h"

#include <string>
#include <vector>

namespace warpc {
namespace obs {

class MetricsRegistry;

/// Version tag written as the leading "schema" key of every --stats-json
/// document. Bump when the document's shape changes incompatibly.
/// v2: added schema/series blocks and histogram p50/p95/p99 keys.
inline constexpr const char *StatsSchemaVersion = "warpc-stats-v2";

class StatsReport {
public:
  void beginGroup(std::string Key, std::string Title, int Indent = 0);
  void add(std::string Key, std::string Label, std::string Text,
           json::Value V);

  bool empty() const { return Groups.empty(); }

  /// Renders every group as a "title:" heading with aligned value rows.
  std::string renderText() const;

  /// Nests each group's rows under the group's key, preserving insertion
  /// order — the JSON document's key order is the recording order.
  json::Value toJson() const;

private:
  struct Row {
    std::string Key, Label, Text;
    json::Value Json;
  };
  struct Group {
    std::string Key, Title;
    int Indent;
    std::vector<Row> Rows;
  };
  std::vector<Group> Groups;
};

/// Appends one "latency_quantiles" group with p50/p95/p99 rows for every
/// histogram recorded in \p M (no-op when there are none).
void appendHistogramQuantiles(StatsReport &Report, const MetricsRegistry &M);

} // namespace obs
} // namespace warpc

#endif // WARPC_OBS_STATSREPORT_H
