//===- TraceAnalysis.h - Critical-path trace analysis -----------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs a run from its trace: the critical path through the
/// master -> section master -> function master chain, per-host busy/idle
/// utilization, and the paper's Section 4.2.3 overhead decomposition
/// rebuilt from the spans' CPU attributions — provably the same numbers
/// as parallel::computeOverheads on the aggregate stats, which is what
/// makes the trace a trustworthy artifact.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OBS_TRACEANALYSIS_H
#define WARPC_OBS_TRACEANALYSIS_H

#include "obs/Event.h"
#include "obs/TimeSeries.h"

#include <string>
#include <utility>
#include <vector>

namespace warpc {
namespace obs {

/// Busy/idle accounting for one host (workstation or worker thread).
struct HostUtilization {
  int32_t Host = -1;
  double BusySec = 0; ///< Sum of span extents on this host's track.
  unsigned Spans = 0;
  double utilizationPct(double ElapsedSec) const {
    return ElapsedSec > 0 ? 100.0 * BusySec / ElapsedSec : 0;
  }
};

/// Which Section 4.2.3 bucket a critical-path step's time belongs to.
enum class PathCategory : uint8_t {
  Coordination, ///< Master/section-master CPU (implementation overhead).
  Startup,      ///< Lisp process startup (system overhead).
  Compute,      ///< Real compilation/assembly work.
  Milestone,    ///< Instants: message arrivals, completion marks.
};

PathCategory pathCategory(EventKind K);

/// The message hop that delivered a critical-path step, inferred from
/// the host transition against the previous step.
enum class PathHop : uint8_t {
  None,     ///< Same host as the previous step.
  Dispatch, ///< Master -> worker (fork/placement message).
  Result,   ///< Worker -> master (completion message).
};

/// One hop of the critical path, in time order.
struct CriticalPathStep {
  SpanEvent E;
  /// Dead time between the previous hop's end and this hop's start
  /// (queueing, network transfers, scheduling gaps).
  double WaitBeforeSec = 0;
  PathCategory Category = PathCategory::Milestone;
  PathHop Hop = PathHop::None;
};

/// Everything the analyzer derives from one trace.
struct TraceReport {
  double ParElapsedSec = 0;
  double SeqElapsedSec = 0;
  uint32_t NumFunctions = 0;

  // Implementation-overhead CPU rebuilt from the spans' cpu attributions.
  double MasterCpuSec = 0;
  double SectionCpuSec = 0;

  // The Section 4.2.3 decomposition (zeroed when the trace carries no
  // sequential baseline or has zero functions — same convention as
  // parallel::computeOverheads).
  double TotalOverheadSec = 0;
  double ImplOverheadSec = 0;
  double SysOverheadSec = 0;
  bool HasOverheads = false;

  double relTotalPct() const {
    return ParElapsedSec > 0 ? 100.0 * TotalOverheadSec / ParElapsedSec : 0;
  }
  double relSysPct() const {
    return ParElapsedSec > 0 ? 100.0 * SysOverheadSec / ParElapsedSec : 0;
  }

  std::vector<HostUtilization> Hosts; ///< Indexed by host id.
  std::vector<CriticalPathStep> CriticalPath; ///< Time order.
  /// Sum of WaitBeforeSec over the path: elapsed time nothing on the
  /// critical chain was computing.
  double CriticalPathWaitSec = 0;
  /// True when the path was reconstructed from the events' Parent links
  /// (the recorded message causality); false when the trace predates
  /// causal ids and the legacy kind-based heuristic was used.
  bool CausalPath = false;
  /// Message-level decomposition of the path: where its elapsed time
  /// went, by PathCategory. Coordination is CPU seconds (a subset of
  /// ImplOverheadSec); Startup/Compute are span extents; the remaining
  /// elapsed is CriticalPathWaitSec (message/queue latency, system
  /// overhead per Section 4.2.3).
  double PathCoordinationCpuSec = 0;
  double PathStartupSec = 0;
  double PathComputeSec = 0;

  // Fault-recovery tallies seen in the trace.
  unsigned TimeoutsFired = 0;
  unsigned Reassignments = 0;
  unsigned SpeculationsLaunched = 0;
  unsigned MasterRecompiles = 0;
  unsigned MessagesLost = 0;
  unsigned AttemptsLost = 0;
  unsigned ResultsRejected = 0;
  unsigned FunctionsCompleted = 0;
  /// Functions satisfied from the compilation cache (SpanCacheHit spans).
  /// Cached functions never emit FunctionDone, so this count and
  /// FunctionsCompleted partition the module's functions.
  unsigned CacheHits = 0;

  /// Final value of every "scheduler.*" counter track, in counter-id
  /// order (watchdog fires, reassignments, speculative launches).
  std::vector<std::pair<std::string, double>> SchedulerCounters;

  /// Anomalies re-detected from the trace's counter tracks with the
  /// default policy — the same detector the engines ran live.
  std::vector<Anomaly> Anomalies;
  /// AnomalyDetected instants the run itself emitted.
  unsigned AnomalyEvents = 0;
};

/// Analyzes \p S. Works on both freshly recorded sessions and sessions
/// parsed back from a trace-JSON file.
TraceReport analyzeTrace(const TraceSession &S);

/// Renders the report as the warp-traceview text output: the critical
/// path with waits, a per-host utilization bar chart, the overhead
/// decomposition, and the fault tallies.
std::string renderReport(const TraceSession &S, const TraceReport &R);

} // namespace obs
} // namespace warpc

#endif // WARPC_OBS_TRACEANALYSIS_H
