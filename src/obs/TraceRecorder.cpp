//===- TraceRecorder.cpp - Trace event recording -------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceRecorder.h"

#include <algorithm>
#include <cassert>

using namespace warpc;
using namespace warpc::obs;

SpanEvent &TraceRecorder::Lane::instant(double TSec, EventKind K, Phase Ph) {
  SpanEvent E;
  E.TSec = TSec;
  E.DurSec = -1;
  E.Kind = K;
  E.Ph = Ph;
  E.Seq = Parent.NextSeq.fetch_add(1, std::memory_order_relaxed);
  Events.push_back(E);
  return Events.back();
}

SpanEvent &TraceRecorder::Lane::span(double TSec, double DurSec, EventKind K,
                                     Phase Ph) {
  assert(DurSec >= 0 && "span duration must be nonnegative");
  SpanEvent &E = instant(TSec, K, Ph);
  E.DurSec = DurSec;
  return E;
}

void TraceRecorder::Lane::counter(double TSec, int32_t CounterId,
                                  double Value) {
  CounterEvent C;
  C.TSec = TSec;
  C.Value = Value;
  C.Counter = CounterId;
  C.Seq = Parent.NextSeq.fetch_add(1, std::memory_order_relaxed);
  Counters.push_back(C);
}

TraceRecorder::TraceRecorder(ClockDomain Domain)
    : Domain(Domain), Start(std::chrono::steady_clock::now()) {
  Session.Domain = Domain;
  makeLanes(1);
}

double TraceRecorder::nowSec() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

int32_t TraceRecorder::internFunction(std::string_view Name) {
  for (size_t I = 0; I != Session.FunctionNames.size(); ++I)
    if (Session.FunctionNames[I] == Name)
      return static_cast<int32_t>(I);
  Session.FunctionNames.emplace_back(Name);
  return static_cast<int32_t>(Session.FunctionNames.size() - 1);
}

int32_t TraceRecorder::internCounter(std::string_view Name) {
  for (size_t I = 0; I != Session.CounterNames.size(); ++I)
    if (Session.CounterNames[I] == Name)
      return static_cast<int32_t>(I);
  Session.CounterNames.emplace_back(Name);
  return static_cast<int32_t>(Session.CounterNames.size() - 1);
}

void TraceRecorder::makeLanes(unsigned Count) {
  while (Lanes.size() < Count)
    Lanes.push_back(std::unique_ptr<Lane>(new Lane(*this)));
}

TraceSession TraceRecorder::finish() {
  if (Session.TraceId == 0) {
    // FNV-1a over the interned tables and topology: content-derived, so
    // deterministic runs get deterministic ids (wall clock would break
    // the byte-identical-trace invariant the fault tests rely on).
    uint64_t H = 1469598103934665603ull;
    auto Mix = [&H](const char *Data, size_t N) {
      for (size_t I = 0; I != N; ++I) {
        H ^= static_cast<unsigned char>(Data[I]);
        H *= 1099511628211ull;
      }
    };
    for (const std::string &Name : Session.FunctionNames)
      Mix(Name.data(), Name.size() + 1);
    uint32_t Shape[3] = {Session.NumHosts, Session.NumSections,
                         Session.NumFunctions};
    Mix(reinterpret_cast<const char *>(Shape), sizeof(Shape));
    // Keep the id positive through a JSON int64 round trip.
    Session.TraceId = (H >> 1) | 1;
  }
  for (auto &L : Lanes) {
    Session.Events.insert(Session.Events.end(), L->Events.begin(),
                          L->Events.end());
    Session.Counters.insert(Session.Counters.end(), L->Counters.begin(),
                            L->Counters.end());
    L->Events.clear();
    L->Counters.clear();
  }
  std::sort(Session.Events.begin(), Session.Events.end(),
            [](const SpanEvent &A, const SpanEvent &B) {
              if (A.TSec != B.TSec)
                return A.TSec < B.TSec;
              return A.Seq < B.Seq;
            });
  std::sort(Session.Counters.begin(), Session.Counters.end(),
            [](const CounterEvent &A, const CounterEvent &B) {
              if (A.TSec != B.TSec)
                return A.TSec < B.TSec;
              return A.Seq < B.Seq;
            });
  TraceSession Out = std::move(Session);
  Session = TraceSession();
  Session.Domain = Domain;
  return Out;
}
