//===- TraceAnalysis.cpp - Critical-path trace analysis ------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceAnalysis.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <unordered_map>

using namespace warpc;
using namespace warpc::obs;

namespace {

/// (TSec, Seq) order — the deterministic total order of the stream.
bool before(const SpanEvent &A, const SpanEvent &B) {
  if (A.TSec != B.TSec)
    return A.TSec < B.TSec;
  return A.Seq < B.Seq;
}

/// Latest event of \p K satisfying \p Pred, by (TSec, Seq).
template <class Pred>
const SpanEvent *latest(const TraceSession &S, EventKind K, Pred P) {
  const SpanEvent *Best = nullptr;
  for (const SpanEvent &E : S.Events)
    if (E.Kind == K && P(E) && (!Best || before(*Best, E)))
      Best = &E;
  return Best;
}

const SpanEvent *latest(const TraceSession &S, EventKind K) {
  return latest(S, K, [](const SpanEvent &) { return true; });
}

bool isMasterCpuKind(EventKind K) {
  return K == EventKind::SpanMasterFork || K == EventKind::SpanParse ||
         K == EventKind::SpanSchedule || K == EventKind::SpanSectionFork;
}

bool isSectionCpuKind(EventKind K) {
  return K == EventKind::SpanFunctionFork ||
         K == EventKind::SpanDirectives || K == EventKind::SpanCombine ||
         K == EventKind::SpanCacheHit;
}

} // namespace

PathCategory obs::pathCategory(EventKind K) {
  if (isMasterCpuKind(K) || isSectionCpuKind(K))
    return PathCategory::Coordination;
  if (K == EventKind::SpanStartup)
    return PathCategory::Startup;
  if (K == EventKind::SpanCompile || K == EventKind::SpanAssembly ||
      K == EventKind::SpanMasterRecompile || K == EventKind::SpanAnalyze ||
      K == EventKind::SpanOptimize || K == EventKind::SpanCodegen)
    return PathCategory::Compute;
  return PathCategory::Milestone;
}

TraceReport obs::analyzeTrace(const TraceSession &S) {
  TraceReport R;
  R.ParElapsedSec = S.ParElapsedSec;
  R.SeqElapsedSec = S.SeqElapsedSec;
  R.NumFunctions = S.NumFunctions;

  // A session that never had run totals attached still has an elapsed
  // time: the last event's end.
  if (R.ParElapsedSec <= 0)
    for (const SpanEvent &E : S.Events)
      R.ParElapsedSec = std::max(R.ParElapsedSec, E.endSec());

  // --- Per-host utilization and the CPU / fault ledgers, in one pass.
  uint32_t NumHosts = S.NumHosts;
  for (const SpanEvent &E : S.Events)
    if (E.Host >= 0)
      NumHosts = std::max(NumHosts, static_cast<uint32_t>(E.Host) + 1);
  R.Hosts.resize(NumHosts);
  for (uint32_t H = 0; H != NumHosts; ++H)
    R.Hosts[H].Host = static_cast<int32_t>(H);

  for (const SpanEvent &E : S.Events) {
    if (E.isSpan() && E.Host >= 0) {
      HostUtilization &U = R.Hosts[static_cast<size_t>(E.Host)];
      U.BusySec += E.DurSec;
      ++U.Spans;
    }
    if (isMasterCpuKind(E.Kind))
      R.MasterCpuSec += E.CpuSec;
    else if (isSectionCpuKind(E.Kind))
      R.SectionCpuSec += E.CpuSec;
    switch (E.Kind) {
    case EventKind::TimeoutFired:
      ++R.TimeoutsFired;
      break;
    case EventKind::Reassigned:
      ++R.Reassignments;
      break;
    case EventKind::SpeculationLaunched:
      ++R.SpeculationsLaunched;
      break;
    case EventKind::SpanMasterRecompile:
      ++R.MasterRecompiles;
      break;
    case EventKind::MessageLost:
      ++R.MessagesLost;
      break;
    case EventKind::AttemptLost:
      ++R.AttemptsLost;
      break;
    case EventKind::ResultRejected:
      ++R.ResultsRejected;
      break;
    case EventKind::FunctionDone:
      ++R.FunctionsCompleted;
      break;
    case EventKind::SpanCacheHit:
      ++R.CacheHits;
      break;
    case EventKind::AnomalyDetected:
      ++R.AnomalyEvents;
      break;
    default:
      break;
    }
  }

  // --- Scheduler counter tracks: the last sample wins (the stream is in
  // (TSec, Seq) order, both freshly recorded and parsed back).
  {
    std::unordered_map<int32_t, double> Last;
    for (const CounterEvent &C : S.Counters) {
      if (C.Counter < 0 ||
          static_cast<size_t>(C.Counter) >= S.CounterNames.size())
        continue;
      if (S.CounterNames[static_cast<size_t>(C.Counter)].rfind(
              "scheduler.", 0) == 0)
        Last[C.Counter] = C.Value;
    }
    for (size_t I = 0; I != S.CounterNames.size(); ++I) {
      auto It = Last.find(static_cast<int32_t>(I));
      if (It != Last.end())
        R.SchedulerCounters.emplace_back(S.CounterNames[I], It->second);
    }
  }

  // --- Re-run the anomaly detector over the trace's counter tracks, so
  // a trace file is enough to reproduce what the live run flagged.
  R.Anomalies = detectAnomalies(sessionSeries(S));

  // --- Section 4.2.3 decomposition, exactly as computeOverheads does it:
  // total = par elapsed - seq elapsed / k; impl = coordination CPU;
  // sys = total - impl. Requires a sequential baseline and k > 0.
  if (S.NumFunctions > 0 && S.SeqElapsedSec > 0) {
    R.HasOverheads = true;
    R.TotalOverheadSec =
        R.ParElapsedSec - R.SeqElapsedSec / S.NumFunctions;
    R.ImplOverheadSec = R.MasterCpuSec + R.SectionCpuSec;
    R.SysOverheadSec = R.TotalOverheadSec - R.ImplOverheadSec;
  }

  // --- Critical path. Preferred: walk the recorded Parent links
  // backwards from RunComplete — the actual dispatch/result message
  // chain the engines threaded through every hop. Traces without causal
  // ids fall back to the legacy kind-based heuristic below.
  std::vector<const SpanEvent *> Path;
  auto Add = [&](const SpanEvent *E) {
    if (E)
      Path.push_back(E);
  };

  if (const SpanEvent *End = latest(S, EventKind::RunComplete);
      End && End->Parent != 0) {
    std::unordered_map<uint64_t, const SpanEvent *> ById;
    ById.reserve(S.Events.size());
    for (const SpanEvent &E : S.Events)
      ById.emplace(E.spanId(), &E);
    const SpanEvent *Cur = End;
    // The size bound breaks any Parent cycle a corrupt trace could hold.
    while (Cur && Path.size() <= S.Events.size()) {
      Path.push_back(Cur);
      if (Cur->Parent == 0)
        break;
      auto It = ById.find(Cur->Parent);
      Cur = It == ById.end() ? nullptr : It->second;
    }
    std::reverse(Path.begin(), Path.end());
    R.CausalPath = true;
  }

  const SpanEvent *SectionEnd = latest(S, EventKind::SectionDone);
  int32_t CritSection = SectionEnd ? SectionEnd->Section : -1;
  auto InCritSection = [&](const SpanEvent &E) {
    return CritSection < 0 || E.Section == CritSection;
  };

  const SpanEvent *Done =
      latest(S, EventKind::FunctionDone, InCritSection);
  int32_t CritFn = Done ? Done->Function : -1;
  int32_t CritAttempt = Done ? Done->Attempt : 0;
  auto IsCritAttempt = [&](const SpanEvent &E) {
    return E.Function == CritFn && E.Attempt == CritAttempt;
  };

  if (!R.CausalPath) {
    Add(latest(S, EventKind::SpanMasterFork));
    Add(latest(S, EventKind::SpanStartup,
               [](const SpanEvent &E) { return E.Function < 0; }));
    Add(latest(S, EventKind::SpanParse));
    Add(latest(S, EventKind::SpanSchedule));
    Add(latest(S, EventKind::SpanSectionFork, InCritSection));
    Add(latest(S, EventKind::SpanDirectives, InCritSection));
    if (CritFn >= 0) {
      // Attempt 0 on the winning FunctionDone marks a master-fallback
      // win; otherwise the winner was a distributed attempt and its own
      // fork/startup/compile spans are the chain.
      const SpanEvent *Recompile =
          CritAttempt == 0
              ? latest(S, EventKind::SpanMasterRecompile,
                       [&](const SpanEvent &E) {
                         return E.Function == CritFn;
                       })
              : nullptr;
      if (Recompile) {
        Add(Recompile);
      } else {
        Add(latest(S, EventKind::SpanFunctionFork, IsCritAttempt));
        Add(latest(S, EventKind::SpanStartup, IsCritAttempt));
        Add(latest(S, EventKind::SpanCompile, IsCritAttempt));
      }
    }
    Add(Done);
    Add(latest(S, EventKind::SpanCombine, InCritSection));
    Add(SectionEnd);
    Add(latest(S, EventKind::AllSectionsDone));
    Add(latest(S, EventKind::SpanAssembly));
    Add(latest(S, EventKind::ModuleLinked));
    Add(latest(S, EventKind::RunComplete));
  }

  std::sort(Path.begin(), Path.end(),
            [](const SpanEvent *A, const SpanEvent *B) {
              return before(*A, *B);
            });

  double PrevEnd = 0;
  int32_t PrevHost = -1;
  for (const SpanEvent *E : Path) {
    CriticalPathStep Step;
    Step.E = *E;
    Step.WaitBeforeSec = std::max(0.0, E->TSec - PrevEnd);
    Step.Category = pathCategory(E->Kind);
    if (PrevHost >= 0 && E->Host >= 0 && E->Host != PrevHost)
      Step.Hop = E->Host == 0 ? PathHop::Result : PathHop::Dispatch;
    switch (Step.Category) {
    case PathCategory::Coordination:
      R.PathCoordinationCpuSec += E->CpuSec;
      break;
    case PathCategory::Startup:
      R.PathStartupSec += std::max(0.0, E->DurSec);
      break;
    case PathCategory::Compute:
      R.PathComputeSec += std::max(0.0, E->DurSec);
      break;
    case PathCategory::Milestone:
      break;
    }
    R.CriticalPathWaitSec += Step.WaitBeforeSec;
    PrevEnd = std::max(PrevEnd, E->endSec());
    if (E->Host >= 0)
      PrevHost = E->Host;
    R.CriticalPath.push_back(Step);
  }
  return R;
}

std::string obs::renderReport(const TraceSession &S, const TraceReport &R) {
  std::string Out;
  auto Line = [&](const std::string &T) { Out += T + "\n"; };

  Line("=== warp-traceview ===");
  // Steady-domain traces carry an engine label from the recorder (thread
  // vs process); older documents without one default to the thread
  // engine, which is what every pre-label trace actually was.
  Line("clock domain: " +
       std::string(S.Domain == ClockDomain::Simulated
                       ? "simulated 1989 cluster"
                       : !S.Engine.empty()
                             ? "steady (" + S.Engine + " engine)"
                             : "steady (thread engine)") +
       "; hosts: " + std::to_string(R.Hosts.size()) +
       "; sections: " + std::to_string(S.NumSections) +
       "; functions: " + std::to_string(R.NumFunctions));
  Line("events: " + std::to_string(S.Events.size()) + " (" +
       std::to_string(S.Counters.size()) + " counter sample(s))");
  std::string Elapsed =
      "parallel elapsed: " + formatDouble(R.ParElapsedSec, 1) + " s";
  if (R.SeqElapsedSec > 0)
    Elapsed +=
        "; sequential baseline: " + formatDouble(R.SeqElapsedSec, 1) + " s";
  Line(Elapsed);

  Line("");
  Line(std::string("-- critical path --") +
       (R.CausalPath ? " (causal message chain)" : " (heuristic)"));
  for (const CriticalPathStep &Step : R.CriticalPath) {
    const SpanEvent &E = Step.E;
    std::string Row = "  " + padLeft(formatDouble(E.TSec, 1), 9) + "s  ";
    Row += E.isSpan() ? padLeft(formatDouble(E.DurSec, 1), 8) + "s  "
                      : padLeft("-", 9) + "  ";
    const char *Cat = Step.Category == PathCategory::Coordination ? "coord"
                      : Step.Category == PathCategory::Startup    ? "start"
                      : Step.Category == PathCategory::Compute    ? "comp "
                                                                  : "mark ";
    Row += std::string("[") + Cat + "] ";
    std::string Name = kindName(E.Kind);
    if (Name.rfind("span_", 0) == 0)
      Name = Name.substr(5);
    if (E.Host >= 0)
      Name += " @ws" + std::to_string(E.Host);
    if (E.Function >= 0)
      Name += " '" + S.functionName(E.Function) + "'";
    else if (E.Section >= 0)
      Name += " section " + std::to_string(E.Section);
    if (E.Attempt > 1)
      Name += " (attempt " + std::to_string(E.Attempt) + ")";
    Row += padRight(Name, 44);
    if (Step.WaitBeforeSec > 0) {
      Row += "  wait " + formatDouble(Step.WaitBeforeSec, 1) + "s";
      if (Step.Hop == PathHop::Dispatch)
        Row += " (dispatch hop)";
      else if (Step.Hop == PathHop::Result)
        Row += " (result hop)";
    } else if (Step.Hop == PathHop::Dispatch) {
      Row += "  (dispatch hop)";
    } else if (Step.Hop == PathHop::Result) {
      Row += "  (result hop)";
    }
    Line(Row);
  }
  Line("  critical-path wait total: " +
       formatDouble(R.CriticalPathWaitSec, 1) + " s");
  Line("  path decomposition: compute " +
       formatDouble(R.PathComputeSec, 1) + " s, startup " +
       formatDouble(R.PathStartupSec, 1) + " s, coordination cpu " +
       formatDouble(R.PathCoordinationCpuSec, 1) +
       " s, message/queue wait " + formatDouble(R.CriticalPathWaitSec, 1) +
       " s");

  Line("");
  Line("-- per-host utilization --");
  for (const HostUtilization &U : R.Hosts) {
    double Pct = U.utilizationPct(R.ParElapsedSec);
    unsigned Filled =
        static_cast<unsigned>(std::min(100.0, std::max(0.0, Pct)) / 5.0);
    std::string Bar(Filled, '#');
    Bar.resize(20, '.');
    Line("  " + padRight("ws" + std::to_string(U.Host), 5) + "[" + Bar +
         "] " + padLeft(formatDouble(Pct, 1), 5) + "%  busy " +
         formatDouble(U.BusySec, 0) + " s in " + std::to_string(U.Spans) +
         " span(s)");
  }

  if (R.HasOverheads) {
    Line("");
    Line("-- overhead decomposition (Section 4.2.3) --");
    Line("  total overhead:          " +
         padLeft(formatDouble(R.TotalOverheadSec, 1), 10) + " s  (" +
         formatDouble(R.relTotalPct(), 1) + "% of parallel elapsed)");
    Line("  implementation overhead: " +
         padLeft(formatDouble(R.ImplOverheadSec, 1), 10) + " s  (master " +
         formatDouble(R.MasterCpuSec, 1) + " s, section masters " +
         formatDouble(R.SectionCpuSec, 1) + " s)");
    Line("  system overhead:         " +
         padLeft(formatDouble(R.SysOverheadSec, 1), 10) + " s  (" +
         formatDouble(R.relSysPct(), 1) + "%)");
  }

  bool SchedulerActivity = false;
  for (const auto &[Name, Value] : R.SchedulerCounters)
    SchedulerActivity = SchedulerActivity || Value != 0;
  if (R.TimeoutsFired || R.Reassignments || R.SpeculationsLaunched ||
      R.MasterRecompiles || R.MessagesLost || R.AttemptsLost ||
      R.ResultsRejected || SchedulerActivity) {
    Line("");
    Line("-- fault recovery --");
    Line("  timeouts fired:     " + std::to_string(R.TimeoutsFired));
    Line("  reassignments:      " + std::to_string(R.Reassignments));
    Line("  speculations:       " + std::to_string(R.SpeculationsLaunched));
    Line("  master recompiles:  " + std::to_string(R.MasterRecompiles));
    Line("  messages lost:      " + std::to_string(R.MessagesLost));
    Line("  attempts lost:      " + std::to_string(R.AttemptsLost));
    Line("  results rejected:   " + std::to_string(R.ResultsRejected));
    for (const auto &[Name, Value] : R.SchedulerCounters)
      Line("  " + padRight(Name + ":", 20) + formatDouble(Value, 0));
  }

  if (!R.Anomalies.empty() || R.AnomalyEvents) {
    Line("");
    Line("-- telemetry anomalies --");
    for (const Anomaly &A : R.Anomalies) {
      std::string Row = "  " + A.Reason + ": " + A.Series + " = " +
                        formatDouble(A.Value, 2) + " at " +
                        formatDouble(A.TSec, 1) + "s (mean " +
                        formatDouble(A.Mean, 2) + ")";
      Line(Row);
    }
    if (R.AnomalyEvents)
      Line("  " + std::to_string(R.AnomalyEvents) +
           " anomaly event(s) flagged by the run");
  }

  if (R.CacheHits) {
    Line("");
    Line("-- compilation cache --");
    Line("  cache hits:         " + std::to_string(R.CacheHits) + " of " +
         std::to_string(R.NumFunctions) + " function(s)");
  }
  return Out;
}
