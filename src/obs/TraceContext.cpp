//===- TraceContext.cpp - Cross-process trace propagation --------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/TraceContext.h"

#include "support/BinaryStream.h"

#include <algorithm>
#include <unordered_map>

using namespace warpc;
using namespace warpc::obs;

namespace {

/// Shard wire format version. Bumped only for incompatible layout
/// changes; an unknown version decodes to failure and the splicing side
/// simply loses the remote detail.
constexpr uint8_t ShardVersion = 1;

constexpr uint8_t MaxKind = static_cast<uint8_t>(EventKind::RequestAdmitted);
constexpr uint8_t MaxPhase = static_cast<uint8_t>(Phase::Analyze);
constexpr uint8_t MaxCause = static_cast<uint8_t>(FaultCause::Superseded);

} // namespace

std::vector<uint8_t> obs::encodeSpanShard(const SpanShard &Shard) {
  const size_t NumNames = std::min(Shard.FunctionNames.size(), MaxShardNames);
  const size_t NumSpans = std::min(Shard.Spans.size(), MaxShardSpans);
  const size_t NumProcs = std::min(Shard.ProcessNames.size(), MaxShardProcs);

  BinaryWriter W;
  W.u8(ShardVersion);
  W.u64(Shard.TraceId);
  W.u64(Shard.Pid);
  W.str(Shard.ProcessName);
  W.u32(static_cast<uint32_t>(NumProcs));
  for (size_t I = 0; I != NumProcs; ++I) {
    W.u64(Shard.ProcessNames[I].first);
    W.str(Shard.ProcessNames[I].second);
  }
  W.u32(static_cast<uint32_t>(NumNames));
  for (size_t I = 0; I != NumNames; ++I)
    W.str(Shard.FunctionNames[I]);
  W.u32(static_cast<uint32_t>(NumSpans));
  for (size_t I = 0; I != NumSpans; ++I) {
    const ShardSpan &S = Shard.Spans[I];
    W.f64(S.TSec);
    W.f64(S.DurSec);
    W.f64(S.CpuSec);
    W.u64(S.LocalId);
    W.u64(S.LocalParent);
    W.u64(S.Bytes);
    W.u64(S.Pid);
    W.u32(static_cast<uint32_t>(S.Section));
    W.u32(static_cast<uint32_t>(S.Function));
    W.u32(static_cast<uint32_t>(S.Attempt));
    W.u8(static_cast<uint8_t>(S.Kind));
    W.u8(static_cast<uint8_t>(S.Ph));
    W.u8(static_cast<uint8_t>(S.Cause));
    W.u8(S.Speculative ? 1 : 0);
  }
  return W.take();
}

bool obs::decodeSpanShard(const std::vector<uint8_t> &Bytes, SpanShard &Out) {
  BinaryReader R(Bytes);
  if (R.u8() != ShardVersion)
    return false;
  SpanShard S;
  S.TraceId = R.u64();
  S.Pid = R.u64();
  S.ProcessName = R.str();
  const uint32_t NumProcs = R.u32();
  if (!R.ok() || NumProcs > MaxShardProcs)
    return false;
  S.ProcessNames.reserve(NumProcs);
  for (uint32_t I = 0; I != NumProcs; ++I) {
    const uint64_t Pid = R.u64();
    S.ProcessNames.emplace_back(Pid, R.str());
  }
  const uint32_t NumNames = R.u32();
  if (!R.ok() || NumNames > MaxShardNames)
    return false;
  S.FunctionNames.reserve(NumNames);
  for (uint32_t I = 0; I != NumNames; ++I)
    S.FunctionNames.push_back(R.str());
  const uint32_t NumSpans = R.u32();
  if (!R.ok() || NumSpans > MaxShardSpans)
    return false;
  S.Spans.reserve(NumSpans);
  for (uint32_t I = 0; I != NumSpans; ++I) {
    ShardSpan E;
    E.TSec = R.f64();
    E.DurSec = R.f64();
    E.CpuSec = R.f64();
    E.LocalId = R.u64();
    E.LocalParent = R.u64();
    E.Bytes = R.u64();
    E.Pid = R.u64();
    E.Section = static_cast<int32_t>(R.u32());
    E.Function = static_cast<int32_t>(R.u32());
    E.Attempt = static_cast<int32_t>(R.u32());
    const uint8_t Kind = R.u8();
    const uint8_t Ph = R.u8();
    const uint8_t Cause = R.u8();
    const uint8_t Spec = R.u8();
    if (!R.ok() || Kind > MaxKind || Ph > MaxPhase || Cause > MaxCause ||
        Spec > 1)
      return false;
    E.Kind = static_cast<EventKind>(Kind);
    E.Ph = static_cast<Phase>(Ph);
    E.Cause = static_cast<FaultCause>(Cause);
    E.Speculative = Spec != 0;
    if (E.Function >= 0 && static_cast<uint32_t>(E.Function) >= NumNames)
      return false;
    // A span record must carry a nonzero local id for parent links to
    // resolve; instants may leave it zero.
    if (E.DurSec >= 0 && E.LocalId == 0)
      return false;
    S.Spans.push_back(E);
  }
  if (!R.atEnd())
    return false;
  Out = std::move(S);
  return true;
}

ClockSync obs::estimateClockOffset(double LocalSendSec, double RemoteRecvSec,
                                   double RemoteSendSec, double LocalRecvSec) {
  ClockSync Sync;
  // A peer predating the timestamp echo sends zeros; a causally
  // disordered pair means a stamp was garbage. Either way the estimate
  // is unusable and the caller falls back to offset 0 + window clamping.
  if (RemoteRecvSec <= 0 && RemoteSendSec <= 0)
    return Sync;
  if (LocalRecvSec < LocalSendSec || RemoteSendSec < RemoteRecvSec)
    return Sync;
  Sync.OffsetSec = ((LocalSendSec - RemoteRecvSec) +
                    (LocalRecvSec - RemoteSendSec)) /
                   2.0;
  Sync.RttSec =
      (LocalRecvSec - LocalSendSec) - (RemoteSendSec - RemoteRecvSec);
  Sync.Valid = Sync.RttSec >= 0;
  return Sync;
}

size_t obs::spliceShard(const SpanShard &Shard, TraceRecorder &R,
                        TraceRecorder::Lane &L, const SpliceOptions &Opts) {
  const bool Clamp = Opts.WindowEndSec >= Opts.WindowStartSec;
  R.noteProcess(Shard.Pid, Shard.ProcessName);
  for (const auto &[Pid, Name] : Shard.ProcessNames)
    R.noteProcess(Pid, Name);

  // Remote function ids → local interned ids.
  std::vector<int32_t> NameMap;
  NameMap.reserve(Shard.FunctionNames.size());
  for (const std::string &Name : Shard.FunctionNames)
    NameMap.push_back(R.internFunction(Name));

  // Two passes: emit every event first (span ids are assigned at
  // emission), then resolve shard-local parent links — a shard may list
  // a child before its parent.
  std::unordered_map<uint64_t, uint64_t> IdMap;
  std::vector<std::pair<SpanEvent *, uint64_t>> Emitted;
  Emitted.reserve(Shard.Spans.size());
  for (const ShardSpan &S : Shard.Spans) {
    double T = S.TSec + Opts.OffsetSec;
    double Dur = S.DurSec;
    if (Clamp) {
      T = std::min(std::max(T, Opts.WindowStartSec), Opts.WindowEndSec);
      if (Dur >= 0)
        Dur = std::min(Dur, Opts.WindowEndSec - T);
    }
    SpanEvent &E = Dur >= 0 ? L.span(T, Dur, S.Kind, S.Ph)
                            : L.instant(T, S.Kind, S.Ph);
    E.CpuSec = S.CpuSec;
    E.Pid = S.Pid != 0 ? S.Pid : Shard.Pid;
    E.Bytes = S.Bytes;
    E.Host = Opts.Host;
    E.Section = S.Section;
    E.Function = S.Function >= 0 &&
                         static_cast<size_t>(S.Function) < NameMap.size()
                     ? NameMap[static_cast<size_t>(S.Function)]
                     : -1;
    E.Attempt = S.Attempt;
    E.Cause = S.Cause;
    E.Speculative = S.Speculative;
    if (S.LocalId != 0)
      IdMap[S.LocalId] = E.spanId();
    Emitted.push_back({&E, S.LocalParent});
  }
  for (auto &[E, LocalParent] : Emitted) {
    if (LocalParent != 0) {
      auto It = IdMap.find(LocalParent);
      E->Parent = It != IdMap.end() ? It->second : Opts.ParentSpanId;
    } else {
      E->Parent = Opts.ParentSpanId;
    }
  }
  return Emitted.size();
}

SpanShard obs::shardFromSession(const TraceSession &S, uint64_t Pid,
                                const std::string &ProcessName,
                                double ShiftSec) {
  SpanShard Shard;
  Shard.TraceId = S.TraceId;
  Shard.Pid = Pid;
  Shard.ProcessName = ProcessName;
  Shard.ProcessNames = S.ProcessNames;
  Shard.FunctionNames = S.FunctionNames;
  Shard.Spans.reserve(S.Events.size());
  for (const SpanEvent &E : S.Events) {
    ShardSpan Out;
    Out.TSec = E.TSec + ShiftSec;
    Out.DurSec = E.DurSec;
    Out.CpuSec = E.CpuSec;
    Out.LocalId = E.spanId();
    Out.LocalParent = E.Parent;
    Out.Bytes = E.Bytes;
    Out.Pid = E.Pid;
    Out.Section = E.Section;
    Out.Function = E.Function;
    Out.Attempt = E.Attempt;
    Out.Kind = E.Kind;
    Out.Ph = E.Ph;
    Out.Cause = E.Cause;
    Out.Speculative = E.Speculative;
    Shard.Spans.push_back(Out);
  }
  return Shard;
}
