//===- MetricsRegistry.h - Counters, gauges, histograms ---------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small metrics registry threaded through the compiler driver's four
/// phases and the fault-recovery paths of both parallel engines.
/// Counters accumulate, gauges hold the latest value, histograms bucket
/// observations into fixed log2 buckets (bucket i covers
/// [2^(i-32), 2^(i-31)); nonpositive values land in bucket 0), so a
/// distribution of compile times or code sizes serializes as 64 integers
/// regardless of sample count. All mutation is mutex-guarded: the thread
/// engine's function masters record concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OBS_METRICSREGISTRY_H
#define WARPC_OBS_METRICSREGISTRY_H

#include "support/Json.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace warpc {
namespace obs {

/// Fixed-bucket log2 histogram.
struct Histogram {
  static constexpr unsigned NumBuckets = 64;

  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;

  /// Bucket index for \p Value: 32 + floor(log2(Value)), clamped.
  static unsigned bucketFor(double Value);
  /// Inclusive lower bound of bucket \p Index (0 for the first bucket).
  static double bucketLowerBound(unsigned Index);

  void record(double Value);
  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }

  /// Estimated quantile (0 <= Q <= 1) by walking the cumulative bucket
  /// counts and interpolating linearly inside the target bucket, clamped
  /// to the observed [Min, Max] — the log2 buckets never let an estimate
  /// resolve beyond the true extremes. 0 when empty.
  double quantile(double Q) const;
};

/// Named counters, gauges, and histograms. Lookup interns the name on
/// first use; readers snapshot under the same lock as writers.
class MetricsRegistry {
public:
  void add(std::string_view Name, double Delta = 1.0);
  void setGauge(std::string_view Name, double Value);
  void observe(std::string_view Name, double Value);

  double counter(std::string_view Name) const;
  double gauge(std::string_view Name) const;
  /// Copy of the named histogram (zeroed if never observed).
  Histogram histogram(std::string_view Name) const;
  /// Names of all observed histograms, in first-observation order.
  std::vector<std::string> histogramNames() const;

  /// Serializes the registry:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///  {"count": n, "sum": s, "min": m, "max": M, "mean": u,
  ///   "p50": q, "p95": q, "p99": q,
  ///   "buckets": [[lowerBound, count], ...nonzero only]}}}
  json::Value toJson() const;

private:
  template <class T> struct Named {
    std::string Name;
    T Value{};
  };
  template <class T>
  static T *find(std::vector<Named<T>> &Vec, std::string_view Name);
  template <class T>
  static const T *find(const std::vector<Named<T>> &Vec,
                       std::string_view Name);
  template <class T>
  static T &findOrCreate(std::vector<Named<T>> &Vec, std::string_view Name);

  mutable std::mutex Mutex;
  std::vector<Named<double>> Counters;
  std::vector<Named<double>> Gauges;
  std::vector<Named<Histogram>> Histograms;
};

} // namespace obs
} // namespace warpc

#endif // WARPC_OBS_METRICSREGISTRY_H
