//===- TimeSeries.h - Sampled telemetry ring buffers ------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Periodically sampled gauges (ready-queue depth, in-flight compiles,
/// per-host busy fraction, cache hit rate) recorded as bounded time
/// series. The simulator samples on the simulated clock from a
/// self-rescheduling tick event; the thread engine runs a steady-clock
/// sampler thread. Either way the series end up as Perfetto counter
/// tracks in the trace, a "series" block in --stats-json, and input to
/// the straggler/spike anomaly detector.
///
/// A TimeSeries is a fixed-capacity ring with deterministic decimation:
/// when full it drops every other retained sample and doubles its minimum
/// keep-gap, so memory stays bounded while the whole run remains covered
/// at halved resolution. The same input always yields the same retained
/// samples — the determinism tests rely on it.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OBS_TIMESERIES_H
#define WARPC_OBS_TIMESERIES_H

#include "obs/Event.h"
#include "support/Json.h"

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace warpc {
namespace obs {

class TraceRecorder;

/// One retained sample of a gauge.
struct TimeSample {
  double TSec = 0;
  double Value = 0;
};

/// A bounded, monotonically timestamped series of gauge samples.
class TimeSeries {
public:
  explicit TimeSeries(std::string Name, size_t Capacity = 512);

  const std::string &name() const { return Name; }
  size_t capacity() const { return Capacity; }
  /// Samples closer than this to the last retained one are dropped; grows
  /// as the ring decimates.
  double minKeepGapSec() const { return MinGapSec; }

  /// Records one sample. Out-of-order (earlier than the last retained)
  /// samples are dropped; so are samples inside the current keep-gap.
  void sample(double TSec, double Value);

  const std::vector<TimeSample> &samples() const { return Samples; }
  bool empty() const { return Samples.empty(); }

private:
  std::string Name;
  size_t Capacity;
  double MinGapSec = 0;
  std::vector<TimeSample> Samples;
};

/// A set of named gauges sampled together. registerGauge wires a read
/// callback; sampleAll polls every gauge at one timestamp. The callbacks
/// must be safe to call from the sampling context (the simulator's event
/// loop, or the thread engine's sampler thread reading atomics).
class TimeSeriesSet {
public:
  explicit TimeSeriesSet(size_t CapacityPerSeries = 512);

  void registerGauge(std::string Name, std::function<double()> Read);

  /// Polls every registered gauge at \p TSec.
  void sampleAll(double TSec);

  size_t numSeries() const { return Entries.size(); }

  /// Copies of the retained series, in registration order.
  std::vector<TimeSeries> snapshot() const;

private:
  size_t Capacity;
  struct Entry {
    TimeSeries Series;
    std::function<double()> Read;
  };
  std::vector<Entry> Entries;
};

/// One telemetry anomaly: a sample far outside its series' distribution,
/// or a host whose busy fraction lags its peers (a straggler).
struct Anomaly {
  std::string Series;
  double TSec = 0;
  double Value = 0;
  double Mean = 0;
  double Stddev = 0;
  int32_t Host = -1; ///< Parsed from the series name when host-scoped.
  std::string Reason;
};

/// Detection thresholds. The defaults are deliberately loose: the gate
/// is meant to flag genuinely sick runs, not jittered ones.
struct AnomalyPolicy {
  double SigmaThreshold = 4.0; ///< Spike: |v - mean| > threshold * stddev.
  size_t MinSamples = 8;       ///< Series shorter than this are ignored.
  /// Straggler: a host's final busy fraction below this ratio of the
  /// mean of its peers (host series only, master excluded).
  double StragglerRatio = 0.5;
  /// Series named "<prefix>...<digits>" are treated as per-host gauges.
  std::string HostSeriesPrefix = "host.busy";
};

/// Flags spikes per series and stragglers across host-scoped series.
/// Deterministic: output order follows series order.
std::vector<Anomaly> detectAnomalies(const std::vector<TimeSeries> &Series,
                                     const AnomalyPolicy &Policy = {});

/// Rebuilds series from a recorded session's counter samples, one series
/// per counter name, in counter-id order. The inverse of
/// emitCounterTracks — lets the trace analyzer re-run anomaly detection
/// on a trace file without the live gauges.
std::vector<TimeSeries> sessionSeries(const TraceSession &S,
                                      size_t Capacity = 512);

/// Appends every sample as a CounterEvent on \p LaneIndex of \p Rec so
/// the series render as Perfetto counter tracks. Interns counter names;
/// call from the owning (master) context only, after workers joined.
void emitCounterTracks(TraceRecorder &Rec, unsigned LaneIndex,
                       const std::vector<TimeSeries> &Series);

/// {"name": {"last": v, "min": v, "max": v, "samples": [[t, v], ...]}}
/// with keys in series order — deterministic for deterministic runs.
json::Value seriesJson(const std::vector<TimeSeries> &Series);

} // namespace obs
} // namespace warpc

#endif // WARPC_OBS_TIMESERIES_H
