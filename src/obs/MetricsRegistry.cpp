//===- MetricsRegistry.cpp - Counters, gauges, histograms ----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsRegistry.h"

#include <cmath>

using namespace warpc;
using namespace warpc::obs;

unsigned Histogram::bucketFor(double Value) {
  if (!(Value > 0))
    return 0;
  int E = std::ilogb(Value); // floor(log2(Value)) for finite positives
  int Index = E + 32;
  if (Index < 0)
    Index = 0;
  if (Index >= static_cast<int>(NumBuckets))
    Index = NumBuckets - 1;
  return static_cast<unsigned>(Index);
}

double Histogram::bucketLowerBound(unsigned Index) {
  if (Index == 0)
    return 0;
  return std::ldexp(1.0, static_cast<int>(Index) - 32);
}

void Histogram::record(double Value) {
  ++Buckets[bucketFor(Value)];
  if (Count == 0 || Value < Min)
    Min = Value;
  if (Count == 0 || Value > Max)
    Max = Value;
  ++Count;
  Sum += Value;
}

template <class T>
T *MetricsRegistry::find(std::vector<Named<T>> &Vec, std::string_view Name) {
  for (auto &N : Vec)
    if (N.Name == Name)
      return &N.Value;
  return nullptr;
}

template <class T>
const T *MetricsRegistry::find(const std::vector<Named<T>> &Vec,
                               std::string_view Name) {
  for (const auto &N : Vec)
    if (N.Name == Name)
      return &N.Value;
  return nullptr;
}

template <class T>
T &MetricsRegistry::findOrCreate(std::vector<Named<T>> &Vec,
                                 std::string_view Name) {
  if (T *V = find(Vec, Name))
    return *V;
  Vec.push_back(Named<T>{std::string(Name), T{}});
  return Vec.back().Value;
}

void MetricsRegistry::add(std::string_view Name, double Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  findOrCreate(Counters, Name) += Delta;
}

void MetricsRegistry::setGauge(std::string_view Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  findOrCreate(Gauges, Name) = Value;
}

void MetricsRegistry::observe(std::string_view Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  findOrCreate(Histograms, Name).record(Value);
}

double MetricsRegistry::counter(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const double *V = find(Counters, Name);
  return V ? *V : 0;
}

double MetricsRegistry::gauge(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const double *V = find(Gauges, Name);
  return V ? *V : 0;
}

Histogram MetricsRegistry::histogram(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const Histogram *H = find(Histograms, Name);
  return H ? *H : Histogram{};
}

json::Value MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  json::Value Root = json::Value::object();

  json::Value CountersV = json::Value::object();
  for (const auto &N : Counters)
    CountersV.set(N.Name, json::Value(N.Value));
  Root.set("counters", std::move(CountersV));

  json::Value GaugesV = json::Value::object();
  for (const auto &N : Gauges)
    GaugesV.set(N.Name, json::Value(N.Value));
  Root.set("gauges", std::move(GaugesV));

  json::Value HistsV = json::Value::object();
  for (const auto &N : Histograms) {
    const Histogram &H = N.Value;
    json::Value HV = json::Value::object();
    HV.set("count", json::Value(H.Count));
    HV.set("sum", json::Value(H.Sum));
    HV.set("min", json::Value(H.Min));
    HV.set("max", json::Value(H.Max));
    HV.set("mean", json::Value(H.mean()));
    json::Value BucketsV = json::Value::array();
    for (unsigned I = 0; I != Histogram::NumBuckets; ++I) {
      if (H.Buckets[I] == 0)
        continue;
      json::Value Pair = json::Value::array();
      Pair.push(json::Value(Histogram::bucketLowerBound(I)));
      Pair.push(json::Value(H.Buckets[I]));
      BucketsV.push(std::move(Pair));
    }
    HV.set("buckets", std::move(BucketsV));
    HistsV.set(N.Name, std::move(HV));
  }
  Root.set("histograms", std::move(HistsV));
  return Root;
}
