//===- MetricsRegistry.cpp - Counters, gauges, histograms ----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/MetricsRegistry.h"

#include <algorithm>
#include <cmath>

using namespace warpc;
using namespace warpc::obs;

unsigned Histogram::bucketFor(double Value) {
  if (!(Value > 0))
    return 0;
  int E = std::ilogb(Value); // floor(log2(Value)) for finite positives
  int Index = E + 32;
  if (Index < 0)
    Index = 0;
  if (Index >= static_cast<int>(NumBuckets))
    Index = NumBuckets - 1;
  return static_cast<unsigned>(Index);
}

double Histogram::bucketLowerBound(unsigned Index) {
  if (Index == 0)
    return 0;
  return std::ldexp(1.0, static_cast<int>(Index) - 32);
}

double Histogram::quantile(double Q) const {
  if (Count == 0)
    return 0;
  if (Q <= 0)
    return Min;
  if (Q >= 1)
    return Max;
  double Target = Q * static_cast<double>(Count);
  uint64_t Cum = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    if (Buckets[I] == 0)
      continue;
    double Before = static_cast<double>(Cum);
    Cum += Buckets[I];
    if (static_cast<double>(Cum) < Target)
      continue;
    double Lo = bucketLowerBound(I);
    double Hi = I + 1 < NumBuckets ? bucketLowerBound(I + 1) : Max;
    double Frac = (Target - Before) / static_cast<double>(Buckets[I]);
    double V = Lo + (Hi - Lo) * Frac;
    return std::min(std::max(V, Min), Max);
  }
  return Max;
}

void Histogram::record(double Value) {
  ++Buckets[bucketFor(Value)];
  if (Count == 0 || Value < Min)
    Min = Value;
  if (Count == 0 || Value > Max)
    Max = Value;
  ++Count;
  Sum += Value;
}

template <class T>
T *MetricsRegistry::find(std::vector<Named<T>> &Vec, std::string_view Name) {
  for (auto &N : Vec)
    if (N.Name == Name)
      return &N.Value;
  return nullptr;
}

template <class T>
const T *MetricsRegistry::find(const std::vector<Named<T>> &Vec,
                               std::string_view Name) {
  for (const auto &N : Vec)
    if (N.Name == Name)
      return &N.Value;
  return nullptr;
}

template <class T>
T &MetricsRegistry::findOrCreate(std::vector<Named<T>> &Vec,
                                 std::string_view Name) {
  if (T *V = find(Vec, Name))
    return *V;
  Vec.push_back(Named<T>{std::string(Name), T{}});
  return Vec.back().Value;
}

void MetricsRegistry::add(std::string_view Name, double Delta) {
  std::lock_guard<std::mutex> Lock(Mutex);
  findOrCreate(Counters, Name) += Delta;
}

void MetricsRegistry::setGauge(std::string_view Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  findOrCreate(Gauges, Name) = Value;
}

void MetricsRegistry::observe(std::string_view Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  findOrCreate(Histograms, Name).record(Value);
}

double MetricsRegistry::counter(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const double *V = find(Counters, Name);
  return V ? *V : 0;
}

double MetricsRegistry::gauge(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const double *V = find(Gauges, Name);
  return V ? *V : 0;
}

Histogram MetricsRegistry::histogram(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const Histogram *H = find(Histograms, Name);
  return H ? *H : Histogram{};
}

std::vector<std::string> MetricsRegistry::histogramNames() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::string> Out;
  Out.reserve(Histograms.size());
  for (const auto &N : Histograms)
    Out.push_back(N.Name);
  return Out;
}

json::Value MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  json::Value Root = json::Value::object();

  json::Value CountersV = json::Value::object();
  for (const auto &N : Counters)
    CountersV.set(N.Name, json::Value(N.Value));
  Root.set("counters", std::move(CountersV));

  json::Value GaugesV = json::Value::object();
  for (const auto &N : Gauges)
    GaugesV.set(N.Name, json::Value(N.Value));
  Root.set("gauges", std::move(GaugesV));

  json::Value HistsV = json::Value::object();
  for (const auto &N : Histograms) {
    const Histogram &H = N.Value;
    json::Value HV = json::Value::object();
    HV.set("count", json::Value(H.Count));
    HV.set("sum", json::Value(H.Sum));
    HV.set("min", json::Value(H.Min));
    HV.set("max", json::Value(H.Max));
    HV.set("mean", json::Value(H.mean()));
    HV.set("p50", json::Value(H.quantile(0.50)));
    HV.set("p95", json::Value(H.quantile(0.95)));
    HV.set("p99", json::Value(H.quantile(0.99)));
    json::Value BucketsV = json::Value::array();
    for (unsigned I = 0; I != Histogram::NumBuckets; ++I) {
      if (H.Buckets[I] == 0)
        continue;
      json::Value Pair = json::Value::array();
      Pair.push(json::Value(Histogram::bucketLowerBound(I)));
      Pair.push(json::Value(H.Buckets[I]));
      BucketsV.push(std::move(Pair));
    }
    HV.set("buckets", std::move(BucketsV));
    HistsV.set(N.Name, std::move(HV));
  }
  Root.set("histograms", std::move(HistsV));
  return Root;
}
