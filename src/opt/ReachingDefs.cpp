//===- ReachingDefs.cpp - Reaching definitions of variables ---------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/ReachingDefs.h"

using namespace warpc;
using namespace warpc::opt;
using namespace warpc::ir;

ReachingDefsInfo ReachingDefsInfo::compute(const IRFunction &F) {
  ReachingDefsInfo Info;
  size_t NumBlocks = F.numBlocks();

  // Enumerate store sites.
  for (size_t B = 0; B != NumBlocks; ++B) {
    const BasicBlock *BB = F.block(static_cast<BlockId>(B));
    for (uint32_t Pos = 0; Pos != BB->Instrs.size(); ++Pos) {
      const Instr &I = BB->Instrs[Pos];
      if (!I.writesMemory())
        continue;
      Info.Sites.push_back(DefSite{static_cast<BlockId>(B), Pos, I.Var,
                                   I.Op == Opcode::StoreElem});
    }
  }
  size_t NumSites = Info.Sites.size();

  // Per-block Gen and Kill sets.
  std::vector<BitSet> Gen(NumBlocks, BitSet(NumSites));
  std::vector<BitSet> Kill(NumBlocks, BitSet(NumSites));
  for (uint32_t S = 0; S != NumSites; ++S) {
    const DefSite &Site = Info.Sites[S];
    size_t B = Site.Block;
    Gen[B].set(S);
    if (Site.IsElement)
      continue; // Element stores never kill.
    // A scalar store kills every other store of the same variable...
    for (uint32_t T = 0; T != NumSites; ++T)
      if (T != S && !Info.Sites[T].IsElement && Info.Sites[T].Var == Site.Var)
        Kill[B].set(T);
  }
  // ...including earlier stores in the same block: recompute Gen precisely
  // by a forward scan so only downward-exposed definitions survive.
  for (size_t B = 0; B != NumBlocks; ++B) {
    BitSet Exposed(NumSites);
    for (uint32_t S = 0; S != NumSites; ++S) {
      if (Info.Sites[S].Block != B)
        continue;
      if (!Info.Sites[S].IsElement) {
        // Clear earlier scalar defs of the same variable in this block.
        for (uint32_t T = 0; T != NumSites; ++T)
          if (Info.Sites[T].Block == B && T != S &&
              Info.Sites[T].Pos < Info.Sites[S].Pos &&
              !Info.Sites[T].IsElement &&
              Info.Sites[T].Var == Info.Sites[S].Var)
            Exposed.reset(T);
      }
      Exposed.set(S);
    }
    Gen[B] = Exposed;
  }

  Info.In.assign(NumBlocks, BitSet(NumSites));
  Info.Out.assign(NumBlocks, BitSet(NumSites));
  auto Preds = F.computePredecessors();

  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Info.Iterations;
    for (size_t B = 0; B != NumBlocks; ++B) {
      BitSet In(NumSites);
      for (BlockId P : Preds[B])
        In.unionWith(Info.Out[P]);
      BitSet Out = In;
      Out.subtract(Kill[B]);
      Out.unionWith(Gen[B]);
      if (!(In == Info.In[B]) || !(Out == Info.Out[B])) {
        Info.In[B] = std::move(In);
        Info.Out[B] = std::move(Out);
        Changed = true;
      }
    }
  }
  return Info;
}

std::vector<uint32_t> ReachingDefsInfo::defsReaching(BlockId B,
                                                     VarId Var) const {
  std::vector<uint32_t> Result;
  if (B >= In.size())
    return Result;
  for (uint32_t S = 0; S != Sites.size(); ++S)
    if (In[B].test(S) && Sites[S].Var == Var)
      Result.push_back(S);
  return Result;
}
