//===- ReachingDefs.h - Reaching definitions of variables -------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward bit-vector reaching definitions over memory stores (StoreVar,
/// StoreElem). The universe is the set of store instructions; a scalar
/// store kills all other stores of the same variable, while array element
/// stores accumulate (may-defs). Part of phase 2's "computation of global
/// dependencies".
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OPT_REACHINGDEFS_H
#define WARPC_OPT_REACHINGDEFS_H

#include "ir/IR.h"
#include "support/BitSet.h"

#include <cstdint>
#include <vector>

namespace warpc {
namespace opt {

/// Identifies one store instruction.
struct DefSite {
  ir::BlockId Block = 0;
  uint32_t Pos = 0;
  ir::VarId Var = 0;
  bool IsElement = false;
};

/// Reaching-definition sets over a function's stores.
struct ReachingDefsInfo {
  /// All store sites, in (block, position) order; bit i refers to Sites[i].
  std::vector<DefSite> Sites;
  std::vector<BitSet> In;
  std::vector<BitSet> Out;
  uint64_t Iterations = 0;

  static ReachingDefsInfo compute(const ir::IRFunction &F);

  /// Returns the indices of definitions of \p Var reaching block entry.
  std::vector<uint32_t> defsReaching(ir::BlockId B, ir::VarId Var) const;
};

} // namespace opt
} // namespace warpc

#endif // WARPC_OPT_REACHINGDEFS_H
