//===- LocalOpt.h - Local optimization pipeline -----------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The phase-2 optimization pipeline: constant folding, algebraic
/// simplification, local common-subexpression elimination (including
/// redundant loads), local copy propagation, liveness-based dead-code
/// elimination, and unreachable-block removal. The pipeline iterates to a
/// fixpoint; the iteration and transformation counts feed the compile-time
/// cost model.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OPT_LOCALOPT_H
#define WARPC_OPT_LOCALOPT_H

#include "ir/IR.h"

#include <cstdint>

namespace warpc {
namespace opt {

/// Counts of transformations applied by runLocalOpt.
struct OptStats {
  uint64_t ConstFolded = 0;
  uint64_t Simplified = 0;
  uint64_t CSEEliminated = 0;
  uint64_t CopiesPropagated = 0;
  uint64_t DeadRemoved = 0;
  uint64_t BlocksRemoved = 0;
  /// Pipeline sweeps until the fixpoint.
  uint64_t Iterations = 0;
  /// Instructions visited across all sweeps; the phase-2 work metric.
  uint64_t InstrsVisited = 0;

  uint64_t totalTransforms() const {
    return ConstFolded + Simplified + CSEEliminated + CopiesPropagated +
           DeadRemoved + BlocksRemoved;
  }

  OptStats &operator+=(const OptStats &O);
};

/// Runs the pipeline on \p F until no pass makes progress (bounded by a
/// fixed sweep limit). The function remains verifiable throughout.
OptStats runLocalOpt(ir::IRFunction &F);

/// Individual passes, exposed for unit tests and ablation benches. Each
/// returns the number of transformations applied and accumulates visited
/// instruction counts into \p Stats.
uint64_t foldConstants(ir::IRFunction &F, OptStats &Stats);
uint64_t propagateCopies(ir::IRFunction &F, OptStats &Stats);
uint64_t eliminateCommonSubexprs(ir::IRFunction &F, OptStats &Stats);
uint64_t eliminateDeadCode(ir::IRFunction &F, OptStats &Stats);
/// Removes stores to scalar locals that are never loaded anywhere in the
/// function (every W2 scalar is function-local, so such stores cannot be
/// observed).
uint64_t eliminateDeadStores(ir::IRFunction &F, OptStats &Stats);
uint64_t removeUnreachableBlocks(ir::IRFunction &F, OptStats &Stats);

} // namespace opt
} // namespace warpc

#endif // WARPC_OPT_LOCALOPT_H
