//===- LoopInfo.cpp - Dominators and natural loops ------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/LoopInfo.h"

#include "support/BitSet.h"

#include <algorithm>
#include <cassert>

using namespace warpc;
using namespace warpc::opt;
using namespace warpc::ir;

/// Computes the set of blocks reachable from entry.
static BitSet reachableBlocks(const IRFunction &F) {
  BitSet Reached(F.numBlocks());
  std::vector<BlockId> Work = {0};
  Reached.set(0);
  while (!Work.empty()) {
    BlockId B = Work.back();
    Work.pop_back();
    for (BlockId Succ : F.block(B)->successors())
      if (!Reached.test(Succ)) {
        Reached.set(Succ);
        Work.push_back(Succ);
      }
  }
  return Reached;
}

LoopInfo LoopInfo::compute(const IRFunction &F) {
  LoopInfo LI;
  size_t N = F.numBlocks();
  LI.DepthOf.assign(N, 0);
  if (N == 0)
    return LI;

  BitSet Reached = reachableBlocks(F);
  auto Preds = F.computePredecessors();

  // Iterative dominator computation with bit sets:
  // dom(entry) = {entry}; dom(B) = {B} | intersection of dom(preds).
  std::vector<BitSet> Dom(N, BitSet(N));
  BitSet All(N);
  for (size_t B = 0; B != N; ++B)
    All.set(B);
  for (size_t B = 0; B != N; ++B)
    Dom[B] = All;
  BitSet EntryDom(N);
  EntryDom.set(0);
  Dom[0] = EntryDom;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t B = 1; B != N; ++B) {
      if (!Reached.test(B))
        continue;
      BitSet NewDom = All;
      bool AnyPred = false;
      for (BlockId P : Preds[B]) {
        if (!Reached.test(P))
          continue;
        NewDom.intersectWith(Dom[P]);
        AnyPred = true;
      }
      if (!AnyPred)
        NewDom = BitSet(N);
      NewDom.set(B);
      if (!(NewDom == Dom[B])) {
        Dom[B] = NewDom;
        Changed = true;
      }
    }
  }

  LI.Dominators.resize(N);
  for (size_t B = 0; B != N; ++B)
    for (size_t D = 0; D != N; ++D)
      if (Reached.test(B) && Dom[B].test(D))
        LI.Dominators[B].push_back(static_cast<BlockId>(D));

  // Back edges: an edge L -> H where H dominates L.
  for (size_t L = 0; L != N; ++L) {
    if (!Reached.test(L))
      continue;
    for (BlockId H : F.block(static_cast<BlockId>(L))->successors()) {
      if (!Dom[L].test(H))
        continue;
      // Natural loop of the back edge: H plus all blocks that reach L
      // without passing through H.
      Loop NewLoop;
      NewLoop.Header = H;
      NewLoop.Latch = static_cast<BlockId>(L);
      BitSet InLoop(N);
      InLoop.set(H);
      std::vector<BlockId> Work;
      if (static_cast<BlockId>(L) != H) {
        InLoop.set(L);
        Work.push_back(static_cast<BlockId>(L));
      }
      while (!Work.empty()) {
        BlockId B = Work.back();
        Work.pop_back();
        for (BlockId P : Preds[B])
          if (Reached.test(P) && !InLoop.test(P)) {
            InLoop.set(P);
            Work.push_back(P);
          }
      }
      NewLoop.Blocks.push_back(H);
      for (size_t B = 0; B != N; ++B)
        if (B != H && InLoop.test(B))
          NewLoop.Blocks.push_back(static_cast<BlockId>(B));
      LI.Loops.push_back(std::move(NewLoop));
    }
  }

  // Depth: a block's depth is the number of loops containing it. A loop's
  // depth is the depth of its header.
  for (size_t B = 0; B != N; ++B) {
    uint32_t Depth = 0;
    for (const Loop &L : LI.Loops)
      if (L.contains(static_cast<BlockId>(B)))
        ++Depth;
    LI.DepthOf[B] = Depth;
  }
  for (Loop &L : LI.Loops)
    L.Depth = LI.DepthOf[L.Header];

  // Sort loops innermost-first so the scheduler pipelines inner loops.
  std::sort(LI.Loops.begin(), LI.Loops.end(),
            [](const Loop &A, const Loop &B) { return A.Depth > B.Depth; });
  return LI;
}

uint32_t LoopInfo::maxDepth() const {
  uint32_t Max = 0;
  for (uint32_t D : DepthOf)
    Max = std::max(Max, D);
  return Max;
}

bool LoopInfo::dominates(BlockId A, BlockId B) const {
  if (B >= Dominators.size())
    return false;
  for (BlockId D : Dominators[B])
    if (D == A)
      return true;
  return false;
}
