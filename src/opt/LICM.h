//===- LICM.h - Loop-invariant code motion ----------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-invariant code motion, an *optional* extra optimization in the
/// spirit of the paper's Section 5.1: "more sophisticated optimization
/// algorithms can be used that would make compilation on a uniprocessor
/// too slow" — the parallel compiler makes extra passes affordable. LICM
/// is not part of the default runLocalOpt pipeline (the calibrated 1989
/// cost model reflects the default pipeline); benches enable it
/// explicitly to study the compile-time/code-quality trade.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OPT_LICM_H
#define WARPC_OPT_LICM_H

#include "ir/IR.h"
#include "opt/LocalOpt.h"

#include <cstdint>

namespace warpc {
namespace opt {

/// Hoists loop-invariant, single-definition, non-faulting computations
/// (constants, copies, arithmetic except divide/remainder, conversions,
/// and loads of scalars that no store in the loop touches) into each
/// loop's preheader. Runs innermost loops first and iterates to a
/// fixpoint per loop. Returns the number of instructions moved;
/// \p Stats accumulates visit counts like the other passes.
uint64_t hoistLoopInvariants(ir::IRFunction &F, OptStats &Stats);

} // namespace opt
} // namespace warpc

#endif // WARPC_OPT_LICM_H
