//===- Dependence.cpp - Loop dependence analysis ---------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Dependence.h"

#include <map>
#include <optional>

using namespace warpc;
using namespace warpc::opt;
using namespace warpc::ir;

namespace {

/// An affine array subscript: IndReg + Offset, or unknown.
struct Subscript {
  bool Affine = false;
  int64_t Offset = 0;
};

/// Collects, for registers with exactly one definition in the whole
/// function, the constant they hold (if any). Multiply-defined registers
/// (like induction registers) are excluded.
std::map<Reg, int64_t> collectUniqueIntConsts(const IRFunction &F) {
  std::map<Reg, uint32_t> DefCount;
  std::map<Reg, int64_t> Consts;
  for (size_t B = 0; B != F.numBlocks(); ++B)
    for (const Instr &I : F.block(static_cast<BlockId>(B))->Instrs)
      if (I.definesReg())
        ++DefCount[I.Dst];
  for (size_t B = 0; B != F.numBlocks(); ++B)
    for (const Instr &I : F.block(static_cast<BlockId>(B))->Instrs)
      if (I.Op == Opcode::ConstInt && DefCount[I.Dst] == 1)
        Consts[I.Dst] = I.IntImm;
  return Consts;
}

} // namespace

LoopDeps opt::analyzeLoopDependences(const IRFunction &F, const Loop &L) {
  assert(L.isSimpleInnerLoop() && "dependence analysis needs a simple loop");
  LoopDeps Deps;
  const BasicBlock *Body = F.block(L.bodyBlock());
  // The body's terminator (back branch) is excluded.
  size_t NumOps = Body->Instrs.empty() ? 0 : Body->Instrs.size() - 1;
  Deps.InstrsAnalyzed = NumOps;

  std::map<Reg, int64_t> Consts = collectUniqueIntConsts(F);

  // Recognize the induction update "ind = add.i ind, step" as the last
  // non-branch instruction.
  uint32_t IndPos = 0;
  if (NumOps > 0) {
    const Instr &Last = Body->Instrs[NumOps - 1];
    if (Last.Op == Opcode::Add && Last.Ty == ValueType::Int &&
        Last.definesReg() && Last.Operands.size() == 2 &&
        Last.Operands[0] == Last.Dst) {
      auto StepIt = Consts.find(Last.Operands[1]);
      if (StepIt != Consts.end() && StepIt->second != 0) {
        Deps.InductionReg = Last.Dst;
        Deps.Step = StepIt->second;
        IndPos = static_cast<uint32_t>(NumOps - 1);
      }
    }
  }

  bool HasCall = false;
  for (size_t Pos = 0; Pos != NumOps; ++Pos)
    if (Body->Instrs[Pos].Op == Opcode::Call)
      HasCall = true;
  Deps.PipelineSafe = Deps.InductionReg != InvalidReg && !HasCall;

  auto AddEdge = [&](uint32_t From, uint32_t To, uint32_t Distance,
                     DepKind Kind) {
    // Skip degenerate same-instruction, same-iteration edges.
    if (From == To && Distance == 0)
      return;
    Deps.Edges.push_back(DepEdge{From, To, Distance, Kind});
  };

  //===--------------------------------------------------------------------===//
  // Register dependences
  //===--------------------------------------------------------------------===//

  // Last definition position of each register within the body.
  std::map<Reg, uint32_t> LastDef;
  for (uint32_t Pos = 0; Pos != NumOps; ++Pos) {
    const Instr &I = Body->Instrs[Pos];
    ++Deps.InstrsAnalyzed;
    for (Reg R : I.Operands) {
      // Find the closest def at or before this position (intra-iteration),
      // otherwise the body def reaches from the previous iteration.
      bool FoundIntra = false;
      for (uint32_t D = Pos; D-- > 0;) {
        const Instr &DefI = Body->Instrs[D];
        if (DefI.definesReg() && DefI.Dst == R) {
          AddEdge(D, Pos, 0, DepKind::Register);
          FoundIntra = true;
          break;
        }
      }
      if (FoundIntra)
        continue;
      for (uint32_t D = static_cast<uint32_t>(NumOps); D-- > Pos;) {
        const Instr &DefI = Body->Instrs[D];
        if (DefI.definesReg() && DefI.Dst == R) {
          AddEdge(D, Pos, 1, DepKind::Register);
          break;
        }
      }
    }
    // Anti/output dependences on registers: a redefinition must not
    // overtake earlier uses or defs of the same register in the same
    // iteration (distance 0) — the modulo scheduler relies on these to
    // keep multiply-defined registers (induction, accumulators) sane.
    if (I.definesReg()) {
      for (uint32_t P = 0; P != Pos; ++P) {
        const Instr &Prev = Body->Instrs[P];
        bool PrevUses = false;
        for (Reg R : Prev.Operands)
          PrevUses |= R == I.Dst;
        if (PrevUses)
          AddEdge(P, Pos, 0, DepKind::Register); // anti
        if (Prev.definesReg() && Prev.Dst == I.Dst)
          AddEdge(P, Pos, 0, DepKind::Register); // output
      }
    }
    (void)LastDef;
  }

  // The induction recurrence: ind update in iteration i feeds every use of
  // ind in iteration i+1 (handled by the generic scan above) and itself.
  if (Deps.InductionReg != InvalidReg)
    AddEdge(IndPos, IndPos, 1, DepKind::Register);

  //===--------------------------------------------------------------------===//
  // Memory dependences
  //===--------------------------------------------------------------------===//

  // Classify each memory access's subscript.
  auto ClassifySubscript = [&](Reg IndexReg) -> Subscript {
    if (Deps.InductionReg == InvalidReg)
      return {};
    if (IndexReg == Deps.InductionReg)
      return {true, 0};
    // Look for "idx = add/sub(ind, c)" defined in the body before use.
    for (uint32_t D = 0; D != NumOps; ++D) {
      const Instr &DefI = Body->Instrs[D];
      if (!DefI.definesReg() || DefI.Dst != IndexReg)
        continue;
      if (DefI.Op == Opcode::Add && DefI.Operands.size() == 2) {
        if (DefI.Operands[0] == Deps.InductionReg) {
          auto C = Consts.find(DefI.Operands[1]);
          if (C != Consts.end())
            return {true, C->second};
        }
        if (DefI.Operands[1] == Deps.InductionReg) {
          auto C = Consts.find(DefI.Operands[0]);
          if (C != Consts.end())
            return {true, C->second};
        }
      }
      if (DefI.Op == Opcode::Sub && DefI.Operands.size() == 2 &&
          DefI.Operands[0] == Deps.InductionReg) {
        auto C = Consts.find(DefI.Operands[1]);
        if (C != Consts.end())
          return {true, -C->second};
      }
      return {};
    }
    return {};
  };

  struct MemAccess {
    uint32_t Pos;
    VarId Var;
    bool IsWrite;
    bool IsElement;
    Subscript Sub;
  };
  std::vector<MemAccess> Accesses;
  for (uint32_t Pos = 0; Pos != NumOps; ++Pos) {
    const Instr &I = Body->Instrs[Pos];
    switch (I.Op) {
    case Opcode::LoadVar:
      Accesses.push_back({Pos, I.Var, false, false, {}});
      break;
    case Opcode::StoreVar:
      Accesses.push_back({Pos, I.Var, true, false, {}});
      break;
    case Opcode::LoadElem:
      Accesses.push_back({Pos, I.Var, false, true,
                          ClassifySubscript(I.Operands[0])});
      break;
    case Opcode::StoreElem:
      Accesses.push_back({Pos, I.Var, true, true,
                          ClassifySubscript(I.Operands[0])});
      break;
    default:
      break;
    }
  }

  for (size_t A = 0; A != Accesses.size(); ++A) {
    for (size_t B = 0; B != Accesses.size(); ++B) {
      if (A == B)
        continue;
      const MemAccess &X = Accesses[A];
      const MemAccess &Y = Accesses[B];
      if (X.Var != Y.Var)
        continue;
      if (!X.IsWrite && !Y.IsWrite)
        continue; // Loads never conflict.
      // Emit each unordered pair once per direction decision below; iterate
      // A over writers to cover flow/output, B over writers for anti.
      if (!X.IsWrite)
        continue; // Handle pairs from the writer's side only.

      if (X.IsElement && Y.IsElement && X.Sub.Affine && Y.Sub.Affine &&
          Deps.Step != 0) {
        // X writes step*i + oX; Y accesses step*i + oY.
        int64_t Delta = X.Sub.Offset - Y.Sub.Offset;
        if (Delta % Deps.Step != 0)
          continue; // Never the same location.
        int64_t Dist = Delta / Deps.Step;
        if (Dist == 0) {
          // Same iteration: order by position.
          if (X.Pos < Y.Pos)
            AddEdge(X.Pos, Y.Pos, 0, DepKind::Memory);
          else
            AddEdge(Y.Pos, X.Pos, 0, DepKind::Memory);
        } else if (Dist > 0) {
          // X in iteration i conflicts with Y in iteration i + Dist.
          AddEdge(X.Pos, Y.Pos, static_cast<uint32_t>(Dist),
                  DepKind::Memory);
        } else {
          // Y in iteration i conflicts with X in iteration i + |Dist|.
          AddEdge(Y.Pos, X.Pos, static_cast<uint32_t>(-Dist),
                  DepKind::Memory);
        }
        continue;
      }

      // Unanalyzable element subscripts: conservative ordering within the
      // iteration plus a distance-1 carried edge in both directions.
      if (X.IsElement || Y.IsElement) {
        if (X.Pos < Y.Pos)
          AddEdge(X.Pos, Y.Pos, 0, DepKind::Memory);
        else
          AddEdge(Y.Pos, X.Pos, 0, DepKind::Memory);
        AddEdge(X.Pos, Y.Pos, 1, DepKind::Memory);
        AddEdge(Y.Pos, X.Pos, 1, DepKind::Memory);
        continue;
      }
      // Scalars are handled precisely below (per variable, not per pair).
    }
  }

  // Scalar variables: exact intra-iteration ordering by position, and
  // loop-carried edges derived from the kill structure — the last store of
  // iteration i only reaches loads that execute before the first store of
  // iteration i+1. This keeps real recurrences (accumulators) while
  // avoiding artificial all-pairs cycles that would make every loop look
  // sequential.
  {
    std::map<VarId, std::vector<const MemAccess *>> ScalarAccesses;
    for (const MemAccess &A : Accesses)
      if (!A.IsElement)
        ScalarAccesses[A.Var].push_back(&A);
    for (auto &[Var, List] : ScalarAccesses) {
      (void)Var;
      const MemAccess *FirstStore = nullptr;
      const MemAccess *LastStore = nullptr;
      for (const MemAccess *A : List)
        if (A->IsWrite) {
          if (!FirstStore)
            FirstStore = A;
          LastStore = A;
        }
      if (!FirstStore)
        continue; // Only loads: no dependence at all.
      for (const MemAccess *A : List) {
        for (const MemAccess *B : List) {
          if (A == B || !A->IsWrite || A->Pos >= B->Pos)
            continue;
          // Intra-iteration: store -> later access.
          AddEdge(A->Pos, B->Pos, 0, DepKind::Memory);
        }
        // Intra-iteration anti: load -> later store.
        if (!A->IsWrite)
          for (const MemAccess *B : List)
            if (B->IsWrite && B->Pos > A->Pos)
              AddEdge(A->Pos, B->Pos, 0, DepKind::Memory);
      }
      // Loop-carried flow: last store -> loads upward-exposed at the top
      // of the next iteration (before its first store).
      for (const MemAccess *A : List)
        if (!A->IsWrite && A->Pos < FirstStore->Pos)
          AddEdge(LastStore->Pos, A->Pos, 1, DepKind::Memory);
      // Loop-carried anti: loads after the last store must issue before
      // the next iteration's first store overwrites the value.
      for (const MemAccess *A : List)
        if (!A->IsWrite && A->Pos > LastStore->Pos)
          AddEdge(A->Pos, FirstStore->Pos, 1, DepKind::Memory);
      // Loop-carried output dependence.
      AddEdge(LastStore->Pos, FirstStore->Pos, 1, DepKind::Memory);
    }
  }

  //===--------------------------------------------------------------------===//
  // Channel and call ordering
  //===--------------------------------------------------------------------===//

  // Channel queues are FIFO per channel: program order within an
  // iteration, and the last access of iteration i precedes the first of
  // iteration i+1.
  for (int ChanIdx = 0; ChanIdx != 2; ++ChanIdx) {
    w2::Channel C = ChanIdx == 0 ? w2::Channel::X : w2::Channel::Y;
    std::vector<uint32_t> Ops;
    for (uint32_t Pos = 0; Pos != NumOps; ++Pos) {
      const Instr &I = Body->Instrs[Pos];
      if ((I.Op == Opcode::Send || I.Op == Opcode::Recv) && I.Chan == C)
        Ops.push_back(Pos);
    }
    for (size_t K = 1; K < Ops.size(); ++K)
      AddEdge(Ops[K - 1], Ops[K], 0, DepKind::Channel);
    if (!Ops.empty())
      AddEdge(Ops.back(), Ops.front(), 1, DepKind::Channel);
  }

  // Calls act as full barriers (only relevant for the list-scheduling
  // fallback, since calls disable pipelining).
  for (uint32_t Pos = 0; Pos != NumOps; ++Pos) {
    if (Body->Instrs[Pos].Op != Opcode::Call)
      continue;
    for (uint32_t Other = 0; Other != NumOps; ++Other) {
      if (Other < Pos)
        AddEdge(Other, Pos, 0, DepKind::Control);
      else if (Other > Pos)
        AddEdge(Pos, Other, 0, DepKind::Control);
    }
  }

  return Deps;
}
