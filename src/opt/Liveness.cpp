//===- Liveness.cpp - Register liveness -----------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/Liveness.h"

using namespace warpc;
using namespace warpc::opt;
using namespace warpc::ir;

LivenessInfo LivenessInfo::compute(const IRFunction &F) {
  size_t NumBlocks = F.numBlocks();
  size_t NumRegs = F.numRegs();
  LivenessInfo Info;
  Info.LiveIn.assign(NumBlocks, BitSet(NumRegs));
  Info.LiveOut.assign(NumBlocks, BitSet(NumRegs));

  // Per-block UEVar (upward-exposed uses) and VarKill (defs).
  std::vector<BitSet> Use(NumBlocks, BitSet(NumRegs));
  std::vector<BitSet> Def(NumBlocks, BitSet(NumRegs));
  for (size_t B = 0; B != NumBlocks; ++B) {
    for (const Instr &I : F.block(static_cast<BlockId>(B))->Instrs) {
      for (Reg R : I.Operands)
        if (!Def[B].test(R))
          Use[B].set(R);
      if (I.definesReg())
        Def[B].set(I.Dst);
    }
  }

  // Backward fixpoint: out(B) = union in(S); in(B) = use(B) | (out(B)-def).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Info.Iterations;
    for (size_t BI = NumBlocks; BI-- > 0;) {
      BlockId B = static_cast<BlockId>(BI);
      BitSet Out(NumRegs);
      for (BlockId Succ : F.block(B)->successors())
        Out.unionWith(Info.LiveIn[Succ]);
      BitSet In = Out;
      In.subtract(Def[BI]);
      In.unionWith(Use[BI]);
      if (!(Out == Info.LiveOut[BI]) || !(In == Info.LiveIn[BI])) {
        Info.LiveOut[BI] = std::move(Out);
        Info.LiveIn[BI] = std::move(In);
        Changed = true;
      }
    }
  }
  return Info;
}
