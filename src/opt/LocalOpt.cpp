//===- LocalOpt.cpp - Local optimization pipeline --------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/LocalOpt.h"

#include "opt/Liveness.h"
#include "support/BitSet.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <map>
#include <tuple>
#include <vector>

using namespace warpc;
using namespace warpc::opt;
using namespace warpc::ir;

OptStats &OptStats::operator+=(const OptStats &O) {
  ConstFolded += O.ConstFolded;
  Simplified += O.Simplified;
  CSEEliminated += O.CSEEliminated;
  CopiesPropagated += O.CopiesPropagated;
  DeadRemoved += O.DeadRemoved;
  BlocksRemoved += O.BlocksRemoved;
  Iterations += O.Iterations;
  InstrsVisited += O.InstrsVisited;
  return *this;
}

namespace {

/// A compile-time constant value of either scalar type.
struct ConstValue {
  ValueType Ty = ValueType::Int;
  int64_t IntVal = 0;
  double FloatVal = 0;

  bool isIntZero() const { return Ty == ValueType::Int && IntVal == 0; }
  bool isIntOne() const { return Ty == ValueType::Int && IntVal == 1; }
  bool isFloatZero() const { return Ty == ValueType::Float && FloatVal == 0; }
  bool isFloatOne() const { return Ty == ValueType::Float && FloatVal == 1; }
};

/// Rewrites \p I into a constant definition of its current Dst.
void makeConst(Instr &I, ConstValue V) {
  Reg Dst = I.Dst;
  SourceLoc Loc = I.Loc;
  I = Instr();
  I.Dst = Dst;
  I.Loc = Loc;
  if (V.Ty == ValueType::Int) {
    I.Op = Opcode::ConstInt;
    I.Ty = ValueType::Int;
    I.IntImm = V.IntVal;
  } else {
    I.Op = Opcode::ConstFloat;
    I.Ty = ValueType::Float;
    I.FloatImm = V.FloatVal;
  }
}

/// Rewrites \p I into "Dst = copy Src".
void makeCopy(Instr &I, Reg Src) {
  Reg Dst = I.Dst;
  ValueType Ty = I.Ty;
  SourceLoc Loc = I.Loc;
  I = Instr();
  I.Op = Opcode::Copy;
  I.Ty = Ty;
  I.Dst = Dst;
  I.Operands = {Src};
  I.Loc = Loc;
}

/// Evaluates a pure opcode over constant operands. Returns false when the
/// operation cannot be folded (for example division by zero).
bool evalConst(const Instr &I, const std::vector<ConstValue> &Ops,
               ConstValue &Out) {
  auto IntResult = [&](int64_t V) {
    Out.Ty = ValueType::Int;
    Out.IntVal = V;
    return true;
  };
  auto FloatResult = [&](double V) {
    Out.Ty = ValueType::Float;
    Out.FloatVal = V;
    return true;
  };

  bool FloatOp = I.Ty == ValueType::Float;
  auto L = [&](size_t Idx) {
    return FloatOp ? Ops[Idx].FloatVal : static_cast<double>(Ops[Idx].IntVal);
  };

  switch (I.Op) {
  case Opcode::Add:
    return FloatOp ? FloatResult(L(0) + L(1))
                   : IntResult(Ops[0].IntVal + Ops[1].IntVal);
  case Opcode::Sub:
    return FloatOp ? FloatResult(L(0) - L(1))
                   : IntResult(Ops[0].IntVal - Ops[1].IntVal);
  case Opcode::Mul:
    return FloatOp ? FloatResult(L(0) * L(1))
                   : IntResult(Ops[0].IntVal * Ops[1].IntVal);
  case Opcode::Div:
    if (FloatOp) {
      if (Ops[1].FloatVal == 0)
        return false;
      return FloatResult(Ops[0].FloatVal / Ops[1].FloatVal);
    }
    if (Ops[1].IntVal == 0)
      return false;
    return IntResult(Ops[0].IntVal / Ops[1].IntVal);
  case Opcode::Rem:
    if (Ops[1].IntVal == 0)
      return false;
    return IntResult(Ops[0].IntVal % Ops[1].IntVal);
  case Opcode::Neg:
    return FloatOp ? FloatResult(-Ops[0].FloatVal) : IntResult(-Ops[0].IntVal);
  case Opcode::And:
    return IntResult((Ops[0].IntVal != 0 && Ops[1].IntVal != 0) ? 1 : 0);
  case Opcode::Or:
    return IntResult((Ops[0].IntVal != 0 || Ops[1].IntVal != 0) ? 1 : 0);
  case Opcode::Not:
    return IntResult(Ops[0].IntVal == 0 ? 1 : 0);
  case Opcode::CmpEQ:
    return IntResult(FloatOp ? L(0) == L(1) : Ops[0].IntVal == Ops[1].IntVal);
  case Opcode::CmpNE:
    return IntResult(FloatOp ? L(0) != L(1) : Ops[0].IntVal != Ops[1].IntVal);
  case Opcode::CmpLT:
    return IntResult(FloatOp ? L(0) < L(1) : Ops[0].IntVal < Ops[1].IntVal);
  case Opcode::CmpLE:
    return IntResult(FloatOp ? L(0) <= L(1) : Ops[0].IntVal <= Ops[1].IntVal);
  case Opcode::CmpGT:
    return IntResult(FloatOp ? L(0) > L(1) : Ops[0].IntVal > Ops[1].IntVal);
  case Opcode::CmpGE:
    return IntResult(FloatOp ? L(0) >= L(1) : Ops[0].IntVal >= Ops[1].IntVal);
  case Opcode::IntToFloat:
    return FloatResult(static_cast<double>(Ops[0].IntVal));
  case Opcode::Abs:
    return FloatResult(std::fabs(Ops[0].FloatVal));
  case Opcode::Sqrt:
    // Matches the cell's magnitude square root (see ir/Interpreter.cpp).
    return FloatResult(std::sqrt(std::fabs(Ops[0].FloatVal)));
  default:
    return false;
  }
}

/// Algebraic identities on partially constant operands. Returns true and
/// rewrites \p I when one applies.
bool simplifyAlgebraic(Instr &I, const ConstValue *LHS,
                       const ConstValue *RHS) {
  if (I.Operands.size() != 2)
    return false;
  auto IsZero = [&](const ConstValue *C) {
    return C && (I.Ty == ValueType::Int ? C->isIntZero() : C->isFloatZero());
  };
  auto IsOne = [&](const ConstValue *C) {
    return C && (I.Ty == ValueType::Int ? C->isIntOne() : C->isFloatOne());
  };

  switch (I.Op) {
  case Opcode::Add:
    if (IsZero(LHS)) {
      makeCopy(I, I.Operands[1]);
      return true;
    }
    if (IsZero(RHS)) {
      makeCopy(I, I.Operands[0]);
      return true;
    }
    return false;
  case Opcode::Sub:
    if (IsZero(RHS)) {
      makeCopy(I, I.Operands[0]);
      return true;
    }
    return false;
  case Opcode::Mul:
    if (IsOne(LHS)) {
      makeCopy(I, I.Operands[1]);
      return true;
    }
    if (IsOne(RHS)) {
      makeCopy(I, I.Operands[0]);
      return true;
    }
    // x*0 -> 0. The 1989 compiler applied this to floats as well; we keep
    // that behavior (it is unsound for NaN/Inf inputs, as it was then).
    if (IsZero(LHS) || IsZero(RHS)) {
      ConstValue Zero;
      Zero.Ty = I.Ty;
      makeConst(I, Zero);
      return true;
    }
    return false;
  case Opcode::Div:
    if (IsOne(RHS)) {
      makeCopy(I, I.Operands[0]);
      return true;
    }
    return false;
  default:
    return false;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

uint64_t opt::foldConstants(IRFunction &F, OptStats &Stats) {
  uint64_t Applied = 0;
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    BasicBlock *BB = F.block(static_cast<BlockId>(B));
    // Register -> known constant, local to the block. Entries are dropped
    // when their register is redefined.
    std::map<Reg, ConstValue> Known;
    for (Instr &I : BB->Instrs) {
      ++Stats.InstrsVisited;

      // Gather operand constants.
      std::vector<ConstValue> Ops;
      bool AllConst = true;
      const ConstValue *LHS = nullptr;
      const ConstValue *RHS = nullptr;
      for (size_t OpIdx = 0; OpIdx != I.Operands.size(); ++OpIdx) {
        auto It = Known.find(I.Operands[OpIdx]);
        if (It == Known.end()) {
          AllConst = false;
          Ops.emplace_back();
          continue;
        }
        Ops.push_back(It->second);
        if (OpIdx == 0)
          LHS = &It->second;
        else if (OpIdx == 1)
          RHS = &It->second;
      }

      bool Rewritten = false;
      if (I.definesReg() && !I.hasSideEffects() && !I.readsMemory()) {
        if (AllConst && !I.Operands.empty()) {
          ConstValue Result;
          if (evalConst(I, Ops, Result)) {
            makeConst(I, Result);
            ++Stats.ConstFolded;
            ++Applied;
            Rewritten = true;
          }
        }
        if (!Rewritten && simplifyAlgebraic(I, LHS, RHS)) {
          ++Stats.Simplified;
          ++Applied;
          Rewritten = true;
        }
      }

      // Update the constant map after any rewrite.
      if (I.definesReg()) {
        Known.erase(I.Dst);
        if (I.Op == Opcode::ConstInt)
          Known[I.Dst] = ConstValue{ValueType::Int, I.IntImm, 0};
        else if (I.Op == Opcode::ConstFloat)
          Known[I.Dst] = ConstValue{ValueType::Float, 0, I.FloatImm};
        else if (I.Op == Opcode::Copy) {
          auto It = Known.find(I.Operands[0]);
          if (It != Known.end())
            Known[I.Dst] = It->second;
        }
      }
    }
  }
  return Applied;
}

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

uint64_t opt::propagateCopies(IRFunction &F, OptStats &Stats) {
  uint64_t Applied = 0;
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    BasicBlock *BB = F.block(static_cast<BlockId>(B));
    // Dst -> Src for live copies in this block.
    std::map<Reg, Reg> Copies;
    auto Invalidate = [&](Reg R) {
      Copies.erase(R);
      for (auto It = Copies.begin(); It != Copies.end();) {
        if (It->second == R)
          It = Copies.erase(It);
        else
          ++It;
      }
    };
    for (Instr &I : BB->Instrs) {
      ++Stats.InstrsVisited;
      for (Reg &R : I.Operands) {
        auto It = Copies.find(R);
        if (It != Copies.end()) {
          R = It->second;
          ++Stats.CopiesPropagated;
          ++Applied;
        }
      }
      if (I.definesReg()) {
        Invalidate(I.Dst);
        if (I.Op == Opcode::Copy && I.Operands[0] != I.Dst)
          Copies[I.Dst] = I.Operands[0];
      }
    }
  }
  return Applied;
}

//===----------------------------------------------------------------------===//
// Local CSE (including redundant load elimination)
//===----------------------------------------------------------------------===//

namespace {

/// Availability key for a pure computation or a load.
using CSEKey = std::tuple<Opcode, ValueType, std::vector<Reg>, int64_t,
                          int64_t /*FloatImm bits*/, VarId>;

int64_t doubleBits(double D) {
  int64_t Bits;
  static_assert(sizeof(Bits) == sizeof(D), "bit-cast size mismatch");
  __builtin_memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}

bool isCSECandidate(const Instr &I) {
  if (!I.definesReg() || I.hasSideEffects())
    return false;
  switch (I.Op) {
  case Opcode::ConstInt:
  case Opcode::ConstFloat:
  case Opcode::Copy:
    // Handled by folding/copy propagation; CSE on them adds nothing.
    return false;
  case Opcode::LoadVar:
  case Opcode::LoadElem:
    return true;
  default:
    return !I.writesMemory() && !I.isBranch();
  }
}

} // namespace

uint64_t opt::eliminateCommonSubexprs(IRFunction &F, OptStats &Stats) {
  uint64_t Applied = 0;
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    BasicBlock *BB = F.block(static_cast<BlockId>(B));
    std::map<CSEKey, Reg> Available;

    auto InvalidateReg = [&](Reg R) {
      for (auto It = Available.begin(); It != Available.end();) {
        const auto &Operands = std::get<2>(It->first);
        bool Uses = It->second == R;
        for (Reg Op : Operands)
          Uses |= Op == R;
        if (Uses)
          It = Available.erase(It);
        else
          ++It;
      }
    };
    auto InvalidateLoadsOf = [&](VarId V, bool ElementsOnly) {
      for (auto It = Available.begin(); It != Available.end();) {
        Opcode Op = std::get<0>(It->first);
        bool IsLoad = Op == Opcode::LoadVar || Op == Opcode::LoadElem;
        bool Match = IsLoad && std::get<5>(It->first) == V &&
                     (!ElementsOnly || Op == Opcode::LoadElem);
        if (Match)
          It = Available.erase(It);
        else
          ++It;
      }
    };
    auto InvalidateAllLoads = [&] {
      for (auto It = Available.begin(); It != Available.end();) {
        Opcode Op = std::get<0>(It->first);
        if (Op == Opcode::LoadVar || Op == Opcode::LoadElem)
          It = Available.erase(It);
        else
          ++It;
      }
    };

    // Store-to-load forwarding: the register most recently stored to each
    // scalar variable, while still valid.
    std::map<VarId, Reg> StoredValue;

    for (Instr &I : BB->Instrs) {
      ++Stats.InstrsVisited;

      // Forward a stored scalar to a subsequent load of the same variable
      // (the local scalar promotion that keeps loop bodies out of memory).
      if (I.Op == Opcode::LoadVar) {
        auto Stored = StoredValue.find(I.Var);
        if (Stored != StoredValue.end()) {
          makeCopy(I, Stored->second);
          ++Stats.CSEEliminated;
          ++Applied;
        }
      }

      bool Candidate = isCSECandidate(I);
      bool Rewritten = false;
      if (Candidate) {
        CSEKey Key{I.Op, I.Ty, I.Operands, I.IntImm, doubleBits(I.FloatImm),
                   I.Var};
        auto It = Available.find(Key);
        if (It != Available.end()) {
          makeCopy(I, It->second);
          ++Stats.CSEEliminated;
          ++Applied;
          Rewritten = true;
        }
      }

      // Invalidate stale state that depended on the redefined register
      // *before* publishing this instruction's own availability.
      if (I.definesReg()) {
        InvalidateReg(I.Dst);
        for (auto It = StoredValue.begin(); It != StoredValue.end();) {
          if (It->second == I.Dst)
            It = StoredValue.erase(It);
          else
            ++It;
        }
      }
      if (Candidate && !Rewritten) {
        // Never publish an expression that reads its own destination (an
        // induction update): the operand refers to the pre-update value,
        // so a later textual match would compute something different.
        bool ReadsOwnDst = false;
        for (Reg R : I.Operands)
          ReadsOwnDst |= R == I.Dst;
        if (!ReadsOwnDst)
          Available.emplace(CSEKey{I.Op, I.Ty, I.Operands, I.IntImm,
                                   doubleBits(I.FloatImm), I.Var},
                            I.Dst);
      }
      if (I.Op == Opcode::StoreVar) {
        InvalidateLoadsOf(I.Var, /*ElementsOnly=*/false);
        StoredValue[I.Var] = I.Operands[0];
      } else if (I.Op == Opcode::StoreElem) {
        InvalidateLoadsOf(I.Var, /*ElementsOnly=*/true);
      } else if (I.Op == Opcode::Call) {
        InvalidateAllLoads(); // The callee may write arrays passed to it.
        StoredValue.clear();
      }
    }
  }
  return Applied;
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

uint64_t opt::eliminateDeadCode(IRFunction &F, OptStats &Stats) {
  LivenessInfo Live = LivenessInfo::compute(F);
  uint64_t Applied = 0;
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    BasicBlock *BB = F.block(static_cast<BlockId>(B));
    BitSet LiveNow = Live.LiveOut[B];
    std::vector<Instr> Kept;
    Kept.reserve(BB->Instrs.size());
    for (size_t Pos = BB->Instrs.size(); Pos-- > 0;) {
      Instr &I = BB->Instrs[Pos];
      ++Stats.InstrsVisited;
      bool Removable = I.definesReg() && !LiveNow.test(I.Dst) &&
                       !I.hasSideEffects() && !I.writesMemory() &&
                       !isTerminator(I.Op);
      if (Removable) {
        ++Stats.DeadRemoved;
        ++Applied;
        continue;
      }
      if (I.definesReg())
        LiveNow.reset(I.Dst);
      for (Reg R : I.Operands)
        LiveNow.set(R);
      Kept.push_back(std::move(I));
    }
    std::reverse(Kept.begin(), Kept.end());
    BB->Instrs = std::move(Kept);
  }
  return Applied;
}

//===----------------------------------------------------------------------===//
// Dead store elimination
//===----------------------------------------------------------------------===//

uint64_t opt::eliminateDeadStores(IRFunction &F, OptStats &Stats) {
  // A scalar variable is observable only through LoadVar: W2 scalars are
  // local to their function and scalar parameters are passed by value.
  // Arrays are excluded — they may be passed by reference to callees.
  std::vector<bool> EverLoaded(F.numVariables(), false);
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    for (const Instr &I : F.block(static_cast<BlockId>(B))->Instrs) {
      ++Stats.InstrsVisited;
      if (I.Op == Opcode::LoadVar)
        EverLoaded[I.Var] = true;
    }
  }

  uint64_t Applied = 0;
  for (size_t B = 0; B != F.numBlocks(); ++B) {
    BasicBlock *BB = F.block(static_cast<BlockId>(B));
    std::vector<Instr> Kept;
    Kept.reserve(BB->Instrs.size());
    for (Instr &I : BB->Instrs) {
      if (I.Op == Opcode::StoreVar && !F.variable(I.Var).Ty.isArray() &&
          !EverLoaded[I.Var]) {
        ++Stats.DeadRemoved;
        ++Applied;
        continue;
      }
      Kept.push_back(std::move(I));
    }
    BB->Instrs = std::move(Kept);
  }
  return Applied;
}

//===----------------------------------------------------------------------===//
// Unreachable block removal
//===----------------------------------------------------------------------===//

uint64_t opt::removeUnreachableBlocks(IRFunction &F, OptStats &Stats) {
  size_t N = F.numBlocks();
  if (N == 0)
    return 0;
  BitSet Reached(N);
  std::vector<BlockId> Work = {0};
  Reached.set(0);
  while (!Work.empty()) {
    BlockId B = Work.back();
    Work.pop_back();
    for (BlockId Succ : F.block(B)->successors())
      if (!Reached.test(Succ)) {
        Reached.set(Succ);
        Work.push_back(Succ);
      }
  }

  uint64_t Removed = 0;
  for (size_t B = 0; B != N; ++B) {
    BasicBlock *BB = F.block(static_cast<BlockId>(B));
    Stats.InstrsVisited += BB->Instrs.size();
    if (!Reached.test(B) && !BB->Instrs.empty()) {
      // Empty the block but keep a trivial terminator so the function stays
      // verifiable; block ids remain stable for all analyses.
      Instr Ret;
      Ret.Op = Opcode::Ret;
      BB->Instrs.clear();
      BB->Instrs.push_back(std::move(Ret));
      ++Removed;
    }
  }
  Stats.BlocksRemoved += Removed;
  return Removed;
}

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

#ifndef NDEBUG
namespace {

/// Debug-build pipeline invariants, asserted after every pass: the
/// function still verifies (no pass may break structural validity, even
/// transiently), and no Send/Recv was created or removed — channel
/// traffic is an observable effect of a cell program, so an optimizer
/// that drops one has miscompiled the systolic protocol.
void checkPassInvariants(const IRFunction &F, const char *Pass,
                         uint64_t ChannelOpsBefore) {
  std::vector<ir::VerifierIssue> Issues = ir::verifyFunctionIssues(F);
  if (!Issues.empty()) {
    std::fprintf(stderr, "after %s: %s\n", Pass,
                 Issues.front().str(F).c_str());
    assert(false && "opt pass broke the IR verifier");
  }
  if (ir::countChannelOps(F) != ChannelOpsBefore) {
    std::fprintf(stderr, "after %s: channel op count changed (%llu -> %llu)\n",
                 Pass, static_cast<unsigned long long>(ChannelOpsBefore),
                 static_cast<unsigned long long>(ir::countChannelOps(F)));
    assert(false && "opt pass added or removed a Send/Recv");
  }
}

} // namespace
#define WARPC_CHECK_PASS(Name) checkPassInvariants(F, Name, ChannelOps)
#else
#define WARPC_CHECK_PASS(Name) (void)0
#endif

OptStats opt::runLocalOpt(IRFunction &F) {
  OptStats Stats;
#ifndef NDEBUG
  const uint64_t ChannelOps = ir::countChannelOps(F);
#endif
  const uint64_t MaxSweeps = 10;
  for (uint64_t Sweep = 0; Sweep != MaxSweeps; ++Sweep) {
    ++Stats.Iterations;
    uint64_t Applied = 0;
    Applied += removeUnreachableBlocks(F, Stats);
    WARPC_CHECK_PASS("removeUnreachableBlocks");
    Applied += foldConstants(F, Stats);
    WARPC_CHECK_PASS("foldConstants");
    Applied += propagateCopies(F, Stats);
    WARPC_CHECK_PASS("propagateCopies");
    Applied += eliminateCommonSubexprs(F, Stats);
    WARPC_CHECK_PASS("eliminateCommonSubexprs");
    Applied += propagateCopies(F, Stats);
    WARPC_CHECK_PASS("propagateCopies");
    Applied += eliminateDeadStores(F, Stats);
    WARPC_CHECK_PASS("eliminateDeadStores");
    Applied += eliminateDeadCode(F, Stats);
    WARPC_CHECK_PASS("eliminateDeadCode");
    if (Applied == 0)
      break;
  }
  return Stats;
}
