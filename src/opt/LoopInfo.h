//===- LoopInfo.h - Dominators and natural loops ----------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator computation and natural-loop detection over the flowgraph.
/// Innermost loops whose body is a single basic block are the software
/// pipelining candidates in compiler phase 3; loop depth also feeds the
/// master's load-balancing heuristic (paper Section 4.3).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OPT_LOOPINFO_H
#define WARPC_OPT_LOOPINFO_H

#include "ir/IR.h"

#include <vector>

namespace warpc {
namespace opt {

/// One natural loop discovered from a back edge.
struct Loop {
  /// Loop header (target of the back edge); tests the exit condition.
  ir::BlockId Header = ir::InvalidBlock;
  /// Source of the back edge (the latch).
  ir::BlockId Latch = ir::InvalidBlock;
  /// All blocks in the loop, header first.
  std::vector<ir::BlockId> Blocks;
  /// Nesting depth; 1 for outermost loops.
  uint32_t Depth = 1;

  /// True when the loop body is exactly {header, one body block} with the
  /// body ending in a branch back to the header — the shape the modulo
  /// scheduler pipelines.
  bool isSimpleInnerLoop() const { return Blocks.size() == 2; }

  /// The single body block of a simple inner loop.
  ir::BlockId bodyBlock() const {
    assert(isSimpleInnerLoop() && "not a simple loop");
    return Latch;
  }

  bool contains(ir::BlockId B) const {
    for (ir::BlockId Member : Blocks)
      if (Member == B)
        return true;
    return false;
  }
};

/// Dominator sets and the loop forest of one function.
class LoopInfo {
public:
  /// Analyzes \p F. Unreachable blocks are ignored.
  static LoopInfo compute(const ir::IRFunction &F);

  const std::vector<Loop> &loops() const { return Loops; }

  /// Loop nesting depth of a block; 0 when not in any loop.
  uint32_t loopDepth(ir::BlockId B) const {
    return B < DepthOf.size() ? DepthOf[B] : 0;
  }

  /// Maximum loop depth in the function.
  uint32_t maxDepth() const;

  /// Returns true when \p A dominates \p B.
  bool dominates(ir::BlockId A, ir::BlockId B) const;

private:
  std::vector<Loop> Loops;
  std::vector<uint32_t> DepthOf;
  // Dominators[B] holds every block dominating B (including B).
  std::vector<std::vector<ir::BlockId>> Dominators;
};

} // namespace opt
} // namespace warpc

#endif // WARPC_OPT_LOOPINFO_H
