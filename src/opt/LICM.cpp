//===- LICM.cpp - Loop-invariant code motion --------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "opt/LICM.h"

#include "opt/LoopInfo.h"
#include "support/BitSet.h"

#include <map>
#include <set>
#include <vector>

using namespace warpc;
using namespace warpc::opt;
using namespace warpc::ir;

namespace {

/// True when the instruction may be executed speculatively in the
/// preheader (even if the loop body never runs) and computes the same
/// value every iteration given invariant operands.
bool isHoistableOp(const Instr &I) {
  switch (I.Op) {
  case Opcode::ConstInt:
  case Opcode::ConstFloat:
  case Opcode::Copy:
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Neg:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Not:
  case Opcode::CmpEQ:
  case Opcode::CmpNE:
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::IntToFloat:
  case Opcode::Sqrt: // magnitude square root: never faults
  case Opcode::Abs:
    return true;
  // Divide/remainder can fault on a zero divisor; hoisting would
  // introduce the fault on zero-trip loops.
  default:
    return false;
  }
}

} // namespace

uint64_t opt::hoistLoopInvariants(IRFunction &F, OptStats &Stats) {
  LoopInfo LI = LoopInfo::compute(*const_cast<const IRFunction *>(&F));
  auto Preds = F.computePredecessors();

  // Definition counts: only registers with exactly one definition are
  // safe to relocate (multi-def registers encode recurrences).
  std::map<Reg, uint32_t> DefCount;
  for (size_t B = 0; B != F.numBlocks(); ++B)
    for (const Instr &I : F.block(static_cast<BlockId>(B))->Instrs) {
      ++Stats.InstrsVisited;
      if (I.definesReg())
        ++DefCount[I.Dst];
    }

  uint64_t Hoisted = 0;
  // LoopInfo sorts innermost-first; hoisting inner loops first lets an
  // outer pass move the same computation further out on a later call.
  for (const Loop &L : LI.loops()) {
    // Find the unique preheader: the predecessor of the header outside
    // the loop.
    BlockId Preheader = InvalidBlock;
    bool Unique = true;
    for (BlockId P : Preds[L.Header]) {
      if (L.contains(P))
        continue;
      if (Preheader != InvalidBlock)
        Unique = false;
      Preheader = P;
    }
    if (Preheader == InvalidBlock || !Unique)
      continue;
    BasicBlock *Pre = F.block(Preheader);
    if (!Pre->terminator())
      continue;

    // Memory state inside the loop: which scalars are stored, and whether
    // anything prevents load hoisting wholesale.
    std::set<VarId> StoredScalars;
    bool HasCallOrRecv = false;
    for (BlockId B : L.Blocks)
      for (const Instr &I : F.block(B)->Instrs) {
        ++Stats.InstrsVisited;
        if (I.Op == Opcode::StoreVar)
          StoredScalars.insert(I.Var);
        HasCallOrRecv |= I.Op == Opcode::Call || I.Op == Opcode::Recv;
      }

    // Registers defined inside the loop (hoisted ones get removed as we
    // go, making their consumers eligible on the next sweep).
    std::set<Reg> DefinedInLoop;
    for (BlockId B : L.Blocks)
      for (const Instr &I : F.block(B)->Instrs)
        if (I.definesReg())
          DefinedInLoop.insert(I.Dst);

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockId B : L.Blocks) {
        BasicBlock *BB = F.block(B);
        for (size_t Pos = 0; Pos < BB->Instrs.size(); ++Pos) {
          Instr &I = BB->Instrs[Pos];
          ++Stats.InstrsVisited;
          if (!I.definesReg() || DefCount[I.Dst] != 1)
            continue;

          bool Eligible = false;
          if (isHoistableOp(I)) {
            Eligible = true;
          } else if (I.Op == Opcode::LoadVar && !HasCallOrRecv &&
                     !StoredScalars.count(I.Var)) {
            // The scalar is never stored in the loop; its value at the
            // preheader equals its value on every iteration. (Calls and
            // receives are conservatively treated as barriers.)
            Eligible = true;
          }
          if (!Eligible)
            continue;

          bool OperandsInvariant = true;
          for (Reg R : I.Operands)
            OperandsInvariant &= !DefinedInLoop.count(R);
          if (!OperandsInvariant)
            continue;

          // Move the instruction before the preheader's terminator.
          Instr Moved = std::move(I);
          BB->Instrs.erase(BB->Instrs.begin() +
                           static_cast<std::ptrdiff_t>(Pos));
          --Pos;
          DefinedInLoop.erase(Moved.Dst);
          Pre->Instrs.insert(Pre->Instrs.end() - 1, std::move(Moved));
          ++Hoisted;
          Changed = true;
        }
      }
    }
  }
  return Hoisted;
}
