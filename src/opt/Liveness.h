//===- Liveness.h - Register liveness ---------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward bit-vector liveness over virtual registers: one of the
/// "global dependencies" computed in compiler phase 2. Drives dead-code
/// elimination and the register allocator.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OPT_LIVENESS_H
#define WARPC_OPT_LIVENESS_H

#include "ir/IR.h"
#include "support/BitSet.h"

#include <vector>

namespace warpc {
namespace opt {

/// Per-block live-in/live-out register sets.
struct LivenessInfo {
  std::vector<BitSet> LiveIn;
  std::vector<BitSet> LiveOut;
  /// Number of dataflow sweeps until the fixpoint; a work metric.
  uint64_t Iterations = 0;

  /// Solves the dataflow equations for \p F.
  static LivenessInfo compute(const ir::IRFunction &F);
};

} // namespace opt
} // namespace warpc

#endif // WARPC_OPT_LIVENESS_H
