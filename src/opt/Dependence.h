//===- Dependence.h - Loop dependence analysis ------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Data-dependence analysis for innermost simple loops, the input to the
/// software pipeliner. Array subscripts that are affine in the loop's
/// induction register (i, i+c, i-c) get exact dependence distances; all
/// other same-array access pairs are ordered conservatively with distance
/// one. Scalar memory and channel operations are likewise serialized
/// across iterations.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_OPT_DEPENDENCE_H
#define WARPC_OPT_DEPENDENCE_H

#include "ir/IR.h"
#include "opt/LoopInfo.h"

#include <cstdint>
#include <vector>

namespace warpc {
namespace opt {

/// Why two body instructions must be ordered.
enum class DepKind : uint8_t { Register, Memory, Channel, Control };

/// One dependence edge between instructions of the loop body block. The
/// scheduler must satisfy start(To) >= start(From) + latency(From) -
/// II * Distance.
struct DepEdge {
  uint32_t From = 0; ///< Index into the body block's instruction list.
  uint32_t To = 0;
  uint32_t Distance = 0; ///< 0 = same iteration; k = k iterations later.
  DepKind Kind = DepKind::Register;
};

/// Dependence summary of one innermost simple loop.
struct LoopDeps {
  /// True when the body can be modulo-scheduled: a recognized induction
  /// register and no calls in the body.
  bool PipelineSafe = false;
  ir::Reg InductionReg = ir::InvalidReg;
  int64_t Step = 0;
  /// All edges, including the induction recurrence itself.
  std::vector<DepEdge> Edges;
  /// Instructions inspected; a phase-2 work metric.
  uint64_t InstrsAnalyzed = 0;
};

/// Analyzes the body of \p L (which must satisfy isSimpleInnerLoop()).
/// The terminator is excluded from the dependence graph; the scheduler
/// places it in the last stage of the kernel.
LoopDeps analyzeLoopDependences(const ir::IRFunction &F, const Loop &L);

} // namespace opt
} // namespace warpc

#endif // WARPC_OPT_DEPENDENCE_H
