//===- BinaryStream.cpp - Bounds-checked binary encoding ----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BinaryStream.h"

#include <cstring>

using namespace warpc;

void BinaryWriter::u32(uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void BinaryWriter::u64(uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void BinaryWriter::f64(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

void BinaryWriter::str(const std::string &S) {
  u64(S.size());
  Buf.insert(Buf.end(), S.begin(), S.end());
}

void BinaryWriter::bytes(const std::vector<uint8_t> &B) {
  u64(B.size());
  Buf.insert(Buf.end(), B.begin(), B.end());
}

bool BinaryReader::take(size_t N) {
  if (Failed || N > Size - Pos || Pos > Size) {
    Failed = true;
    return false;
  }
  return true;
}

uint8_t BinaryReader::u8() {
  if (!take(1))
    return 0;
  return Data[Pos++];
}

uint32_t BinaryReader::u32() {
  if (!take(4))
    return 0;
  uint32_t V = 0;
  for (unsigned I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
  return V;
}

uint64_t BinaryReader::u64() {
  if (!take(8))
    return 0;
  uint64_t V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
  return V;
}

double BinaryReader::f64() {
  uint64_t Bits = u64();
  double V = 0;
  if (!Failed)
    std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

std::string BinaryReader::str() {
  uint64_t N = u64();
  if (!take(static_cast<size_t>(N)))
    return std::string();
  std::string S(reinterpret_cast<const char *>(Data + Pos),
                static_cast<size_t>(N));
  Pos += static_cast<size_t>(N);
  return S;
}

std::vector<uint8_t> BinaryReader::bytes() {
  uint64_t N = u64();
  if (!take(static_cast<size_t>(N)))
    return {};
  std::vector<uint8_t> B(Data + Pos, Data + Pos + N);
  Pos += static_cast<size_t>(N);
  return B;
}

uint64_t warpc::fnv1a64(const uint8_t *Data, size_t Size) {
  uint64_t H = 0xCBF29CE484222325ULL;
  for (size_t I = 0; I != Size; ++I) {
    H ^= Data[I];
    H *= 0x100000001B3ULL;
  }
  return H;
}
