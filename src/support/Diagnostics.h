//===- Diagnostics.h - Diagnostic engine ------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine used by the W2 front end. Diagnostics are
/// collected rather than printed so that the parallel compiler's section
/// masters can combine the diagnostic output of many function masters,
/// exactly as Section 3.2 of the paper requires.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_DIAGNOSTICS_H
#define WARPC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace warpc {

/// Severity of a diagnostic message.
enum class DiagKind { Note, Warning, Error };

/// One diagnostic message tied to a source location.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders "loc: severity: message".
  std::string str() const;
};

/// Collects diagnostics produced while processing one compilation unit.
///
/// The engine deliberately has value semantics so that each function master
/// owns an independent engine; merge() implements the section master's
/// "combine the diagnostic output" step.
class DiagnosticEngine {
public:
  void report(DiagKind Kind, SourceLoc Loc, std::string Message);

  /// Convenience wrappers for the common severities.
  void error(SourceLoc Loc, std::string Message) {
    report(DiagKind::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagKind::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagKind::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Appends all diagnostics of \p Other, preserving their order. Used by
  /// section masters to combine function-master output.
  void merge(const DiagnosticEngine &Other);

  /// Renders every diagnostic, one per line.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace warpc

#endif // WARPC_SUPPORT_DIAGNOSTICS_H
