//===- Timer.h - Wall-clock timing ------------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timer used by the real-thread execution engine and the
/// microbenchmarks. The 1989 reproductions use simulated time instead
/// (see cluster/Simulation.h).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_TIMER_H
#define WARPC_SUPPORT_TIMER_H

#include <chrono>

namespace warpc {

/// Measures elapsed wall-clock seconds from construction or restart().
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void restart() { Start = Clock::now(); }

  /// Seconds elapsed since the last restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace warpc

#endif // WARPC_SUPPORT_TIMER_H
