//===- StringUtils.h - String helpers ---------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by the front end, the assembler and the
/// bench harness.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_STRINGUTILS_H
#define WARPC_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace warpc {

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> split(std::string_view Text, char Sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// Returns true if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Returns true if \p Text ends with \p Suffix.
bool endsWith(std::string_view Text, std::string_view Suffix);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Formats \p Value with \p Precision digits after the decimal point.
std::string formatDouble(double Value, int Precision);

/// Left-pads \p Text with spaces to at least \p Width characters.
std::string padLeft(std::string Text, size_t Width);

/// Right-pads \p Text with spaces to at least \p Width characters.
std::string padRight(std::string Text, size_t Width);

} // namespace warpc

#endif // WARPC_SUPPORT_STRINGUTILS_H
