//===- Diagnostics.cpp - Diagnostic engine --------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace warpc;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Note:
    return "note";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  return Loc.str() + ": " + kindName(Kind) + ": " + Message;
}

void DiagnosticEngine::report(DiagKind Kind, SourceLoc Loc,
                              std::string Message) {
  if (Kind == DiagKind::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Kind, Loc, std::move(Message)});
}

void DiagnosticEngine::merge(const DiagnosticEngine &Other) {
  for (const Diagnostic &D : Other.Diags)
    Diags.push_back(D);
  NumErrors += Other.NumErrors;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
