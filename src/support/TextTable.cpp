//===- TextTable.cpp - Aligned text tables --------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TextTable.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace warpc;

TextTable::TextTable(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row width mismatch");
  Rows.push_back(std::move(Cells));
}

void TextTable::addRow(const std::string &Label,
                       const std::vector<double> &Values, int Precision) {
  std::vector<std::string> Cells;
  Cells.push_back(Label);
  for (double V : Values)
    Cells.push_back(formatDouble(V, Precision));
  addRow(std::move(Cells));
}

std::string TextTable::str() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I != Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I != 0)
        Line += "  ";
      // Left-align the first column (labels), right-align numbers.
      Line += I == 0 ? padRight(Row[I], Widths[I]) : padLeft(Row[I], Widths[I]);
    }
    Line += '\n';
    return Line;
  };

  std::string Out = RenderRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W;
  Total += 2 * (Widths.size() - 1);
  Out += std::string(Total, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    Out += RenderRow(Row);
  return Out;
}
