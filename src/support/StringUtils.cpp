//===- StringUtils.cpp - String helpers -----------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdio>

using namespace warpc;

std::vector<std::string> warpc::split(std::string_view Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.emplace_back(Text.substr(Start));
      return Parts;
    }
    Parts.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view warpc::trim(std::string_view Text) {
  const char *WS = " \t\r\n";
  size_t First = Text.find_first_not_of(WS);
  if (First == std::string_view::npos)
    return {};
  size_t Last = Text.find_last_not_of(WS);
  return Text.substr(First, Last - First + 1);
}

bool warpc::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

bool warpc::endsWith(std::string_view Text, std::string_view Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.substr(Text.size() - Suffix.size()) == Suffix;
}

std::string warpc::join(const std::vector<std::string> &Parts,
                        std::string_view Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string warpc::formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

std::string warpc::padLeft(std::string Text, size_t Width) {
  if (Text.size() < Width)
    Text.insert(Text.begin(), Width - Text.size(), ' ');
  return Text;
}

std::string warpc::padRight(std::string Text, size_t Width) {
  if (Text.size() < Width)
    Text.append(Width - Text.size(), ' ');
  return Text;
}
