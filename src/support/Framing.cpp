//===- Framing.cpp - Generic checksummed frame transport ------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Framing.h"

#include "support/BinaryStream.h"

#include <cstddef>

using namespace warpc;
using namespace warpc::framing;

std::vector<uint8_t> framing::encodeFrame(const FrameSpec &Spec, uint8_t Type,
                                          const std::vector<uint8_t> &Payload) {
  BinaryWriter W;
  W.u32(Spec.Magic);
  W.u8(Spec.Version);
  W.u8(Type);
  W.u32(static_cast<uint32_t>(Payload.size()));
  std::vector<uint8_t> Out = W.take();
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  BinaryWriter T;
  T.u64(fnv1a64(Payload));
  const std::vector<uint8_t> &Trailer = T.buffer();
  Out.insert(Out.end(), Trailer.begin(), Trailer.end());
  return Out;
}

void Decoder::fail(const std::string &Why) {
  Failed = true;
  Error = Why;
  Buf.clear();
  Pos = 0;
}

void Decoder::feed(const uint8_t *Data, size_t Size) {
  if (Failed || Size == 0)
    return;
  // Compact once the dead prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (Pos > 4096 && Pos * 2 > Buf.size()) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }
  Buf.insert(Buf.end(), Data, Data + Size);
}

DecodeStatus Decoder::next(RawFrame &Out) {
  if (Failed)
    return DecodeStatus::Corrupt;
  const size_t Avail = Buf.size() - Pos;
  if (Avail < FrameHeaderSize)
    return DecodeStatus::NeedMore;

  BinaryReader Header(Buf.data() + Pos, FrameHeaderSize);
  const uint32_t Magic = Header.u32();
  const uint8_t Version = Header.u8();
  const uint8_t Type = Header.u8();
  const uint32_t Len = Header.u32();
  if (Magic != Spec.Magic) {
    fail("bad frame magic");
    return DecodeStatus::Corrupt;
  }
  if (Version != Spec.Version) {
    fail("unsupported protocol version " + std::to_string(Version));
    return DecodeStatus::Corrupt;
  }
  if (Type == 0 || Type > Spec.MaxType) {
    fail("unknown frame type " + std::to_string(Type));
    return DecodeStatus::Corrupt;
  }
  if (Len > Spec.MaxPayload) {
    fail("oversized frame payload (" + std::to_string(Len) + " bytes)");
    return DecodeStatus::Corrupt;
  }
  const size_t Whole = FrameHeaderSize + Len + FrameTrailerSize;
  if (Avail < Whole)
    return DecodeStatus::NeedMore;

  const uint8_t *Payload = Buf.data() + Pos + FrameHeaderSize;
  BinaryReader Trailer(Payload + Len, FrameTrailerSize);
  if (Trailer.u64() != fnv1a64(Payload, Len)) {
    fail("frame checksum mismatch");
    return DecodeStatus::Corrupt;
  }
  Out.Type = Type;
  Out.Payload.assign(Payload, Payload + Len);
  Pos += Whole;
  return DecodeStatus::Ready;
}
