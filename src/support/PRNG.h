//===- PRNG.h - Deterministic pseudo-random numbers -------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64 seeded xoshiro256**) used by the
/// cluster simulator for Ethernet collision backoff and measurement jitter,
/// and by the workload generator. We avoid <random> so that the simulation
/// is bit-reproducible across standard library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_PRNG_H
#define WARPC_SUPPORT_PRNG_H

#include <cstdint>

namespace warpc {

/// Deterministic 64-bit PRNG with a convenient scalar API.
class PRNG {
public:
  explicit PRNG(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via SplitMix64.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a double uniformly distributed in [0, 1).
  double uniform();

  /// Returns a double uniformly distributed in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Returns an integer uniformly distributed in [0, Bound). \p Bound must
  /// be nonzero.
  uint64_t below(uint64_t Bound);

  /// Returns an exponentially distributed value with the given mean.
  double exponential(double Mean);

private:
  uint64_t State[4];
};

} // namespace warpc

#endif // WARPC_SUPPORT_PRNG_H
