//===- TextTable.h - Aligned text tables ------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders aligned text tables. Every bench binary regenerating one of the
/// paper's figures prints its data series through this class so the output
/// is uniform and easy to diff against EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_TEXTTABLE_H
#define WARPC_SUPPORT_TEXTTABLE_H

#include <string>
#include <vector>

namespace warpc {

/// A simple column-aligned table with a header row.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends a row; the number of cells must match the header.
  void addRow(std::vector<std::string> Cells);

  /// Convenience: formats doubles with \p Precision decimals.
  void addRow(const std::string &Label, const std::vector<double> &Values,
              int Precision = 2);

  /// Renders the table with a separator under the header.
  std::string str() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace warpc

#endif // WARPC_SUPPORT_TEXTTABLE_H
