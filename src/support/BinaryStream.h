//===- BinaryStream.h - Bounds-checked binary encoding ----------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny little-endian binary writer/reader pair for serialized compiler
/// artifacts (cache entries, result files). The writer appends fixed-width
/// scalars and length-prefixed strings; the reader is fully bounds-checked
/// and turns any malformed input — truncation, oversized length prefixes —
/// into a sticky failure flag instead of undefined behavior, which is what
/// lets a corrupted cache file degrade into a miss.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_BINARYSTREAM_H
#define WARPC_SUPPORT_BINARYSTREAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace warpc {

/// Appends little-endian scalars and length-prefixed byte ranges to a
/// growing buffer.
class BinaryWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V);
  void u64(uint64_t V);
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  /// Doubles travel as their IEEE-754 bit pattern: bit-exact round trip.
  void f64(double V);
  /// u64 length prefix followed by the raw bytes.
  void str(const std::string &S);
  void bytes(const std::vector<uint8_t> &B);

  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Reads the writer's encoding back. Every accessor returns a value-typed
/// default once the stream has failed; check ok() after decoding a whole
/// record rather than after every field.
class BinaryReader {
public:
  BinaryReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit BinaryReader(const std::vector<uint8_t> &B)
      : BinaryReader(B.data(), B.size()) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64();
  std::string str();
  std::vector<uint8_t> bytes();

  bool ok() const { return !Failed; }
  /// True when every byte has been consumed and nothing failed — a whole-
  /// record integrity check against trailing garbage.
  bool atEnd() const { return !Failed && Pos == Size; }

private:
  bool take(size_t N);
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;
};

/// FNV-1a over a byte range: the cache file checksum. Not cryptographic;
/// it guards against truncation and bit rot, not adversaries.
uint64_t fnv1a64(const uint8_t *Data, size_t Size);
inline uint64_t fnv1a64(const std::vector<uint8_t> &B) {
  return fnv1a64(B.data(), B.size());
}

} // namespace warpc

#endif // WARPC_SUPPORT_BINARYSTREAM_H
