//===- Json.cpp - Minimal JSON value model -----------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace warpc;
using namespace warpc::json;

void Value::set(std::string Key, Value V) {
  for (auto &[K2, V2] : ObjectV) {
    if (K2 == Key) {
      V2 = std::move(V);
      return;
    }
  }
  ObjectV.emplace_back(std::move(Key), std::move(V));
}

const Value &Value::get(std::string_view Key) const {
  static const Value Null;
  for (const auto &[K2, V2] : ObjectV)
    if (K2 == Key)
      return V2;
  return Null;
}

bool Value::has(std::string_view Key) const {
  for (const auto &[K2, V2] : ObjectV) {
    (void)V2;
    if (K2 == Key)
      return true;
  }
  return false;
}

void json::escapeString(std::string_view Text, std::string &Out) {
  Out.push_back('"');
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
}

namespace {

/// Shortest decimal form that parses back to exactly the same double
/// (printf %.17g always round-trips; prefer fewer digits when they do).
void appendDouble(double D, std::string &Out) {
  if (!std::isfinite(D)) {
    Out += D > 0 ? "1e9999" : (D < 0 ? "-1e9999" : "0");
    return;
  }
  if (D == 0) {
    // "%g" prints "-0", which reads back as the integer 0 and drops the
    // sign bit; spell the zeroes so they stay doubles.
    Out += std::signbit(D) ? "-0.0" : "0.0";
    return;
  }
  char Buf[40];
  for (int Precision : {15, 16, 17}) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Precision, D);
    if (std::strtod(Buf, nullptr) == D)
      break;
  }
  Out += Buf;
}

void indentTo(std::string &Out, int Indent, int Depth) {
  Out.push_back('\n');
  Out.append(static_cast<size_t>(Indent) * Depth, ' ');
}

} // namespace

void Value::dumpTo(std::string &Out, int Indent, int Depth) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolV ? "true" : "false";
    break;
  case Kind::Int:
    Out += std::to_string(IntV);
    break;
  case Kind::Double:
    appendDouble(DoubleV, Out);
    break;
  case Kind::String:
    escapeString(StringV, Out);
    break;
  case Kind::Array: {
    Out.push_back('[');
    bool First = true;
    for (const Value &E : ArrayV) {
      if (!First)
        Out.push_back(',');
      First = false;
      if (Indent >= 0)
        indentTo(Out, Indent, Depth + 1);
      E.dumpTo(Out, Indent, Depth + 1);
    }
    if (Indent >= 0 && !ArrayV.empty())
      indentTo(Out, Indent, Depth);
    Out.push_back(']');
    break;
  }
  case Kind::Object: {
    Out.push_back('{');
    bool First = true;
    for (const auto &[Key, V] : ObjectV) {
      if (!First)
        Out.push_back(',');
      First = false;
      if (Indent >= 0)
        indentTo(Out, Indent, Depth + 1);
      escapeString(Key, Out);
      Out.push_back(':');
      if (Indent >= 0)
        Out.push_back(' ');
      V.dumpTo(Out, Indent, Depth + 1);
    }
    if (Indent >= 0 && !ObjectV.empty())
      indentTo(Out, Indent, Depth);
    Out.push_back('}');
    break;
  }
  }
}

std::string Value::dump(int Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  Value run() {
    Value V = parseValue();
    if (!Error.empty())
      return Value();
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing characters after the document");
      return Value();
    }
    return V;
  }

private:
  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at offset " + std::to_string(Pos);
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) == Word) {
      Pos += Word.size();
      return true;
    }
    return false;
  }

  Value parseValue() {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return Value();
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"')
      return Value(parseString());
    if (C == 't') {
      if (literal("true"))
        return Value(true);
    } else if (C == 'f') {
      if (literal("false"))
        return Value(false);
    } else if (C == 'n') {
      if (literal("null"))
        return Value(nullptr);
    } else if (C == '-' || std::isdigit(static_cast<unsigned char>(C))) {
      return parseNumber();
    }
    fail("unexpected character");
    return Value();
  }

  Value parseNumber() {
    size_t Start = Pos;
    bool IsDouble = false;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '+' || C == '-') {
        IsDouble = true;
        ++Pos;
      } else {
        break;
      }
    }
    std::string Num(Text.substr(Start, Pos - Start));
    if (Num.empty() || Num == "-") {
      fail("malformed number");
      return Value();
    }
    if (!IsDouble) {
      errno = 0;
      char *End = nullptr;
      long long I = std::strtoll(Num.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0')
        return Value(static_cast<int64_t>(I));
    }
    return Value(std::strtod(Num.c_str(), nullptr));
  }

  std::string parseString() {
    std::string Out;
    ++Pos; // opening quote
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          fail("truncated \\u escape");
          return Out;
        }
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else {
            fail("bad \\u escape");
            return Out;
          }
        }
        // UTF-8 encode the code point (BMP only; enough for our files).
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        fail("bad escape character");
        return Out;
      }
    }
    fail("unterminated string");
    return Out;
  }

  Value parseArray() {
    Value V = Value::array();
    ++Pos; // '['
    skipWs();
    if (consume(']'))
      return V;
    while (true) {
      V.push(parseValue());
      if (!Error.empty())
        return V;
      if (consume(']'))
        return V;
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return V;
      }
    }
  }

  Value parseObject() {
    Value V = Value::object();
    ++Pos; // '{'
    skipWs();
    if (consume('}'))
      return V;
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        fail("expected object key");
        return V;
      }
      std::string Key = parseString();
      if (!Error.empty())
        return V;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return V;
      }
      V.set(std::move(Key), parseValue());
      if (!Error.empty())
        return V;
      if (consume('}'))
        return V;
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return V;
      }
    }
  }

  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

Value json::parse(std::string_view Text, std::string &Error) {
  Error.clear();
  Parser P(Text, Error);
  return P.run();
}
