//===- Json.h - Minimal JSON value model ------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value model with a writer and a recursive-descent parser,
/// used by the observability sinks (Chrome trace-event files, stats files,
/// BENCH_*.json rows). Numbers are written with enough digits that a
/// double survives an emit -> parse round trip bit-exactly, which the
/// trace analyzer relies on when it cross-checks the aggregate stats.
/// Object keys keep insertion order so serialized output is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_JSON_H
#define WARPC_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace warpc {
namespace json {

/// One JSON value; a tagged union over the seven JSON types (integers are
/// kept distinct from doubles so counters print without a decimal point).
class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() : K(Kind::Null) {}
  Value(std::nullptr_t) : K(Kind::Null) {}
  Value(bool B) : K(Kind::Bool), BoolV(B) {}
  Value(int I) : K(Kind::Int), IntV(I) {}
  Value(unsigned U) : K(Kind::Int), IntV(static_cast<int64_t>(U)) {}
  Value(int64_t I) : K(Kind::Int), IntV(I) {}
  Value(uint64_t U) : K(Kind::Int), IntV(static_cast<int64_t>(U)) {}
  Value(double D) : K(Kind::Double), DoubleV(D) {}
  Value(const char *S) : K(Kind::String), StringV(S) {}
  Value(std::string S) : K(Kind::String), StringV(std::move(S)) {}

  static Value array() {
    Value V;
    V.K = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return BoolV; }
  int64_t integer() const {
    return K == Kind::Double ? static_cast<int64_t>(DoubleV) : IntV;
  }
  double number() const {
    return K == Kind::Int ? static_cast<double>(IntV) : DoubleV;
  }
  const std::string &str() const { return StringV; }

  // Array access.
  std::vector<Value> &elements() { return ArrayV; }
  const std::vector<Value> &elements() const { return ArrayV; }
  void push(Value V) { ArrayV.push_back(std::move(V)); }
  size_t size() const { return ArrayV.size(); }
  const Value &operator[](size_t I) const { return ArrayV[I]; }

  // Object access. Keys keep insertion order; set() replaces in place.
  const std::vector<std::pair<std::string, Value>> &members() const {
    return ObjectV;
  }
  void set(std::string Key, Value V);
  /// Member lookup; returns null for a missing key (a shared static).
  const Value &get(std::string_view Key) const;
  bool has(std::string_view Key) const;

  /// Serializes compactly (no whitespace) when \p Indent < 0, otherwise
  /// pretty-prints with \p Indent spaces per level.
  std::string dump(int Indent = -1) const;

private:
  void dumpTo(std::string &Out, int Indent, int Depth) const;

  Kind K;
  bool BoolV = false;
  int64_t IntV = 0;
  double DoubleV = 0;
  std::string StringV;
  std::vector<Value> ArrayV;
  std::vector<std::pair<std::string, Value>> ObjectV;
};

/// Appends \p Text JSON-escaped (quotes included) to \p Out.
void escapeString(std::string_view Text, std::string &Out);

/// Parses \p Text as one JSON document. On failure returns a null value
/// and sets \p Error to a message with a byte offset.
Value parse(std::string_view Text, std::string &Error);

} // namespace json
} // namespace warpc

#endif // WARPC_SUPPORT_JSON_H
