//===- Stats.cpp - Summary statistics -------------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace warpc;

void Summary::add(double Sample) { Samples.push_back(Sample); }

double Summary::mean() const {
  assert(!Samples.empty() && "mean of an empty summary");
  double Sum = 0;
  for (double S : Samples)
    Sum += S;
  return Sum / static_cast<double>(Samples.size());
}

double Summary::min() const {
  assert(!Samples.empty() && "min of an empty summary");
  return *std::min_element(Samples.begin(), Samples.end());
}

double Summary::max() const {
  assert(!Samples.empty() && "max of an empty summary");
  return *std::max_element(Samples.begin(), Samples.end());
}

double Summary::stddev() const {
  if (Samples.size() < 2)
    return 0;
  double M = mean();
  double Acc = 0;
  for (double S : Samples)
    Acc += (S - M) * (S - M);
  return std::sqrt(Acc / static_cast<double>(Samples.size() - 1));
}

double Summary::maxRelativeDeviation() const {
  assert(!Samples.empty() && "deviation of an empty summary");
  double M = mean();
  if (M == 0)
    return 0;
  double Worst = 0;
  for (double S : Samples)
    Worst = std::max(Worst, std::fabs(S - M) / std::fabs(M));
  return Worst;
}

double warpc::speedup(double Baseline, double Improved) {
  assert(Improved > 0 && "speedup with nonpositive improved time");
  return Baseline / Improved;
}
