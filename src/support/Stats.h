//===- Stats.h - Summary statistics -----------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics over repeated measurements. The paper runs each test
/// multiple times and reports the arithmetic mean, noting deviations within
/// 10% of the average (Section 4.2); Summary reproduces that methodology.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_STATS_H
#define WARPC_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace warpc {

/// Accumulates samples and reports mean / min / max / standard deviation.
class Summary {
public:
  void add(double Sample);

  size_t count() const { return Samples.size(); }
  bool empty() const { return Samples.empty(); }

  double mean() const;
  double min() const;
  double max() const;

  /// Sample standard deviation (N-1 denominator); zero for fewer than two
  /// samples.
  double stddev() const;

  /// Largest |sample - mean| / mean, the paper's "deviation of the
  /// individual measurements ... within 10% of the average" check. Returns
  /// zero when the mean is zero.
  double maxRelativeDeviation() const;

  const std::vector<double> &samples() const { return Samples; }

private:
  std::vector<double> Samples;
};

/// Returns speedup = \p Baseline / \p Improved; asserts on nonpositive
/// improved time.
double speedup(double Baseline, double Improved);

} // namespace warpc

#endif // WARPC_SUPPORT_STATS_H
