//===- Casting.h - isa/cast/dyn_cast ----------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-rolled RTTI in the LLVM style. Classes opt in by providing a
/// static classof(const Base *) predicate; compiler RTTI stays disabled.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_CASTING_H
#define WARPC_SUPPORT_CASTING_H

#include <cassert>

namespace warpc {

/// Returns true if \p V is an instance of To. \p V must be non-null.
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on a null pointer");
  return To::classof(V);
}

/// Checked downcast; asserts that \p V really is a To.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> to incompatible type");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> to incompatible type");
  return static_cast<const To *>(V);
}

/// Checking downcast; returns null when \p V is not a To.
template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace warpc

#endif // WARPC_SUPPORT_CASTING_H
