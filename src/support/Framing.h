//===- Framing.h - Generic checksummed frame transport ----------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared frame layer under every warpc socket protocol. A frame is
///
///   u32 magic | u8 version | u8 type | u32 payload length
///   payload bytes...
///   u64 fnv1a-64 checksum of the payload
///
/// parameterized by a FrameSpec (magic word, protocol version, highest
/// valid type byte, payload cap) so the master/worker protocol
/// (parallel/WireProtocol.h, magic 'WRP1') and the compile-service
/// protocol (service/Protocol.h, magic 'WSV1') share one encoder and one
/// incremental decoder — and therefore one set of robustness guarantees:
/// any malformation is a sticky Corrupt verdict, truncation is NeedMore
/// forever (resolved by the peer's EOF), and no fed byte sequence can
/// crash, hang, or yield a frame that was not sent.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_FRAMING_H
#define WARPC_SUPPORT_FRAMING_H

#include <cstdint>
#include <string>
#include <vector>

namespace warpc {
namespace framing {

/// magic + version + type + payload length.
inline constexpr size_t FrameHeaderSize = 10;
/// Trailing payload checksum.
inline constexpr size_t FrameTrailerSize = 8;

/// What distinguishes one warpc frame protocol from another. Frames from
/// a peer speaking a different spec fail on the magic (or version) check
/// and poison the stream — cross-protocol confusion can never decode.
struct FrameSpec {
  uint32_t Magic = 0;
  uint8_t Version = 1;
  /// Valid type bytes are 1..MaxType; 0 is reserved-invalid.
  uint8_t MaxType = 0;
  /// Largest payload the decoder will buffer.
  uint32_t MaxPayload = 64u << 20;
};

/// A decoded frame: the raw type byte (the protocol layer casts it to its
/// own enum) and the verified payload.
struct RawFrame {
  uint8_t Type = 0;
  std::vector<uint8_t> Payload;
};

/// Encodes one whole frame (header + payload + checksum) under \p Spec.
std::vector<uint8_t> encodeFrame(const FrameSpec &Spec, uint8_t Type,
                                 const std::vector<uint8_t> &Payload);

enum class DecodeStatus : uint8_t {
  NeedMore, ///< No complete frame buffered yet.
  Ready,    ///< \p Out holds the next frame.
  Corrupt,  ///< The stream is damaged beyond resync; discard the peer.
};

/// Incremental frame scanner over a byte stream. Corruption is sticky:
/// once a header or checksum fails, nothing later in the stream can be
/// trusted (frames carry no resync markers), so every subsequent next()
/// also reports Corrupt and the caller must drop the connection.
class Decoder {
public:
  explicit Decoder(const FrameSpec &Spec) : Spec(Spec) {}

  void feed(const uint8_t *Data, size_t Size);
  DecodeStatus next(RawFrame &Out);

  bool corrupt() const { return Failed; }
  const std::string &error() const { return Error; }
  /// Bytes buffered but not yet consumed (a nonzero value at EOF means
  /// the peer died mid-frame).
  size_t bufferedBytes() const { return Buf.size() - Pos; }

private:
  void fail(const std::string &Why);
  FrameSpec Spec;
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
  bool Failed = false;
  std::string Error;
};

} // namespace framing
} // namespace warpc

#endif // WARPC_SUPPORT_FRAMING_H
