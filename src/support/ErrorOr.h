//===- ErrorOr.h - Result-or-error utility ----------------------*- C++ -*-===//
//
// Part of the warpc project: a reproduction of "Parallel Compilation for a
// Parallel Machine" (Gross, Zobel, Zolg; PLDI 1989).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight result-or-error type used throughout the library for
/// recoverable errors (malformed source programs, bad configuration).
/// Programmatic errors are handled with assert, following the LLVM
/// error-handling philosophy; exceptions and RTTI are not used.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_ERROROR_H
#define WARPC_SUPPORT_ERROROR_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace warpc {

/// A recoverable error carrying a human-readable message.
///
/// Messages follow the convention of starting with a lowercase letter and
/// omitting a trailing period, so they compose well after "error: ".
class Error {
public:
  explicit Error(std::string Message) : Message(std::move(Message)) {}

  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Holds either a value of type \p T or an Error describing why the value
/// could not be produced.
///
/// Typical usage:
/// \code
///   ErrorOr<Module> M = parseModule(Source);
///   if (!M)
///     return M.takeError();
///   use(*M);
/// \endcode
template <typename T> class ErrorOr {
public:
  /// Construct a success value.
  ErrorOr(T Value) : Storage(std::move(Value)) {}

  /// Construct a failure value.
  ErrorOr(Error Err) : Storage(std::move(Err)) {}

  /// Returns true when a value is present.
  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  /// Returns the contained value. Must only be called on success values.
  T &operator*() {
    assert(*this && "dereferencing an ErrorOr in error state");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(*this && "dereferencing an ErrorOr in error state");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  /// Returns the error. Must only be called on failure values.
  const Error &getError() const {
    assert(!*this && "no error present");
    return std::get<Error>(Storage);
  }

  /// Moves the error out, for propagation to the caller.
  Error takeError() {
    assert(!*this && "no error present");
    return std::move(std::get<Error>(Storage));
  }

  /// Moves the value out of a success result.
  T takeValue() {
    assert(*this && "no value present");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

/// Creates an Error from a message, mirroring llvm::createStringError.
inline Error makeError(std::string Message) { return Error(std::move(Message)); }

} // namespace warpc

#endif // WARPC_SUPPORT_ERROROR_H
