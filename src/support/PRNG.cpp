//===- PRNG.cpp - Deterministic pseudo-random numbers ---------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/PRNG.h"

#include <cassert>
#include <cmath>

using namespace warpc;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void PRNG::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t PRNG::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double PRNG::uniform() {
  // 53 bits of mantissa gives a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double PRNG::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "inverted uniform range");
  return Lo + (Hi - Lo) * uniform();
}

uint64_t PRNG::below(uint64_t Bound) {
  assert(Bound != 0 && "bound must be nonzero");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  while (true) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

double PRNG::exponential(double Mean) {
  assert(Mean > 0 && "mean must be positive");
  double U = uniform();
  // Guard against log(0).
  if (U <= 0)
    U = 0x1.0p-53;
  return -Mean * std::log(U);
}
