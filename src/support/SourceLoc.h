//===- SourceLoc.h - Source locations --------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column source locations used by the W2 front end and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_SOURCELOC_H
#define WARPC_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace warpc {

/// A position in a W2 source buffer. Lines and columns are 1-based; the
/// default-constructed location is invalid and prints as "<unknown>".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  /// Renders the location as "line:column" for diagnostics.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

} // namespace warpc

#endif // WARPC_SUPPORT_SOURCELOC_H
