//===- BitSet.h - Dense bit vectors -----------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense fixed-universe bit vector for the classic iterative dataflow
/// problems in opt/ (liveness, reaching definitions). Set operations work
/// a word at a time.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SUPPORT_BITSET_H
#define WARPC_SUPPORT_BITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace warpc {

/// Fixed-size set of small integers backed by 64-bit words.
class BitSet {
public:
  BitSet() = default;
  explicit BitSet(size_t Universe)
      : NumBits(Universe), Words((Universe + 63) / 64, 0) {}

  size_t universe() const { return NumBits; }

  void set(size_t Bit) {
    assert(Bit < NumBits && "bit out of range");
    Words[Bit / 64] |= uint64_t(1) << (Bit % 64);
  }

  void reset(size_t Bit) {
    assert(Bit < NumBits && "bit out of range");
    Words[Bit / 64] &= ~(uint64_t(1) << (Bit % 64));
  }

  bool test(size_t Bit) const {
    assert(Bit < NumBits && "bit out of range");
    return (Words[Bit / 64] >> (Bit % 64)) & 1;
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// This |= Other. Returns true when this set changed.
  bool unionWith(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "universe mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// This &= Other.
  void intersectWith(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= Other.Words[I];
  }

  /// This -= Other.
  void subtract(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "universe mismatch");
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~Other.Words[I];
  }

  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  friend bool operator==(const BitSet &A, const BitSet &B) {
    return A.NumBits == B.NumBits && A.Words == B.Words;
  }

private:
  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace warpc

#endif // WARPC_SUPPORT_BITSET_H
