//===- Client.h - Compile-service client ------------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The blocking client side of the compile service: connect + hello
/// handshake, then synchronous compile / cancel / stats calls. warpc
/// --server, the daemon tests, and bench/ablation_daemon all speak
/// through this class; it owns one connection and may pipeline requests
/// from one thread (submit() then await()).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SERVICE_CLIENT_H
#define WARPC_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace warpc {
namespace service {

/// Default rendezvous path when the user names none: per-uid under
/// /tmp, matching what warpd binds without --socket.
std::string defaultSocketPath();

/// Terminal outcome of one request as seen by the client.
struct RequestOutcome {
  bool Accepted = false; ///< False: rejected at admission (see Reject).
  wire::CompileResultMsg Result;
  wire::RejectedMsg Reject;
};

class Client {
public:
  Client() = default;
  ~Client();
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects and completes the hello exchange. False + \p Error when
  /// the socket is absent, refuses, or negotiation fails.
  bool connect(const std::string &SocketPath, std::string &Error);
  void close();
  bool connected() const { return Fd >= 0; }
  const wire::ServerHelloMsg &serverHello() const { return Hello; }

  /// When the ClientHello frame was sent / the ServerHello arrived, on
  /// this process's steady clock. Together with the daemon-side stamps
  /// echoed in serverHello() these are the four inputs to
  /// obs::estimateClockOffset, letting a tracing caller express daemon
  /// shard timestamps on its own recorder clock.
  std::chrono::steady_clock::time_point helloSendTime() const {
    return HelloSendTp;
  }
  std::chrono::steady_clock::time_point helloRecvTime() const {
    return HelloRecvTp;
  }

  /// Sends one CompileRequest without waiting (pipelining). \p Msg's
  /// RequestId must be nonzero and unique among this connection's
  /// outstanding requests.
  bool submit(const wire::CompileRequestMsg &Msg, std::string &Error);

  /// Blocks until the outcome of \p RequestId arrives (responses for
  /// other outstanding requests are buffered for their own await()).
  /// False + \p Error on transport failure or timeout.
  bool await(uint64_t RequestId, RequestOutcome &Out, std::string &Error,
             double TimeoutSec = 300.0);

  /// submit() + await() in one call.
  bool compile(const wire::CompileRequestMsg &Msg, RequestOutcome &Out,
               std::string &Error, double TimeoutSec = 300.0);

  /// Sends a Cancel for \p RequestId (the outcome still arrives via
  /// await(), as Cancelled if the cancel won the race).
  bool cancel(uint64_t RequestId, std::string &Error);

  /// Round-trips a StatsRequest.
  bool serverStats(wire::ServerStatsMsg &Out, std::string &Error,
                   double TimeoutSec = 30.0);

private:
  bool sendBytes(const std::vector<uint8_t> &Bytes, std::string &Error);
  /// Reads until one frame is available; false on EOF/corrupt/timeout.
  bool readFrame(wire::Frame &Out, std::string &Error, double TimeoutSec);

  int Fd = -1;
  wire::FrameDecoder Decoder;
  wire::ServerHelloMsg Hello;
  std::chrono::steady_clock::time_point HelloSendTp;
  std::chrono::steady_clock::time_point HelloRecvTp;
  /// Outcomes that arrived while awaiting a different request.
  std::map<uint64_t, RequestOutcome> Pending;
};

} // namespace service
} // namespace warpc

#endif // WARPC_SERVICE_CLIENT_H
