//===- Server.h - The warpd compile service ---------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident compile service behind warpd: a single event-loop thread
/// owning an AF_UNIX listening socket, every client connection, and the
/// bounded fair RequestQueue; plus a fixed pool of executor threads that
/// drive admitted requests through the existing engines
/// (driver::compileModuleSequential, parallel::compileModuleParallel,
/// parallel::compileModuleProcess) against one shared cache::CompileCache.
///
/// The paper's master compiled one module for one user and exited; this
/// is the long-lived front end the ROADMAP's service north-star needs.
/// The structural rules:
///
///  * Admission is explicit. A request is either admitted (and then owed
///    exactly one terminal CompileResult — Ok, CompileError, Cancelled,
///    or DeadlineExpired) or answered Rejected{queue_full | draining |
///    version | bad_request} on the spot. Nothing is silently dropped.
///  * Fairness and priority live in RequestQueue (round-robin across
///    connections within a priority tier); deadline expiry is checked at
///    dispatch so a doomed request never occupies an executor.
///  * Drain (SIGTERM) stops accepting connections and admitting work,
///    completes everything already admitted, flushes every outbox, and
///    only then lets the loop exit — the same "finish what you started"
///    discipline the worker pool's shutdown handshake has.
///  * Client death is a cancellation: queued requests are unlinked,
///    in-flight results are discarded on completion, and the executor
///    pool is never poisoned — the next request sees a healthy service.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SERVICE_SERVER_H
#define WARPC_SERVICE_SERVER_H

#include "cache/CompileCache.h"
#include "driver/FaultPolicy.h"
#include "service/Protocol.h"
#include "service/RequestQueue.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace warpc {
namespace obs {
class MetricsRegistry;
class TraceRecorder;
} // namespace obs

namespace service {

struct ServiceConfig {
  std::string SocketPath;
  /// Engine for requests that say RequestEngine::Default:
  /// "sequential", "thread", or "process".
  std::string Engine = "sequential";
  /// Worker count for requests that say 0.
  unsigned DefaultWorkers = 1;
  /// Executor threads == maximum concurrently compiling requests.
  unsigned MaxInFlight = 2;
  /// Bound on admitted-but-not-dispatched requests (RequestQueue size).
  unsigned MaxQueue = 64;
  /// warp-worker path for process-engine requests; empty resolves via
  /// parallel::defaultWorkerBinary().
  std::string WorkerBinary;
  cache::CacheMode CacheMode = cache::CacheMode::Memory;
  std::string CacheDir;
  /// Retry/timeout policy shared by every request.
  driver::FaultPolicy Policy;
  /// Watchdog for process-engine requests.
  double WatchdogSec = 10.0;
  /// Fault plan shipped to process-engine workers (tests only).
  driver::ProcessFaultPlan Faults;
  /// Test hook: sleep this long in the executor before each compile, so
  /// lifecycle tests can hold requests in flight deterministically.
  double DebugCompileDelaySec = 0.0;
};

class CompileService {
public:
  /// A non-null \p Metrics receives the service.* counters, gauges, and
  /// latency histograms (otherwise an internal registry collects them
  /// for statsSnapshot()). A non-null \p Rec (Steady domain) receives a
  /// SpanSchedule per request on lane 0 (queue residence) and a
  /// SpanCompile on lane 1+executor with a causal Parent link; the
  /// caller labels the session via Rec->setEngine("daemon").
  explicit CompileService(ServiceConfig Config,
                          obs::MetricsRegistry *Metrics = nullptr,
                          obs::TraceRecorder *Rec = nullptr);
  ~CompileService();
  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Binds and listens on Config.SocketPath and starts the loop and
  /// executor threads. A live daemon already serving the path is a
  /// startup failure; a stale socket file (nothing accepting) is
  /// unlinked and taken over. False + \p Error on failure.
  bool start(std::string &Error);

  /// Begins a graceful drain (async-signal-safe: a SIGTERM handler may
  /// call this). No new connections or requests are admitted; admitted
  /// work completes and is delivered; then the loop exits.
  void requestDrain();

  /// Hard stop: the loop exits now, queued requests are dropped, and
  /// in-flight compiles finish into the void. For tests and fatal paths.
  void stop();

  /// Joins the loop and executor threads (after requestDrain()/stop(),
  /// or blocks until one happens).
  void wait();

  bool running() const { return LoopRunning.load(); }
  const std::string &socketPath() const { return Config.SocketPath; }

  /// Live counters in wire form (also what StatsRequest answers with).
  wire::ServerStatsMsg statsSnapshot() const;

private:
  struct Conn {
    int Fd = -1;
    uint64_t Id = 0;
    wire::FrameDecoder Decoder;
    std::vector<uint8_t> Outbox;
    size_t OutPos = 0;
    bool HelloDone = false;
    /// Flush the outbox, then close (protocol errors, version rejects).
    bool CloseAfterFlush = false;
    /// A write failed (EPIPE): the loop closes this connection at the
    /// next safe point. Deferred so frame handlers never invalidate the
    /// Conn reference they are working on.
    bool Broken = false;
    /// RequestIds admitted (queued or in flight) on this connection;
    /// guards against duplicate-id confusion.
    std::set<uint64_t> PendingIds;
  };

  /// Executor handoff: one admitted request leaving the queue.
  struct Dispatch {
    uint64_t Seq = 0;
    uint64_t ConnId = 0;
    wire::CompileRequestMsg Msg;
    double EnqueuedSec = 0.0;
    double DispatchedSec = 0.0;
    uint64_t ScheduleSpanId = 0;
  };

  /// Executor -> loop: a finished compile.
  struct Completion {
    uint64_t Seq = 0;
    uint64_t ConnId = 0;
    uint8_t Priority = 0; ///< Request priority, for the queue-wait split.
    wire::CompileResultMsg Result;
  };

  struct InFlightInfo {
    uint64_t ConnId = 0;
    uint64_t RequestId = 0;
    bool Cancelled = false;
    bool OwnerGone = false;
  };

  void loopMain();
  void executorMain(unsigned Index);
  Completion runCompile(const Dispatch &D, unsigned ExecutorIndex);

  void acceptNew();
  void handleReadable(Conn &C);
  void handleFrame(Conn &C, const wire::Frame &F);
  void handleRequest(Conn &C, const wire::CompileRequestMsg &Msg);
  void handleCancel(Conn &C, const wire::CancelMsg &Msg);
  void sendFrame(Conn &C, wire::MsgType Type,
                 const std::vector<uint8_t> &Payload);
  bool flushOutbox(Conn &C);
  void closeConn(uint64_t ConnId);
  void respondTerminal(uint64_t ConnId, wire::CompileResultMsg Result);
  void pumpDispatch();
  void beginDrainInLoop();
  double nowSec() const;

  ServiceConfig Config;
  obs::MetricsRegistry *Met = nullptr; ///< External or &OwnMetrics.
  std::unique_ptr<obs::MetricsRegistry> OwnMetrics;
  obs::TraceRecorder *Rec = nullptr;
  std::unique_ptr<cache::CompileCache> Cache;

  int ListenFd = -1;
  int WakeRead = -1;
  int WakeWrite = -1;
  bool SocketBound = false;

  std::thread LoopThread;
  std::vector<std::thread> Executors;
  std::atomic<bool> LoopRunning{false};
  std::atomic<bool> DrainFlag{false};
  std::atomic<bool> StopFlag{false};
  bool DrainStarted = false;

  // Loop-thread-only state.
  std::map<uint64_t, Conn> Conns;
  uint64_t NextConnId = 1;
  uint64_t NextSeq = 1;
  RequestQueue Queue;
  std::map<uint64_t, InFlightInfo> InFlight;

  // Executor handoff channel.
  std::mutex ExecMu;
  std::condition_variable ExecCv;
  std::deque<Dispatch> ExecQ;
  bool ChannelClosed = false;

  // Completion channel (executors -> loop).
  std::mutex DoneMu;
  std::deque<Completion> DoneQ;

  // Aggregate counters (loop thread writes, statsSnapshot reads).
  mutable std::mutex StatsMu;
  wire::ServerStatsMsg Counters;

  std::chrono::steady_clock::time_point Epoch;
};

} // namespace service
} // namespace warpc

#endif // WARPC_SERVICE_SERVER_H
