//===- RequestQueue.cpp - Bounded fair admission queue --------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/RequestQueue.h"

#include <algorithm>

using namespace warpc;
using namespace warpc::service;

bool RequestQueue::push(QueuedRequest R) {
  if (Count >= MaxQueued)
    return false;
  Tier &T = tierFor(R.Msg.Priority);
  const uint64_t Conn = R.ConnId;
  auto It = T.PerConn.find(Conn);
  if (It == T.PerConn.end()) {
    It = T.PerConn.emplace(Conn, std::deque<QueuedRequest>()).first;
    T.Order.push_back(Conn);
  }
  It->second.push_back(std::move(R));
  ++Count;
  return true;
}

bool RequestQueue::Tier::popNext(QueuedRequest &Out) {
  // Visit connections round-robin from the cursor; a connection whose
  // subqueue drained is unlinked lazily here so the cursor stays cheap.
  while (!Order.empty()) {
    if (Cursor >= Order.size())
      Cursor = 0;
    const uint64_t Conn = Order[Cursor];
    auto It = PerConn.find(Conn);
    if (It == PerConn.end() || It->second.empty()) {
      if (It != PerConn.end())
        PerConn.erase(It);
      Order.erase(Order.begin() + static_cast<long>(Cursor));
      continue;
    }
    Out = std::move(It->second.front());
    It->second.pop_front();
    // Advance past this connection so its next request waits its turn.
    ++Cursor;
    return true;
  }
  return false;
}

bool RequestQueue::pop(QueuedRequest &Out) {
  if (High.popNext(Out) || Normal.popNext(Out)) {
    --Count;
    return true;
  }
  return false;
}

void RequestQueue::expireDeadlines(double NowSec,
                                   std::vector<QueuedRequest> &Expired) {
  for (Tier *T : {&High, &Normal}) {
    for (auto &[Conn, Q] : T->PerConn) {
      for (auto It = Q.begin(); It != Q.end();) {
        const uint32_t Ms = It->Msg.DeadlineMs;
        if (Ms != 0 && NowSec - It->EnqueuedSec >= Ms / 1000.0) {
          Expired.push_back(std::move(*It));
          It = Q.erase(It);
          --Count;
        } else {
          ++It;
        }
      }
    }
  }
}

size_t RequestQueue::dropConnection(uint64_t ConnId) {
  size_t Dropped = 0;
  for (Tier *T : {&High, &Normal}) {
    auto It = T->PerConn.find(ConnId);
    if (It != T->PerConn.end()) {
      Dropped += It->second.size();
      It->second.clear();
      // The Order entry is unlinked lazily by popNext.
    }
  }
  Count -= Dropped;
  return Dropped;
}

bool RequestQueue::cancel(uint64_t ConnId, uint64_t RequestId,
                          QueuedRequest &Out) {
  for (Tier *T : {&High, &Normal}) {
    auto It = T->PerConn.find(ConnId);
    if (It == T->PerConn.end())
      continue;
    auto Found = std::find_if(
        It->second.begin(), It->second.end(),
        [&](const QueuedRequest &R) { return R.Msg.RequestId == RequestId; });
    if (Found != It->second.end()) {
      Out = std::move(*Found);
      It->second.erase(Found);
      --Count;
      return true;
    }
  }
  return false;
}
