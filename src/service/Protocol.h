//===- Protocol.h - Compile-service wire protocol ---------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed request/response protocol between warpc clients and the
/// warpd compile service, built on the same support/Framing transport as
/// the master/worker protocol (its own 'WSV1' magic, so the two streams
/// can never be confused) and support/BinaryStream payload codecs.
///
/// Session shape: the client opens an AF_UNIX stream connection and sends
/// ClientHello; the server answers ServerHello (or Rejected{version} and
/// closes — version negotiation happens before any work is admitted).
/// After the handshake the client may pipeline any number of
/// CompileRequest / Cancel / StatsRequest frames; the server answers each
/// CompileRequest with exactly one CompileResult or Rejected, in
/// whatever order requests finish. Every admitted request gets exactly
/// one terminal response — backpressure is an explicit
/// Rejected{queue_full}, never a silent drop.
///
/// ComPar-style per-request configuration (engine, worker count, cache
/// participation, priority, deadline) rides in the CompileRequest frame,
/// so one resident daemon serves heterogeneous client policies without
/// restarts.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SERVICE_PROTOCOL_H
#define WARPC_SERVICE_PROTOCOL_H

#include "support/Framing.h"

#include <cstdint>
#include <string>
#include <vector>

namespace warpc {
namespace service {
namespace wire {

/// "WSV1" little-endian: rejects master/worker ('WRP1') and foreign
/// streams outright.
inline constexpr uint32_t FrameMagic = 0x31565357;
inline constexpr uint8_t ProtocolVersion = 1;
/// Compile sources and result images are at most a few MiB; 64 MiB
/// bounds even absurd generated modules, matching the worker protocol.
inline constexpr uint32_t MaxFramePayload = 64u << 20;

enum class MsgType : uint8_t {
  ClientHello = 1,    ///< client -> server: version + pid.
  ServerHello = 2,    ///< server -> client: version + capacity.
  CompileRequest = 3, ///< client -> server: one module to compile.
  CompileResult = 4,  ///< server -> client: terminal outcome of a request.
  Rejected = 5,       ///< server -> client: request refused at admission.
  Cancel = 6,         ///< client -> server: abandon a pending request.
  StatsRequest = 7,   ///< client -> server: ask for a ServerStats frame.
  ServerStats = 8,    ///< server -> client: live service counters.
};
inline constexpr uint8_t MaxMsgType =
    static_cast<uint8_t>(MsgType::ServerStats);

/// The compile-service instantiation of the shared frame layer.
inline constexpr framing::FrameSpec Spec = {FrameMagic, ProtocolVersion,
                                            MaxMsgType, MaxFramePayload};

struct Frame {
  MsgType Type = MsgType::ClientHello;
  std::vector<uint8_t> Payload;
};

std::vector<uint8_t> encodeFrame(MsgType Type,
                                 const std::vector<uint8_t> &Payload);

using DecodeStatus = framing::DecodeStatus;

/// Typed view of framing::Decoder bound to the service Spec; same sticky
/// corruption and zero-phantom-frame guarantees as the worker protocol.
class FrameDecoder {
public:
  FrameDecoder() : Inner(Spec) {}

  void feed(const uint8_t *Data, size_t Size) { Inner.feed(Data, Size); }
  DecodeStatus next(Frame &Out);

  bool corrupt() const { return Inner.corrupt(); }
  const std::string &error() const { return Inner.error(); }
  size_t bufferedBytes() const { return Inner.bufferedBytes(); }

private:
  framing::Decoder Inner;
};

// --- Message payloads ----------------------------------------------------

struct ClientHelloMsg {
  uint32_t Protocol = ProtocolVersion;
  uint64_t Pid = 0;
};

struct ServerHelloMsg {
  uint32_t Protocol = ProtocolVersion;
  uint64_t Pid = 0;
  uint32_t MaxQueue = 0;
  uint32_t MaxInFlight = 0;
  /// The daemon's half of the NTP-style clock exchange (see
  /// obs::estimateClockOffset): when the ClientHello arrived and when
  /// this ServerHello was sent, both in seconds on the daemon's steady
  /// clock. Optional trailing fields — an older daemon sends nothing and
  /// the client then splices daemon shards with offset 0 plus clamping.
  double HelloRecvSec = 0;
  double HelloSendSec = 0;
};

/// Which backend compiles the request's functions.
enum class RequestEngine : uint8_t {
  Default = 0, ///< whatever the daemon was started with.
  Thread = 1,  ///< in-process thread pool.
  Process = 2, ///< fork/exec warp-worker pool.
};

struct CompileRequestMsg {
  /// Client-chosen id, unique per connection; echoed in the response.
  uint64_t RequestId = 0;
  std::string ModuleSource;
  uint8_t Engine = 0;  ///< RequestEngine.
  uint32_t Workers = 0; ///< 0 = daemon default.
  uint8_t UseCache = 1; ///< 0 opts this request out of the shared cache.
  uint8_t Priority = 0; ///< 0 = normal, 1 = high (served first).
  /// Admission-to-dispatch budget in milliseconds; 0 = none. A request
  /// still queued when its deadline lapses completes as DeadlineExpired
  /// instead of occupying an executor.
  uint32_t DeadlineMs = 0;
  /// Distributed-trace propagation (optional trailing fields; old frames
  /// decode with zeros). TraceId == 0 means the client is not tracing
  /// and the daemon records no per-request spans and ships no shard;
  /// ParentSpanId is the client-side span this request is caused by.
  uint64_t TraceId = 0;
  uint64_t ParentSpanId = 0;
};

enum class ResultStatus : uint8_t {
  Ok = 0,
  CompileError = 1,    ///< diagnostics in DiagText, no image.
  Cancelled = 2,       ///< client cancel or disconnect won the race.
  DeadlineExpired = 3, ///< queued past the request's deadline.
};

struct CompileResultMsg {
  uint64_t RequestId = 0;
  uint8_t Status = 0; ///< ResultStatus.
  std::string ModuleName;
  uint32_t NumSections = 0;
  uint32_t NumFunctions = 0;
  std::string DiagText;
  std::vector<uint8_t> Image;
  std::string EngineUsed;
  uint32_t WorkersUsed = 0;
  double QueueSec = 0.0;
  double CompileSec = 0.0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  /// Encoded obs::SpanShard with the daemon's request lifecycle spans
  /// (and the worker spans already spliced into them) for this request
  /// (optional trailing field; empty from old daemons or untraced
  /// requests). A shard that fails to decode is dropped, never fatal.
  std::vector<uint8_t> ShardBytes;
};

enum class RejectReason : uint8_t {
  QueueFull = 0,       ///< bounded admission queue at capacity.
  Draining = 1,        ///< SIGTERM received; no new work admitted.
  VersionMismatch = 2, ///< hello negotiation failed.
  BadRequest = 3,      ///< malformed payload or duplicate request id.
};

struct RejectedMsg {
  uint64_t RequestId = 0; ///< 0 when rejecting the hello itself.
  uint8_t Reason = 0;     ///< RejectReason.
  std::string Detail;
};

struct CancelMsg {
  uint64_t RequestId = 0;
};

/// p50/p95/p99 of one server-side histogram plus its sample count; the
/// unit is whatever the histogram records (seconds here).
struct QuantileSummary {
  uint64_t Count = 0;
  double P50 = 0.0;
  double P95 = 0.0;
  double P99 = 0.0;
};

/// Completed-request latency quantiles for one backend engine.
struct EngineLatency {
  std::string Engine;
  QuantileSummary Latency;
};

/// Hard cap on per-engine rows a decoder will accept (there are three
/// real engines; the bound guards allocation against a hostile peer).
inline constexpr uint32_t MaxEngineLatencyRows = 16;

struct ServerStatsMsg {
  uint64_t Accepted = 0;
  uint64_t Rejected = 0;
  uint64_t Completed = 0;
  uint64_t Cancelled = 0;
  uint64_t Expired = 0;
  uint32_t QueueDepth = 0;
  uint32_t InFlight = 0;
  uint32_t Connections = 0;
  double P50Ms = 0.0;
  double P95Ms = 0.0;
  double P99Ms = 0.0;
  // Optional trailing extension (old frames decode with empty values):
  // queue-wait quantiles split by request priority and end-to-end
  // request latency split by backend engine, the live decomposition
  // warp-top renders.
  QuantileSummary QueueWaitNormal; ///< seconds, priority 0.
  QuantileSummary QueueWaitHigh;   ///< seconds, priority 1.
  std::vector<EngineLatency> EngineLatencies; ///< seconds, per engine.
};

std::vector<uint8_t> encodeClientHello(const ClientHelloMsg &M);
bool decodeClientHello(const std::vector<uint8_t> &Payload,
                       ClientHelloMsg &Out);

std::vector<uint8_t> encodeServerHello(const ServerHelloMsg &M);
bool decodeServerHello(const std::vector<uint8_t> &Payload,
                       ServerHelloMsg &Out);

std::vector<uint8_t> encodeCompileRequest(const CompileRequestMsg &M);
bool decodeCompileRequest(const std::vector<uint8_t> &Payload,
                          CompileRequestMsg &Out);

std::vector<uint8_t> encodeCompileResult(const CompileResultMsg &M);
bool decodeCompileResult(const std::vector<uint8_t> &Payload,
                         CompileResultMsg &Out);

std::vector<uint8_t> encodeRejected(const RejectedMsg &M);
bool decodeRejected(const std::vector<uint8_t> &Payload, RejectedMsg &Out);

std::vector<uint8_t> encodeCancel(const CancelMsg &M);
bool decodeCancel(const std::vector<uint8_t> &Payload, CancelMsg &Out);

std::vector<uint8_t> encodeServerStats(const ServerStatsMsg &M);
bool decodeServerStats(const std::vector<uint8_t> &Payload,
                       ServerStatsMsg &Out);

} // namespace wire
} // namespace service
} // namespace warpc

#endif // WARPC_SERVICE_PROTOCOL_H
