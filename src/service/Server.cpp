//===- Server.cpp - The warpd compile service -----------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "cache/CacheKey.h"
#include "codegen/MachineModel.h"
#include "driver/Compiler.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceContext.h"
#include "obs/TraceRecorder.h"
#include "parallel/ProcessRunner.h"
#include "parallel/ThreadRunner.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

using namespace warpc;
using namespace warpc::service;

namespace {

/// Per-request view of the shared cache: forwards to the service-wide
/// CompileCache but tallies hits/misses locally, so each CompileResult
/// reports its own cache interaction even when many requests share the
/// store concurrently.
class CountingCache : public driver::FunctionResultCache {
public:
  explicit CountingCache(driver::FunctionResultCache &Inner) : Inner(Inner) {}

  std::optional<driver::FunctionResult>
  lookup(const w2::SectionDecl &Section, const w2::FunctionDecl &F) override {
    std::optional<driver::FunctionResult> R = Inner.lookup(Section, F);
    if (R)
      ++Hits;
    else
      ++Misses;
    return R;
  }

  void store(const w2::SectionDecl &Section, const w2::FunctionDecl &F,
             const driver::FunctionResult &R) override {
    Inner.store(Section, F, R);
  }

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }

private:
  driver::FunctionResultCache &Inner;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

} // namespace

CompileService::CompileService(ServiceConfig ConfigIn,
                               obs::MetricsRegistry *Metrics,
                               obs::TraceRecorder *RecIn)
    : Config(std::move(ConfigIn)),
      Queue(Config.MaxQueue ? Config.MaxQueue : 1) {
  if (Config.MaxInFlight == 0)
    Config.MaxInFlight = 1;
  if (Config.MaxQueue == 0)
    Config.MaxQueue = 1;
  if (Metrics) {
    Met = Metrics;
  } else {
    OwnMetrics = std::make_unique<obs::MetricsRegistry>();
    Met = OwnMetrics.get();
  }
  Rec = RecIn;
  Epoch = std::chrono::steady_clock::now();
}

CompileService::~CompileService() {
  if (LoopRunning.load())
    stop();
  wait();
}

double CompileService::nowSec() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Epoch)
      .count();
}

bool CompileService::start(std::string &Error) {
  if (Config.SocketPath.empty()) {
    Error = "service: empty socket path";
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Config.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "service: socket path too long: " + Config.SocketPath;
    return false;
  }
  std::strncpy(Addr.sun_path, Config.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  // Stale-socket detection: a path that still accepts connections is a
  // live daemon (refuse to fight it); one that refuses is a leftover
  // from a SIGKILLed run and is taken over.
  if (::access(Config.SocketPath.c_str(), F_OK) == 0) {
    const int Probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Probe >= 0) {
      const int RC = ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                               sizeof(Addr));
      ::close(Probe);
      if (RC == 0) {
        Error = "service: another daemon is already serving " +
                Config.SocketPath;
        return false;
      }
    }
    ::unlink(Config.SocketPath.c_str());
  }

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ListenFd < 0) {
    Error = std::string("service: socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Error = std::string("service: bind ") + Config.SocketPath + ": " +
            std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  SocketBound = true;
  if (::listen(ListenFd, 64) < 0) {
    Error = std::string("service: listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Config.SocketPath.c_str());
    SocketBound = false;
    return false;
  }

  int Pipe[2];
  if (::pipe2(Pipe, O_CLOEXEC | O_NONBLOCK) < 0) {
    Error = std::string("service: pipe2: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Config.SocketPath.c_str());
    SocketBound = false;
    return false;
  }
  WakeRead = Pipe[0];
  WakeWrite = Pipe[1];

  if (Config.CacheMode != cache::CacheMode::Off)
    Cache = std::make_unique<cache::CompileCache>(
        Config.CacheMode,
        cache::CacheContext::forModel(codegen::MachineModel::warpCell()),
        Config.CacheDir, Met);

  if (Rec)
    Rec->makeLanes(1 + Config.MaxInFlight);

  LoopRunning.store(true);
  for (unsigned E = 0; E != Config.MaxInFlight; ++E)
    Executors.emplace_back([this, E] { executorMain(E); });
  LoopThread = std::thread([this] { loopMain(); });
  return true;
}

void CompileService::requestDrain() {
  DrainFlag.store(true);
  if (WakeWrite >= 0) {
    const char B = 'w';
    [[maybe_unused]] ssize_t RC = ::write(WakeWrite, &B, 1);
  }
}

void CompileService::stop() {
  StopFlag.store(true);
  if (WakeWrite >= 0) {
    const char B = 'w';
    [[maybe_unused]] ssize_t RC = ::write(WakeWrite, &B, 1);
  }
}

void CompileService::wait() {
  if (LoopThread.joinable())
    LoopThread.join();
  {
    std::lock_guard<std::mutex> L(ExecMu);
    ChannelClosed = true;
  }
  ExecCv.notify_all();
  for (std::thread &T : Executors)
    if (T.joinable())
      T.join();
  Executors.clear();
  if (WakeRead >= 0) {
    ::close(WakeRead);
    ::close(WakeWrite);
    WakeRead = WakeWrite = -1;
  }
}

wire::ServerStatsMsg CompileService::statsSnapshot() const {
  wire::ServerStatsMsg S;
  {
    std::lock_guard<std::mutex> L(StatsMu);
    S = Counters;
  }
  const obs::Histogram H = Met->histogram("service.request_sec");
  if (H.Count) {
    S.P50Ms = H.quantile(0.50) * 1e3;
    S.P95Ms = H.quantile(0.95) * 1e3;
    S.P99Ms = H.quantile(0.99) * 1e3;
  }
  auto Fill = [&](const std::string &Name, wire::QuantileSummary &Q) {
    const obs::Histogram QH = Met->histogram(Name);
    Q.Count = QH.Count;
    if (QH.Count) {
      Q.P50 = QH.quantile(0.50);
      Q.P95 = QH.quantile(0.95);
      Q.P99 = QH.quantile(0.99);
    }
  };
  Fill("service.queue_wait_sec.p0", S.QueueWaitNormal);
  Fill("service.queue_wait_sec.p1", S.QueueWaitHigh);
  for (const char *Engine : {"sequential", "thread", "process"}) {
    wire::EngineLatency Row;
    Row.Engine = Engine;
    Fill("service.engine_sec." + Row.Engine, Row.Latency);
    if (Row.Latency.Count)
      S.EngineLatencies.push_back(std::move(Row));
  }
  return S;
}

// --- Loop-side plumbing --------------------------------------------------

void CompileService::sendFrame(Conn &C, wire::MsgType Type,
                               const std::vector<uint8_t> &Payload) {
  const std::vector<uint8_t> Bytes = wire::encodeFrame(Type, Payload);
  C.Outbox.insert(C.Outbox.end(), Bytes.begin(), Bytes.end());
}

bool CompileService::flushOutbox(Conn &C) {
  while (C.OutPos < C.Outbox.size()) {
    const ssize_t N =
        ::send(C.Fd, C.Outbox.data() + C.OutPos, C.Outbox.size() - C.OutPos,
               MSG_NOSIGNAL);
    if (N > 0) {
      C.OutPos += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return true;
    if (N < 0 && errno == EINTR)
      continue;
    return false; // EPIPE/ECONNRESET: the client is gone.
  }
  C.Outbox.clear();
  C.OutPos = 0;
  return true;
}

void CompileService::closeConn(uint64_t ConnId) {
  auto It = Conns.find(ConnId);
  if (It == Conns.end())
    return;
  ::close(It->second.Fd);
  const size_t Dropped = Queue.dropConnection(ConnId);
  if (Dropped)
    Met->add("service.disconnect_drops", static_cast<double>(Dropped));
  for (auto &[Seq, Info] : InFlight)
    if (Info.ConnId == ConnId)
      Info.OwnerGone = true;
  Met->add("service.disconnects");
  Conns.erase(It);
}

void CompileService::respondTerminal(uint64_t ConnId,
                                     wire::CompileResultMsg Result) {
  auto It = Conns.find(ConnId);
  if (It == Conns.end())
    return;
  It->second.PendingIds.erase(Result.RequestId);
  sendFrame(It->second, wire::MsgType::CompileResult,
            wire::encodeCompileResult(Result));
  // A failed flush marks the connection for deferred close: callers may
  // hold a Conn reference, so nothing is erased from here.
  if (!flushOutbox(It->second))
    It->second.Broken = true;
}

void CompileService::handleRequest(Conn &C,
                                   const wire::CompileRequestMsg &Msg) {
  auto reject = [&](wire::RejectReason Reason, const std::string &Detail) {
    wire::RejectedMsg R;
    R.RequestId = Msg.RequestId;
    R.Reason = static_cast<uint8_t>(Reason);
    R.Detail = Detail;
    sendFrame(C, wire::MsgType::Rejected, wire::encodeRejected(R));
    Met->add("service.admission_rejects");
    std::lock_guard<std::mutex> L(StatsMu);
    ++Counters.Rejected;
  };

  if (DrainStarted) {
    reject(wire::RejectReason::Draining, "service is draining");
    return;
  }
  if (Msg.RequestId == 0 || C.PendingIds.count(Msg.RequestId)) {
    reject(wire::RejectReason::BadRequest,
           Msg.RequestId == 0 ? "request id must be nonzero"
                              : "duplicate request id");
    return;
  }
  if (Msg.Engine > static_cast<uint8_t>(wire::RequestEngine::Process)) {
    reject(wire::RejectReason::BadRequest, "unknown engine");
    return;
  }
  QueuedRequest Q;
  Q.ConnId = C.Id;
  Q.Msg = Msg;
  Q.EnqueuedSec = nowSec();
  const double Admitted = Q.EnqueuedSec;
  if (!Queue.push(std::move(Q))) {
    reject(wire::RejectReason::QueueFull,
           "admission queue at capacity (" +
               std::to_string(Queue.capacity()) + ")");
    return;
  }
  C.PendingIds.insert(Msg.RequestId);
  if (Rec) {
    // The admission instant anchors the request's lifecycle in the
    // daemon trace; Section carries the connection id and Attempt the
    // request id, which is what warp-traceview's --conn/--request
    // filters select on.
    obs::SpanEvent &E = Rec->lane(0).instant(
        Admitted, obs::EventKind::RequestAdmitted, obs::Phase::Schedule);
    E.Host = 0;
    E.Section = static_cast<int32_t>(C.Id);
    E.Attempt = static_cast<int32_t>(Msg.RequestId);
  }
  Met->add("service.accepted");
  std::lock_guard<std::mutex> L(StatsMu);
  ++Counters.Accepted;
}

void CompileService::handleCancel(Conn &C, const wire::CancelMsg &Msg) {
  QueuedRequest Q;
  if (Queue.cancel(C.Id, Msg.RequestId, Q)) {
    wire::CompileResultMsg R;
    R.RequestId = Msg.RequestId;
    R.Status = static_cast<uint8_t>(wire::ResultStatus::Cancelled);
    R.QueueSec = nowSec() - Q.EnqueuedSec;
    Met->add("service.cancelled");
    {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Counters.Cancelled;
    }
    respondTerminal(C.Id, std::move(R));
    return;
  }
  // Already dispatched: flag it so the completion is delivered (and
  // counted) as Cancelled. A request that already completed is a benign
  // race — the client has its result.
  for (auto &[Seq, Info] : InFlight)
    if (Info.ConnId == C.Id && Info.RequestId == Msg.RequestId)
      Info.Cancelled = true;
}

void CompileService::handleFrame(Conn &C, const wire::Frame &F) {
  if (!C.HelloDone) {
    // Stamped before any processing: the daemon's half of the NTP-style
    // clock exchange clients use to align daemon shards.
    const double HelloRecv = nowSec();
    wire::ClientHelloMsg H;
    if (F.Type != wire::MsgType::ClientHello ||
        !wire::decodeClientHello(F.Payload, H)) {
      wire::RejectedMsg R;
      R.Reason = static_cast<uint8_t>(wire::RejectReason::BadRequest);
      R.Detail = "expected a ClientHello frame";
      sendFrame(C, wire::MsgType::Rejected, wire::encodeRejected(R));
      C.CloseAfterFlush = true;
      return;
    }
    if (H.Protocol != wire::ProtocolVersion) {
      wire::RejectedMsg R;
      R.Reason = static_cast<uint8_t>(wire::RejectReason::VersionMismatch);
      R.Detail = "server speaks protocol " +
                 std::to_string(wire::ProtocolVersion) + ", client sent " +
                 std::to_string(H.Protocol);
      sendFrame(C, wire::MsgType::Rejected, wire::encodeRejected(R));
      Met->add("service.admission_rejects");
      {
        std::lock_guard<std::mutex> L(StatsMu);
        ++Counters.Rejected;
      }
      C.CloseAfterFlush = true;
      return;
    }
    C.HelloDone = true;
    wire::ServerHelloMsg S;
    S.Protocol = wire::ProtocolVersion;
    S.Pid = static_cast<uint64_t>(::getpid());
    S.MaxQueue = Config.MaxQueue;
    S.MaxInFlight = Config.MaxInFlight;
    S.HelloRecvSec = HelloRecv;
    S.HelloSendSec = nowSec();
    sendFrame(C, wire::MsgType::ServerHello, wire::encodeServerHello(S));
    return;
  }

  switch (F.Type) {
  case wire::MsgType::CompileRequest: {
    wire::CompileRequestMsg M;
    if (!wire::decodeCompileRequest(F.Payload, M)) {
      wire::RejectedMsg R;
      R.Reason = static_cast<uint8_t>(wire::RejectReason::BadRequest);
      R.Detail = "malformed CompileRequest payload";
      sendFrame(C, wire::MsgType::Rejected, wire::encodeRejected(R));
      C.CloseAfterFlush = true;
      return;
    }
    handleRequest(C, M);
    return;
  }
  case wire::MsgType::Cancel: {
    wire::CancelMsg M;
    if (wire::decodeCancel(F.Payload, M))
      handleCancel(C, M);
    return;
  }
  case wire::MsgType::StatsRequest: {
    wire::ServerStatsMsg S = statsSnapshot();
    S.QueueDepth = static_cast<uint32_t>(Queue.size());
    S.InFlight = static_cast<uint32_t>(InFlight.size());
    S.Connections = static_cast<uint32_t>(Conns.size());
    sendFrame(C, wire::MsgType::ServerStats, wire::encodeServerStats(S));
    return;
  }
  default: {
    // Server-to-client types (or a second hello) from a client are a
    // protocol violation.
    wire::RejectedMsg R;
    R.Reason = static_cast<uint8_t>(wire::RejectReason::BadRequest);
    R.Detail = "unexpected frame type from client";
    sendFrame(C, wire::MsgType::Rejected, wire::encodeRejected(R));
    C.CloseAfterFlush = true;
    return;
  }
  }
}

void CompileService::handleReadable(Conn &C) {
  uint8_t Chunk[16384];
  while (true) {
    const ssize_t N = ::recv(C.Fd, Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      C.Decoder.feed(Chunk, static_cast<size_t>(N));
      wire::Frame F;
      while (!C.CloseAfterFlush) {
        const wire::DecodeStatus S = C.Decoder.next(F);
        if (S == wire::DecodeStatus::Ready) {
          handleFrame(C, F);
          continue;
        }
        if (S == wire::DecodeStatus::Corrupt) {
          Met->add("service.frame_errors");
          closeConn(C.Id);
          return;
        }
        break; // NeedMore.
      }
      if (N < static_cast<ssize_t>(sizeof(Chunk)))
        return; // Drained what was available.
      continue;
    }
    if (N == 0) { // EOF: the client is gone.
      closeConn(C.Id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    if (errno == EINTR)
      continue;
    closeConn(C.Id);
    return;
  }
}

void CompileService::acceptNew() {
  while (true) {
    const int Fd = ::accept4(ListenFd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return;
    Conn C;
    C.Fd = Fd;
    C.Id = NextConnId++;
    const uint64_t Id = C.Id;
    Conns.emplace(Id, std::move(C));
    Met->add("service.connections_accepted");
  }
}

void CompileService::beginDrainInLoop() {
  DrainStarted = true;
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (SocketBound) {
    ::unlink(Config.SocketPath.c_str());
    SocketBound = false;
  }
}

void CompileService::pumpDispatch() {
  // Deadline sweep first: a request queued past its budget completes as
  // DeadlineExpired instead of occupying an executor.
  std::vector<QueuedRequest> Expired;
  Queue.expireDeadlines(nowSec(), Expired);
  for (QueuedRequest &Q : Expired) {
    wire::CompileResultMsg R;
    R.RequestId = Q.Msg.RequestId;
    R.Status = static_cast<uint8_t>(wire::ResultStatus::DeadlineExpired);
    R.QueueSec = nowSec() - Q.EnqueuedSec;
    Met->add("service.deadline_expired");
    {
      std::lock_guard<std::mutex> L(StatsMu);
      ++Counters.Expired;
    }
    respondTerminal(Q.ConnId, std::move(R));
  }

  while (InFlight.size() < Config.MaxInFlight) {
    QueuedRequest Q;
    if (!Queue.pop(Q))
      break;
    const double Now = nowSec();
    Dispatch D;
    D.Seq = NextSeq++;
    D.ConnId = Q.ConnId;
    D.Msg = std::move(Q.Msg);
    D.EnqueuedSec = Q.EnqueuedSec;
    D.DispatchedSec = Now;
    if (Rec) {
      obs::SpanEvent &S =
          Rec->lane(0).span(Q.EnqueuedSec, Now - Q.EnqueuedSec,
                            obs::EventKind::SpanSchedule, obs::Phase::Schedule);
      S.Host = 0;
      S.Section = static_cast<int32_t>(D.ConnId);
      S.Attempt = static_cast<int32_t>(D.Msg.RequestId);
      D.ScheduleSpanId = S.spanId();
    }
    InFlightInfo Info;
    Info.ConnId = D.ConnId;
    Info.RequestId = D.Msg.RequestId;
    InFlight.emplace(D.Seq, Info);
    {
      std::lock_guard<std::mutex> L(ExecMu);
      ExecQ.push_back(std::move(D));
    }
    ExecCv.notify_one();
  }

  Met->setGauge("service.queue_depth", static_cast<double>(Queue.size()));
  Met->setGauge("service.inflight", static_cast<double>(InFlight.size()));
  Met->setGauge("service.connections", static_cast<double>(Conns.size()));
}

void CompileService::loopMain() {
  std::vector<pollfd> Fds;
  std::vector<uint64_t> ConnIds;
  while (true) {
    if (StopFlag.load())
      break;
    if (DrainFlag.load() && !DrainStarted)
      beginDrainInLoop();
    pumpDispatch();
    {
      std::vector<uint64_t> Broken;
      for (auto &[Id, C] : Conns)
        if (C.Broken)
          Broken.push_back(Id);
      for (uint64_t Id : Broken)
        closeConn(Id);
    }
    if (DrainStarted && Queue.empty() && InFlight.empty()) {
      bool Flushed = true;
      for (auto &[Id, C] : Conns)
        if (C.OutPos < C.Outbox.size())
          Flushed = false;
      if (Flushed)
        break;
    }

    Fds.clear();
    ConnIds.clear();
    Fds.push_back({WakeRead, POLLIN, 0});
    if (ListenFd >= 0)
      Fds.push_back({ListenFd, POLLIN, 0});
    const size_t ConnBase = Fds.size();
    for (auto &[Id, C] : Conns) {
      short Ev = POLLIN;
      if (C.OutPos < C.Outbox.size())
        Ev |= POLLOUT;
      Fds.push_back({C.Fd, Ev, 0});
      ConnIds.push_back(Id);
    }
    // Block unless queued deadlines need a sweep.
    const int TimeoutMs = Queue.empty() ? -1 : 20;
    const int RC = ::poll(Fds.data(), Fds.size(), TimeoutMs);
    if (RC < 0 && errno != EINTR)
      break;

    // Drain wake bytes and collect completions.
    {
      uint8_t Sink[256];
      while (::read(WakeRead, Sink, sizeof(Sink)) > 0) {
      }
    }
    std::deque<Completion> Done;
    {
      std::lock_guard<std::mutex> L(DoneMu);
      Done.swap(DoneQ);
    }
    for (Completion &C : Done) {
      auto It = InFlight.find(C.Seq);
      if (It == InFlight.end())
        continue;
      const InFlightInfo Info = It->second;
      InFlight.erase(It);
      if (Info.OwnerGone)
        continue; // Disconnected client: nothing owed, pool unharmed.
      Met->observe("service.request_sec",
                   C.Result.QueueSec + C.Result.CompileSec);
      Met->observe("service.queue_sec", C.Result.QueueSec);
      Met->observe("service.compile_sec", C.Result.CompileSec);
      // The §4.2.3-style decomposition warp-top renders live: queue wait
      // split by priority tier, end-to-end latency split by engine.
      Met->observe(C.Priority ? "service.queue_wait_sec.p1"
                              : "service.queue_wait_sec.p0",
                   C.Result.QueueSec);
      if (!C.Result.EngineUsed.empty())
        Met->observe("service.engine_sec." + C.Result.EngineUsed,
                     C.Result.QueueSec + C.Result.CompileSec);
      if (Info.Cancelled) {
        wire::CompileResultMsg R;
        R.RequestId = Info.RequestId;
        R.Status = static_cast<uint8_t>(wire::ResultStatus::Cancelled);
        R.QueueSec = C.Result.QueueSec;
        R.CompileSec = C.Result.CompileSec;
        Met->add("service.cancelled");
        {
          std::lock_guard<std::mutex> L(StatsMu);
          ++Counters.Cancelled;
        }
        respondTerminal(Info.ConnId, std::move(R));
        continue;
      }
      Met->add("service.completed");
      {
        std::lock_guard<std::mutex> L(StatsMu);
        ++Counters.Completed;
      }
      respondTerminal(Info.ConnId, std::move(C.Result));
    }

    if (RC > 0) {
      if (ListenFd >= 0 && ConnBase == 2 && (Fds[1].revents & POLLIN))
        acceptNew();
      for (size_t I = 0; I != ConnIds.size(); ++I) {
        const uint64_t Id = ConnIds[I];
        const short Rev = Fds[ConnBase + I].revents;
        if (!Rev)
          continue;
        auto It = Conns.find(Id);
        if (It == Conns.end())
          continue; // Closed earlier in this sweep.
        if (It->second.Broken) {
          closeConn(Id);
          continue;
        }
        if (Rev & (POLLERR | POLLHUP | POLLNVAL)) {
          // Deliver any final bytes, then drop.
          if (Rev & POLLIN)
            handleReadable(It->second);
          It = Conns.find(Id);
          if (It != Conns.end())
            closeConn(Id);
          continue;
        }
        if (Rev & POLLIN) {
          handleReadable(It->second);
          It = Conns.find(Id);
          if (It == Conns.end())
            continue;
        }
        if ((Rev & POLLOUT) && !flushOutbox(It->second)) {
          closeConn(Id);
          continue;
        }
        if (It->second.CloseAfterFlush &&
            It->second.OutPos >= It->second.Outbox.size())
          closeConn(Id);
      }
    }
  }

  // Teardown: no more admissions or deliveries.
  LoopRunning.store(false);
  std::vector<uint64_t> Ids;
  for (auto &[Id, C] : Conns)
    Ids.push_back(Id);
  for (uint64_t Id : Ids)
    closeConn(Id);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (SocketBound) {
    ::unlink(Config.SocketPath.c_str());
    SocketBound = false;
  }
  {
    std::lock_guard<std::mutex> L(ExecMu);
    ChannelClosed = true;
  }
  ExecCv.notify_all();
}

// --- Executor side -------------------------------------------------------

CompileService::Completion CompileService::runCompile(const Dispatch &D,
                                                      unsigned ExecutorIndex) {
  if (Config.DebugCompileDelaySec > 0)
    std::this_thread::sleep_for(
        std::chrono::duration<double>(Config.DebugCompileDelaySec));

  const wire::CompileRequestMsg &Msg = D.Msg;
  std::string Engine = Config.Engine;
  if (Msg.Engine == static_cast<uint8_t>(wire::RequestEngine::Thread))
    Engine = "thread";
  else if (Msg.Engine == static_cast<uint8_t>(wire::RequestEngine::Process))
    Engine = "process";
  unsigned Workers = Msg.Workers ? Msg.Workers : Config.DefaultWorkers;
  if (Workers == 0)
    Workers = 1;

  std::unique_ptr<CountingCache> RequestCache;
  if (Cache && Msg.UseCache)
    RequestCache = std::make_unique<CountingCache>(*Cache);

  // A traced request (nonzero TraceId from the client) gets its own
  // recorder, confined to this executor thread: the engine records into
  // it exactly as it would for a standalone warpc run — including
  // splicing worker shards for the process engine — and the finished
  // session ships back to the client as one shard. Recorder times are
  // seconds since construction; ReqEpochSec moves them onto the daemon
  // clock before shipping so the client's offset math lines up.
  std::unique_ptr<obs::TraceRecorder> ReqRec;
  double ReqEpochSec = 0;
  uint64_t QueueSpanId = 0;
  if (Msg.TraceId != 0) {
    ReqRec = std::make_unique<obs::TraceRecorder>(obs::ClockDomain::Steady);
    ReqEpochSec = nowSec();
    ReqRec->setTraceId(Msg.TraceId);
    obs::SpanEvent &QS = ReqRec->lane(0).span(
        D.EnqueuedSec - ReqEpochSec, D.DispatchedSec - D.EnqueuedSec,
        obs::EventKind::SpanSchedule, obs::Phase::Schedule);
    QS.Host = 0;
    QS.Section = static_cast<int32_t>(D.ConnId);
    QS.Attempt = static_cast<int32_t>(Msg.RequestId);
    QueueSpanId = QS.spanId();
  }

  const codegen::MachineModel MM = codegen::MachineModel::warpCell();
  const double T0 = nowSec();
  driver::ModuleResult Module;
  unsigned WorkersUsed = 1;
  if (Engine == "process") {
    parallel::ProcessRunnerConfig PC;
    PC.WorkerBinary = Config.WorkerBinary;
    PC.WatchdogSec = Config.WatchdogSec;
    PC.Faults = Config.Faults;
    parallel::ProcessRunResult PR = parallel::compileModuleProcess(
        Msg.ModuleSource, MM, Workers, Config.Policy, PC, ReqRec.get(),
        Met, RequestCache.get());
    Module = std::move(PR.Module);
    WorkersUsed = PR.WorkersUsed ? PR.WorkersUsed : 1;
  } else if (Engine == "thread") {
    parallel::ThreadRunResult TR = parallel::compileModuleParallel(
        Msg.ModuleSource, MM, Workers, Config.Policy, /*Inject=*/nullptr,
        ReqRec.get(), Met, RequestCache.get());
    Module = std::move(TR.Module);
    WorkersUsed = TR.WorkersUsed ? TR.WorkersUsed : 1;
  } else {
    Engine = "sequential";
    Module = driver::compileModuleSequential(Msg.ModuleSource, MM, Met,
                                             RequestCache.get());
  }
  const double T1 = nowSec();

  if (Rec) {
    obs::SpanEvent &S = Rec->lane(1 + ExecutorIndex)
                            .span(T0, T1 - T0, obs::EventKind::SpanCompile,
                                  obs::Phase::Compile);
    S.Parent = D.ScheduleSpanId;
    S.Host = static_cast<int32_t>(ExecutorIndex);
    S.Section = static_cast<int32_t>(D.ConnId);
    S.Attempt = static_cast<int32_t>(Msg.RequestId);
  }

  Completion Out;
  Out.Seq = D.Seq;
  Out.ConnId = D.ConnId;
  Out.Priority = Msg.Priority;
  wire::CompileResultMsg &R = Out.Result;
  R.RequestId = Msg.RequestId;
  R.Status = static_cast<uint8_t>(Module.Succeeded
                                      ? wire::ResultStatus::Ok
                                      : wire::ResultStatus::CompileError);
  R.ModuleName = Module.Image.ModuleName;
  R.NumSections = static_cast<uint32_t>(Module.Image.Sections.size());
  R.NumFunctions = static_cast<uint32_t>(Module.Functions.size());
  R.DiagText = Module.Diags.str();
  R.Image = std::move(Module.Image.Image);
  R.EngineUsed = Engine;
  R.WorkersUsed = WorkersUsed;
  R.QueueSec = D.DispatchedSec - D.EnqueuedSec;
  R.CompileSec = T1 - T0;
  if (RequestCache) {
    R.CacheHits = RequestCache->hits();
    R.CacheMisses = RequestCache->misses();
  }
  if (ReqRec) {
    // Executor wrapper span: the request's on-CPU window, parented under
    // its queue-wait span so the causal chain is queue → execute.
    obs::SpanEvent &ES = ReqRec->lane(0).span(T0 - ReqEpochSec, T1 - T0,
                                              obs::EventKind::SpanCompile,
                                              obs::Phase::Compile);
    ES.Host = 0;
    ES.Section = static_cast<int32_t>(D.ConnId);
    ES.Attempt = static_cast<int32_t>(Msg.RequestId);
    ES.Bytes = R.Image.size();
    ES.Parent = QueueSpanId;
    obs::TraceSession TS = ReqRec->finish();
    R.ShardBytes = obs::encodeSpanShard(obs::shardFromSession(
        TS, static_cast<uint64_t>(::getpid()), "warpd", ReqEpochSec));
  }
  return Out;
}

void CompileService::executorMain(unsigned Index) {
  while (true) {
    Dispatch D;
    {
      std::unique_lock<std::mutex> L(ExecMu);
      ExecCv.wait(L, [&] { return ChannelClosed || !ExecQ.empty(); });
      if (ExecQ.empty())
        return; // Channel closed and drained.
      D = std::move(ExecQ.front());
      ExecQ.pop_front();
    }
    Completion C = runCompile(D, Index);
    {
      std::lock_guard<std::mutex> L(DoneMu);
      DoneQ.push_back(std::move(C));
    }
    if (WakeWrite >= 0) {
      const char B = 'w';
      [[maybe_unused]] ssize_t RC = ::write(WakeWrite, &B, 1);
    }
  }
}
