//===- Client.cpp - Compile-service client --------------------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

using namespace warpc;
using namespace warpc::service;

std::string service::defaultSocketPath() {
  return "/tmp/warpd-" + std::to_string(::getuid()) + ".sock";
}

Client::~Client() { close(); }

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::connect(const std::string &SocketPath, std::string &Error) {
  close();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "service: bad socket path: " + SocketPath;
    return false;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Error = std::string("service: socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = "service: connect " + SocketPath + ": " + std::strerror(errno);
    close();
    return false;
  }

  wire::ClientHelloMsg H;
  H.Protocol = wire::ProtocolVersion;
  H.Pid = static_cast<uint64_t>(::getpid());
  HelloSendTp = std::chrono::steady_clock::now();
  if (!sendBytes(wire::encodeFrame(wire::MsgType::ClientHello,
                                   wire::encodeClientHello(H)),
                 Error)) {
    close();
    return false;
  }
  wire::Frame F;
  if (!readFrame(F, Error, 30.0)) {
    close();
    return false;
  }
  HelloRecvTp = std::chrono::steady_clock::now();
  if (F.Type == wire::MsgType::Rejected) {
    wire::RejectedMsg R;
    Error = "service: hello rejected";
    if (wire::decodeRejected(F.Payload, R) && !R.Detail.empty())
      Error += ": " + R.Detail;
    close();
    return false;
  }
  if (F.Type != wire::MsgType::ServerHello ||
      !wire::decodeServerHello(F.Payload, Hello)) {
    Error = "service: malformed hello response";
    close();
    return false;
  }
  return true;
}

bool Client::sendBytes(const std::vector<uint8_t> &Bytes, std::string &Error) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    const ssize_t N =
        ::send(Fd, Bytes.data() + Off, Bytes.size() - Off, MSG_NOSIGNAL);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Error = std::string("service: send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool Client::readFrame(wire::Frame &Out, std::string &Error,
                       double TimeoutSec) {
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(TimeoutSec);
  while (true) {
    const wire::DecodeStatus S = Decoder.next(Out);
    if (S == wire::DecodeStatus::Ready)
      return true;
    if (S == wire::DecodeStatus::Corrupt) {
      Error = "service: corrupt response stream: " + Decoder.error();
      return false;
    }
    const auto Now = std::chrono::steady_clock::now();
    if (Now >= Deadline) {
      Error = "service: timed out waiting for a response";
      return false;
    }
    const int WaitMs = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Deadline - Now)
            .count());
    pollfd P = {Fd, POLLIN, 0};
    const int RC = ::poll(&P, 1, WaitMs > 0 ? WaitMs : 1);
    if (RC < 0 && errno != EINTR) {
      Error = std::string("service: poll: ") + std::strerror(errno);
      return false;
    }
    if (RC <= 0)
      continue;
    uint8_t Chunk[16384];
    const ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N > 0) {
      Decoder.feed(Chunk, static_cast<size_t>(N));
      continue;
    }
    if (N == 0) {
      Error = "service: server closed the connection";
      return false;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
      continue;
    Error = std::string("service: recv: ") + std::strerror(errno);
    return false;
  }
}

bool Client::submit(const wire::CompileRequestMsg &Msg, std::string &Error) {
  if (Fd < 0) {
    Error = "service: not connected";
    return false;
  }
  return sendBytes(wire::encodeFrame(wire::MsgType::CompileRequest,
                                     wire::encodeCompileRequest(Msg)),
                   Error);
}

bool Client::await(uint64_t RequestId, RequestOutcome &Out, std::string &Error,
                   double TimeoutSec) {
  auto Buffered = Pending.find(RequestId);
  if (Buffered != Pending.end()) {
    Out = std::move(Buffered->second);
    Pending.erase(Buffered);
    return true;
  }
  while (true) {
    wire::Frame F;
    if (!readFrame(F, Error, TimeoutSec))
      return false;
    RequestOutcome O;
    uint64_t Id = 0;
    if (F.Type == wire::MsgType::CompileResult) {
      if (!wire::decodeCompileResult(F.Payload, O.Result)) {
        Error = "service: malformed CompileResult";
        return false;
      }
      O.Accepted = true;
      Id = O.Result.RequestId;
    } else if (F.Type == wire::MsgType::Rejected) {
      if (!wire::decodeRejected(F.Payload, O.Reject)) {
        Error = "service: malformed Rejected";
        return false;
      }
      O.Accepted = false;
      Id = O.Reject.RequestId;
    } else {
      continue; // ServerStats etc. for some other call: drop.
    }
    if (Id == RequestId) {
      Out = std::move(O);
      return true;
    }
    Pending[Id] = std::move(O);
  }
}

bool Client::compile(const wire::CompileRequestMsg &Msg, RequestOutcome &Out,
                     std::string &Error, double TimeoutSec) {
  if (!submit(Msg, Error))
    return false;
  return await(Msg.RequestId, Out, Error, TimeoutSec);
}

bool Client::cancel(uint64_t RequestId, std::string &Error) {
  if (Fd < 0) {
    Error = "service: not connected";
    return false;
  }
  wire::CancelMsg M;
  M.RequestId = RequestId;
  return sendBytes(
      wire::encodeFrame(wire::MsgType::Cancel, wire::encodeCancel(M)), Error);
}

bool Client::serverStats(wire::ServerStatsMsg &Out, std::string &Error,
                         double TimeoutSec) {
  if (Fd < 0) {
    Error = "service: not connected";
    return false;
  }
  if (!sendBytes(wire::encodeFrame(wire::MsgType::StatsRequest, {}), Error))
    return false;
  const auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(TimeoutSec);
  while (true) {
    wire::Frame F;
    const double Left =
        std::chrono::duration<double>(Deadline -
                                      std::chrono::steady_clock::now())
            .count();
    if (Left <= 0) {
      Error = "service: timed out waiting for stats";
      return false;
    }
    if (!readFrame(F, Error, Left))
      return false;
    if (F.Type == wire::MsgType::ServerStats)
      return wire::decodeServerStats(F.Payload, Out) ||
             (Error = "service: malformed ServerStats", false);
    // A compile outcome racing the stats call: buffer it.
    RequestOutcome O;
    if (F.Type == wire::MsgType::CompileResult &&
        wire::decodeCompileResult(F.Payload, O.Result)) {
      O.Accepted = true;
      Pending[O.Result.RequestId] = std::move(O);
    } else if (F.Type == wire::MsgType::Rejected &&
               wire::decodeRejected(F.Payload, O.Reject)) {
      O.Accepted = false;
      Pending[O.Reject.RequestId] = std::move(O);
    }
  }
}
