//===- RequestQueue.h - Bounded fair admission queue ------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's admission queue: a bounded buffer of admitted-but-not-
/// dispatched compile requests with two scheduling obligations the paper's
/// single-user master never had:
///
///  * Fairness: one chatty client must not starve the others, so within a
///    priority tier requests are dequeued round-robin across client
///    connections (each connection keeps FIFO order for its own requests,
///    preserving per-client determinism).
///  * Priorities and deadlines: high-priority requests are served before
///    any normal ones, and a request still queued past its deadline is
///    surfaced to the caller as expired instead of occupying an executor.
///
/// The queue is deliberately a plain single-threaded data structure —
/// only the service event loop touches it — so its scheduling policy is
/// directly unit-testable without sockets or clocks.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_SERVICE_REQUESTQUEUE_H
#define WARPC_SERVICE_REQUESTQUEUE_H

#include "service/Protocol.h"

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace warpc {
namespace service {

/// One admitted compile request waiting for an executor.
struct QueuedRequest {
  uint64_t ConnId = 0;
  wire::CompileRequestMsg Msg;
  /// Monotonic admission timestamp, seconds (caller's clock).
  double EnqueuedSec = 0.0;
};

class RequestQueue {
public:
  explicit RequestQueue(size_t MaxQueued) : MaxQueued(MaxQueued) {}

  /// Admits one request. Returns false (and leaves the queue unchanged)
  /// when the bound is reached — the caller owes the client an explicit
  /// Rejected{queue_full}.
  bool push(QueuedRequest R);

  /// Dequeues the next request by policy: the high tier drains before the
  /// normal tier; within a tier, connections are visited round-robin in
  /// first-seen order and each yields its oldest request. Returns false
  /// when empty.
  bool pop(QueuedRequest &Out);

  /// Moves every queued request whose deadline lapsed at \p NowSec into
  /// \p Expired (the caller answers each with DeadlineExpired).
  void expireDeadlines(double NowSec, std::vector<QueuedRequest> &Expired);

  /// Drops every queued request from \p ConnId (client disconnected; no
  /// responses owed). Returns how many were dropped.
  size_t dropConnection(uint64_t ConnId);

  /// Removes the one queued request (ConnId, RequestId) if still queued;
  /// true and \p Out filled on success (the caller answers Cancelled).
  bool cancel(uint64_t ConnId, uint64_t RequestId, QueuedRequest &Out);

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  size_t capacity() const { return MaxQueued; }

private:
  struct Tier {
    /// Per-connection FIFO subqueues plus the round-robin visit order.
    std::map<uint64_t, std::deque<QueuedRequest>> PerConn;
    std::vector<uint64_t> Order;
    size_t Cursor = 0;

    bool popNext(QueuedRequest &Out);
  };

  Tier &tierFor(uint8_t Priority) { return Priority ? High : Normal; }

  size_t MaxQueued;
  size_t Count = 0;
  Tier High;
  Tier Normal;
};

} // namespace service
} // namespace warpc

#endif // WARPC_SERVICE_REQUESTQUEUE_H
