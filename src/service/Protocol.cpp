//===- Protocol.cpp - Compile-service wire protocol -----------------------===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "support/BinaryStream.h"

#include <algorithm>

using namespace warpc;
using namespace warpc::service;
using namespace warpc::service::wire;

std::vector<uint8_t> wire::encodeFrame(MsgType Type,
                                       const std::vector<uint8_t> &Payload) {
  return framing::encodeFrame(Spec, static_cast<uint8_t>(Type), Payload);
}

DecodeStatus FrameDecoder::next(Frame &Out) {
  framing::RawFrame Raw;
  const DecodeStatus S = Inner.next(Raw);
  if (S == DecodeStatus::Ready) {
    Out.Type = static_cast<MsgType>(Raw.Type);
    Out.Payload = std::move(Raw.Payload);
  }
  return S;
}

// --- Message payload codecs ----------------------------------------------

std::vector<uint8_t> wire::encodeClientHello(const ClientHelloMsg &M) {
  BinaryWriter W;
  W.u32(M.Protocol);
  W.u64(M.Pid);
  return W.take();
}

bool wire::decodeClientHello(const std::vector<uint8_t> &Payload,
                             ClientHelloMsg &Out) {
  BinaryReader R(Payload);
  Out.Protocol = R.u32();
  Out.Pid = R.u64();
  return R.atEnd();
}

// Trace-context, timestamp and quantile fields are trailing extensions:
// encoders always write them, decoders accept a payload that ends where
// the old format did (the new fields keep their defaults). The frame
// checksum has already vouched for integrity by the time a codec runs,
// so "ends early" means "older peer", not "truncated".

std::vector<uint8_t> wire::encodeServerHello(const ServerHelloMsg &M) {
  BinaryWriter W;
  W.u32(M.Protocol);
  W.u64(M.Pid);
  W.u32(M.MaxQueue);
  W.u32(M.MaxInFlight);
  W.f64(M.HelloRecvSec);
  W.f64(M.HelloSendSec);
  return W.take();
}

bool wire::decodeServerHello(const std::vector<uint8_t> &Payload,
                             ServerHelloMsg &Out) {
  BinaryReader R(Payload);
  Out.Protocol = R.u32();
  Out.Pid = R.u64();
  Out.MaxQueue = R.u32();
  Out.MaxInFlight = R.u32();
  if (R.atEnd())
    return true;
  Out.HelloRecvSec = R.f64();
  Out.HelloSendSec = R.f64();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeCompileRequest(const CompileRequestMsg &M) {
  BinaryWriter W;
  W.u64(M.RequestId);
  W.str(M.ModuleSource);
  W.u8(M.Engine);
  W.u32(M.Workers);
  W.u8(M.UseCache);
  W.u8(M.Priority);
  W.u32(M.DeadlineMs);
  W.u64(M.TraceId);
  W.u64(M.ParentSpanId);
  return W.take();
}

bool wire::decodeCompileRequest(const std::vector<uint8_t> &Payload,
                                CompileRequestMsg &Out) {
  BinaryReader R(Payload);
  Out.RequestId = R.u64();
  Out.ModuleSource = R.str();
  Out.Engine = R.u8();
  Out.Workers = R.u32();
  Out.UseCache = R.u8();
  Out.Priority = R.u8();
  Out.DeadlineMs = R.u32();
  if (R.atEnd())
    return true;
  Out.TraceId = R.u64();
  Out.ParentSpanId = R.u64();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeCompileResult(const CompileResultMsg &M) {
  BinaryWriter W;
  W.u64(M.RequestId);
  W.u8(M.Status);
  W.str(M.ModuleName);
  W.u32(M.NumSections);
  W.u32(M.NumFunctions);
  W.str(M.DiagText);
  W.bytes(M.Image);
  W.str(M.EngineUsed);
  W.u32(M.WorkersUsed);
  W.f64(M.QueueSec);
  W.f64(M.CompileSec);
  W.u64(M.CacheHits);
  W.u64(M.CacheMisses);
  W.bytes(M.ShardBytes);
  return W.take();
}

bool wire::decodeCompileResult(const std::vector<uint8_t> &Payload,
                               CompileResultMsg &Out) {
  BinaryReader R(Payload);
  Out.RequestId = R.u64();
  Out.Status = R.u8();
  Out.ModuleName = R.str();
  Out.NumSections = R.u32();
  Out.NumFunctions = R.u32();
  Out.DiagText = R.str();
  Out.Image = R.bytes();
  Out.EngineUsed = R.str();
  Out.WorkersUsed = R.u32();
  Out.QueueSec = R.f64();
  Out.CompileSec = R.f64();
  Out.CacheHits = R.u64();
  Out.CacheMisses = R.u64();
  if (R.atEnd())
    return true;
  Out.ShardBytes = R.bytes();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeRejected(const RejectedMsg &M) {
  BinaryWriter W;
  W.u64(M.RequestId);
  W.u8(M.Reason);
  W.str(M.Detail);
  return W.take();
}

bool wire::decodeRejected(const std::vector<uint8_t> &Payload,
                          RejectedMsg &Out) {
  BinaryReader R(Payload);
  Out.RequestId = R.u64();
  Out.Reason = R.u8();
  Out.Detail = R.str();
  return R.atEnd();
}

std::vector<uint8_t> wire::encodeCancel(const CancelMsg &M) {
  BinaryWriter W;
  W.u64(M.RequestId);
  return W.take();
}

bool wire::decodeCancel(const std::vector<uint8_t> &Payload, CancelMsg &Out) {
  BinaryReader R(Payload);
  Out.RequestId = R.u64();
  return R.atEnd();
}

namespace {

void writeQuantiles(BinaryWriter &W, const QuantileSummary &Q) {
  W.u64(Q.Count);
  W.f64(Q.P50);
  W.f64(Q.P95);
  W.f64(Q.P99);
}

void readQuantiles(BinaryReader &R, QuantileSummary &Q) {
  Q.Count = R.u64();
  Q.P50 = R.f64();
  Q.P95 = R.f64();
  Q.P99 = R.f64();
}

} // namespace

std::vector<uint8_t> wire::encodeServerStats(const ServerStatsMsg &M) {
  BinaryWriter W;
  W.u64(M.Accepted);
  W.u64(M.Rejected);
  W.u64(M.Completed);
  W.u64(M.Cancelled);
  W.u64(M.Expired);
  W.u32(M.QueueDepth);
  W.u32(M.InFlight);
  W.u32(M.Connections);
  W.f64(M.P50Ms);
  W.f64(M.P95Ms);
  W.f64(M.P99Ms);
  writeQuantiles(W, M.QueueWaitNormal);
  writeQuantiles(W, M.QueueWaitHigh);
  const uint32_t NumEngines = static_cast<uint32_t>(
      std::min<size_t>(M.EngineLatencies.size(), MaxEngineLatencyRows));
  W.u32(NumEngines);
  for (uint32_t I = 0; I != NumEngines; ++I) {
    W.str(M.EngineLatencies[I].Engine);
    writeQuantiles(W, M.EngineLatencies[I].Latency);
  }
  return W.take();
}

bool wire::decodeServerStats(const std::vector<uint8_t> &Payload,
                             ServerStatsMsg &Out) {
  BinaryReader R(Payload);
  Out.Accepted = R.u64();
  Out.Rejected = R.u64();
  Out.Completed = R.u64();
  Out.Cancelled = R.u64();
  Out.Expired = R.u64();
  Out.QueueDepth = R.u32();
  Out.InFlight = R.u32();
  Out.Connections = R.u32();
  Out.P50Ms = R.f64();
  Out.P95Ms = R.f64();
  Out.P99Ms = R.f64();
  if (R.atEnd())
    return true;
  readQuantiles(R, Out.QueueWaitNormal);
  readQuantiles(R, Out.QueueWaitHigh);
  const uint32_t NumEngines = R.u32();
  if (!R.ok() || NumEngines > MaxEngineLatencyRows)
    return false;
  Out.EngineLatencies.resize(NumEngines);
  for (uint32_t I = 0; I != NumEngines; ++I) {
    Out.EngineLatencies[I].Engine = R.str();
    readQuantiles(R, Out.EngineLatencies[I].Latency);
  }
  return R.atEnd();
}
