//===- SimRunner.h - Simulated compilation runs -----------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a CompilationJob on the simulated 1989 host system, either
/// sequentially (one Lisp process does everything — the paper's baseline)
/// or with the paper's process hierarchy:
///
///   master (C, user's workstation)
///     -> Lisp parse process (setup parse, later assembly/linking)
///     -> one section master (C) per section
///          -> one function master (Lisp) per function, distributed
///             over the workstation network
///
/// "The only communication required is between a parent process and its
/// children; processes on the same level of the hierarchy operate
/// completely independent of each other" (Section 3.2). Synchronization
/// is by messages; there is no shared memory.
///
/// The runner also produces the paper's overhead decomposition
/// (Section 4.2.3): total overhead relative to the ideal k-fold speedup,
/// split into implementation overhead (master + section master CPU,
/// including the extra parse) and system overhead (startup, network,
/// GC, file-server load) — the latter obtained by subtraction exactly as
/// in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_PARALLEL_SIMRUNNER_H
#define WARPC_PARALLEL_SIMRUNNER_H

#include "cluster/HostSystem.h"
#include "driver/FaultPolicy.h"
#include "obs/TraceRecorder.h"
#include "parallel/CostModel.h"
#include "parallel/Job.h"
#include "parallel/Scheduler.h"

#include <string>
#include <vector>

namespace warpc {
namespace parallel {

/// Timing of one simulated sequential compilation.
struct SeqStats {
  double ElapsedSec = 0; ///< Wall clock ("user time" in the paper).
  double CpuSec = 0;     ///< Processor time (mutator + GC).
  double GCSec = 0;
  double PageWaitSec = 0;
  double StartupSec = 0;
  double NetWaitSec = 0;
};

/// Timing of one simulated parallel compilation.
struct ParStats {
  double ElapsedSec = 0;

  // Implementation overhead components (CPU of the coordination code).
  double MasterCpuSec = 0;  ///< Setup parse + scheduling + forks.
  double SectionCpuSec = 0; ///< Section masters: directives + combining.

  // Function-master compute.
  double FnCpuSec = 0; ///< Total mutator + GC over all function masters.
  double FnGCSec = 0;

  // System overhead components.
  double StartupSec = 0; ///< Sum of per-process Lisp startup elapsed.
  double NetWaitSec = 0; ///< Queueing on Ethernet + file server.
  double PageWaitSec = 0;

  unsigned ProcessorsUsed = 0;

  // Fault tolerance (all zero in a fault-free run). RetriesSec is the
  // approximate elapsed time consumed by redundant work: attempts beyond
  // a function's first, plus first attempts whose result was lost to a
  // crash or a dropped message.
  double RetriesSec = 0;
  unsigned FunctionsReassigned = 0; ///< Functions retried on another host.
  unsigned SpeculativeWins = 0;     ///< Straggler duplicates that won.
  unsigned TimeoutsFired = 0;       ///< Master-side timeout expirations.
  unsigned MasterRecompiles = 0;    ///< Attempt-cap fallbacks on the master.
  unsigned FunctionsCompleted = 0;  ///< Functions with an accepted result.

  // Compilation cache (all zero unless Job.CacheEnabled). A hit replaces
  // the function master's whole lifecycle with a fixed-cost lookup on the
  // master's workstation; its result file is already on the file server.
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
  double CacheBytesKB = 0; ///< Result-file KB served from the cache.

  /// The paper reports parallel CPU time per processor.
  double perProcessorCpuSec() const {
    return ProcessorsUsed ? FnCpuSec / ProcessorsUsed : 0;
  }

  double implOverheadSec() const { return MasterCpuSec + SectionCpuSec; }
};

/// The paper's overhead decomposition for a run of \p k functions.
struct OverheadBreakdown {
  double TotalSec = 0; ///< parallel elapsed - sequential elapsed / k.
  double ImplSec = 0;  ///< master + section master CPU (incl. the parse).
  double SysSec = 0;   ///< TotalSec - ImplSec (can be negative).
  double ParElapsedSec = 0;

  double relTotalPct() const {
    return ParElapsedSec > 0 ? 100.0 * TotalSec / ParElapsedSec : 0;
  }
  double relSysPct() const {
    return ParElapsedSec > 0 ? 100.0 * SysSec / ParElapsedSec : 0;
  }
};

/// Simulates the sequential compiler on one workstation.
SeqStats simulateSequential(const CompilationJob &Job,
                            const cluster::HostConfig &Host,
                            const CostModel &Model);

/// Simulates the parallel compiler under \p Assign. When \p Rec is
/// non-null, the run's milestones (parse, scheduling, every function
/// master's startup and compile span, section combination, assembly, and
/// all fault-handling decisions) are recorded as typed events with
/// simulated timestamps through lane 0, the topology and run totals are
/// attached, and coordination spans carry the exact CPU seconds added to
/// the MasterCpuSec/SectionCpuSec ledgers — so a trace analyzer can
/// rebuild computeOverheads' implementation overhead from the trace.
///
/// Failures come from Host.Faults (crashes, reboots, slow hosts, lost
/// messages); \p Policy governs the master's reaction: per-function
/// timeouts derived from the cost-model estimate, bounded retries with
/// backoff and reassignment to a live host, speculative re-execution of
/// any function running past its soft deadline, and as a last resort a
/// local recompile by the master — so the run always completes. With an
/// empty fault plan the schedule of events is bit-identical to a run
/// without fault machinery. Host 0 (the master's workstation) is assumed
/// reliable; fault entries for it are ignored.
ParStats simulateParallel(const CompilationJob &Job, const Assignment &Assign,
                          const cluster::HostConfig &Host,
                          const CostModel &Model,
                          obs::TraceRecorder *Rec = nullptr,
                          const driver::FaultPolicy &Policy =
                              driver::FaultPolicy());

/// Computes the Section 4.2.3 decomposition; \p NumFunctions is k, the
/// ideal speedup with one function per processor. With k == 0 there is
/// no ideal to compare against and every overhead is reported as zero.
OverheadBreakdown computeOverheads(const SeqStats &Seq, const ParStats &Par,
                                   unsigned NumFunctions);

} // namespace parallel
} // namespace warpc

#endif // WARPC_PARALLEL_SIMRUNNER_H
