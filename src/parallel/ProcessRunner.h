//===- ProcessRunner.h - Fork/exec parallel compilation ---------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real multi-process backend: the paper's heavy-weight UNIX
/// processes, for real this time. The master fork/execs a pool of
/// warp-worker processes, ships each an Init frame (module source + fault
/// plan) over a socketpair, then dispatches post-sema function units as
/// Task frames and collects serialized FunctionResults — all framed with
/// support/BinaryStream (see WireProtocol.h).
///
/// Control flow is the same retry-round structure as the thread engine
/// (parallel/RetryRound.h): failed attempts — workers that actually died
/// of SIGKILL, stalled workers the watchdog killed, results whose frames
/// arrived damaged — are retried round by round, reassigned away from the
/// worker that failed them via Scheduler::chooseReassignment, up to the
/// FaultPolicy attempt cap; the master then recompiles the leftovers
/// itself, so the run always completes and the image is bit-identical to
/// driver::compileModuleSequential.
///
/// Worker startup (fork + exec + phase-1 reparse) is the §4.2.3-dominant
/// overhead this backend finally makes real: a resident pool pays it once
/// per worker, the ForkPerTask config pays it once per attempt — the two
/// ends bench/ablation_process measures.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_PARALLEL_PROCESSRUNNER_H
#define WARPC_PARALLEL_PROCESSRUNNER_H

#include "codegen/MachineModel.h"
#include "driver/Compiler.h"
#include "driver/FaultPolicy.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"
#include "parallel/WireProtocol.h"

#include <sys/types.h>

#include <string>
#include <vector>

namespace warpc {
namespace parallel {

/// Result of a process-backed parallel compilation. The Module and the
/// retry/reassignment/recovery/cache counters are deterministic functions
/// of (source, fault plan) at any worker count; the timing fields and the
/// process-lifecycle tallies (deaths observed, watchdog fires,
/// speculation) depend on real scheduling.
struct ProcessRunResult {
  driver::ModuleResult Module;
  double ElapsedSec = 0;
  double Phase1Sec = 0;        ///< Master-side sequential parse + sema.
  double ParallelPhaseSec = 0; ///< Spawn + fan-out + collection.
  double Phase4Sec = 0;        ///< Sequential assembly + linking.
  unsigned WorkersUsed = 0;    ///< Pool seats (<= NumWorkers, <= tasks).
  unsigned WorkersSpawned = 0; ///< Processes forked, including respawns.
  unsigned WorkerDeaths = 0;   ///< Workers that died without Shutdown.
  unsigned WatchdogFires = 0;  ///< Attempts the master timed out and killed.
  unsigned FrameErrors = 0;    ///< Streams dropped for corrupt framing.
  unsigned FunctionsRecovered = 0;
  unsigned RetriesAttempted = 0;
  unsigned FunctionsReassigned = 0;
  unsigned PoisonedResultsDetected = 0;
  unsigned SpeculativeLaunches = 0;
  unsigned SpeculativeWins = 0;
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
};

/// Knobs specific to the process backend (the shared retry/timeout policy
/// stays in driver::FaultPolicy).
struct ProcessRunnerConfig {
  /// Path to the warp-worker executable; empty resolves through
  /// defaultWorkerBinary(). If no binary can be spawned at all, the
  /// master compiles every function itself (counted in
  /// FunctionsRecovered) — degraded, never wrong.
  std::string WorkerBinary;
  /// Real-time watchdog: an attempt older than this (backed off by
  /// FaultPolicy::BackoffFactor per retry round) is declared lost and its
  /// worker killed. Generous by default so healthy runs never trip it.
  double WatchdogSec = 10.0;
  /// Straggler duplicates past half the watchdog (FaultPolicy's soft
  /// deadline), first valid result wins.
  bool SpeculateStragglers = true;
  /// Retire each worker after one attempt and fork a fresh one for the
  /// next — the paper's fork-per-function-master configuration, measured
  /// against the resident pool by bench/ablation_process.
  bool ForkPerTask = false;
  /// Hard cap on processes forked over the whole run (0 derives one from
  /// the worker count, attempt cap, and task count): the backstop against
  /// respawn storms when every spawn dies instantly.
  unsigned MaxTotalSpawns = 0;
  /// Shipped to every worker in its Init frame.
  driver::ProcessFaultPlan Faults;
};

/// Resolves the worker binary: $WARPC_WORKER_BIN if set, else a
/// "warp-worker" sibling of the current executable, else "" (master
/// fallback only).
std::string defaultWorkerBinary();

/// A pool of warp-worker processes connected over socketpairs. Owns the
/// processes: the destructor SIGKILLs and reaps every worker still
/// alive, so a master torn down mid-run (or by an exception) never leaks
/// orphans. Exposed separately from compileModuleProcess so lifecycle
/// tests can drive spawn/shutdown/kill directly.
class ProcessPool {
public:
  explicit ProcessPool(std::string WorkerBinary);
  ~ProcessPool();
  ProcessPool(const ProcessPool &) = delete;
  ProcessPool &operator=(const ProcessPool &) = delete;

  /// Forks and execs one worker and sends it \p Init. Returns the new
  /// worker's slot index, or -1 when the process could not be created.
  /// (An exec that fails inside the child surfaces later as an immediate
  /// EOF on the socket, like any other worker death.)
  int spawn(const wire::InitMsg &Init);

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }
  unsigned spawned() const { return Spawned; }
  unsigned aliveCount() const;
  bool alive(unsigned W) const { return Workers[W].Alive; }
  pid_t pid(unsigned W) const { return Workers[W].Pid; }
  int fd(unsigned W) const { return Workers[W].Fd; }
  /// waitpid status; meaningful once the worker has been reaped.
  int exitStatus(unsigned W) const { return Workers[W].WaitStatus; }
  wire::FrameDecoder &decoder(unsigned W) { return Workers[W].Decoder; }

  /// Sends one frame; false when the worker is dead or the write failed
  /// (the caller should treat the worker as lost).
  bool send(unsigned W, wire::FrameType Type,
            const std::vector<uint8_t> &Payload);

  /// Drains available bytes into the worker's decoder without blocking.
  /// Returns false on EOF or a read error — the worker is gone (it is
  /// reaped and marked dead before returning).
  bool pump(unsigned W);

  /// SIGKILL + reap. Idempotent.
  void kill(unsigned W);

  /// Polite shutdown: send the Shutdown frame, give the worker
  /// \p GraceSec to exit, then SIGKILL. Returns true when the worker
  /// exited within the grace period.
  bool shutdown(unsigned W, double GraceSec = 0.5);

  /// Total bytes moved over all sockets (process.bytes_* metrics).
  uint64_t bytesSent() const { return BytesSent; }
  uint64_t bytesReceived() const { return BytesReceived; }

private:
  struct Worker {
    pid_t Pid = -1;
    int Fd = -1;
    bool Alive = false;
    bool Reaped = false;
    int WaitStatus = 0;
    wire::FrameDecoder Decoder;
  };
  void reap(unsigned W, bool Block);

  std::string Binary;
  std::vector<Worker> Workers;
  unsigned Spawned = 0;
  uint64_t BytesSent = 0;
  uint64_t BytesReceived = 0;
};

/// Compiles \p Source on a pool of up to \p NumWorkers real worker
/// processes under \p Policy, with \p Config naming the worker binary,
/// watchdog, and process-level fault plan. Mirrors
/// compileModuleParallel's contract: a non-null \p Rec (Steady domain)
/// receives parse/startup/compile/assembly spans with causal Parent
/// links — the master on lane 0, pool seat i on lane 1+i — plus sched.*
/// counter tracks and telemetry series; a non-null \p Metrics receives
/// the driver's phase counters plus fault.* and process.* counters; a
/// non-null \p Cache is probed master-side before any dispatch, so hits
/// are worker-count-independent. Workers compile with
/// codegen::MachineModel::warpCell() — the only model the system defines
/// — and \p MM is used for the master's own fallback compiles.
ProcessRunResult compileModuleProcess(
    const std::string &Source, const codegen::MachineModel &MM,
    unsigned NumWorkers, const driver::FaultPolicy &Policy,
    const ProcessRunnerConfig &Config = ProcessRunnerConfig(),
    obs::TraceRecorder *Rec = nullptr, obs::MetricsRegistry *Metrics = nullptr,
    driver::FunctionResultCache *Cache = nullptr);

} // namespace parallel
} // namespace warpc

#endif // WARPC_PARALLEL_PROCESSRUNNER_H
