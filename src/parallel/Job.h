//===- Job.h - Compilation job description ----------------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CompilationJob is the complete description of one module compilation
/// as both execution engines need it: per-function work metrics measured
/// by running the real compiler, plus module structure. Building a job
/// runs the actual C++ compiler once (microseconds today); the cluster
/// simulator then replays the same work under the 1989 cost model.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_PARALLEL_JOB_H
#define WARPC_PARALLEL_JOB_H

#include "codegen/MachineModel.h"
#include "driver/Compiler.h"
#include "driver/WorkMetrics.h"
#include "support/ErrorOr.h"

#include <string>
#include <vector>

namespace warpc {
namespace parallel {

/// One function-master task.
struct FunctionTask {
  std::string SectionName;
  std::string FunctionName;
  /// Phases 2+3 (and the function's own assembly slice).
  driver::WorkMetrics Metrics;
  /// Size of the function's result file (the assembled cell program).
  double OutputKB = 0;
  /// A warm compilation-cache entry covers this function: the simulator
  /// replays the stored result at lookup cost instead of launching a
  /// function master, and the scheduler assigns it no workstation.
  bool Cached = false;
};

/// A whole module ready for (simulated or real) parallel compilation.
struct CompilationJob {
  std::string ModuleName;
  /// Phase-1 work for the entire module.
  driver::WorkMetrics Phase1;
  /// Function tasks grouped by section, in declaration order.
  std::vector<std::vector<FunctionTask>> Sections;
  /// Phase-4 (combination + linking) work.
  driver::WorkMetrics Phase4;
  /// Whether a compilation cache is in play for this run. Uncached tasks
  /// of a cache-enabled job count as misses in ParStats.
  bool CacheEnabled = false;

  unsigned numFunctions() const {
    unsigned N = 0;
    for (const auto &S : Sections)
      N += static_cast<unsigned>(S.size());
    return N;
  }

  /// Live parse-information size the sequential compiler keeps resident
  /// while compiling (the whole module's ASTs and symbol tables).
  double parseResidentKB() const {
    return static_cast<double>(Phase1.workingSetKB());
  }
};

/// Compiles \p Source with the real compiler and packages the measured
/// work as a job. Fails when the module has errors.
ErrorOr<CompilationJob> buildJob(const std::string &Source,
                                 const codegen::MachineModel &MM);

} // namespace parallel
} // namespace warpc

#endif // WARPC_PARALLEL_JOB_H
