//===- AnalysisRunner.h - Parallel static analysis --------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the static-analysis checks as a parallel phase over the same unit
/// of work the compiler parallelizes: the function. Per-function checks
/// touch only one function body plus sibling signatures, so worker threads
/// claim functions first-come-first-served — the thread-pool analogue of
/// forking function masters — while the module-level channel-protocol pass
/// runs on the master afterwards.
///
/// Results land in per-function slots indexed by declaration ordinal and
/// are merged in that order, then funneled through the same
/// finalizeModuleDiags tail as the sequential analyzer. The merged
/// diagnostics are therefore byte-identical across worker counts; a test
/// asserts the JSON matches for 1..N workers.
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_PARALLEL_ANALYSISRUNNER_H
#define WARPC_PARALLEL_ANALYSISRUNNER_H

#include "analysis/Analyzer.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"
#include "w2/AST.h"

#include <string>

namespace warpc {
namespace parallel {

/// Result of a thread-backed parallel analysis.
struct AnalysisRunResult {
  analysis::ModuleAnalysis Analysis;
  double ElapsedSec = 0;       ///< Wall clock of the whole analysis.
  double ParallelPhaseSec = 0; ///< Wall clock of the per-function fan-out.
  unsigned WorkersUsed = 0;
};

/// Analyzes \p M with up to \p NumWorkers analysis workers running
/// concurrently. Output is byte-identical to analysis::analyzeModule
/// regardless of NumWorkers or interleaving.
///
/// A non-null \p Rec must be in the Steady clock domain; worker i records
/// SpanAnalyze spans on lane 1+i, the master uses lane 0. A non-null
/// \p Metrics receives analysis.functions, analysis.diags.{errors,
/// warnings}, and an analysis.function_sec distribution.
AnalysisRunResult analyzeModuleParallel(const w2::ModuleDecl &M,
                                        const std::string &Source,
                                        const analysis::AnalysisOptions &Opts,
                                        unsigned NumWorkers,
                                        obs::TraceRecorder *Rec = nullptr,
                                        obs::MetricsRegistry *Metrics = nullptr);

} // namespace parallel
} // namespace warpc

#endif // WARPC_PARALLEL_ANALYSISRUNNER_H
