//===- AnalysisRunner.h - Parallel static analysis --------------*- C++ -*-===//
//
// Part of the warpc project (PLDI 1989 parallel compilation reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the static-analysis checks as a parallel phase over the same unit
/// of work the compiler parallelizes: the function. Per-function checks
/// touch only one function body plus sibling signatures, so worker threads
/// claim functions first-come-first-served — the thread-pool analogue of
/// forking function masters — while the module-level channel-protocol pass
/// runs on the master afterwards.
///
/// Results land in per-function slots indexed by declaration ordinal and
/// are merged in that order, then funneled through the same
/// finalizeModuleDiags tail as the sequential analyzer. The merged
/// diagnostics are therefore byte-identical across worker counts; a test
/// asserts the JSON matches for 1..N workers.
///
/// The interprocedural phase reuses the same discipline at SCC
/// granularity: the call-graph condensation's wavefront levels run in
/// ascending order with a barrier between levels, workers claim the SCCs
/// of one wave first-come-first-served, and results land in per-SCC slots
/// merged by SCC id. An optional CompileCache persists per-SCC summary
/// bytes keyed by the members' post-sema body hashes composed with the
/// callee SCC keys, so a warm run re-summarizes only the SCCs an edit
/// dirtied (plus their ancestors, whose keys change transitively).
///
//===----------------------------------------------------------------------===//

#ifndef WARPC_PARALLEL_ANALYSISRUNNER_H
#define WARPC_PARALLEL_ANALYSISRUNNER_H

#include "analysis/Analyzer.h"
#include "cache/CompileCache.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"
#include "w2/AST.h"

#include <string>

namespace warpc {
namespace parallel {

/// The worker count "auto" resolves to: std::thread::hardware_concurrency
/// (minimum 1), clamped by the WARPC_TEST_MAX_WORKERS environment variable
/// when set — the same cap the determinism tests use to keep CI machines
/// from oversubscribing. Used by warp-lint --jobs 0 and the warpc
/// --analyze default.
unsigned defaultAnalysisWorkers();

/// Result of a thread-backed parallel analysis.
struct AnalysisRunResult {
  analysis::ModuleAnalysis Analysis;
  double ElapsedSec = 0;       ///< Wall clock of the whole analysis.
  double ParallelPhaseSec = 0; ///< Wall clock of the per-function fan-out.
  unsigned WorkersUsed = 0;
};

/// Analyzes \p M with up to \p NumWorkers analysis workers running
/// concurrently. Output is byte-identical to analysis::analyzeModule
/// regardless of NumWorkers or interleaving.
///
/// A non-null \p Rec must be in the Steady clock domain; worker i records
/// SpanAnalyze (per function) and SpanSummarize (per SCC) spans on lane
/// 1+i, the master uses lane 0. A non-null \p Metrics receives
/// analysis.functions, analysis.diags.{errors, warnings}, an
/// analysis.function_sec distribution, an analysis.scc_sec distribution,
/// and — when \p SummaryCache is non-null — the
/// analysis.summary.{hits,misses,stores,invalidated} counters.
///
/// \p SummaryCache, when non-null, persists interprocedural SCC summaries
/// across runs; hits replay the cached summaries and diagnostics without
/// re-walking the member bodies. Cached or not, the output is identical.
AnalysisRunResult analyzeModuleParallel(const w2::ModuleDecl &M,
                                        const std::string &Source,
                                        const analysis::AnalysisOptions &Opts,
                                        unsigned NumWorkers,
                                        obs::TraceRecorder *Rec = nullptr,
                                        obs::MetricsRegistry *Metrics = nullptr,
                                        cache::CompileCache *SummaryCache =
                                            nullptr);

} // namespace parallel
} // namespace warpc

#endif // WARPC_PARALLEL_ANALYSISRUNNER_H
